// Reproduces paper Fig. 6: arithmetic-error distributions of two
// approximate multipliers (NGR-class and DM1-class) for a single
// multiplication and for 9- and 81-long MAC chains, with their Gaussian
// interpolations.
//
// Paper claims to reproduce: the distributions are Gaussian-like (31/35
// components), widen with chain length, and DM1 (deeper power saving) is
// wider than NGR.
#include <cstdio>
#include <string>

#include "approx/error_profile.hpp"
#include "approx/library.hpp"
#include "bench_common.hpp"

using namespace redcane;

namespace {

void ascii_histogram(const approx::ErrorProfile& p, std::size_t bins) {
  const stats::Histogram h = approx::error_histogram(p, bins);
  const std::vector<double> fit = stats::gaussian_expected_counts(
      h, p.error_moments.mean, p.error_moments.stddev, h.total());
  std::int64_t max_count = 1;
  for (std::size_t b = 0; b < h.bins(); ++b) max_count = std::max(max_count, h.count(b));

  std::printf("  %10s  %-40s %s\n", "error", "real (#)", "| gaussian fit (*)");
  for (std::size_t b = 0; b < h.bins(); ++b) {
    const int bar = static_cast<int>(40.0 * static_cast<double>(h.count(b)) /
                                     static_cast<double>(max_count));
    const int fit_bar =
        static_cast<int>(40.0 * fit[b] / static_cast<double>(max_count));
    std::printf("  %10.0f  %-40s | %s\n", h.bin_center(b),
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                std::string(static_cast<std::size_t>(std::max(0, fit_bar)), '*').c_str());
  }
}

approx::ErrorProfile run(const approx::Multiplier& m, int chain) {
  approx::ProfileConfig cfg;
  cfg.samples = 100000;  // Paper: |I| = 1e5 per scenario.
  cfg.chain_length = chain;
  cfg.seed = 6;
  return approx::profile_multiplier(m, approx::InputDistribution::uniform(), cfg);
}

}  // namespace

int main() {
  bool all_gaussian = true;
  double prev_std = 0.0;
  bool widening = true;

  for (const char* analog : {"mul8u_NGR", "mul8u_DM1"}) {
    const approx::Multiplier& m = approx::multiplier_by_analog(analog);
    bench::print_header(std::string("Fig. 6: error distribution of ") + analog + " (" +
                        m.info().name + ", power " +
                        std::to_string(m.info().power_uw) + " uW)");
    prev_std = 0.0;
    for (int chain : {1, 9, 81}) {
      const approx::ErrorProfile p = run(m, chain);
      std::printf(
          "\n%d iteration(s): mean %+.1f  std %.1f  NM %.5f  NA %+.5f  "
          "gaussian-fit L1 %.3f (%s)\n",
          chain, p.error_moments.mean, p.error_moments.stddev, p.nm, p.na,
          p.gaussian_distance, p.gaussian_like ? "gaussian-like" : "NOT gaussian-like");
      if (chain == 81) ascii_histogram(p, 33);
      if (chain > 1) widening = widening && (p.error_moments.stddev > prev_std);
      prev_std = p.error_moments.stddev;
      if (chain >= 9) all_gaussian = all_gaussian && p.gaussian_like;
    }
  }

  // Library-wide Gaussianity census (paper: 31 of 35 components).
  bench::print_header("Library census: gaussian-like error profiles (9-MAC)");
  int gaussian_like = 0;
  for (const approx::Multiplier* m : approx::multiplier_library()) {
    approx::ProfileConfig cfg;
    cfg.samples = 20000;
    cfg.chain_length = 9;
    cfg.seed = 6;
    const approx::ErrorProfile p =
        approx::profile_multiplier(*m, approx::InputDistribution::uniform(), cfg);
    if (p.gaussian_like) ++gaussian_like;
  }
  std::printf("gaussian-like: %d of %zu components (paper: 31 of 35)\n", gaussian_like,
              approx::multiplier_library().size());

  const bool shape_holds = all_gaussian && widening && gaussian_like >= 28;
  std::printf("\nshape check (NGR/DM1 gaussian-like, error widens with chain, "
              "majority of library gaussian-like): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
