// Reproduces paper Table II: clean classification accuracy of every
// benchmark (DeepCaps on CIFAR-10 / SVHN / MNIST, CapsNet on
// Fashion-MNIST / MNIST) using accurate arithmetic.
//
// Our models are the tiny profiles trained on the synthetic dataset
// stand-ins (DESIGN.md §4); the reproduction target is "every benchmark
// trains to high clean accuracy", not the paper's exact percentages.
#include <cstdio>

#include "bench_common.hpp"

using namespace redcane;

int main() {
  bench::print_header("Table II: clean accuracy with accurate multipliers");
  std::printf("%-14s %-16s %12s %14s\n", "Architecture", "Dataset", "ours [%]",
              "paper [%]");

  bool all_good = true;
  for (bench::BenchmarkId id : bench::all_benchmarks()) {
    bench::Benchmark b = bench::load_benchmark(id);
    const double acc =
        capsnet::evaluate(*b.model, b.dataset.test_x, b.dataset.test_y) * 100.0;
    std::printf("%-14s %-16s %11.2f %14.2f\n", bench::benchmark_model_name(id),
                bench::benchmark_dataset_name(id), acc, bench::paper_accuracy(id));
    all_good = all_good && acc > 75.0;
  }

  std::printf("\nshape check (every benchmark trains to > 75%% clean accuracy on its "
              "synthetic stand-in): %s\n",
              all_good ? "PASS" : "FAIL");
  return all_good ? 0 : 1;
}
