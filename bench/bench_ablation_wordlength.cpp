// Ablation D4 (DESIGN.md): fixed-point wordlength of the CapsNet datapath.
//
// The paper adopts 8-bit operands citing CapsAcc [17] ("it was shown to be
// enough accurate in the computational path of CapsNets"). We verify that
// on our benchmarks by emulating a b-bit datapath (Eq. 1 min-max
// quantization of every MAC output and activation) for b in {4..12}:
// accuracy must be intact at 8 bits and collapse somewhere below it.
#include <cstdio>

#include "bench_common.hpp"
#include "capsnet/trainer.hpp"
#include "noise/quantize_hook.hpp"

using namespace redcane;

int main() {
  bool ok = true;
  for (bench::BenchmarkId id :
       {bench::BenchmarkId::kCapsNetMnist, bench::BenchmarkId::kDeepCapsCifar10}) {
    bench::Benchmark b = bench::load_benchmark(id);
    bench::print_header(std::string("Ablation D4: datapath wordlength sweep, ") +
                        bench::benchmark_name(id));

    const double clean =
        capsnet::evaluate(*b.model, b.dataset.test_x, b.dataset.test_y) * 100.0;
    std::printf("float baseline: %.2f%%\n\n%-6s %10s %10s\n", "bits", "accuracy",
                "drop");

    double drop_at_8 = -100.0;
    double drop_at_4 = 0.0;
    for (int bits : {12, 10, 8, 6, 4, 3}) {
      noise::QuantizeHook hook(bits);
      const double acc =
          capsnet::evaluate(*b.model, b.dataset.test_x, b.dataset.test_y, &hook) * 100.0;
      std::printf("%-6d %9.2f%% %+9.2f%%\n", bits, acc, acc - clean);
      if (bits == 8) drop_at_8 = acc - clean;
      if (bits == 4) drop_at_4 = acc - clean;
    }

    std::printf("\n8-bit drop %+0.2f%% (paper: 8 bits is sufficient); 4-bit drop "
                "%+0.2f%%\n",
                drop_at_8, drop_at_4);
    ok = ok && drop_at_8 > -2.0 && drop_at_4 < drop_at_8 + 0.5;
  }

  std::printf("\nshape check (8-bit datapath within 2%% of float; accuracy degrades "
              "monotonically below): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
