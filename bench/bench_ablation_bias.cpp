// Extension ablation: the effect of error bias (NA != 0).
//
// The paper's sweeps fix NA = 0 "to analyze the general case"; its Table
// IV shows that real components carry biases up to NA ~ 0.05 (YX7/QKX
// class). This bench quantifies how much a bias of the same magnitude as
// the noise hurts compared to unbiased noise — the reason Step 6 rejects
// biased (non-Gaussian-like) components.
#include <cstdio>

#include "bench_common.hpp"
#include "core/resilience.hpp"

using namespace redcane;

int main() {
  bench::Benchmark b = bench::load_benchmark(bench::BenchmarkId::kCapsNetMnist);
  bench::print_header("Ablation: biased vs unbiased injection (CapsNet/MNIST)");

  const std::vector<double> nms{0.1, 0.05, 0.02, 0.01, 0.005, 0.0};
  bool bias_hurts = true;

  for (double na_scale : {0.0, 0.5, 1.0}) {
    core::ResilienceConfig rc;
    rc.seed = 404;
    rc.sweep.nms = nms;
    core::ResilienceAnalyzer analyzer(*b.model, b.dataset.test_x, b.dataset.test_y, rc);

    std::printf("\n--- NA = %.1f * NM, noise in MAC outputs ---\n", na_scale);
    std::printf("%-8s %10s\n", "NM", "drop");
    double drop_at_002 = 0.0;
    for (double nm : nms) {
      if (nm == 0.0) continue;
      const noise::NoiseSpec spec{nm, na_scale * nm};
      const double acc = analyzer.accuracy_with_rules(
          {noise::group_rule(capsnet::OpKind::kMacOutput, spec)},
          static_cast<std::uint64_t>(nm * 1e6));
      const double drop = (acc - analyzer.baseline()) * 100.0;
      std::printf("%-8.3f %+9.2f%%\n", nm, drop);
      if (nm == 0.02) drop_at_002 = drop;
    }
    static double unbiased_drop = 0.0;
    if (na_scale == 0.0) {
      unbiased_drop = drop_at_002;
    } else if (na_scale == 1.0) {
      // Full bias at NM=0.02 must hurt at least as much as unbiased noise.
      bias_hurts = drop_at_002 <= unbiased_drop + 1.0;
    }
  }

  std::printf("\nshape check (bias of the same magnitude as the noise is at least as "
              "harmful as the noise itself): %s\n",
              bias_hurts ? "PASS" : "FAIL");
  return bias_hurts ? 0 : 1;
}
