// Shared infrastructure of the reproduction benches: the five paper
// benchmarks (model x dataset pairs of Table II), trained-model caching,
// and fixed-width table printing.
//
// Resilience sweeps run the `tiny()` model profiles (DESIGN.md §4): the
// 18-layer DeepCaps / 3-layer CapsNet topologies with every injection
// site intact, at a channel count a pure-CPU sweep can afford.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/serialize.hpp"
#include "capsnet/trainer.hpp"
#include "data/synthetic.hpp"

namespace redcane::bench {

/// One paper benchmark: a model architecture trained on a dataset.
struct Benchmark {
  std::string id;  ///< e.g. "deepcaps_cifar10".
  std::unique_ptr<capsnet::CapsModel> model;
  data::Dataset dataset;
};

enum class BenchmarkId {
  kDeepCapsCifar10,
  kDeepCapsSvhn,
  kDeepCapsMnist,
  kCapsNetFashionMnist,
  kCapsNetMnist,
};

/// All five rows of the paper's Table II, in table order.
inline std::vector<BenchmarkId> all_benchmarks() {
  return {BenchmarkId::kDeepCapsCifar10, BenchmarkId::kDeepCapsSvhn,
          BenchmarkId::kDeepCapsMnist, BenchmarkId::kCapsNetFashionMnist,
          BenchmarkId::kCapsNetMnist};
}

/// Builds the benchmark's tiny-profile model and synthetic dataset, then
/// either loads cached trained parameters from `.bench_cache/` or trains
/// and caches them. Deterministic per benchmark id.
Benchmark load_benchmark(BenchmarkId id);

/// Paper Table II reference accuracies (percent).
double paper_accuracy(BenchmarkId id);

const char* benchmark_name(BenchmarkId id);     ///< e.g. "DeepCaps / CIFAR-10".
const char* benchmark_model_name(BenchmarkId id);
const char* benchmark_dataset_name(BenchmarkId id);

/// Prints a horizontal rule and a centered title.
void print_header(const std::string& title);

}  // namespace redcane::bench
