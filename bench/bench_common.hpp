// Shared infrastructure of the reproduction benches: the five paper
// benchmarks (model x dataset pairs of Table II), trained-model caching,
// and fixed-width table printing.
//
// Resilience sweeps run the `tiny()` model profiles (DESIGN.md §4): the
// 18-layer DeepCaps / 3-layer CapsNet topologies with every injection
// site intact, at a channel count a pure-CPU sweep can afford.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/serialize.hpp"
#include "capsnet/trainer.hpp"
#include "data/synthetic.hpp"

namespace redcane::bench {

/// One paper benchmark: a model architecture trained on a dataset.
struct Benchmark {
  std::string id;  ///< e.g. "deepcaps_cifar10".
  std::unique_ptr<capsnet::CapsModel> model;
  data::Dataset dataset;
};

enum class BenchmarkId {
  kDeepCapsCifar10,
  kDeepCapsSvhn,
  kDeepCapsMnist,
  kCapsNetFashionMnist,
  kCapsNetMnist,
};

/// All five rows of the paper's Table II, in table order.
inline std::vector<BenchmarkId> all_benchmarks() {
  return {BenchmarkId::kDeepCapsCifar10, BenchmarkId::kDeepCapsSvhn,
          BenchmarkId::kDeepCapsMnist, BenchmarkId::kCapsNetFashionMnist,
          BenchmarkId::kCapsNetMnist};
}

/// Builds the benchmark's tiny-profile model and synthetic dataset, then
/// either loads cached trained parameters from `.bench_cache/` or trains
/// and caches them. Deterministic per benchmark id.
Benchmark load_benchmark(BenchmarkId id);

/// Paper Table II reference accuracies (percent).
double paper_accuracy(BenchmarkId id);

const char* benchmark_name(BenchmarkId id);     ///< e.g. "DeepCaps / CIFAR-10".
const char* benchmark_model_name(BenchmarkId id);
const char* benchmark_dataset_name(BenchmarkId id);

/// Prints a horizontal rule and a centered title.
void print_header(const std::string& title);

/// Field list for one bench-result JSON line. Keys must be plain
/// identifiers (no escaping is applied); string values are escaped.
class JsonFields {
 public:
  JsonFields& str(const char* key, const std::string& value);
  JsonFields& boolean(const char* key, bool value);
  JsonFields& integer(const char* key, std::int64_t value);
  /// `fmt` is a printf double format (default keeps full precision short).
  JsonFields& number(const char* key, double value, const char* fmt = "%.6g");

  [[nodiscard]] const std::string& body() const { return body_; }

 private:
  std::string body_;
};

/// Appends one line to `path` in the shared bench schema:
///   {"bench":"<bench>","run_kind":"seed"|"ci",<fields>}
/// `run_kind` comes from $REDCANE_BENCH_RUN_KIND ("seed" unless set) so CI
/// smoke rows are distinguishable from seeded baselines in the same file.
/// Returns false (after a warning) when the file cannot be opened.
bool append_bench_json(const std::string& path, const std::string& bench,
                       const JsonFields& fields);

}  // namespace redcane::bench
