// Reproduces paper Table IV: power, area and noise parameters (NM, NA) of
// the selected approximate multipliers, under both the modeled (uniform)
// input distribution and the real one (operands drawn from the DeepCaps
// CIFAR-10 conv inputs).
//
// Paper claims to reproduce:
//   * NM/NA are dataset dependent — modeled and real values differ;
//   * the modeled distribution tends to overestimate NM/NA;
//   * NM broadly shrinks with component power only down to a point —
//     aggressive components (YX7/QKX class) have large biased errors.
#include <cmath>
#include <cstdio>

#include "approx/error_profile.hpp"
#include "approx/library.hpp"
#include "bench_common.hpp"
#include "capsnet/trainer.hpp"
#include "noise/range_recorder.hpp"
#include "quant/quantizer.hpp"

using namespace redcane;

int main() {
  bench::Benchmark b = bench::load_benchmark(bench::BenchmarkId::kDeepCapsCifar10);
  bench::print_header(
      "Table IV: power/area/NM/NA of library multipliers (modeled vs real inputs)");

  // Real operand pool: quantized conv-input activations of the DeepCaps.
  noise::RangeRecorder recorder(100000, 4);
  (void)capsnet::evaluate(*b.model,
                          capsnet::slice_rows(b.dataset.test_x, 0, 100),
                          {b.dataset.test_y.begin(), b.dataset.test_y.begin() + 100},
                          &recorder);
  const std::vector<float> pooled =
      recorder.pooled_samples(capsnet::OpKind::kActivation);
  const Tensor pooled_t(Shape{static_cast<std::int64_t>(pooled.size())},
                        std::vector<float>(pooled));
  const quant::QuantParams qp = quant::fit_params(pooled_t, 8);
  const approx::InputDistribution real_dist =
      approx::InputDistribution::empirical(quant::quantize_u8(pooled_t, qp));
  const approx::InputDistribution modeled_dist = approx::InputDistribution::uniform();

  approx::ProfileConfig cfg;
  cfg.samples = 50000;
  cfg.chain_length = 9;  // 3x3 kernels of the DeepCaps.
  cfg.seed = 4;

  const double exact_power = approx::exact_multiplier().info().power_uw;
  std::printf("%-18s %-12s %9s %9s | %8s %8s | %8s %8s\n", "component", "analog",
              "P [uW]", "A [um2]", "mod NA", "mod NM", "real NA", "real NM");

  int overestimates = 0;
  int rows = 0;
  bool monotone_power = true;
  double prev_power = 1e18;
  for (const approx::Multiplier* m : approx::paper_analog_multipliers()) {
    const approx::ErrorProfile mod = approx::profile_multiplier(*m, modeled_dist, cfg);
    const approx::ErrorProfile real = approx::profile_multiplier(*m, real_dist, cfg);
    std::printf("%-18s %-12s %4.0f(%3.0f%%) %4.0f      | %+.4f %8.4f | %+.4f %8.4f\n",
                m->info().name.c_str(), m->info().paper_analog.c_str(),
                m->info().power_uw, -100.0 * m->info().power_saving(exact_power),
                m->info().area_um2, mod.na, mod.nm, real.na, real.nm);
    if (mod.nm >= real.nm) ++overestimates;
    ++rows;
    monotone_power = monotone_power && m->info().power_uw <= prev_power + 1e-9;
    prev_power = m->info().power_uw;
  }

  std::printf("\nmodeled NM >= real NM in %d of %d components (paper: modeled "
              "distribution overestimates)\n",
              overestimates, rows);
  std::printf("rows ordered by descending power (as in the paper's table): %s\n",
              monotone_power ? "yes" : "no");

  const bool shape_holds = overestimates >= rows / 2 && monotone_power;
  std::printf("\nshape check: %s\n", shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
