// Micro-kernel throughput benchmarks (google-benchmark harness): the
// arithmetic and inference kernels the resilience sweeps are built on.
#include <benchmark/benchmark.h>

#include "approx/library.hpp"
#include "capsnet/capsnet_model.hpp"
#include "capsnet/routing.hpp"
#include "capsnet/squash.hpp"
#include "nn/conv2d.hpp"
#include "noise/noise_model.hpp"
#include "tensor/ops.hpp"

using namespace redcane;

namespace {

void BM_ExactMultiplier(benchmark::State& state) {
  const approx::Multiplier& m = approx::exact_multiplier();
  std::uint32_t acc = 0;
  std::uint8_t a = 3;
  std::uint8_t b = 5;
  for (auto _ : state) {
    acc += m.multiply(a, b);
    a += 7;
    b += 13;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ExactMultiplier);

void BM_ApproxMultiplier(benchmark::State& state) {
  const approx::Multiplier* m =
      approx::multiplier_library()[static_cast<std::size_t>(state.range(0))];
  std::uint32_t acc = 0;
  std::uint8_t a = 3;
  std::uint8_t b = 5;
  for (auto _ : state) {
    acc += m->multiply(a, b);
    a += 7;
    b += 13;
  }
  benchmark::DoNotOptimize(acc);
  state.SetLabel(m->info().name);
}
BENCHMARK(BM_ApproxMultiplier)->DenseRange(1, 8, 1);

void BM_Conv2DForward(benchmark::State& state) {
  Rng rng(1);
  const std::int64_t c = state.range(0);
  const Tensor x = ops::uniform(Shape{1, 16, 16, c}, 0.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{3, 3, c, c}, -0.5, 0.5, rng);
  const Tensor b = ops::uniform(Shape{c}, -0.1, 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::conv2d_forward(x, w, b, 1, 1));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * 9 * c * c);
}
BENCHMARK(BM_Conv2DForward)->Arg(16)->Arg(32)->Arg(64);

void BM_Squash(benchmark::State& state) {
  Rng rng(2);
  const Tensor s = ops::uniform(Shape{1024, 8}, -2.0, 2.0, rng);
  for (auto _ : state) benchmark::DoNotOptimize(capsnet::squash(s));
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Squash);

void BM_DynamicRouting(benchmark::State& state) {
  Rng rng(3);
  const Tensor votes = ops::uniform(Shape{16, 64, 10, 16}, -1.0, 1.0, rng);
  const int iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(capsnet::dynamic_routing(votes, iters, nullptr, "b"));
  }
  state.SetLabel(std::to_string(iters) + " iterations");
}
BENCHMARK(BM_DynamicRouting)->Arg(1)->Arg(3);

void BM_NoiseInjection(benchmark::State& state) {
  Rng rng(4);
  Tensor x = ops::uniform(Shape{65536}, 0.0, 1.0, rng);
  Rng nrng(5);
  for (auto _ : state) {
    noise::inject_noise(x, noise::NoiseSpec{0.05, 0.0}, nrng);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_NoiseInjection);

void BM_CapsNetTinyInference(benchmark::State& state) {
  Rng rng(6);
  capsnet::CapsNetModel model(capsnet::CapsNetConfig::tiny(), rng);
  Rng drng(7);
  const Tensor x = ops::uniform(Shape{1, 28, 28, 1}, 0.0, 1.0, drng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, false, nullptr));
  }
}
BENCHMARK(BM_CapsNetTinyInference);

}  // namespace

BENCHMARK_MAIN();
