// Step-8 robustness-sweep throughput: (attack/transform severity) x
// (approximation noise) grids driven three ways over the same model and
// test set:
//
//   serial          — the naive pre-engine driver: every grid point
//                     regenerates its perturbed inputs and runs a full
//                     serial evaluation of the whole test set.
//   engine serial   — SweepEngine, one worker, input-keyed prefix cache on
//                     (each severity row perturbs once, points replay
//                     suffixes).
//   engine parallel — the same engine on the full worker pool.
//
// All three must produce bit-identical grids; the parallel engine must be
// >= 2x the naive serial driver (the gate this binary exits on). Results
// are appended as one JSON object to BENCH_robustness.json.
//
// Usage: bench_robustness [--quick] [--threads N] [--json PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attack/attack.hpp"
#include "bench_common.hpp"
#include "core/resilience.hpp"
#include "core/sweep_engine.hpp"
#include "noise/injector.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;
using core::ResilienceConfig;
using core::RobustnessGrid;

/// Gradient-heavy mix: PGD/FGSM generation is the cost the input-keyed
/// cache amortizes (the naive driver regenerates the perturbed set at
/// every grid point), with one affine row to keep that path measured too.
std::vector<attack::Scenario> bench_scenarios(bool quick) {
  attack::Scenario pgd;
  pgd.kind = attack::AttackKind::kPgd;
  pgd.severities = quick ? std::vector<double>{0.05, 0.1}
                         : std::vector<double>{0.02, 0.05, 0.1};
  pgd.pgd_steps = 5;
  attack::Scenario fgsm;
  fgsm.kind = attack::AttackKind::kFgsm;
  fgsm.severities = quick ? std::vector<double>{0.1} : std::vector<double>{0.05, 0.1};
  attack::Scenario rotate;
  rotate.kind = attack::AttackKind::kRotate;
  rotate.severities = {15.0};
  return {pgd, fgsm, rotate};
}

/// Perturbs the whole test set in eval_batch chunks — the exact batch
/// geometry (and therefore attack generation) the engine uses.
Tensor attacked_test_set(capsnet::CapsModel& model, const data::Dataset& ds,
                         const attack::AttackSpec& spec, std::int64_t eval_batch) {
  const std::int64_t n = ds.test_x.shape().dim(0);
  Tensor out(ds.test_x.shape());
  const std::int64_t row = ds.test_x.numel() / n;
  for (std::int64_t at = 0; at < n; at += eval_batch) {
    const std::int64_t end = std::min(n, at + eval_batch);
    const std::vector<std::int64_t> labels(ds.test_y.begin() + at, ds.test_y.begin() + end);
    const Tensor adv =
        attack::apply_attack(model, capsnet::slice_rows(ds.test_x, at, end), labels, spec);
    std::memcpy(out.data().data() + at * row, adv.data().data(),
                static_cast<std::size_t>((end - at) * row) * sizeof(float));
  }
  return out;
}

/// The naive serial driver: one (severity x NM) grid where EVERY noisy
/// point regenerates the perturbed test set and runs a full evaluation —
/// no input-keyed cache, no prefix replay, no workers. Salting matches the
/// engine's discipline (grid order, restarting at 1 per severity row).
RobustnessGrid serial_grid(capsnet::CapsModel& model, const data::Dataset& ds,
                           const ResilienceConfig& cfg, const attack::Scenario& scenario,
                           capsnet::OpKind group) {
  RobustnessGrid grid;
  grid.scenario = scenario.name();
  grid.backend = "noise";
  grid.nms = cfg.sweep.nms;
  for (double severity : scenario.severities) {
    const attack::AttackSpec spec = scenario.at(severity);
    grid.severities.push_back(severity);
    std::uint64_t salt = 1;
    for (double nm : cfg.sweep.nms) {
      const Tensor adv = attacked_test_set(model, ds, spec, cfg.eval_batch);
      if (nm == 0.0 && cfg.sweep.na == 0.0) {
        grid.accuracy.push_back(
            capsnet::evaluate(model, adv, ds.test_y, nullptr, cfg.eval_batch));
        continue;
      }
      const std::vector<noise::InjectionRule> rules{
          noise::group_rule(group, noise::NoiseSpec{nm, cfg.sweep.na})};
      noise::GaussianInjector injector(rules, cfg.seed ^ (salt++ * core::kSaltMix));
      grid.accuracy.push_back(
          capsnet::evaluate(model, adv, ds.test_y, &injector, cfg.eval_batch));
    }
  }
  return grid;
}

struct PathResult {
  std::string name;
  double ms = 0.0;
  std::vector<RobustnessGrid> grids;
  core::SweepEngineStats stats;
};

PathResult run_engine_path(const std::string& name, capsnet::CapsModel& model,
                           const data::Dataset& ds, const ResilienceConfig& cfg,
                           const std::vector<attack::Scenario>& scenarios) {
  PathResult r;
  r.name = name;
  const auto t0 = Clock::now();
  core::ResilienceAnalyzer analyzer(model, ds.test_x, ds.test_y, cfg);
  for (const attack::Scenario& scenario : scenarios) {
    r.grids.push_back(analyzer.sweep_attack_noise(scenario, capsnet::OpKind::kMacOutput));
  }
  r.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  r.stats = analyzer.engine_stats();
  return r;
}

bool grids_identical(const std::vector<RobustnessGrid>& a,
                     const std::vector<RobustnessGrid>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].accuracy != b[i].accuracy) return false;
  }
  return true;
}

int run(bool quick, int threads, const std::string& json_path) {
  print_header("Step-8 robustness sweeps: naive serial vs input-keyed cached engine");

  // Untrained tiny CapsNet: robustness-sweep cost depends only on the
  // architecture and test-set size, and CapsNet has the full backward pass
  // FGSM generation exercises.
  capsnet::CapsNetConfig mc = capsnet::CapsNetConfig::tiny();
  mc.input_hw = 16;
  Rng rng(2020);
  capsnet::CapsNetModel model(mc, rng);

  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kMnist;
  spec.hw = mc.input_hw;
  spec.channels = 1;
  spec.train_count = 4;  // Unused; sweeps only read the test split.
  spec.test_count = quick ? 48 : 96;
  spec.seed = 43;
  const data::Dataset ds = data::make_synthetic(spec);

  ResilienceConfig cfg;
  cfg.sweep.nms = quick ? std::vector<double>{0.5, 0.2, 0.1, 0.05, 0.02, 0.0}
                        : std::vector<double>{0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.0};
  cfg.seed = 2020;
  cfg.eval_batch = 24;

  const std::vector<attack::Scenario> scenarios = bench_scenarios(quick);
  std::size_t rows = 0;
  for (const attack::Scenario& s : scenarios) rows += s.severities.size();
  const auto noisy_points =
      static_cast<std::int64_t>(rows * (cfg.sweep.nms.size() - 1));
  const int workers = core::SweepEngine::resolve_threads(threads);
  std::printf("CapsNet tiny %lldx%lld, %lld test images, %zu scenarios, %zu severity "
              "rows, %lld noisy points, %d worker(s)\n\n",
              static_cast<long long>(mc.input_hw), static_cast<long long>(mc.input_hw),
              static_cast<long long>(spec.test_count), scenarios.size(), rows,
              static_cast<long long>(noisy_points), workers);

  PathResult serial;
  serial.name = "serial full-forward";
  {
    const auto t0 = Clock::now();
    for (const attack::Scenario& scenario : scenarios) {
      serial.grids.push_back(
          serial_grid(model, ds, cfg, scenario, capsnet::OpKind::kMacOutput));
    }
    serial.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }

  ResilienceConfig one = cfg;
  one.threads = 1;
  ResilienceConfig par = cfg;
  par.threads = workers;

  const PathResult r_one = run_engine_path("engine serial", model, ds, one, scenarios);
  const PathResult r_par = run_engine_path("engine parallel", model, ds, par, scenarios);

  std::printf("  %-22s %10.1f ms  %7.2f points/s\n", serial.name.c_str(), serial.ms,
              static_cast<double>(noisy_points) / (serial.ms / 1e3));
  const auto report = [&](const PathResult& r) {
    std::printf("  %-22s %10.1f ms  %7.2f points/s  (%.2fx vs serial)\n", r.name.c_str(),
                r.ms, static_cast<double>(noisy_points) / (r.ms / 1e3), serial.ms / r.ms);
  };
  report(r_one);
  report(r_par);
  std::printf("\ninput-keyed cache (parallel run): %lld perturbed sets built, %lld "
              "reused (hit rate %.1f%%); %lld/%lld stage executions skipped (%.1f%%)\n",
              static_cast<long long>(r_par.stats.input_sets),
              static_cast<long long>(r_par.stats.input_cache_hits),
              r_par.stats.input_hit_rate() * 100.0,
              static_cast<long long>(r_par.stats.stages_skipped),
              static_cast<long long>(r_par.stats.stages_total),
              r_par.stats.skip_fraction() * 100.0);

  const bool identical = grids_identical(serial.grids, r_one.grids) &&
                         grids_identical(serial.grids, r_par.grids);
  std::printf("grids bit-identical across all paths: %s\n", identical ? "yes" : "NO");

  const double speedup = serial.ms / r_par.ms;
  JsonFields fields;
  fields.boolean("quick", quick)
      .str("model", "CapsNet-tiny")
      .integer("input_hw", mc.input_hw)
      .integer("test_images", spec.test_count)
      .integer("scenarios", static_cast<std::int64_t>(scenarios.size()))
      .integer("severity_rows", static_cast<std::int64_t>(rows))
      .integer("noisy_points", noisy_points)
      .integer("threads", workers)
      .number("serial_ms", serial.ms, "%.1f")
      .number("engine_serial_ms", r_one.ms, "%.1f")
      .number("parallel_ms", r_par.ms, "%.1f")
      .number("speedup", speedup, "%.2f")
      .number("input_cache_hit_rate", r_par.stats.input_hit_rate(), "%.3f")
      .number("stage_skip_fraction", r_par.stats.skip_fraction(), "%.3f")
      .boolean("bit_identical", identical);
  append_bench_json(json_path, "robustness", fields);

  const bool pass = identical && speedup >= 2.0;
  std::printf("\n%s: parallel engine is %.2fx the naive serial robustness driver "
              "(target >= 2x, bit-identical required)\n",
              pass ? "PASS" : "FAIL", speedup);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  int threads = 0;
  std::string json_path = "BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) threads = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  return redcane::bench::run(quick, threads, json_path);
}
