// Reproduces paper Fig. 11: the distribution of convolution-input values
// of the DeepCaps on CIFAR-10 (10^6 random samples), overall and for
// selected layers.
//
// Paper claims to reproduce: the pooled distribution is approximately
// Gaussian-ish with most mass at small values, and the *first* Caps2D
// layer contributes a secondary peak at mid-range values (driven by the
// input dataset statistics).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "capsnet/trainer.hpp"
#include "noise/range_recorder.hpp"
#include "quant/quantizer.hpp"

using namespace redcane;

namespace {

void ascii_hist(const stats::Histogram& h, const char* title) {
  std::printf("\n%s\n", title);
  double max_freq = 1e-12;
  for (std::size_t b = 0; b < h.bins(); ++b) max_freq = std::max(max_freq, h.frequency(b));
  for (std::size_t b = 0; b < h.bins(); ++b) {
    const int bar = static_cast<int>(48.0 * h.frequency(b) / max_freq);
    std::printf("  %6.0f  %5.2f%%  %s\n", h.bin_center(b), h.frequency(b) * 100.0,
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
}

}  // namespace

int main() {
  bench::Benchmark b = bench::load_benchmark(bench::BenchmarkId::kDeepCapsCifar10);
  bench::print_header(
      "Fig. 11: distribution of conv inputs (8-bit codes), DeepCaps/CIFAR-10");

  // Conv inputs = the activation tensors feeding each convolution. A clean
  // inference over the test set with a recording hook captures them.
  noise::RangeRecorder recorder(200000, 11);
  (void)capsnet::evaluate(*b.model, b.dataset.test_x, b.dataset.test_y, &recorder);

  // Pool all activation sites and quantize to 8-bit codes, as the paper's
  // fixed-point datapath sees them.
  const std::vector<float> pooled =
      recorder.pooled_samples(capsnet::OpKind::kActivation);
  const Tensor pooled_t(Shape{static_cast<std::int64_t>(pooled.size())},
                        std::vector<float>(pooled));
  const quant::QuantParams qp = quant::fit_params(pooled_t, 8);
  stats::Histogram overall(0.0, 256.0, 32);
  for (std::uint32_t code : quant::quantize(pooled_t, qp)) {
    overall.add(static_cast<double>(code));
  }
  std::printf("pooled activation samples: %zu (reservoir-sampled)\n", pooled.size());
  ascii_hist(overall, "pooled conv-input distribution (all layers)");

  // Per-layer view of the paper's highlighted layers. The paper's Fig. 11
  // point is that the distribution is *layer- and dataset-dependent* (its
  // CIFAR-10 peak in Caps2D1 is one instance); we verify the dependence
  // itself, which is what makes NM/NA dataset-dependent in Table IV.
  std::vector<stats::Histogram> layer_hists;
  const char* layers[] = {"Caps2D1", "Caps2D5", "Caps2D9", "Caps2D10"};
  for (const char* layer : layers) {
    const noise::SiteRecord& rec = recorder.record(layer, capsnet::OpKind::kActivation);
    const Tensor t(Shape{static_cast<std::int64_t>(rec.reservoir.size())},
                   std::vector<float>(rec.reservoir));
    stats::Histogram h(0.0, 256.0, 16);
    for (std::uint32_t code : quant::quantize(t, qp)) h.add(static_cast<double>(code));
    ascii_hist(h, (std::string("layer ") + layer).c_str());
    layer_hists.push_back(h);
  }

  const stats::Moments pm = stats::moments(pooled_t);
  std::printf("\npooled moments: mean %.4f std %.4f range [%.4f, %.4f]\n", pm.mean,
              pm.stddev, pm.min, pm.max);

  // Max pairwise L1 distance between per-layer distributions.
  double max_l1 = 0.0;
  for (std::size_t a = 0; a < layer_hists.size(); ++a) {
    for (std::size_t c = a + 1; c < layer_hists.size(); ++c) {
      double l1 = 0.0;
      for (std::size_t bin = 0; bin < layer_hists[a].bins(); ++bin) {
        l1 += std::abs(layer_hists[a].frequency(bin) - layer_hists[c].frequency(bin));
      }
      max_l1 = std::max(max_l1, l1);
    }
  }
  std::printf("max pairwise L1 distance between layer distributions: %.3f\n", max_l1);

  // Shape: the pooled distribution is strongly non-uniform (a peaked
  // region holds a large mass share) and layers differ from one another.
  double peak2 = 0.0;
  std::vector<double> freqs;
  for (std::size_t bin = 0; bin < overall.bins(); ++bin) {
    freqs.push_back(overall.frequency(bin));
  }
  std::sort(freqs.rbegin(), freqs.rend());
  peak2 = freqs[0] + freqs[1];
  std::printf("mass in the two tallest of 32 buckets: %.1f%% (uniform would be 6.3%%)\n",
              peak2 * 100.0);

  const bool peaked = peak2 > 0.20;
  const bool layer_dependent = max_l1 > 0.08;
  std::printf("\nshape check (peaked, non-uniform conv-input distribution; "
              "distribution varies across layers): %s\n",
              (peaked && layer_dependent) ? "PASS" : "FAIL");
  return (peaked && layer_dependent) ? 0 : 1;
}
