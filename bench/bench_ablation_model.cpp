// Ablation D1 (DESIGN.md): does the paper's Gaussian noise model (Eq. 3-4)
// actually reproduce the error a *real* behavioral approximate multiplier
// introduces into a convolution?
//
// Procedure: quantize a conv layer's inputs/weights to 8 bits, run the
// convolution through a behavioral multiplier (ground truth), and compare
// the output-error statistics against the profiler's prediction.
//
// Units note: the profiler reports errors in *code space* (8-bit operand
// codes, representable-range-relative NM as in the paper's Table IV). A
// hardware error of delta codes appears in the dequantized output as
// delta * step_x * step_w — that mapping, not the NM ratio alone, is what
// links Table IV to the injected real-space noise.
#include <cmath>
#include <cstdio>

#include "approx/error_profile.hpp"
#include "approx/library.hpp"
#include "bench_common.hpp"
#include "quant/approx_conv.hpp"
#include "tensor/ops.hpp"
#include "tensor/stats.hpp"

using namespace redcane;

int main() {
  bench::print_header(
      "Ablation D1: Gaussian noise model vs real approximate-multiplier conv");

  Rng rng(42);
  const Tensor x = ops::uniform(Shape{4, 12, 12, 8}, 0.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{3, 3, 8, 16}, -0.4, 0.4, rng);
  const Tensor bias(Shape{16});
  quant::ApproxConvSpec spec;
  spec.pad = 1;

  const Tensor exact = quant::approx_conv2d(x, w, bias, spec, approx::exact_multiplier());
  const quant::QuantParams px = quant::fit_params(x, spec.bits);
  const quant::QuantParams pw = quant::fit_params(w, spec.bits);
  const double code_to_real = px.step() * pw.step();

  std::printf("%-18s %10s %10s %10s %10s %8s\n", "component", "real std", "pred std",
              "real mean", "pred mean", "ratio");

  bool all_within = true;
  for (const char* analog : {"mul8u_NGR", "mul8u_DM1", "mul8u_19DB", "mul8u_12N4",
                             "mul8u_JV3"}) {
    const approx::Multiplier& m = approx::multiplier_by_analog(analog);

    // Ground truth: behavioral multiplier inside the conv.
    const Tensor real_out = quant::approx_conv2d(x, w, bias, spec, m);
    const stats::Moments real_err = stats::moments(ops::sub(real_out, exact));

    // Prediction: code-space error moments at the conv's chain length,
    // mapped to real units via the quantization steps.
    approx::ProfileConfig pc;
    pc.samples = 30000;
    pc.chain_length = static_cast<int>(w.shape().dim(0) * w.shape().dim(1) *
                                       w.shape().dim(2));  // 72 taps.
    pc.seed = 9;
    const approx::ErrorProfile prof =
        approx::profile_multiplier(m, approx::InputDistribution::uniform(), pc);
    const double pred_std = prof.error_moments.stddev * code_to_real;
    const double pred_mean = prof.error_moments.mean * code_to_real;

    const double ratio = pred_std / std::max(1e-12, real_err.stddev);
    std::printf("%-18s %10.5f %10.5f %+10.5f %+10.5f %8.2f\n", m.info().name.c_str(),
                real_err.stddev, pred_std, real_err.mean, pred_mean, ratio);
    // Unbiased families (DRUM) land within ~10% of reality. Truncation
    // families come in ~2x *under*-predicted: their per-tap error is a
    // deterministic function of the operand low bits, and weight codes are
    // reused across every output of a channel, so output errors correlate —
    // variance the iid MAC-chain model cannot see. 3x headroom still
    // separates the components by an order of magnitude of NM, which is
    // what the methodology's ranking needs.
    all_within = all_within && ratio > 1.0 / 3.0 && ratio < 3.0;
  }

  std::printf("\nshape check (predicted noise std within 3x of the real behavioral "
              "error; DRUM-family within ~10%%): %s\n",
              all_within ? "PASS" : "FAIL");
  return all_within ? 0 : 1;
}
