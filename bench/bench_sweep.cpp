// Sweep-engine throughput: the run_redcane sweep phases (Step 2 group
// sweeps + Step 4 layer drill-down for the two historically non-resilient
// groups) driven four ways over the same model and test set:
//
//   serial          — the pre-engine driver: every grid point is a full
//                     serial re-evaluation of the whole test set.
//   parallel        — SweepEngine worker pool, prefix cache off.
//   cache           — prefix-activation caching, single worker.
//   parallel+cache  — the engine as run_redcane uses it.
//
// All four must produce bit-identical resilience curves; the combined
// engine must be >= 2x the serial driver (the gate this binary exits on).
// Results are appended as one JSON object to BENCH_sweep.json so the perf
// trajectory of the engine is machine-readable across commits.
//
// Usage: bench_sweep [--quick] [--threads N] [--json PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/groups.hpp"
#include "core/resilience.hpp"
#include "core/sweep_engine.hpp"
#include "noise/injector.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;
using core::ResilienceConfig;
using core::ResilienceCurve;

struct SweepJob {
  capsnet::OpKind kind;
  std::optional<std::string> layer;
};

/// Step 2 (all four groups) + Step 4 (layer-wise for MAC outputs and
/// activations, the groups the paper finds non-resilient and drills into).
std::vector<SweepJob> sweep_phase_jobs(capsnet::CapsModel& model) {
  std::vector<SweepJob> jobs;
  for (capsnet::OpKind kind : core::all_groups()) jobs.push_back({kind, std::nullopt});
  for (capsnet::OpKind kind : {capsnet::OpKind::kMacOutput, capsnet::OpKind::kActivation}) {
    for (const std::string& layer : model.layer_names()) jobs.push_back({kind, layer});
  }
  return jobs;
}

/// The pre-engine serial driver (one full evaluation per point), kept here
/// as the measured baseline and bit-exactness reference. `base` is the
/// memoized clean accuracy: the old analyzer evaluated it once for all
/// sweeps, so the timed loop must not re-pay it per job.
ResilienceCurve serial_sweep(capsnet::CapsModel& model, const data::Dataset& ds,
                             const ResilienceConfig& cfg, const SweepJob& job, double base) {
  ResilienceCurve curve;
  curve.kind = job.kind;
  curve.layer = job.layer;
  std::uint64_t salt = 1;
  for (double nm : cfg.sweep.nms) {
    const noise::NoiseSpec spec{nm, cfg.sweep.na};
    std::vector<noise::InjectionRule> rules;
    if (job.layer.has_value()) {
      rules.push_back(noise::layer_rule(job.kind, *job.layer, spec));
    } else {
      rules.push_back(noise::group_rule(job.kind, spec));
    }
    double acc = base;
    if (!(nm == 0.0 && cfg.sweep.na == 0.0)) {
      noise::GaussianInjector injector(rules, cfg.seed ^ (salt++ * core::kSaltMix));
      acc = capsnet::evaluate(model, ds.test_x, ds.test_y, &injector, cfg.eval_batch);
    }
    curve.nms.push_back(nm);
    curve.drop_pct.push_back((acc - base) * 100.0);
  }
  return curve;
}

struct PathResult {
  std::string name;
  double ms = 0.0;
  std::vector<ResilienceCurve> curves;
  core::SweepEngineStats stats;
};

PathResult run_engine_path(const std::string& name, capsnet::CapsModel& model,
                           const data::Dataset& ds, ResilienceConfig cfg,
                           const std::vector<SweepJob>& jobs) {
  PathResult r;
  r.name = name;
  const auto t0 = Clock::now();
  core::ResilienceAnalyzer analyzer(model, ds.test_x, ds.test_y, cfg);
  for (const SweepJob& job : jobs) {
    r.curves.push_back(job.layer.has_value() ? analyzer.sweep_layer(job.kind, *job.layer)
                                             : analyzer.sweep_group(job.kind));
  }
  r.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  r.stats = analyzer.engine_stats();
  return r;
}

bool curves_identical(const std::vector<ResilienceCurve>& a,
                      const std::vector<ResilienceCurve>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].drop_pct != b[i].drop_pct) return false;
  }
  return true;
}

int run(bool quick, int threads, const std::string& json_path) {
  print_header("Resilience-sweep engine: serial vs parallel vs prefix-cache");

  // Untrained tiny DeepCaps: sweep cost depends only on architecture and
  // test-set size, and the 18-layer topology is the paper's heavy case.
  // --quick shrinks the grid and the test set but keeps the full 16x16
  // per-forward cost: with the SIMD microkernel core, smaller maps finish
  // their forwards so fast that fixed per-point costs (RNG draws, hook
  // emits, scoring) dominate and Amdahl pushes the engine's ratio under
  // the gate even though every path got absolutely faster. At 16x16 the
  // smoke run still measures the engine, not the overheads, in CI seconds.
  capsnet::DeepCapsConfig mc = capsnet::DeepCapsConfig::tiny();
  mc.input_hw = 16;
  Rng rng(2020);
  capsnet::DeepCapsModel model(mc, rng);

  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kCifar10;
  spec.hw = mc.input_hw;
  spec.channels = 3;
  spec.train_count = 4;  // Unused; sweeps only read the test split.
  spec.test_count = quick ? 48 : 96;
  spec.seed = 41;
  const data::Dataset ds = data::make_synthetic(spec);

  ResilienceConfig cfg;
  if (quick) cfg.sweep.nms = {0.5, 0.2, 0.05, 0.02, 0.005, 0.0};
  cfg.seed = 2020;
  cfg.eval_batch = 32;

  const std::vector<SweepJob> jobs = sweep_phase_jobs(model);
  std::int64_t points = 0;
  for (const SweepJob& job : jobs) {
    (void)job;
    points += static_cast<std::int64_t>(cfg.sweep.nms.size()) - 1;  // NM=0 is free.
  }
  const int workers = core::SweepEngine::resolve_threads(threads);
  std::printf("DeepCaps tiny %lldx%lld, %lld test images, %zu sweeps, %lld noisy points, "
              "%d worker(s)\n\n",
              static_cast<long long>(mc.input_hw), static_cast<long long>(mc.input_hw),
              static_cast<long long>(spec.test_count), jobs.size(),
              static_cast<long long>(points), workers);

  // Serial reference (pre-engine driver): one clean baseline evaluation,
  // then one full evaluation per noisy point.
  PathResult serial;
  serial.name = "serial full-forward";
  {
    const auto t0 = Clock::now();
    const double base =
        capsnet::evaluate(model, ds.test_x, ds.test_y, nullptr, cfg.eval_batch);
    for (const SweepJob& job : jobs) {
      serial.curves.push_back(serial_sweep(model, ds, cfg, job, base));
    }
    serial.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }

  ResilienceConfig par = cfg;
  par.threads = workers;
  par.prefix_cache = false;
  ResilienceConfig cache = cfg;
  cache.threads = 1;
  cache.prefix_cache = true;
  ResilienceConfig both = cfg;
  both.threads = workers;
  both.prefix_cache = true;

  const PathResult r_par = run_engine_path("parallel", model, ds, par, jobs);
  const PathResult r_cache = run_engine_path("prefix-cache", model, ds, cache, jobs);
  const PathResult r_both = run_engine_path("parallel+cache", model, ds, both, jobs);

  const auto report = [&](const PathResult& r) {
    std::printf("  %-22s %10.1f ms  %7.2f points/s  (%.2fx vs serial)\n", r.name.c_str(),
                r.ms, static_cast<double>(points) / (r.ms / 1e3), serial.ms / r.ms);
  };
  std::printf("  %-22s %10.1f ms  %7.2f points/s\n", serial.name.c_str(), serial.ms,
              static_cast<double>(points) / (serial.ms / 1e3));
  report(r_par);
  report(r_cache);
  report(r_both);
  std::printf("\nprefix cache (parallel+cache run): %lld hits, %lld/%lld stage executions "
              "skipped (%.1f%%)\n",
              static_cast<long long>(r_both.stats.cache_hits),
              static_cast<long long>(r_both.stats.stages_skipped),
              static_cast<long long>(r_both.stats.stages_total),
              r_both.stats.skip_fraction() * 100.0);

  const bool identical = curves_identical(serial.curves, r_par.curves) &&
                         curves_identical(serial.curves, r_cache.curves) &&
                         curves_identical(serial.curves, r_both.curves);
  std::printf("curves bit-identical across all paths: %s\n", identical ? "yes" : "NO");

  const double speedup = serial.ms / r_both.ms;
  JsonFields fields;
  fields.boolean("quick", quick)
      .str("model", "DeepCaps-tiny")
      .integer("input_hw", mc.input_hw)
      .integer("test_images", spec.test_count)
      .integer("sweeps", static_cast<std::int64_t>(jobs.size()))
      .integer("noisy_points", points)
      .integer("threads", workers)
      .number("serial_ms", serial.ms, "%.1f")
      .number("parallel_ms", r_par.ms, "%.1f")
      .number("cache_ms", r_cache.ms, "%.1f")
      .number("parallel_cache_ms", r_both.ms, "%.1f")
      .number("speedup", speedup, "%.2f")
      .number("stage_skip_fraction", r_both.stats.skip_fraction(), "%.3f")
      .boolean("bit_identical", identical);
  if (append_bench_json(json_path, "sweep", fields)) {
    std::printf("appended results to %s\n", json_path.c_str());
  }

  const bool pass = identical && speedup >= 2.0;
  std::printf("\n%s: parallel+cache is %.2fx the serial sweep driver "
              "(target >= 2x, bit-identical required)\n",
              pass ? "PASS" : "FAIL", speedup);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  int threads = 0;
  std::string json_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) threads = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  return redcane::bench::run(quick, threads, json_path);
}
