// Extension: the design-time energy-quality tradeoff curve the paper's
// introduction motivates ("enabling design-/run-time energy-quality
// tradeoffs").
//
// The resilience curves are measured once (Steps 1-5) on DeepCaps/
// CIFAR-10 with a fine NM grid; Step 6 is then re-run for a sweep of
// per-operation accuracy budgets. Each resulting design is validated by
// joint injection and priced by the energy model, tracing out an
// accuracy-vs-energy Pareto front.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "core/methodology.hpp"
#include "energy/energy_model.hpp"
#include "noise/injector.hpp"

using namespace redcane;

namespace {

const core::ResilienceCurve* curve_for_site(const core::MethodologyResult& r,
                                            const core::Site& site) {
  for (const core::ResilienceCurve& c : r.layer_curves) {
    if (c.kind == site.kind && c.layer == site.layer) return &c;
  }
  for (const core::ResilienceCurve& c : r.group_curves) {
    if (c.kind == site.kind) return &c;
  }
  return nullptr;
}

}  // namespace

int main() {
  bench::Benchmark b = bench::load_benchmark(bench::BenchmarkId::kDeepCapsCifar10);
  bench::print_header("Pareto sweep: accuracy vs energy across Step-6 budgets "
                      "(DeepCaps/CIFAR-10)");

  // Steps 1-5 once, with a fine NM grid so tight budgets can resolve.
  core::MethodologyConfig mc;
  mc.resilience.seed = 808;
  mc.resilience.sweep.nms = {0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0};
  const core::MethodologyResult r =
      core::run_redcane(*b.model, b.dataset.test_x, b.dataset.test_y, b.dataset.name, mc);
  std::printf("baseline accuracy: %.2f%% (%lld noisy evaluations for the curves)\n\n",
              r.baseline_accuracy * 100.0, static_cast<long long>(r.evaluations_run));

  const auto profiled = core::profile_library(approx::InputDistribution::uniform(),
                                              mc.profile_chain_length, mc.profile_samples,
                                              mc.profile_seed);
  const auto layers = energy::count_deepcaps_layers(
      dynamic_cast<capsnet::DeepCapsModel&>(*b.model).config());
  const energy::UnitEnergy ue = energy::UnitEnergy::paper_45nm();
  const double exact_pj = energy::approximated_energy_pj(layers, ue, {});

  std::printf("%-12s %12s %12s %14s %20s\n", "budget [pp]", "accuracy", "drop",
              "energy saving", "distinct components");

  double prev_saving = -1.0;
  bool saving_monotone = true;
  bool tight_budget_safe = false;
  bool spread_seen = false;
  for (double budget : {0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0}) {
    // Step 6 under this budget.
    std::vector<noise::InjectionRule> rules;
    std::vector<energy::LayerMultiplierChoice> choices;
    std::vector<std::string> components;
    for (const core::Site& site : r.sites) {
      const core::ResilienceCurve* curve = curve_for_site(r, site);
      const double tolerable = curve ? curve->tolerable_nm(budget) : 0.0;
      const approx::Multiplier* pick = core::select_component(profiled, tolerable);
      for (const core::ProfiledComponent& pc : profiled) {
        if (pc.mul != pick) continue;
        rules.push_back(
            noise::layer_rule(site.kind, site.layer, noise::NoiseSpec{pc.nm, pc.na}));
        break;
      }
      if (site.kind == capsnet::OpKind::kMacOutput) {
        choices.push_back({site.layer, pick});
      }
      if (std::find(components.begin(), components.end(), pick->info().name) ==
          components.end()) {
        components.push_back(pick->info().name);
      }
    }
    noise::GaussianInjector injector(rules, 809);
    const double acc =
        capsnet::evaluate(*b.model, b.dataset.test_x, b.dataset.test_y, &injector);
    const double saving =
        1.0 - energy::approximated_energy_pj(layers, ue, choices) / exact_pj;

    std::printf("%-12.2f %11.2f%% %+11.2f%% %13.1f%% %20zu\n", budget, acc * 100.0,
                (acc - r.baseline_accuracy) * 100.0, saving * 100.0, components.size());
    saving_monotone = saving_monotone && saving >= prev_saving - 1e-9;
    // The budget is per operation; injecting all ~280 sites at once
    // compounds, so the joint drop exceeds the per-site budget. A
    // compositional designer would split the budget across sites; we
    // assert the joint drop stays within a single-digit multiple.
    if (budget <= 0.5) tight_budget_safe = acc >= r.baseline_accuracy - 0.05;
    spread_seen = spread_seen || (prev_saving >= 0.0 && saving > prev_saving + 1e-9);
    prev_saving = saving;
  }

  const bool ok = saving_monotone && tight_budget_safe && spread_seen;
  std::printf("\ntradeoff resolved across budgets: %s\n",
              spread_seen ? "yes" : "no (all budgets admit the same design)");
  std::printf("\nshape check (energy saving monotone and budget-resolved; tightest "
              "budget keeps the jointly-injected design within 5 pp): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
