// Reproduces paper Table I (operation counts and unit energies of the
// DeepCaps inference) and Fig. 4 (energy breakdown per operation type).
//
// Paper claim to reproduce: multiplications dominate the computational
// energy (~96%), additions are frequent but cheap (~3%), everything else
// is noise — hence approximating multipliers first.
#include <cstdio>

#include "bench_common.hpp"
#include "energy/op_counter.hpp"

using namespace redcane;

namespace {

const char* human(double v) {
  static thread_local char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f G", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f M", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f K", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace

int main() {
  bench::print_header(
      "Table I: # ops and unit energy of DeepCaps inference (paper profile)");

  const capsnet::DeepCapsConfig cfg = capsnet::DeepCapsConfig::paper();
  const energy::OpCounts ours = energy::count_deepcaps(cfg);
  const energy::UnitEnergy ue = energy::UnitEnergy::paper_45nm();

  struct Row {
    energy::OpType type;
    double paper_count;
  };
  // Paper-reported counts (their synthesis covers the full 64x64-input
  // DeepCaps variant; our analytic count walks the published 32x32
  // architecture, so absolute counts differ by a constant factor while
  // ratios and the energy ordering must match).
  const Row rows[] = {
      {energy::OpType::kAdd, 1.91e9},  {energy::OpType::kMul, 2.15e9},
      {energy::OpType::kDiv, 4.17e6},  {energy::OpType::kExp, 175e3},
      {energy::OpType::kSqrt, 502e3},
  };

  std::printf("%-16s %14s %14s %14s\n", "OPERATION", "# OPS (ours)", "# OPS (paper)",
              "Unit E [pJ]");
  for (const Row& r : rows) {
    std::printf("%-16s %14s", energy::op_type_name(r.type),
                human(static_cast<double>(ours.of(r.type))));
    std::printf(" %14s %14.4f\n", human(r.paper_count), ue.of(r.type));
  }

  const double mul_add_ratio_ours =
      static_cast<double>(ours.mul) / static_cast<double>(ours.add);
  std::printf("\nmul/add count ratio: ours %.2f, paper %.2f\n", mul_add_ratio_ours,
              2.15e9 / 1.91e9);

  bench::print_header("Fig. 4: energy breakdown per operation type");
  const double mul_share = ours.energy_share(energy::OpType::kMul, ue);
  const double add_share = ours.energy_share(energy::OpType::kAdd, ue);
  const double other_share = 1.0 - mul_share - add_share;
  std::printf("%-8s %8s   %s\n", "op", "share", "paper");
  std::printf("%-8s %7.1f%%   96%%\n", "Mult", mul_share * 100.0);
  std::printf("%-8s %7.1f%%   3%%\n", "Add", add_share * 100.0);
  std::printf("%-8s %7.1f%%   <1%%\n", "Other", other_share * 100.0);

  const bool shape_holds = mul_share > 0.90 && add_share < 0.08;
  std::printf("\nshape check (mult dominates >90%%, adds <8%%): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
