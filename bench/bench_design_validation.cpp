// Extension: end-to-end validation of the methodology's output.
//
// The paper stops at Step 6 — it selects approximate components per
// operation but never measures the accuracy of the *finished* approximate
// CapsNet. This bench closes the loop: after running ReD-CaNe, it injects
// every site's selected component noise (its profiled NM and NA)
// simultaneously at all sites, measures the resulting accuracy, and prices
// the design with the energy model.
#include <cstdio>

#include "bench_common.hpp"
#include "capsnet/capsnet_model.hpp"
#include "core/methodology.hpp"
#include "energy/energy_model.hpp"
#include "noise/injector.hpp"

using namespace redcane;

int main() {
  bool ok = true;
  for (bench::BenchmarkId id :
       {bench::BenchmarkId::kCapsNetMnist, bench::BenchmarkId::kDeepCapsCifar10}) {
    bench::Benchmark b = bench::load_benchmark(id);
    bench::print_header(std::string("Design validation: approximate ") +
                        bench::benchmark_name(id));

    core::MethodologyConfig mc;
    mc.resilience.seed = 606;
    mc.tolerance_pct = 1.0;
    const core::MethodologyResult r =
        core::run_redcane(*b.model, b.dataset.test_x, b.dataset.test_y, b.dataset.name, mc);

    // Arm one injection rule per site with exactly the selected component's
    // profiled NM/NA (the profile Step 6 selected from).
    auto noise_of = [&](const approx::Multiplier* m) {
      for (const core::ProfiledComponent& pc : r.profiled) {
        if (pc.mul == m) return noise::NoiseSpec{pc.nm, pc.na};
      }
      return noise::NoiseSpec{};
    };
    std::vector<noise::InjectionRule> rules;
    for (const core::SiteSelection& s : r.selections) {
      rules.push_back(noise::layer_rule(s.site.kind, s.site.layer, noise_of(s.component)));
    }
    noise::GaussianInjector injector(rules, /*seed=*/607);
    const double approx_acc =
        capsnet::evaluate(*b.model, b.dataset.test_x, b.dataset.test_y, &injector);
    const double drop = (approx_acc - r.baseline_accuracy) * 100.0;

    std::printf("baseline accuracy:            %.2f%%\n", r.baseline_accuracy * 100.0);
    std::printf("approximate-design accuracy:  %.2f%%  (drop %+.2f pp, %lld sites "
                "injected)\n",
                approx_acc * 100.0, drop, static_cast<long long>(injector.injections()));
    std::printf("mean MAC-datapath power saving: %.1f%%\n",
                r.mean_mac_power_saving() * 100.0);

    // Energy of the designed datapath (MAC-site selections per layer).
    std::vector<energy::LayerMultiplierChoice> choices;
    for (const core::SiteSelection& s : r.selections) {
      if (s.site.kind == capsnet::OpKind::kMacOutput) {
        choices.push_back({s.site.layer, s.component});
      }
    }
    const bool deepcaps = id == bench::BenchmarkId::kDeepCapsCifar10;
    const auto layers =
        deepcaps
            ? energy::count_deepcaps_layers(
                  dynamic_cast<capsnet::DeepCapsModel&>(*b.model).config())
            : energy::count_capsnet_layers(
                  dynamic_cast<capsnet::CapsNetModel&>(*b.model).config());
    const energy::UnitEnergy ue = energy::UnitEnergy::paper_45nm();
    const double exact_pj = energy::approximated_energy_pj(layers, ue, {});
    const double approx_pj = energy::approximated_energy_pj(layers, ue, choices);
    std::printf("inference energy: %.2f nJ -> %.2f nJ (saving %.1f%%)\n",
                exact_pj / 1e3, approx_pj / 1e3, (1.0 - approx_pj / exact_pj) * 100.0);

    // The design was built with a 1 pp per-operation budget; injecting all
    // sites at once compounds, so grant the joint design a few pp.
    ok = ok && drop > -5.0 && (1.0 - approx_pj / exact_pj) > 0.10;
  }

  std::printf("\nshape check (joint injection of every selected component keeps the "
              "design within a few pp of baseline while saving >10%% energy): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
