// Distributed sweep throughput: the standard dist job (dist/job) run two
// ways over the same recipe:
//
//   serial       — the in-process ResilienceAnalyzer reference, one worker
//                  thread, one OpenMP thread (run_job_in_process).
//   distributed  — a coordinator plus N worker loops (threads here; real
//                  deployments use processes — the protocol is identical)
//                  on a TCP loopback socket, each worker with its own
//                  independently rebuilt model/dataset/engine pinned to a
//                  single thread. Worker processes are the parallelism.
//
// Both paths must produce bit-identical grids; the full profile must be
// >= 2x the serial reference at 4 workers (the gate this binary exits on)
// when the machine has at least as many hardware threads as workers — on
// smaller machines the speedup is core-capped and the gate becomes an
// overhead bound instead. --quick shrinks the job for CI, where protocol
// overhead dominates the tiny shards, so the gate drops to completion +
// identity + a loose floor. Results append one JSON line (shared schema, bench_common) to
// BENCH_dist.json, or BENCH_dist_ci.json under --quick.
//
// Usage: bench_dist [--quick] [--workers N] [--json PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.hpp"
#include "core/sweep_plan.hpp"
#include "dist/coordinator.hpp"
#include "dist/job.hpp"
#include "dist/worker.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int run(bool quick, int workers, std::string json_path) {
  const std::string profile = quick ? "quick" : "full";
  if (json_path.empty())
    json_path = quick ? "BENCH_dist_ci.json" : "BENCH_dist.json";
  print_header("Distributed sweep execution: coordinator + " +
               std::to_string(workers) + " workers vs in-process serial (" +
               profile + " profile)");

#ifdef _OPENMP
  // The comparison is 1 thread vs N single-threaded workers; don't let the
  // serial reference quietly use the whole machine.
  omp_set_num_threads(1);
#endif

  // Serial reference (also the bitwise-identity baseline).
  dist::StandardJob ref_job = dist::make_standard_job(profile);
  ref_job.rc.threads = 1;
  const std::size_t shard_count = ref_job.shards.size();
  std::printf("job %016llx: %zu shards, %lld test images\n",
              static_cast<unsigned long long>(ref_job.job_hash), shard_count,
              static_cast<long long>(ref_job.dataset.test_x.shape().dim(0)));
  const Clock::time_point t_serial = Clock::now();
  const dist::JobGrids reference = dist::run_job_in_process(ref_job);
  const double serial_ms = ms_since(t_serial);
  std::printf("  %-22s %10.1f ms\n", "in-process serial", serial_ms);

  // Distributed run: coordinator + N worker loops over TCP loopback.
  dist::StandardJob job = dist::make_standard_job(profile);
  dist::CoordinatorConfig cfg;
  cfg.addr = "tcp:127.0.0.1:0";
  cfg.job_hash = job.job_hash;
  core::SweepEngine local_engine(*job.model, job.dataset.test_x, job.dataset.test_y,
                                 dist::job_engine_config(job, /*threads=*/1));
  dist::Coordinator coordinator(cfg, job.shards,
                                [&local_engine](const core::SweepShard& s) {
                                  return core::run_shard(local_engine, s);
                                });
  {
    std::string error;
    if (!coordinator.listen(&error)) {
      std::fprintf(stderr, "listen failed: %s\n", error.c_str());
      return 1;
    }
  }

  std::vector<dist::WorkerStats> worker_stats(static_cast<std::size_t>(workers));
  std::vector<std::thread> worker_threads;
  for (int i = 0; i < workers; ++i) {
    worker_threads.emplace_back([&, i] {
      // Each worker rebuilds the job from the recipe, exactly as a worker
      // process would — model/dataset/engine construction included.
      dist::StandardJob wjob = dist::make_standard_job(profile);
      core::SweepEngine engine(*wjob.model, wjob.dataset.test_x, wjob.dataset.test_y,
                               dist::job_engine_config(wjob, /*threads=*/1));
      dist::WorkerConfig wc;
      wc.addr = coordinator.bound_addr();
      wc.name = "w" + std::to_string(i);
      wc.job_hash = wjob.job_hash;
      worker_stats[static_cast<std::size_t>(i)] = dist::run_worker(engine, wc);
    });
  }

  const Clock::time_point t_dist = Clock::now();
  const dist::CoordinatorResult result = coordinator.run();
  const double dist_ms = ms_since(t_dist);
  for (std::thread& t : worker_threads) t.join();
  std::printf("  %-22s %10.1f ms  (%.2fx vs serial)\n", "distributed", dist_ms,
              serial_ms / dist_ms);
  for (int i = 0; i < workers; ++i)
    std::printf("    worker w%d: %llu shards\n", i,
                static_cast<unsigned long long>(
                    worker_stats[static_cast<std::size_t>(i)].shards_done));

  if (!result.complete) {
    std::fprintf(stderr, "FAIL: distributed run incomplete: %s\n",
                 result.error.c_str());
    return 1;
  }
  const bool reconciles = result.stats.reconciles();
  const dist::JobGrids grids = dist::assemble_job(job, result.outcomes);
  const bool identical = dist::grids_identical(grids, reference);
  const double speedup = serial_ms / dist_ms;
  std::printf("grids bit-identical to in-process serial: %s\n",
              identical ? "yes" : "NO");
  std::printf("shard accounting reconciles: %s  (assigned=%lld ok=%lld "
              "stolen=%lld lost=%lld)\n",
              reconciles ? "yes" : "NO",
              static_cast<long long>(result.stats.assigned),
              static_cast<long long>(result.stats.result_ok),
              static_cast<long long>(result.stats.stolen),
              static_cast<long long>(result.stats.lost));

  JsonFields fields;
  fields.boolean("quick", quick)
      .str("profile", profile)
      .integer("shards", static_cast<std::int64_t>(shard_count))
      .integer("workers", workers)
      .integer("hw_threads", std::thread::hardware_concurrency())
      .integer("test_images", ref_job.dataset.test_x.shape().dim(0))
      .number("serial_ms", serial_ms, "%.1f")
      .number("dist_ms", dist_ms, "%.1f")
      .number("speedup", speedup, "%.2f")
      .integer("assigned", result.stats.assigned)
      .integer("result_ok", result.stats.result_ok)
      .integer("stolen", result.stats.stolen)
      .integer("lost", result.stats.lost)
      .boolean("degraded", result.stats.degraded)
      .boolean("reconciles", reconciles)
      .boolean("bit_identical", identical);
  append_bench_json(json_path, "dist", fields);

  // Full gate: with real parallel hardware the fleet must pay for its
  // sockets (>= 2x at 4 workers). On a box with fewer cores than workers
  // the speedup is physically capped near cores/1, so the gate drops to an
  // overhead bound: distribution must not cost more than ~2x serial even
  // time-sliced onto one core. Quick gate: the CI job is tiny (protocol
  // overhead dominates ~ms shards), so only a loose anti-regression floor
  // on top of the correctness checks.
  const unsigned cores = std::thread::hardware_concurrency();
  double floor = 2.0;
  if (quick) {
    floor = 0.15;
  } else if (cores < static_cast<unsigned>(workers)) {
    std::printf("note: %u hardware threads < %d workers; speedup is "
                "core-capped, gating on overhead instead\n",
                cores, workers);
    floor = 0.5;
  }
  const bool pass = identical && reconciles && speedup >= floor;
  std::printf("\n%s: distributed is %.2fx in-process serial at %d workers "
              "(target >= %.1fx, bit-identical + reconciled required)\n",
              pass ? "PASS" : "FAIL", speedup, workers, floor);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  int workers = 4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
      workers = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  return redcane::bench::run(quick, workers, json_path);
}
