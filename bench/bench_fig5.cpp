// Reproduces paper Fig. 5: optimization potential of applying approximate
// components to the DeepCaps datapath.
//
// Scenarios: Acc (all exact), XM (approximate multipliers, NGR), XA
// (approximate adders, 5LT), XAM (both). Paper savings: XM -28.3%,
// XA -1.9%, XAM -30.2%.
#include <cmath>
#include <cstdio>

#include "approx/library.hpp"
#include "bench_common.hpp"
#include "energy/energy_model.hpp"

using namespace redcane;

int main() {
  bench::print_header("Fig. 5: optimization potential (Acc / XM / XA / XAM)");

  const energy::OpCounts ops = energy::count_deepcaps(capsnet::DeepCapsConfig::paper());
  const energy::UnitEnergy ue = energy::UnitEnergy::paper_45nm();
  const approx::Multiplier& ngr = approx::multiplier_by_analog("mul8u_NGR");
  const approx::Adder& lt5 = approx::adder_by_name("axa_loa6");  // add8u_5LT analog.

  const auto scenarios = energy::optimization_potential(ops, ue, ngr, lt5);
  const double paper_savings[] = {0.0, 28.3, 1.9, 30.2};

  std::printf("%-6s %16s %12s %12s\n", "case", "energy [uJ]", "saving", "paper");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    std::printf("%-6s %16.2f %11.1f%% %11.1f%%\n", scenarios[i].label.c_str(),
                scenarios[i].energy_pj / 1e6, scenarios[i].saving * 100.0,
                paper_savings[i]);
  }

  const double xm = scenarios[1].saving * 100.0;
  const double xa = scenarios[2].saving * 100.0;
  const double xam = scenarios[3].saving * 100.0;
  const bool shape_holds = xm > 20.0 && xa < 5.0 && xam > xm && std::abs(xam - xm - xa) < 0.5;
  std::printf(
      "\nshape check (XM >> XA, XAM ~= XM + XA, XM within a few points of "
      "paper's -28.3%%): %s\n",
      shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
