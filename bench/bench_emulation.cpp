// Behavioral-emulation throughput: batched LUT-datapath execution vs the
// per-image approx_conv reference path.
//
//   per-image — quant::approx_conv2d called once per sample, the usage
//               pattern of the pre-backend validation flows (and of any
//               per-request serving loop): every call re-fits quantization
//               params, rebuilds the 256x256 product table (65536 virtual
//               multiplier calls), and runs a small integer GEMM.
//   batched   — the same conv executed once over the whole batch through
//               the shared LUT-accumulate core (quant/lut_gemm.hpp): one
//               table build amortized over N images, one big masked
//               integer GEMM with OpenMP row parallelism, all staging in
//               the per-thread workspace arena.
//
// The batched path must be >= 2x the per-image path — the gate this binary
// exits on. A second (ungated, reported) section measures the full-network
// EmulatedBackend the serving runtime's "emulated" variant runs: batched
// micro-batch inference vs per-image inference. Results are appended as
// one JSON object to BENCH_emulation.json.
//
// Usage: bench_emulation [--quick] [--json PATH]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "approx/library.hpp"
#include "backend/backend.hpp"
#include "bench_common.hpp"
#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "quant/approx_conv.hpp"
#include "tensor/ops.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int run(bool quick, const std::string& json_path) {
  print_header("Behavioral emulation: batched LUT datapath vs per-image approx_conv");

  // 16x16 keeps the per-image GEMM below the per-call table build — the
  // cost batching amortizes — matching the tiny-profile serving geometry;
  // at much larger extents the (irreducible) GEMM dominates both modes.
  const std::int64_t hw = quick ? 14 : 16;
  const std::int64_t batch = quick ? 16 : 32;
  const int reps = quick ? 3 : 5;
  const approx::Multiplier& mul = approx::multiplier_by_name("axm_drum4_dm1");

  Rng rng(2020);
  const Tensor x = ops::uniform(Shape{batch, hw, hw, 1}, 0.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{9, 9, 1, 8}, -0.5, 0.5, rng);
  const Tensor bias = ops::uniform(Shape{8}, -0.1, 0.1, rng);
  quant::ApproxConvSpec spec;

  // Correctness guard before timing: the batched emulated conv with the
  // accurate multiplier must track the exact reference within quantization
  // error, or the speedup below is measuring broken math.
  {
    const Tensor ref = quant::reference_conv2d(x, w, bias, spec);
    const Tensor emu = quant::approx_conv2d(x, w, bias, spec, approx::exact_multiplier());
    double max_err = 0.0;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      max_err = std::max(max_err, std::abs(static_cast<double>(ref.at(i) - emu.at(i))));
    }
    if (max_err > 0.25) {
      std::printf("FAIL: exact-multiplier emulation off by %.3f vs reference\n", max_err);
      return 1;
    }
  }

  // Warm the workspace arenas and the page cache.
  (void)quant::approx_conv2d(x, w, bias, spec, mul);

  double per_image_ms = 0.0;
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      for (std::int64_t i = 0; i < batch; ++i) {
        (void)quant::approx_conv2d(capsnet::slice_rows(x, i, i + 1), w, bias, spec, mul);
      }
    }
    per_image_ms = ms_since(t0) / reps;
  }
  double batched_ms = 0.0;
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      (void)quant::approx_conv2d(x, w, bias, spec, mul);
    }
    batched_ms = ms_since(t0) / reps;
  }
  const double conv_speedup = per_image_ms / batched_ms;
  std::printf("conv 9x9, %lldx%lld, %lld images, drum4 LUT datapath:\n",
              static_cast<long long>(hw), static_cast<long long>(hw),
              static_cast<long long>(batch));
  std::printf("  per-image  %10.2f ms  (%6.1f img/s)\n", per_image_ms,
              1e3 * static_cast<double>(batch) / per_image_ms);
  std::printf("  batched    %10.2f ms  (%6.1f img/s)  -> %.2fx\n", batched_ms,
              1e3 * static_cast<double>(batch) / batched_ms, conv_speedup);

  // Full-network behavioral emulation (the serving "emulated" variant):
  // whole micro-batch through EmulatedBackend vs one image at a time. The
  // tiny profile's stacked 9x9 kernels need at least 20x20 inputs.
  const std::int64_t model_hw = 20;
  const std::int64_t model_batch = quick ? 8 : batch;
  const Tensor mx = ops::uniform(Shape{model_batch, model_hw, model_hw, 1}, 0.0, 1.0, rng);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = model_hw;
  Rng mrng(7);
  capsnet::CapsNetModel model(cfg, mrng);
  backend::EmulationPlan plan;
  for (const std::string& layer : model.layer_names()) {
    (void)plan.set_by_name(layer, mul.info().name);
  }
  const backend::EmulatedBackend emulated(std::move(plan));
  (void)emulated.run(model, capsnet::slice_rows(mx, 0, 1), 0);  // Warm-up.

  double model_single_ms = 0.0;
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      for (std::int64_t i = 0; i < model_batch; ++i) {
        (void)emulated.run(model, capsnet::slice_rows(mx, i, i + 1), 0);
      }
    }
    model_single_ms = ms_since(t0) / reps;
  }
  double model_batched_ms = 0.0;
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) (void)emulated.run(model, mx, 0);
    model_batched_ms = ms_since(t0) / reps;
  }
  const double model_speedup = model_single_ms / model_batched_ms;
  std::printf("full CapsNet-tiny emulated forward (%zu planned MAC layers, %lld images):\n",
              emulated.plan().size(), static_cast<long long>(model_batch));
  std::printf("  per-image  %10.2f ms  (%6.1f img/s)\n", model_single_ms,
              1e3 * static_cast<double>(model_batch) / model_single_ms);
  std::printf("  batched    %10.2f ms  (%6.1f img/s)  -> %.2fx\n", model_batched_ms,
              1e3 * static_cast<double>(model_batch) / model_batched_ms, model_speedup);

  if (std::FILE* f = std::fopen(json_path.c_str(), "a")) {
    std::fprintf(f,
                 "{\"bench\":\"emulation\",\"quick\":%s,\"input_hw\":%lld,"
                 "\"batch\":%lld,\"component\":\"%s\",\"per_image_conv_ms\":%.2f,"
                 "\"batched_conv_ms\":%.2f,\"conv_speedup\":%.2f,"
                 "\"model_per_image_ms\":%.2f,\"model_batched_ms\":%.2f,"
                 "\"model_speedup\":%.2f}\n",
                 quick ? "true" : "false", static_cast<long long>(hw),
                 static_cast<long long>(batch), mul.info().name.c_str(), per_image_ms,
                 batched_ms, conv_speedup, model_single_ms, model_batched_ms,
                 model_speedup);
    std::fclose(f);
    std::printf("appended results to %s\n", json_path.c_str());
  }

  const bool pass = conv_speedup >= 2.0;
  std::printf("\n%s: batched emulation is %.2fx the per-image approx_conv reference "
              "(target >= 2x)\n",
              pass ? "PASS" : "FAIL", conv_speedup);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_emulation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  return redcane::bench::run(quick, json_path);
}
