// Behavioral-emulation throughput: batched LUT-datapath execution vs the
// per-image approx_conv reference path.
//
//   per-image — quant::approx_conv2d called once per sample, the usage
//               pattern of the pre-backend validation flows (and of any
//               per-request serving loop): every call re-fits quantization
//               params, rebuilds the 256x256 product table (65536 virtual
//               multiplier calls — the process-wide LUT cache is evicted
//               per call to preserve this series' meaning), and runs a
//               small integer GEMM.
//   batched   — the same conv executed once over the whole batch through
//               the shared LUT-accumulate core (quant/lut_gemm.hpp): a
//               cached product table, one big masked integer GEMM through
//               the dispatched LUT microkernels (tensor/lut_kernel.hpp)
//               with OpenMP row parallelism, all staging in the
//               per-thread workspace arena.
//
// The batched path must be >= 2x the per-image path — the gate this binary
// exits on. A second (ungated, reported) section measures the full-network
// EmulatedBackend the serving runtime's "emulated" variant runs: batched
// micro-batch inference vs per-image inference. Results are appended as
// one JSON object to BENCH_emulation.json.
//
// Usage: bench_emulation [--quick] [--json PATH]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "approx/library.hpp"
#include "backend/backend.hpp"
#include "bench_common.hpp"
#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "nn/im2col.hpp"
#include "quant/approx_conv.hpp"
#include "quant/lut_cache.hpp"
#include "tensor/lut_kernel.hpp"
#include "tensor/ops.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int run(bool quick, const std::string& json_path) {
  print_header("Behavioral emulation: batched LUT datapath vs per-image approx_conv");

  // 16x16 keeps the per-image GEMM below the per-call table build — the
  // cost batching amortizes — matching the tiny-profile serving geometry;
  // at much larger extents the (irreducible) GEMM dominates both modes.
  const std::int64_t hw = quick ? 14 : 16;
  const std::int64_t batch = quick ? 16 : 32;
  const int reps = quick ? 3 : 5;
  const approx::Multiplier& mul = approx::multiplier_by_name("axm_drum4_dm1");

  Rng rng(2020);
  const Tensor x = ops::uniform(Shape{batch, hw, hw, 1}, 0.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{9, 9, 1, 8}, -0.5, 0.5, rng);
  const Tensor bias = ops::uniform(Shape{8}, -0.1, 0.1, rng);
  quant::ApproxConvSpec spec;

  // Correctness guard before timing: the batched emulated conv with the
  // accurate multiplier must track the exact reference within quantization
  // error, or the speedup below is measuring broken math.
  {
    const Tensor ref = quant::reference_conv2d(x, w, bias, spec);
    const Tensor emu = quant::approx_conv2d(x, w, bias, spec, approx::exact_multiplier());
    double max_err = 0.0;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      max_err = std::max(max_err, std::abs(static_cast<double>(ref.at(i) - emu.at(i))));
    }
    if (max_err > 0.25) {
      std::printf("FAIL: exact-multiplier emulation off by %.3f vs reference\n", max_err);
      return 1;
    }
  }

  // Warm the workspace arenas and the page cache; reset the LUT-cache
  // counters afterwards so the hit rate below reflects steady state.
  (void)quant::approx_conv2d(x, w, bias, spec, mul);
  quant::lut_cache_reset_stats();

  double per_image_ms = 0.0;
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      for (std::int64_t i = 0; i < batch; ++i) {
        // The reference path is defined as the pre-backend per-request
        // pattern: every call re-fits params AND rebuilds the product
        // table. The process-wide cache would silently hand it a hot
        // table, so evict per call to keep the series' meaning.
        quant::lut_cache_invalidate(&mul);
        (void)quant::approx_conv2d(capsnet::slice_rows(x, i, i + 1), w, bias, spec, mul);
      }
    }
    per_image_ms = ms_since(t0) / reps;
    quant::lut_cache_reset_stats();  // Evictions above are not steady state.
  }
  double batched_ms = 0.0;
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      (void)quant::approx_conv2d(x, w, bias, spec, mul);
    }
    batched_ms = ms_since(t0) / reps;
  }
  const double conv_speedup = per_image_ms / batched_ms;
  std::printf("conv 9x9, %lldx%lld, %lld images, drum4 LUT datapath (dispatch: %s):\n",
              static_cast<long long>(hw), static_cast<long long>(hw),
              static_cast<long long>(batch), gemm::lk::active().name);
  std::printf("  per-image  %10.2f ms  (%6.1f img/s)\n", per_image_ms,
              1e3 * static_cast<double>(batch) / per_image_ms);
  std::printf("  batched    %10.2f ms  (%6.1f img/s)  -> %.2fx\n", batched_ms,
              1e3 * static_cast<double>(batch) / batched_ms, conv_speedup);

  // Per-phase breakdown of one batched emulated conv — each stage timed
  // through the same public APIs approx_conv2d composes, so a future
  // regression localizes to a phase instead of hiding in the wall time.
  double phase_quant_ms = 0.0;
  double phase_build_ms = 0.0;
  double phase_mac_ms = 0.0;
  double phase_dequant_ms = 0.0;
  {
    const nn::ConvDims d = nn::make_conv_dims(x.shape(), w.shape(), spec.stride, spec.pad);
    const std::int64_t m = d.rows();
    const std::int64_t k = d.cols();
    const std::int64_t n = d.cout;
    std::vector<std::uint8_t> qx(static_cast<std::size_t>(x.numel()));
    std::vector<std::uint8_t> qw(static_cast<std::size_t>(w.numel()));
    std::vector<std::uint8_t> cols(static_cast<std::size_t>(m * k));
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(m * k));
    quant::QuantParams px;
    quant::QuantParams pw;
    {
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        px = quant::fit_params(x, spec.bits);
        pw = quant::fit_params(w, spec.bits);
        quant::quantize_u8(x, px, qx.data());
        quant::quantize_u8(w, pw, qw.data());
        nn::im2col_codes(qx.data(), d, cols.data(), mask.data());
      }
      phase_quant_ms = ms_since(t0) / reps;
    }
    {
      // Cold table preparation: the cost the process-wide cache removes
      // from every call after the first.
      std::vector<std::uint32_t> raw(256 * 256);
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        quant::build_product_lut(&mul, raw.data());
        (void)gemm::lk::LutTables::build(raw.data(), (1 << spec.bits) - 1);
      }
      phase_build_ms = ms_since(t0) / reps;
    }
    const gemm::lk::LutTables& tables = quant::lut_cache_get(&mul, spec.bits);
    std::vector<std::uint64_t> acc_qq(static_cast<std::size_t>(m * n));
    std::vector<std::uint64_t> acc_qw(static_cast<std::size_t>(m * n));
    std::vector<std::uint64_t> acc_qa(static_cast<std::size_t>(m));
    std::vector<std::int64_t> taps(static_cast<std::size_t>(m));
    {
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        gemm::lk::lut_gemm_u8(m, n, k, cols.data(), mask.data(), qw.data(), tables,
                              acc_qq.data(), acc_qw.data(), acc_qa.data(), taps.data());
      }
      phase_mac_ms = ms_since(t0) / reps;
    }
    {
      // lut_gemm_dequant fuses MAC + affine dequantization; the dequant
      // share is its total minus the MAC phase above.
      std::vector<float> out(static_cast<std::size_t>(m * n));
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        quant::lut_gemm_dequant(m, n, k, cols.data(), mask.data(), px, qw.data(), pw, tables,
                                nullptr, nullptr, out.data());
      }
      phase_dequant_ms = std::max(0.0, ms_since(t0) / reps - phase_mac_ms);
    }
    std::printf("  phases     quantize+im2col %.2f ms | LUT build (cold) %.2f ms | "
                "multiply-accumulate %.2f ms | dequant %.2f ms\n",
                phase_quant_ms, phase_build_ms, phase_mac_ms, phase_dequant_ms);
  }

  // Full-network behavioral emulation (the serving "emulated" variant):
  // whole micro-batch through EmulatedBackend vs one image at a time. The
  // tiny profile's stacked 9x9 kernels need at least 20x20 inputs.
  const std::int64_t model_hw = 20;
  const std::int64_t model_batch = quick ? 8 : batch;
  const Tensor mx = ops::uniform(Shape{model_batch, model_hw, model_hw, 1}, 0.0, 1.0, rng);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = model_hw;
  Rng mrng(7);
  capsnet::CapsNetModel model(cfg, mrng);
  backend::EmulationPlan plan;
  for (const std::string& layer : model.layer_names()) {
    (void)plan.set_by_name(layer, mul.info().name);
  }
  const backend::EmulatedBackend emulated(std::move(plan));
  (void)emulated.run(model, capsnet::slice_rows(mx, 0, 1), 0);  // Warm-up.

  double model_single_ms = 0.0;
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      for (std::int64_t i = 0; i < model_batch; ++i) {
        (void)emulated.run(model, capsnet::slice_rows(mx, i, i + 1), 0);
      }
    }
    model_single_ms = ms_since(t0) / reps;
  }
  double model_batched_ms = 0.0;
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) (void)emulated.run(model, mx, 0);
    model_batched_ms = ms_since(t0) / reps;
  }
  const double model_speedup = model_single_ms / model_batched_ms;
  std::printf("full CapsNet-tiny emulated forward (%zu planned MAC layers, %lld images):\n",
              emulated.plan().size(), static_cast<long long>(model_batch));
  std::printf("  per-image  %10.2f ms  (%6.1f img/s)\n", model_single_ms,
              1e3 * static_cast<double>(model_batch) / model_single_ms);
  std::printf("  batched    %10.2f ms  (%6.1f img/s)  -> %.2fx\n", model_batched_ms,
              1e3 * static_cast<double>(model_batch) / model_batched_ms, model_speedup);

  const quant::LutCacheStats cache_stats = quant::lut_cache_stats();
  std::printf("LUT cache since warm-up: %llu hits / %llu misses (%.0f%% hit rate, "
              "%llu tables resident)\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              100.0 * cache_stats.hit_rate(),
              static_cast<unsigned long long>(cache_stats.entries));

  JsonFields fields;
  fields.boolean("quick", quick)
      .integer("input_hw", hw)
      .integer("batch", batch)
      .str("component", mul.info().name)
      .str("dispatch", gemm::lk::active().name)
      .number("per_image_conv_ms", per_image_ms, "%.2f")
      .number("batched_conv_ms", batched_ms, "%.2f")
      .number("conv_speedup", conv_speedup, "%.2f")
      .number("phase_quantize_ms", phase_quant_ms, "%.2f")
      .number("phase_lut_build_ms", phase_build_ms, "%.2f")
      .number("phase_mac_ms", phase_mac_ms, "%.2f")
      .number("phase_dequant_ms", phase_dequant_ms, "%.2f")
      .number("cache_hit_rate", cache_stats.hit_rate(), "%.2f")
      .number("model_per_image_ms", model_single_ms, "%.2f")
      .number("model_batched_ms", model_batched_ms, "%.2f")
      .number("model_speedup", model_speedup, "%.2f");
  if (append_bench_json(json_path, "emulation", fields)) {
    std::printf("appended results to %s\n", json_path.c_str());
  }

  const bool pass = conv_speedup >= 2.0;
  std::printf("\n%s: batched emulation is %.2fx the per-image approx_conv reference "
              "(target >= 2x) [input_hw=%lld, batch=%lld, dispatch=%s]\n",
              pass ? "PASS" : "FAIL", conv_speedup, static_cast<long long>(hw),
              static_cast<long long>(batch), gemm::lk::active().name);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_emulation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  return redcane::bench::run(quick, json_path);
}
