// Serving-runtime throughput: dynamic micro-batching vs one-by-one serving
// of the same request stream, same worker count, same model.
//
//   single   — max_batch = 1: every request is its own forward (the naive
//              serving loop a sweep-style evaluate() would give you).
//   batched  — max_batch = 32 with a short coalescing window: the
//              InferenceServer as deployed.
//
// The request queue is pre-filled before the workers start, so both modes
// serve an identical stream and the exact variant's predictions must match
// request-for-request (batching a per-sample-independent forward changes
// nothing). The batched server must be >= 2x the single-request server —
// the gate this binary exits on.
//
// A third segment drives 2x-saturation open-loop overload at the hardened
// admission path (bounded queue, per-request deadlines, degradation to the
// exact variant) and reports shed-rate, deadline-miss-rate, degraded share
// and overload p99. Results are appended as one JSON object to
// BENCH_serve.json so serving behavior is machine-readable across commits.
//
// Usage: bench_serve [--quick] [--workers N] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/groups.hpp"
#include "serve/server.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Registry over an untrained small CapsNet (throughput depends only on
/// architecture) with a synthetic designed variant: every MAC-output site
/// carries a small component noise, as a real manifest would.
std::unique_ptr<serve::ModelRegistry> make_registry(std::int64_t hw, const Tensor& probe) {
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = hw;
  cfg.conv1_channels = 4;
  cfg.primary_types = 2;
  cfg.primary_dim = 2;
  cfg.class_dim = 4;
  cfg.conv1_kernel = 3;
  cfg.primary_kernel = 3;
  Rng rng(2020);
  auto model = std::make_unique<capsnet::CapsNetModel>(cfg, rng);

  core::DeploymentManifest m;
  m.model = model->name();
  m.profile = "tiny";
  m.input_hw = hw;
  m.input_channels = 1;
  m.num_classes = cfg.num_classes;
  m.noise_seed = 2020;
  for (const core::Site& site : core::extract_sites(*model, probe)) {
    core::ManifestSite ms;
    ms.site = site;
    ms.component = "synthetic";
    if (site.kind == capsnet::OpKind::kMacOutput) ms.nm = 0.005;
    m.sites.push_back(ms);
  }
  return std::make_unique<serve::ModelRegistry>(std::move(model), std::move(m));
}

struct ModeResult {
  std::string name;
  double ms = 0.0;
  double req_per_s = 0.0;
  double mean_batch = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::vector<std::int64_t> labels;  ///< Prediction per request, stream order.
};

/// Pre-fills the queue with `requests` samples (cycling the pool) for
/// `variant`, then starts the workers and times the drain.
ModeResult run_mode(const std::string& name, serve::ModelRegistry& registry,
                    const Tensor& pool, std::int64_t requests, const std::string& variant,
                    serve::ServerConfig sc) {
  ModeResult r;
  r.name = name;
  // Warm caches/allocator so the first timed batch is not a cold outlier.
  for (int i = 0; i < 8; ++i) {
    (void)registry.model().infer(capsnet::slice_rows(pool, 0, 1));
  }
  (void)registry.model().infer(
      capsnet::slice_rows(pool, 0, std::min<std::int64_t>(sc.max_batch, pool.shape().dim(0))));
  serve::InferenceServer server(registry, sc);
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(static_cast<std::size_t>(requests));
  const std::int64_t n = pool.shape().dim(0);
  for (std::int64_t i = 0; i < requests; ++i) {
    futs.push_back(server.submit(capsnet::slice_rows(pool, i % n, i % n + 1), variant));
  }
  const auto t0 = Clock::now();
  server.start();
  for (auto& f : futs) r.labels.push_back(f.get().prediction.label);
  r.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  server.shutdown();
  serve::ServerStats stats = server.stats();  // One snapshot, queried in place.
  r.req_per_s = static_cast<double>(requests) / (r.ms / 1e3);
  r.mean_batch = stats.mean_batch_size();
  r.p50_us = stats.latency.p50_us;
  r.p99_us = stats.latency.p99_us;
  return r;
}

struct OverloadResult {
  double arrival_per_s = 0.0;  ///< Open-loop offered load [req/s].
  double fulfilled_per_s = 0.0;
  double shed_rate = 0.0;           ///< queue_full rejects / submitted.
  double deadline_miss_rate = 0.0;  ///< deadline sheds / submitted.
  double degraded_share = 0.0;      ///< degraded / fulfilled.
  double p99_us = 0.0;              ///< Over fulfilled requests.
};

/// Open-loop overload: offers `requests` at 2x the measured saturation
/// rate against a bounded queue with deadlines and degradation armed. A
/// robust server sheds/degrades and keeps p99 bounded; the seed runtime
/// would have grown the queue without bound.
OverloadResult run_overload(serve::ModelRegistry& registry, const Tensor& pool,
                            std::int64_t requests, double saturation_per_s,
                            int workers) {
  serve::ServerConfig sc;
  sc.workers = workers;
  sc.max_batch = 32;
  sc.max_delay_us = 500;
  sc.max_queue = 128;
  sc.deadline_us = 100'000;
  sc.degrade_under_pressure = true;
  serve::InferenceServer server(registry, sc);
  server.start();

  OverloadResult r;
  r.arrival_per_s = 2.0 * saturation_per_s;
  const double gap_s = 1.0 / r.arrival_per_s;
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(static_cast<std::size_t>(requests));
  const std::int64_t n = pool.shape().dim(0);
  const auto t0 = Clock::now();
  for (std::int64_t i = 0; i < requests; ++i) {
    // Expensive-variant traffic: exactly what degradation is for.
    const char* variant =
        i % 2 == 0 ? serve::kVariantDesigned : serve::kVariantEmulated;
    futs.push_back(server.submit(capsnet::slice_rows(pool, i % n, i % n + 1), variant));
    const auto next = t0 + std::chrono::duration<double>(gap_s * static_cast<double>(i + 1));
    while (Clock::now() < next) std::this_thread::yield();
  }
  std::int64_t fulfilled = 0;
  for (auto& f : futs) {
    if (f.get().ok()) ++fulfilled;
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.shutdown();

  serve::ServerStats stats = server.stats();
  const auto total = static_cast<double>(stats.submitted);
  r.fulfilled_per_s = static_cast<double>(fulfilled) / elapsed_s;
  r.shed_rate = static_cast<double>(stats.rejected_queue_full) / total;
  r.deadline_miss_rate = static_cast<double>(stats.shed_deadline) / total;
  r.degraded_share = stats.requests == 0
                         ? 0.0
                         : static_cast<double>(stats.degraded) /
                               static_cast<double>(stats.requests);
  r.p99_us = stats.latency.p99_us;
  return r;
}

int run(bool quick, int workers_flag, const std::string& json_path) {
  print_header("Serving runtime: dynamic micro-batching vs one-by-one");

  const std::int64_t hw = 6;
  const std::int64_t requests = quick ? 512 : 1024;
  const int workers = serve::InferenceServer::resolve_workers(workers_flag);

  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kMnist;
  spec.hw = hw;
  spec.channels = 1;
  spec.train_count = 4;  // Unused; traffic only reads the test split.
  spec.test_count = 64;
  spec.seed = 43;
  const data::Dataset ds = data::make_synthetic(spec);

  std::unique_ptr<serve::ModelRegistry> registry =
      make_registry(hw, capsnet::slice_rows(ds.test_x, 0, 1));

  serve::ServerConfig single;
  single.workers = workers;
  single.max_batch = 1;
  single.max_delay_us = 0;
  serve::ServerConfig batched;
  batched.workers = workers;
  batched.max_batch = 32;
  batched.max_delay_us = 2000;

  std::printf("CapsNet tiny %lldx%lld, %lld requests, %d worker(s)\n\n",
              static_cast<long long>(hw), static_cast<long long>(hw),
              static_cast<long long>(requests), workers);

  const ModeResult r_single = run_mode("single-request", *registry, ds.test_x, requests,
                                       serve::kVariantExact, single);
  const ModeResult r_batched = run_mode("batched (max 32)", *registry, ds.test_x, requests,
                                        serve::kVariantExact, batched);
  const ModeResult r_designed = run_mode("batched designed", *registry, ds.test_x, requests,
                                         serve::kVariantDesigned, batched);

  const auto report = [](const ModeResult& r) {
    std::printf("  %-18s %10.1f ms  %9.1f req/s  mean batch %5.1f  p50 %7.0f us  "
                "p99 %7.0f us\n",
                r.name.c_str(), r.ms, r.req_per_s, r.mean_batch, r.p50_us, r.p99_us);
  };
  report(r_single);
  report(r_batched);
  report(r_designed);

  // Exact-arithmetic predictions are per-sample independent, so batching
  // must not change them.
  const bool identical = r_single.labels == r_batched.labels;
  std::printf("\nexact predictions identical across serving modes: %s\n",
              identical ? "yes" : "NO");

  // ---- Overload segment: 2x saturation against the hardened admission
  // path (bounded queue + deadlines + degradation).
  const std::int64_t over_requests = quick ? 512 : 2048;
  const OverloadResult over = run_overload(*registry, ds.test_x, over_requests,
                                           r_batched.req_per_s, workers);
  std::printf("\noverload (2x saturation, %lld expensive-variant requests):\n"
              "  offered %.0f req/s -> fulfilled %.1f req/s, shed %.1f%%, "
              "deadline-missed %.1f%%, degraded %.1f%% of served, p99 %.0f us\n",
              static_cast<long long>(over_requests), over.arrival_per_s,
              over.fulfilled_per_s, over.shed_rate * 100.0,
              over.deadline_miss_rate * 100.0, over.degraded_share * 100.0,
              over.p99_us);

  const double speedup = r_single.ms / r_batched.ms;
  JsonFields fields;
  fields.boolean("quick", quick)
      .str("model", "CapsNet-tiny")
      .integer("input_hw", hw)
      .integer("requests", requests)
      .integer("workers", workers)
      .integer("max_batch", batched.max_batch)
      .number("single_ms", r_single.ms, "%.1f")
      .number("batched_ms", r_batched.ms, "%.1f")
      .number("designed_ms", r_designed.ms, "%.1f")
      .number("speedup", speedup, "%.2f")
      .number("batched_mean_batch", r_batched.mean_batch, "%.1f")
      .number("batched_p50_us", r_batched.p50_us, "%.0f")
      .number("batched_p99_us", r_batched.p99_us, "%.0f")
      .boolean("identical", identical)
      .number("overload_offered_per_s", over.arrival_per_s, "%.0f")
      .number("overload_fulfilled_per_s", over.fulfilled_per_s, "%.1f")
      .number("overload_shed_rate", over.shed_rate, "%.4f")
      .number("overload_deadline_miss_rate", over.deadline_miss_rate, "%.4f")
      .number("overload_degraded_share", over.degraded_share, "%.4f")
      .number("overload_p99_us", over.p99_us, "%.0f");
  append_bench_json(json_path, "serve", fields);

  const bool pass = identical && speedup >= 2.0;
  std::printf("\n%s: dynamic batching is %.2fx one-by-one serving "
              "(target >= 2x, identical exact predictions required)\n",
              pass ? "PASS" : "FAIL", speedup);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  int workers = 0;
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) workers = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  return redcane::bench::run(quick, workers, json_path);
}
