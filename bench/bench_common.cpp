#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>

namespace redcane::bench {
namespace {

constexpr const char* kCacheDir = ".bench_cache";

struct BenchmarkSpec {
  const char* id;
  const char* model;
  const char* dataset;
  data::DatasetKind kind;
  bool deepcaps;
  double paper_acc;
};

const BenchmarkSpec& spec_of(BenchmarkId id) {
  static const BenchmarkSpec specs[] = {
      {"deepcaps_cifar10", "DeepCaps", "CIFAR-10", data::DatasetKind::kCifar10, true, 92.74},
      {"deepcaps_svhn", "DeepCaps", "SVHN", data::DatasetKind::kSvhn, true, 97.56},
      {"deepcaps_mnist", "DeepCaps", "MNIST", data::DatasetKind::kMnist, true, 99.72},
      {"capsnet_fashion", "CapsNet", "Fashion-MNIST", data::DatasetKind::kFashionMnist, false,
       92.88},
      {"capsnet_mnist", "CapsNet", "MNIST", data::DatasetKind::kMnist, false, 99.67},
  };
  return specs[static_cast<int>(id)];
}

std::unique_ptr<capsnet::CapsModel> build_model(const BenchmarkSpec& s, Rng& rng) {
  if (s.deepcaps) {
    capsnet::DeepCapsConfig cfg = capsnet::DeepCapsConfig::tiny();
    cfg.input_channels =
        (s.kind == data::DatasetKind::kCifar10 || s.kind == data::DatasetKind::kSvhn) ? 3 : 1;
    return std::make_unique<capsnet::DeepCapsModel>(cfg, rng);
  }
  return std::make_unique<capsnet::CapsNetModel>(capsnet::CapsNetConfig::tiny(), rng);
}

}  // namespace

const char* benchmark_model_name(BenchmarkId id) { return spec_of(id).model; }
const char* benchmark_dataset_name(BenchmarkId id) { return spec_of(id).dataset; }
double paper_accuracy(BenchmarkId id) { return spec_of(id).paper_acc; }

const char* benchmark_name(BenchmarkId id) {
  static thread_local std::string name;
  name = std::string(spec_of(id).model) + " / " + spec_of(id).dataset;
  return name.c_str();
}

Benchmark load_benchmark(BenchmarkId id) {
  const BenchmarkSpec& s = spec_of(id);
  Benchmark b;
  b.id = s.id;

  Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(id));
  b.model = build_model(s, rng);

  const std::int64_t hw = s.deepcaps ? 16 : 28;
  b.dataset = data::make_benchmark(s.kind, hw, /*train=*/800, /*test=*/300,
                                   /*seed=*/1234 + static_cast<std::uint64_t>(id));

  std::filesystem::create_directories(kCacheDir);
  const std::string cache_path = std::string(kCacheDir) + "/" + s.id + ".bin";
  if (capsnet::load_params(*b.model, cache_path)) {
    return b;
  }

  std::printf("[bench] training %s (no cache at %s)...\n", benchmark_name(id),
              cache_path.c_str());
  capsnet::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 25;
  tc.lr = 3e-3;
  tc.on_epoch = [](int epoch, double loss, double acc) {
    std::printf("[bench]   epoch %2d  loss %.4f  train-acc %.3f\n", epoch, loss, acc);
  };
  capsnet::train(*b.model, b.dataset.train_x, b.dataset.train_y, tc);
  if (!capsnet::save_params(*b.model, cache_path)) {
    std::printf("[bench] warning: could not cache parameters to %s\n", cache_path.c_str());
  }
  return b;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JsonFields& JsonFields::str(const char* key, const std::string& value) {
  body_ += ",\"";
  body_ += key;
  body_ += "\":\"";
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonFields& JsonFields::boolean(const char* key, bool value) {
  body_ += ",\"";
  body_ += key;
  body_ += value ? "\":true" : "\":false";
  return *this;
}

JsonFields& JsonFields::integer(const char* key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  body_ += ",\"";
  body_ += key;
  body_ += "\":";
  body_ += buf;
  return *this;
}

JsonFields& JsonFields::number(const char* key, double value, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, value);
  body_ += ",\"";
  body_ += key;
  body_ += "\":";
  body_ += buf;
  return *this;
}

bool append_bench_json(const std::string& path, const std::string& bench,
                       const JsonFields& fields) {
  const char* kind = std::getenv("REDCANE_BENCH_RUN_KIND");
  const std::string run_kind =
      kind != nullptr && kind[0] != '\0' ? json_escape(kind) : "seed";
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::printf("[bench] warning: could not append results to %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"bench\":\"%s\",\"run_kind\":\"%s\"%s}\n",
               json_escape(bench).c_str(), run_kind.c_str(), fields.body().c_str());
  std::fclose(f);
  std::printf("appended results to %s\n", path.c_str());
  return true;
}

}  // namespace redcane::bench
