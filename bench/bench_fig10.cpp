// Reproduces paper Fig. 10: layer-wise resilience of the non-resilient
// groups (MAC outputs, activations) of DeepCaps on CIFAR-10, over all 18
// layers.
//
// Paper claims to reproduce:
//   * the first convolutional layer is the least resilient;
//   * Caps3D — the only convolutional layer with dynamic routing — is the
//     most resilient, because routing coefficients adapt to the noise.
#include <cstdio>

#include "bench_common.hpp"
#include "capsnet/trainer.hpp"
#include "core/report.hpp"
#include "core/resilience.hpp"

using namespace redcane;

int main() {
  bench::Benchmark b = bench::load_benchmark(bench::BenchmarkId::kDeepCapsCifar10);
  bench::print_header(
      "Fig. 10: layer-wise resilience of non-resilient groups, DeepCaps/CIFAR-10");

  // Layer sweeps cost 18 layers x 2 groups x 9 NM points; trim the test
  // set to keep the full-figure runtime reasonable on one CPU.
  const Tensor test_x = capsnet::slice_rows(b.dataset.test_x, 0, 150);
  const std::vector<std::int64_t> test_y(b.dataset.test_y.begin(),
                                         b.dataset.test_y.begin() + 150);

  core::ResilienceConfig rc;
  rc.seed = 1010;
  core::ResilienceAnalyzer analyzer(*b.model, test_x, test_y, rc);
  std::printf("baseline accuracy: %.2f%%\n", analyzer.baseline() * 100.0);

  const std::vector<std::string> layers = b.model->layer_names();
  bool shape_holds = true;

  for (capsnet::OpKind kind :
       {capsnet::OpKind::kMacOutput, capsnet::OpKind::kActivation}) {
    std::printf("\n--- group: %s ---\n", capsnet::op_kind_name(kind));
    double conv_drop_at_0p05 = 0.0;
    double caps3d_drop_at_0p05 = 0.0;
    double worst_mid_drop = 0.0;
    for (const std::string& layer : layers) {
      const core::ResilienceCurve c = analyzer.sweep_layer(kind, layer);
      std::printf("%s", core::render_curve(c).c_str());
      const double at_0p05 = c.drop_pct[3];  // NM = 0.05 grid point.
      if (layer == "Conv2D") conv_drop_at_0p05 = at_0p05;
      if (layer == "Caps3D") caps3d_drop_at_0p05 = at_0p05;
      worst_mid_drop = std::min(worst_mid_drop, at_0p05);
    }
    // Caps3D (routed) must be at least as resilient as the stem conv, and
    // close to the top of the ranking.
    if (caps3d_drop_at_0p05 < conv_drop_at_0p05 - 1.0) shape_holds = false;
    std::printf("[%s] Conv2D drop@NM=0.05: %+.2f, Caps3D drop@NM=0.05: %+.2f, "
                "worst layer: %+.2f\n",
                capsnet::op_kind_name(kind), conv_drop_at_0p05, caps3d_drop_at_0p05,
                worst_mid_drop);
  }
  std::printf("evaluations: %lld\n", static_cast<long long>(analyzer.evaluations()));

  std::printf("\nshape check (routed Caps3D at least as resilient as the first conv "
              "in both groups): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
