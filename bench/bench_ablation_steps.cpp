// Ablation D3 (DESIGN.md): the paper's Step 4 drills into *non-resilient
// groups only*, arguing that "a considerable amount of unuseful testing
// can be skipped". This bench runs the full methodology and quantifies the
// exploration savings on both architectures.
#include <cstdio>

#include "bench_common.hpp"
#include "core/methodology.hpp"
#include "core/report.hpp"

using namespace redcane;

int main() {
  bool saved_everywhere = true;
  for (bench::BenchmarkId id :
       {bench::BenchmarkId::kCapsNetMnist, bench::BenchmarkId::kDeepCapsCifar10}) {
    bench::Benchmark b = bench::load_benchmark(id);
    bench::print_header(std::string("Ablation D3: exploration cost of ReD-CaNe on ") +
                        bench::benchmark_name(id));

    core::MethodologyConfig mc;
    mc.resilience.sweep.nms = {0.5, 0.1, 0.02, 0.005, 0.0};  // Compact grid.
    mc.resilience.seed = 303;
    mc.profile_samples = 20000;
    // Use a trimmed test set: this bench measures exploration cost, not
    // curve fidelity.
    const std::int64_t n_eval = 150;
    const Tensor test_x = capsnet::slice_rows(b.dataset.test_x, 0, n_eval);
    const std::vector<std::int64_t> test_y(b.dataset.test_y.begin(),
                                           b.dataset.test_y.begin() + n_eval);
    const core::MethodologyResult r =
        core::run_redcane(*b.model, test_x, test_y, b.dataset.name, mc);

    const std::int64_t run = r.evaluations_run;
    const std::int64_t saved = r.evaluations_saved_by_pruning;
    std::printf("baseline accuracy:      %.2f%%\n", r.baseline_accuracy * 100.0);
    std::printf("resilient groups:       %zu of 4\n", r.resilient_groups.size());
    std::printf("evaluations run:        %lld\n", static_cast<long long>(run));
    std::printf("evaluations saved:      %lld (%.0f%% of the unpruned layer-wise "
                "exploration)\n",
                static_cast<long long>(saved),
                100.0 * static_cast<double>(saved) /
                    static_cast<double>(saved + run > 0 ? saved + run : 1));
    std::printf("mean MAC power saving:  %.1f%%\n", r.mean_mac_power_saving() * 100.0);
    saved_everywhere = saved_everywhere && saved > 0;
  }

  std::printf("\nshape check (Step-4 pruning skips a nonzero amount of exploration on "
              "both architectures): %s\n",
              saved_everywhere ? "PASS" : "FAIL");
  return saved_everywhere ? 0 : 1;
}
