// Reproduces paper Table III: the grouping of CapsNet inference
// operations into the four ReD-CaNe groups, extracted dynamically (Step 1)
// from both architectures.
#include <cstdio>

#include "bench_common.hpp"
#include "capsnet/trainer.hpp"
#include "core/groups.hpp"
#include "core/report.hpp"

using namespace redcane;

int main() {
  bool ok = true;
  for (bench::BenchmarkId id :
       {bench::BenchmarkId::kDeepCapsCifar10, bench::BenchmarkId::kCapsNetMnist}) {
    bench::Benchmark b = bench::load_benchmark(id);
    bench::print_header(std::string("Table III: operation groups of ") +
                        bench::benchmark_name(id));
    const Tensor probe = capsnet::slice_rows(b.dataset.test_x, 0, 1);
    const std::vector<core::Site> sites = core::extract_sites(*b.model, probe);
    std::printf("%s", core::render_groups(sites).c_str());

    // Structural checks: all four groups populated; routed layers own the
    // softmax / logits-update sites.
    for (capsnet::OpKind kind : core::all_groups()) {
      ok = ok && !core::sites_of_group(sites, kind).empty();
    }
    const auto sm = core::layers_of_group(sites, capsnet::OpKind::kSoftmax);
    const bool deepcaps = id == bench::BenchmarkId::kDeepCapsCifar10;
    ok = ok && (sm.size() == (deepcaps ? 2U : 1U));
  }
  std::printf("\nshape check (4 groups populated; softmax/logits only in routed "
              "layers): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
