// Reproduces paper Fig. 9: group-wise resilience of DeepCaps on CIFAR-10.
//
// Noise with NM in [0.5 ... 0.001] (NA = 0) is injected into one group at
// a time while the others stay accurate. Paper claims to reproduce:
//   * softmax and logits-update tolerate much larger NM than MAC outputs
//     and activations;
//   * at small NM the injection can slightly *increase* accuracy
//     (dropout-like regularization).
#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/resilience.hpp"

using namespace redcane;

int main() {
  bench::Benchmark b = bench::load_benchmark(bench::BenchmarkId::kDeepCapsCifar10);
  bench::print_header("Fig. 9: group-wise resilience, DeepCaps on CIFAR-10");

  core::ResilienceConfig rc;
  rc.seed = 909;
  core::ResilienceAnalyzer analyzer(*b.model, b.dataset.test_x, b.dataset.test_y, rc);
  std::printf("baseline accuracy: %.2f%%\n\n", analyzer.baseline() * 100.0);

  std::vector<core::ResilienceCurve> curves;
  int group_no = 1;
  for (capsnet::OpKind kind : core::all_groups()) {
    core::ResilienceCurve c = analyzer.sweep_group(kind);
    c.label = "#" + std::to_string(group_no++) + ": " + capsnet::op_kind_name(kind);
    std::printf("%s", core::render_curve(c).c_str());
    curves.push_back(std::move(c));
  }

  // Shape checks against the paper's findings. Index 3 is NM = 0.05.
  const auto& mac = curves[0];
  const auto& act = curves[1];
  const auto& sm = curves[2];
  const auto& lu = curves[3];
  const bool routing_groups_resilient =
      sm.drop_pct[3] > mac.drop_pct[3] + 5.0 && lu.drop_pct[3] > mac.drop_pct[3] + 5.0 &&
      sm.drop_pct[3] > act.drop_pct[3] && lu.drop_pct[3] > act.drop_pct[3];
  const bool big_noise_hurts_mac = mac.drop_pct[0] < -30.0;
  bool small_noise_harmless = true;
  for (const auto& c : curves) {
    small_noise_harmless = small_noise_harmless && c.drop_pct[8] > -3.0;  // NM = 0.001.
  }
  // Regularization effect: at least one small-NM point with positive drop.
  bool regularization_seen = false;
  for (const auto& c : curves) {
    for (std::size_t i = 5; i < c.drop_pct.size(); ++i) {
      regularization_seen = regularization_seen || c.drop_pct[i] > 0.0;
    }
  }

  std::printf("\nroutinq-groups-more-resilient: %s\n",
              routing_groups_resilient ? "PASS" : "FAIL");
  std::printf("NM=0.5 destroys MAC-group accuracy: %s\n",
              big_noise_hurts_mac ? "PASS" : "FAIL");
  std::printf("NM=0.001 harmless in every group: %s\n",
              small_noise_harmless ? "PASS" : "FAIL");
  std::printf("regularization bump observed at small NM: %s\n",
              regularization_seen ? "PASS" : "INFO(not observed this seed)");

  const bool shape_holds =
      routing_groups_resilient && big_noise_hurts_mac && small_noise_harmless;
  std::printf("\nshape check: %s\n", shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
