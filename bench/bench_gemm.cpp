// Measures the compute-core speedup that motivates the im2col + blocked
// GEMM refactor: naive 7-deep conv loops vs the lowered GEMM path vs the
// LUT-accelerated approximate path, on a DeepCaps-sized layer, plus a raw
// matmul comparison. Every resilience sweep is a loop of these forwards,
// so this ratio is the throughput of the whole methodology.
//
// Usage: bench_gemm [--quick]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "approx/library.hpp"
#include "bench_common.hpp"
#include "nn/conv2d.hpp"
#include "quant/approx_conv.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& fn, int iters) {
  fn();  // Warm-up (page faults, caches).
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

/// The seed's 7-deep conv loop nest (scalar accumulation, per-tap bounds
/// checks) — the baseline every conv path used before the refactor.
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& bias, std::int64_t stride,
                  std::int64_t pad) {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t wd = x.shape().dim(2);
  const std::int64_t cin = x.shape().dim(3);
  const std::int64_t kh = w.shape().dim(0);
  const std::int64_t kw = w.shape().dim(1);
  const std::int64_t cout = w.shape().dim(3);
  const std::int64_t ho = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t wo = (wd + 2 * pad - kw) / stride + 1;
  Tensor out(Shape{n, ho, wo, cout});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        for (std::int64_t co = 0; co < cout; ++co) {
          float acc = bias.empty() ? 0.0F : bias.at(co);
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = oy * stride + ky - pad;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ox * stride + kx - pad;
              if (ix < 0 || ix >= wd) continue;
              for (std::int64_t ci = 0; ci < cin; ++ci) {
                acc += x(ni, iy, ix, ci) * w(ky, kx, ci, co);
              }
            }
          }
          out(ni, oy, ox, co) = acc;
        }
      }
    }
  }
  return out;
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t k = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  }
  return c;
}

int run(bool quick) {
  print_header("GEMM compute core: naive vs im2col+GEMM vs LUT-approx");

  Rng rng(42);
  // DeepCaps mid-stack capsule conv: 16x16 map, 32 types x 8D in and out
  // (256 channels each side), 3x3 kernel — the layer class that dominates
  // resilience-sweep wall time. --quick shrinks it for CI smoke runs.
  const std::int64_t batch = quick ? 1 : 2;
  const std::int64_t hw = quick ? 8 : 16;
  const std::int64_t ch = quick ? 64 : 256;
  const Tensor x = ops::uniform(Shape{batch, hw, hw, ch}, -1.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{3, 3, ch, ch}, -0.2, 0.2, rng);
  const Tensor bias = ops::uniform(Shape{ch}, -0.1, 0.1, rng);
  const int iters = quick ? 2 : 3;

  const double t_naive =
      time_ms([&] { (void)naive_conv(x, w, bias, 1, 1); }, iters);
  const double t_gemm =
      time_ms([&] { (void)nn::conv2d_forward(x, w, bias, 1, 1); }, iters);

  quant::ApproxConvSpec aspec;
  aspec.stride = 1;
  aspec.pad = 1;
  const approx::Multiplier& mul = approx::exact_multiplier();
  const double t_lut =
      time_ms([&] { (void)quant::approx_conv2d(x, w, bias, aspec, mul); }, iters);

  const double macs = static_cast<double>(batch * hw * hw) * 9.0 * ch * ch;
  std::printf("conv layer [%lld, %lld, %lld, %lld] * [3, 3, %lld, %lld]  (%.1f MMACs)\n\n",
              static_cast<long long>(batch), static_cast<long long>(hw),
              static_cast<long long>(hw), static_cast<long long>(ch),
              static_cast<long long>(ch), static_cast<long long>(ch), macs / 1e6);
  std::printf("  %-34s %10.2f ms  %8.1f MMAC/s\n", "naive 7-loop conv", t_naive,
              macs / t_naive / 1e3);
  std::printf("  %-34s %10.2f ms  %8.1f MMAC/s  (%.2fx vs naive)\n", "im2col + blocked GEMM",
              t_gemm, macs / t_gemm / 1e3, t_naive / t_gemm);
  std::printf("  %-34s %10.2f ms  %8.1f MMAC/s  (%.2fx vs naive)\n",
              "LUT-approx (8-bit codes, u8 GEMM)", t_lut, macs / t_lut / 1e3, t_naive / t_lut);

  // Raw matmul: the same core also backs ops::matmul (dense layers,
  // routing-free capsule projections).
  const std::int64_t mm = quick ? 128 : 512;
  const Tensor a = ops::uniform(Shape{mm, mm}, -1.0, 1.0, rng);
  const Tensor b = ops::uniform(Shape{mm, mm}, -1.0, 1.0, rng);
  const double t_mm_naive = time_ms([&] { (void)naive_matmul(a, b); }, iters);
  const double t_mm_gemm = time_ms([&] { (void)ops::matmul(a, b); }, iters);
  std::printf("\nmatmul [%lld x %lld]\n", static_cast<long long>(mm),
              static_cast<long long>(mm));
  std::printf("  %-34s %10.2f ms\n", "naive ijk triple loop", t_mm_naive);
  std::printf("  %-34s %10.2f ms  (%.2fx vs naive)\n", "blocked GEMM (ops::matmul)", t_mm_gemm,
              t_mm_naive / t_mm_gemm);

  const double speedup = t_naive / t_gemm;
  std::printf("\n%s: im2col+GEMM is %.2fx the naive conv path (target >= 2x)\n",
              speedup >= 2.0 ? "PASS" : "FAIL", speedup);
  return speedup >= 2.0 ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return redcane::bench::run(quick);
}
