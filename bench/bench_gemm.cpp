// Measures the two layers of the compute core's speedup story:
//
//  1. Lowering: naive 7-deep conv loops vs the im2col + blocked-GEMM path
//     vs the LUT-accelerated approximate path (the PR-1 refactor).
//  2. Microkernel dispatch: the previous scalar cache-blocked GEMM vs the
//     runtime-dispatched SIMD microkernel core (tensor/microkernel.hpp),
//     reported in GFLOP/s — the gate is >= 2x whenever a SIMD target
//     (sse/avx2) is active; on scalar-only hardware the fallback is
//     logged and the gate is waived.
//
// Every resilience sweep and every served batch is a loop of these
// kernels, so these ratios are the throughput of the whole methodology.
// Results are appended as one JSON object to BENCH_gemm.json, the
// machine-readable perf trajectory of the core across commits.
//
// Usage: bench_gemm [--quick] [--json <path>]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "approx/library.hpp"
#include "bench_common.hpp"
#include "nn/conv2d.hpp"
#include "quant/approx_conv.hpp"
#include "quant/lut_cache.hpp"
#include "tensor/gemm.hpp"
#include "tensor/lut_kernel.hpp"
#include "tensor/microkernel.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& fn, int iters) {
  fn();  // Warm-up (page faults, caches, workspace arenas).
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

/// The seed's 7-deep conv loop nest (scalar accumulation, per-tap bounds
/// checks) — the baseline every conv path used before the refactor.
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& bias, std::int64_t stride,
                  std::int64_t pad) {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t wd = x.shape().dim(2);
  const std::int64_t cin = x.shape().dim(3);
  const std::int64_t kh = w.shape().dim(0);
  const std::int64_t kw = w.shape().dim(1);
  const std::int64_t cout = w.shape().dim(3);
  const std::int64_t ho = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t wo = (wd + 2 * pad - kw) / stride + 1;
  Tensor out(Shape{n, ho, wo, cout});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        for (std::int64_t co = 0; co < cout; ++co) {
          float acc = bias.empty() ? 0.0F : bias.at(co);
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = oy * stride + ky - pad;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ox * stride + kx - pad;
              if (ix < 0 || ix >= wd) continue;
              for (std::int64_t ci = 0; ci < cin; ++ci) {
                acc += x(ni, iy, ix, ci) * w(ky, kx, ci, co);
              }
            }
          }
          out(ni, oy, ox, co) = acc;
        }
      }
    }
  }
  return out;
}

// The pre-microkernel compute core, verbatim: the cache-blocked,
// OpenMP-parallel scalar i-k-j kernel that gemm_f32 ran before SIMD
// dispatch. This is the "current scalar blocked GEMM" the >= 2x gate
// measures against (auto-vectorized at baseline -O3 like it always was).
void legacy_blocked_gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                         const float* b, float* c) {
  constexpr std::int64_t kBlockM = 64;
  constexpr std::int64_t kBlockN = 256;
  constexpr std::int64_t kBlockK = 128;
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t i1 = std::min(i0 + kBlockM, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k0 + kBlockK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t j1 = std::min(j0 + kBlockN, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float aik = arow[kk];
            const float* brow = b + kk * n;
            for (std::int64_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

int run(bool quick, const std::string& json_path) {
  print_header("GEMM compute core: lowering + SIMD microkernel dispatch");

  Rng rng(42);
  // DeepCaps mid-stack capsule conv: 16x16 map, 32 types x 8D in and out
  // (256 channels each side), 3x3 kernel — the layer class that dominates
  // resilience-sweep wall time. --quick shrinks it for CI smoke runs.
  const std::int64_t batch = quick ? 1 : 2;
  const std::int64_t hw = quick ? 8 : 16;
  const std::int64_t ch = quick ? 64 : 256;
  const Tensor x = ops::uniform(Shape{batch, hw, hw, ch}, -1.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{3, 3, ch, ch}, -0.2, 0.2, rng);
  const Tensor bias = ops::uniform(Shape{ch}, -0.1, 0.1, rng);
  const int iters = quick ? 2 : 3;

  const double t_naive =
      time_ms([&] { (void)naive_conv(x, w, bias, 1, 1); }, iters);
  const double t_gemm =
      time_ms([&] { (void)nn::conv2d_forward(x, w, bias, 1, 1); }, iters);

  quant::ApproxConvSpec aspec;
  aspec.stride = 1;
  aspec.pad = 1;
  const approx::Multiplier& mul = approx::exact_multiplier();
  // The emulated path twice: once through the retained scalar LUT kernel
  // (the seed's `lut_ms` series continues unbroken), once through the
  // dispatched LUT microkernels (tensor/lut_kernel.hpp).
  const gemm::mk::Target entry_target = gemm::mk::active().target;
  quant::lut_cache_reset_stats();
  gemm::mk::force(gemm::mk::Target::kScalar);
  const double t_lut =
      time_ms([&] { (void)quant::approx_conv2d(x, w, bias, aspec, mul); }, iters);
  gemm::mk::force(entry_target);
  const double t_lut_simd =
      time_ms([&] { (void)quant::approx_conv2d(x, w, bias, aspec, mul); }, iters);
  const quant::LutCacheStats lut_stats = quant::lut_cache_stats();
  const char* lut_dispatch = gemm::lk::active().name;
  const double lut_speedup = t_lut / t_lut_simd;

  const double macs = static_cast<double>(batch * hw * hw) * 9.0 * ch * ch;
  std::printf("conv layer [%lld, %lld, %lld, %lld] * [3, 3, %lld, %lld]  (%.1f MMACs)\n\n",
              static_cast<long long>(batch), static_cast<long long>(hw),
              static_cast<long long>(hw), static_cast<long long>(ch),
              static_cast<long long>(ch), static_cast<long long>(ch), macs / 1e6);
  std::printf("  %-34s %10.2f ms  %8.1f MMAC/s\n", "naive 7-loop conv", t_naive,
              macs / t_naive / 1e3);
  std::printf("  %-34s %10.2f ms  %8.1f MMAC/s  (%.2fx vs naive)\n", "im2col + blocked GEMM",
              t_gemm, macs / t_gemm / 1e3, t_naive / t_gemm);
  std::printf("  %-34s %10.2f ms  %8.1f MMAC/s  (%.2fx vs naive)\n",
              "LUT-approx scalar (retained path)", t_lut, macs / t_lut / 1e3, t_naive / t_lut);
  std::printf("  %-34s %10.2f ms  %8.1f MMAC/s  (%.2fx vs LUT scalar)\n",
              (std::string("LUT-approx ") + lut_dispatch + " microkernel").c_str(), t_lut_simd,
              macs / t_lut_simd / 1e3, lut_speedup);
  std::printf("  emulated vs exact SIMD conv: %.2fx before, %.2fx after  |  LUT cache: "
              "%llu hits / %llu misses (%.0f%% hit rate)\n",
              t_lut / t_gemm, t_lut_simd / t_gemm,
              static_cast<unsigned long long>(lut_stats.hits),
              static_cast<unsigned long long>(lut_stats.misses),
              100.0 * lut_stats.hit_rate());

  // ---- Microkernel dispatch: scalar blocked core vs SIMD core ----------
  const gemm::mk::KernelOps& kops = gemm::mk::active();
  const bool simd = kops.target != gemm::mk::Target::kScalar;
  std::printf("\ndispatch: %s (%s)\n", kops.name,
              simd ? "SIMD microkernel, 6x16 register tile" : "scalar fallback");

  const std::int64_t mm = quick ? 192 : 512;
  const int mm_iters = quick ? 5 : 10;
  const Tensor ma = ops::uniform(Shape{mm, mm}, -1.0, 1.0, rng);
  const Tensor mb = ops::uniform(Shape{mm, mm}, -1.0, 1.0, rng);
  Tensor mc(Shape{mm, mm});
  const double flops = 2.0 * static_cast<double>(mm) * mm * mm;

  const double t_legacy = time_ms(
      [&] {
        legacy_blocked_gemm(mm, mm, mm, ma.data().data(), mb.data().data(),
                            mc.data().data());
      },
      mm_iters);
  const double t_dispatch = time_ms(
      [&] {
        gemm::gemm_f32(false, false, mm, mm, mm, ma.data().data(), mb.data().data(), 0.0F,
                       mc.data().data());
      },
      mm_iters);
  const double gflops_legacy = flops / t_legacy / 1e6;
  const double gflops_dispatch = flops / t_dispatch / 1e6;
  const double simd_speedup = t_legacy / t_dispatch;

  std::printf("\nmatmul [%lld x %lld x %lld]\n", static_cast<long long>(mm),
              static_cast<long long>(mm), static_cast<long long>(mm));
  std::printf("  %-34s %10.2f ms  %8.1f GFLOP/s\n", "scalar blocked GEMM (pre-SIMD core)",
              t_legacy, gflops_legacy);
  std::printf("  %-34s %10.2f ms  %8.1f GFLOP/s  (%.2fx vs scalar blocked)\n",
              (std::string(kops.name) + " microkernel GEMM").c_str(), t_dispatch,
              gflops_dispatch, simd_speedup);

  JsonFields fields;
  fields.boolean("quick", quick)
      .str("target", kops.name)
      .integer("mnk", mm)
      .number("scalar_gflops", gflops_legacy, "%.2f")
      .number("simd_gflops", gflops_dispatch, "%.2f")
      .number("simd_speedup", simd_speedup, "%.2f")
      .number("conv_naive_ms", t_naive, "%.2f")
      .number("conv_gemm_ms", t_gemm, "%.2f")
      .number("conv_speedup", t_naive / t_gemm, "%.2f")
      .number("lut_ms", t_lut, "%.2f")
      .number("lut_simd_ms", t_lut_simd, "%.2f")
      .number("lut_speedup", lut_speedup, "%.2f")
      .str("lut_dispatch", lut_dispatch)
      .number("lut_cache_hit_rate", lut_stats.hit_rate(), "%.2f");
  if (append_bench_json(json_path, "gemm", fields)) {
    std::printf("appended results to %s\n", json_path.c_str());
  }

  const double conv_speedup = t_naive / t_gemm;
  bool pass = conv_speedup >= 2.0;
  std::printf("\n%s: im2col+GEMM is %.2fx the naive conv path (target >= 2x)\n",
              conv_speedup >= 2.0 ? "PASS" : "FAIL", conv_speedup);
  if (simd) {
    pass = pass && simd_speedup >= 2.0;
    std::printf("%s: %s microkernel GEMM is %.2fx the scalar blocked core (target >= 2x)\n",
                simd_speedup >= 2.0 ? "PASS" : "FAIL", kops.name, simd_speedup);
    pass = pass && lut_speedup >= 2.0;
    std::printf("%s: %s LUT-GEMM is %.2fx the retained scalar LUT path (target >= 2x)\n",
                lut_speedup >= 2.0 ? "PASS" : "FAIL", lut_dispatch, lut_speedup);
  } else {
    std::printf("SKIP: scalar dispatch fallback active (no FMA SIMD on this cpu) — "
                "float and LUT speedup gates waived\n");
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_gemm.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  return redcane::bench::run(quick, json_path);
}
