// Ablation D2 (DESIGN.md): is the resilience of the routed layers really
// due to the run-time adaptation of the routing coefficients?
//
// The paper attributes the high resilience of Caps3D/ClassCaps to the
// dynamic updates of b and k during inference. Comparing "3 routing
// iterations" against "1 iteration" naively is unfair: each extra
// iteration adds injection events. This bench therefore perturbs only the
// *votes* (the first MacOutput event of the routed layer per forward) so
// both configurations absorb exactly one injection, and measures how well
// the routing filters it out.
#include <cstdio>

#include "bench_common.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/trainer.hpp"
#include "noise/noise_model.hpp"

using namespace redcane;

namespace {

/// Perturbs every `period`-th MacOutput tensor of one layer — with
/// period = routing_iters + 1 that is exactly the votes tensor of each
/// forward pass through the layer.
class VotesOnlyHook final : public capsnet::PerturbationHook {
 public:
  VotesOnlyHook(std::string layer, noise::NoiseSpec spec, int period, std::uint64_t seed)
      : layer_(std::move(layer)), spec_(spec), period_(period), rng_(seed) {}

  void process(const std::string& layer, capsnet::OpKind kind, Tensor& x) override {
    if (layer != layer_ || kind != capsnet::OpKind::kMacOutput) return;
    if (count_++ % period_ == 0) noise::inject_noise(x, spec_, rng_);
  }

 private:
  std::string layer_;
  noise::NoiseSpec spec_;
  int period_;
  std::int64_t count_ = 0;
  Rng rng_;
};

}  // namespace

int main() {
  bench::Benchmark b = bench::load_benchmark(bench::BenchmarkId::kDeepCapsCifar10);
  auto* model = dynamic_cast<capsnet::DeepCapsModel*>(b.model.get());

  bench::print_header(
      "Ablation D2: routing adaptation vs vote-noise resilience (Caps3D)");
  std::printf("%-8s %16s %16s\n", "NM", "drop (3 iters)", "drop (1 iter)");

  double mean_adaptive = 0.0;
  double mean_frozen = 0.0;
  const std::vector<double> nms{0.5, 0.2, 0.1, 0.05};
  for (double nm : nms) {
    double drops[2] = {0.0, 0.0};
    int idx = 0;
    for (int iters : {3, 1}) {
      model->caps3d().set_routing_iters(iters);
      model->class_caps().set_routing_iters(iters);
      const double base =
          capsnet::evaluate(*model, b.dataset.test_x, b.dataset.test_y, nullptr);
      VotesOnlyHook hook("Caps3D", noise::NoiseSpec{nm, 0.0}, iters + 1,
                         /*seed=*/static_cast<std::uint64_t>(nm * 1e6) + iters);
      const double noisy =
          capsnet::evaluate(*model, b.dataset.test_x, b.dataset.test_y, &hook);
      drops[idx++] = (noisy - base) * 100.0;
    }
    std::printf("%-8.2f %+15.2f%% %+15.2f%%\n", nm, drops[0], drops[1]);
    mean_adaptive += drops[0] / static_cast<double>(nms.size());
    mean_frozen += drops[1] / static_cast<double>(nms.size());
  }
  model->caps3d().set_routing_iters(3);
  model->class_caps().set_routing_iters(3);

  std::printf("\nmean drop: adaptive (3 iters) %+.2f%%, frozen (1 iter) %+.2f%%\n",
              mean_adaptive, mean_frozen);

  // Finding (documented in EXPERIMENTS.md): with the injection count
  // equalized, frozen/uniform routing tolerates vote noise at least as
  // well as adaptive routing — plain averaging over many votes cancels
  // zero-mean noise, while agreement-based reweighting can lock onto it.
  // The *observed* resilience of the routed layers (Figs. 9/10/12) is
  // therefore attributable primarily to vote averaging plus the softmax's
  // bounded coefficients rather than to coefficient adaptation per se; the
  // paper's causal attribution is not confirmed by this reproduction.
  // Shape check: the routed layer is resilient in BOTH configurations for
  // NM <= 0.1 (the regime where MAC-output noise elsewhere already costs
  // tens of percent).
  bool both_resilient = true;
  // Rows printed above: nms = {0.5, 0.2, 0.1, 0.05}; re-evaluate NM = 0.1.
  for (int iters : {3, 1}) {
    model->caps3d().set_routing_iters(iters);
    model->class_caps().set_routing_iters(iters);
    const double base =
        capsnet::evaluate(*model, b.dataset.test_x, b.dataset.test_y, nullptr);
    VotesOnlyHook hook("Caps3D", noise::NoiseSpec{0.1, 0.0}, iters + 1, 555 + iters);
    const double noisy =
        capsnet::evaluate(*model, b.dataset.test_x, b.dataset.test_y, &hook);
    both_resilient = both_resilient && (noisy - base) * 100.0 > -2.0;
  }
  model->caps3d().set_routing_iters(3);
  model->class_caps().set_routing_iters(3);

  std::printf("\nshape check (routed layer tolerates vote noise at NM = 0.1 in both "
              "configurations; adaptation-vs-averaging finding reported above): %s\n",
              both_resilient ? "PASS" : "FAIL");
  return both_resilient ? 0 : 1;
}
