// Observability overhead: the armed-but-idle cost of span tracing on the
// serving hot path must stay under 2% — the contract that makes leaving
// REDCANE_TRACE armed in production defensible.
//
// Reuses bench_serve's closed-loop segment (queue pre-filled before the
// workers start, exact variant, dynamic batching) and times the drain
// with tracing disarmed vs armed. Nobody drains the rings during the
// timed region, so the armed figure is pure emission cost: one relaxed
// armed-load per span plus two steady-clock reads and a seqlock publish.
//
// Measurement discipline: the two states alternate within each rep
// (disarmed, armed, disarmed, armed, ...) and the gate compares the
// per-state minimum over all reps — min-of-N of an interleaved sequence
// cancels thermal drift and one-off scheduler noise that a
// first-all-then-all layout would bake into one side.
//
// Also asserts the bit-identity contract directly: the served predictions
// of the armed drain must equal the disarmed drain's, request for
// request.
//
// Results are appended as one JSON object to BENCH_obs.json.
//
// Usage: bench_obs [--quick] [--workers N] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/groups.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace redcane::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Same registry recipe as bench_serve: throughput depends only on the
/// architecture, so an untrained tiny CapsNet is enough.
std::unique_ptr<serve::ModelRegistry> make_registry(std::int64_t hw, const Tensor& probe) {
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = hw;
  cfg.conv1_channels = 8;
  cfg.primary_types = 4;
  cfg.primary_dim = 4;
  cfg.class_dim = 4;
  cfg.conv1_kernel = 3;
  cfg.primary_kernel = 3;
  Rng rng(2020);
  auto model = std::make_unique<capsnet::CapsNetModel>(cfg, rng);

  core::DeploymentManifest m;
  m.model = model->name();
  m.profile = "tiny";
  m.input_hw = hw;
  m.input_channels = 1;
  m.num_classes = cfg.num_classes;
  m.noise_seed = 2020;
  for (const core::Site& site : core::extract_sites(*model, probe)) {
    core::ManifestSite ms;
    ms.site = site;
    ms.component = "synthetic";
    if (site.kind == capsnet::OpKind::kMacOutput) ms.nm = 0.005;
    m.sites.push_back(ms);
  }
  return std::make_unique<serve::ModelRegistry>(std::move(model), std::move(m));
}

/// One closed-loop drain: pre-fill the queue, start the workers, time to
/// the last fulfilled future. Returns the elapsed ms and the predictions.
double drain_once(serve::ModelRegistry& registry, const Tensor& pool,
                  std::int64_t requests, const serve::ServerConfig& sc,
                  std::vector<std::int64_t>* labels) {
  serve::InferenceServer server(registry, sc);
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(static_cast<std::size_t>(requests));
  const std::int64_t n = pool.shape().dim(0);
  for (std::int64_t i = 0; i < requests; ++i) {
    futs.push_back(
        server.submit(capsnet::slice_rows(pool, i % n, i % n + 1), serve::kVariantExact));
  }
  const auto t0 = Clock::now();
  server.start();
  labels->clear();
  for (auto& f : futs) labels->push_back(f.get().prediction.label);
  const double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  server.shutdown();
  return ms;
}

int run(bool quick, int workers_flag, const std::string& json_path) {
  print_header("Observability: armed-but-idle tracing overhead on the serve path");

  // Heavier per-request work than bench_serve's segment: with a model this
  // side of trivial the drain finishes in ~1 ms and scheduler jitter alone
  // swamps a 2% gate. hw 10 pushes one drain into the tens of ms, where
  // min-of-N is stable well under 1%.
  const std::int64_t hw = 10;
  const std::int64_t requests = quick ? 512 : 2000;
  const int reps = quick ? 5 : 7;
  const int workers = serve::InferenceServer::resolve_workers(workers_flag);

  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kMnist;
  spec.hw = hw;
  spec.channels = 1;
  spec.train_count = 4;
  spec.test_count = 64;
  spec.seed = 43;
  const data::Dataset ds = data::make_synthetic(spec);

  std::unique_ptr<serve::ModelRegistry> registry =
      make_registry(hw, capsnet::slice_rows(ds.test_x, 0, 1));

  serve::ServerConfig sc;
  sc.workers = workers;
  sc.max_batch = 32;
  sc.max_delay_us = 2000;

  // Warm caches/allocator (and every worker's first-emit ring allocation)
  // outside the timed region.
  std::vector<std::int64_t> warm;
  obs::trace_arm(true);
  (void)drain_once(*registry, ds.test_x, std::min<std::int64_t>(requests, 64), sc, &warm);
  obs::trace_arm(false);

  std::printf("CapsNet tiny %lldx%lld, %lld requests, %d worker(s), %d interleaved reps\n\n",
              static_cast<long long>(hw), static_cast<long long>(hw),
              static_cast<long long>(requests), workers, reps);

  double min_disarmed = 0.0;
  double min_armed = 0.0;
  std::vector<std::int64_t> labels_disarmed;
  std::vector<std::int64_t> labels_armed;
  bool identical = true;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::int64_t> l_off;
    std::vector<std::int64_t> l_on;
    obs::trace_arm(false);
    const double off_ms = drain_once(*registry, ds.test_x, requests, sc, &l_off);
    obs::trace_arm(true);
    const double on_ms = drain_once(*registry, ds.test_x, requests, sc, &l_on);
    obs::trace_arm(false);
    if (rep == 0) {
      min_disarmed = off_ms;
      min_armed = on_ms;
      labels_disarmed = l_off;
      labels_armed = l_on;
    } else {
      min_disarmed = std::min(min_disarmed, off_ms);
      min_armed = std::min(min_armed, on_ms);
    }
    identical = identical && l_off == labels_disarmed && l_on == labels_armed;
    std::printf("  rep %d: disarmed %8.1f ms   armed %8.1f ms\n", rep, off_ms, on_ms);
  }
  identical = identical && labels_disarmed == labels_armed;

  const double overhead_pct = (min_armed - min_disarmed) / min_disarmed * 100.0;
  const std::uint64_t buffered = obs::trace_buffered();
  const std::uint64_t dropped = obs::trace_dropped();

  std::printf("\nmin-of-%d: disarmed %.1f ms, armed %.1f ms  ->  overhead %+.2f%%\n",
              reps, min_disarmed, min_armed, overhead_pct);
  std::printf("rings after run: %llu events buffered, %llu dropped to wraparound\n",
              static_cast<unsigned long long>(buffered),
              static_cast<unsigned long long>(dropped));
  std::printf("armed-vs-disarmed served predictions identical: %s\n",
              identical ? "yes" : "NO");

  JsonFields fields;
  fields.boolean("quick", quick)
      .integer("requests", requests)
      .integer("reps", reps)
      .integer("workers", workers)
      .number("disarmed_ms", min_disarmed, "%.2f")
      .number("armed_ms", min_armed, "%.2f")
      .number("overhead_pct", overhead_pct, "%.2f")
      .integer("events_buffered", static_cast<std::int64_t>(buffered))
      .integer("events_dropped", static_cast<std::int64_t>(dropped))
      .boolean("identical", identical);
  append_bench_json(json_path, "obs", fields);

  const bool pass = identical && overhead_pct < 2.0;
  std::printf("\n%s: armed-but-idle tracing costs %+.2f%% on the closed-loop serve "
              "drain (gate < 2%%, identical predictions required)\n",
              pass ? "PASS" : "FAIL", overhead_pct);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace redcane::bench

int main(int argc, char** argv) {
  bool quick = false;
  int workers = 0;
  std::string json_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) workers = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  return redcane::bench::run(quick, workers, json_path);
}
