// Reproduces paper Fig. 12: group-wise resilience of the remaining four
// benchmarks — DeepCaps on SVHN and MNIST, CapsNet on Fashion-MNIST and
// MNIST.
//
// Paper claims to reproduce:
//   * in every benchmark, MAC outputs and activations are less resilient
//     than softmax and logits update;
//   * the logits update of CapsNet/MNIST is slightly less resilient than
//     that of DeepCaps/MNIST, because CapsNet has a single routed layer
//     while DeepCaps has two.
#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/resilience.hpp"

using namespace redcane;

namespace {

struct GroupDrops {
  // Accuracy drop at the NM = 0.1 grid point (index 2) per group.
  double mac = 0.0, act = 0.0, sm = 0.0, lu = 0.0;
};

GroupDrops run_benchmark(bench::BenchmarkId id) {
  bench::Benchmark b = bench::load_benchmark(id);
  bench::print_header(std::string("Fig. 12 panel: ") + bench::benchmark_name(id));

  core::ResilienceConfig rc;
  rc.seed = 1212;
  core::ResilienceAnalyzer analyzer(*b.model, b.dataset.test_x, b.dataset.test_y, rc);
  std::printf("baseline accuracy: %.2f%%\n", analyzer.baseline() * 100.0);

  GroupDrops d;
  int group_no = 1;
  for (capsnet::OpKind kind : core::all_groups()) {
    core::ResilienceCurve c = analyzer.sweep_group(kind);
    c.label = "#" + std::to_string(group_no++) + ": " + capsnet::op_kind_name(kind);
    std::printf("%s", core::render_curve(c).c_str());
    const double at = c.drop_pct[2];  // NM = 0.1.
    switch (kind) {
      case capsnet::OpKind::kMacOutput: d.mac = at; break;
      case capsnet::OpKind::kActivation: d.act = at; break;
      case capsnet::OpKind::kSoftmax: d.sm = at; break;
      case capsnet::OpKind::kLogitsUpdate: d.lu = at; break;
    }
  }
  return d;
}

}  // namespace

int main() {
  bool routing_wins_everywhere = true;
  GroupDrops deepcaps_mnist;
  GroupDrops capsnet_mnist;

  for (bench::BenchmarkId id :
       {bench::BenchmarkId::kDeepCapsSvhn, bench::BenchmarkId::kDeepCapsMnist,
        bench::BenchmarkId::kCapsNetFashionMnist, bench::BenchmarkId::kCapsNetMnist}) {
    const GroupDrops d = run_benchmark(id);
    const double worst_routing = std::min(d.sm, d.lu);
    const double best_compute = std::max(d.mac, d.act);
    routing_wins_everywhere = routing_wins_everywhere && worst_routing >= best_compute - 1.0;
    if (id == bench::BenchmarkId::kDeepCapsMnist) deepcaps_mnist = d;
    if (id == bench::BenchmarkId::kCapsNetMnist) capsnet_mnist = d;
  }

  std::printf("\nlogits-update drop @NM=0.1: DeepCaps/MNIST %+.2f vs CapsNet/MNIST %+.2f "
              "(paper: CapsNet slightly less resilient, single routed layer)\n",
              deepcaps_mnist.lu, capsnet_mnist.lu);

  std::printf("\nshape check (softmax/logits-update at least as resilient as MAC/"
              "activations in all four benchmarks): %s\n",
              routing_wins_everywhere ? "PASS" : "FAIL");
  return routing_wins_everywhere ? 0 : 1;
}
