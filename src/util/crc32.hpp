// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the one
// checksum every integrity seam of the repo shares: checkpoint payloads
// (capsnet/serialize), distributed wire frames (dist/wire), and run-journal
// records (dist/journal). One implementation means a frame checksummed by a
// worker verifies against the same table the journal replayer uses.
#pragma once

#include <cstddef>
#include <cstdint>

namespace redcane::util {

/// Incremental update: feed chunks in order, starting from crc32_init().
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t len);

/// Initial value for incremental use (pre-inverted; crc32_update handles
/// the final inversion internally, so intermediate values chain directly).
[[nodiscard]] inline std::uint32_t crc32_init() { return 0; }

/// One-shot CRC-32 of a buffer.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_update(crc32_init(), data, len);
}

}  // namespace redcane::util
