// splitmix64 — the repo's standard seed-scrambling finalizer, shared by
// the serving fault injector (serve/fault) and the distributed retry
// jitter (dist/backoff) so both decision streams are pure functions of
// (seed, site, sequence) with no shared state.
#pragma once

#include <cstdint>

namespace redcane::util {

[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Hash of (seed, site, seq) mapped into [0, 1).
[[nodiscard]] inline double unit_hash(std::uint64_t seed, std::uint64_t site,
                                      std::uint64_t seq) {
  const std::uint64_t h = splitmix64(splitmix64(seed ^ site) ^ seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace redcane::util
