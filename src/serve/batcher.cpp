#include "serve/batcher.hpp"

#include <algorithm>

namespace redcane::serve {

MicroBatcher::MicroBatcher(BatcherConfig cfg) : cfg_(cfg) {
  // A non-positive ceiling would make pop_batch hand out empty batches.
  cfg_.max_batch = std::max<std::int64_t>(1, cfg_.max_batch);
  cfg_.max_delay_us = std::max<std::int64_t>(0, cfg_.max_delay_us);
}

bool MicroBatcher::push(QueuedRequest& r) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(r));
  }
  cv_.notify_all();
  return true;
}

std::size_t MicroBatcher::head_run_locked() const {
  const std::size_t cap =
      std::min(queue_.size(), static_cast<std::size_t>(cfg_.max_batch));
  std::size_t run = 0;
  while (run < cap && queue_[run].variant == queue_.front().variant) ++run;
  return run;
}

bool MicroBatcher::pop_batch(std::vector<QueuedRequest>& out) {
  out.clear();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // Closed and drained.

    // Wait for co-batchable followers — but only while waiting could help:
    // not when the run already hit max_batch, not when a different-variant
    // request caps the run, and at most max_delay_us past the head arrival.
    const std::size_t run = head_run_locked();
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(cfg_.max_delay_us);
    const bool full = run >= static_cast<std::size_t>(cfg_.max_batch);
    const bool capped = queue_.size() > run;
    if (closed_ || full || capped || ServeClock::now() >= deadline) {
      out.reserve(run);
      for (std::size_t i = 0; i < run; ++i) {
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // Another worker may be mid-wait on the (now consumed) old head.
      cv_.notify_all();
      return true;
    }
    cv_.wait_until(lock, deadline);
  }
}

void MicroBatcher::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t MicroBatcher::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace redcane::serve
