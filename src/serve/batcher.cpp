#include "serve/batcher.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace redcane::serve {

MicroBatcher::MicroBatcher(BatcherConfig cfg) : cfg_(cfg) {
  // A non-positive ceiling would make pop_batch hand out empty batches.
  cfg_.max_batch = std::max<std::int64_t>(1, cfg_.max_batch);
  cfg_.max_delay_us = std::max<std::int64_t>(0, cfg_.max_delay_us);
  cfg_.max_queue = std::max<std::int64_t>(0, cfg_.max_queue);
  if (cfg_.max_queue > 0) {
    if (cfg_.high_watermark <= 0) cfg_.high_watermark = cfg_.max_queue * 3 / 4;
    if (cfg_.low_watermark <= 0) cfg_.low_watermark = cfg_.max_queue / 2;
    cfg_.high_watermark = std::clamp<std::int64_t>(cfg_.high_watermark, 1, cfg_.max_queue);
    cfg_.low_watermark = std::clamp<std::int64_t>(cfg_.low_watermark, 0,
                                                  cfg_.high_watermark - 1);
  } else {
    cfg_.high_watermark = 0;
    cfg_.low_watermark = 0;
  }
}

void MicroBatcher::update_pressure_locked() {
  if (cfg_.max_queue == 0) return;
  const auto depth = static_cast<std::int64_t>(queue_.size());
  const bool was = pressured_.load(std::memory_order_relaxed);
  if (depth >= cfg_.high_watermark) {
    pressured_.store(true, std::memory_order_relaxed);
    if (!was) {
      pressure_enters_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& enters =
          obs::Registry::instance().counter("serve_pressure_enter_total");
      enters.add();
    }
  } else if (depth <= cfg_.low_watermark) {
    pressured_.store(false, std::memory_order_relaxed);
    if (was) {
      pressure_exits_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& exits =
          obs::Registry::instance().counter("serve_pressure_exit_total");
      exits.add();
    }
  }
}

PushStatus MicroBatcher::push(QueuedRequest& r) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushStatus::kClosed;
    if (cfg_.max_queue > 0 &&
        queue_.size() >= static_cast<std::size_t>(cfg_.max_queue)) {
      return PushStatus::kFull;
    }
    queue_.push_back(std::move(r));
    update_pressure_locked();
  }
  cv_.notify_all();
  return PushStatus::kAccepted;
}

std::size_t MicroBatcher::head_run_locked() const {
  const std::size_t cap =
      std::min(queue_.size(), static_cast<std::size_t>(cfg_.max_batch));
  std::size_t run = 0;
  while (run < cap && queue_[run].variant == queue_.front().variant) ++run;
  return run;
}

bool MicroBatcher::pop_batch(std::vector<QueuedRequest>& out,
                             std::vector<QueuedRequest>& expired) {
  out.clear();
  expired.clear();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // Closed and drained.

    // Wait for co-batchable followers — but only while waiting could help:
    // not when the run already hit max_batch, not when a different-variant
    // request caps the run, and at most max_delay_us past the head arrival.
    const std::size_t run = head_run_locked();
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(cfg_.max_delay_us);
    const bool full = run >= static_cast<std::size_t>(cfg_.max_batch);
    const bool capped = queue_.size() > run;
    const auto now = ServeClock::now();
    if (closed_ || full || capped || now >= deadline) {
      out.reserve(run);
      for (std::size_t i = 0; i < run; ++i) {
        // Expired requests are shed here, at pop time, instead of wasting
        // a batch slot: the caller resolves them with kDeadlineExceeded.
        QueuedRequest& head = queue_.front();
        if (head.has_deadline && now >= head.deadline) {
          expired.push_back(std::move(head));
        } else {
          out.push_back(std::move(head));
        }
        queue_.pop_front();
      }
      update_pressure_locked();
      // Another worker may be mid-wait on the (now consumed) old head.
      cv_.notify_all();
      return true;
    }
    cv_.wait_until(lock, deadline);
  }
}

void MicroBatcher::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t MicroBatcher::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace redcane::serve
