#include "serve/registry.hpp"

#include <cstdio>
#include <mutex>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/serialize.hpp"
#include "capsnet/trainer.hpp"
#include "serve/fault.hpp"

namespace redcane::serve {
namespace {

/// Rebuilds the manifest's architecture: profile base config with the
/// manifest's input/class overrides. Weights are placeholder (the caller
/// loads the checkpoint); the Rng seed is therefore irrelevant.
std::unique_ptr<capsnet::CapsModel> build_model(const core::DeploymentManifest& m) {
  Rng rng(1);
  if (m.model == "CapsNet") {
    capsnet::CapsNetConfig cfg = m.profile == "paper" ? capsnet::CapsNetConfig::paper()
                                                      : capsnet::CapsNetConfig::tiny();
    if (m.input_hw > 0) cfg.input_hw = m.input_hw;
    if (m.input_channels > 0) cfg.input_channels = m.input_channels;
    if (m.num_classes > 0) cfg.num_classes = m.num_classes;
    return std::make_unique<capsnet::CapsNetModel>(cfg, rng);
  }
  if (m.model == "DeepCaps") {
    capsnet::DeepCapsConfig cfg = m.profile == "paper" ? capsnet::DeepCapsConfig::paper()
                                                       : capsnet::DeepCapsConfig::tiny();
    if (m.input_hw > 0) cfg.input_hw = m.input_hw;
    if (m.input_channels > 0) cfg.input_channels = m.input_channels;
    if (m.num_classes > 0) cfg.num_classes = m.num_classes;
    return std::make_unique<capsnet::DeepCapsModel>(cfg, rng);
  }
  return nullptr;
}

/// Directory part of a path ("" when the path has none).
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

/// Loads `ckpt` into the model, honoring the armed fault plan: a
/// checkpoint-corruption fault reads a truncated copy instead, which
/// load_params must reject — exercising the caller's rollback path.
bool load_checkpoint(capsnet::CapsModel& model, const std::string& ckpt) {
  if (fault::armed() && fault::plan()->corrupt_checkpoint()) {
    const std::string chaos = ckpt + ".chaos";
    const bool loaded =
        fault::write_truncated_copy(ckpt, chaos, fault::plan()->config().seed) &&
        capsnet::load_params(model, chaos);
    std::remove(chaos.c_str());
    return loaded;
  }
  return capsnet::load_params(model, ckpt);
}

}  // namespace

ModelRegistry::ModelRegistry(std::unique_ptr<capsnet::CapsModel> model,
                             core::DeploymentManifest manifest)
    : model_(std::move(model)), manifest_(std::move(manifest)) {
  build_variants();
}

std::unique_ptr<ModelRegistry> ModelRegistry::open(const std::string& manifest_path) {
  core::DeploymentManifest m;
  if (!core::load_manifest(manifest_path, m)) {
    std::fprintf(stderr, "serve: cannot load manifest %s\n", manifest_path.c_str());
    return nullptr;
  }
  std::unique_ptr<capsnet::CapsModel> model = build_model(m);
  if (model == nullptr) {
    std::fprintf(stderr, "serve: unknown model '%s' in %s\n", m.model.c_str(),
                 manifest_path.c_str());
    return nullptr;
  }
  if (m.checkpoint.empty()) {
    std::fprintf(stderr, "serve: manifest %s names no checkpoint\n",
                 manifest_path.c_str());
    return nullptr;
  }
  const std::string ckpt = m.checkpoint.front() == '/'
                               ? m.checkpoint
                               : dir_of(manifest_path) + m.checkpoint;
  if (!load_checkpoint(*model, ckpt)) {
    std::fprintf(stderr, "serve: cannot load checkpoint %s\n", ckpt.c_str());
    return nullptr;
  }
  const Shape in = model->input_shape();
  const Tensor probe(Shape{1, in.dim(0), in.dim(1), in.dim(2)});
  if (!capsnet::audit_const_forward(*model, probe)) {
    std::fprintf(stderr, "serve: const-forward audit failed for %s\n", m.model.c_str());
    return nullptr;
  }
  return std::make_unique<ModelRegistry>(std::move(model), std::move(m));
}

bool ModelRegistry::reload(const std::string& manifest_path) {
  // Full revalidation happens OUTSIDE the write lock: traffic keeps
  // flowing on the old model while the candidate loads.
  std::unique_ptr<ModelRegistry> fresh = open(manifest_path);
  if (fresh == nullptr) {
    reloads_failed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    // Queued requests were shape-validated against the current model;
    // a hot reload may not change the served geometry under them.
    if (fresh->model_->input_shape() != model_->input_shape()) {
      std::fprintf(stderr, "serve: reload rejected — input shape changed\n");
      reloads_failed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    model_ = std::move(fresh->model_);
    manifest_ = std::move(fresh->manifest_);
    variants_ = std::move(fresh->variants_);
  }
  reloads_ok_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ModelRegistry::build_variants() {
  variants_.push_back({kVariantExact, std::make_unique<backend::ExactBackend>()});

  std::vector<noise::InjectionRule> rules;
  for (const core::ManifestSite& s : manifest_.sites) {
    const noise::NoiseSpec spec{s.nm, s.na};
    if (spec.is_zero()) continue;  // Exact component: no rule needed.
    rules.push_back(noise::layer_rule(s.site.kind, s.site.layer, spec));
  }
  variants_.push_back({kVariantDesigned, std::make_unique<backend::NoiseBackend>(
                                             std::move(rules), manifest_.noise_seed)});

  // Emulated: every MAC-output site runs the quantized behavioral datapath
  // with its selected component. An empty or library-unknown component
  // name (exact selection, or a manifest from another library build) falls
  // back to the exact multiplier — the site still executes the quantized
  // u8 datapath, just with error-free products.
  backend::EmulationPlan plan;
  for (const core::ManifestSite& s : manifest_.sites) {
    if (s.site.kind != capsnet::OpKind::kMacOutput) continue;
    if (!plan.set_by_name(s.site.layer, s.component)) {
      std::fprintf(stderr,
                   "serve: component '%s' (site %s) not in this build's library; "
                   "emulating with the exact multiplier\n",
                   s.component.c_str(), s.site.layer.c_str());
      plan.set(s.site.layer, backend::SiteUnit{});
    }
  }
  variants_.push_back(
      {kVariantEmulated, std::make_unique<backend::EmulatedBackend>(std::move(plan))});
}

core::DeploymentManifest ModelRegistry::manifest() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return manifest_;
}

Shape ModelRegistry::input_shape() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return model_->input_shape();
}

std::vector<std::string> ModelRegistry::variant_names() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  for (const Variant& v : variants_) names.push_back(v.name);
  return names;
}

bool ModelRegistry::has_variant(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return find_variant_locked(name) != nullptr;
}

std::int64_t ModelRegistry::designed_noisy_sites() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const Variant* v = find_variant_locked(kVariantDesigned);
  if (v == nullptr) return 0;
  const std::vector<noise::InjectionRule>* rules = v->exec->rules();
  return rules == nullptr ? 0 : static_cast<std::int64_t>(rules->size());
}

std::int64_t ModelRegistry::emulated_sites() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const Variant* v = find_variant_locked(kVariantEmulated);
  if (v == nullptr) return 0;
  const auto& emu = static_cast<const backend::EmulatedBackend&>(*v->exec);
  return static_cast<std::int64_t>(emu.plan().size());
}

const Variant* ModelRegistry::find_variant_locked(const std::string& name) const {
  for (const Variant& v : variants_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

RunResult ModelRegistry::run(const std::string& variant, const Tensor& x,
                             std::uint64_t salt) const {
  RunResult r;
  if (fault::armed() && fault::plan()->fail_backend()) {
    r.error = "injected backend fault";
    return r;
  }
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const Variant* v = find_variant_locked(variant);
  if (v == nullptr) {
    r.error = "unknown variant '" + variant + "'";
    return r;
  }
  r.output = v->exec->run(*model_, x, salt);
  r.ok = true;
  return r;
}

}  // namespace redcane::serve
