// ModelRegistry: turns a deployment manifest into servable model variants.
//
// The registry owns one trained CapsModel (rebuilt from the manifest's
// architecture fields, weights loaded via capsnet::load_params) and exposes
// named *variants* — execution backends (backend/backend.hpp) over it:
//
//   "exact"    — ExactBackend: the plain network, no perturbation hook;
//   "designed" — NoiseBackend: the Step-6 design as the paper models it —
//                every manifest site gets its selected component's
//                profiled NM/NA injected through the standard
//                GaussianInjector hook, i.e. the same mechanism the
//                resilience analysis used, now running as the deployed
//                approximate network;
//   "emulated" — EmulatedBackend: ground-truth behavioral execution of the
//                same design — every MAC-output site's selected component
//                runs as a quantized u8 LUT datapath inside the layer
//                forwards. Deterministic (no RNG): for a pinned batch
//                composition, served outputs are bit-identical across
//                worker counts by construction.
//
// Noise hooks are created fresh per micro-batch (ExecBackend::make_hook)
// so concurrent workers never share a stream; the stream seed derives
// deterministically from the manifest seed and the caller's salt (first
// request id of the batch), keeping served outputs reproducible.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "capsnet/model.hpp"
#include "core/manifest.hpp"
#include "noise/injector.hpp"

namespace redcane::serve {

inline constexpr const char* kVariantExact = "exact";
inline constexpr const char* kVariantDesigned = "designed";
inline constexpr const char* kVariantEmulated = "emulated";

/// A named way to execute the deployed model.
struct Variant {
  std::string name;
  std::unique_ptr<backend::ExecBackend> exec;
};

class ModelRegistry {
 public:
  /// Wraps an externally built (already trained/loaded) model. Used by
  /// tests and benches whose model configs have no manifest profile.
  ModelRegistry(std::unique_ptr<capsnet::CapsModel> model,
                core::DeploymentManifest manifest);

  /// Loads a manifest file, rebuilds its model (profile config + input
  /// overrides), loads the checkpoint (resolved relative to the manifest's
  /// directory), and audits the const-forward contract with a zero probe.
  /// Returns nullptr (with a stderr note) on any failure.
  static std::unique_ptr<ModelRegistry> open(const std::string& manifest_path);

  [[nodiscard]] capsnet::CapsModel& model() { return *model_; }
  [[nodiscard]] const core::DeploymentManifest& manifest() const { return manifest_; }

  /// Variant names in registration order: {"exact", "designed",
  /// "emulated"}.
  [[nodiscard]] std::vector<std::string> variant_names() const;
  [[nodiscard]] bool has_variant(const std::string& name) const;

  /// Sites of the designed variant that carry non-zero noise.
  [[nodiscard]] std::int64_t designed_noisy_sites() const;

  /// MAC-output layers the emulated variant executes behaviorally.
  [[nodiscard]] std::int64_t emulated_sites() const;

  /// Runs one micro-batch through `variant`'s backend (fresh noise hook
  /// per call for the designed variant). `salt` keys the designed
  /// variant's noise stream (callers pass the batch's first request id);
  /// exact/emulated ignore it. Aborts on an unknown variant (requests are
  /// validated at submit time).
  [[nodiscard]] Tensor run(const std::string& variant, const Tensor& x,
                           std::uint64_t salt) const;

 private:
  [[nodiscard]] const Variant& find_variant(const std::string& name) const;
  void build_variants();

  std::unique_ptr<capsnet::CapsModel> model_;
  core::DeploymentManifest manifest_;
  std::vector<Variant> variants_;
};

}  // namespace redcane::serve
