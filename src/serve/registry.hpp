// ModelRegistry: turns a deployment manifest into servable model variants.
//
// The registry owns one trained CapsModel (rebuilt from the manifest's
// architecture fields, weights loaded via capsnet::load_params) and exposes
// named *variants* — execution backends (backend/backend.hpp) over it:
//
//   "exact"    — ExactBackend: the plain network, no perturbation hook;
//   "designed" — NoiseBackend: the Step-6 design as the paper models it —
//                every manifest site gets its selected component's
//                profiled NM/NA injected through the standard
//                GaussianInjector hook, i.e. the same mechanism the
//                resilience analysis used, now running as the deployed
//                approximate network;
//   "emulated" — EmulatedBackend: ground-truth behavioral execution of the
//                same design — every MAC-output site's selected component
//                runs as a quantized u8 LUT datapath inside the layer
//                forwards. Deterministic (no RNG): for a pinned batch
//                composition, served outputs are bit-identical across
//                worker counts by construction.
//
// Noise hooks are created fresh per micro-batch (ExecBackend::make_hook)
// so concurrent workers never share a stream; the stream seed derives
// deterministically from the manifest seed and the caller's salt (first
// request id of the batch), keeping served outputs reproducible.
//
// Fault tolerance: run() never aborts — an unknown variant or a
// (fault-injected) backend failure comes back as a failed RunResult the
// server turns into a typed ServeError. reload() swaps in a revalidated
// manifest+checkpoint atomically and rolls back (keeps serving the old
// model) when any stage of the load fails; readers (run, accessors) hold a
// shared lock so a reload never tears a batch mid-forward.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "capsnet/model.hpp"
#include "core/manifest.hpp"
#include "noise/injector.hpp"

namespace redcane::serve {

inline constexpr const char* kVariantExact = "exact";
inline constexpr const char* kVariantDesigned = "designed";
inline constexpr const char* kVariantEmulated = "emulated";

/// A named way to execute the deployed model.
struct Variant {
  std::string name;
  std::unique_ptr<backend::ExecBackend> exec;
};

/// Outcome of one backend execution.
struct RunResult {
  bool ok = false;
  Tensor output;      ///< Class capsules, valid iff ok.
  std::string error;  ///< Failure detail when !ok.
};

class ModelRegistry {
 public:
  /// Wraps an externally built (already trained/loaded) model. Used by
  /// tests and benches whose model configs have no manifest profile.
  ModelRegistry(std::unique_ptr<capsnet::CapsModel> model,
                core::DeploymentManifest manifest);

  /// Loads a manifest file, rebuilds its model (profile config + input
  /// overrides), loads the checkpoint (resolved relative to the manifest's
  /// directory), and audits the const-forward contract with a zero probe.
  /// Returns nullptr (with a stderr note) on any failure. The checkpoint
  /// read honors the armed fault plan (serve/fault.hpp): a corruption
  /// fault loads a truncated copy, which load_params rejects.
  static std::unique_ptr<ModelRegistry> open(const std::string& manifest_path);

  /// Hot manifest reload: revalidates `manifest_path` through the full
  /// open() path (parse, rebuild, checkpoint load, const-forward audit,
  /// matching input shape), then atomically swaps model+manifest+variants
  /// under the write lock. On ANY failure the registry keeps serving the
  /// previous model and returns false — rollback is simply never swapping.
  bool reload(const std::string& manifest_path);

  /// Reload outcome counters (lifetime totals).
  [[nodiscard]] std::int64_t reloads_ok() const {
    return reloads_ok_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t reloads_failed() const {
    return reloads_failed_.load(std::memory_order_relaxed);
  }

  /// The served model. NOT reload-safe: callers that reload concurrently
  /// must go through run()/input_shape(); direct model access is for
  /// single-threaded tests/benches.
  [[nodiscard]] capsnet::CapsModel& model() { return *model_; }
  [[nodiscard]] core::DeploymentManifest manifest() const;

  /// Input extent of the served model, [H, W, C] (reload-safe snapshot).
  [[nodiscard]] Shape input_shape() const;

  /// Variant names in registration order: {"exact", "designed",
  /// "emulated"}.
  [[nodiscard]] std::vector<std::string> variant_names() const;
  [[nodiscard]] bool has_variant(const std::string& name) const;

  /// Sites of the designed variant that carry non-zero noise.
  [[nodiscard]] std::int64_t designed_noisy_sites() const;

  /// MAC-output layers the emulated variant executes behaviorally.
  [[nodiscard]] std::int64_t emulated_sites() const;

  /// Runs one micro-batch through `variant`'s backend (fresh noise hook
  /// per call for the designed variant). `salt` keys the designed
  /// variant's noise stream (callers pass the batch's first request id);
  /// exact/emulated ignore it. Never aborts: an unknown variant or an
  /// injected backend fault returns a failed RunResult.
  [[nodiscard]] RunResult run(const std::string& variant, const Tensor& x,
                              std::uint64_t salt) const;

 private:
  [[nodiscard]] const Variant* find_variant_locked(const std::string& name) const;
  void build_variants();

  mutable std::shared_mutex mu_;  ///< Guards model_/manifest_/variants_.
  std::unique_ptr<capsnet::CapsModel> model_;
  core::DeploymentManifest manifest_;
  std::vector<Variant> variants_;
  std::atomic<std::int64_t> reloads_ok_{0};
  std::atomic<std::int64_t> reloads_failed_{0};
};

}  // namespace redcane::serve
