#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"

namespace redcane::serve {

double percentile_us(std::vector<double> values_us, double p) {
  if (values_us.empty()) return 0.0;
  std::sort(values_us.begin(), values_us.end());
  const double rank = p / 100.0 * static_cast<double>(values_us.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return values_us[std::min(idx, values_us.size() - 1)];
}

int InferenceServer::resolve_workers(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("REDCANE_SERVE_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

InferenceServer::InferenceServer(ModelRegistry& registry, ServerConfig cfg)
    : registry_(registry),
      cfg_(cfg),
      batcher_(BatcherConfig{cfg.max_batch, cfg.max_delay_us}) {
  stats_.workers = resolve_workers(cfg_.workers);
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Prediction> InferenceServer::submit(const Tensor& sample,
                                                const std::string& variant) {
  if (!registry_.has_variant(variant)) {
    std::fprintf(stderr, "serve fatal: submit to unknown variant '%s'\n",
                 variant.c_str());
    std::abort();
  }
  const Shape in = registry_.model().input_shape();
  const Shape row{1, in.dim(0), in.dim(1), in.dim(2)};
  Tensor x;
  if (sample.shape() == row) {
    x = sample;
  } else if (sample.shape().rank() == 3 && sample.numel() == row.numel()) {
    x = sample.reshaped(row);
  } else {
    std::fprintf(stderr, "serve fatal: sample shape %s does not fit input %s\n",
                 sample.shape().to_string().c_str(), in.to_string().c_str());
    std::abort();
  }

  QueuedRequest r;
  r.variant = variant;
  r.x = std::move(x);
  r.enqueued = ServeClock::now();
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    r.id = next_id_++;
  }
  std::future<Prediction> fut = r.done.get_future();
  if (!batcher_.push(r)) {
    // Submitting to a shut-down server is a caller bug; failing loudly here
    // beats handing back a future that never resolves.
    std::fprintf(stderr, "serve fatal: submit after shutdown\n");
    std::abort();
  }
  return fut;
}

void InferenceServer::start() {
  if (started_ || stopped_) return;
  started_ = true;
  const int workers = stats_.workers;
  pool_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool_.emplace_back([this, workers] {
#ifdef _OPENMP
      // Same discipline as core/sweep_engine: with several workers, batch-
      // level parallelism already covers the machine — a full OpenMP team
      // per worker would oversubscribe it. A single worker keeps the full
      // team so batched GEMMs still use every core.
      if (workers > 1) omp_set_num_threads(1);
#endif
      // One scratch arena per worker (ws::Workspace is thread-keyed):
      // pre-grow it here so the first served batch pays no allocator
      // cold-start; after that, forwards run zero-allocation scratch.
      ws::Workspace::tls().reserve(std::size_t{1} << 20);
      worker_loop();
    });
  }
}

void InferenceServer::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  batcher_.close();
  if (!started_) {
    // Never started: drain inline so queued futures still resolve.
    worker_loop();
  }
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

void InferenceServer::worker_loop() {
  std::vector<QueuedRequest> batch;
  while (batcher_.pop_batch(batch)) process_batch(batch);
}

void InferenceServer::process_batch(std::vector<QueuedRequest>& batch) {
  const Shape in = registry_.model().input_shape();
  const auto n = static_cast<std::int64_t>(batch.size());
  Tensor x(Shape{n, in.dim(0), in.dim(1), in.dim(2)});
  const std::int64_t row = x.numel() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(x.data().data() + i * row, batch[static_cast<std::size_t>(i)].x.data().data(),
                static_cast<std::size_t>(row) * sizeof(float));
  }

  // One backend execution per micro-batch. The designed variant's noise
  // stream is keyed by the batch's first request id: independent of worker
  // identity, so outputs only depend on batch composition. The emulated
  // variant is RNG-free — its outputs depend on the batch tensor alone.
  const Tensor v = registry_.run(batch.front().variant, x, batch.front().id);
  const Tensor lengths = capsnet::CapsModel::class_lengths(v);
  const std::vector<std::int64_t> labels = ops::argmax_last_axis(lengths);

  const auto done = ServeClock::now();
  const std::int64_t classes = lengths.shape().dim(-1);
  std::vector<double> latencies;
  latencies.reserve(batch.size());
  for (std::int64_t i = 0; i < n; ++i) {
    QueuedRequest& r = batch[static_cast<std::size_t>(i)];
    Prediction p;
    p.request_id = r.id;
    p.variant = r.variant;
    p.label = labels[static_cast<std::size_t>(i)];
    p.scores.assign(lengths.data().begin() + i * classes,
                    lengths.data().begin() + (i + 1) * classes);
    p.batch_size = n;
    p.latency_us =
        std::chrono::duration<double, std::micro>(done - r.enqueued).count();
    latencies.push_back(p.latency_us);
    r.done.set_value(std::move(p));
  }

  const std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.requests += n;
  ++stats_.batches;
  for (const double l : latencies) {
    if (stats_.latencies_us.size() < kLatencyWindow) {
      stats_.latencies_us.push_back(l);
    } else {
      stats_.latencies_us[latency_pos_] = l;
      latency_pos_ = (latency_pos_ + 1) % kLatencyWindow;
    }
  }
}

ServerStats InferenceServer::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace redcane::serve
