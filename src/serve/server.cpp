#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/trace.hpp"
#include "serve/fault.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"

namespace redcane::serve {
namespace {

// Process-wide mirrors of the per-instance ServerStats counters. The
// conservation law holds for the registry totals too: every term is a
// sum over server instances, and the law is linear. References are
// resolved once; each increment after that is one relaxed fetch_add.
struct ServeMetrics {
  obs::Counter& submitted;
  obs::Counter& requests;
  obs::Counter& batches;
  obs::Counter& rejected_invalid;
  obs::Counter& rejected_queue_full;
  obs::Counter& rejected_shutdown;
  obs::Counter& shed_deadline;
  obs::Counter& backend_failed;
  obs::Counter& degraded;
  obs::Histogram& latency_us;
};

ServeMetrics& metrics() {
  static ServeMetrics* m = [] {
    obs::Registry& reg = obs::Registry::instance();
    auto* mm = new ServeMetrics{
        reg.counter("serve_submitted_total"),
        reg.counter("serve_requests_total"),
        reg.counter("serve_batches_total"),
        reg.counter("serve_rejected_invalid_total"),
        reg.counter("serve_rejected_queue_full_total"),
        reg.counter("serve_rejected_shutdown_total"),
        reg.counter("serve_shed_deadline_total"),
        reg.counter("serve_backend_failed_total"),
        reg.counter("serve_degraded_total"),
        reg.histogram("serve_latency_us"),
    };
    // ServerStats::reconciles(), restated over the process-wide totals.
    // Evaluated at quiescent points (exposition, tests) — between a
    // submit's `submitted` bump and its terminal accounting the law is
    // transiently short, exactly as for the per-instance struct.
    reg.add_check("serve_conservation", [](const obs::Snapshot& s) {
      return s.counter("serve_submitted_total") ==
             s.counter("serve_requests_total") +
                 s.counter("serve_rejected_invalid_total") +
                 s.counter("serve_rejected_queue_full_total") +
                 s.counter("serve_rejected_shutdown_total") +
                 s.counter("serve_shed_deadline_total") +
                 s.counter("serve_backend_failed_total");
    });
    return mm;
  }();
  return *m;
}

}  // namespace

int InferenceServer::resolve_workers(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("REDCANE_SERVE_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

InferenceServer::InferenceServer(ModelRegistry& registry, ServerConfig cfg)
    : registry_(registry),
      cfg_(cfg),
      batcher_(BatcherConfig{cfg.max_batch, cfg.max_delay_us, cfg.max_queue,
                             /*high_watermark=*/0, /*low_watermark=*/0}) {
  stats_.workers = resolve_workers(cfg_.workers);
}

InferenceServer::~InferenceServer() { shutdown(); }

bool InferenceServer::pressured() const {
  if (fault::armed() && fault::plan()->pressure()) return true;
  return batcher_.pressured();
}

std::future<ServeResult> InferenceServer::reject(QueuedRequest&& r,
                                                 ServeErrorCode code,
                                                 std::string detail) {
  ServeResult res;
  res.error = {code, std::move(detail)};
  res.prediction.request_id = r.id;
  res.prediction.variant = r.requested_variant;
  std::future<ServeResult> fut = r.done.get_future();
  r.done.set_value(std::move(res));
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    switch (code) {
      case ServeErrorCode::kUnknownVariant:
      case ServeErrorCode::kBadShape:
        ++stats_.rejected_invalid;
        metrics().rejected_invalid.add();
        break;
      case ServeErrorCode::kShutdown:
        ++stats_.rejected_shutdown;
        metrics().rejected_shutdown.add();
        break;
      case ServeErrorCode::kQueueFull:
        ++stats_.rejected_queue_full;
        metrics().rejected_queue_full.add();
        break;
      default: break;
    }
  }
  return fut;
}

std::future<ServeResult> InferenceServer::submit(const Tensor& sample,
                                                 const std::string& variant) {
  QueuedRequest r;
  r.requested_variant = variant;
  r.variant = variant;
  r.enqueued = ServeClock::now();
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    r.id = next_id_++;
  }
  metrics().submitted.add();
  // Request ids start at 0 but correlation id 0 means "untagged".
  OBS_SPAN_ID("serve/submit", r.id + 1);

  if (!registry_.has_variant(variant)) {
    return reject(std::move(r), ServeErrorCode::kUnknownVariant,
                  "no variant '" + variant + "' in the registry");
  }
  const Shape in = registry_.input_shape();
  const Shape row{1, in.dim(0), in.dim(1), in.dim(2)};
  if (sample.shape() == row) {
    r.x = sample;
  } else if (sample.shape().rank() == 3 && sample.numel() == row.numel()) {
    r.x = sample.reshaped(row);
  } else {
    return reject(std::move(r), ServeErrorCode::kBadShape,
                  "sample shape " + sample.shape().to_string() +
                      " does not fit input " + in.to_string());
  }

  if (cfg_.deadline_us > 0) {
    r.deadline = r.enqueued + std::chrono::microseconds(cfg_.deadline_us);
    r.has_deadline = true;
  }

  // Graceful degradation: above the high watermark (or under a forced-
  // pressure fault), expensive variants ride the cheap exact path. The
  // substitution happens at admission so the request coalesces with exact
  // traffic; the prediction carries the degraded flag.
  if (cfg_.degrade_under_pressure && variant != kVariantExact && pressured()) {
    r.variant = kVariantExact;
    r.degraded = true;
  }

  if (fault::armed() && fault::plan()->queue_full()) {
    return reject(std::move(r), ServeErrorCode::kQueueFull,
                  "injected queue-pressure fault");
  }

  std::future<ServeResult> fut = r.done.get_future();
  switch (batcher_.push(r)) {
    case PushStatus::kAccepted: return fut;
    case PushStatus::kClosed: {
      // The batcher left `r` (and its promise) untouched: resolve it with
      // the typed shutdown error instead of the seed runtime's abort.
      ServeResult res;
      res.error = {ServeErrorCode::kShutdown, "submit after shutdown"};
      res.prediction.request_id = r.id;
      res.prediction.variant = r.requested_variant;
      r.done.set_value(std::move(res));
      metrics().rejected_shutdown.add();
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_shutdown;
      return fut;
    }
    case PushStatus::kFull: {
      ServeResult res;
      res.error = {ServeErrorCode::kQueueFull,
                   "queue at max_queue=" + std::to_string(cfg_.max_queue)};
      res.prediction.request_id = r.id;
      res.prediction.variant = r.requested_variant;
      r.done.set_value(std::move(res));
      metrics().rejected_queue_full.add();
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_queue_full;
      return fut;
    }
  }
  return fut;  // Unreachable.
}

void InferenceServer::start() {
  if (started_ || stopped_) return;
  started_ = true;
  const int workers = stats_.workers;
  obs::Registry::instance().gauge("serve_workers").set(workers);
  pool_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool_.emplace_back([this, workers] {
#ifdef _OPENMP
      // Same discipline as core/sweep_engine: with several workers, batch-
      // level parallelism already covers the machine — a full OpenMP team
      // per worker would oversubscribe it. A single worker keeps the full
      // team so batched GEMMs still use every core.
      if (workers > 1) omp_set_num_threads(1);
#endif
      // One scratch arena per worker (ws::Workspace is thread-keyed):
      // pre-grow it here so the first served batch pays no allocator
      // cold-start; after that, forwards run zero-allocation scratch.
      ws::Workspace::tls().reserve(std::size_t{1} << 20);
      worker_loop();
    });
  }
}

void InferenceServer::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  batcher_.close();
  if (!started_) {
    // Never started: drain inline so queued futures still resolve.
    worker_loop();
  }
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

void InferenceServer::worker_loop() {
  std::vector<QueuedRequest> batch;
  std::vector<QueuedRequest> expired;
  while (batcher_.pop_batch(batch, expired)) {
    if (fault::armed()) {
      std::int64_t stall_us = 0;
      if (fault::plan()->stall_worker(stall_us) && stall_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
      }
    }
    resolve_expired(expired);
    if (!batch.empty()) process_batch(batch);
  }
}

void InferenceServer::resolve_expired(std::vector<QueuedRequest>& expired) {
  if (expired.empty()) return;
  for (QueuedRequest& r : expired) {
    ServeResult res;
    res.error = {ServeErrorCode::kDeadlineExceeded,
                 "deadline of " + std::to_string(cfg_.deadline_us) +
                     " us passed before a batch slot opened"};
    res.prediction.request_id = r.id;
    res.prediction.variant = r.requested_variant;
    r.done.set_value(std::move(res));
  }
  metrics().shed_deadline.add(static_cast<std::int64_t>(expired.size()));
  const std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.shed_deadline += static_cast<std::int64_t>(expired.size());
}

void InferenceServer::process_batch(std::vector<QueuedRequest>& batch) {
  const auto n = static_cast<std::int64_t>(batch.size());
  // Correlated with the riders' serve/submit spans via the first request
  // id — the same key the designed variant's noise stream is seeded from.
  OBS_SPAN_ID("serve/batch", batch.front().id + 1);
  // Assemble from the requests' own (submit-validated) row shape, not the
  // registry's live shape — a concurrent hot reload must not tear a batch.
  const Shape& row = batch.front().x.shape();
  Tensor x(Shape{n, row.dim(1), row.dim(2), row.dim(3)});
  const std::int64_t row_n = x.numel() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(x.data().data() + i * row_n,
                batch[static_cast<std::size_t>(i)].x.data().data(),
                static_cast<std::size_t>(row_n) * sizeof(float));
  }

  // One backend execution per micro-batch. The designed variant's noise
  // stream is keyed by the batch's first request id: independent of worker
  // identity, so outputs only depend on batch composition. The emulated
  // variant is RNG-free — its outputs depend on the batch tensor alone.
  const RunResult run = [&] {
    OBS_SPAN_ID("serve/infer", batch.front().id + 1);
    return registry_.run(batch.front().variant, x, batch.front().id);
  }();
  if (!run.ok) {
    // Typed failure for every rider of the batch; the process (and every
    // other in-flight batch) keeps serving.
    for (std::int64_t i = 0; i < n; ++i) {
      QueuedRequest& r = batch[static_cast<std::size_t>(i)];
      ServeResult res;
      res.error = {ServeErrorCode::kBackendFailure, run.error};
      res.prediction.request_id = r.id;
      res.prediction.variant = r.requested_variant;
      r.done.set_value(std::move(res));
    }
    metrics().backend_failed.add(n);
    const std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.backend_failed += n;
    return;
  }

  const Tensor lengths = capsnet::CapsModel::class_lengths(run.output);
  const std::vector<std::int64_t> labels = ops::argmax_last_axis(lengths);

  const auto done = ServeClock::now();
  const std::int64_t classes = lengths.shape().dim(-1);
  std::int64_t degraded = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    QueuedRequest& r = batch[static_cast<std::size_t>(i)];
    ServeResult res;
    Prediction& p = res.prediction;
    p.request_id = r.id;
    p.variant = r.requested_variant;
    p.served_by = r.variant;
    p.degraded = r.degraded;
    p.label = labels[static_cast<std::size_t>(i)];
    p.scores.assign(lengths.data().begin() + i * classes,
                    lengths.data().begin() + (i + 1) * classes);
    p.batch_size = n;
    p.latency_us =
        std::chrono::duration<double, std::micro>(done - r.enqueued).count();
    latency_hist_.observe(p.latency_us);
    metrics().latency_us.observe(p.latency_us);
    if (r.degraded) {
      ++degraded;
      res.error = {ServeErrorCode::kDegradedServed,
                   "served by '" + r.variant + "' under queue pressure"};
    }
    r.done.set_value(std::move(res));
  }

  metrics().requests.add(n);
  metrics().degraded.add(degraded);
  metrics().batches.add();
  const std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.requests += n;
  stats_.degraded += degraded;
  ++stats_.batches;
}

ServerStats InferenceServer::stats() const {
  ServerStats out;
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.latency.count = latency_hist_.count();
  out.latency.mean_us =
      out.latency.count == 0
          ? 0.0
          : latency_hist_.sum() / static_cast<double>(out.latency.count);
  out.latency.p50_us = latency_hist_.percentile(50.0);
  out.latency.p99_us = latency_hist_.percentile(99.0);
  out.latency.p999_us = latency_hist_.percentile(99.9);
  out.latency.max_us = latency_hist_.max();
  return out;
}

}  // namespace redcane::serve
