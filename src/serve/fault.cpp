#include "serve/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/hash.hpp"

namespace redcane::serve::fault {
namespace {

std::atomic<FaultPlan*> g_plan{nullptr};

// util::splitmix64 / util::unit_hash are the former local helpers,
// hoisted so dist/backoff shares the identical decision-hash chain; the
// streams below are bit-for-bit what they were before the hoist.
using util::unit_hash;

constexpr std::uint64_t kSiteStall = 0x57414C4Cu;    // "WALL"
constexpr std::uint64_t kSiteBackend = 0x4241434Bu;  // "BACK"
constexpr std::uint64_t kSiteCkpt = 0x434B5054u;     // "CKPT"
constexpr std::uint64_t kSiteHeartbeat = 0x48424554u;  // "HBET"
constexpr std::uint64_t kSiteFrame = 0x46524D45u;      // "FRME"
constexpr std::uint64_t kSiteSock = 0x534F434Bu;       // "SOCK"

}  // namespace

bool FaultPlan::decide(std::uint64_t site, std::atomic<std::uint64_t>& seq,
                       double prob) {
  if (prob <= 0.0) return false;
  const std::uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
  return unit_hash(cfg_.seed, site, n) < prob;
}

bool FaultPlan::stall_worker(std::int64_t& us) {
  if (!decide(kSiteStall, stall_seq_, cfg_.worker_stall_prob)) return false;
  us = cfg_.worker_stall_us;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::fail_backend() {
  if (!decide(kSiteBackend, backend_seq_, cfg_.backend_fail_prob)) return false;
  backend_failures_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::corrupt_checkpoint() {
  if (!decide(kSiteCkpt, ckpt_seq_, cfg_.checkpoint_corrupt_prob)) return false;
  ckpt_corruptions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::kill_worker(const std::string& name, std::int64_t shards_done) {
  if (cfg_.kill_worker_after < 0) return false;
  if (!cfg_.kill_worker_name.empty() && cfg_.kill_worker_name != name) return false;
  if (shards_done < cfg_.kill_worker_after) return false;
  worker_kills_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::drop_heartbeat() {
  if (!decide(kSiteHeartbeat, hb_seq_, cfg_.heartbeat_drop_prob)) return false;
  hb_drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::corrupt_result_frame() {
  if (!decide(kSiteFrame, frame_seq_, cfg_.frame_corrupt_prob)) return false;
  frame_corruptions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::stall_socket(std::int64_t& us) {
  if (!decide(kSiteSock, sock_seq_, cfg_.sock_stall_prob)) return false;
  us = cfg_.sock_stall_us;
  sock_stalls_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

FaultCounters FaultPlan::counters() const {
  FaultCounters c;
  c.worker_stalls = stalls_.load(std::memory_order_relaxed);
  c.backend_failures = backend_failures_.load(std::memory_order_relaxed);
  c.checkpoint_corruptions = ckpt_corruptions_.load(std::memory_order_relaxed);
  c.worker_kills = worker_kills_.load(std::memory_order_relaxed);
  c.heartbeats_dropped = hb_drops_.load(std::memory_order_relaxed);
  c.frames_corrupted = frame_corruptions_.load(std::memory_order_relaxed);
  c.socket_stalls = sock_stalls_.load(std::memory_order_relaxed);
  return c;
}

bool armed() { return g_plan.load(std::memory_order_acquire) != nullptr; }

FaultPlan* plan() { return g_plan.load(std::memory_order_acquire); }

ScopedFaultPlan::ScopedFaultPlan(FaultConfig cfg) : plan_(cfg) {
  FaultPlan* expected = nullptr;
  installed_ =
      g_plan.compare_exchange_strong(expected, &plan_, std::memory_order_release);
  if (!installed_) {
    std::fprintf(stderr, "fault: a plan is already armed; nested scope stays inert\n");
  }
}

ScopedFaultPlan::~ScopedFaultPlan() {
  if (installed_) g_plan.store(nullptr, std::memory_order_release);
}

bool parse_spec(const std::string& spec, FaultConfig& out) {
  out = FaultConfig{};
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "kill_name") {  // The one string-valued key.
      if (val.empty()) return false;
      out.kill_worker_name = val;
      continue;
    }
    char* end = nullptr;
    const double num = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0') return false;
    if (key == "seed") out.seed = static_cast<std::uint64_t>(num);
    else if (key == "stall") out.worker_stall_prob = num;
    else if (key == "stall_us") out.worker_stall_us = static_cast<std::int64_t>(num);
    else if (key == "backend") out.backend_fail_prob = num;
    else if (key == "ckpt") out.checkpoint_corrupt_prob = num;
    else if (key == "full") out.force_queue_full = num != 0.0;
    else if (key == "pressure") out.force_pressure = num != 0.0;
    else if (key == "kill_after") out.kill_worker_after = static_cast<std::int64_t>(num);
    else if (key == "hb_drop") out.heartbeat_drop_prob = num;
    else if (key == "hb_delay_us") out.heartbeat_delay_us = static_cast<std::int64_t>(num);
    else if (key == "frame") out.frame_corrupt_prob = num;
    else if (key == "sock_stall") out.sock_stall_prob = num;
    else if (key == "sock_stall_us") out.sock_stall_us = static_cast<std::int64_t>(num);
    else if (key == "coord_crash") out.coord_crash_after = static_cast<std::int64_t>(num);
    else return false;
  }
  return true;
}

bool write_truncated_copy(const std::string& src, const std::string& dst,
                          std::uint64_t seed) {
  std::FILE* in = std::fopen(src.c_str(), "rb");
  if (in == nullptr) return false;
  std::vector<char> bytes;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(in);
  if (bytes.empty()) return false;
  // Strictly inside the file: at least one byte is always missing, so a
  // length-validating parser (capsnet::load_params) is guaranteed to
  // reject the copy.
  const std::size_t cut = static_cast<std::size_t>(util::splitmix64(seed) % bytes.size());
  std::FILE* outf = std::fopen(dst.c_str(), "wb");
  if (outf == nullptr) return false;
  const bool ok = cut == 0 || std::fwrite(bytes.data(), 1, cut, outf) == cut;
  std::fclose(outf);
  return ok;
}

}  // namespace redcane::serve::fault
