// Dynamic micro-batching request queue of the serving runtime.
//
// Requests arrive one sample at a time; GEMM-backed CapsNet inference is
// far more efficient per sample on a batch, so the batcher coalesces the
// queue head into micro-batches: consecutive same-variant requests, up to
// `max_batch` of them, waiting at most `max_delay_us` past the head
// request's arrival for co-batchable followers (and not at all when a
// different-variant request is already queued right behind the run —
// waiting could not grow the batch).
//
// Workers pop under one lock and always take the queue-head run, so batch
// composition is a pure function of the queue's content at pop time —
// never of which worker pops. For a pinned arrival order (queue filled
// before the workers start), batches and therefore served outputs are
// bit-identical across worker counts (tests/test_serve.cpp). Under live
// traffic, pop timing relative to arrivals still shapes the batches;
// exact-variant outputs are per-sample independent and stay bit-identical
// regardless, while designed-variant noise depends on the batch layout.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace redcane::serve {

using ServeClock = std::chrono::steady_clock;

/// Completed inference of one request.
struct Prediction {
  std::uint64_t request_id = 0;
  std::string variant;        ///< Variant that served it ("exact", "designed").
  std::int64_t label = -1;    ///< Predicted class (argmax of scores).
  std::vector<float> scores;  ///< Class-capsule lengths, one per class.
  std::int64_t batch_size = 0;  ///< Size of the micro-batch it rode in.
  double latency_us = 0.0;      ///< Enqueue -> fulfillment [us].
};

/// One queued request: a single sample bound for a named model variant.
struct QueuedRequest {
  std::uint64_t id = 0;
  std::string variant;
  Tensor x;  ///< One sample, [1, H, W, C].
  ServeClock::time_point enqueued;
  std::promise<Prediction> done;
};

struct BatcherConfig {
  std::int64_t max_batch = 16;       ///< Coalescing ceiling [requests].
  std::int64_t max_delay_us = 2000;  ///< Head-of-line wait for co-batchable arrivals [us].
};

class MicroBatcher {
 public:
  /// Clamps max_batch to >= 1 and max_delay_us to >= 0.
  explicit MicroBatcher(BatcherConfig cfg);

  /// Enqueues a request (FIFO). Returns false — leaving `r` untouched so
  /// the caller can resolve its promise — when the batcher is closed:
  /// nothing would ever pop the request.
  [[nodiscard]] bool push(QueuedRequest& r);

  /// Blocks for the next micro-batch (the queue-head run of same-variant
  /// requests, bounded by max_batch/max_delay_us). Returns false once the
  /// batcher is closed and drained — the worker-pool exit signal.
  bool pop_batch(std::vector<QueuedRequest>& out);

  /// Ends intake; blocked pop_batch calls drain the queue, then return false.
  void close();

  /// Requests currently queued (diagnostic).
  [[nodiscard]] std::size_t pending() const;

  [[nodiscard]] const BatcherConfig& config() const { return cfg_; }

 private:
  /// Length of the same-variant run at the queue head, capped at max_batch.
  [[nodiscard]] std::size_t head_run_locked() const;

  BatcherConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedRequest> queue_;
  bool closed_ = false;
};

}  // namespace redcane::serve
