// Dynamic micro-batching request queue of the serving runtime, with
// bounded admission and per-request deadlines.
//
// Requests arrive one sample at a time; GEMM-backed CapsNet inference is
// far more efficient per sample on a batch, so the batcher coalesces the
// queue head into micro-batches: consecutive same-variant requests, up to
// `max_batch` of them, waiting at most `max_delay_us` past the head
// request's arrival for co-batchable followers (and not at all when a
// different-variant request is already queued right behind the run —
// waiting could not grow the batch).
//
// Backpressure (all opt-in, zero behavior change at the defaults):
//   * max_queue > 0 bounds the queue; push rejects with kFull at the
//     bound instead of growing an unbounded deque under a burst.
//   * high/low watermarks (derived from max_queue unless set) drive a
//     hysteresis `pressured()` flag: raised when depth reaches the high
//     watermark, cleared when it drains to the low one. The server uses
//     it to degrade expensive variants to "exact" (see server.hpp).
//   * a request whose `deadline` is set and already past at pop time is
//     shed into the `expired` list instead of wasting a batch slot; the
//     server resolves it with ServeError::kDeadlineExceeded.
//
// Workers pop under one lock and always take the queue-head run, so batch
// composition is a pure function of the queue's content at pop time —
// never of which worker pops. For a pinned arrival order (queue filled
// before the workers start) and no deadlines, batches and therefore served
// outputs are bit-identical across worker counts (tests/test_serve.cpp).
// Under live traffic, pop timing relative to arrivals still shapes the
// batches; exact-variant outputs are per-sample independent and stay
// bit-identical regardless, while designed-variant noise depends on the
// batch layout.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "serve/result.hpp"
#include "tensor/tensor.hpp"

namespace redcane::serve {

using ServeClock = std::chrono::steady_clock;

/// One queued request: a single sample bound for a named model variant.
struct QueuedRequest {
  std::uint64_t id = 0;
  std::string variant;            ///< Variant that will execute it.
  std::string requested_variant;  ///< Variant the caller asked for (differs
                                  ///< from `variant` when degraded).
  bool degraded = false;
  Tensor x;  ///< One sample, [1, H, W, C].
  ServeClock::time_point enqueued;
  ServeClock::time_point deadline;  ///< Shed-after time; unset when !has_deadline.
  bool has_deadline = false;
  std::promise<ServeResult> done;
};

struct BatcherConfig {
  std::int64_t max_batch = 16;       ///< Coalescing ceiling [requests].
  std::int64_t max_delay_us = 2000;  ///< Head-of-line wait for co-batchable arrivals [us].
  std::int64_t max_queue = 0;        ///< Queue bound [requests]; 0 = unbounded.
  std::int64_t high_watermark = 0;   ///< Pressure on at this depth; 0 = 3/4 max_queue.
  std::int64_t low_watermark = 0;    ///< Pressure off at this depth; 0 = 1/2 max_queue.
};

/// Admission outcome of MicroBatcher::push.
enum class PushStatus {
  kAccepted,
  kClosed,  ///< Batcher closed: nothing would ever pop the request.
  kFull,    ///< Queue at max_queue: admission control rejected.
};

class MicroBatcher {
 public:
  /// Clamps max_batch to >= 1, delays/bounds to >= 0, and derives unset
  /// watermarks from max_queue (no-ops while max_queue == 0).
  explicit MicroBatcher(BatcherConfig cfg);

  /// Enqueues a request (FIFO). On kClosed/kFull `r` is left untouched so
  /// the caller can resolve its promise with the matching typed error.
  [[nodiscard]] PushStatus push(QueuedRequest& r);

  /// Blocks for the next micro-batch (the queue-head run of same-variant
  /// requests, bounded by max_batch/max_delay_us). Requests already past
  /// their deadline are moved to `expired` instead of `out` — `out` may
  /// come back empty while `expired` is not. Returns false once the
  /// batcher is closed and drained — the worker-pool exit signal.
  bool pop_batch(std::vector<QueuedRequest>& out, std::vector<QueuedRequest>& expired);

  /// Ends intake; blocked pop_batch calls drain the queue, then return false.
  void close();

  /// Requests currently queued (diagnostic).
  [[nodiscard]] std::size_t pending() const;

  /// Hysteresis queue-pressure flag (always false while max_queue == 0).
  [[nodiscard]] bool pressured() const {
    return pressured_.load(std::memory_order_relaxed);
  }

  /// Pressure-flag transitions since construction (also mirrored into
  /// the registry as serve_pressure_enter/exit_total). enters - exits is
  /// 1 while pressured, 0 otherwise.
  [[nodiscard]] std::int64_t pressure_enters() const {
    return pressure_enters_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t pressure_exits() const {
    return pressure_exits_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const BatcherConfig& config() const { return cfg_; }

 private:
  /// Length of the same-variant run at the queue head, capped at max_batch.
  [[nodiscard]] std::size_t head_run_locked() const;
  void update_pressure_locked();

  BatcherConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedRequest> queue_;
  std::atomic<bool> pressured_{false};
  std::atomic<std::int64_t> pressure_enters_{0};
  std::atomic<std::int64_t> pressure_exits_{0};
  bool closed_ = false;
};

}  // namespace redcane::serve
