// Deterministic fault injection for the serving stack.
//
// ReD-CaNe injects noise into the *model* to measure its resilience; this
// module injects faults into the *runtime* to prove the serving stack's
// resilience: worker stalls, backend execution failures, corrupted
// checkpoint reads, and artificial queue pressure. The chaos soak test
// (tests/test_chaos.cpp) arms every mix of these and asserts the
// fault-tolerance contract — every future resolves, counters reconcile,
// shutdown completes.
//
// Determinism: every decision is a pure function of (plan seed, fault
// site, per-site sequence number) through a splitmix64 hash — the k-th
// query at a site always answers the same for a given seed, regardless of
// which thread asks. Probabilities are compared against the hash mapped
// into [0, 1).
//
// Zero cost when off: the process-wide plan is a single atomic pointer,
// null by default. Production hooks read one relaxed-load branch
// (`fault::armed()`) and touch nothing else; arming happens only in tests,
// the chaos bench segment, and via the REDCANE_FAULTS env spec.
//
// Spec grammar (comma-separated key=value, e.g. for REDCANE_FAULTS or
// redcane_serve --faults):
//   seed=N        decision-stream seed                     (default 1)
//   stall=P       worker stall probability per batch       (default 0)
//   stall_us=N    stall duration [us]                      (default 2000)
//   backend=P     backend execution failure probability    (default 0)
//   ckpt=P        checkpoint-read corruption probability   (default 0)
//   full=0|1      admission sees the queue as full         (default 0)
//   pressure=0|1  degraded mode forced on                  (default 0)
//
// Distributed-sweep fault sites (src/dist/), same grammar:
//   kill_after=N     worker exits after completing N shards   (default off)
//   kill_name=S      restrict kill_after to worker named S    (default all)
//   hb_drop=P        heartbeat-send drop probability          (default 0)
//   hb_delay_us=N    delay before each heartbeat send [us]    (default 0)
//   frame=P          result-frame payload corruption prob.    (default 0)
//   sock_stall=P     pre-send socket stall probability        (default 0)
//   sock_stall_us=N  socket stall duration [us]               (default 50000)
//   coord_crash=N    coordinator aborts after N journal
//                    appends (resume-from-journal tests)      (default off)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace redcane::serve::fault {

struct FaultConfig {
  std::uint64_t seed = 1;
  double worker_stall_prob = 0.0;      ///< Per popped batch.
  std::int64_t worker_stall_us = 2000; ///< Stall duration [us].
  double backend_fail_prob = 0.0;      ///< Per backend execution.
  double checkpoint_corrupt_prob = 0.0;  ///< Per checkpoint read.
  bool force_queue_full = false;       ///< Admission rejects everything.
  bool force_pressure = false;         ///< Degraded mode on regardless of depth.

  // Distributed-sweep sites (src/dist/).
  std::int64_t kill_worker_after = -1;   ///< Worker dies after N shards (-1 = off).
  std::string kill_worker_name;          ///< Restrict the kill to one worker ("" = any).
  double heartbeat_drop_prob = 0.0;      ///< Per heartbeat send.
  std::int64_t heartbeat_delay_us = 0;   ///< Added before every heartbeat send.
  double frame_corrupt_prob = 0.0;       ///< Per result frame sent.
  double sock_stall_prob = 0.0;          ///< Per result send.
  std::int64_t sock_stall_us = 50'000;   ///< Socket stall duration [us].
  std::int64_t coord_crash_after = -1;   ///< Coordinator aborts after N journal appends.

  [[nodiscard]] bool any() const {
    return worker_stall_prob > 0.0 || backend_fail_prob > 0.0 ||
           checkpoint_corrupt_prob > 0.0 || force_queue_full || force_pressure ||
           kill_worker_after >= 0 || heartbeat_drop_prob > 0.0 ||
           heartbeat_delay_us > 0 || frame_corrupt_prob > 0.0 ||
           sock_stall_prob > 0.0 || coord_crash_after >= 0;
  }
};

/// Injected-fault tally, for test reconciliation and chaos reports.
struct FaultCounters {
  std::int64_t worker_stalls = 0;
  std::int64_t backend_failures = 0;
  std::int64_t checkpoint_corruptions = 0;
  std::int64_t worker_kills = 0;
  std::int64_t heartbeats_dropped = 0;
  std::int64_t frames_corrupted = 0;
  std::int64_t socket_stalls = 0;
};

/// A seed-driven fault decision stream. Thread-safe: per-site sequence
/// counters are atomic, decisions are pure hashes.
class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig cfg) : cfg_(cfg) {}

  /// True when the worker should stall before handling its next batch;
  /// `us` receives the stall duration.
  [[nodiscard]] bool stall_worker(std::int64_t& us);

  /// True when this backend execution should fail.
  [[nodiscard]] bool fail_backend();

  /// True when this checkpoint read should be corrupted.
  [[nodiscard]] bool corrupt_checkpoint();

  /// True when the dist worker named `name` should exit (without sending
  /// its pending result) after having completed `shards_done` shards. A
  /// pure comparison, not a decision stream: the k-th shard kill is the
  /// k-th shard kill on every replay.
  [[nodiscard]] bool kill_worker(const std::string& name, std::int64_t shards_done);

  /// True when this heartbeat send should be silently dropped.
  [[nodiscard]] bool drop_heartbeat();

  /// Artificial delay added before every heartbeat send [us] (0 = none).
  [[nodiscard]] std::int64_t heartbeat_delay_us() const {
    return cfg_.heartbeat_delay_us;
  }

  /// True when this result frame's payload should be corrupted in flight.
  [[nodiscard]] bool corrupt_result_frame();

  /// True when the worker should stall before its next result send;
  /// `us` receives the stall duration.
  [[nodiscard]] bool stall_socket(std::int64_t& us);

  /// True when the coordinator should abort after its `appends`-th journal
  /// append (pure comparison — resume tests crash at a known point).
  [[nodiscard]] bool coord_crash(std::int64_t appends) const {
    return cfg_.coord_crash_after >= 0 && appends >= cfg_.coord_crash_after;
  }

  [[nodiscard]] bool queue_full() const { return cfg_.force_queue_full; }
  [[nodiscard]] bool pressure() const { return cfg_.force_pressure; }

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] FaultCounters counters() const;

 private:
  [[nodiscard]] bool decide(std::uint64_t site, std::atomic<std::uint64_t>& seq,
                            double prob);

  FaultConfig cfg_;
  std::atomic<std::uint64_t> stall_seq_{0};
  std::atomic<std::uint64_t> backend_seq_{0};
  std::atomic<std::uint64_t> ckpt_seq_{0};
  std::atomic<std::uint64_t> hb_seq_{0};
  std::atomic<std::uint64_t> frame_seq_{0};
  std::atomic<std::uint64_t> sock_seq_{0};
  std::atomic<std::int64_t> stalls_{0};
  std::atomic<std::int64_t> backend_failures_{0};
  std::atomic<std::int64_t> ckpt_corruptions_{0};
  std::atomic<std::int64_t> worker_kills_{0};
  std::atomic<std::int64_t> hb_drops_{0};
  std::atomic<std::int64_t> frame_corruptions_{0};
  std::atomic<std::int64_t> sock_stalls_{0};
};

/// True when a fault plan is armed process-wide. The only cost production
/// code pays when chaos is off.
[[nodiscard]] bool armed();

/// The armed plan (null when !armed()). Callers must check armed() first;
/// the pointer stays valid for the lifetime of the arming ScopedFaultPlan.
[[nodiscard]] FaultPlan* plan();

/// RAII arming of a process-wide plan (tests / chaos segments only).
/// Nesting is a programming error; the inner scope refuses and stays inert.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultConfig cfg);
  ~ScopedFaultPlan();

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  [[nodiscard]] FaultPlan& plan() { return plan_; }

 private:
  FaultPlan plan_;
  bool installed_ = false;
};

/// Parses the spec grammar above into `out` (unparsed keys fail). Returns
/// false (leaving `out` unspecified) on a malformed spec.
[[nodiscard]] bool parse_spec(const std::string& spec, FaultConfig& out);

/// Writes a copy of `src` truncated at a seed-driven offset strictly inside
/// the file (so parsers must reject it) to `dst`. Returns false on I/O
/// failure or when `src` is empty. Used by the checkpoint-read fault site.
[[nodiscard]] bool write_truncated_copy(const std::string& src, const std::string& dst,
                                        std::uint64_t seed);

}  // namespace redcane::serve::fault
