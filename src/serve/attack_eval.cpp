#include "serve/attack_eval.hpp"

#include <algorithm>

#include "capsnet/trainer.hpp"

namespace redcane::serve {

ParsedAttack parse_attack_spec(const std::string& text) {
  ParsedAttack parsed;
  std::string error;
  if (!attack::parse_attack_spec(text, &parsed.spec, &error)) {
    parsed.error = ServeError{ServeErrorCode::kBadAttackSpec, error};
  }
  return parsed;
}

AttackedEvalReport run_attacked_eval(InferenceServer& server, ModelRegistry& registry,
                                     const Tensor& test_x,
                                     const std::vector<std::int64_t>& test_y,
                                     const AttackedEvalConfig& cfg) {
  AttackedEvalReport report;

  const ParsedAttack parsed = parse_attack_spec(cfg.spec_text);
  if (!parsed.ok()) {
    report.error = parsed.error;
    return report;
  }
  report.attack_key = parsed.spec.key();
  if (!registry.has_variant(cfg.variant)) {
    report.error = ServeError{ServeErrorCode::kUnknownVariant,
                              "variant '" + cfg.variant + "' unknown"};
    return report;
  }
  const std::int64_t n = test_x.shape().dim(0);
  if (parsed.spec.is_gradient() &&
      test_y.size() != static_cast<std::size_t>(n)) {
    report.error = ServeError{ServeErrorCode::kBadAttackSpec,
                              "gradient attack needs one label per sample"};
    return report;
  }

  // Perturb serially in fixed chunks against the shared model, then submit
  // every sample in order BEFORE starting workers: the batch layout — and
  // with it every designed-variant noise stream — is pinned by arrival
  // order, not by scheduling.
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  const std::int64_t chunk = std::max<std::int64_t>(1, cfg.attack_batch);
  for (std::int64_t at = 0; at < n; at += chunk) {
    const std::int64_t end = std::min(n, at + chunk);
    const Tensor clean = capsnet::slice_rows(test_x, at, end);
    // Label sub-range, clamped: affine attacks ignore labels and may run
    // with fewer labels than samples.
    const auto have = static_cast<std::int64_t>(test_y.size());
    const std::int64_t lab_lo = std::min(at, have);
    const std::int64_t lab_hi = std::min(end, have);
    const std::vector<std::int64_t> labels(test_y.begin() + lab_lo,
                                           test_y.begin() + lab_hi);
    const Tensor adv = attack::apply_attack(registry.model(), clean, labels, parsed.spec);
    for (std::int64_t i = 0; i < end - at; ++i) {
      futures.push_back(server.submit(capsnet::slice_rows(adv, i, i + 1), cfg.variant));
    }
  }
  server.start();

  std::int64_t correct = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult r = futures[i].get();
    if (r.ok()) {
      report.labels.push_back(r.prediction.label);
      if (i < test_y.size() && r.prediction.label == test_y[i]) ++correct;
    } else {
      report.labels.push_back(-1);
      ++report.request_errors;
    }
  }
  report.accuracy = n == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(n);
  return report;
}

}  // namespace redcane::serve
