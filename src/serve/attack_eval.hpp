// Attacked evaluation mode: drive a served variant with adversarially or
// affinely perturbed inputs and measure what the deployment actually
// delivers under attack — the serving-side surface of the Step-8
// robustness scenarios.
//
// Determinism contract: samples are perturbed serially against the
// registry's shared model in fixed-size chunks (gradient attacks run
// train-mode forwards, so this happens before any worker exists), then
// submitted in sample order to a NOT-yet-started server, pinning the
// micro-batch layout; only then are workers started. For that pinned
// arrival order the served predictions are bit-identical across worker
// counts (tests/test_serve.cpp).
//
// Fault tolerance: nothing here aborts. A malformed spec or unknown
// variant resolves to a typed ServeError (kBadAttackSpec /
// kUnknownVariant) before anything is submitted, and request-level errors
// surface as -1 labels plus a count, mirroring the server's own taxonomy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/attack.hpp"
#include "serve/server.hpp"

namespace redcane::serve {

/// Typed outcome of parsing an attacked-evaluation spec.
struct ParsedAttack {
  ServeError error;  ///< kOk, or kBadAttackSpec with the parser's detail.
  attack::AttackSpec spec;

  [[nodiscard]] bool ok() const { return error.code == ServeErrorCode::kOk; }
};

/// attack::parse_attack_spec lifted into the serving error taxonomy.
[[nodiscard]] ParsedAttack parse_attack_spec(const std::string& text);

struct AttackedEvalConfig {
  std::string variant = kVariantExact;
  std::string spec_text = "none";  ///< attack::parse_attack_spec grammar.
  /// Perturbation chunk size [samples]. Fixed (not tied to server batching)
  /// so the perturbed stream — hence every served prediction — is
  /// independent of worker count and batching config.
  std::int64_t attack_batch = 64;
};

struct AttackedEvalReport {
  /// kOk when the wave ran; kBadAttackSpec / kUnknownVariant when it was
  /// refused up front (nothing submitted).
  ServeError error;
  std::string attack_key;            ///< Canonical AttackSpec::key() run.
  std::vector<std::int64_t> labels;  ///< Served label per sample; -1 = that
                                     ///< request resolved with an error.
  std::int64_t request_errors = 0;   ///< Requests resolved without a prediction.
  double accuracy = 0.0;             ///< Fraction correct vs test_y, in [0, 1].

  [[nodiscard]] bool ok() const { return error.code == ServeErrorCode::kOk; }
};

/// Runs one attacked evaluation wave of `test_x` ([N, H, W, C]) through
/// `server` (constructed, not yet started — see file header; gradient
/// attacks also need one label per sample in `test_y`).
[[nodiscard]] AttackedEvalReport run_attacked_eval(InferenceServer& server,
                                                   ModelRegistry& registry,
                                                   const Tensor& test_x,
                                                   const std::vector<std::int64_t>& test_y,
                                                   const AttackedEvalConfig& cfg);

}  // namespace redcane::serve
