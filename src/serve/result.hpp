// Typed request outcomes of the serving runtime.
//
// Every submitted request resolves its future with a ServeResult: either a
// Prediction, or a ServeError naming exactly why the request was not (or
// only partially) served. No caller input reaches std::abort and no promise
// is ever left unresolved — the error taxonomy replaces the seed runtime's
// fail-loudly aborts so one bad request, one burst, or one failing backend
// can never take the process (or a waiting client) down with it.
//
// kDegradedServed is the one non-failure code: the request WAS served (the
// prediction is valid) but by the cheap exact variant instead of the
// expensive one it asked for, because the server was above its queue
// high watermark (see batcher.hpp). ServeResult::ok() treats it as success;
// callers that care inspect Prediction::degraded / served_by.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redcane::serve {

/// Completed inference of one request.
struct Prediction {
  std::uint64_t request_id = 0;
  std::string variant;        ///< Variant the caller requested ("exact", ...).
  std::string served_by;      ///< Variant that actually ran it (== variant
                              ///< unless degraded).
  bool degraded = false;      ///< Served by "exact" under queue pressure.
  std::int64_t label = -1;    ///< Predicted class (argmax of scores).
  std::vector<float> scores;  ///< Class-capsule lengths, one per class.
  std::int64_t batch_size = 0;  ///< Size of the micro-batch it rode in.
  double latency_us = 0.0;      ///< Enqueue -> fulfillment [us].
};

/// Why a request did not resolve to the prediction it asked for.
enum class ServeErrorCode {
  kOk = 0,             ///< Served as requested.
  kUnknownVariant,     ///< No such variant in the registry.
  kBadShape,           ///< Sample does not fit the model input.
  kShutdown,           ///< Submitted to a closed/shut-down server.
  kQueueFull,          ///< Admission control rejected: queue at max_queue.
  kDeadlineExceeded,   ///< Shed at pop time: past its deadline.
  kBackendFailure,     ///< Backend execution failed (fault-injected or real).
  kDegradedServed,     ///< Served, but by the exact variant (see above).
  kBadAttackSpec,      ///< Malformed attacked-evaluation spec (attack_eval.hpp).
};

/// Stable lowercase token of a code ("ok", "queue_full", ...).
[[nodiscard]] const char* serve_error_name(ServeErrorCode code);

struct ServeError {
  ServeErrorCode code = ServeErrorCode::kOk;
  std::string detail;  ///< Human-readable context ("variant 'x' unknown").
};

/// What a submitted future resolves to: a prediction, a typed error, or
/// both (degraded service).
struct ServeResult {
  ServeError error;
  Prediction prediction;  ///< Valid iff ok().

  /// True when `prediction` is valid (served as asked, or degraded-served).
  [[nodiscard]] bool ok() const {
    return error.code == ServeErrorCode::kOk ||
           error.code == ServeErrorCode::kDegradedServed;
  }
};

inline const char* serve_error_name(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kOk: return "ok";
    case ServeErrorCode::kUnknownVariant: return "unknown_variant";
    case ServeErrorCode::kBadShape: return "bad_shape";
    case ServeErrorCode::kShutdown: return "shutdown";
    case ServeErrorCode::kQueueFull: return "queue_full";
    case ServeErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ServeErrorCode::kBackendFailure: return "backend_failure";
    case ServeErrorCode::kDegradedServed: return "degraded_served";
    case ServeErrorCode::kBadAttackSpec: return "bad_attack_spec";
  }
  return "?";
}

}  // namespace redcane::serve
