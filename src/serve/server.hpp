// InferenceServer: the batched, fault-tolerant serving runtime for
// designed approximate CapsNets.
//
// Requests (one sample + a variant name) are submitted from any thread and
// resolved through std::future<ServeResult>. A worker pool — the threading
// discipline of core/sweep_engine: plain std::threads, OpenMP capped to one
// thread per worker when several workers run so kernels do not oversubscribe
// the machine — drains the MicroBatcher, runs one shared-weight eval
// forward per micro-batch (CapsModel::infer is thread-safe for concurrent
// eval), and fulfills each request with its predicted label, class scores
// and measured latency.
//
// Fault tolerance: no caller input can kill the process and no promise is
// ever left unresolved. Invalid submits (unknown variant, bad shape,
// post-shutdown), admission rejections (bounded queue full), deadline
// misses and backend failures all resolve the future with a typed
// ServeError (serve/result.hpp) instead of the seed runtime's abort().
// Above the queue's high watermark the server can optionally serve
// expensive variants (designed/emulated) with the cheap exact variant —
// flagged on the Prediction and counted — and sheds load instead of
// wedging. serve/fault.hpp injects worker stalls, backend failures and
// queue pressure behind zero-cost-when-off hooks; tests/test_chaos.cpp is
// the soak proving every future resolves under every fault mix.
//
// Determinism: batch composition never depends on which worker pops (see
// batcher.hpp) and each designed-variant batch's noise stream is seeded
// from the batch's first request id — scheduling cannot perturb the math.
// For a pinned arrival order (submit before start()) with no faults, no
// deadline and no bounded queue — the defaults — served outputs are
// bit-identical across worker counts (tests/test_serve.cpp); under live
// traffic, exact-variant outputs remain bit-identical per sample while
// designed-variant noise follows the realized batch layout.
//
// Lifecycle: construct -> (optionally submit) -> start() -> submit/await ->
// shutdown(). Requests submitted before start() queue up and are served
// once workers exist — the identity tests use this to pin batch layout.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/registry.hpp"
#include "serve/result.hpp"

namespace redcane::serve {

struct ServerConfig {
  /// Worker threads; 0 = REDCANE_SERVE_THREADS env var, else hardware
  /// concurrency.
  int workers = 0;
  std::int64_t max_batch = 16;       ///< Micro-batch coalescing ceiling [requests].
  std::int64_t max_delay_us = 2000;  ///< Head-of-line batching wait [us].
  std::int64_t max_queue = 0;        ///< Admission bound [requests]; 0 = unbounded.
  std::int64_t deadline_us = 0;      ///< Per-request deadline [us]; 0 = none.
  /// Above the queue high watermark, serve designed/emulated requests with
  /// the exact variant (flagged + counted) instead of queueing expensive
  /// work the server cannot keep up with.
  bool degrade_under_pressure = false;
};

/// Latency summary of one server lifetime, read out of the server's
/// log-linear obs::Histogram: O(1) memory however long the server lives,
/// quantiles with bounded (1/obs::Histogram::kSubBuckets per octave)
/// relative error, exact max.
struct LatencySummary {
  std::int64_t count = 0;  ///< Fulfilled requests measured.
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

/// Aggregate counters of one server lifetime. Conservation law (asserted
/// by tests/test_chaos.cpp): submitted == requests + rejected_invalid +
/// rejected_queue_full + rejected_shutdown + shed_deadline +
/// backend_failed.
struct ServerStats {
  std::int64_t submitted = 0;  ///< submit() calls, accepted or not.
  std::int64_t requests = 0;   ///< Requests fulfilled with a prediction.
  std::int64_t batches = 0;    ///< Micro-batches executed.
  std::int64_t rejected_invalid = 0;     ///< Unknown variant / bad shape.
  std::int64_t rejected_queue_full = 0;  ///< Admission-control rejections.
  std::int64_t rejected_shutdown = 0;    ///< Submits after close.
  std::int64_t shed_deadline = 0;        ///< Expired at pop time.
  std::int64_t backend_failed = 0;       ///< Resolved with kBackendFailure.
  std::int64_t degraded = 0;  ///< Subset of `requests` served by "exact".
  int workers = 0;            ///< Resolved worker count.
  /// Enqueue->done latency [us] summary of every fulfilled request.
  LatencySummary latency;

  /// Mean fulfilled micro-batch size [requests/batch].
  [[nodiscard]] double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) / static_cast<double>(batches);
  }

  /// The conservation law above; every submit is accounted exactly once.
  [[nodiscard]] bool reconciles() const {
    return submitted == requests + rejected_invalid + rejected_queue_full +
                            rejected_shutdown + shed_deadline + backend_failed;
  }
};

class InferenceServer {
 public:
  InferenceServer(ModelRegistry& registry, ServerConfig cfg);
  /// Joins workers (runs shutdown() if the caller did not).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one sample ([H, W, C] or [1, H, W, C]) for `variant` and
  /// returns the future of its result. Never aborts and never dangles:
  /// an unknown variant, a shape mismatch, a full queue or a post-
  /// shutdown submit resolve the future immediately with the matching
  /// typed ServeError.
  std::future<ServeResult> submit(const Tensor& sample, const std::string& variant);

  /// Spawns the worker pool. Idempotent.
  void start();

  /// Closes intake, drains the queue, joins the workers. Idempotent.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

  /// This server's latency histogram (enqueue->done, microseconds), for
  /// callers that need quantiles beyond the ServerStats summary. Valid
  /// for the server's lifetime; also mirrored into the process-wide
  /// `serve_latency_us` registry histogram.
  [[nodiscard]] const obs::Histogram& latency_histogram() const {
    return latency_hist_;
  }

  /// Queue-pressure flag of the underlying batcher (or fault-forced).
  [[nodiscard]] bool pressured() const;

  /// Resolves cfg.workers / REDCANE_SERVE_THREADS / hardware_concurrency.
  [[nodiscard]] static int resolve_workers(int requested);

 private:
  void worker_loop();
  void process_batch(std::vector<QueuedRequest>& batch);
  void resolve_expired(std::vector<QueuedRequest>& expired);
  std::future<ServeResult> reject(QueuedRequest&& r, ServeErrorCode code,
                                  std::string detail);

  ModelRegistry& registry_;
  ServerConfig cfg_;
  MicroBatcher batcher_;
  std::vector<std::thread> pool_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  obs::Histogram latency_hist_;  ///< Lock-free; written outside stats_mu_.
  std::uint64_t next_id_ = 0;    ///< Guarded by stats_mu_.
};

}  // namespace redcane::serve
