// InferenceServer: the batched serving runtime for designed approximate
// CapsNets.
//
// Requests (one sample + a variant name) are submitted from any thread and
// resolved through std::future<Prediction>. A worker pool — the threading
// discipline of core/sweep_engine: plain std::threads, OpenMP capped to one
// thread per worker when several workers run so kernels do not oversubscribe
// the machine — drains the MicroBatcher, runs one shared-weight eval
// forward per micro-batch (CapsModel::infer is thread-safe for concurrent
// eval), and fulfills each request with its predicted label, class scores
// and measured latency.
//
// Determinism: batch composition never depends on which worker pops (see
// batcher.hpp) and each designed-variant batch's noise stream is seeded
// from the batch's first request id — scheduling cannot perturb the math.
// For a pinned arrival order (submit before start()), served outputs are
// bit-identical across worker counts (tests/test_serve.cpp); under live
// traffic, exact-variant outputs remain bit-identical per sample while
// designed-variant noise follows the realized batch layout.
//
// Lifecycle: construct -> (optionally submit) -> start() -> submit/await ->
// shutdown(). Requests submitted before start() queue up and are served
// once workers exist — the identity tests use this to pin batch layout.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/registry.hpp"

namespace redcane::serve {

struct ServerConfig {
  /// Worker threads; 0 = REDCANE_SERVE_THREADS env var, else hardware
  /// concurrency.
  int workers = 0;
  std::int64_t max_batch = 16;       ///< Micro-batch coalescing ceiling [requests].
  std::int64_t max_delay_us = 2000;  ///< Head-of-line batching wait [us].
};

/// Latency samples retained for percentile reporting: a sliding window of
/// the most recent requests, so a long-lived server's stats stay O(1) in
/// memory instead of growing 8 bytes per request forever.
inline constexpr std::size_t kLatencyWindow = 16384;

/// Aggregate counters of one server lifetime.
struct ServerStats {
  std::int64_t requests = 0;  ///< Requests fulfilled.
  std::int64_t batches = 0;   ///< Micro-batches executed.
  int workers = 0;            ///< Resolved worker count.
  /// Enqueue->done latency [us] of the most recent <= kLatencyWindow
  /// requests (unordered; feed to percentile_us).
  std::vector<double> latencies_us;

  /// Mean fulfilled micro-batch size [requests/batch].
  [[nodiscard]] double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) / static_cast<double>(batches);
  }
};

/// The p-th percentile (p in [0, 100]) of `values_us`, by nearest-rank on a
/// sorted copy; 0 when empty. Shared by the example/bench latency reports.
[[nodiscard]] double percentile_us(std::vector<double> values_us, double p);

class InferenceServer {
 public:
  InferenceServer(ModelRegistry& registry, ServerConfig cfg);
  /// Joins workers (runs shutdown() if the caller did not).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one sample ([H, W, C] or [1, H, W, C]) for `variant` and
  /// returns the future of its prediction. Aborts on an unknown variant, a
  /// shape mismatch, or a submit after shutdown() — all caller programming
  /// errors (the alternative is a future that never resolves).
  std::future<Prediction> submit(const Tensor& sample, const std::string& variant);

  /// Spawns the worker pool. Idempotent.
  void start();

  /// Closes intake, drains the queue, joins the workers. Idempotent.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

  /// Resolves cfg.workers / REDCANE_SERVE_THREADS / hardware_concurrency.
  [[nodiscard]] static int resolve_workers(int requested);

 private:
  void worker_loop();
  void process_batch(std::vector<QueuedRequest>& batch);

  ModelRegistry& registry_;
  ServerConfig cfg_;
  MicroBatcher batcher_;
  std::vector<std::thread> pool_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::size_t latency_pos_ = 0;  ///< Ring cursor once the window is full.
  std::uint64_t next_id_ = 0;    ///< Guarded by stats_mu_.
};

}  // namespace redcane::serve
