// Affine-warp augmenter: rotation / translation / isotropic scale of NHWC
// image batches with inverse-mapped bilinear sampling — the transform-
// severity axis of the Step-8 robustness scenarios (RobCaps, Marchisio et
// al. 2023, evaluates CapsNets under exactly these affine transforms).
//
// The forward transform maps source -> destination coordinates about the
// image center: scale by `scale`, rotate by `angle_deg`, then translate by
// (dx, dy) pixels. affine_warp iterates destination pixels and samples the
// source at the inverse-mapped coordinate; samples falling outside the
// source image read as 0 (background).
//
// Determinism contract: pure scalar double->float loops, no RNG, no
// threading — the output is a function of (input, params) only, so warped
// batches are bitwise identical across thread counts and SIMD dispatch
// targets. Identity params short-circuit to a bitwise copy of the input.
#pragma once

#include "tensor/tensor.hpp"

namespace redcane::attack {

/// Center-anchored affine transform parameters.
struct AffineParams {
  double angle_deg = 0.0;  ///< Rotation, counter-clockwise [degrees].
  double dx = 0.0;         ///< Horizontal translation [pixels].
  double dy = 0.0;         ///< Vertical translation [pixels].
  double scale = 1.0;      ///< Isotropic zoom factor (> 1 enlarges).

  [[nodiscard]] bool is_identity() const {
    return angle_deg == 0.0 && dx == 0.0 && dy == 0.0 && scale == 1.0;
  }

  /// Parameters of the exact inverse coordinate map:
  /// warp(warp(x, p), p.inverse()) recovers interior pixels up to bilinear
  /// resampling error (tests/test_attack.cpp pins the round-trip).
  [[nodiscard]] AffineParams inverse() const;
};

/// Warps an NHWC batch by `p`. Identity params return a bitwise copy.
[[nodiscard]] Tensor affine_warp(const Tensor& x, const AffineParams& p);

}  // namespace redcane::attack
