#include "attack/attack.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "capsnet/trainer.hpp"

namespace redcane::attack {
namespace {

[[nodiscard]] float sign_of(float g) {
  // sign(0) = 0 and sign(NaN) = 0: a dead gradient moves nothing.
  return static_cast<float>((g > 0.0F) - (g < 0.0F));
}

[[nodiscard]] Tensor fgsm_batch(capsnet::CapsModel& model, const Tensor& x,
                                std::span<const std::int64_t> labels,
                                const AttackSpec& spec) {
  const Tensor g = loss_input_grad(model, x, labels, spec.margin);
  Tensor adv = x;
  const float eps = static_cast<float>(spec.epsilon);
  const float lo = static_cast<float>(spec.clip_min);
  const float hi = static_cast<float>(spec.clip_max);
  auto ad = adv.data();
  auto gd = g.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    ad[i] = std::clamp(ad[i] + eps * sign_of(gd[i]), lo, hi);
  }
  return adv;
}

[[nodiscard]] Tensor pgd_batch(capsnet::CapsModel& model, const Tensor& x,
                               std::span<const std::int64_t> labels,
                               const AttackSpec& spec) {
  const float eps = static_cast<float>(spec.epsilon);
  const float step = static_cast<float>(spec.resolved_step());
  const float lo = static_cast<float>(spec.clip_min);
  const float hi = static_cast<float>(spec.clip_max);
  Tensor adv = x;  // Deterministic start at the clean input: no random init.
  auto xd = x.data();
  for (int it = 0; it < spec.steps; ++it) {
    const Tensor g = loss_input_grad(model, adv, labels, spec.margin);
    auto ad = adv.data();
    auto gd = g.data();
    for (std::size_t i = 0; i < ad.size(); ++i) {
      float v = ad[i] + step * sign_of(gd[i]);
      v = std::clamp(v, xd[i] - eps, xd[i] + eps);  // L-inf projection.
      ad[i] = std::clamp(v, lo, hi);
    }
  }
  return adv;
}

[[nodiscard]] AffineParams affine_of(const AttackSpec& spec) {
  AffineParams p;
  switch (spec.kind) {
    case AttackKind::kRotate:
      p.angle_deg = spec.severity;
      break;
    case AttackKind::kTranslate:
      p.dx = spec.severity;
      p.dy = spec.severity;
      break;
    case AttackKind::kScale:
      p.scale = spec.severity;
      break;
    default:
      break;
  }
  return p;
}

/// One "key=value" assignment from the spec grammar; rejects trailing junk.
[[nodiscard]] bool parse_number(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

[[nodiscard]] bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

const char* attack_kind_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kFgsm: return "fgsm";
    case AttackKind::kPgd: return "pgd";
    case AttackKind::kRotate: return "rotate";
    case AttackKind::kTranslate: return "translate";
    case AttackKind::kScale: return "scale";
  }
  return "unknown";
}

bool AttackSpec::is_identity() const {
  switch (kind) {
    case AttackKind::kNone: return true;
    case AttackKind::kFgsm:
    case AttackKind::kPgd: return epsilon == 0.0;
    case AttackKind::kRotate:
    case AttackKind::kTranslate: return severity == 0.0;
    case AttackKind::kScale: return severity == 1.0;
  }
  return false;
}

double AttackSpec::resolved_step() const {
  if (step_size > 0.0) return step_size;
  return 2.5 * epsilon / static_cast<double>(std::max(1, steps));
}

std::string AttackSpec::key() const {
  char buf[160];
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kFgsm:
      std::snprintf(buf, sizeof(buf), "fgsm:eps=%.17g", epsilon);
      break;
    case AttackKind::kPgd:
      std::snprintf(buf, sizeof(buf), "pgd:eps=%.17g,steps=%d,step=%.17g", epsilon,
                    steps, resolved_step());
      break;
    case AttackKind::kRotate:
      std::snprintf(buf, sizeof(buf), "rotate:deg=%.17g", severity);
      break;
    case AttackKind::kTranslate:
      std::snprintf(buf, sizeof(buf), "translate:px=%.17g", severity);
      break;
    case AttackKind::kScale:
      std::snprintf(buf, sizeof(buf), "scale:factor=%.17g", severity);
      break;
  }
  return buf;
}

AttackSpec AttackSpec::none() { return AttackSpec{}; }

AttackSpec AttackSpec::fgsm(double eps) {
  AttackSpec s;
  s.kind = AttackKind::kFgsm;
  s.epsilon = eps;
  return s;
}

AttackSpec AttackSpec::pgd(double eps, int steps, double step) {
  AttackSpec s;
  s.kind = AttackKind::kPgd;
  s.epsilon = eps;
  s.steps = steps;
  s.step_size = step;
  return s;
}

AttackSpec AttackSpec::rotate(double degrees) {
  AttackSpec s;
  s.kind = AttackKind::kRotate;
  s.severity = degrees;
  return s;
}

AttackSpec AttackSpec::translate(double pixels) {
  AttackSpec s;
  s.kind = AttackKind::kTranslate;
  s.severity = pixels;
  return s;
}

AttackSpec AttackSpec::scale(double factor) {
  AttackSpec s;
  s.kind = AttackKind::kScale;
  s.severity = factor;
  return s;
}

bool parse_attack_spec(const std::string& text, AttackSpec* out, std::string* error) {
  if (text.empty()) return fail(error, "empty attack spec");
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);
  AttackSpec spec;
  if (name == "none") {
    if (colon != std::string::npos) return fail(error, "'none' takes no parameters");
    *out = spec;
    return true;
  }
  if (name == "fgsm") {
    spec.kind = AttackKind::kFgsm;
  } else if (name == "pgd") {
    spec.kind = AttackKind::kPgd;
  } else if (name == "rotate") {
    spec.kind = AttackKind::kRotate;
  } else if (name == "translate") {
    spec.kind = AttackKind::kTranslate;
  } else if (name == "scale") {
    spec.kind = AttackKind::kScale;
  } else {
    return fail(error, "unknown attack kind '" + name + "'");
  }
  if (colon == std::string::npos || colon + 1 >= text.size()) {
    return fail(error, "attack '" + name + "' needs parameters, e.g. '" + name +
                           ":key=value'");
  }

  bool have_required = false;
  std::size_t at = colon + 1;
  while (at <= text.size()) {
    const std::size_t comma = text.find(',', at);
    const std::string item =
        text.substr(at, comma == std::string::npos ? std::string::npos : comma - at);
    at = comma == std::string::npos ? text.size() + 1 : comma + 1;

    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail(error, "malformed parameter '" + item + "' (expected key=value)");
    }
    const std::string kkey = item.substr(0, eq);
    double value = 0.0;
    if (!parse_number(item.substr(eq + 1), &value)) {
      return fail(error, "bad number in '" + item + "'");
    }

    if (spec.kind == AttackKind::kFgsm || spec.kind == AttackKind::kPgd) {
      if (kkey == "eps") {
        if (value <= 0.0) return fail(error, "eps must be > 0");
        spec.epsilon = value;
        have_required = true;
      } else if (kkey == "steps" && spec.kind == AttackKind::kPgd) {
        if (value < 1.0 || value != std::floor(value)) {
          return fail(error, "steps must be a positive integer");
        }
        spec.steps = static_cast<int>(value);
      } else if (kkey == "step" && spec.kind == AttackKind::kPgd) {
        if (value <= 0.0) return fail(error, "step must be > 0");
        spec.step_size = value;
      } else {
        return fail(error, "unknown parameter '" + kkey + "' for " + name);
      }
    } else if (spec.kind == AttackKind::kRotate && kkey == "deg") {
      spec.severity = value;
      have_required = true;
    } else if (spec.kind == AttackKind::kTranslate && kkey == "px") {
      spec.severity = value;
      have_required = true;
    } else if (spec.kind == AttackKind::kScale && kkey == "factor") {
      if (value <= 0.0) return fail(error, "factor must be > 0");
      spec.severity = value;
      have_required = true;
    } else {
      return fail(error, "unknown parameter '" + kkey + "' for " + name);
    }
  }
  if (!have_required) {
    return fail(error, "attack '" + name + "' is missing its required parameter");
  }
  *out = spec;
  return true;
}

Tensor loss_input_grad(capsnet::CapsModel& model, const Tensor& x,
                       std::span<const std::int64_t> labels,
                       const nn::MarginLossSpec& margin) {
  const Tensor v = model.forward(x, /*train=*/true, nullptr);
  const Tensor lengths = capsnet::CapsModel::class_lengths(v);
  const nn::LossResult lr =
      nn::margin_loss(lengths, {labels.begin(), labels.end()}, margin);
  const Tensor grad_v = capsnet::lengths_grad_to_v(v, lengths, lr.grad);
  return model.backward(grad_v);
}

Tensor apply_attack(capsnet::CapsModel& model, const Tensor& x,
                    std::span<const std::int64_t> labels, const AttackSpec& spec) {
  if (spec.is_identity()) return x;
  switch (spec.kind) {
    case AttackKind::kFgsm:
      return fgsm_batch(model, x, labels, spec);
    case AttackKind::kPgd:
      return pgd_batch(model, x, labels, spec);
    case AttackKind::kRotate:
    case AttackKind::kTranslate:
    case AttackKind::kScale:
      return affine_warp(x, affine_of(spec));
    case AttackKind::kNone:
      break;
  }
  return x;
}

AttackSpec Scenario::at(double severity) const {
  AttackSpec spec;
  switch (kind) {
    case AttackKind::kFgsm:
      spec = AttackSpec::fgsm(severity);
      break;
    case AttackKind::kPgd:
      spec = AttackSpec::pgd(severity, pgd_steps, pgd_step);
      break;
    case AttackKind::kRotate:
      spec = AttackSpec::rotate(severity);
      break;
    case AttackKind::kTranslate:
      spec = AttackSpec::translate(severity);
      break;
    case AttackKind::kScale:
      // Severity is the zoom delta so 0 = identity, matching the other axes.
      spec = AttackSpec::scale(1.0 + severity);
      break;
    case AttackKind::kNone:
      break;
  }
  spec.margin = margin;
  return spec;
}

}  // namespace redcane::attack
