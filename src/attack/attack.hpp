// Adversarial & affine attack generation — the input-perturbation seam of
// the Step-8 robustness scenarios (beyond the paper: RobCaps, Marchisio et
// al. 2023, and Gu et al. 2021 motivate crossing attack severity with the
// approximation-noise axis ReD-CaNe already sweeps).
//
// Gradient attacks reuse the training backward pass end to end: margin loss
// on class-capsule lengths, the shared capsnet::lengths_grad_to_v chain,
// then CapsModel::backward down to dL/dx. FGSM takes one signed step; PGD
// iterates projected signed steps inside the L-inf epsilon ball. Neither
// uses any RNG (PGD starts at the clean input, not a random point), so a
// perturbed batch is a pure function of (model weights, input, labels,
// spec) — bitwise reproducible across runs, thread counts, and SIMD
// dispatch targets.
//
// Thread-safety: gradient generation runs train-mode forwards, which mutate
// the model's layer caches. Generation is therefore NOT thread-safe against
// concurrent forwards on the same model — callers (SweepEngine, the serve
// attacked-eval mode) perturb serially on the coordinating thread before
// any worker touches the model. Train-mode forwards do not change weights
// (audited by capsnet::audit_const_forward), so previously recorded
// prefix-activation checkpoints stay valid.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attack/affine.hpp"
#include "capsnet/model.hpp"
#include "nn/loss.hpp"

namespace redcane::attack {

enum class AttackKind : std::uint8_t {
  kNone = 0,
  kFgsm,       ///< One-step L-inf fast gradient sign method.
  kPgd,        ///< Iterated projected gradient descent (L-inf ball).
  kRotate,     ///< Affine rotation; severity = degrees.
  kTranslate,  ///< Affine translation; severity = pixels along both axes.
  kScale,      ///< Affine zoom; severity = scale factor (1 = identity).
};

[[nodiscard]] const char* attack_kind_name(AttackKind kind);

/// A fully resolved perturbation. `severity` carries the transform
/// magnitude for the affine kinds (see AttackKind); gradient kinds use
/// `epsilon`/`steps`/`step_size`.
struct AttackSpec {
  AttackKind kind = AttackKind::kNone;
  double epsilon = 0.0;    ///< L-inf budget (gradient kinds).
  int steps = 10;          ///< PGD iterations.
  double step_size = 0.0;  ///< PGD step; 0 resolves to 2.5*epsilon/steps.
  double severity = 0.0;   ///< Affine magnitude (see AttackKind).
  double clip_min = 0.0;   ///< Valid input range (pixel domain).
  double clip_max = 1.0;
  nn::MarginLossSpec margin;  ///< Loss the gradient attacks ascend.

  [[nodiscard]] bool is_gradient() const {
    return kind == AttackKind::kFgsm || kind == AttackKind::kPgd;
  }
  /// True when applying this spec is guaranteed to be a bitwise no-op.
  [[nodiscard]] bool is_identity() const;
  /// Resolved PGD step size (applies the 2.5*eps/steps default).
  [[nodiscard]] double resolved_step() const;
  /// Canonical cache key: equal keys => bitwise-equal perturbed batches.
  [[nodiscard]] std::string key() const;

  [[nodiscard]] static AttackSpec none();
  [[nodiscard]] static AttackSpec fgsm(double eps);
  [[nodiscard]] static AttackSpec pgd(double eps, int steps = 10, double step = 0.0);
  [[nodiscard]] static AttackSpec rotate(double degrees);
  [[nodiscard]] static AttackSpec translate(double pixels);
  [[nodiscard]] static AttackSpec scale(double factor);
};

/// Parses the textual spec grammar used by CLI flags and the serve attacked
/// mode: "none", "fgsm:eps=0.1", "pgd:eps=0.1,steps=5,step=0.02",
/// "rotate:deg=15", "translate:px=2", "scale:factor=1.2". Returns false and
/// fills `error` on malformed input (unknown kind/key, bad number, missing
/// required key, out-of-range value); never aborts.
[[nodiscard]] bool parse_attack_spec(const std::string& text, AttackSpec* out,
                                     std::string* error);

/// dL/dx of the margin loss at (x, labels): train-mode forward, margin loss
/// on class-capsule lengths, lengths_grad_to_v, model.backward. NOT
/// thread-safe (see file header).
[[nodiscard]] Tensor loss_input_grad(capsnet::CapsModel& model, const Tensor& x,
                                     std::span<const std::int64_t> labels,
                                     const nn::MarginLossSpec& margin);

/// Applies `spec` to a [N, H, W, C] batch. Identity specs return a bitwise
/// copy. Gradient kinds need one label per row; affine kinds ignore labels.
[[nodiscard]] Tensor apply_attack(capsnet::CapsModel& model, const Tensor& x,
                                  std::span<const std::int64_t> labels,
                                  const AttackSpec& spec);

/// A severity axis over one attack kind — the row dimension of a Step-8
/// robustness grid. `at(severity)` materializes the spec for one row.
struct Scenario {
  AttackKind kind = AttackKind::kFgsm;
  std::vector<double> severities;
  int pgd_steps = 7;         ///< PGD only.
  double pgd_step = 0.0;     ///< PGD only; 0 = default rule.
  nn::MarginLossSpec margin; ///< Gradient kinds only.

  /// Spec for one severity. For gradient kinds severity is epsilon; for
  /// kScale severity is the zoom delta (factor = 1 + severity) so that
  /// severity 0 means identity on every axis.
  [[nodiscard]] AttackSpec at(double severity) const;
  [[nodiscard]] std::string name() const { return attack_kind_name(kind); }
};

}  // namespace redcane::attack
