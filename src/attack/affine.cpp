#include "attack/affine.hpp"

#include <cmath>
#include <cstdint>

namespace redcane::attack {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

AffineParams AffineParams::inverse() const {
  // Forward map on centered coordinates: T(v) = s·R(a)·v + t. Therefore
  // T⁻¹(u) = (1/s)·R(-a)·(u - t): rotate by -a, scale by 1/s, translate by
  // -(1/s)·R(-a)·t.
  const double rad = angle_deg * kPi / 180.0;
  const double ca = std::cos(rad);
  const double sa = std::sin(rad);
  AffineParams inv;
  inv.angle_deg = -angle_deg;
  inv.scale = 1.0 / scale;
  // R(-a) = [[cos a, sin a], [-sin a, cos a]] acting on (x, y).
  inv.dx = -(ca * dx + sa * dy) * inv.scale;
  inv.dy = -(-sa * dx + ca * dy) * inv.scale;
  return inv;
}

Tensor affine_warp(const Tensor& x, const AffineParams& p) {
  if (p.is_identity()) {
    return x;  // Bitwise no-op: the identity transform must not resample.
  }
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t w = x.shape().dim(2);
  const std::int64_t c = x.shape().dim(3);

  const double rad = p.angle_deg * kPi / 180.0;
  const double ca = std::cos(rad);
  const double sa = std::sin(rad);
  const double inv_s = 1.0 / p.scale;
  const double cx = static_cast<double>(w - 1) * 0.5;
  const double cy = static_cast<double>(h - 1) * 0.5;

  Tensor out(x.shape());
  const float* src = x.data().data();
  float* dst = out.data().data();
  const std::int64_t row_stride = w * c;
  const std::int64_t img_stride = h * row_stride;

  for (std::int64_t img = 0; img < n; ++img) {
    const float* sp = src + img * img_stride;
    float* dp = dst + img * img_stride;
    for (std::int64_t r = 0; r < h; ++r) {
      for (std::int64_t col = 0; col < w; ++col) {
        // Destination pixel -> centered coords, then through T⁻¹.
        const double ux = (static_cast<double>(col) - cx) - p.dx;
        const double uy = (static_cast<double>(r) - cy) - p.dy;
        const double sx = (ca * ux + sa * uy) * inv_s + cx;
        const double sy = (-sa * ux + ca * uy) * inv_s + cy;

        const double fx = std::floor(sx);
        const double fy = std::floor(sy);
        const std::int64_t x0 = static_cast<std::int64_t>(fx);
        const std::int64_t y0 = static_cast<std::int64_t>(fy);
        const double wx = sx - fx;
        const double wy = sy - fy;
        const double w00 = (1.0 - wx) * (1.0 - wy);
        const double w01 = wx * (1.0 - wy);
        const double w10 = (1.0 - wx) * wy;
        const double w11 = wx * wy;
        const bool in_x0 = x0 >= 0 && x0 < w;
        const bool in_x1 = x0 + 1 >= 0 && x0 + 1 < w;
        const bool in_y0 = y0 >= 0 && y0 < h;
        const bool in_y1 = y0 + 1 >= 0 && y0 + 1 < h;

        float* out_px = dp + r * row_stride + col * c;
        for (std::int64_t ch = 0; ch < c; ++ch) {
          double acc = 0.0;
          if (in_y0 && in_x0) acc += w00 * sp[y0 * row_stride + x0 * c + ch];
          if (in_y0 && in_x1) acc += w01 * sp[y0 * row_stride + (x0 + 1) * c + ch];
          if (in_y1 && in_x0) acc += w10 * sp[(y0 + 1) * row_stride + x0 * c + ch];
          if (in_y1 && in_x1) acc += w11 * sp[(y0 + 1) * row_stride + (x0 + 1) * c + ch];
          out_px[ch] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

}  // namespace redcane::attack
