#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <utility>

namespace redcane::obs {
namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_next_corr{1};

const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

constexpr std::size_t kRingCapacity = 4096;  // Power of two.
constexpr std::size_t kRingMask = kRingCapacity - 1;

// One event slot. Every field is a relaxed atomic; `seq` is the seqlock
// generation tag: 0 while a write is in progress, generation+1 once the
// slot is published. A drain that observes any other value discards the
// slot instead of reading torn data.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> ts_us{0};
  std::atomic<std::uint64_t> dur_us{0};
  std::atomic<std::uint64_t> corr{0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint32_t> pid{0};
};

// Single-writer ring: only the owning thread advances `head`; any thread
// may drain. Rings are heap-allocated, registered once, and never freed,
// so a drain can walk them after the owning thread exits.
struct Ring {
  Slot slots[kRingCapacity];
  std::atomic<std::uint64_t> head{0};     ///< Next generation to write.
  std::atomic<std::uint64_t> drained{0};  ///< Drain cursor.
  std::atomic<std::uint64_t> dropped{0};  ///< Overwritten-undrained count.
  std::uint32_t tid = 0;

  void emit(const char* name, std::uint64_t ts, std::uint64_t dur,
            std::uint64_t corr, std::uint32_t event_tid,
            std::uint32_t pid) noexcept {
    const std::uint64_t g = head.load(std::memory_order_relaxed);
    Slot& s = slots[g & kRingMask];
    s.seq.store(0, std::memory_order_relaxed);
    // Publish the in-progress marker before any field overwrite, so a
    // concurrent drain reading new field bytes must also see seq != old.
    std::atomic_thread_fence(std::memory_order_release);
    s.name.store(name, std::memory_order_relaxed);
    s.ts_us.store(ts, std::memory_order_relaxed);
    s.dur_us.store(dur, std::memory_order_relaxed);
    s.corr.store(corr, std::memory_order_relaxed);
    s.tid.store(event_tid, std::memory_order_relaxed);
    s.pid.store(pid, std::memory_order_relaxed);
    s.seq.store(g + 1, std::memory_order_release);
    head.store(g + 1, std::memory_order_release);
    if (g >= drained.load(std::memory_order_relaxed) + kRingCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

struct Global {
  std::mutex mu;
  std::vector<Ring*> rings;  // Leaked: valid past owning-thread exit.
  std::vector<std::pair<std::uint32_t, std::string>> process_names;
  std::set<std::string> interned;
  std::uint32_t next_tid = 1;
};

Global& global() {
  static Global* g = new Global();  // Intentionally leaked.
  return *g;
}

thread_local Ring* t_ring = nullptr;

Ring& ring() {
  if (t_ring == nullptr) {
    Ring* r = new Ring();  // Leaked via the global list.
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    r->tid = g.next_tid++;
    g.rings.push_back(r);
    t_ring = r;
  }
  return *t_ring;
}

void drain_ring(Ring& r, std::vector<TraceEvent>& out) {
  const std::uint64_t h = r.head.load(std::memory_order_acquire);
  std::uint64_t start = r.drained.load(std::memory_order_relaxed);
  if (h > kRingCapacity && start < h - kRingCapacity) {
    start = h - kRingCapacity;
  }
  for (std::uint64_t g = start; g < h; ++g) {
    Slot& s = r.slots[g & kRingMask];
    if (s.seq.load(std::memory_order_acquire) != g + 1) continue;
    TraceEvent e;
    e.name = s.name.load(std::memory_order_relaxed);
    e.ts_us = s.ts_us.load(std::memory_order_relaxed);
    e.dur_us = s.dur_us.load(std::memory_order_relaxed);
    e.corr = s.corr.load(std::memory_order_relaxed);
    e.tid = s.tid.load(std::memory_order_relaxed);
    e.pid = s.pid.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != g + 1) continue;  // Torn.
    out.push_back(e);
  }
  r.drained.store(h, std::memory_order_relaxed);
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

}  // namespace

bool trace_armed() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

void trace_arm(bool on) noexcept {
  g_armed.store(on, std::memory_order_relaxed);
}

std::uint64_t trace_now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

std::uint64_t next_correlation_id() noexcept {
  return g_next_corr.fetch_add(1, std::memory_order_relaxed);
}

const char* trace_intern(const std::string& name) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.interned.insert(name).first->c_str();
}

void trace_emit(const char* name, std::uint64_t ts_us, std::uint64_t dur_us,
                std::uint64_t corr) noexcept {
  Ring& r = ring();
  r.emit(name, ts_us, dur_us, corr, r.tid, /*pid=*/0);
}

void trace_emit_remote(std::uint32_t pid, std::uint32_t tid, const char* name,
                       std::uint64_t ts_us, std::uint64_t dur_us,
                       std::uint64_t corr) noexcept {
  ring().emit(name, ts_us, dur_us, corr, tid, pid);
}

void trace_set_process_name(std::uint32_t pid, const std::string& name) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  for (auto& [id, n] : g.process_names) {
    if (id == pid) {
      n = name;
      return;
    }
  }
  g.process_names.emplace_back(pid, name);
}

std::vector<TraceEvent> trace_drain() {
  std::vector<Ring*> rings;
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    rings = g.rings;
  }
  std::vector<TraceEvent> out;
  for (Ring* r : rings) drain_ring(*r, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;  // Parents before children.
                   });
  return out;
}

std::uint64_t trace_dropped() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  std::uint64_t total = 0;
  for (const Ring* r : g.rings) {
    total += r->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t trace_buffered() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  std::uint64_t total = 0;
  for (const Ring* r : g.rings) {
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    std::uint64_t d = r->drained.load(std::memory_order_relaxed);
    if (h > kRingCapacity && d < h - kRingCapacity) d = h - kRingCapacity;
    total += h - d;
  }
  return total;
}

bool trace_write_chrome(const std::string& path) {
  const std::vector<TraceEvent> events = trace_drain();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace file %s\n", path.c_str());
    return false;
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    std::vector<std::pair<std::uint32_t, std::string>> names =
        g.process_names;
    bool has_self = false;
    for (const auto& [pid, _] : names) has_self |= (pid == 0);
    if (!has_self) names.emplace_back(0, "redcane");
    for (const auto& [pid, pname] : names) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":0,\"args\":{\"name\":\"";
      json_escape_into(out, pname.c_str());
      out += "\"}}";
    }
  }
  char buf[160];
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape_into(out, e.name != nullptr ? e.name : "?");
    std::snprintf(buf, sizeof buf,
                  "\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%llu,"
                  "\"dur\":%llu",
                  e.pid, e.tid, static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned long long>(e.dur_us));
    out += buf;
    if (e.corr != 0) {
      std::snprintf(buf, sizeof buf, ",\"args\":{\"corr\":%llu}",
                    static_cast<unsigned long long>(e.corr));
      out += buf;
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return true;
}

void trace_reset_for_test() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  for (Ring* r : g.rings) {
    r->drained.store(r->head.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
  }
  g.process_names.clear();
}

namespace {

void trace_atexit() {
  const char* path = std::getenv("REDCANE_TRACE");
  if (path != nullptr && path[0] != '\0') trace_write_chrome(path);
}

}  // namespace

void trace_env_arm() {
  static bool armed = [] {
    const char* path = std::getenv("REDCANE_TRACE");
    if (path != nullptr && path[0] != '\0') {
      trace_arm(true);
      std::atexit(trace_atexit);
    }
    return true;
  }();
  (void)armed;
}

namespace {
// Library-level arm: any binary linking obs honors REDCANE_TRACE
// without per-main wiring.
const bool g_env_arm = (trace_env_arm(), true);
}  // namespace

}  // namespace redcane::obs
