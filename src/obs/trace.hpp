// Lock-free tracing: per-thread ring buffers of span events drained on
// demand into chrome://tracing JSON.
//
// Contracts (docs/architecture.md "Observability"):
//  - Disarmed cost is ONE relaxed atomic load (`trace_armed()`); the
//    OBS_SPAN macro reads it once at scope entry and does nothing else.
//  - Armed emission takes no lock, performs no allocation once the
//    calling thread's ring exists (first emit per thread allocates it),
//    and draws no randomness — correlation ids come from a relaxed
//    atomic counter, so arming tracing can never perturb the repo's
//    bit-identity contracts.
//  - Span names must be string literals (or interned via
//    `trace_intern`); the ring stores the pointer, not a copy.
//  - Rings hold the newest `kRingCapacity` events per thread; overwrite
//    of an undrained slot bumps that ring's drop counter. Slots are
//    seqlock-published (all fields are relaxed atomics, generation tag
//    released last) so a concurrent drain discards torn entries instead
//    of racing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace redcane::obs {

/// True when tracing is armed. One relaxed load; safe on any hot path.
[[nodiscard]] bool trace_armed() noexcept;
void trace_arm(bool on) noexcept;

/// Microseconds on the process-wide steady-clock trace epoch.
[[nodiscard]] std::uint64_t trace_now_us() noexcept;

/// Fresh nonzero correlation id (relaxed atomic counter, no RNG).
[[nodiscard]] std::uint64_t next_correlation_id() noexcept;

/// Interns a dynamic name into process-lifetime storage so the returned
/// pointer may be stored in ring slots. Takes a mutex — not a hot path.
[[nodiscard]] const char* trace_intern(const std::string& name);

/// One drained span, in trace-epoch microseconds. `pid` 0 is this
/// process; nonzero pids are synthesized remote processes (dist workers)
/// whose spans were reconstructed from wire payloads.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t corr = 0;
  std::uint32_t tid = 0;
  std::uint32_t pid = 0;
};

/// Emits one complete span into the calling thread's ring. Callers
/// normally use OBS_SPAN / SpanScope instead.
void trace_emit(const char* name, std::uint64_t ts_us, std::uint64_t dur_us,
                std::uint64_t corr = 0) noexcept;

/// Emits a span attributed to a remote process (`pid` > 0), e.g. a dist
/// worker span reconstructed from a Result payload. `tid` is the remote
/// thread line it renders on.
void trace_emit_remote(std::uint32_t pid, std::uint32_t tid, const char* name,
                       std::uint64_t ts_us, std::uint64_t dur_us,
                       std::uint64_t corr) noexcept;

/// Names a synthesized remote process in the trace output
/// (chrome://tracing process_name metadata). Not a hot path.
void trace_set_process_name(std::uint32_t pid, const std::string& name);

/// Drains every thread's ring (newest kRingCapacity events each, oldest
/// dropped) into one list sorted by timestamp. Torn slots under
/// concurrent emission are skipped, never misread.
[[nodiscard]] std::vector<TraceEvent> trace_drain();

/// Total events dropped to ring wraparound across all rings.
[[nodiscard]] std::uint64_t trace_dropped();

/// Events currently buffered across all rings (undrained, undropped).
[[nodiscard]] std::uint64_t trace_buffered();

/// Drains and writes chrome://tracing JSON (`{"traceEvents":[...]}`).
/// Returns false (with a warning) when the file cannot be opened.
bool trace_write_chrome(const std::string& path);

/// Resets drain cursors and drop counters (tests only; events already
/// buffered are discarded).
void trace_reset_for_test();

/// Arms `REDCANE_TRACE=PATH`: tracing on now, chrome JSON written to
/// PATH at process exit. Called from a static initializer; idempotent.
void trace_env_arm();

/// RAII span. Reads `trace_armed()` once at entry; a disarmed scope is
/// a bool + branch.
class SpanScope {
 public:
  explicit SpanScope(const char* name, std::uint64_t corr = 0) noexcept
      : armed_(trace_armed()) {
    if (armed_) {
      name_ = name;
      corr_ = corr;
      t0_ = trace_now_us();
    }
  }
  ~SpanScope() {
    if (armed_) trace_emit(name_, t0_, trace_now_us() - t0_, corr_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  bool armed_;
  const char* name_ = nullptr;
  std::uint64_t corr_ = 0;
  std::uint64_t t0_ = 0;
};

#define REDCANE_OBS_CONCAT2(a, b) a##b
#define REDCANE_OBS_CONCAT(a, b) REDCANE_OBS_CONCAT2(a, b)
/// Traces the enclosing scope under `name` (a string literal).
#define OBS_SPAN(name) \
  ::redcane::obs::SpanScope REDCANE_OBS_CONCAT(obs_span_, __LINE__)(name)
/// Same, tagged with a u64 correlation id linking related spans.
#define OBS_SPAN_ID(name, corr) \
  ::redcane::obs::SpanScope REDCANE_OBS_CONCAT(obs_span_, __LINE__)(name, corr)

}  // namespace redcane::obs
