#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace redcane::obs {
namespace {

// Registered metrics live in leaked maps so references handed to hot
// paths stay valid through static destruction order and thread exit.
struct RegistryState {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, std::function<bool(const Snapshot&)>> checks;
};

RegistryState& state() {
  static RegistryState* s = new RegistryState();  // Intentionally leaked.
  return *s;
}

void atomic_double_add(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_double_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // Sub-unit and non-finite-negative inputs.
  int oct = static_cast<int>(std::floor(std::log2(v)));
  // Guard the octave against log2 rounding at exact powers of two.
  if (std::ldexp(1.0, oct + 1) <= v) ++oct;
  if (std::ldexp(1.0, oct) > v) --oct;
  if (oct < 0) return 0;
  if (oct >= kOctaves) return kBuckets - 1;
  const double lower = std::ldexp(1.0, oct);
  const double width = lower / kSubBuckets;
  int sub = static_cast<int>((v - lower) / width);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + oct * kSubBuckets + sub;
}

double Histogram::bucket_upper(int idx) noexcept {
  if (idx <= 0) return 1.0;
  const int oct = (idx - 1) / kSubBuckets;
  const int sub = (idx - 1) % kSubBuckets;
  const double lower = std::ldexp(1.0, oct);
  return lower + lower / kSubBuckets * (sub + 1);
}

void Histogram::observe(double v) noexcept {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_double_add(sum_, v);
  atomic_double_max(max_, v);
}

double Histogram::percentile(double p) const noexcept {
  const std::int64_t n = count();
  if (n <= 0) return 0.0;
  std::int64_t rank =
      static_cast<std::int64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) {
      const double upper = bucket_upper(i);
      const double mx = max();
      return upper < mx ? upper : mx;
    }
  }
  return max();
}

std::int64_t Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.gauges.count(name) != 0 || s.histograms.count(name) != 0) {
    std::fprintf(stderr, "obs: metric '%s' registered as two kinds\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Counter>& slot = s.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.counters.count(name) != 0 || s.histograms.count(name) != 0) {
    std::fprintf(stderr, "obs: metric '%s' registered as two kinds\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Gauge>& slot = s.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.counters.count(name) != 0 || s.gauges.count(name) != 0) {
    std::fprintf(stderr, "obs: metric '%s' registered as two kinds\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Histogram>& slot = s.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::add_check(const std::string& name,
                         std::function<bool(const Snapshot&)> fn) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.checks[name] = std::move(fn);
}

Snapshot Registry::snapshot() const {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  Snapshot snap;
  for (const auto& [name, c] : s.counters) snap.counters[name] = c->value();
  for (const auto& [name, g] : s.gauges) snap.gauges[name] = g->value();
  for (const auto& [name, h] : s.histograms) {
    Snapshot::HistogramSummary hs;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.max = h->max();
    hs.p50 = h->percentile(50.0);
    hs.p99 = h->percentile(99.0);
    hs.p999 = h->percentile(99.9);
    snap.histograms[name] = hs;
  }
  return snap;
}

std::vector<CheckResult> Registry::run_checks() const {
  const Snapshot snap = snapshot();
  RegistryState& s = state();
  std::vector<CheckResult> out;
  std::lock_guard<std::mutex> lock(s.mu);
  out.reserve(s.checks.size());
  for (const auto& [name, fn] : s.checks) out.push_back({name, fn(snap)});
  return out;
}

std::string Registry::exposition() const {
  const Snapshot snap = snapshot();
  std::string out;
  char line[256];
  for (const auto& [name, v] : snap.counters) {
    std::snprintf(line, sizeof line, "%s %lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += line;
  }
  for (const auto& [name, v] : snap.gauges) {
    std::snprintf(line, sizeof line, "%s %.6g\n", name.c_str(), v);
    out += line;
  }
  for (const auto& [name, h] : snap.histograms) {
    std::snprintf(line, sizeof line, "%s_count %lld\n", name.c_str(),
                  static_cast<long long>(h.count));
    out += line;
    std::snprintf(line, sizeof line, "%s_sum %.6g\n", name.c_str(), h.sum);
    out += line;
    std::snprintf(line, sizeof line, "%s{q=\"p50\"} %.6g\n", name.c_str(),
                  h.p50);
    out += line;
    std::snprintf(line, sizeof line, "%s{q=\"p99\"} %.6g\n", name.c_str(),
                  h.p99);
    out += line;
    std::snprintf(line, sizeof line, "%s{q=\"p99.9\"} %.6g\n", name.c_str(),
                  h.p999);
    out += line;
    std::snprintf(line, sizeof line, "%s{q=\"max\"} %.6g\n", name.c_str(),
                  h.max);
    out += line;
  }
  for (const CheckResult& c : run_checks()) {
    std::snprintf(line, sizeof line, "# check %s %s\n", c.name.c_str(),
                  c.ok ? "ok" : "FAIL");
    out += line;
  }
  return out;
}

bool Registry::write_text(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open metrics file %s\n", path.c_str());
    return false;
  }
  const std::string text = exposition();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

namespace {

void metrics_atexit() {
  const char* path = std::getenv("REDCANE_METRICS");
  if (path != nullptr && path[0] != '\0') {
    Registry::instance().write_text(path);
  }
}

}  // namespace

void metrics_env_arm() {
  static bool armed = [] {
    const char* path = std::getenv("REDCANE_METRICS");
    if (path != nullptr && path[0] != '\0') std::atexit(metrics_atexit);
    return true;
  }();
  (void)armed;
}

namespace {
// Library-level arm: any binary linking obs honors REDCANE_METRICS
// without per-main wiring.
const bool g_env_arm = (metrics_env_arm(), true);
}  // namespace

}  // namespace redcane::obs
