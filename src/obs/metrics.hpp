// Process-wide metrics registry: named counters, gauges, and log-linear
// latency histograms shared by the serving path, the sweep engine, the
// quantization caches, and the dist coordinator/workers.
//
// Design contract (docs/architecture.md "Observability"):
//  - Hot-path cost is one relaxed atomic RMW per increment. Callers
//    resolve `Counter&`/`Histogram&` once (registration takes a mutex)
//    and then touch only the atomic.
//  - Instances registered under a name are never deallocated for the
//    process lifetime, so cached references stay valid across threads.
//  - Metric names are `snake_case` with a subsystem prefix
//    (`serve_`, `sweep_`, `lut_`, `dist_`) and a `_total` suffix for
//    monotonic counters, mirroring Prometheus conventions. Labels are
//    baked into the name at registration (`name{label="v"}`).
//  - Conservation laws (`ServerStats::reconciles()` and friends) are
//    registered as named checks and evaluated at quiescent points; they
//    are assertions over a snapshot, never over live racing counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace redcane::obs {

/// Monotonic counter. `add` is a single relaxed fetch_add.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins gauge (queue depth, worker count, pressure flag).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-linear histogram ("HDR-lite"): each power-of-two octave of the
/// value range is split into `kSubBuckets` equal-width buckets, giving a
/// bounded relative error of 1/kSubBuckets per observation while keeping
/// `observe` to two relaxed RMWs. Values below 1.0 share bucket 0.
///
/// `percentile(p)` is nearest-rank over bucket counts: it returns the
/// upper bound of the bucket holding the rank-`ceil(p/100 * count)`
/// observation, clamped to the true observed maximum so p100 (and any
/// percentile landing in the top occupied bucket) is exact.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kOctaves = 40;  ///< covers values up to 2^40.
  static constexpr int kBuckets = 1 + kOctaves * kSubBuckets;

  void observe(double v) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  /// Nearest-rank percentile; 0.0 when empty. `p` in [0, 100].
  [[nodiscard]] double percentile(double p) const noexcept;

  /// Bucket index an observation of `v` lands in (exposed for tests).
  [[nodiscard]] static int bucket_index(double v) noexcept;
  /// Inclusive upper bound of bucket `idx` (exposed for tests).
  [[nodiscard]] static double bucket_upper(int idx) noexcept;
  [[nodiscard]] std::int64_t bucket_count(int idx) const noexcept {
    return buckets_[static_cast<std::size_t>(idx)].load(
        std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> buckets_[kBuckets]{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// One consistent read of every registered metric. Histograms are
/// summarized (count/sum/max + fixed quantiles) rather than copied
/// bucket-by-bucket.
struct Snapshot {
  struct HistogramSummary {
    std::int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Counter value by name; 0 when absent (laws sum missing terms as 0).
  [[nodiscard]] std::int64_t counter(const std::string& name) const;
};

/// Result of one registered conservation check.
struct CheckResult {
  std::string name;
  bool ok = false;
};

/// Process-wide registry. `instance()` is the only way to get one.
class Registry {
 public:
  static Registry& instance();

  /// Returns the metric registered under `name`, creating it on first
  /// use. The reference is valid for the process lifetime. Registering
  /// the same name as two different metric kinds aborts (programmer
  /// error, caught in tests).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Registers a named conservation law over a snapshot. Re-registering
  /// under the same name replaces the previous law (serving instances
  /// come and go; the law text stays).
  void add_check(const std::string& name,
                 std::function<bool(const Snapshot&)> fn);

  [[nodiscard]] Snapshot snapshot() const;
  /// Evaluates every registered check against one snapshot.
  [[nodiscard]] std::vector<CheckResult> run_checks() const;

  /// Prometheus-style text exposition: `name value` lines, histogram
  /// quantiles as `name{q="p50"} value`, plus `# check <name> ok|FAIL`
  /// trailer lines from `run_checks()`.
  [[nodiscard]] std::string exposition() const;
  /// Writes `exposition()` to `path`; false (with a warning) on failure.
  bool write_text(const std::string& path) const;

 private:
  Registry() = default;
};

/// Arms `REDCANE_METRICS=PATH`: when set, the registry's exposition is
/// written to PATH at process exit. Called from the library's own static
/// initializer; safe to call again (idempotent).
void metrics_env_arm();

}  // namespace redcane::obs
