// Deterministic synthetic dataset generators (MNIST / Fashion-MNIST /
// CIFAR-10 / SVHN stand-ins).
//
// Each class owns a prototype image built from seeded random strokes
// (digit-like kinds) or texture patches (object-like kinds). A sample is
// its class prototype under a random integer shift, amplitude jitter and
// iid pixel noise — enough intra-class variation that a classifier must
// generalize, while prototypes stay separable so small CapsNets reach high
// accuracy quickly.
#pragma once

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace redcane::data {

enum class DatasetKind : std::uint8_t {
  kMnist,         ///< Grayscale stroke digits, clean background.
  kFashionMnist,  ///< Grayscale textured garment-like silhouettes.
  kCifar10,       ///< RGB textured object blobs.
  kSvhn,          ///< RGB stroke digits over colored background clutter.
};

[[nodiscard]] const char* dataset_kind_name(DatasetKind kind);

struct SyntheticSpec {
  DatasetKind kind = DatasetKind::kMnist;
  std::int64_t hw = 28;        ///< Square image extent.
  std::int64_t channels = 1;   ///< 1 or 3.
  std::int64_t classes = 10;
  std::int64_t train_count = 2000;
  std::int64_t test_count = 400;
  std::uint64_t seed = 1234;
  double pixel_noise = 0.06;   ///< Iid Gaussian pixel noise std.
  double amplitude_jitter = 0.15;
  int max_shift = 2;           ///< Uniform integer translation in [-s, s].
};

/// Generates the dataset described by `spec`. Deterministic in `spec`.
[[nodiscard]] Dataset make_synthetic(const SyntheticSpec& spec);

/// Paper-benchmark shortcuts with shapes matching the real datasets
/// (28x28x1 for the MNIST family, 32x32x3 for CIFAR-10/SVHN). `hw`
/// overrides the extent for tiny-profile models; counts size the splits.
[[nodiscard]] Dataset make_benchmark(DatasetKind kind, std::int64_t hw,
                                     std::int64_t train_count, std::int64_t test_count,
                                     std::uint64_t seed = 1234);

}  // namespace redcane::data
