// Labeled image datasets.
//
// The paper evaluates on MNIST, Fashion-MNIST, CIFAR-10 and SVHN. Those
// archives are not available offline, so src/data generates deterministic
// synthetic stand-ins with the same tensor shapes, class counts and a
// learnable class structure (DESIGN.md §4): per-class stroke/texture
// prototypes plus shift/amplitude/pixel-noise augmentation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace redcane::data {

struct Dataset {
  std::string name;  ///< e.g. "CIFAR-10(synthetic)".
  Tensor train_x;    ///< [N, H, W, C] in [0, 1].
  std::vector<std::int64_t> train_y;
  Tensor test_x;
  std::vector<std::int64_t> test_y;

  [[nodiscard]] std::int64_t num_classes() const;
  [[nodiscard]] std::string summary() const;
};

}  // namespace redcane::data
