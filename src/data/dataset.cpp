#include "data/dataset.hpp"

#include <algorithm>

namespace redcane::data {

std::int64_t Dataset::num_classes() const {
  std::int64_t mx = -1;
  for (std::int64_t y : train_y) mx = std::max(mx, y);
  for (std::int64_t y : test_y) mx = std::max(mx, y);
  return mx + 1;
}

std::string Dataset::summary() const {
  return name + ": train " + train_x.shape().to_string() + ", test " +
         test_x.shape().to_string() + ", " + std::to_string(num_classes()) + " classes";
}

}  // namespace redcane::data
