#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace redcane::data {
namespace {

/// One class prototype: [hw, hw, channels] in [0, 1].
class Prototype {
 public:
  Prototype(const SyntheticSpec& spec, std::int64_t cls) : hw_(spec.hw), c_(spec.channels) {
    img_.assign(static_cast<std::size_t>(hw_ * hw_ * c_), 0.0F);
    // Class-seeded generator: the prototype is a pure function of
    // (seed, kind, class), independent of sample order.
    Rng rng(spec.seed * 1000003ULL + static_cast<std::uint64_t>(cls) * 7919ULL +
            static_cast<std::uint64_t>(spec.kind));
    switch (spec.kind) {
      case DatasetKind::kMnist:
        paint_strokes(rng, /*strokes=*/4 + static_cast<int>(cls % 3), /*bg=*/0.0);
        break;
      case DatasetKind::kFashionMnist:
        paint_silhouette(rng);
        break;
      case DatasetKind::kCifar10:
        paint_textured_blobs(rng, /*blobs=*/3 + static_cast<int>(cls % 3));
        break;
      case DatasetKind::kSvhn:
        paint_background(rng);
        paint_strokes(rng, 4 + static_cast<int>(cls % 3), /*bg=*/-1.0);
        break;
    }
  }

  [[nodiscard]] float at(std::int64_t y, std::int64_t x, std::int64_t ch) const {
    return img_[static_cast<std::size_t>((y * hw_ + x) * c_ + ch)];
  }

 private:
  void set(std::int64_t y, std::int64_t x, std::int64_t ch, float v) {
    if (y < 0 || y >= hw_ || x < 0 || x >= hw_) return;
    auto& p = img_[static_cast<std::size_t>((y * hw_ + x) * c_ + ch)];
    p = std::clamp(v, 0.0F, 1.0F);
  }

  void stamp(std::int64_t y, std::int64_t x, std::span<const float> color, float alpha) {
    for (std::int64_t ch = 0; ch < c_; ++ch) {
      const float base = (y >= 0 && y < hw_ && x >= 0 && x < hw_)
                             ? img_[static_cast<std::size_t>((y * hw_ + x) * c_ + ch)]
                             : 0.0F;
      set(y, x, ch, base + alpha * color[static_cast<std::size_t>(ch % 3)]);
    }
  }

  std::vector<float> random_color(Rng& rng) const {
    std::vector<float> color(3);
    for (float& v : color) v = static_cast<float>(rng.uniform(0.55, 1.0));
    if (c_ == 1) color[1] = color[2] = color[0];
    return color;
  }

  /// Thick line segments emulating pen strokes. bg >= 0 clears to bg first.
  void paint_strokes(Rng& rng, int strokes, double bg) {
    if (bg >= 0.0) {
      std::fill(img_.begin(), img_.end(), static_cast<float>(bg));
    }
    const std::vector<float> color = random_color(rng);
    for (int s = 0; s < strokes; ++s) {
      double y = rng.uniform(0.15, 0.85) * static_cast<double>(hw_);
      double x = rng.uniform(0.15, 0.85) * static_cast<double>(hw_);
      double angle = rng.uniform(0.0, 2.0 * M_PI);
      const double curvature = rng.uniform(-0.25, 0.25);
      const int steps = static_cast<int>(rng.uniform(0.4, 0.9) * static_cast<double>(hw_));
      for (int t = 0; t < steps; ++t) {
        const auto iy = static_cast<std::int64_t>(y);
        const auto ix = static_cast<std::int64_t>(x);
        for (std::int64_t dy = 0; dy <= 1; ++dy) {
          for (std::int64_t dx = 0; dx <= 1; ++dx) stamp(iy + dy, ix + dx, color, 1.0F);
        }
        y += std::sin(angle);
        x += std::cos(angle);
        angle += curvature;
      }
    }
  }

  /// Filled garment-like region with horizontal texture bands.
  void paint_silhouette(Rng& rng) {
    const std::vector<float> color = random_color(rng);
    const double cy = rng.uniform(0.35, 0.65) * static_cast<double>(hw_);
    const double cx = rng.uniform(0.35, 0.65) * static_cast<double>(hw_);
    const double ry = rng.uniform(0.2, 0.42) * static_cast<double>(hw_);
    const double rx = rng.uniform(0.2, 0.42) * static_cast<double>(hw_);
    const double band = rng.uniform(2.0, 5.0);
    const double pow_n = rng.uniform(1.2, 3.5);  // Super-ellipse exponent.
    for (std::int64_t y = 0; y < hw_; ++y) {
      for (std::int64_t x = 0; x < hw_; ++x) {
        const double u = std::abs((static_cast<double>(y) - cy) / ry);
        const double v = std::abs((static_cast<double>(x) - cx) / rx);
        if (std::pow(u, pow_n) + std::pow(v, pow_n) <= 1.0) {
          const double texture =
              0.75 + 0.25 * std::sin(static_cast<double>(y) / band * 2.0 * M_PI);
          for (std::int64_t ch = 0; ch < c_; ++ch) {
            set(y, x, ch, static_cast<float>(color[static_cast<std::size_t>(ch % 3)] * texture));
          }
        }
      }
    }
  }

  /// Soft colored Gaussian blobs with per-blob spatial frequency texture.
  void paint_textured_blobs(Rng& rng, int blobs) {
    for (int bIdx = 0; bIdx < blobs; ++bIdx) {
      const std::vector<float> color = random_color(rng);
      const double cy = rng.uniform(0.2, 0.8) * static_cast<double>(hw_);
      const double cx = rng.uniform(0.2, 0.8) * static_cast<double>(hw_);
      const double sigma = rng.uniform(0.12, 0.3) * static_cast<double>(hw_);
      const double fy = rng.uniform(0.0, 0.6);
      const double fx = rng.uniform(0.0, 0.6);
      for (std::int64_t y = 0; y < hw_; ++y) {
        for (std::int64_t x = 0; x < hw_; ++x) {
          const double d2 = (static_cast<double>(y) - cy) * (static_cast<double>(y) - cy) +
                            (static_cast<double>(x) - cx) * (static_cast<double>(x) - cx);
          const double g = std::exp(-d2 / (2.0 * sigma * sigma));
          if (g < 0.05) continue;
          const double texture =
              0.8 + 0.2 * std::sin(fy * static_cast<double>(y) + fx * static_cast<double>(x));
          for (std::int64_t ch = 0; ch < c_; ++ch) {
            const auto idx = static_cast<std::size_t>((y * hw_ + x) * c_ + ch);
            img_[idx] = std::clamp(
                img_[idx] + static_cast<float>(g * texture *
                                               color[static_cast<std::size_t>(ch % 3)]),
                0.0F, 1.0F);
          }
        }
      }
    }
  }

  /// Low-frequency colored background clutter (SVHN-style).
  void paint_background(Rng& rng) {
    const double fy = rng.uniform(0.1, 0.4);
    const double fx = rng.uniform(0.1, 0.4);
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    for (std::int64_t y = 0; y < hw_; ++y) {
      for (std::int64_t x = 0; x < hw_; ++x) {
        for (std::int64_t ch = 0; ch < c_; ++ch) {
          const double v = 0.25 + 0.15 * std::sin(fy * static_cast<double>(y) +
                                                  fx * static_cast<double>(x) + phase +
                                                  static_cast<double>(ch));
          img_[static_cast<std::size_t>((y * hw_ + x) * c_ + ch)] = static_cast<float>(v);
        }
      }
    }
  }

  std::int64_t hw_;
  std::int64_t c_;
  std::vector<float> img_;
};

void render_sample(const Prototype& proto, const SyntheticSpec& spec, Rng& rng,
                   std::span<float> out) {
  const std::int64_t hw = spec.hw;
  const std::int64_t c = spec.channels;
  const int shift_y =
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(2 * spec.max_shift + 1))) -
      spec.max_shift;
  const int shift_x =
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(2 * spec.max_shift + 1))) -
      spec.max_shift;
  const double amp = 1.0 + rng.uniform(-spec.amplitude_jitter, spec.amplitude_jitter);
  for (std::int64_t y = 0; y < hw; ++y) {
    for (std::int64_t x = 0; x < hw; ++x) {
      const std::int64_t sy = y - shift_y;
      const std::int64_t sx = x - shift_x;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        double v = 0.0;
        if (sy >= 0 && sy < hw && sx >= 0 && sx < hw) v = proto.at(sy, sx, ch);
        v = v * amp + rng.normal(0.0, spec.pixel_noise);
        out[static_cast<std::size_t>((y * hw + x) * c + ch)] =
            static_cast<float>(std::clamp(v, 0.0, 1.0));
      }
    }
  }
}

void fill_split(const std::vector<Prototype>& protos, const SyntheticSpec& spec,
                std::uint64_t seed, Tensor& x, std::vector<std::int64_t>& y) {
  Rng rng(seed);
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t row = x.numel() / n;
  y.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t cls = i % spec.classes;  // Balanced classes.
    y[static_cast<std::size_t>(i)] = cls;
    render_sample(protos[static_cast<std::size_t>(cls)], spec, rng,
                  x.data().subspan(static_cast<std::size_t>(i * row),
                                   static_cast<std::size_t>(row)));
  }
}

}  // namespace

const char* dataset_kind_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMnist: return "MNIST";
    case DatasetKind::kFashionMnist: return "Fashion-MNIST";
    case DatasetKind::kCifar10: return "CIFAR-10";
    case DatasetKind::kSvhn: return "SVHN";
  }
  return "?";
}

Dataset make_synthetic(const SyntheticSpec& spec) {
  if (spec.channels != 1 && spec.channels != 3) {
    std::fprintf(stderr, "redcane::data fatal: channels must be 1 or 3\n");
    std::abort();
  }
  std::vector<Prototype> protos;
  protos.reserve(static_cast<std::size_t>(spec.classes));
  for (std::int64_t c = 0; c < spec.classes; ++c) protos.emplace_back(spec, c);

  Dataset ds;
  ds.name = std::string(dataset_kind_name(spec.kind)) + "(synthetic)";
  ds.train_x = Tensor(Shape{spec.train_count, spec.hw, spec.hw, spec.channels});
  ds.test_x = Tensor(Shape{spec.test_count, spec.hw, spec.hw, spec.channels});
  fill_split(protos, spec, spec.seed ^ 0xAAAAAAAAULL, ds.train_x, ds.train_y);
  fill_split(protos, spec, spec.seed ^ 0x55555555ULL, ds.test_x, ds.test_y);
  return ds;
}

Dataset make_benchmark(DatasetKind kind, std::int64_t hw, std::int64_t train_count,
                       std::int64_t test_count, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.kind = kind;
  spec.hw = hw;
  spec.channels = (kind == DatasetKind::kCifar10 || kind == DatasetKind::kSvhn) ? 3 : 1;
  spec.train_count = train_count;
  spec.test_count = test_count;
  spec.seed = seed;
  return make_synthetic(spec);
}

}  // namespace redcane::data
