#include "data/idx.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "data/synthetic.hpp"

namespace redcane::data {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/// One big-endian u32 (the IDX header word size).
bool read_be32(std::FILE* f, std::uint32_t& out) {
  unsigned char b[4];
  if (std::fread(b, 1, 4, f) != 4) return false;
  out = (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
        (static_cast<std::uint32_t>(b[2]) << 8) | static_cast<std::uint32_t>(b[3]);
  return true;
}

/// Center-crops (hw < src) or zero-pads (hw > src) one [src, src] image
/// into a [hw, hw] image.
void fit_image(const float* src_px, std::int64_t src, std::int64_t hw, float* dst) {
  const std::int64_t off = (src - hw) / 2;  // Negative when padding.
  for (std::int64_t r = 0; r < hw; ++r) {
    for (std::int64_t c = 0; c < hw; ++c) {
      const std::int64_t sr = r + off;
      const std::int64_t sc = c + off;
      const bool inside = sr >= 0 && sr < src && sc >= 0 && sc < src;
      dst[r * hw + c] = inside ? src_px[sr * src + sc] : 0.0F;
    }
  }
}

}  // namespace

bool load_idx_images(const std::string& path, Tensor& out, std::int64_t limit) {
  const File f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::uint32_t magic = 0;
  std::uint32_t n = 0;
  std::uint32_t h = 0;
  std::uint32_t w = 0;
  if (!read_be32(f.get(), magic) || magic != 0x803U) return false;
  if (!read_be32(f.get(), n) || !read_be32(f.get(), h) || !read_be32(f.get(), w)) return false;
  std::int64_t count = static_cast<std::int64_t>(n);
  if (limit >= 0) count = std::min<std::int64_t>(count, limit);
  const std::size_t px = static_cast<std::size_t>(h) * w;
  std::vector<std::uint8_t> row(px);
  Tensor t(Shape{count, static_cast<std::int64_t>(h), static_cast<std::int64_t>(w), 1});
  auto td = t.data();
  for (std::int64_t i = 0; i < count; ++i) {
    if (std::fread(row.data(), 1, px, f.get()) != px) return false;
    float* dst = &td[static_cast<std::size_t>(i) * px];
    for (std::size_t p = 0; p < px; ++p) dst[p] = static_cast<float>(row[p]) / 255.0F;
  }
  out = std::move(t);
  return true;
}

bool load_idx_labels(const std::string& path, std::vector<std::int64_t>& out,
                     std::int64_t limit) {
  const File f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::uint32_t magic = 0;
  std::uint32_t n = 0;
  if (!read_be32(f.get(), magic) || magic != 0x801U) return false;
  if (!read_be32(f.get(), n)) return false;
  std::int64_t count = static_cast<std::int64_t>(n);
  if (limit >= 0) count = std::min<std::int64_t>(count, limit);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(count));
  if (std::fread(raw.data(), 1, raw.size(), f.get()) != raw.size()) return false;
  out.assign(raw.begin(), raw.end());
  return true;
}

Dataset load_mnist(const std::string& dir, std::int64_t hw, std::int64_t train_count,
                   std::int64_t test_count, std::uint64_t fallback_seed) {
  const std::string base = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  Tensor train_raw;
  Tensor test_raw;
  Dataset ds;
  bool ok = load_idx_images(base + "train-images-idx3-ubyte", train_raw, train_count) &&
            load_idx_labels(base + "train-labels-idx1-ubyte", ds.train_y, train_count) &&
            load_idx_images(base + "t10k-images-idx3-ubyte", test_raw, test_count) &&
            load_idx_labels(base + "t10k-labels-idx1-ubyte", ds.test_y, test_count);
  // A mismatched pair (corrupt download, files swapped) must not produce
  // image rows without labels — consumers index labels by image row — and
  // MNIST labels are digits: anything outside [0, 9] is a bogus payload
  // that would otherwise train silently against never-matching classes.
  ok = ok && train_raw.shape().dim(0) == static_cast<std::int64_t>(ds.train_y.size()) &&
       test_raw.shape().dim(0) == static_cast<std::int64_t>(ds.test_y.size());
  if (ok) {
    for (std::int64_t y : ds.train_y) ok = ok && y >= 0 && y <= 9;
    for (std::int64_t y : ds.test_y) ok = ok && y >= 0 && y <= 9;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "data: MNIST IDX files not readable under '%s' — falling back to the "
                 "synthetic MNIST stand-in\n",
                 dir.c_str());
    return make_benchmark(DatasetKind::kMnist, hw, std::max<std::int64_t>(train_count, 0),
                          std::max<std::int64_t>(test_count, 0), fallback_seed);
  }

  // Fit the 28x28 originals to the requested extent (tiny-profile models
  // run smaller inputs; center content survives a crop).
  const auto fit_split = [hw](const Tensor& raw) {
    const std::int64_t n = raw.shape().dim(0);
    const std::int64_t src = raw.shape().dim(1);
    if (src == hw) return raw;
    Tensor out(Shape{n, hw, hw, 1});
    const auto rd = raw.data();
    auto od = out.data();
    for (std::int64_t i = 0; i < n; ++i) {
      fit_image(&rd[static_cast<std::size_t>(i * src * src)], src, hw,
                &od[static_cast<std::size_t>(i * hw * hw)]);
    }
    return out;
  };
  ds.name = "MNIST(idx)";
  ds.train_x = fit_split(train_raw);
  ds.test_x = fit_split(test_raw);
  return ds;
}

}  // namespace redcane::data
