// IDX-format loaders (the MNIST distribution format: big-endian magic +
// dimension header, then raw u8 payload), plus an MNIST directory loader
// with a synthetic fallback.
//
// The synthetic stand-ins of src/data/synthetic.hpp keep every pipeline
// runnable offline; when the real archives are present (uncompressed
// train-images-idx3-ubyte etc., as distributed), these loaders swap the
// real data in without touching any caller — the examples expose the
// switch as --data-dir (examples/cli_common.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace redcane::data {

/// Reads an IDX3 image file (magic 0x00000803, dims [N, H, W], u8 pixels)
/// into [N, H, W, 1] floats in [0, 1]. `limit` >= 0 caps the image count.
/// Returns false (leaving `out` untouched) on open failure, a wrong magic,
/// or a truncated payload.
[[nodiscard]] bool load_idx_images(const std::string& path, Tensor& out,
                                   std::int64_t limit = -1);

/// Reads an IDX1 label file (magic 0x00000801, dims [N], u8 labels).
[[nodiscard]] bool load_idx_labels(const std::string& path, std::vector<std::int64_t>& out,
                                   std::int64_t limit = -1);

/// Loads MNIST from `dir` (train-images-idx3-ubyte, train-labels-idx1-ubyte,
/// t10k-images-idx3-ubyte, t10k-labels-idx1-ubyte), center-cropping or
/// zero-padding the 28x28 images to `hw`, capping the splits at
/// `train_count`/`test_count` (negative keeps everything; 0 is a valid
/// empty split — the serve-a-manifest flow trains nothing). When any file
/// is absent, malformed, count-mismatched against its labels, or carries
/// an out-of-range label, logs a warning to stderr and returns the
/// synthetic MNIST benchmark of the same geometry instead — callers can
/// tell which they got from Dataset::name ("MNIST(idx)" vs
/// "MNIST(synthetic)").
[[nodiscard]] Dataset load_mnist(const std::string& dir, std::int64_t hw,
                                 std::int64_t train_count, std::int64_t test_count,
                                 std::uint64_t fallback_seed = 1234);

}  // namespace redcane::data
