// Energy accounting for accurate and approximated CapsNet datapaths.
//
// Reproduces the paper's Fig. 4 (energy breakdown by op type) and Fig. 5
// (optimization potential of approximating multipliers and/or adders:
// Acc / XM / XA / XAM). An approximate component's per-op energy is the
// exact unit energy scaled by the component's power ratio — the same
// first-order model the paper uses when it quotes "-29.4% power" for NGR.
#pragma once

#include <string>
#include <vector>

#include "approx/adder.hpp"
#include "approx/multiplier.hpp"
#include "energy/op_counter.hpp"

namespace redcane::energy {

/// One bar of the Fig. 5 study.
struct EnergyScenario {
  std::string label;        ///< "Acc", "XM", "XA", "XAM".
  double energy_pj = 0.0;
  double saving = 0.0;      ///< Relative saving vs the accurate scenario.
};

/// Computes the four Fig. 5 scenarios for a network's op counts, using
/// `mul` for the approximated multiplier and `add` for the adder.
[[nodiscard]] std::vector<EnergyScenario> optimization_potential(
    const OpCounts& ops, const UnitEnergy& ue, const approx::Multiplier& mul,
    const approx::Adder& add);

/// Energy of one inference when each layer uses its own selected
/// multiplier (Step-6 output); layers absent from `selection` stay exact.
struct LayerMultiplierChoice {
  std::string layer;
  const approx::Multiplier* multiplier = nullptr;
};

[[nodiscard]] double approximated_energy_pj(const std::vector<LayerOps>& layers,
                                            const UnitEnergy& ue,
                                            const std::vector<LayerMultiplierChoice>& selection);

/// Per-op energy of a multiplier component: exact mul energy scaled by the
/// component's power ratio to the exact unit.
[[nodiscard]] double mul_energy_pj(const approx::Multiplier& mul, const UnitEnergy& ue);

/// Same for adders.
[[nodiscard]] double add_energy_pj(const approx::Adder& add, const UnitEnergy& ue);

}  // namespace redcane::energy
