#include "energy/op_counter.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane::energy {
namespace {

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

}  // namespace

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  add += o.add;
  mul += o.mul;
  div += o.div;
  exp += o.exp;
  sqrt += o.sqrt;
  return *this;
}

std::uint64_t OpCounts::of(OpType t) const {
  switch (t) {
    case OpType::kAdd: return add;
    case OpType::kMul: return mul;
    case OpType::kDiv: return div;
    case OpType::kExp: return exp;
    case OpType::kSqrt: return sqrt;
  }
  std::fprintf(stderr, "redcane::energy fatal: bad op type\n");
  std::abort();
}

double OpCounts::energy_pj(const UnitEnergy& ue) const {
  return static_cast<double>(add) * ue.add_pj + static_cast<double>(mul) * ue.mul_pj +
         static_cast<double>(div) * ue.div_pj + static_cast<double>(exp) * ue.exp_pj +
         static_cast<double>(sqrt) * ue.sqrt_pj;
}

double OpCounts::energy_share(OpType t, const UnitEnergy& ue) const {
  const double total = energy_pj(ue);
  if (total <= 0.0) return 0.0;
  return static_cast<double>(of(t)) * ue.of(t) / total;
}

OpCounts conv_ops(std::int64_t ho, std::int64_t wo, std::int64_t cout, std::int64_t k,
                  std::int64_t cin, bool bias) {
  OpCounts c;
  const std::int64_t taps = k * k * cin;
  c.mul = u(ho * wo * cout * taps);
  c.add = u(ho * wo * cout * (taps - 1 + (bias ? 1 : 0)));
  return c;
}

OpCounts squash_ops(std::int64_t capsules, std::int64_t dim) {
  // |s|^2: dim muls + (dim-1) adds; 1 + |s|^2: 1 add; sqrt: 1;
  // scale factor: 1 div; scaling: dim muls.
  OpCounts c;
  c.mul = u(capsules * 2 * dim);
  c.add = u(capsules * dim);
  c.sqrt = u(capsules);
  c.div = u(capsules);
  return c;
}

OpCounts softmax_ops(std::int64_t lanes, std::int64_t extent) {
  OpCounts c;
  c.exp = u(lanes * extent);
  c.add = u(lanes * (extent - 1));
  c.div = u(lanes * extent);
  return c;
}

OpCounts routing_ops(std::int64_t m, std::int64_t in_caps, std::int64_t out_caps,
                     std::int64_t dim, int iterations) {
  OpCounts c;
  for (int it = 0; it < iterations; ++it) {
    // c = softmax_j(b): one lane per (m, i).
    c += softmax_ops(m * in_caps, out_caps);
    // s = sum_i c * u_hat.
    OpCounts s;
    s.mul = u(m * in_caps * out_caps * dim);
    s.add = u(m * in_caps * out_caps * dim);
    c += s;
    // v = squash(s).
    c += squash_ops(m * out_caps, dim);
    if (it + 1 < iterations) {
      // b += <u_hat, v>.
      OpCounts b;
      b.mul = u(m * in_caps * out_caps * dim);
      b.add = u(m * in_caps * out_caps * dim);
      c += b;
    }
  }
  return c;
}

std::vector<LayerOps> count_capsnet_layers(const capsnet::CapsNetConfig& cfg) {
  std::vector<LayerOps> layers;
  const std::int64_t h1 = cfg.input_hw - cfg.conv1_kernel + 1;
  layers.push_back(
      {"Conv1", conv_ops(h1, h1, cfg.conv1_channels, cfg.conv1_kernel, cfg.input_channels,
                         /*bias=*/true)});

  const std::int64_t h2 = (h1 - cfg.primary_kernel) / cfg.primary_stride + 1;
  OpCounts primary = conv_ops(h2, h2, cfg.primary_types * cfg.primary_dim, cfg.primary_kernel,
                              cfg.conv1_channels, /*bias=*/true);
  primary += squash_ops(h2 * h2 * cfg.primary_types, cfg.primary_dim);
  layers.push_back({"PrimaryCaps", primary});

  const std::int64_t in_caps = h2 * h2 * cfg.primary_types;
  OpCounts cc;
  // Votes: u_hat[i,j] = W[i,j] u_i.
  cc.mul = u(in_caps * cfg.num_classes * cfg.primary_dim * cfg.class_dim);
  cc.add = u(in_caps * cfg.num_classes * cfg.primary_dim * cfg.class_dim);
  cc += routing_ops(1, in_caps, cfg.num_classes, cfg.class_dim, cfg.routing_iters);
  layers.push_back({"ClassCaps", cc});
  return layers;
}

std::vector<LayerOps> count_deepcaps_layers(const capsnet::DeepCapsConfig& cfg) {
  std::vector<LayerOps> layers;
  const std::int64_t t = cfg.types;
  std::int64_t hw = cfg.input_hw;

  layers.push_back({"Conv2D", conv_ops(hw, hw, t * cfg.dim_block1, 3, cfg.input_channels,
                                       /*bias=*/true)});

  int caps_id = 1;
  auto caps2d = [&](std::int64_t ho, std::int64_t in_dim, std::int64_t out_dim,
                    std::int64_t cin_hw) {
    OpCounts c = conv_ops(ho, ho, t * out_dim, 3, t * in_dim, /*bias=*/true);
    c += squash_ops(ho * ho * t, out_dim);
    (void)cin_hw;
    layers.push_back({"Caps2D" + std::to_string(caps_id++), c});
  };

  for (int blk = 0; blk < 4; ++blk) {
    const std::int64_t in_dim = (blk == 0) ? cfg.dim_block1 : ((blk == 1) ? cfg.dim_block1
                                                                          : cfg.dim_rest);
    const std::int64_t out_dim = (blk == 0) ? cfg.dim_block1 : cfg.dim_rest;
    const std::int64_t ho = (hw + 2 - 3) / 2 + 1;  // Strided entry layer.
    caps2d(ho, in_dim, out_dim, hw);               // a (strided)
    caps2d(ho, out_dim, out_dim, ho);              // b
    caps2d(ho, out_dim, out_dim, ho);              // c
    if (blk < 3) {
      caps2d(ho, out_dim, out_dim, ho);  // d (skip)
    } else {
      // Caps3D: convolutional votes + spatial routing.
      OpCounts c3;
      c3.mul = u(ho * ho * 3 * 3 * t * cfg.dim_rest * t * cfg.dim_rest);
      c3.add = c3.mul;
      c3 += routing_ops(ho * ho, t, t, cfg.dim_rest, cfg.routing_iters);
      layers.push_back({"Caps3D", c3});
    }
    // Residual sum of the two branches.
    OpCounts res;
    res.add = u(ho * ho * t * out_dim);
    layers.back().ops += res;
    hw = ho;
  }

  const std::int64_t in_caps = hw * hw * t;
  OpCounts cc;
  cc.mul = u(in_caps * cfg.num_classes * cfg.dim_rest * cfg.class_dim);
  cc.add = cc.mul;
  cc += routing_ops(1, in_caps, cfg.num_classes, cfg.class_dim, cfg.routing_iters);
  layers.push_back({"ClassCaps", cc});
  return layers;
}

namespace {

OpCounts sum_layers(const std::vector<LayerOps>& layers) {
  OpCounts total;
  for (const LayerOps& l : layers) total += l.ops;
  return total;
}

}  // namespace

OpCounts count_capsnet(const capsnet::CapsNetConfig& cfg) {
  return sum_layers(count_capsnet_layers(cfg));
}

OpCounts count_deepcaps(const capsnet::DeepCapsConfig& cfg) {
  return sum_layers(count_deepcaps_layers(cfg));
}

}  // namespace redcane::energy
