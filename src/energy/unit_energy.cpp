#include "energy/unit_energy.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane::energy {

const char* op_type_name(OpType t) {
  switch (t) {
    case OpType::kAdd: return "Addition";
    case OpType::kMul: return "Multiplication";
    case OpType::kDiv: return "Division";
    case OpType::kExp: return "Exponential";
    case OpType::kSqrt: return "Square Root";
  }
  return "?";
}

double UnitEnergy::of(OpType t) const {
  switch (t) {
    case OpType::kAdd: return add_pj;
    case OpType::kMul: return mul_pj;
    case OpType::kDiv: return div_pj;
    case OpType::kExp: return exp_pj;
    case OpType::kSqrt: return sqrt_pj;
  }
  std::fprintf(stderr, "redcane::energy fatal: bad op type\n");
  std::abort();
}

UnitEnergy UnitEnergy::paper_45nm() { return UnitEnergy{}; }

}  // namespace redcane::energy
