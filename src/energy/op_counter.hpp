// Analytic per-inference operation counters (paper Table I).
//
// Counts the arithmetic operations (adds, multiplies, divisions,
// exponentials, square roots) executed by one forward pass of a CapsNet or
// DeepCaps configuration, walking the same layer topology the models
// implement. Multiplications dominating the count/energy is the paper's
// motivating observation (Fig. 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "energy/unit_energy.hpp"

namespace redcane::energy {

struct OpCounts {
  std::uint64_t add = 0;
  std::uint64_t mul = 0;
  std::uint64_t div = 0;
  std::uint64_t exp = 0;
  std::uint64_t sqrt = 0;

  OpCounts& operator+=(const OpCounts& o);

  [[nodiscard]] std::uint64_t of(OpType t) const;
  [[nodiscard]] std::uint64_t total() const { return add + mul + div + exp + sqrt; }

  /// Total energy in picojoules under the given unit-energy table.
  [[nodiscard]] double energy_pj(const UnitEnergy& ue) const;

  /// Energy share of one op type in [0, 1] (Fig. 4 breakdown).
  [[nodiscard]] double energy_share(OpType t, const UnitEnergy& ue) const;
};

/// Per-layer breakdown entry.
struct LayerOps {
  std::string layer;
  OpCounts ops;
};

/// Op counts of one inference (batch 1) of the given configuration.
[[nodiscard]] OpCounts count_capsnet(const capsnet::CapsNetConfig& cfg);
[[nodiscard]] OpCounts count_deepcaps(const capsnet::DeepCapsConfig& cfg);

/// Layer-resolved variants (used by the component-selection energy report).
[[nodiscard]] std::vector<LayerOps> count_capsnet_layers(const capsnet::CapsNetConfig& cfg);
[[nodiscard]] std::vector<LayerOps> count_deepcaps_layers(const capsnet::DeepCapsConfig& cfg);

/// Building blocks (exposed for unit testing).
[[nodiscard]] OpCounts conv_ops(std::int64_t ho, std::int64_t wo, std::int64_t cout,
                                std::int64_t k, std::int64_t cin, bool bias);
[[nodiscard]] OpCounts squash_ops(std::int64_t capsules, std::int64_t dim);
[[nodiscard]] OpCounts softmax_ops(std::int64_t lanes, std::int64_t extent);
[[nodiscard]] OpCounts routing_ops(std::int64_t m, std::int64_t in_caps, std::int64_t out_caps,
                                   std::int64_t dim, int iterations);

}  // namespace redcane::energy
