#include "energy/energy_model.hpp"

#include "approx/library.hpp"

namespace redcane::energy {

double mul_energy_pj(const approx::Multiplier& mul, const UnitEnergy& ue) {
  const double exact_power = approx::exact_multiplier().info().power_uw;
  return ue.mul_pj * (mul.info().power_uw / exact_power);
}

double add_energy_pj(const approx::Adder& add, const UnitEnergy& ue) {
  const double exact_power = approx::adder_by_name("axa_exact").info().power_uw;
  return ue.add_pj * (add.info().power_uw / exact_power);
}

std::vector<EnergyScenario> optimization_potential(const OpCounts& ops, const UnitEnergy& ue,
                                                   const approx::Multiplier& mul,
                                                   const approx::Adder& add) {
  const double non_mul_add = static_cast<double>(ops.div) * ue.div_pj +
                             static_cast<double>(ops.exp) * ue.exp_pj +
                             static_cast<double>(ops.sqrt) * ue.sqrt_pj;
  const double mul_acc = static_cast<double>(ops.mul) * ue.mul_pj;
  const double add_acc = static_cast<double>(ops.add) * ue.add_pj;
  const double mul_apx = static_cast<double>(ops.mul) * mul_energy_pj(mul, ue);
  const double add_apx = static_cast<double>(ops.add) * add_energy_pj(add, ue);

  const double acc = mul_acc + add_acc + non_mul_add;
  std::vector<EnergyScenario> out{
      {"Acc", acc, 0.0},
      {"XM", mul_apx + add_acc + non_mul_add, 0.0},
      {"XA", mul_acc + add_apx + non_mul_add, 0.0},
      {"XAM", mul_apx + add_apx + non_mul_add, 0.0},
  };
  for (EnergyScenario& s : out) s.saving = 1.0 - s.energy_pj / acc;
  return out;
}

double approximated_energy_pj(const std::vector<LayerOps>& layers, const UnitEnergy& ue,
                              const std::vector<LayerMultiplierChoice>& selection) {
  double total = 0.0;
  for (const LayerOps& l : layers) {
    const approx::Multiplier* mul = &approx::exact_multiplier();
    for (const LayerMultiplierChoice& c : selection) {
      if (c.layer == l.layer && c.multiplier != nullptr) {
        mul = c.multiplier;
        break;
      }
    }
    total += static_cast<double>(l.ops.mul) * mul_energy_pj(*mul, ue);
    total += static_cast<double>(l.ops.add) * ue.add_pj;
    total += static_cast<double>(l.ops.div) * ue.div_pj;
    total += static_cast<double>(l.ops.exp) * ue.exp_pj;
    total += static_cast<double>(l.ops.sqrt) * ue.sqrt_pj;
  }
  return total;
}

}  // namespace redcane::energy
