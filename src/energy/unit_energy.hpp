// Per-operation unit energies (paper Table I): 8-bit fixed-point units
// synthesized in 45 nm CMOS with Synopsys Design Compiler. We embed the
// published values as the calibration table of the energy model
// (DESIGN.md §4 — the paper itself treats them as fixed constants).
#pragma once

#include <cstdint>

namespace redcane::energy {

enum class OpType : std::uint8_t { kAdd, kMul, kDiv, kExp, kSqrt };

inline constexpr int kNumOpTypes = 5;

[[nodiscard]] const char* op_type_name(OpType t);

/// Energy per operation in picojoules.
struct UnitEnergy {
  double add_pj = 0.0202;
  double mul_pj = 0.5354;
  double div_pj = 1.0717;
  double exp_pj = 0.1578;
  double sqrt_pj = 0.7805;

  [[nodiscard]] double of(OpType t) const;

  /// The paper's published table.
  static UnitEnergy paper_45nm();
};

}  // namespace redcane::energy
