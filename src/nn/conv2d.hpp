// 2D convolution layer (NHWC), with analytic backward pass.
#pragma once

#include "nn/layer.hpp"

namespace redcane::nn {

struct Conv2DSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 0;  ///< Symmetric zero padding.
  bool bias = true;
};

/// Convolution over [N, H, W, Cin] with weights [KH, KW, Cin, Cout].
///
/// Eval forwards consult the emulation context (backend/emulation.hpp)
/// under this layer's name: when an EmulationScope plans the name, the
/// convolution executes on the behavioral quantized LUT datapath
/// (quant::approx_conv2d) instead of the float GEMM core. Training
/// forwards always run float.
class Conv2D final : public Layer {
 public:
  Conv2D(std::string name, const Conv2DSpec& spec, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Conv2DSpec& spec() const { return spec_; }
  [[nodiscard]] Param& weight() { return w_; }
  [[nodiscard]] const Param& weight() const { return w_; }

  /// Output spatial extent for a given input extent.
  [[nodiscard]] std::int64_t out_extent(std::int64_t in_extent) const {
    return (in_extent + 2 * spec_.pad - spec_.kernel) / spec_.stride + 1;
  }

 private:
  std::string name_;
  Conv2DSpec spec_;
  Param w_;
  Param b_;
  Tensor cached_x_;  ///< Input cached during forward(train=true).
};

/// Stateless functional forward used by inference-only paths (noise
/// injection hooks operate on the returned pre-activation tensor).
[[nodiscard]] Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                                    std::int64_t stride, std::int64_t pad);

}  // namespace redcane::nn
