#include "nn/conv2d.hpp"

#include <cstdio>
#include <cstdlib>

#include "backend/emulation.hpp"
#include "nn/im2col.hpp"
#include "quant/approx_conv.hpp"
#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"

namespace redcane::nn {
namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "redcane::nn fatal: %s\n", what);
  std::abort();
}

}  // namespace

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      std::int64_t stride, std::int64_t pad) {
  const ConvDims d = make_conv_dims(x.shape(), w.shape(), stride, pad);
  // Lower to cols [M, K] * w [K, Cout]: KKIO weights are already the
  // right matrix row-major. The patch matrix is hot-path scratch — carved
  // from the per-thread arena, not a fresh Tensor per call.
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  float* cols = wksp.alloc<float>(static_cast<std::size_t>(d.rows() * d.cols()));
  im2col(x.data().data(), d, cols);
  Tensor out(Shape{d.n, d.ho, d.wo, d.cout});
  gemm::gemm_f32(false, false, d.rows(), d.cout, d.cols(), cols, w.data().data(), 0.0F,
                 out.data().data());
  if (!bias.empty()) {
    auto od = out.data();
    const auto bd = bias.data();
    for (std::int64_t r = 0; r < d.rows(); ++r) {
      float* orow = &od[static_cast<std::size_t>(r * d.cout)];
      const float* brow = bd.data();
#pragma omp simd
      for (std::int64_t co = 0; co < d.cout; ++co) orow[co] += brow[co];
    }
  }
  return out;
}

Conv2D::Conv2D(std::string name, const Conv2DSpec& spec, Rng& rng)
    : name_(std::move(name)),
      spec_(spec),
      w_(name_ + ".w",
         Tensor(Shape{spec.kernel, spec.kernel, spec.in_channels, spec.out_channels})),
      b_(name_ + ".b", Tensor(Shape{spec.out_channels})) {
  he_init(w_.value, spec.kernel * spec.kernel * spec.in_channels, rng);
}

Tensor Conv2D::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  if (!train) {
    if (const backend::SiteUnit* u = backend::active_mac_unit(name_)) {
      quant::ApproxConvSpec as;
      as.stride = static_cast<int>(spec_.stride);
      as.pad = static_cast<int>(spec_.pad);
      as.bits = u->bits;
      return quant::approx_conv2d(x, w_.value, spec_.bias ? b_.value : Tensor(), as,
                                  u->unit);
    }
  }
  return conv2d_forward(x, w_.value, spec_.bias ? b_.value : Tensor(), spec_.stride, spec_.pad);
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const Tensor& x = cached_x_;
  if (x.empty()) fail("Conv2D::backward without cached forward");
  const ConvDims d = make_conv_dims(x.shape(), w_.value.shape(), spec_.stride, spec_.pad);
  if (grad_out.shape().dim(1) != d.ho || grad_out.shape().dim(2) != d.wo) {
    fail("Conv2D::backward grad shape mismatch");
  }
  const std::int64_t m = d.rows();
  const std::int64_t k = d.cols();
  const auto gd = grad_out.data();

  if (spec_.bias) {
    auto gb = b_.grad.data();
    for (std::int64_t r = 0; r < m; ++r) {
      const float* grow = &gd[static_cast<std::size_t>(r * d.cout)];
      for (std::int64_t co = 0; co < d.cout; ++co) gb[static_cast<std::size_t>(co)] += grow[co];
    }
  }

  // grad_w [K, Cout] += cols^T [K, M] * grad_out [M, Cout].
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  float* cols = wksp.alloc<float>(static_cast<std::size_t>(m * k));
  im2col(x.data().data(), d, cols);
  gemm::gemm_f32(true, false, k, d.cout, m, cols, gd.data(), 1.0F, w_.grad.data().data());

  // grad_cols [M, K] = grad_out [M, Cout] * w^T [Cout, K]; col2im folds the
  // patch gradients back onto the input image.
  float* grad_cols = wksp.alloc<float>(static_cast<std::size_t>(m * k));
  gemm::gemm_f32(false, true, m, k, d.cout, gd.data(), w_.value.data().data(), 0.0F,
                 grad_cols);
  Tensor grad_in(x.shape());
  col2im(grad_cols, d, grad_in.data().data());
  return grad_in;
}

std::vector<Param*> Conv2D::params() {
  if (spec_.bias) return {&w_, &b_};
  return {&w_};
}

}  // namespace redcane::nn
