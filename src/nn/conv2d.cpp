#include "nn/conv2d.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane::nn {
namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "redcane::nn fatal: %s\n", what);
  std::abort();
}

}  // namespace

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      std::int64_t stride, std::int64_t pad) {
  if (x.shape().rank() != 4 || w.shape().rank() != 4) fail("conv2d expects NHWC x, KKIO w");
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t wd = x.shape().dim(2);
  const std::int64_t cin = x.shape().dim(3);
  const std::int64_t kh = w.shape().dim(0);
  const std::int64_t kw = w.shape().dim(1);
  const std::int64_t cout = w.shape().dim(3);
  if (w.shape().dim(2) != cin) fail("conv2d channel mismatch");
  const std::int64_t ho = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t wo = (wd + 2 * pad - kw) / stride + 1;
  if (ho <= 0 || wo <= 0) fail("conv2d produces empty output");

  Tensor out(Shape{n, ho, wo, cout});
  const auto xd = x.data();
  const auto wdta = w.data();
  auto od = out.data();
  const bool has_bias = !bias.empty();

#pragma omp parallel for collapse(2) if (n * ho > 4)
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        float* orow = &od[static_cast<std::size_t>(((ni * ho + oy) * wo + ox) * cout)];
        if (has_bias) {
          for (std::int64_t co = 0; co < cout; ++co) orow[co] = bias.at(co);
        } else {
          for (std::int64_t co = 0; co < cout; ++co) orow[co] = 0.0F;
        }
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            const std::int64_t ix = ox * stride + kx - pad;
            if (ix < 0 || ix >= wd) continue;
            const float* xrow = &xd[static_cast<std::size_t>(((ni * h + iy) * wd + ix) * cin)];
            const float* wrow = &wdta[static_cast<std::size_t>((ky * kw + kx) * cin * cout)];
            for (std::int64_t ci = 0; ci < cin; ++ci) {
              const float xv = xrow[ci];
              if (xv == 0.0F) continue;
              const float* wc = &wrow[ci * cout];
              for (std::int64_t co = 0; co < cout; ++co) orow[co] += xv * wc[co];
            }
          }
        }
      }
    }
  }
  return out;
}

Conv2D::Conv2D(std::string name, const Conv2DSpec& spec, Rng& rng)
    : spec_(spec),
      w_(name + ".w",
         Tensor(Shape{spec.kernel, spec.kernel, spec.in_channels, spec.out_channels})),
      b_(name + ".b", Tensor(Shape{spec.out_channels})) {
  he_init(w_.value, spec.kernel * spec.kernel * spec.in_channels, rng);
}

Tensor Conv2D::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  return conv2d_forward(x, w_.value, spec_.bias ? b_.value : Tensor(), spec_.stride, spec_.pad);
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const Tensor& x = cached_x_;
  if (x.empty()) fail("Conv2D::backward without cached forward");
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t wd = x.shape().dim(2);
  const std::int64_t cin = x.shape().dim(3);
  const std::int64_t kh = spec_.kernel;
  const std::int64_t kw = spec_.kernel;
  const std::int64_t cout = spec_.out_channels;
  const std::int64_t ho = grad_out.shape().dim(1);
  const std::int64_t wo = grad_out.shape().dim(2);

  Tensor grad_in(x.shape());
  const auto xd = x.data();
  const auto gd = grad_out.data();
  auto gid = grad_in.data();
  auto gw = w_.grad.data();
  auto gb = b_.grad.data();
  const auto wv = w_.value.data();

  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        const float* grow = &gd[static_cast<std::size_t>(((ni * ho + oy) * wo + ox) * cout)];
        if (spec_.bias) {
          for (std::int64_t co = 0; co < cout; ++co) gb[static_cast<std::size_t>(co)] += grow[co];
        }
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = oy * spec_.stride + ky - spec_.pad;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            const std::int64_t ix = ox * spec_.stride + kx - spec_.pad;
            if (ix < 0 || ix >= wd) continue;
            const std::size_t xbase = static_cast<std::size_t>(((ni * h + iy) * wd + ix) * cin);
            const std::size_t wbase = static_cast<std::size_t>((ky * kw + kx) * cin * cout);
            for (std::int64_t ci = 0; ci < cin; ++ci) {
              const float xv = xd[xbase + static_cast<std::size_t>(ci)];
              float gi = 0.0F;
              const std::size_t wrow = wbase + static_cast<std::size_t>(ci * cout);
              for (std::int64_t co = 0; co < cout; ++co) {
                const float g = grow[co];
                gw[wrow + static_cast<std::size_t>(co)] += xv * g;
                gi += wv[wrow + static_cast<std::size_t>(co)] * g;
              }
              gid[xbase + static_cast<std::size_t>(ci)] += gi;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> Conv2D::params() {
  if (spec_.bias) return {&w_, &b_};
  return {&w_};
}

}  // namespace redcane::nn
