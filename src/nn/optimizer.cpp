#include "nn/optimizer.hpp"

#include <cmath>

namespace redcane::nn {

void Sgd::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    Tensor& vel = velocity_.try_emplace(p, Tensor(p->value.shape())).first->second;
    auto vd = vel.data();
    auto gd = p->grad.data();
    auto wd = p->value.data();
    for (std::size_t i = 0; i < wd.size(); ++i) {
      vd[i] = static_cast<float>(momentum_ * vd[i] - lr_ * gd[i]);
      wd[i] += vd[i];
    }
    p->zero_grad();
  }
}

void Adam::step(const std::vector<Param*>& params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params) {
    State& s = state_
                   .try_emplace(p, State{Tensor(p->value.shape()), Tensor(p->value.shape())})
                   .first->second;
    auto md = s.m.data();
    auto vd = s.v.data();
    auto gd = p->grad.data();
    auto wd = p->value.data();
    for (std::size_t i = 0; i < wd.size(); ++i) {
      const double g = gd[i];
      md[i] = static_cast<float>(beta1_ * md[i] + (1.0 - beta1_) * g);
      vd[i] = static_cast<float>(beta2_ * vd[i] + (1.0 - beta2_) * g * g);
      const double mhat = md[i] / bc1;
      const double vhat = vd[i] / bc2;
      wd[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
    p->zero_grad();
  }
}

}  // namespace redcane::nn
