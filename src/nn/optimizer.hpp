// First-order optimizers over Param lists.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"

namespace redcane::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using each param's accumulated gradient, then
  /// zeroes the gradients.
  virtual void step(const std::vector<Param*>& params) = 0;
};

/// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9) : lr_(lr), momentum_(momentum) {}
  void step(const std::vector<Param*>& params) override;

 private:
  double lr_;
  double momentum_;
  std::unordered_map<const Param*, Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(const std::vector<Param*>& params) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
  };
  double lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::unordered_map<const Param*, State> state_;
};

}  // namespace redcane::nn
