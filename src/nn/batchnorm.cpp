#include "nn/batchnorm.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace redcane::nn {

BatchNorm::BatchNorm(std::string name, std::int64_t channels, double momentum, double eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(name + ".gamma", Tensor(Shape{channels}, 1.0F)),
      beta_(name + ".beta", Tensor(Shape{channels})),
      running_mean_(name + ".rmean", Tensor(Shape{channels})),
      running_var_(name + ".rvar", Tensor(Shape{channels}, 1.0F)) {}

Tensor BatchNorm::forward(const Tensor& x, bool train) {
  if (x.shape().dim(-1) != channels_) {
    std::fprintf(stderr, "redcane::nn fatal: BatchNorm channel mismatch\n");
    std::abort();
  }
  const std::int64_t c = channels_;
  const std::int64_t rows = x.numel() / c;
  const auto xd = x.data();

  std::vector<double> mean(static_cast<std::size_t>(c), 0.0);
  std::vector<double> var(static_cast<std::size_t>(c), 0.0);
  if (train) {
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t k = 0; k < c; ++k) {
        mean[static_cast<std::size_t>(k)] += xd[static_cast<std::size_t>(r * c + k)];
      }
    }
    for (std::int64_t k = 0; k < c; ++k) mean[static_cast<std::size_t>(k)] /= rows;
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t k = 0; k < c; ++k) {
        const double d =
            xd[static_cast<std::size_t>(r * c + k)] - mean[static_cast<std::size_t>(k)];
        var[static_cast<std::size_t>(k)] += d * d;
      }
    }
    for (std::int64_t k = 0; k < c; ++k) {
      var[static_cast<std::size_t>(k)] /= rows;
      // Update running statistics.
      auto& rm = running_mean_.value.at(k);
      auto& rv = running_var_.value.at(k);
      rm = static_cast<float>(momentum_ * rm + (1.0 - momentum_) * mean[static_cast<std::size_t>(k)]);
      rv = static_cast<float>(momentum_ * rv + (1.0 - momentum_) * var[static_cast<std::size_t>(k)]);
    }
  } else {
    for (std::int64_t k = 0; k < c; ++k) {
      mean[static_cast<std::size_t>(k)] = running_mean_.value.at(k);
      var[static_cast<std::size_t>(k)] = running_var_.value.at(k);
    }
  }

  Tensor out(x.shape());
  auto od = out.data();
  std::vector<double> inv_std(static_cast<std::size_t>(c));
  for (std::int64_t k = 0; k < c; ++k) {
    inv_std[static_cast<std::size_t>(k)] =
        1.0 / std::sqrt(var[static_cast<std::size_t>(k)] + eps_);
  }
  Tensor xhat(x.shape());
  auto hd = xhat.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t k = 0; k < c; ++k) {
      const std::size_t i = static_cast<std::size_t>(r * c + k);
      const double h = (xd[i] - mean[static_cast<std::size_t>(k)]) *
                       inv_std[static_cast<std::size_t>(k)];
      hd[i] = static_cast<float>(h);
      od[i] = static_cast<float>(gamma_.value.at(k) * h + beta_.value.at(k));
    }
  }
  if (train) {
    cached_xhat_ = std::move(xhat);
    cached_inv_std_ = std::move(inv_std);
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_out) {
  const std::int64_t c = channels_;
  const std::int64_t rows = grad_out.numel() / c;
  const auto gd = grad_out.data();
  const auto hd = cached_xhat_.data();

  std::vector<double> sum_dy(static_cast<std::size_t>(c), 0.0);
  std::vector<double> sum_dy_xhat(static_cast<std::size_t>(c), 0.0);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t k = 0; k < c; ++k) {
      const std::size_t i = static_cast<std::size_t>(r * c + k);
      sum_dy[static_cast<std::size_t>(k)] += gd[i];
      sum_dy_xhat[static_cast<std::size_t>(k)] += static_cast<double>(gd[i]) * hd[i];
    }
  }
  for (std::int64_t k = 0; k < c; ++k) {
    beta_.grad.at(k) += static_cast<float>(sum_dy[static_cast<std::size_t>(k)]);
    gamma_.grad.at(k) += static_cast<float>(sum_dy_xhat[static_cast<std::size_t>(k)]);
  }

  Tensor grad_in(grad_out.shape());
  auto gid = grad_in.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t k = 0; k < c; ++k) {
      const std::size_t i = static_cast<std::size_t>(r * c + k);
      const std::size_t kk = static_cast<std::size_t>(k);
      const double term = gd[i] - sum_dy[kk] / rows - hd[i] * sum_dy_xhat[kk] / rows;
      gid[i] = static_cast<float>(gamma_.value.at(k) * cached_inv_std_[kk] * term);
    }
  }
  return grad_in;
}

}  // namespace redcane::nn
