// im2col / col2im: lowering of NHWC convolutions to matrix products.
//
// Every convolution path in the codebase (float conv2d forward/backward,
// the quantized approximate conv, and the capsule conv layers) routes
// through this lowering plus the blocked kernels in tensor/gemm.hpp, so
// the GEMM core is the single place future backends plug in.
//
// Layout convention: an input [N, H, W, Cin] convolved by a KHxKW kernel
// lowers to a patch matrix of shape [rows() = N*Ho*Wo, cols() = KH*KW*Cin]
// whose column index is (ky*KW + kx)*Cin + ci. A KKIO weight tensor
// [KH, KW, Cin, Cout] is, row-major, already the matching [cols(), Cout]
// matrix — no reshuffle is ever needed.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace redcane::nn {

/// Geometry of one 2D convolution, shared by all conv paths.
struct ConvDims {
  std::int64_t n = 0, h = 0, w = 0, cin = 0;
  std::int64_t kh = 0, kw = 0, cout = 0;
  std::int64_t ho = 0, wo = 0;
  std::int64_t stride = 1, pad = 0;

  /// Patch-matrix row count (one row per output spatial position).
  [[nodiscard]] std::int64_t rows() const { return n * ho * wo; }
  /// Patch-matrix column count (one column per kernel tap).
  [[nodiscard]] std::int64_t cols() const { return kh * kw * cin; }
};

/// Validates NHWC x against KKIO w and computes output geometry.
/// Aborts on rank/channel mismatch or empty output.
[[nodiscard]] ConvDims make_conv_dims(const Shape& x, const Shape& w, std::int64_t stride,
                                      std::int64_t pad);

/// Geometry without a KKIO weight tensor (capsule vote layers carry their
/// weights in a different layout).
[[nodiscard]] ConvDims make_conv_dims(const Shape& x, std::int64_t kh, std::int64_t kw,
                                      std::int64_t cout, std::int64_t stride, std::int64_t pad);

/// Writes the [rows(), cols()] patch matrix for image `x` (layout
/// [n, h, w, cin] row-major). Out-of-bounds (zero-padding) taps become 0.
void im2col(const float* x, const ConvDims& d, float* cols);

/// Tensor convenience wrapper; result shape [rows(), cols()].
[[nodiscard]] Tensor im2col(const Tensor& x, const ConvDims& d);

/// Adjoint of im2col: scatter-adds patch matrix `cols` back into image
/// layout. `x` must be zero-initialized by the caller (the function only
/// accumulates); out-of-bounds taps are dropped.
void col2im(const float* cols, const ConvDims& d, float* x);

/// Quantized-code variant for the approximate-multiplier path. Copies
/// u8 codes into the patch matrix and records tap validity in `mask`
/// (1 = real tap, 0 = zero-padding). Padding cannot be represented as a
/// code because the affine zero-point maps real 0 to a nonzero code; the
/// integer GEMM skips masked-out taps so padded positions contribute true
/// zero to every accumulator, matching the float reference exactly.
void im2col_codes(const std::uint8_t* x, const ConvDims& d, std::uint8_t* cols,
                  std::uint8_t* mask);

}  // namespace redcane::nn
