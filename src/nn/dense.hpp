// Fully-connected layer over the last axis: [N, in] -> [N, out].
//
// Eval forwards consult the emulation context (backend/emulation.hpp)
// under this layer's name and, on a hit, run the quantized LUT datapath
// (quant::approx_matmul) instead of the float GEMM.
#pragma once

#include "nn/layer.hpp"

namespace redcane::nn {

class Dense final : public Layer {
 public:
  Dense(std::string name, std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::int64_t in_;
  std::int64_t out_;
  Param w_;  ///< [in, out]
  Param b_;  ///< [out]
  Tensor cached_x_;
};

}  // namespace redcane::nn
