// Trainable-layer interface of the NN substrate.
//
// The paper trains its models in TensorFlow; this reproduction replaces
// that substrate with explicit per-layer forward/backward passes (see
// DESIGN.md §4). Layers cache whatever they need between forward and
// backward; the caller drives plain SGD-style loops (capsnet/trainer.*).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace redcane::nn {

/// A trainable parameter and its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0F); }
};

/// Base class for layers with a single input and output tensor.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; caches activations needed by backward when `train`.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward pass: receives dL/d(output), returns dL/d(input), and
  /// accumulates parameter gradients. Must follow a forward(train=true).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }
};

/// He-normal initialization for conv/dense weights with `fan_in` inputs.
inline void he_init(Tensor& w, std::int64_t fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : w.data()) v = static_cast<float>(rng.normal(0.0, stddev));
}

}  // namespace redcane::nn
