// Pointwise activations with backward passes.
#pragma once

#include "nn/layer.hpp"

namespace redcane::nn {

/// Rectified linear unit.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_x_;
};

/// Functional forms for inference-only paths.
[[nodiscard]] Tensor relu(const Tensor& x);

}  // namespace redcane::nn
