// Training losses.
//
// Margin loss is the CapsNet classification loss of Sabour et al. [25]:
//   L_k = T_k * max(0, m+ - |v_k|)^2 + λ (1 - T_k) * max(0, |v_k| - m-)^2
// computed on class-capsule lengths. Cross-entropy over logits is provided
// for conventional heads and unit tests.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace redcane::nn {

struct LossResult {
  double loss = 0.0;  ///< Mean loss over the batch.
  Tensor grad;        ///< dL/d(input), same shape as the input.
};

struct MarginLossSpec {
  double m_plus = 0.9;
  double m_minus = 0.1;
  double lambda = 0.5;
};

/// lengths: [N, num_classes] capsule lengths; labels: per-sample class ids.
[[nodiscard]] LossResult margin_loss(const Tensor& lengths,
                                     const std::vector<std::int64_t>& labels,
                                     const MarginLossSpec& spec = {});

/// logits: [N, num_classes]; softmax cross-entropy with mean reduction.
[[nodiscard]] LossResult softmax_cross_entropy(const Tensor& logits,
                                               const std::vector<std::int64_t>& labels);

/// Fraction of rows whose argmax equals the label.
[[nodiscard]] double accuracy(const Tensor& scores, const std::vector<std::int64_t>& labels);

}  // namespace redcane::nn
