#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tensor/ops.hpp"

namespace redcane::nn {
namespace {

void check_labels(const Tensor& scores, const std::vector<std::int64_t>& labels) {
  if (scores.shape().rank() != 2 ||
      scores.shape().dim(0) != static_cast<std::int64_t>(labels.size())) {
    std::fprintf(stderr, "redcane::nn fatal: loss shape/label mismatch\n");
    std::abort();
  }
}

}  // namespace

LossResult margin_loss(const Tensor& lengths, const std::vector<std::int64_t>& labels,
                       const MarginLossSpec& spec) {
  check_labels(lengths, labels);
  const std::int64_t n = lengths.shape().dim(0);
  const std::int64_t c = lengths.shape().dim(1);
  LossResult r;
  r.grad = Tensor(lengths.shape());
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < c; ++k) {
      const double v = lengths(i, k);
      const bool target = labels[static_cast<std::size_t>(i)] == k;
      if (target) {
        const double m = std::max(0.0, spec.m_plus - v);
        total += m * m;
        r.grad(i, k) = static_cast<float>(-2.0 * m / static_cast<double>(n));
      } else {
        const double m = std::max(0.0, v - spec.m_minus);
        total += spec.lambda * m * m;
        r.grad(i, k) = static_cast<float>(2.0 * spec.lambda * m / static_cast<double>(n));
      }
    }
  }
  r.loss = total / static_cast<double>(n);
  return r;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  check_labels(logits, labels);
  const std::int64_t n = logits.shape().dim(0);
  const std::int64_t c = logits.shape().dim(1);
  const Tensor probs = ops::softmax(logits, 1);
  LossResult r;
  r.grad = Tensor(logits.shape());
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    const double p = std::max(1e-12, static_cast<double>(probs(i, y)));
    total -= std::log(p);
    for (std::int64_t k = 0; k < c; ++k) {
      const double indicator = (k == y) ? 1.0 : 0.0;
      r.grad(i, k) = static_cast<float>((probs(i, k) - indicator) / static_cast<double>(n));
    }
  }
  r.loss = total / static_cast<double>(n);
  return r;
}

double accuracy(const Tensor& scores, const std::vector<std::int64_t>& labels) {
  check_labels(scores, labels);
  const std::vector<std::int64_t> pred = ops::argmax_last_axis(scores);
  std::int64_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace redcane::nn
