#include "nn/activations.hpp"

namespace redcane::nn {

Tensor relu(const Tensor& x) {
  Tensor out = x;
  for (float& v : out.data()) v = v > 0.0F ? v : 0.0F;
  return out;
}

Tensor ReLU::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  return relu(x);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  auto gd = grad_in.data();
  const auto xd = cached_x_.data();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    if (xd[i] <= 0.0F) gd[i] = 0.0F;
  }
  return grad_in;
}

}  // namespace redcane::nn
