#include "nn/dense.hpp"

#include <cstdio>
#include <cstdlib>

#include "backend/emulation.hpp"
#include "tensor/ops.hpp"

namespace redcane::nn {

Dense::Dense(std::string name, std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : name_(std::move(name)),
      in_(in_features),
      out_(out_features),
      w_(name_ + ".w", Tensor(Shape{in_features, out_features})),
      b_(name_ + ".b", Tensor(Shape{out_features})) {
  he_init(w_.value, in_features, rng);
}

Tensor Dense::forward(const Tensor& x, bool train) {
  if (x.shape().rank() != 2 || x.shape().dim(1) != in_) {
    std::fprintf(stderr, "redcane::nn fatal: Dense input shape mismatch\n");
    std::abort();
  }
  if (train) cached_x_ = x;
  if (!train) {
    if (const backend::SiteUnit* u = backend::active_mac_unit(name_)) {
      // Emulated path carries the bias inside the dequantization.
      return quant::approx_matmul(x, w_.value, b_.value, u->unit, u->bits);
    }
  }
  Tensor out = ops::matmul(x, w_.value);
  const std::int64_t n = out.shape().dim(0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < out_; ++j) out(i, j) += b_.value.at(j);
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const std::int64_t n = cached_x_.shape().dim(0);
  // dW = x^T g, db = sum_n g, dx = g W^T.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < out_; ++j) {
      const float g = grad_out(i, j);
      b_.grad.at(j) += g;
      for (std::int64_t k = 0; k < in_; ++k) w_.grad(k, j) += cached_x_(i, k) * g;
    }
  }
  Tensor grad_in(cached_x_.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < in_; ++k) {
      float acc = 0.0F;
      for (std::int64_t j = 0; j < out_; ++j) acc += grad_out(i, j) * w_.value(k, j);
      grad_in(i, k) = acc;
    }
  }
  return grad_in;
}

}  // namespace redcane::nn
