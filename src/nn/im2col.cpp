#include "nn/im2col.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace redcane::nn {
namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "redcane::nn fatal: %s\n", what);
  std::abort();
}

}  // namespace

ConvDims make_conv_dims(const Shape& x, std::int64_t kh, std::int64_t kw, std::int64_t cout,
                        std::int64_t stride, std::int64_t pad) {
  if (x.rank() != 4) fail("conv expects NHWC input");
  if (stride <= 0) fail("conv stride must be positive");
  ConvDims d;
  d.n = x.dim(0);
  d.h = x.dim(1);
  d.w = x.dim(2);
  d.cin = x.dim(3);
  d.kh = kh;
  d.kw = kw;
  d.cout = cout;
  d.stride = stride;
  d.pad = pad;
  d.ho = (d.h + 2 * pad - kh) / stride + 1;
  d.wo = (d.w + 2 * pad - kw) / stride + 1;
  if (d.ho <= 0 || d.wo <= 0) fail("conv produces empty output");
  return d;
}

ConvDims make_conv_dims(const Shape& x, const Shape& w, std::int64_t stride, std::int64_t pad) {
  if (w.rank() != 4) fail("conv expects KKIO weights");
  ConvDims d = make_conv_dims(x, w.dim(0), w.dim(1), w.dim(3), stride, pad);
  if (w.dim(2) != d.cin) fail("conv channel mismatch");
  return d;
}

// The three lowerings below share their loop structure: iterate output
// positions (= patch rows) and kernel rows, handling each kernel row as one
// contiguous run of kw*cin elements when fully inside the image, tap by tap
// otherwise.

void im2col(const float* x, const ConvDims& d, float* cols) {
  const std::int64_t row_len = d.cols();
#pragma omp parallel for collapse(2) if (d.n * d.ho > 8)
  for (std::int64_t ni = 0; ni < d.n; ++ni) {
    for (std::int64_t oy = 0; oy < d.ho; ++oy) {
      for (std::int64_t ox = 0; ox < d.wo; ++ox) {
        float* row = cols + ((ni * d.ho + oy) * d.wo + ox) * row_len;
        for (std::int64_t ky = 0; ky < d.kh; ++ky) {
          const std::int64_t iy = oy * d.stride + ky - d.pad;
          float* dst = row + ky * d.kw * d.cin;
          if (iy < 0 || iy >= d.h) {
            std::memset(dst, 0, static_cast<std::size_t>(d.kw * d.cin) * sizeof(float));
            continue;
          }
          const std::int64_t ix0 = ox * d.stride - d.pad;
          const float* src_row = x + ((ni * d.h + iy) * d.w) * d.cin;
          if (ix0 >= 0 && ix0 + d.kw <= d.w) {
            std::memcpy(dst, src_row + ix0 * d.cin,
                        static_cast<std::size_t>(d.kw * d.cin) * sizeof(float));
            continue;
          }
          for (std::int64_t kx = 0; kx < d.kw; ++kx) {
            const std::int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= d.w) {
              std::memset(dst + kx * d.cin, 0, static_cast<std::size_t>(d.cin) * sizeof(float));
            } else {
              std::memcpy(dst + kx * d.cin, src_row + ix * d.cin,
                          static_cast<std::size_t>(d.cin) * sizeof(float));
            }
          }
        }
      }
    }
  }
}

Tensor im2col(const Tensor& x, const ConvDims& d) {
  Tensor cols(Shape{d.rows(), d.cols()});
  im2col(x.data().data(), d, cols.data().data());
  return cols;
}

void col2im(const float* cols, const ConvDims& d, float* x) {
  const std::int64_t row_len = d.cols();
  // Serial: overlapping patches scatter-add into the same image elements.
  for (std::int64_t ni = 0; ni < d.n; ++ni) {
    for (std::int64_t oy = 0; oy < d.ho; ++oy) {
      for (std::int64_t ox = 0; ox < d.wo; ++ox) {
        const float* row = cols + ((ni * d.ho + oy) * d.wo + ox) * row_len;
        for (std::int64_t ky = 0; ky < d.kh; ++ky) {
          const std::int64_t iy = oy * d.stride + ky - d.pad;
          if (iy < 0 || iy >= d.h) continue;
          const float* src = row + ky * d.kw * d.cin;
          float* dst_row = x + ((ni * d.h + iy) * d.w) * d.cin;
          const std::int64_t ix0 = ox * d.stride - d.pad;
          for (std::int64_t kx = 0; kx < d.kw; ++kx) {
            const std::int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= d.w) continue;
            float* dst = dst_row + ix * d.cin;
            const float* s = src + kx * d.cin;
            for (std::int64_t ci = 0; ci < d.cin; ++ci) dst[ci] += s[ci];
          }
        }
      }
    }
  }
}

void im2col_codes(const std::uint8_t* x, const ConvDims& d, std::uint8_t* cols,
                  std::uint8_t* mask) {
  const std::int64_t row_len = d.cols();
  for (std::int64_t ni = 0; ni < d.n; ++ni) {
    for (std::int64_t oy = 0; oy < d.ho; ++oy) {
      for (std::int64_t ox = 0; ox < d.wo; ++ox) {
        const std::int64_t base = ((ni * d.ho + oy) * d.wo + ox) * row_len;
        std::uint8_t* row = cols + base;
        std::uint8_t* mrow = mask + base;
        for (std::int64_t ky = 0; ky < d.kh; ++ky) {
          const std::int64_t iy = oy * d.stride + ky - d.pad;
          std::uint8_t* dst = row + ky * d.kw * d.cin;
          std::uint8_t* mdst = mrow + ky * d.kw * d.cin;
          if (iy < 0 || iy >= d.h) {
            std::memset(dst, 0, static_cast<std::size_t>(d.kw * d.cin));
            std::memset(mdst, 0, static_cast<std::size_t>(d.kw * d.cin));
            continue;
          }
          const std::uint8_t* src_row = x + ((ni * d.h + iy) * d.w) * d.cin;
          const std::int64_t ix0 = ox * d.stride - d.pad;
          for (std::int64_t kx = 0; kx < d.kw; ++kx) {
            const std::int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= d.w) {
              std::memset(dst + kx * d.cin, 0, static_cast<std::size_t>(d.cin));
              std::memset(mdst + kx * d.cin, 0, static_cast<std::size_t>(d.cin));
            } else {
              std::memcpy(dst + kx * d.cin, src_row + ix * d.cin,
                          static_cast<std::size_t>(d.cin));
              std::memset(mdst + kx * d.cin, 1, static_cast<std::size_t>(d.cin));
            }
          }
        }
      }
    }
  }
}

}  // namespace redcane::nn
