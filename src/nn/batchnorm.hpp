// Batch normalization over the last (channel) axis.
//
// DeepCaps [24] interleaves batch normalization with its convolutional
// capsule layers; without it, fifteen stacked squash nonlinearities
// collapse capsule lengths toward zero and gradients vanish. Training
// uses batch statistics; inference uses exponential running statistics.
//
// Running statistics are exposed through params() alongside gamma/beta so
// parameter serialization captures them; their gradients are always zero,
// which makes them a fixed point of every optimizer in src/nn.
#pragma once

#include "nn/layer.hpp"

namespace redcane::nn {

class BatchNorm final : public Layer {
 public:
  BatchNorm(std::string name, std::int64_t channels, double momentum = 0.9,
            double eps = 1e-5);

  /// x: [..., channels] — any leading shape, normalized per channel.
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override {
    return {&gamma_, &beta_, &running_mean_, &running_var_};
  }

  [[nodiscard]] std::int64_t channels() const { return channels_; }

 private:
  std::int64_t channels_;
  double momentum_;
  double eps_;
  Param gamma_;
  Param beta_;
  Param running_mean_;
  Param running_var_;

  // Forward(train) caches for backward.
  Tensor cached_xhat_;
  std::vector<double> cached_inv_std_;
};

}  // namespace redcane::nn
