#include "core/methodology.hpp"

#include <algorithm>
#include <cmath>

#include "capsnet/trainer.hpp"

namespace redcane::core {
namespace {

/// |drop| of a curve at the grid point closest to `nm`.
double drop_at(const ResilienceCurve& curve, double nm) {
  double best_dist = 1e18;
  double drop = 0.0;
  for (std::size_t i = 0; i < curve.nms.size(); ++i) {
    const double d = std::abs(curve.nms[i] - nm);
    if (d < best_dist) {
      best_dist = d;
      drop = curve.drop_pct[i];
    }
  }
  return std::abs(drop);
}

}  // namespace

double MethodologyResult::mean_mac_power_saving() const {
  double sum = 0.0;
  std::int64_t count = 0;
  for (const SiteSelection& s : selections) {
    if (s.site.kind != capsnet::OpKind::kMacOutput) continue;
    sum += s.power_saving();
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

MethodologyResult run_redcane(capsnet::CapsModel& model, const Tensor& test_x,
                              const std::vector<std::int64_t>& test_y,
                              const std::string& dataset_name, const MethodologyConfig& cfg) {
  MethodologyResult r;
  r.model_name = model.name();
  r.dataset_name = dataset_name;

  // Step 1: Group Extraction, probing with a single test image.
  const Tensor probe = capsnet::slice_rows(test_x, 0, 1);
  r.sites = extract_sites(model, probe);

  ResilienceAnalyzer analyzer(model, test_x, test_y, cfg.resilience);
  r.baseline_accuracy = analyzer.baseline();

  // Step 2: Group-Wise Resilience Analysis.
  for (capsnet::OpKind kind : all_groups()) {
    r.group_curves.push_back(analyzer.sweep_group(kind));
  }

  // Step 3: Mark Resilient Groups.
  for (std::size_t g = 0; g < r.group_curves.size(); ++g) {
    const capsnet::OpKind kind = all_groups()[g];
    if (drop_at(r.group_curves[g], cfg.mark_nm) <= cfg.mark_threshold_pct) {
      r.resilient_groups.push_back(kind);
    } else {
      r.non_resilient_groups.push_back(kind);
    }
  }

  // Step 4: Layer-Wise Resilience Analysis for Non-Resilient Groups only
  // (the paper's pruning: resilient groups skip the per-layer drill-down).
  const std::size_t grid = cfg.resilience.sweep.nms.size() -
                           (cfg.resilience.sweep.na == 0.0 ? 1 : 0);  // NM=0 is free.
  std::int64_t skipped_layer_evals = 0;
  for (capsnet::OpKind kind : all_groups()) {
    const std::vector<std::string> layers = layers_of_group(r.sites, kind);
    const bool non_resilient =
        std::find(r.non_resilient_groups.begin(), r.non_resilient_groups.end(), kind) !=
        r.non_resilient_groups.end();
    if (!non_resilient) {
      skipped_layer_evals +=
          static_cast<std::int64_t>(layers.size()) * static_cast<std::int64_t>(grid);
      continue;
    }
    for (const std::string& layer : layers) {
      r.layer_curves.push_back(analyzer.sweep_layer(kind, layer));
    }
  }
  r.evaluations_saved_by_pruning = skipped_layer_evals;

  // Step 5: Mark Resilient Layers. A layer is resilient within its group
  // when it tolerates `mark_nm` with the marking threshold.
  for (const ResilienceCurve& curve : r.layer_curves) {
    if (drop_at(curve, cfg.mark_nm) <= cfg.mark_threshold_pct) {
      r.resilient_layers.push_back(*curve.layer + "/" +
                                   capsnet::op_kind_name(curve.kind));
    }
  }

  // Step 6: Select Approximate Components per operation.
  std::vector<ProfiledComponent> profiled =
      profile_library(approx::InputDistribution::uniform(), cfg.profile_chain_length,
                      cfg.profile_samples, cfg.profile_seed);
  for (const Site& site : r.sites) {
    SiteSelection sel;
    sel.site = site;
    // Tolerable NM from the most specific curve available for this site.
    const ResilienceCurve* curve = nullptr;
    for (const ResilienceCurve& lc : r.layer_curves) {
      if (lc.kind == site.kind && lc.layer == site.layer) {
        curve = &lc;
        break;
      }
    }
    if (curve == nullptr) {
      for (const ResilienceCurve& gc : r.group_curves) {
        if (gc.kind == site.kind) {
          curve = &gc;
          break;
        }
      }
    }
    sel.tolerable_nm = curve ? curve->tolerable_nm(cfg.tolerance_pct) : 0.0;
    sel.component = select_component(profiled, sel.tolerable_nm);
    r.selections.push_back(sel);
  }
  r.profiled = std::move(profiled);

  r.evaluations_run = analyzer.evaluations();
  r.sweep_stats = analyzer.engine_stats();
  return r;
}

}  // namespace redcane::core
