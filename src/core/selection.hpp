// Step 6 of ReD-CaNe: Select Approximate Components.
//
// Each operation's tolerable noise magnitude (from Steps 2-5) is matched
// against the profiled NM of every library component; the lowest-power
// component whose NM fits is selected — "more aggressive approximations
// are selected for more resilient operations" (paper Sec. IV).
#pragma once

#include <string>
#include <vector>

#include "approx/error_profile.hpp"
#include "approx/library.hpp"
#include "core/groups.hpp"

namespace redcane::core {

/// A library component with its profiled noise parameters.
struct ProfiledComponent {
  const approx::Multiplier* mul = nullptr;  ///< Profiled component (library-owned).
  double nm = 0.0;            ///< Noise magnitude, std(Δ)/R(X) (dimensionless).
  double na = 0.0;            ///< Noise average, mean(Δ)/R(X) (dimensionless).
  bool gaussian_like = true;  ///< Error histogram close to its Gaussian fit.
};

/// Profiles every library multiplier once under `dist` with `chain_length`
/// MACs per sample (9 for 3x3 kernels, 81 for 9x9; paper Sec. III-B).
[[nodiscard]] std::vector<ProfiledComponent> profile_library(
    const approx::InputDistribution& dist, int chain_length, std::int64_t samples,
    std::uint64_t seed);

/// The lowest-power Gaussian-like component with nm <= tolerable_nm and
/// |na| <= tolerable_nm. Always succeeds: the exact multiplier has nm = 0.
[[nodiscard]] const approx::Multiplier* select_component(
    const std::vector<ProfiledComponent>& profiled, double tolerable_nm);

/// One operation's final choice.
struct SiteSelection {
  Site site;                  ///< The (layer, kind) operation being approximated.
  double tolerable_nm = 0.0;  ///< NM budget from Steps 3/5 (dimensionless).
  const approx::Multiplier* component = nullptr;  ///< Selected library component.

  /// Selected component's power saving vs the exact multiplier, as a
  /// fraction in [0, 1) (0 when no component is selected).
  [[nodiscard]] double power_saving() const;
};

}  // namespace redcane::core
