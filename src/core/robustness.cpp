// Step 8 of the extended methodology: adversarial & affine robustness
// scenarios crossed with the approximation axes (see methodology.hpp).
#include "core/methodology.hpp"

namespace redcane::core {

RobustnessConfig RobustnessConfig::defaults() {
  RobustnessConfig rc;

  attack::Scenario fgsm;
  fgsm.kind = attack::AttackKind::kFgsm;
  fgsm.severities = {0.02, 0.05, 0.1};

  attack::Scenario pgd;
  pgd.kind = attack::AttackKind::kPgd;
  pgd.severities = {0.02, 0.05};
  pgd.pgd_steps = 5;

  attack::Scenario rotate;
  rotate.kind = attack::AttackKind::kRotate;
  rotate.severities = {5.0, 15.0, 30.0};

  rc.scenarios = {fgsm, pgd, rotate};
  return rc;
}

RobustnessResult analyze_robustness(capsnet::CapsModel& model, const Tensor& test_x,
                                    const std::vector<std::int64_t>& test_y,
                                    const RobustnessConfig& rcfg,
                                    const ResilienceConfig& cfg) {
  ResilienceAnalyzer analyzer(model, test_x, test_y, cfg);
  RobustnessResult result;
  result.baseline_accuracy = analyzer.baseline();
  for (const attack::Scenario& scenario : rcfg.scenarios) {
    result.grids.push_back(analyzer.sweep_attack_exact(scenario));
    result.grids.push_back(analyzer.sweep_attack_noise(scenario, rcfg.noise_group));
    if (!rcfg.emulated_components.empty()) {
      result.grids.push_back(analyzer.sweep_attack_emulated(
          scenario, rcfg.emulated_components, rcfg.bits));
    }
  }
  result.sweep_stats = analyzer.engine_stats();
  return result;
}

}  // namespace redcane::core
