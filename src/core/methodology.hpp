// The complete 6-step ReD-CaNe methodology (paper Fig. 7):
//
//   1. Group Extraction
//   2. Group-Wise Resilience Analysis
//   3. Mark Resilient Groups
//   4. Layer-Wise Resilience Analysis for Non-Resilient Groups
//   5. Mark Resilient Layers for Each Non-Resilient Group
//   6. Select Approximate Components
//
// Output: the design of an approximate CapsNet — a per-operation choice of
// approximate multiplier plus the projected energy of the approximated
// inference.
//
// This repository adds a Step 7 the paper only gestures at: noise-model
// cross-validation. Every Step-6 MAC selection is executed twice over the
// test set — once as the Gaussian noise model that drove the analysis
// (NoiseBackend) and once as ground-truth behavioral emulation through the
// quantized LUT datapath (EmulatedBackend) — and the per-selection
// predicted-vs-emulated accuracy deltas certify (or flag) the additive-
// noise assumption underlying Steps 2-6. See cross_validate_design below.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "capsnet/model.hpp"
#include "core/resilience.hpp"
#include "core/selection.hpp"

namespace redcane::core {

struct MethodologyConfig {
  ResilienceConfig resilience;
  /// A group is marked resilient when its |drop| at `mark_nm` stays within
  /// `mark_threshold_pct` percentage points (Step 3). The paper marks
  /// softmax and logits update, whose curves are flat at NM = 0.05 where
  /// MAC outputs / activations already lose tens of percent.
  double mark_nm = 0.05;            ///< Marking grid point (NM, dimensionless).
  double mark_threshold_pct = 2.0;  ///< Marking threshold [percentage points].
  /// Accuracy-drop budget per operation when picking its tolerable NM
  /// (Steps 3/5 -> 6) [percentage points].
  double tolerance_pct = 1.0;
  /// MACs per profiling sample (9 for 3x3 kernels, 81 for 9x9; Step 6).
  int profile_chain_length = 9;
  std::int64_t profile_samples = 20000;  ///< Profiling samples per component.
  std::uint64_t profile_seed = 7;        ///< Profiling RNG seed.
};

/// One Step-7 row: a Step-6 MAC selection executed as the noise model and
/// as behavioral emulation.
struct CrossValidationEntry {
  Site site;              ///< The MAC-output operation cross-validated.
  std::string component;  ///< Selected multiplier, e.g. "axm_drum4".
  double nm = 0.0;        ///< Profiled noise magnitude the prediction used.
  double na = 0.0;        ///< Profiled noise average the prediction used.
  /// Test accuracy with the component's NM/NA injected at this site only
  /// (the model the methodology optimized against), in [0, 1].
  double predicted_accuracy = 0.0;
  /// Test accuracy with this site executed behaviorally (quantized u8
  /// codes through the component's LUT), everything else exact, in [0, 1].
  double emulated_accuracy = 0.0;

  /// Emulated minus predicted [percentage points].
  [[nodiscard]] double delta_pp() const {
    return (emulated_accuracy - predicted_accuracy) * 100.0;
  }
};

/// Step-7 output: per-selection deltas plus the joint design executed both
/// ways.
struct CrossValidationResult {
  double baseline_accuracy = 0.0;  ///< Clean accuracy of the same test set.
  double predicted_joint = 0.0;    ///< All selections' noise injected together.
  double emulated_joint = 0.0;     ///< All MAC sites emulated together.
  std::vector<CrossValidationEntry> entries;  ///< One per MAC-output selection.

  [[nodiscard]] double joint_delta_pp() const {
    return (emulated_joint - predicted_joint) * 100.0;
  }
  /// Largest per-selection |delta| [percentage points] (0 when empty).
  [[nodiscard]] double max_abs_delta_pp() const;
};

struct CrossValidateConfig {
  std::uint64_t seed = 2020;     ///< Noise-model stream base seed.
  std::int64_t eval_batch = 64;  ///< Evaluation batch size (both sides).
  int threads = 0;               ///< Sweep-engine worker override (0 = env/hw).
  int bits = 8;                  ///< Emulated operand wordlength.
  /// Behavioral accumulator adder by library name ("" = exact
  /// accumulation — the paper's setting, where adders stay exact).
  std::string adder;
};

/// Step-8 configuration (beyond the paper): which attack / transform
/// scenarios to cross with which approximation axes.
struct RobustnessConfig {
  std::vector<attack::Scenario> scenarios;
  /// Operation group receiving the approximation noise on the noise axis.
  capsnet::OpKind noise_group = capsnet::OpKind::kMacOutput;
  /// Emulated-backend components for the (severity × component) grids;
  /// empty = no emulated grids. Unknown names are skipped with a note.
  std::vector<std::string> emulated_components;
  int bits = 8;  ///< Emulated operand wordlength.

  /// FGSM + PGD + rotation severity axes (RobCaps-style magnitudes).
  [[nodiscard]] static RobustnessConfig defaults();
};

/// Step-8 output: one grid per (scenario, backend) pair actually run.
struct RobustnessResult {
  double baseline_accuracy = 0.0;  ///< Clean, unattacked accuracy in [0, 1].
  std::vector<RobustnessGrid> grids;
  /// Engine counters of the robustness sweeps — input_sets /
  /// input_cache_hits report the input-batch-keyed cache behavior.
  SweepEngineStats sweep_stats;
};

struct MethodologyResult {
  std::string model_name;          ///< e.g. "CapsNet", "DeepCaps".
  std::string dataset_name;        ///< e.g. "MNIST(synthetic)".
  double baseline_accuracy = 0.0;  ///< Clean test accuracy, fraction in [0, 1].

  std::vector<Site> sites;                     // Step 1.
  std::vector<ResilienceCurve> group_curves;   // Step 2.
  std::vector<capsnet::OpKind> resilient_groups;      // Step 3.
  std::vector<capsnet::OpKind> non_resilient_groups;  // Step 3.
  std::vector<ResilienceCurve> layer_curves;   // Step 4 (non-resilient groups only).
  std::vector<std::string> resilient_layers;   // Step 5 ("layer/kind" keys).
  std::vector<SiteSelection> selections;       // Step 6, one per site.
  /// The library profile Step 6 selected from (one entry per component,
  /// library order) — reuse this wherever a selection's NM/NA is needed
  /// (deployment manifests, design validation) instead of re-profiling.
  std::vector<ProfiledComponent> profiled;

  /// Step 7 (filled by cross_validate_design when run; see
  /// has_cross_validation).
  CrossValidationResult cross_validation;
  bool has_cross_validation = false;

  /// Step 8 (filled by analyze_robustness when run; see has_robustness).
  RobustnessResult robustness;
  bool has_robustness = false;

  std::int64_t evaluations_run = 0;
  std::int64_t evaluations_saved_by_pruning = 0;  ///< D3: Step-4 restriction.
  /// Sweep-engine counters over Steps 2+4 (core/sweep_engine.hpp): noisy
  /// batch forwards resumed from a cached clean prefix, stage executions
  /// skipped vs. what a full-forward driver would have run, and the worker
  /// count the sweeps ran on.
  SweepEngineStats sweep_stats;

  /// Mean selected power saving over MAC-output sites (the multiplier
  /// datapath the paper targets), as a fraction in [0, 1).
  [[nodiscard]] double mean_mac_power_saving() const;
};

/// Runs the full flow on a trained model + test set.
[[nodiscard]] MethodologyResult run_redcane(capsnet::CapsModel& model, const Tensor& test_x,
                                            const std::vector<std::int64_t>& test_y,
                                            const std::string& dataset_name,
                                            const MethodologyConfig& cfg);

/// Step 7: cross-validates a finished design's noise model against full-
/// network behavioral emulation (src/core/cross_validate.cpp). For every
/// Step-6 MAC-output selection it measures the test accuracy predicted by
/// the component's profiled NM/NA noise (the quantity Steps 2-6 optimized)
/// and the accuracy of actually executing that site through the
/// component's quantized LUT datapath, plus both joint deployments.
/// `design` must carry selections and the library profile (a run_redcane
/// output); the model and test set must be the ones the design was made
/// on. Attach the result to MethodologyResult::cross_validation to have
/// reports and JSON exports include it.
[[nodiscard]] CrossValidationResult cross_validate_design(
    capsnet::CapsModel& model, const Tensor& test_x,
    const std::vector<std::int64_t>& test_y, const MethodologyResult& design,
    const CrossValidateConfig& cfg);

/// Step 8: adversarial & affine robustness × approximation
/// (src/core/robustness.cpp). For every configured scenario it produces an
/// exact-backend severity curve, a (severity × NM) noise-model grid over
/// `rcfg.noise_group`, and — when components are given — a (severity ×
/// component) emulated grid, answering whether approximation masks or
/// amplifies adversarial/affine fragility. All grids share one engine, so
/// each perturbed input set is generated once and every point over it
/// replays cached suffixes; output is bit-identical serial vs parallel and
/// across thread counts. Attach the result to MethodologyResult::robustness
/// to have reports and JSON exports include it.
[[nodiscard]] RobustnessResult analyze_robustness(capsnet::CapsModel& model,
                                                  const Tensor& test_x,
                                                  const std::vector<std::int64_t>& test_y,
                                                  const RobustnessConfig& rcfg,
                                                  const ResilienceConfig& cfg);

}  // namespace redcane::core
