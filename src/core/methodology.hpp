// The complete 6-step ReD-CaNe methodology (paper Fig. 7):
//
//   1. Group Extraction
//   2. Group-Wise Resilience Analysis
//   3. Mark Resilient Groups
//   4. Layer-Wise Resilience Analysis for Non-Resilient Groups
//   5. Mark Resilient Layers for Each Non-Resilient Group
//   6. Select Approximate Components
//
// Output: the design of an approximate CapsNet — a per-operation choice of
// approximate multiplier plus the projected energy of the approximated
// inference.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "capsnet/model.hpp"
#include "core/resilience.hpp"
#include "core/selection.hpp"

namespace redcane::core {

struct MethodologyConfig {
  ResilienceConfig resilience;
  /// A group is marked resilient when its |drop| at `mark_nm` stays within
  /// `mark_threshold_pct` percentage points (Step 3). The paper marks
  /// softmax and logits update, whose curves are flat at NM = 0.05 where
  /// MAC outputs / activations already lose tens of percent.
  double mark_nm = 0.05;            ///< Marking grid point (NM, dimensionless).
  double mark_threshold_pct = 2.0;  ///< Marking threshold [percentage points].
  /// Accuracy-drop budget per operation when picking its tolerable NM
  /// (Steps 3/5 -> 6) [percentage points].
  double tolerance_pct = 1.0;
  /// MACs per profiling sample (9 for 3x3 kernels, 81 for 9x9; Step 6).
  int profile_chain_length = 9;
  std::int64_t profile_samples = 20000;  ///< Profiling samples per component.
  std::uint64_t profile_seed = 7;        ///< Profiling RNG seed.
};

struct MethodologyResult {
  std::string model_name;          ///< e.g. "CapsNet", "DeepCaps".
  std::string dataset_name;        ///< e.g. "MNIST(synthetic)".
  double baseline_accuracy = 0.0;  ///< Clean test accuracy, fraction in [0, 1].

  std::vector<Site> sites;                     // Step 1.
  std::vector<ResilienceCurve> group_curves;   // Step 2.
  std::vector<capsnet::OpKind> resilient_groups;      // Step 3.
  std::vector<capsnet::OpKind> non_resilient_groups;  // Step 3.
  std::vector<ResilienceCurve> layer_curves;   // Step 4 (non-resilient groups only).
  std::vector<std::string> resilient_layers;   // Step 5 ("layer/kind" keys).
  std::vector<SiteSelection> selections;       // Step 6, one per site.
  /// The library profile Step 6 selected from (one entry per component,
  /// library order) — reuse this wherever a selection's NM/NA is needed
  /// (deployment manifests, design validation) instead of re-profiling.
  std::vector<ProfiledComponent> profiled;

  std::int64_t evaluations_run = 0;
  std::int64_t evaluations_saved_by_pruning = 0;  ///< D3: Step-4 restriction.
  /// Sweep-engine counters over Steps 2+4 (core/sweep_engine.hpp): noisy
  /// batch forwards resumed from a cached clean prefix, stage executions
  /// skipped vs. what a full-forward driver would have run, and the worker
  /// count the sweeps ran on.
  SweepEngineStats sweep_stats;

  /// Mean selected power saving over MAC-output sites (the multiplier
  /// datapath the paper targets), as a fraction in [0, 1).
  [[nodiscard]] double mean_mac_power_saving() const;
};

/// Runs the full flow on a trained model + test set.
[[nodiscard]] MethodologyResult run_redcane(capsnet::CapsModel& model, const Tensor& test_x,
                                            const std::vector<std::int64_t>& test_y,
                                            const std::string& dataset_name,
                                            const MethodologyConfig& cfg);

}  // namespace redcane::core
