#include "core/export.hpp"

#include <cstdio>
#include <memory>

namespace redcane::core {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Minimal JSON string escaping (our identifiers are ASCII; quotes and
/// backslashes are escaped for safety).
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string curve_to_json(const ResilienceCurve& c) {
  std::string out = "{";
  out += "\"label\":" + json_str(c.label);
  out += ",\"kind\":" + json_str(capsnet::op_kind_name(c.kind));
  out += ",\"layer\":" + (c.layer ? json_str(*c.layer) : "null");
  out += ",\"nm\":[";
  for (std::size_t i = 0; i < c.nms.size(); ++i) {
    if (i != 0) out += ',';
    out += fmt_double(c.nms[i]);
  }
  out += "],\"drop_pct\":[";
  for (std::size_t i = 0; i < c.drop_pct.size(); ++i) {
    if (i != 0) out += ',';
    out += fmt_double(c.drop_pct[i]);
  }
  out += "]}";
  return out;
}

std::string robustness_grid_to_json(const RobustnessGrid& g) {
  std::string out = "{";
  out += "\"scenario\":" + json_str(g.scenario);
  out += ",\"backend\":" + json_str(g.backend);
  out += ",\"severities\":[";
  for (std::size_t i = 0; i < g.severities.size(); ++i) {
    if (i != 0) out += ',';
    out += fmt_double(g.severities[i]);
  }
  out += "],\"nm\":[";
  for (std::size_t i = 0; i < g.nms.size(); ++i) {
    if (i != 0) out += ',';
    out += fmt_double(g.nms[i]);
  }
  out += "],\"components\":[";
  for (std::size_t i = 0; i < g.components.size(); ++i) {
    if (i != 0) out += ',';
    out += json_str(g.components[i]);
  }
  // Row-major [severity][column], matching RobustnessGrid::at.
  out += "],\"accuracy\":[";
  for (std::size_t i = 0; i < g.accuracy.size(); ++i) {
    if (i != 0) out += ',';
    out += fmt_double(g.accuracy[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

std::string curves_to_csv(const std::vector<ResilienceCurve>& curves) {
  std::string out = "label,kind,layer,nm,drop_pct\n";
  for (const ResilienceCurve& c : curves) {
    for (std::size_t i = 0; i < c.nms.size(); ++i) {
      out += c.label + "," + capsnet::op_kind_name(c.kind) + "," + c.layer.value_or("") +
             "," + fmt_double(c.nms[i]) + "," + fmt_double(c.drop_pct[i]) + "\n";
    }
  }
  return out;
}

std::string selections_to_csv(const std::vector<SiteSelection>& selections) {
  std::string out = "layer,kind,tolerable_nm,component,power_uw,power_saving\n";
  for (const SiteSelection& s : selections) {
    out += s.site.layer + "," + capsnet::op_kind_name(s.site.kind) + "," +
           fmt_double(s.tolerable_nm) + "," +
           (s.component ? s.component->info().name : "") + "," +
           (s.component ? fmt_double(s.component->info().power_uw) : "") + "," +
           fmt_double(s.power_saving()) + "\n";
  }
  return out;
}

std::string profiles_to_csv(const std::vector<ProfiledComponent>& profiled) {
  std::string out = "name,family,analog,power_uw,area_um2,nm,na,gaussian_like\n";
  for (const ProfiledComponent& p : profiled) {
    const approx::MultiplierInfo& info = p.mul->info();
    out += info.name + "," + info.family + "," + info.paper_analog + "," +
           fmt_double(info.power_uw) + "," + fmt_double(info.area_um2) + "," +
           fmt_double(p.nm) + "," + fmt_double(p.na) + "," +
           (p.gaussian_like ? "1" : "0") + "\n";
  }
  return out;
}

std::string result_to_json(const MethodologyResult& r) {
  std::string out = "{";
  out += "\"model\":" + json_str(r.model_name);
  out += ",\"dataset\":" + json_str(r.dataset_name);
  out += ",\"baseline_accuracy\":" + fmt_double(r.baseline_accuracy);

  out += ",\"sites\":[";
  for (std::size_t i = 0; i < r.sites.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"layer\":" + json_str(r.sites[i].layer) +
           ",\"kind\":" + json_str(capsnet::op_kind_name(r.sites[i].kind)) + "}";
  }
  out += "]";

  out += ",\"group_curves\":[";
  for (std::size_t i = 0; i < r.group_curves.size(); ++i) {
    if (i != 0) out += ',';
    out += curve_to_json(r.group_curves[i]);
  }
  out += "]";

  out += ",\"layer_curves\":[";
  for (std::size_t i = 0; i < r.layer_curves.size(); ++i) {
    if (i != 0) out += ',';
    out += curve_to_json(r.layer_curves[i]);
  }
  out += "]";

  out += ",\"resilient_groups\":[";
  for (std::size_t i = 0; i < r.resilient_groups.size(); ++i) {
    if (i != 0) out += ',';
    out += json_str(capsnet::op_kind_name(r.resilient_groups[i]));
  }
  out += "]";

  out += ",\"selections\":[";
  for (std::size_t i = 0; i < r.selections.size(); ++i) {
    const SiteSelection& s = r.selections[i];
    if (i != 0) out += ',';
    out += "{\"layer\":" + json_str(s.site.layer) +
           ",\"kind\":" + json_str(capsnet::op_kind_name(s.site.kind)) +
           ",\"tolerable_nm\":" + fmt_double(s.tolerable_nm) +
           ",\"component\":" + json_str(s.component ? s.component->info().name : "") +
           ",\"power_saving\":" + fmt_double(s.power_saving()) + "}";
  }
  out += "]";

  if (r.has_cross_validation) {
    const CrossValidationResult& cv = r.cross_validation;
    out += ",\"cross_validation\":{";
    out += "\"baseline_accuracy\":" + fmt_double(cv.baseline_accuracy);
    out += ",\"predicted_joint\":" + fmt_double(cv.predicted_joint);
    out += ",\"emulated_joint\":" + fmt_double(cv.emulated_joint);
    out += ",\"joint_delta_pp\":" + fmt_double(cv.joint_delta_pp());
    out += ",\"max_abs_delta_pp\":" + fmt_double(cv.max_abs_delta_pp());
    out += ",\"entries\":[";
    for (std::size_t i = 0; i < cv.entries.size(); ++i) {
      const CrossValidationEntry& e = cv.entries[i];
      if (i != 0) out += ',';
      out += "{\"layer\":" + json_str(e.site.layer) +
             ",\"component\":" + json_str(e.component) +
             ",\"nm\":" + fmt_double(e.nm) + ",\"na\":" + fmt_double(e.na) +
             ",\"predicted_accuracy\":" + fmt_double(e.predicted_accuracy) +
             ",\"emulated_accuracy\":" + fmt_double(e.emulated_accuracy) +
             ",\"delta_pp\":" + fmt_double(e.delta_pp()) + "}";
    }
    out += "]}";
  }

  if (r.has_robustness) {
    const RobustnessResult& rb = r.robustness;
    out += ",\"robustness\":{";
    out += "\"baseline_accuracy\":" + fmt_double(rb.baseline_accuracy);
    out += ",\"input_sets\":" + std::to_string(rb.sweep_stats.input_sets);
    out += ",\"input_cache_hits\":" + std::to_string(rb.sweep_stats.input_cache_hits);
    out += ",\"input_hit_rate\":" + fmt_double(rb.sweep_stats.input_hit_rate());
    out += ",\"grids\":[";
    for (std::size_t i = 0; i < rb.grids.size(); ++i) {
      if (i != 0) out += ',';
      out += robustness_grid_to_json(rb.grids[i]);
    }
    out += "]}";
  }

  out += ",\"evaluations_run\":" + std::to_string(r.evaluations_run);
  out += ",\"evaluations_saved\":" + std::to_string(r.evaluations_saved_by_pruning);
  out += ",\"sweep_threads\":" + std::to_string(r.sweep_stats.threads);
  out += ",\"sweep_cache_hits\":" + std::to_string(r.sweep_stats.cache_hits);
  out += ",\"sweep_stages_skipped\":" + std::to_string(r.sweep_stats.stages_skipped);
  out += ",\"sweep_stages_total\":" + std::to_string(r.sweep_stats.stages_total);
  out += ",\"mean_mac_power_saving\":" + fmt_double(r.mean_mac_power_saving());
  out += "}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  struct Closer {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  const std::unique_ptr<std::FILE, Closer> f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  return std::fwrite(content.data(), 1, content.size(), f.get()) == content.size();
}

}  // namespace redcane::core
