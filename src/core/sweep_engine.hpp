// Parallel resilience-sweep engine with prefix-activation caching.
//
// A ReD-CaNe sweep evaluates one trained model over one test set at many
// independent (injection rules, NM) grid points. Two structural facts make
// the serial driver wasteful:
//
//  1. Points are independent: each gets its own seed-salted
//     GaussianInjector, so the curves do not depend on execution order.
//     The engine runs points concurrently on a worker pool and still
//     produces bit-identical curves.
//  2. Noise injected at a site cannot change activations computed before
//     it. The engine records the clean stage-boundary activations of every
//     test batch once (CapsModel::forward_range with record=true) and
//     replays only the suffix from the first stage whose sites a point's
//     rules can match.
//
// Worker count: SweepEngineConfig::threads, else the REDCANE_SWEEP_THREADS
// environment variable, else std::thread::hardware_concurrency().
//
// Contracts:
//  * The model and test set must not change for the lifetime of the
//    engine: prefixes are recorded once and replayed against the weights
//    they were computed with. Rebuild the engine (or analyzer) after
//    mutating weights.
//  * With prefix_cache on, the engine holds every stage-boundary
//    activation of the test set (O(num_stages x test-set activations)).
//    That is by design for the tiny sweep profiles this repo runs
//    (DESIGN.md §4); for full-scale models either sweep a subsample or
//    set prefix_cache = false, which records nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "capsnet/model.hpp"
#include "noise/injector.hpp"

namespace redcane::core {

/// Salt mixing constant shared by every sweep driver: point seed =
/// base seed ^ (salt * kSaltMix). Home is backend/backend.hpp (the lowest
/// layer that salts streams); this alias keeps every core-level seeding
/// site reading the same constant the backends use, so the engine
/// reproduces the serial analyzer's — and the serving runtime's —
/// per-point noise streams.
inline constexpr std::uint64_t kSaltMix = backend::kSaltMix;

struct SweepEngineConfig {
  std::uint64_t seed = 2020;
  std::int64_t eval_batch = 64;
  /// Worker threads; 0 = REDCANE_SWEEP_THREADS env var, else hardware
  /// concurrency.
  int threads = 0;
  /// Replay noisy points from cached clean prefixes instead of running the
  /// full network. Off = every point is a full forward (the pre-engine
  /// behavior, still bit-identical).
  bool prefix_cache = true;
};

/// Exploration-cost counters of one engine lifetime.
struct SweepEngineStats {
  std::int64_t evaluations = 0;     ///< Noisy test-set evaluations run.
  std::int64_t cache_hits = 0;      ///< Batch forwards resumed from a cached prefix.
  std::int64_t stages_skipped = 0;  ///< Stage executions avoided by prefix caching.
  std::int64_t stages_total = 0;    ///< Stage executions a full-forward driver would run.
  int threads = 1;                  ///< Resolved worker count.

  /// Fraction of stage executions skipped, in [0, 1].
  [[nodiscard]] double skip_fraction() const {
    return stages_total == 0 ? 0.0
                             : static_cast<double>(stages_skipped) /
                                   static_cast<double>(stages_total);
  }
};

/// One grid point: the injection rules and the salt of its noise stream.
struct SweepPointSpec {
  std::vector<noise::InjectionRule> rules;
  std::uint64_t salt = 0;
};

class SweepEngine {
 public:
  SweepEngine(capsnet::CapsModel& model, const Tensor& test_x,
              const std::vector<std::int64_t>& test_y, SweepEngineConfig cfg);

  /// Clean test accuracy in [0, 1]. The first call runs the recording
  /// forward that seeds the prefix cache; later calls are free.
  [[nodiscard]] double clean_accuracy();

  /// Accuracy of one noisy point (prefix-cached replay when possible).
  [[nodiscard]] double point_accuracy(const std::vector<noise::InjectionRule>& rules,
                                      std::uint64_t salt);

  /// Runs all points, concurrently when threads > 1, and returns their
  /// accuracies in point order — bit-identical to calling point_accuracy
  /// on each point serially.
  [[nodiscard]] std::vector<double> run_points(const std::vector<SweepPointSpec>& points);

  /// Accuracy of one execution backend over the engine's test batches.
  /// Hook-expressible backends (ExecBackend::rules() non-null) replay from
  /// the clean prefix cache exactly like point_accuracy; opaque backends
  /// (e.g. EmulatedBackend, whose planned layers re-execute from the input
  /// on) run full batched forwards through ExecBackend::run. This is the
  /// evaluation entry Step 7's noise-model cross-validation drives.
  [[nodiscard]] double backend_accuracy(const backend::ExecBackend& b, std::uint64_t salt);

  [[nodiscard]] const SweepEngineStats& stats() const { return stats_; }
  [[nodiscard]] const SweepEngineConfig& config() const { return cfg_; }

  /// Resolves cfg.threads / REDCANE_SWEEP_THREADS / hardware_concurrency.
  [[nodiscard]] static int resolve_threads(int requested);

 private:
  void ensure_prepared();
  /// First stage whose sites any rule can match (num_stages() for none —
  /// the point then cannot perturb anything and replays nothing).
  [[nodiscard]] int first_affected_stage(const std::vector<noise::InjectionRule>& rules) const;
  /// One rule-expressible backend execution over all batches, prefix-
  /// replayed (b.rules() must be non-null; the hook comes from
  /// b.make_hook(salt), so the backend's own stream seeding is honored).
  [[nodiscard]] double eval_point(const backend::ExecBackend& b, std::uint64_t salt,
                                  SweepEngineStats& stats) const;

  capsnet::CapsModel& model_;
  const Tensor& test_x_;
  const std::vector<std::int64_t>& test_y_;
  SweepEngineConfig cfg_;

  bool prepared_ = false;
  double clean_accuracy_ = 0.0;
  std::vector<Tensor> batch_x_;                        ///< Test batches.
  std::vector<std::vector<std::int64_t>> batch_y_;     ///< Labels per batch.
  std::vector<capsnet::StageState> checkpoints_;       ///< Clean prefixes per batch.
  std::vector<std::pair<std::string, capsnet::OpKind>> site_stage_keys_;
  std::vector<int> site_stage_vals_;                   ///< Parallel to keys: first stage.
  SweepEngineStats stats_;
};

}  // namespace redcane::core
