// Parallel resilience-sweep engine with prefix-activation caching.
//
// A ReD-CaNe sweep evaluates one trained model over one test set at many
// independent (injection rules, NM) grid points. Two structural facts make
// the serial driver wasteful:
//
//  1. Points are independent: each gets its own seed-salted
//     GaussianInjector, so the curves do not depend on execution order.
//     The engine runs points concurrently on a worker pool and still
//     produces bit-identical curves.
//  2. Noise injected at a site cannot change activations computed before
//     it. The engine records the clean stage-boundary activations of every
//     test batch once (CapsModel::forward_range with record=true) and
//     replays only the suffix from the first stage whose sites a point's
//     rules can match.
//
// Step-8 robustness scenarios add a third axis: input perturbations
// (adversarial attacks, affine transforms) that enter at stage 0. A
// perturbed input invalidates every downstream activation, so the engine
// keeps an input-batch-keyed variant of the prefix cache: one EvalSet
// (perturbed batches + their clean stage checkpoints + attacked accuracy)
// per canonical AttackSpec::key(). Building a set costs one attack
// generation plus one recording pass; every grid point sharing the spec —
// the whole noise axis of a robustness grid row — then replays suffixes
// from it exactly as clean points do. Gradient attacks run train-mode
// forwards on the shared model, so sets are built serially on the
// coordinating thread before any worker spawns.
//
// Worker count: SweepEngineConfig::threads, else the REDCANE_SWEEP_THREADS
// environment variable, else std::thread::hardware_concurrency().
//
// Contracts:
//  * The model and test set must not change for the lifetime of the
//    engine: prefixes are recorded once and replayed against the weights
//    they were computed with. Rebuild the engine (or analyzer) after
//    mutating weights. (Train-mode attack forwards mutate layer caches,
//    not weights, so they do not invalidate recorded prefixes.)
//  * With prefix_cache on, the engine holds every stage-boundary
//    activation of the test set — once per cached attack spec. The
//    perturbed-set cache is LRU-bounded by
//    SweepEngineConfig::input_cache_budget (bytes of batches +
//    checkpoints); evicted specs rebuild bitwise identically on the next
//    request (attack generation is RNG-free). The clean base set is
//    always held. For full-scale models either sweep a subsample, shrink
//    the budget, or set prefix_cache = false, which records nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "attack/attack.hpp"
#include "backend/backend.hpp"
#include "capsnet/model.hpp"
#include "noise/injector.hpp"

namespace redcane::core {

/// Salt mixing constant shared by every sweep driver: point seed =
/// base seed ^ (salt * kSaltMix). Home is backend/backend.hpp (the lowest
/// layer that salts streams); this alias keeps every core-level seeding
/// site reading the same constant the backends use, so the engine
/// reproduces the serial analyzer's — and the serving runtime's —
/// per-point noise streams.
inline constexpr std::uint64_t kSaltMix = backend::kSaltMix;

struct SweepEngineConfig {
  std::uint64_t seed = 2020;
  std::int64_t eval_batch = 64;
  /// Worker threads; 0 = REDCANE_SWEEP_THREADS env var, else hardware
  /// concurrency.
  int threads = 0;
  /// Replay noisy points from cached clean prefixes instead of running the
  /// full network. Off = every point is a full forward (the pre-engine
  /// behavior, still bit-identical).
  bool prefix_cache = true;
  /// Byte budget of the input-batch-keyed (attacked) EvalSet cache. Sets
  /// are evicted least-recently-used once the cached batches + checkpoints
  /// exceed it; the set being built/used is never evicted, so the budget
  /// bounds steady-state memory, not a single set. Re-evaluating an
  /// evicted spec rebuilds it bitwise identically (attacks are RNG-free).
  /// <= 0 = unbounded (the pre-LRU behavior). The clean base set is not
  /// part of this cache and never evicts.
  std::int64_t input_cache_budget = std::int64_t{256} << 20;
};

/// Exploration-cost counters of one engine lifetime.
struct SweepEngineStats {
  std::int64_t evaluations = 0;     ///< Noisy test-set evaluations run.
  std::int64_t cache_hits = 0;      ///< Batch forwards resumed from a cached prefix.
  std::int64_t stages_skipped = 0;  ///< Stage executions avoided by prefix caching.
  std::int64_t stages_total = 0;    ///< Stage executions a full-forward driver would run.
  std::int64_t input_sets = 0;      ///< Perturbed eval sets built (input-keyed cache misses).
  std::int64_t input_cache_hits = 0;  ///< Evaluations served by an already-built set.
  std::int64_t input_evictions = 0;   ///< Perturbed sets evicted by the LRU byte budget.
  std::int64_t input_cache_bytes = 0; ///< Current bytes held by cached perturbed sets.
  int threads = 1;                  ///< Resolved worker count.

  /// Fraction of stage executions skipped, in [0, 1].
  [[nodiscard]] double skip_fraction() const {
    return stages_total == 0 ? 0.0
                             : static_cast<double>(stages_skipped) /
                                   static_cast<double>(stages_total);
  }

  /// Fraction of input-keyed lookups served without regenerating the
  /// attack (a robustness grid with P noise points per severity row should
  /// approach (P-1)/P), in [0, 1].
  [[nodiscard]] double input_hit_rate() const {
    const std::int64_t lookups = input_sets + input_cache_hits;
    return lookups == 0 ? 0.0
                        : static_cast<double>(input_cache_hits) /
                              static_cast<double>(lookups);
  }
};

/// One grid point: the injection rules and the salt of its noise stream.
struct SweepPointSpec {
  std::vector<noise::InjectionRule> rules;
  std::uint64_t salt = 0;
};

class SweepEngine {
 public:
  SweepEngine(capsnet::CapsModel& model, const Tensor& test_x,
              const std::vector<std::int64_t>& test_y, SweepEngineConfig cfg);

  /// Flushes the engine's lifetime stats into the process-wide `sweep_*`
  /// metrics registry (obs/metrics.hpp) — one batched mirror instead of
  /// per-evaluation registry traffic on the sweep hot path.
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Clean test accuracy in [0, 1]. The first call runs the recording
  /// forward that seeds the prefix cache; later calls are free.
  [[nodiscard]] double clean_accuracy();

  /// Accuracy of one noisy point (prefix-cached replay when possible).
  [[nodiscard]] double point_accuracy(const std::vector<noise::InjectionRule>& rules,
                                      std::uint64_t salt);

  /// Runs all points, concurrently when threads > 1, and returns their
  /// accuracies in point order — bit-identical to calling point_accuracy
  /// on each point serially.
  [[nodiscard]] std::vector<double> run_points(const std::vector<SweepPointSpec>& points);

  /// Accuracy of one execution backend over the engine's test batches.
  /// Hook-expressible backends (ExecBackend::rules() non-null) replay from
  /// the clean prefix cache exactly like point_accuracy; opaque backends
  /// (e.g. EmulatedBackend, whose planned layers re-execute from the input
  /// on) run full batched forwards through ExecBackend::run. This is the
  /// evaluation entry Step 7's noise-model cross-validation drives.
  [[nodiscard]] double backend_accuracy(const backend::ExecBackend& b, std::uint64_t salt);

  /// Noise-free accuracy on inputs perturbed by `spec` — the severity axis
  /// of a Step-8 robustness grid. The first call per distinct spec builds
  /// and caches the perturbed eval set; identity specs alias the clean set.
  [[nodiscard]] double attacked_accuracy(const attack::AttackSpec& spec);

  /// point_accuracy on the perturbed eval set of `spec`.
  [[nodiscard]] double attacked_point_accuracy(const attack::AttackSpec& spec,
                                               const std::vector<noise::InjectionRule>& rules,
                                               std::uint64_t salt);

  /// run_points on the perturbed eval set of `spec`: the attack is
  /// generated (or input-cache-hit) once on the calling thread, then all
  /// points replay suffixes concurrently. Bit-identical serial vs parallel
  /// and across thread counts, like run_points.
  [[nodiscard]] std::vector<double> run_attacked_points(
      const attack::AttackSpec& spec, const std::vector<SweepPointSpec>& points);

  /// backend_accuracy on the perturbed eval set of `spec`.
  [[nodiscard]] double attacked_backend_accuracy(const attack::AttackSpec& spec,
                                                 const backend::ExecBackend& b,
                                                 std::uint64_t salt);

  [[nodiscard]] const SweepEngineStats& stats() const { return stats_; }
  [[nodiscard]] const SweepEngineConfig& config() const { return cfg_; }
  [[nodiscard]] capsnet::CapsModel& model() { return model_; }
  [[nodiscard]] const Tensor& test_x() const { return test_x_; }

  /// Resolves cfg.threads / REDCANE_SWEEP_THREADS / hardware_concurrency.
  [[nodiscard]] static int resolve_threads(int requested);

 private:
  /// One evaluation input set: its batches, their clean stage-boundary
  /// checkpoints, and its noise-free accuracy. The clean set and every
  /// perturbed set share this layout, so every replay path is common code.
  struct EvalSet {
    std::vector<Tensor> batch_x;
    std::vector<capsnet::StageState> checkpoints;
    double accuracy = 0.0;
    std::int64_t bytes = 0;  ///< Footprint of batches + checkpoints.
  };

  void ensure_prepared();
  /// Runs the recording clean pass of `set` (checkpoints + accuracy).
  void record_set(EvalSet& set);
  /// Returns the (building if needed) eval set for `spec`. Identity specs
  /// alias the clean base set. Must run on the coordinating thread:
  /// gradient attacks are not thread-safe (train-mode forwards).
  [[nodiscard]] const EvalSet& ensure_attacked(const attack::AttackSpec& spec);
  /// First stage whose sites any rule can match (num_stages() for none —
  /// the point then cannot perturb anything and replays nothing).
  [[nodiscard]] int first_affected_stage(const std::vector<noise::InjectionRule>& rules) const;
  /// One rule-expressible backend execution over all batches of `set`,
  /// prefix-replayed (b.rules() must be non-null; the hook comes from
  /// b.make_hook(salt), so the backend's own stream seeding is honored).
  [[nodiscard]] double eval_point(const backend::ExecBackend& b, std::uint64_t salt,
                                  const EvalSet& set, SweepEngineStats& stats) const;

  capsnet::CapsModel& model_;
  const Tensor& test_x_;
  const std::vector<std::int64_t>& test_y_;
  SweepEngineConfig cfg_;

  bool prepared_ = false;
  std::vector<std::vector<std::int64_t>> batch_y_;  ///< Labels per batch (all sets).
  EvalSet base_;                                    ///< Clean test batches.
  /// Input-batch-keyed cache: AttackSpec::key() -> perturbed eval set, in
  /// least-recently-used order (front = coldest). unique_ptr keeps the
  /// reference ensure_attacked returns stable across reordering and later
  /// insertions; eviction only happens inside ensure_attacked, before the
  /// reference for the current evaluation is handed out.
  std::vector<std::pair<std::string, std::unique_ptr<EvalSet>>> attacked_;
  std::vector<std::pair<std::string, capsnet::OpKind>> site_stage_keys_;
  std::vector<int> site_stage_vals_;                ///< Parallel to keys: first stage.
  SweepEngineStats stats_;
};

}  // namespace redcane::core
