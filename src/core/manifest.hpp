// Deployment manifest: the loadable artifact of a finished ReD-CaNe run.
//
// Step 6 ends with a per-operation choice of approximate component; this
// module packages that choice — together with how to rebuild the model and
// where its trained weights live — into a plain-text file the serving
// runtime (src/serve/) loads to instantiate the *deployed* approximate
// network next to the exact baseline. Each site line carries the selected
// component's profiled NM/NA, so the designed variant is executed exactly
// as the paper models it: component noise injected at the site.
//
// Format ("redcane-manifest v1"): `key value` header lines, then one
//   site <layer> <kind-token> <component> <nm> <na> <tolerable_nm>
// line per operation site. `#` starts a comment line. Doubles are written
// with 17 significant digits so parsed values round-trip bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/methodology.hpp"

namespace redcane::core {

/// One deployed operation site: location, selected component, and the
/// component's profiled range-relative noise (both dimensionless).
struct ManifestSite {
  Site site;
  std::string component;      ///< Library name ("axm_..."); "" means exact.
  double nm = 0.0;            ///< Profiled noise magnitude, std(Δ)/R(X).
  double na = 0.0;            ///< Profiled noise average, mean(Δ)/R(X).
  double tolerable_nm = 0.0;  ///< NM budget the selection satisfied (Steps 3/5).
};

/// Everything the serving runtime needs to deploy a designed network.
struct DeploymentManifest {
  std::string model;             ///< Architecture: "CapsNet" or "DeepCaps".
  std::string profile = "tiny";  ///< Base config: "tiny" or "paper".
  std::int64_t input_hw = 0;     ///< Square input extent [pixels]; 0 = profile default.
  std::int64_t input_channels = 0;  ///< Input channels; 0 = profile default.
  std::int64_t num_classes = 0;     ///< Output classes; 0 = profile default.
  std::string checkpoint;        ///< save_params file, relative to the manifest.
  std::uint64_t noise_seed = 2020;  ///< Base seed of designed-variant noise streams.
  double baseline_accuracy = 0.0;   ///< Exact test accuracy at design time, in [0, 1].
  std::vector<ManifestSite> sites;  ///< One per Step-6 selection, execution order.
};

/// Stable one-word manifest token of an operation kind ("mac",
/// "activation", "softmax", "logits") — unlike op_kind_name, space-free.
[[nodiscard]] const char* op_kind_token(capsnet::OpKind kind);

/// Inverse of op_kind_token. Returns false on an unknown token.
[[nodiscard]] bool op_kind_from_token(const std::string& token, capsnet::OpKind& out);

/// Builds the manifest of a finished run: every Step-6 selection becomes a
/// site entry carrying its component's profiled NM/NA (looked up in
/// `profiled`, the same library profile Step 6 selected from).
[[nodiscard]] DeploymentManifest make_deployment_manifest(
    const MethodologyResult& r, const std::vector<ProfiledComponent>& profiled,
    const capsnet::CapsModel& model, const std::string& profile,
    const std::string& checkpoint_path, std::uint64_t noise_seed);

/// Renders a manifest as "redcane-manifest v1" text.
[[nodiscard]] std::string manifest_to_text(const DeploymentManifest& m);

/// Parses manifest text into `out`. Returns false (leaving `out`
/// unspecified) on a bad version line, unknown kind token, malformed
/// site/header line, non-finite noise/accuracy field, duplicate
/// (layer, kind) site entry, or an out-of-range geometry count — a bad
/// manifest must never construct a broken registry.
[[nodiscard]] bool manifest_from_text(const std::string& text, DeploymentManifest& out);

/// File wrappers over manifest_to_text / manifest_from_text.
bool save_manifest(const DeploymentManifest& m, const std::string& path);
bool load_manifest(const std::string& path, DeploymentManifest& out);

}  // namespace redcane::core
