// Result export: CSV and JSON renderings of methodology outputs, so the
// figures can be re-plotted outside this repository (gnuplot, pandas).
//
// CSV layouts:
//   curves:     label,kind,layer,nm,drop_pct        (one row per grid point)
//   selections: layer,kind,tolerable_nm,component,power_uw,power_saving
//   profiles:   name,family,analog,power_uw,area_um2,nm,na,gaussian_like
//
// The JSON writer emits a single self-contained object mirroring
// MethodologyResult. Both are plain strings — callers decide where to
// write them.
#pragma once

#include <string>
#include <vector>

#include "core/methodology.hpp"
#include "core/selection.hpp"

namespace redcane::core {

/// One row per (curve, NM grid point).
[[nodiscard]] std::string curves_to_csv(const std::vector<ResilienceCurve>& curves);

/// One row per site selection.
[[nodiscard]] std::string selections_to_csv(const std::vector<SiteSelection>& selections);

/// One row per profiled library component.
[[nodiscard]] std::string profiles_to_csv(const std::vector<ProfiledComponent>& profiled);

/// Complete methodology result as a JSON object.
[[nodiscard]] std::string result_to_json(const MethodologyResult& result);

/// Writes `content` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace redcane::core
