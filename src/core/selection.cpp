#include "core/selection.hpp"

#include <cmath>

namespace redcane::core {

std::vector<ProfiledComponent> profile_library(const approx::InputDistribution& dist,
                                               int chain_length, std::int64_t samples,
                                               std::uint64_t seed) {
  std::vector<ProfiledComponent> out;
  approx::ProfileConfig cfg;
  cfg.chain_length = chain_length;
  cfg.samples = samples;
  cfg.seed = seed;
  for (const approx::Multiplier* m : approx::multiplier_library()) {
    const approx::ErrorProfile p = approx::profile_multiplier(*m, dist, cfg);
    out.push_back({m, p.nm, p.na, p.gaussian_like});
  }
  return out;
}

const approx::Multiplier* select_component(const std::vector<ProfiledComponent>& profiled,
                                           double tolerable_nm) {
  const approx::Multiplier* best = &approx::exact_multiplier();
  double best_power = best->info().power_uw;
  for (const ProfiledComponent& pc : profiled) {
    if (!pc.gaussian_like) continue;  // Paper's model covers Gaussian-like errors.
    if (pc.nm > tolerable_nm || std::abs(pc.na) > tolerable_nm) continue;
    if (pc.mul->info().power_uw < best_power) {
      best = pc.mul;
      best_power = pc.mul->info().power_uw;
    }
  }
  return best;
}

double SiteSelection::power_saving() const {
  if (component == nullptr) return 0.0;
  return component->info().power_saving(approx::exact_multiplier().info().power_uw);
}

}  // namespace redcane::core
