// Shard-granular sweep planning — the seam the distributed layer rides.
//
// A ReD-CaNe sweep is a grid of independent, per-point-salted evaluations.
// This module splits the in-process drivers of Steps 2/4/8 into three
// separable phases so the same grid can run anywhere:
//
//   plan      — grid geometry -> SweepPointSpec lists with the exact
//               salting discipline the serial analyzer uses (Steps 2/4:
//               salts 1..N in grid order; Step-8 noise grids: restart at 1
//               per severity row);
//   execute   — run_shard(engine, shard): one schedulable unit of work,
//               evaluated on ANY SweepEngine over the same (weights, test
//               set) — the local engine, or a worker process's own copy;
//   assemble  — ShardOutcomes -> ResilienceCurve / RobustnessGrid,
//               independent of which engine produced them.
//
// Because every point carries its own salt and noise streams are seeded
// per point (see sweep_engine.hpp), a grid split into shards of any size,
// executed in any order, on any mix of engines with bitwise-identical
// weights, assembles into curves bitwise identical to the single-process
// run. That determinism contract is what lets the distributed coordinator
// (src/dist/) reassign shards from dead workers freely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "backend/emulation.hpp"
#include "core/resilience.hpp"
#include "core/sweep_engine.hpp"

namespace redcane::core {

/// Execution backend of a shard's evaluations.
enum class ShardBackend : std::uint8_t {
  kNoise = 0,     ///< Noise-model grid points (Steps 2/4, Step-8 noise rows).
  kEmulated = 1,  ///< One behavioral component column (Step-8 emulated grid).
};

/// One schedulable unit of sweep work. All points of a shard share one
/// eval set (the clean set for identity specs, a perturbed set otherwise).
/// A shard with no points still reports the set's noise-free accuracy —
/// that is how exact-backend grid rows and clean baselines distribute.
struct SweepShard {
  std::uint64_t id = 0;
  attack::AttackSpec spec;  ///< Identity = the clean eval set.
  ShardBackend backend = ShardBackend::kNoise;
  std::string component;  ///< Emulated only: approximate-multiplier name.
  int bits = 8;           ///< Emulated only: operand wordlength.
  std::vector<SweepPointSpec> points;

  /// Number of accuracy values a correct result must carry.
  [[nodiscard]] std::size_t expected_values() const {
    return backend == ShardBackend::kEmulated ? 1 : points.size();
  }
};

/// Result of one shard: per-point accuracies (empty for point-less shards,
/// a single value for emulated shards) plus the eval set's noise-free
/// accuracy (the NM = 0 column / exact row every assembly needs).
struct ShardOutcome {
  std::uint64_t id = 0;
  double base = 0.0;
  std::vector<double> acc;
};

/// Wall-time split of one run_shard call. Diagnostic only (dist workers
/// ship it back in Result frames for the merged trace); never feeds any
/// computed value.
struct ShardTimings {
  std::uint64_t base_us = 0;    ///< ensure_attacked + base-accuracy phase.
  std::uint64_t points_us = 0;  ///< Point (or emulated) evaluation phase.
};

/// Executes one shard on a local engine — THE shard-granular entry point,
/// called by the in-process fallback and by remote dist workers alike.
/// Returns acc.size() != shard.expected_values() only on failure (unknown
/// emulated component); callers treat that as a corrupt result. When
/// `timings` is non-null it receives the phase profile.
[[nodiscard]] ShardOutcome run_shard(SweepEngine& engine, const SweepShard& shard,
                                     ShardTimings* timings = nullptr);

/// Builds the per-layer emulation plan mapping every MAC-output layer of
/// `model` (discovered by probing with `probe`) onto `component` at `bits`
/// operand wordlength. False when the component name is unknown to the
/// approximate-multiplier library.
[[nodiscard]] bool make_component_plan(capsnet::CapsModel& model, const Tensor& probe,
                                       const std::string& component, int bits,
                                       backend::EmulationPlan* out);

/// Sentinel in point_of_nm: the NM = 0 column, which reads the eval set's
/// noise-free accuracy instead of running a point.
inline constexpr std::size_t kCleanPoint = static_cast<std::size_t>(-1);

/// A Steps-2/4 curve as (points, geometry): the exact grid the serial
/// analyzer runs, with the same grid-order salting (salts 1..N).
struct CurvePlan {
  capsnet::OpKind kind = capsnet::OpKind::kMacOutput;
  std::optional<std::string> layer;
  std::vector<double> nms;
  double na = 0.0;
  std::vector<SweepPointSpec> points;
  std::vector<std::size_t> point_of_nm;  ///< Parallel to nms; kCleanPoint for NM = 0.
};

[[nodiscard]] CurvePlan plan_curve(const NmSweep& sweep, capsnet::OpKind kind,
                                   const std::optional<std::string>& layer);

/// Curve from the plan's point accuracies (`acc` parallel to plan.points)
/// and the clean baseline.
[[nodiscard]] ResilienceCurve assemble_curve(const CurvePlan& plan, double base,
                                             const std::vector<double>& acc);

/// One severity row of a Step-8 (severity x NM) noise grid: the perturbed
/// eval set's spec plus its noise points (salts restart at 1 per row, so
/// rows are order-independent).
struct NoiseGridRowPlan {
  attack::AttackSpec spec;
  std::vector<SweepPointSpec> points;
  std::vector<std::size_t> point_of_nm;
};

struct NoiseGridPlan {
  std::string scenario;
  std::vector<double> severities;
  std::vector<double> nms;
  std::vector<NoiseGridRowPlan> rows;  ///< Parallel to severities.
};

[[nodiscard]] NoiseGridPlan plan_attack_noise(const NmSweep& sweep,
                                              const attack::Scenario& scenario,
                                              capsnet::OpKind group);

/// Per-row results: the row set's noise-free (attacked) accuracy and its
/// point accuracies, parallel to the row plan's points.
struct RowResult {
  double base = 0.0;
  std::vector<double> acc;
};

[[nodiscard]] RobustnessGrid assemble_attack_noise(const NoiseGridPlan& plan,
                                                   const std::vector<RowResult>& rows);

/// Splits one eval set's point list into shards of at most `chunk` points,
/// with consecutive ids starting at `first_id`. Chunk boundaries cannot
/// change values: every point carries its own salt.
[[nodiscard]] std::vector<SweepShard> chunk_shards(std::uint64_t first_id,
                                                   const attack::AttackSpec& spec,
                                                   const std::vector<SweepPointSpec>& points,
                                                   std::size_t chunk);

}  // namespace redcane::core
