// Step 7: noise-model cross-validation (see core/methodology.hpp).
//
// The methodology's central modeling assumption — an approximate
// multiplier behaves like additive Gaussian noise of its profiled NM/NA at
// the operation's output (paper Sec. III) — is checked end-to-end here:
// each Step-6 selection runs once as that noise model and once as real
// quantized LUT execution of the selected component, over the same test
// set, and the accuracy deltas quantify how faithful the model was.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "approx/library.hpp"
#include "backend/backend.hpp"
#include "core/methodology.hpp"
#include "core/sweep_engine.hpp"

namespace redcane::core {
namespace {

/// The profiled NM/NA of `mul` in the design's library profile (zeros for
/// an unprofiled component — cannot happen for run_redcane outputs, whose
/// selections come from the profile itself).
noise::NoiseSpec profiled_spec(const MethodologyResult& design,
                               const approx::Multiplier* mul) {
  for (const ProfiledComponent& p : design.profiled) {
    if (p.mul == mul) return noise::NoiseSpec{p.nm, p.na};
  }
  return noise::NoiseSpec{};
}

/// The adder named by the config, or null for exact accumulation. An
/// unknown name falls back to exact — loudly, or Step 7 would silently
/// measure a different accumulator than the caller asked for.
const approx::Adder* resolve_adder(const std::string& name) {
  if (name.empty()) return nullptr;
  for (const approx::Adder* a : approx::adder_library()) {
    if (a->info().name == name) return a;
  }
  std::fprintf(stderr,
               "cross_validate: adder '%s' not in this build's library; "
               "emulating with exact accumulation\n",
               name.c_str());
  return nullptr;
}

}  // namespace

double CrossValidationResult::max_abs_delta_pp() const {
  double worst = 0.0;
  for (const CrossValidationEntry& e : entries) {
    worst = std::max(worst, std::abs(e.delta_pp()));
  }
  return worst;
}

CrossValidationResult cross_validate_design(capsnet::CapsModel& model, const Tensor& test_x,
                                            const std::vector<std::int64_t>& test_y,
                                            const MethodologyResult& design,
                                            const CrossValidateConfig& cfg) {
  SweepEngineConfig ec;
  ec.seed = cfg.seed;
  ec.eval_batch = cfg.eval_batch;
  ec.threads = cfg.threads;
  SweepEngine engine(model, test_x, test_y, ec);

  const approx::Adder* adder = resolve_adder(cfg.adder);

  CrossValidationResult r;
  r.baseline_accuracy = engine.clean_accuracy();

  std::vector<noise::InjectionRule> joint_rules;
  backend::EmulationPlan joint_plan;
  std::uint64_t salt = 0;
  for (const SiteSelection& sel : design.selections) {
    if (sel.site.kind != capsnet::OpKind::kMacOutput) continue;
    if (sel.component == nullptr) continue;

    CrossValidationEntry e;
    e.site = sel.site;
    e.component = sel.component->info().name;
    const noise::NoiseSpec spec = profiled_spec(design, sel.component);
    e.nm = spec.nm;
    e.na = spec.na;

    // Predicted: the component's noise at this site only. A zero spec
    // (exact selection) predicts the clean network — same convention as
    // the serving registry's designed variant.
    std::vector<noise::InjectionRule> rules;
    if (!spec.is_zero()) {
      rules.push_back(noise::layer_rule(sel.site.kind, sel.site.layer, spec));
      joint_rules.push_back(rules.back());
    }
    e.predicted_accuracy = engine.point_accuracy(rules, salt);

    // Emulated: this site's MAC datapath behavioral, everything else
    // float-exact.
    backend::EmulationPlan plan;
    plan.set(sel.site.layer,
             backend::SiteUnit{quant::MacUnit{sel.component, adder}, cfg.bits});
    joint_plan.set(sel.site.layer,
                   backend::SiteUnit{quant::MacUnit{sel.component, adder}, cfg.bits});
    const backend::EmulatedBackend emulated(std::move(plan));
    e.emulated_accuracy = engine.backend_accuracy(emulated, salt);

    r.entries.push_back(std::move(e));
    ++salt;
  }

  // The joint deployment, both ways: the designed variant as served
  // (every selection's noise together) vs the fully emulated network.
  r.predicted_joint = engine.point_accuracy(joint_rules, salt);
  const backend::EmulatedBackend joint(std::move(joint_plan));
  r.emulated_joint = engine.backend_accuracy(joint, salt);
  return r;
}

}  // namespace redcane::core
