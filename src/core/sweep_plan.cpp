#include "core/sweep_plan.hpp"

#include <chrono>

#include "capsnet/trainer.hpp"
#include "core/groups.hpp"
#include "obs/trace.hpp"

namespace redcane::core {
namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

ShardOutcome run_shard(SweepEngine& engine, const SweepShard& shard,
                       ShardTimings* timings) {
  OBS_SPAN_ID("sweep/run_shard", shard.id + 1);
  ShardOutcome out;
  out.id = shard.id;
  auto t0 = std::chrono::steady_clock::now();
  // ensure_attacked caching makes the base read free when points follow.
  out.base = engine.attacked_accuracy(shard.spec);
  if (timings != nullptr) timings->base_us = elapsed_us(t0);
  t0 = std::chrono::steady_clock::now();
  if (shard.backend == ShardBackend::kEmulated) {
    backend::EmulationPlan plan;
    const Tensor probe = capsnet::slice_rows(engine.test_x(), 0, 1);
    if (!make_component_plan(engine.model(), probe, shard.component, shard.bits, &plan)) {
      return out;  // acc stays empty: expected_values() mismatch flags failure.
    }
    out.acc.push_back(engine.attacked_backend_accuracy(
        shard.spec, backend::EmulatedBackend(plan), /*salt=*/0));
    if (timings != nullptr) timings->points_us = elapsed_us(t0);
    return out;
  }
  out.acc = engine.run_attacked_points(shard.spec, shard.points);
  if (timings != nullptr) timings->points_us = elapsed_us(t0);
  return out;
}

bool make_component_plan(capsnet::CapsModel& model, const Tensor& probe,
                         const std::string& component, int bits,
                         backend::EmulationPlan* out) {
  backend::EmulationPlan plan;
  bool ok = true;
  for (const Site& site : extract_sites(model, probe)) {
    if (site.kind != capsnet::OpKind::kMacOutput) continue;
    ok = ok && plan.set_by_name(site.layer, component, /*adder=*/"", bits);
  }
  if (!ok) return false;
  *out = std::move(plan);
  return true;
}

namespace {

/// Shared grid-order point construction: one noisy point per NM > 0 (or
/// NA != 0), salts 1..N in grid order, kCleanPoint for the clean column.
void build_points(const NmSweep& sweep, const noise::InjectionRule& rule_template,
                  std::vector<SweepPointSpec>* points,
                  std::vector<std::size_t>* point_of_nm) {
  std::uint64_t salt = 1;
  for (double nm : sweep.nms) {
    if (nm == 0.0 && sweep.na == 0.0) {
      point_of_nm->push_back(kCleanPoint);
      continue;
    }
    SweepPointSpec p;
    noise::InjectionRule rule = rule_template;
    rule.noise = noise::NoiseSpec{nm, sweep.na};
    p.rules.push_back(std::move(rule));
    p.salt = salt++;
    point_of_nm->push_back(points->size());
    points->push_back(std::move(p));
  }
}

}  // namespace

CurvePlan plan_curve(const NmSweep& sweep, capsnet::OpKind kind,
                     const std::optional<std::string>& layer) {
  CurvePlan plan;
  plan.kind = kind;
  plan.layer = layer;
  plan.nms = sweep.nms;
  plan.na = sweep.na;
  noise::InjectionRule rule = layer.has_value()
                                  ? noise::layer_rule(kind, *layer, noise::NoiseSpec{})
                                  : noise::group_rule(kind, noise::NoiseSpec{});
  build_points(sweep, rule, &plan.points, &plan.point_of_nm);
  return plan;
}

ResilienceCurve assemble_curve(const CurvePlan& plan, double base,
                               const std::vector<double>& acc) {
  ResilienceCurve curve;
  curve.kind = plan.kind;
  curve.layer = plan.layer;
  curve.label = plan.layer.value_or(std::string(capsnet::op_kind_name(plan.kind)));
  for (std::size_t i = 0; i < plan.nms.size(); ++i) {
    const double a = plan.point_of_nm[i] == kCleanPoint ? base : acc[plan.point_of_nm[i]];
    curve.nms.push_back(plan.nms[i]);
    curve.drop_pct.push_back((a - base) * 100.0);
  }
  return curve;
}

NoiseGridPlan plan_attack_noise(const NmSweep& sweep, const attack::Scenario& scenario,
                                capsnet::OpKind group) {
  NoiseGridPlan plan;
  plan.scenario = scenario.name();
  plan.nms = sweep.nms;
  for (double severity : scenario.severities) {
    plan.severities.push_back(severity);
    NoiseGridRowPlan row;
    row.spec = scenario.at(severity);
    build_points(sweep, noise::group_rule(group, noise::NoiseSpec{}), &row.points,
                 &row.point_of_nm);
    plan.rows.push_back(std::move(row));
  }
  return plan;
}

RobustnessGrid assemble_attack_noise(const NoiseGridPlan& plan,
                                     const std::vector<RowResult>& rows) {
  RobustnessGrid grid;
  grid.scenario = plan.scenario;
  grid.backend = "noise";
  grid.severities = plan.severities;
  grid.nms = plan.nms;
  for (std::size_t r = 0; r < plan.rows.size(); ++r) {
    const NoiseGridRowPlan& row = plan.rows[r];
    for (std::size_t i = 0; i < plan.nms.size(); ++i) {
      grid.accuracy.push_back(row.point_of_nm[i] == kCleanPoint
                                  ? rows[r].base
                                  : rows[r].acc[row.point_of_nm[i]]);
    }
  }
  return grid;
}

std::vector<SweepShard> chunk_shards(std::uint64_t first_id,
                                     const attack::AttackSpec& spec,
                                     const std::vector<SweepPointSpec>& points,
                                     std::size_t chunk) {
  std::vector<SweepShard> shards;
  if (chunk == 0) chunk = 1;
  if (points.empty()) {
    SweepShard s;
    s.id = first_id;
    s.spec = spec;
    shards.push_back(std::move(s));
    return shards;
  }
  for (std::size_t at = 0; at < points.size(); at += chunk) {
    SweepShard s;
    s.id = first_id + shards.size();
    s.spec = spec;
    s.points.assign(points.begin() + static_cast<std::ptrdiff_t>(at),
                    points.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(points.size(), at + chunk)));
    shards.push_back(std::move(s));
  }
  return shards;
}

}  // namespace redcane::core
