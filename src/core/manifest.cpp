#include "core/manifest.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/export.hpp"

namespace redcane::core {
namespace {

constexpr const char* kVersionLine = "redcane-manifest v1";

/// Geometry fields must be sane before a model is built from them: a
/// negative or absurd count would otherwise construct a broken registry
/// (or a multi-terabyte tensor) from one bad manifest line.
constexpr std::int64_t kMaxExtent = 1 << 16;

bool valid_manifest(const DeploymentManifest& m) {
  if (m.model.empty()) return false;
  if (m.input_hw < 0 || m.input_hw > kMaxExtent) return false;
  if (m.input_channels < 0 || m.input_channels > kMaxExtent) return false;
  if (m.num_classes < 0 || m.num_classes > kMaxExtent) return false;
  if (!std::isfinite(m.baseline_accuracy)) return false;
  for (std::size_t i = 0; i < m.sites.size(); ++i) {
    const ManifestSite& s = m.sites[i];
    // NaN/Inf noise would propagate straight into every served batch of
    // the designed variant.
    if (!std::isfinite(s.nm) || !std::isfinite(s.na) ||
        !std::isfinite(s.tolerable_nm)) {
      return false;
    }
    // One selection per operation site: a duplicate (layer, kind) entry
    // means the manifest is inconsistent about what runs there.
    for (std::size_t j = 0; j < i; ++j) {
      if (m.sites[j].site.layer == s.site.layer && m.sites[j].site.kind == s.site.kind) {
        return false;
      }
    }
  }
  return true;
}

std::string fmt_full(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* op_kind_token(capsnet::OpKind kind) {
  switch (kind) {
    case capsnet::OpKind::kMacOutput: return "mac";
    case capsnet::OpKind::kActivation: return "activation";
    case capsnet::OpKind::kSoftmax: return "softmax";
    case capsnet::OpKind::kLogitsUpdate: return "logits";
  }
  return "?";
}

bool op_kind_from_token(const std::string& token, capsnet::OpKind& out) {
  if (token == "mac") out = capsnet::OpKind::kMacOutput;
  else if (token == "activation") out = capsnet::OpKind::kActivation;
  else if (token == "softmax") out = capsnet::OpKind::kSoftmax;
  else if (token == "logits") out = capsnet::OpKind::kLogitsUpdate;
  else return false;
  return true;
}

DeploymentManifest make_deployment_manifest(const MethodologyResult& r,
                                            const std::vector<ProfiledComponent>& profiled,
                                            const capsnet::CapsModel& model,
                                            const std::string& profile,
                                            const std::string& checkpoint_path,
                                            std::uint64_t noise_seed) {
  DeploymentManifest m;
  m.model = r.model_name;
  m.profile = profile;
  const Shape in = model.input_shape();
  m.input_hw = in.dim(0);
  m.input_channels = in.dim(2);
  m.num_classes = model.num_classes();
  m.checkpoint = checkpoint_path;
  m.noise_seed = noise_seed;
  m.baseline_accuracy = r.baseline_accuracy;
  for (const SiteSelection& s : r.selections) {
    ManifestSite site;
    site.site = s.site;
    site.tolerable_nm = s.tolerable_nm;
    if (s.component != nullptr) {
      site.component = s.component->info().name;
      for (const ProfiledComponent& pc : profiled) {
        if (pc.mul == s.component) {
          site.nm = pc.nm;
          site.na = pc.na;
          break;
        }
      }
    }
    m.sites.push_back(site);
  }
  return m;
}

std::string manifest_to_text(const DeploymentManifest& m) {
  std::string out = std::string(kVersionLine) + "\n";
  out += "model " + m.model + "\n";
  out += "profile " + m.profile + "\n";
  out += "input_hw " + std::to_string(m.input_hw) + "\n";
  out += "input_channels " + std::to_string(m.input_channels) + "\n";
  out += "num_classes " + std::to_string(m.num_classes) + "\n";
  if (!m.checkpoint.empty()) out += "checkpoint " + m.checkpoint + "\n";
  out += "noise_seed " + std::to_string(m.noise_seed) + "\n";
  out += "baseline_accuracy " + fmt_full(m.baseline_accuracy) + "\n";
  for (const ManifestSite& s : m.sites) {
    out += "site " + s.site.layer + " " + op_kind_token(s.site.kind) + " " +
           (s.component.empty() ? "-" : s.component) + " " + fmt_full(s.nm) + " " +
           fmt_full(s.na) + " " + fmt_full(s.tolerable_nm) + "\n";
  }
  return out;
}

bool manifest_from_text(const std::string& text, DeploymentManifest& out) {
  out = DeploymentManifest{};
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kVersionLine) return false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "model") fields >> out.model;
    else if (key == "profile") fields >> out.profile;
    else if (key == "input_hw") fields >> out.input_hw;
    else if (key == "input_channels") fields >> out.input_channels;
    else if (key == "num_classes") fields >> out.num_classes;
    else if (key == "checkpoint") {
      // Rest of the line: checkpoint paths may contain spaces.
      std::getline(fields >> std::ws, out.checkpoint);
    }
    else if (key == "noise_seed") fields >> out.noise_seed;
    else if (key == "baseline_accuracy") fields >> out.baseline_accuracy;
    else if (key == "site") {
      ManifestSite s;
      std::string kind_token;
      fields >> s.site.layer >> kind_token >> s.component >> s.nm >> s.na >>
          s.tolerable_nm;
      if (!op_kind_from_token(kind_token, s.site.kind)) return false;
      if (s.component == "-") s.component.clear();
      if (fields.fail()) return false;
      out.sites.push_back(std::move(s));
    } else {
      return false;  // Unknown key: refuse rather than silently drop config.
    }
    if (fields.fail()) return false;
  }
  return valid_manifest(out);
}

bool save_manifest(const DeploymentManifest& m, const std::string& path) {
  return write_text_file(path, manifest_to_text(m));
}

bool load_manifest(const std::string& path, DeploymentManifest& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return manifest_from_text(text, out);
}

}  // namespace redcane::core
