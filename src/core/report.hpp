// Text rendering of methodology results (console tables mirroring the
// paper's figures/tables).
#pragma once

#include <string>

#include "core/methodology.hpp"

namespace redcane::core {

/// Full multi-section report of a run (groups, curves, marks, selections).
[[nodiscard]] std::string render_report(const MethodologyResult& r);

/// One resilience curve as a fixed-width table row block.
[[nodiscard]] std::string render_curve(const ResilienceCurve& curve);

/// The Table III-style grouping of a site list.
[[nodiscard]] std::string render_groups(const std::vector<Site>& sites);

/// One Step-8 robustness grid as a (severity rows × axis columns) table of
/// absolute accuracies.
[[nodiscard]] std::string render_robustness_grid(const RobustnessGrid& grid);

}  // namespace redcane::core
