// Steps 2-5 of ReD-CaNe: group-wise and layer-wise resilience analysis.
//
// A "step of resilience analysis consists of setting the input parameters
// of the noise injection, i.e., NM and NA, adding the noise to the
// selected CapsNet operations, and monitoring the accuracy for the noisy
// CapsNet" (paper Sec. IV). Sweeps use the paper's NM grid
// [0.5 ... 0.001] plus the clean point NM = 0.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "capsnet/model.hpp"
#include "core/groups.hpp"
#include "core/sweep_engine.hpp"
#include "noise/injector.hpp"

namespace redcane::core {

/// The NM grid of a resilience sweep.
struct NmSweep {
  /// Noise magnitudes swept (std/R(X), dimensionless); 0 = clean point.
  std::vector<double> nms{0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0};
  double na = 0.0;  ///< Noise average of every point (mean/R(X), dimensionless).

  /// The grid of the paper's Figs. 9, 10, 12.
  static NmSweep paper() { return NmSweep{}; }
};

/// One Step-8 robustness grid: absolute accuracy (in [0, 1]) over (attack
/// or transform severity) × (one approximation axis) for one scenario and
/// one execution backend. The approximation axis is the NM grid for the
/// noise-model backend, the component list for the emulated backend, and a
/// single noise-free column for the exact backend. `accuracy` is row-major
/// [severity][column].
struct RobustnessGrid {
  std::string scenario;                 ///< attack::attack_kind_name of the axis.
  std::string backend;                  ///< "exact" | "noise" | "emulated".
  std::vector<double> severities;       ///< Attack/transform severity per row.
  std::vector<double> nms;              ///< Column axis (noise backend only).
  std::vector<std::string> components;  ///< Column axis (emulated backend only).
  std::vector<double> accuracy;         ///< Row-major [severity][column].

  [[nodiscard]] std::size_t cols() const {
    if (!nms.empty()) return nms.size();
    if (!components.empty()) return components.size();
    return 1;
  }
  [[nodiscard]] double at(std::size_t severity_idx, std::size_t col) const {
    return accuracy[severity_idx * cols() + col];
  }
};

/// One resilience curve: accuracy drop (percentage points, noisy − clean;
/// negative = degradation) per NM grid point.
struct ResilienceCurve {
  std::string label;                 ///< e.g. "#1: MAC outputs" or "Caps2D7".
  capsnet::OpKind kind;              ///< Operation group swept (Table III).
  std::optional<std::string> layer;  ///< Set for layer-wise curves.
  std::vector<double> nms;           ///< NM grid points (dimensionless).
  std::vector<double> drop_pct;      ///< Accuracy drop per point [percentage points].

  /// Largest NM on the grid whose |drop| <= tolerance (0 when even the
  /// smallest NM violates it).
  [[nodiscard]] double tolerable_nm(double tolerance_pct) const;
};

struct ResilienceConfig {
  NmSweep sweep = NmSweep::paper();
  std::uint64_t seed = 2020;
  std::int64_t eval_batch = 64;
  /// Sweep worker threads; 0 = REDCANE_SWEEP_THREADS env var, else
  /// hardware concurrency (see core/sweep_engine.hpp).
  int threads = 0;
  /// Prefix-activation caching for noisy points (bit-identical either way).
  bool prefix_cache = true;
};

/// Drives noisy evaluations of one trained model on one test set. All
/// evaluations route through the SweepEngine: sweeps run their grid points
/// concurrently, and every noisy point replays only the network suffix
/// after its first injectable site. The model's weights must not change
/// over the analyzer's lifetime (the engine replays cached clean
/// prefixes); construct a fresh analyzer after retraining or approximating
/// the model.
class ResilienceAnalyzer {
 public:
  ResilienceAnalyzer(capsnet::CapsModel& model, const Tensor& test_x,
                     const std::vector<std::int64_t>& test_y, ResilienceConfig cfg);

  /// Clean test accuracy in [0, 1] (computed once, cached).
  [[nodiscard]] double baseline();

  /// Accuracy in [0, 1] with the given injection rules active.
  [[nodiscard]] double accuracy_with_rules(const std::vector<noise::InjectionRule>& rules,
                                           std::uint64_t salt);

  /// Step 2: noise in every operation of one group, other groups clean.
  [[nodiscard]] ResilienceCurve sweep_group(capsnet::OpKind kind);

  /// Step 4: noise in one layer of one group only.
  [[nodiscard]] ResilienceCurve sweep_layer(capsnet::OpKind kind, const std::string& layer);

  /// Step 8: attacked accuracy per severity on the exact backend — the
  /// clean-hardware robustness reference column.
  [[nodiscard]] RobustnessGrid sweep_attack_exact(const attack::Scenario& scenario);

  /// Step 8: (severity × NM) accuracy grid — inputs perturbed by the
  /// scenario, approximation noise injected into every operation of
  /// `group`. Each severity row builds (or input-cache-hits) one perturbed
  /// eval set, then runs its noise points concurrently; the grid is
  /// bit-identical serial vs parallel and across thread counts.
  [[nodiscard]] RobustnessGrid sweep_attack_noise(const attack::Scenario& scenario,
                                                  capsnet::OpKind group);

  /// Step 8: (severity × component) accuracy grid on the emulated backend —
  /// every MAC-output layer executed behaviorally through each named
  /// component's LUT datapath at the given operand wordlength. Components
  /// whose multiplier name is unknown to the library are skipped (with a
  /// stderr note) rather than aborting.
  [[nodiscard]] RobustnessGrid sweep_attack_emulated(const attack::Scenario& scenario,
                                                     const std::vector<std::string>& components,
                                                     int bits = 8);

  /// Number of noisy evaluations run so far (exploration cost, D3).
  [[nodiscard]] std::int64_t evaluations() const { return engine_.stats().evaluations; }

  /// Engine counters: cache hits, stages skipped/total, worker count.
  [[nodiscard]] const SweepEngineStats& engine_stats() const { return engine_.stats(); }

  [[nodiscard]] const ResilienceConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] ResilienceCurve sweep(capsnet::OpKind kind,
                                      const std::optional<std::string>& layer);

  ResilienceConfig cfg_;
  SweepEngine engine_;
};

}  // namespace redcane::core
