// Steps 2-5 of ReD-CaNe: group-wise and layer-wise resilience analysis.
//
// A "step of resilience analysis consists of setting the input parameters
// of the noise injection, i.e., NM and NA, adding the noise to the
// selected CapsNet operations, and monitoring the accuracy for the noisy
// CapsNet" (paper Sec. IV). Sweeps use the paper's NM grid
// [0.5 ... 0.001] plus the clean point NM = 0.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "capsnet/model.hpp"
#include "core/groups.hpp"
#include "core/sweep_engine.hpp"
#include "noise/injector.hpp"

namespace redcane::core {

/// The NM grid of a resilience sweep.
struct NmSweep {
  /// Noise magnitudes swept (std/R(X), dimensionless); 0 = clean point.
  std::vector<double> nms{0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0};
  double na = 0.0;  ///< Noise average of every point (mean/R(X), dimensionless).

  /// The grid of the paper's Figs. 9, 10, 12.
  static NmSweep paper() { return NmSweep{}; }
};

/// One resilience curve: accuracy drop (percentage points, noisy − clean;
/// negative = degradation) per NM grid point.
struct ResilienceCurve {
  std::string label;                 ///< e.g. "#1: MAC outputs" or "Caps2D7".
  capsnet::OpKind kind;              ///< Operation group swept (Table III).
  std::optional<std::string> layer;  ///< Set for layer-wise curves.
  std::vector<double> nms;           ///< NM grid points (dimensionless).
  std::vector<double> drop_pct;      ///< Accuracy drop per point [percentage points].

  /// Largest NM on the grid whose |drop| <= tolerance (0 when even the
  /// smallest NM violates it).
  [[nodiscard]] double tolerable_nm(double tolerance_pct) const;
};

struct ResilienceConfig {
  NmSweep sweep = NmSweep::paper();
  std::uint64_t seed = 2020;
  std::int64_t eval_batch = 64;
  /// Sweep worker threads; 0 = REDCANE_SWEEP_THREADS env var, else
  /// hardware concurrency (see core/sweep_engine.hpp).
  int threads = 0;
  /// Prefix-activation caching for noisy points (bit-identical either way).
  bool prefix_cache = true;
};

/// Drives noisy evaluations of one trained model on one test set. All
/// evaluations route through the SweepEngine: sweeps run their grid points
/// concurrently, and every noisy point replays only the network suffix
/// after its first injectable site. The model's weights must not change
/// over the analyzer's lifetime (the engine replays cached clean
/// prefixes); construct a fresh analyzer after retraining or approximating
/// the model.
class ResilienceAnalyzer {
 public:
  ResilienceAnalyzer(capsnet::CapsModel& model, const Tensor& test_x,
                     const std::vector<std::int64_t>& test_y, ResilienceConfig cfg);

  /// Clean test accuracy in [0, 1] (computed once, cached).
  [[nodiscard]] double baseline();

  /// Accuracy in [0, 1] with the given injection rules active.
  [[nodiscard]] double accuracy_with_rules(const std::vector<noise::InjectionRule>& rules,
                                           std::uint64_t salt);

  /// Step 2: noise in every operation of one group, other groups clean.
  [[nodiscard]] ResilienceCurve sweep_group(capsnet::OpKind kind);

  /// Step 4: noise in one layer of one group only.
  [[nodiscard]] ResilienceCurve sweep_layer(capsnet::OpKind kind, const std::string& layer);

  /// Number of noisy evaluations run so far (exploration cost, D3).
  [[nodiscard]] std::int64_t evaluations() const { return engine_.stats().evaluations; }

  /// Engine counters: cache hits, stages skipped/total, worker count.
  [[nodiscard]] const SweepEngineStats& engine_stats() const { return engine_.stats(); }

  [[nodiscard]] const ResilienceConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] ResilienceCurve sweep(capsnet::OpKind kind,
                                      const std::optional<std::string>& layer);

  ResilienceConfig cfg_;
  SweepEngine engine_;
};

}  // namespace redcane::core
