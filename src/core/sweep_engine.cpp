#include "core/sweep_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "capsnet/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/workspace.hpp"

namespace redcane::core {
namespace {

/// Records which stage first emits each (layer, kind) site.
class StageRecorder final : public capsnet::PerturbationHook {
 public:
  explicit StageRecorder(int stage) : stage_(stage) {}
  void set_stage(int stage) { stage_ = stage; }

  void process(const std::string& layer, capsnet::OpKind kind, Tensor&) override {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i].first == layer && keys[i].second == kind) return;  // First stage wins.
    }
    keys.emplace_back(layer, kind);
    stages.push_back(stage_);
  }

  std::vector<std::pair<std::string, capsnet::OpKind>> keys;
  std::vector<int> stages;

 private:
  int stage_;
};

}  // namespace

int SweepEngine::resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("REDCANE_SWEEP_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepEngine::SweepEngine(capsnet::CapsModel& model, const Tensor& test_x,
                         const std::vector<std::int64_t>& test_y, SweepEngineConfig cfg)
    : model_(model), test_x_(test_x), test_y_(test_y), cfg_(cfg) {}

SweepEngine::~SweepEngine() {
  // Lifetime stats are cumulative, so a single flush at teardown mirrors
  // exactly what live per-increment mirroring would have accumulated —
  // without adding registry RMWs inside eval_point's replay loop.
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("sweep_evaluations_total").add(stats_.evaluations);
  reg.counter("sweep_stage_cache_hits_total").add(stats_.cache_hits);
  reg.counter("sweep_stages_skipped_total").add(stats_.stages_skipped);
  reg.counter("sweep_stages_run_total").add(stats_.stages_total - stats_.stages_skipped);
  reg.counter("sweep_stages_total").add(stats_.stages_total);
  reg.counter("sweep_input_sets_total").add(stats_.input_sets);
  reg.counter("sweep_input_cache_hits_total").add(stats_.input_cache_hits);
  reg.counter("sweep_input_evictions_total").add(stats_.input_evictions);
  reg.add_check("sweep_stage_conservation", [](const obs::Snapshot& snap) {
    // Skipped + run repartition the stage count a full-forward driver
    // would have executed; prefix caching only ever removes work.
    return snap.counter("sweep_stages_skipped_total") +
                   snap.counter("sweep_stages_run_total") ==
               snap.counter("sweep_stages_total") &&
           snap.counter("sweep_stages_skipped_total") <=
               snap.counter("sweep_stages_total");
  });
}

void SweepEngine::record_set(EvalSet& set) {
  // One clean pass per batch: yields the set's noise-free accuracy and —
  // only when prefix caching is on — the stage-boundary checkpoints noisy
  // points replay from (recording them otherwise would hold every
  // intermediate activation of the test set for nothing).
  const int stages = model_.num_stages();
  std::int64_t hits = 0;
  set.checkpoints.clear();
  set.checkpoints.resize(set.batch_x.size());
  for (std::size_t b = 0; b < set.batch_x.size(); ++b) {
    capsnet::StageState& st = set.checkpoints[b];
    st.at.resize(static_cast<std::size_t>(stages) + 1);
    st.at[0] = {set.batch_x[b]};
    const Tensor v = model_.forward_range(0, stages, st, nullptr,
                                          /*record=*/cfg_.prefix_cache);
    hits += capsnet::count_correct(v, batch_y_[b]);
  }
  set.accuracy = static_cast<double>(hits) / static_cast<double>(test_x_.shape().dim(0));

  set.bytes = 0;
  for (const Tensor& x : set.batch_x) {
    set.bytes += x.numel() * static_cast<std::int64_t>(sizeof(float));
  }
  for (const capsnet::StageState& st : set.checkpoints) {
    for (const std::vector<Tensor>& boundary : st.at) {
      for (const Tensor& t : boundary) {
        set.bytes += t.numel() * static_cast<std::int64_t>(sizeof(float));
      }
    }
  }
}

void SweepEngine::ensure_prepared() {
  if (prepared_) return;
  prepared_ = true;
  stats_.threads = resolve_threads(cfg_.threads);

  const std::int64_t n = test_x_.shape().dim(0);
  for (std::int64_t at = 0; at < n; at += cfg_.eval_batch) {
    const std::int64_t end = std::min(n, at + cfg_.eval_batch);
    base_.batch_x.push_back(capsnet::slice_rows(test_x_, at, end));
    batch_y_.emplace_back(test_y_.begin() + at, test_y_.begin() + end);
  }

  // Map every hook site to the first stage that emits it, by probing one
  // stage at a time with a single test row. Discovered dynamically, so any
  // CapsModel (and any future stage split) is handled without tables.
  const int stages = model_.num_stages();
  {
    capsnet::StageState probe;
    probe.at.resize(static_cast<std::size_t>(stages) + 1);
    probe.at[0] = {capsnet::slice_rows(test_x_, 0, 1)};
    StageRecorder rec(0);
    for (int k = 0; k < stages; ++k) {
      rec.set_stage(k);
      (void)model_.forward_range(k, k + 1, probe, &rec, /*record=*/true);
    }
    site_stage_keys_ = std::move(rec.keys);
    site_stage_vals_ = std::move(rec.stages);
  }

  record_set(base_);
}

const SweepEngine::EvalSet& SweepEngine::ensure_attacked(const attack::AttackSpec& spec) {
  ensure_prepared();
  if (spec.is_identity()) return base_;  // Clean set; not an input-cache event.

  const std::string key = spec.key();
  for (std::size_t i = 0; i < attacked_.size(); ++i) {
    if (attacked_[i].first == key) {
      ++stats_.input_cache_hits;
      // Refresh to most-recently-used (back). The unique_ptr payload does
      // not move, so the returned reference is stable.
      if (i + 1 != attacked_.size()) {
        auto entry = std::move(attacked_[i]);
        attacked_.erase(attacked_.begin() + static_cast<std::ptrdiff_t>(i));
        attacked_.push_back(std::move(entry));
      }
      return *attacked_.back().second;
    }
  }

  // Miss: generate the perturbed batches serially on this (the
  // coordinating) thread — gradient attacks run train-mode forwards that
  // mutate layer caches — then record their clean checkpoints so every
  // noisy point over this spec replays suffixes like clean points do.
  OBS_SPAN("sweep/attack_build");
  ++stats_.input_sets;
  auto set = std::make_unique<EvalSet>();
  set->batch_x.reserve(base_.batch_x.size());
  for (std::size_t b = 0; b < base_.batch_x.size(); ++b) {
    set->batch_x.push_back(attack::apply_attack(model_, base_.batch_x[b], batch_y_[b], spec));
  }
  record_set(*set);
  stats_.input_cache_bytes += set->bytes;
  attacked_.emplace_back(key, std::move(set));

  // LRU eviction under the byte budget. The just-built set (back) is
  // exempt: it is about to be used, and evicting it would livelock a
  // budget smaller than one set.
  if (cfg_.input_cache_budget > 0) {
    while (attacked_.size() > 1 && stats_.input_cache_bytes > cfg_.input_cache_budget) {
      stats_.input_cache_bytes -= attacked_.front().second->bytes;
      attacked_.erase(attacked_.begin());
      ++stats_.input_evictions;
    }
  }
  return *attacked_.back().second;
}

double SweepEngine::clean_accuracy() {
  ensure_prepared();
  return base_.accuracy;
}

double SweepEngine::attacked_accuracy(const attack::AttackSpec& spec) {
  return ensure_attacked(spec).accuracy;
}

int SweepEngine::first_affected_stage(
    const std::vector<noise::InjectionRule>& rules) const {
  int first = model_.num_stages();
  for (std::size_t i = 0; i < site_stage_keys_.size(); ++i) {
    for (const noise::InjectionRule& rule : rules) {
      if (rule.matches(site_stage_keys_[i].first, site_stage_keys_[i].second)) {
        first = std::min(first, site_stage_vals_[i]);
        break;
      }
    }
  }
  return first;
}

double SweepEngine::eval_point(const backend::ExecBackend& b, std::uint64_t salt,
                               const EvalSet& set, SweepEngineStats& stats) const {
  // One hook per point, from the backend's own stream seeding (for a
  // NoiseBackend: base seed ^ salt * kSaltMix, exactly the serial
  // analyzer's and the serving "designed" variant's discipline). Sites
  // before the replay stage never match any rule, so they draw nothing
  // from the stream; skipping them leaves the draws untouched.
  const std::vector<noise::InjectionRule>& rules = *b.rules();
  const std::unique_ptr<capsnet::PerturbationHook> hook = b.make_hook(salt);
  const int stages = model_.num_stages();
  const int from = cfg_.prefix_cache ? first_affected_stage(rules) : 0;

  std::int64_t hits = 0;
  for (std::size_t b = 0; b < set.batch_x.size(); ++b) {
    stats.stages_total += stages;
    stats.stages_skipped += from;
    if (from > 0) ++stats.cache_hits;

    Tensor v;
    if (from >= stages) {
      // No site matches: the noisy forward is the clean forward.
      v = set.checkpoints[b].at[static_cast<std::size_t>(stages)][0];
    } else {
      // One deliberate copy of the entry boundary: it isolates the shared
      // checkpoint from any hook/model that might mutate stage inputs, and
      // measures as noise next to the replayed suffix compute.
      capsnet::StageState st;
      st.at.resize(static_cast<std::size_t>(stages) + 1);
      st.at[static_cast<std::size_t>(from)] =
          set.checkpoints[b].at[static_cast<std::size_t>(from)];
      v = model_.forward_range(from, stages, st, hook.get(), /*record=*/false);
    }
    hits += capsnet::count_correct(v, batch_y_[b]);
  }
  return static_cast<double>(hits) / static_cast<double>(test_x_.shape().dim(0));
}

double SweepEngine::point_accuracy(const std::vector<noise::InjectionRule>& rules,
                                   std::uint64_t salt) {
  ensure_prepared();
  ++stats_.evaluations;
  return eval_point(backend::NoiseBackend(rules, cfg_.seed), salt, base_, stats_);
}

double SweepEngine::attacked_point_accuracy(const attack::AttackSpec& spec,
                                            const std::vector<noise::InjectionRule>& rules,
                                            std::uint64_t salt) {
  const EvalSet& set = ensure_attacked(spec);
  ++stats_.evaluations;
  return eval_point(backend::NoiseBackend(rules, cfg_.seed), salt, set, stats_);
}

double SweepEngine::backend_accuracy(const backend::ExecBackend& b, std::uint64_t salt) {
  return attacked_backend_accuracy(attack::AttackSpec::none(), b, salt);
}

double SweepEngine::attacked_backend_accuracy(const attack::AttackSpec& spec,
                                              const backend::ExecBackend& b,
                                              std::uint64_t salt) {
  const EvalSet& set = ensure_attacked(spec);
  ++stats_.evaluations;
  if (b.rules() != nullptr) return eval_point(b, salt, set, stats_);

  // Opaque backend: no site rules to bound the perturbation, so no prefix
  // is provably clean — run full batched forwards.
  const int stages = model_.num_stages();
  std::int64_t hits = 0;
  for (std::size_t batch = 0; batch < set.batch_x.size(); ++batch) {
    stats_.stages_total += stages;
    const Tensor v = b.run(model_, set.batch_x[batch], salt);
    hits += capsnet::count_correct(v, batch_y_[batch]);
  }
  return static_cast<double>(hits) / static_cast<double>(test_x_.shape().dim(0));
}

std::vector<double> SweepEngine::run_points(const std::vector<SweepPointSpec>& points) {
  return run_attacked_points(attack::AttackSpec::none(), points);
}

std::vector<double> SweepEngine::run_attacked_points(
    const attack::AttackSpec& spec, const std::vector<SweepPointSpec>& points) {
  // Attack generation (or input-cache lookup) happens here, before any
  // worker exists: workers only ever replay const checkpoints.
  const EvalSet& set = ensure_attacked(spec);
  OBS_SPAN("sweep/run_points");
  std::vector<double> acc(points.size(), 0.0);
  const int workers = std::max(
      1, std::min(resolve_threads(cfg_.threads), static_cast<int>(points.size())));
  stats_.threads = resolve_threads(cfg_.threads);
  stats_.evaluations += static_cast<std::int64_t>(points.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      acc[i] = eval_point(backend::NoiseBackend(points[i].rules, cfg_.seed),
                          points[i].salt, set, stats_);
    }
    return acc;
  }

  // Each point owns its slot and its injector; per-worker stats merge after
  // the join. Result assembly is by index, so curves are independent of
  // scheduling order.
  std::atomic<std::size_t> next{0};
  std::vector<SweepEngineStats> worker_stats(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
#ifdef _OPENMP
      // Each std::thread is an OpenMP initial thread: without a cap, every
      // omp-parallel kernel inside a worker would spin up a full-size team
      // (workers x cores threads total). Point-level parallelism already
      // covers the machine, so keep per-worker kernels serial.
      omp_set_num_threads(1);
#endif
      // Warm this worker's thread-keyed scratch arena once; every forward
      // of every grid point then runs on recycled buffers.
      ws::Workspace::tls().reserve(std::size_t{1} << 20);
      for (std::size_t i = next.fetch_add(1); i < points.size(); i = next.fetch_add(1)) {
        acc[i] = eval_point(backend::NoiseBackend(points[i].rules, cfg_.seed),
                            points[i].salt, set,
                            worker_stats[static_cast<std::size_t>(w)]);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const SweepEngineStats& ws : worker_stats) {
    stats_.cache_hits += ws.cache_hits;
    stats_.stages_skipped += ws.stages_skipped;
    stats_.stages_total += ws.stages_total;
  }
  return acc;
}

}  // namespace redcane::core
