#include "core/report.hpp"

#include <cstdarg>
#include <cstdio>

namespace redcane::core {
namespace {

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string render_curve(const ResilienceCurve& curve) {
  std::string out = fmt("  %-14s |", curve.label.c_str());
  for (double nm : curve.nms) out += fmt(" %7.3g", nm);
  out += "\n  accuracy drop |";
  for (double d : curve.drop_pct) out += fmt(" %+7.2f", d);
  out += "\n";
  return out;
}

std::string render_robustness_grid(const RobustnessGrid& grid) {
  std::string out =
      fmt("[%s x %s backend]\n", grid.scenario.c_str(), grid.backend.c_str());
  out += "  severity      |";
  if (!grid.nms.empty()) {
    for (double nm : grid.nms) out += fmt(" %8.3g", nm);
    out += "  (NM)";
  } else if (!grid.components.empty()) {
    for (const std::string& c : grid.components) out += fmt(" %12s", c.c_str());
  } else {
    out += "  accuracy";
  }
  out += "\n";
  for (std::size_t s = 0; s < grid.severities.size(); ++s) {
    out += fmt("  %-13.4g |", grid.severities[s]);
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      const int width = grid.components.empty() ? 8 : 12;
      out += fmt(" %*.2f", width, grid.at(s, c) * 100.0);
    }
    out += "\n";
  }
  return out;
}

std::string render_groups(const std::vector<Site>& sites) {
  std::string out;
  int group_no = 1;
  for (capsnet::OpKind kind : all_groups()) {
    out += fmt("# %d  %-13s  %s\n", group_no++, capsnet::op_kind_name(kind),
               group_description(kind));
    out += "     sites:";
    int printed = 0;
    for (const Site& s : sites) {
      if (s.kind != kind) continue;
      out += " " + s.layer;
      ++printed;
    }
    if (printed == 0) out += " (none)";
    out += "\n";
  }
  return out;
}

std::string render_report(const MethodologyResult& r) {
  std::string out;
  out += fmt("=== ReD-CaNe report: %s on %s ===\n", r.model_name.c_str(),
             r.dataset_name.c_str());
  out += fmt("baseline accuracy: %.2f%%\n\n", r.baseline_accuracy * 100.0);

  out += "--- Step 1: groups (Table III) ---\n";
  out += render_groups(r.sites);

  out += "\n--- Step 2: group-wise resilience ---\n";
  for (const ResilienceCurve& c : r.group_curves) out += render_curve(c);

  out += "\n--- Step 3: marks ---\nresilient groups:";
  for (capsnet::OpKind k : r.resilient_groups) out += fmt(" [%s]", capsnet::op_kind_name(k));
  out += "\nnon-resilient groups:";
  for (capsnet::OpKind k : r.non_resilient_groups) {
    out += fmt(" [%s]", capsnet::op_kind_name(k));
  }
  out += "\n";

  out += "\n--- Step 4/5: layer-wise resilience of non-resilient groups ---\n";
  for (const ResilienceCurve& c : r.layer_curves) out += render_curve(c);
  out += "resilient layers:";
  for (const std::string& l : r.resilient_layers) out += " [" + l + "]";
  out += fmt("\nevaluations run: %lld, saved by Step-4 pruning: %lld\n",
             static_cast<long long>(r.evaluations_run),
             static_cast<long long>(r.evaluations_saved_by_pruning));
  out += fmt(
      "sweep engine: %d thread(s), %lld prefix-cache hits, "
      "%lld/%lld stage executions skipped (%.1f%%)\n",
      r.sweep_stats.threads, static_cast<long long>(r.sweep_stats.cache_hits),
      static_cast<long long>(r.sweep_stats.stages_skipped),
      static_cast<long long>(r.sweep_stats.stages_total),
      r.sweep_stats.skip_fraction() * 100.0);

  out += "\n--- Step 6: selected approximate components ---\n";
  for (const SiteSelection& s : r.selections) {
    out += fmt("  %-28s tolerable NM %-8.4g -> %-18s (power saving %4.1f%%)\n",
               s.site.to_string().c_str(), s.tolerable_nm,
               s.component->info().name.c_str(), s.power_saving() * 100.0);
  }
  out += fmt("mean MAC-datapath power saving: %.1f%%\n",
             r.mean_mac_power_saving() * 100.0);

  if (r.has_cross_validation) {
    const CrossValidationResult& cv = r.cross_validation;
    out += "\n--- Step 7: noise-model cross-validation (predicted vs emulated) ---\n";
    for (const CrossValidationEntry& e : cv.entries) {
      out += fmt("  %-28s %-18s predicted %6.2f%%  emulated %6.2f%%  delta %+6.2f pp\n",
                 e.site.to_string().c_str(), e.component.c_str(),
                 e.predicted_accuracy * 100.0, e.emulated_accuracy * 100.0, e.delta_pp());
    }
    out += fmt("joint design: predicted %.2f%%, emulated %.2f%% (delta %+.2f pp); "
               "max per-selection |delta| %.2f pp\n",
               cv.predicted_joint * 100.0, cv.emulated_joint * 100.0, cv.joint_delta_pp(),
               cv.max_abs_delta_pp());
  }

  if (r.has_robustness) {
    const RobustnessResult& rb = r.robustness;
    out += "\n--- Step 8: robustness scenarios (attack/transform x approximation) ---\n";
    out += fmt("clean unattacked accuracy: %.2f%%\n", rb.baseline_accuracy * 100.0);
    for (const RobustnessGrid& g : rb.grids) out += render_robustness_grid(g);
    out += fmt("input-keyed prefix cache: %lld perturbed sets built, %lld reused "
               "(hit rate %.0f%%)\n",
               static_cast<long long>(rb.sweep_stats.input_sets),
               static_cast<long long>(rb.sweep_stats.input_cache_hits),
               rb.sweep_stats.input_hit_rate() * 100.0);
  }
  return out;
}

}  // namespace redcane::core
