#include "core/resilience.hpp"

#include <cmath>
#include <cstdio>

#include "backend/emulation.hpp"
#include "capsnet/trainer.hpp"

namespace redcane::core {
namespace {

SweepEngineConfig engine_config(const ResilienceConfig& cfg) {
  SweepEngineConfig ec;
  ec.seed = cfg.seed;
  ec.eval_batch = cfg.eval_batch;
  ec.threads = cfg.threads;
  ec.prefix_cache = cfg.prefix_cache;
  return ec;
}

}  // namespace

double ResilienceCurve::tolerable_nm(double tolerance_pct) const {
  double best = 0.0;
  for (std::size_t i = 0; i < nms.size(); ++i) {
    if (nms[i] == 0.0) continue;
    if (std::abs(drop_pct[i]) <= tolerance_pct && nms[i] > best) best = nms[i];
  }
  return best;
}

ResilienceAnalyzer::ResilienceAnalyzer(capsnet::CapsModel& model, const Tensor& test_x,
                                       const std::vector<std::int64_t>& test_y,
                                       ResilienceConfig cfg)
    : cfg_(cfg), engine_(model, test_x, test_y, engine_config(cfg)) {}

double ResilienceAnalyzer::baseline() { return engine_.clean_accuracy(); }

double ResilienceAnalyzer::accuracy_with_rules(const std::vector<noise::InjectionRule>& rules,
                                               std::uint64_t salt) {
  return engine_.point_accuracy(rules, salt);
}

ResilienceCurve ResilienceAnalyzer::sweep(capsnet::OpKind kind,
                                          const std::optional<std::string>& layer) {
  ResilienceCurve curve;
  curve.kind = kind;
  curve.layer = layer;
  curve.label = layer.value_or(std::string(capsnet::op_kind_name(kind)));
  const double base = baseline();

  // Grid points, salted in grid order exactly as the serial driver salted
  // them; the clean point reads the cached baseline.
  std::vector<SweepPointSpec> points;
  std::vector<std::size_t> point_of_nm;  // Index into `points`, or npos for clean.
  constexpr std::size_t kClean = static_cast<std::size_t>(-1);
  std::uint64_t salt = 1;
  for (double nm : cfg_.sweep.nms) {
    if (nm == 0.0 && cfg_.sweep.na == 0.0) {
      point_of_nm.push_back(kClean);
      continue;
    }
    const noise::NoiseSpec spec{nm, cfg_.sweep.na};
    SweepPointSpec p;
    if (layer.has_value()) {
      p.rules.push_back(noise::layer_rule(kind, *layer, spec));
    } else {
      p.rules.push_back(noise::group_rule(kind, spec));
    }
    p.salt = salt++;
    point_of_nm.push_back(points.size());
    points.push_back(std::move(p));
  }

  const std::vector<double> acc = engine_.run_points(points);
  for (std::size_t i = 0; i < cfg_.sweep.nms.size(); ++i) {
    const double a = point_of_nm[i] == kClean ? base : acc[point_of_nm[i]];
    curve.nms.push_back(cfg_.sweep.nms[i]);
    curve.drop_pct.push_back((a - base) * 100.0);
  }
  return curve;
}

RobustnessGrid ResilienceAnalyzer::sweep_attack_exact(const attack::Scenario& scenario) {
  RobustnessGrid grid;
  grid.scenario = scenario.name();
  grid.backend = "exact";
  for (double severity : scenario.severities) {
    grid.severities.push_back(severity);
    grid.accuracy.push_back(engine_.attacked_accuracy(scenario.at(severity)));
  }
  return grid;
}

RobustnessGrid ResilienceAnalyzer::sweep_attack_noise(const attack::Scenario& scenario,
                                                      capsnet::OpKind group) {
  RobustnessGrid grid;
  grid.scenario = scenario.name();
  grid.backend = "noise";
  grid.nms = cfg_.sweep.nms;

  for (double severity : scenario.severities) {
    const attack::AttackSpec spec = scenario.at(severity);
    grid.severities.push_back(severity);

    // Same grid-order salting discipline as the Step-2/4 sweeps, restarted
    // per severity row: a row's noise streams do not depend on which rows
    // ran before it, so single-row and full-grid runs agree bitwise. The
    // clean NM = 0 point reads the cached attacked accuracy.
    std::vector<SweepPointSpec> points;
    std::vector<std::size_t> point_of_nm;
    constexpr std::size_t kClean = static_cast<std::size_t>(-1);
    std::uint64_t salt = 1;
    for (double nm : cfg_.sweep.nms) {
      if (nm == 0.0 && cfg_.sweep.na == 0.0) {
        point_of_nm.push_back(kClean);
        continue;
      }
      SweepPointSpec p;
      p.rules.push_back(noise::group_rule(group, noise::NoiseSpec{nm, cfg_.sweep.na}));
      p.salt = salt++;
      point_of_nm.push_back(points.size());
      points.push_back(std::move(p));
    }

    const double attacked_base = engine_.attacked_accuracy(spec);
    const std::vector<double> acc = engine_.run_attacked_points(spec, points);
    for (std::size_t i = 0; i < cfg_.sweep.nms.size(); ++i) {
      grid.accuracy.push_back(point_of_nm[i] == kClean ? attacked_base
                                                       : acc[point_of_nm[i]]);
    }
  }
  return grid;
}

RobustnessGrid ResilienceAnalyzer::sweep_attack_emulated(
    const attack::Scenario& scenario, const std::vector<std::string>& components,
    int bits) {
  RobustnessGrid grid;
  grid.scenario = scenario.name();
  grid.backend = "emulated";

  // All MAC-output layers of this model, discovered by probing — the same
  // site set a deployment manifest plans.
  const Tensor probe = capsnet::slice_rows(engine_.test_x(), 0, 1);
  std::vector<std::string> mac_layers;
  for (const Site& site : extract_sites(engine_.model(), probe)) {
    if (site.kind == capsnet::OpKind::kMacOutput) mac_layers.push_back(site.layer);
  }

  std::vector<backend::EmulationPlan> plans;
  for (const std::string& component : components) {
    backend::EmulationPlan plan;
    bool ok = true;
    for (const std::string& layer : mac_layers) {
      ok = ok && plan.set_by_name(layer, component, /*adder=*/"", bits);
    }
    if (!ok) {
      std::fprintf(stderr,
                   "redcane::core: skipping unknown emulated component '%s' in "
                   "Step-8 grid\n",
                   component.c_str());
      continue;
    }
    grid.components.push_back(component);
    plans.push_back(std::move(plan));
  }

  for (double severity : scenario.severities) {
    const attack::AttackSpec spec = scenario.at(severity);
    grid.severities.push_back(severity);
    for (const backend::EmulationPlan& plan : plans) {
      grid.accuracy.push_back(engine_.attacked_backend_accuracy(
          spec, backend::EmulatedBackend(plan), /*salt=*/0));
    }
  }
  return grid;
}

ResilienceCurve ResilienceAnalyzer::sweep_group(capsnet::OpKind kind) {
  return sweep(kind, std::nullopt);
}

ResilienceCurve ResilienceAnalyzer::sweep_layer(capsnet::OpKind kind,
                                                const std::string& layer) {
  return sweep(kind, layer);
}

}  // namespace redcane::core
