#include "core/resilience.hpp"

#include <cmath>
#include <cstdio>

#include "backend/emulation.hpp"
#include "capsnet/trainer.hpp"
#include "core/sweep_plan.hpp"

namespace redcane::core {
namespace {

SweepEngineConfig engine_config(const ResilienceConfig& cfg) {
  SweepEngineConfig ec;
  ec.seed = cfg.seed;
  ec.eval_batch = cfg.eval_batch;
  ec.threads = cfg.threads;
  ec.prefix_cache = cfg.prefix_cache;
  return ec;
}

}  // namespace

double ResilienceCurve::tolerable_nm(double tolerance_pct) const {
  double best = 0.0;
  for (std::size_t i = 0; i < nms.size(); ++i) {
    if (nms[i] == 0.0) continue;
    if (std::abs(drop_pct[i]) <= tolerance_pct && nms[i] > best) best = nms[i];
  }
  return best;
}

ResilienceAnalyzer::ResilienceAnalyzer(capsnet::CapsModel& model, const Tensor& test_x,
                                       const std::vector<std::int64_t>& test_y,
                                       ResilienceConfig cfg)
    : cfg_(cfg), engine_(model, test_x, test_y, engine_config(cfg)) {}

double ResilienceAnalyzer::baseline() { return engine_.clean_accuracy(); }

double ResilienceAnalyzer::accuracy_with_rules(const std::vector<noise::InjectionRule>& rules,
                                               std::uint64_t salt) {
  return engine_.point_accuracy(rules, salt);
}

ResilienceCurve ResilienceAnalyzer::sweep(capsnet::OpKind kind,
                                          const std::optional<std::string>& layer) {
  // Plan (grid geometry + grid-order salting), execute on the engine,
  // assemble — the same three phases the distributed coordinator runs,
  // so in-process and sharded sweeps are bit-identical by construction.
  const CurvePlan plan = plan_curve(cfg_.sweep, kind, layer);
  const double base = baseline();
  const std::vector<double> acc = engine_.run_points(plan.points);
  return assemble_curve(plan, base, acc);
}

RobustnessGrid ResilienceAnalyzer::sweep_attack_exact(const attack::Scenario& scenario) {
  RobustnessGrid grid;
  grid.scenario = scenario.name();
  grid.backend = "exact";
  for (double severity : scenario.severities) {
    grid.severities.push_back(severity);
    grid.accuracy.push_back(engine_.attacked_accuracy(scenario.at(severity)));
  }
  return grid;
}

RobustnessGrid ResilienceAnalyzer::sweep_attack_noise(const attack::Scenario& scenario,
                                                      capsnet::OpKind group) {
  // Salts restart at 1 per severity row (see plan_attack_noise): a row's
  // noise streams do not depend on which rows ran before it, so single-row
  // shards and full-grid runs agree bitwise.
  const NoiseGridPlan plan = plan_attack_noise(cfg_.sweep, scenario, group);
  std::vector<RowResult> rows;
  for (const NoiseGridRowPlan& row : plan.rows) {
    RowResult r;
    r.base = engine_.attacked_accuracy(row.spec);
    r.acc = engine_.run_attacked_points(row.spec, row.points);
    rows.push_back(std::move(r));
  }
  return assemble_attack_noise(plan, rows);
}

RobustnessGrid ResilienceAnalyzer::sweep_attack_emulated(
    const attack::Scenario& scenario, const std::vector<std::string>& components,
    int bits) {
  RobustnessGrid grid;
  grid.scenario = scenario.name();
  grid.backend = "emulated";

  // All MAC-output layers of this model, discovered by probing — the same
  // site set a deployment manifest plans (make_component_plan).
  const Tensor probe = capsnet::slice_rows(engine_.test_x(), 0, 1);
  std::vector<backend::EmulationPlan> plans;
  for (const std::string& component : components) {
    backend::EmulationPlan plan;
    if (!make_component_plan(engine_.model(), probe, component, bits, &plan)) {
      std::fprintf(stderr,
                   "redcane::core: skipping unknown emulated component '%s' in "
                   "Step-8 grid\n",
                   component.c_str());
      continue;
    }
    grid.components.push_back(component);
    plans.push_back(std::move(plan));
  }

  for (double severity : scenario.severities) {
    const attack::AttackSpec spec = scenario.at(severity);
    grid.severities.push_back(severity);
    for (const backend::EmulationPlan& plan : plans) {
      grid.accuracy.push_back(engine_.attacked_backend_accuracy(
          spec, backend::EmulatedBackend(plan), /*salt=*/0));
    }
  }
  return grid;
}

ResilienceCurve ResilienceAnalyzer::sweep_group(capsnet::OpKind kind) {
  return sweep(kind, std::nullopt);
}

ResilienceCurve ResilienceAnalyzer::sweep_layer(capsnet::OpKind kind,
                                                const std::string& layer) {
  return sweep(kind, layer);
}

}  // namespace redcane::core
