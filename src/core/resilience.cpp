#include "core/resilience.hpp"

#include <cmath>

#include "capsnet/trainer.hpp"

namespace redcane::core {

double ResilienceCurve::tolerable_nm(double tolerance_pct) const {
  double best = 0.0;
  for (std::size_t i = 0; i < nms.size(); ++i) {
    if (nms[i] == 0.0) continue;
    if (std::abs(drop_pct[i]) <= tolerance_pct && nms[i] > best) best = nms[i];
  }
  return best;
}

ResilienceAnalyzer::ResilienceAnalyzer(capsnet::CapsModel& model, const Tensor& test_x,
                                       const std::vector<std::int64_t>& test_y,
                                       ResilienceConfig cfg)
    : model_(model), test_x_(test_x), test_y_(test_y), cfg_(cfg) {}

double ResilienceAnalyzer::baseline() {
  if (!baseline_.has_value()) {
    baseline_ = capsnet::evaluate(model_, test_x_, test_y_, nullptr, cfg_.eval_batch);
  }
  return *baseline_;
}

double ResilienceAnalyzer::accuracy_with_rules(const std::vector<noise::InjectionRule>& rules,
                                               std::uint64_t salt) {
  noise::GaussianInjector injector(rules, cfg_.seed ^ (salt * 0x9E3779B97F4A7C15ULL));
  ++evaluations_;
  return capsnet::evaluate(model_, test_x_, test_y_, &injector, cfg_.eval_batch);
}

ResilienceCurve ResilienceAnalyzer::sweep(capsnet::OpKind kind,
                                          const std::optional<std::string>& layer) {
  ResilienceCurve curve;
  curve.kind = kind;
  curve.layer = layer;
  curve.label = layer.value_or(std::string(capsnet::op_kind_name(kind)));
  const double base = baseline();

  std::uint64_t salt = 1;
  for (double nm : cfg_.sweep.nms) {
    const noise::NoiseSpec spec{nm, cfg_.sweep.na};
    std::vector<noise::InjectionRule> rules;
    if (layer.has_value()) {
      rules.push_back(noise::layer_rule(kind, *layer, spec));
    } else {
      rules.push_back(noise::group_rule(kind, spec));
    }
    const double acc =
        (nm == 0.0 && cfg_.sweep.na == 0.0) ? base : accuracy_with_rules(rules, salt++);
    curve.nms.push_back(nm);
    curve.drop_pct.push_back((acc - base) * 100.0);
  }
  return curve;
}

ResilienceCurve ResilienceAnalyzer::sweep_group(capsnet::OpKind kind) {
  return sweep(kind, std::nullopt);
}

ResilienceCurve ResilienceAnalyzer::sweep_layer(capsnet::OpKind kind,
                                                const std::string& layer) {
  return sweep(kind, layer);
}

}  // namespace redcane::core
