#include "core/groups.hpp"

#include <algorithm>

namespace redcane::core {
namespace {

/// Hook that records the (layer, kind) visit order without perturbing.
class SiteCollector final : public capsnet::PerturbationHook {
 public:
  void process(const std::string& layer, capsnet::OpKind kind, Tensor& x) override {
    (void)x;
    const Site s{layer, kind};
    if (std::find(sites_.begin(), sites_.end(), s) == sites_.end()) sites_.push_back(s);
  }

  [[nodiscard]] std::vector<Site> take() { return std::move(sites_); }

 private:
  std::vector<Site> sites_;
};

}  // namespace

std::array<capsnet::OpKind, 4> all_groups() {
  return {capsnet::OpKind::kMacOutput, capsnet::OpKind::kActivation,
          capsnet::OpKind::kSoftmax, capsnet::OpKind::kLogitsUpdate};
}

const char* group_description(capsnet::OpKind kind) {
  switch (kind) {
    case capsnet::OpKind::kMacOutput:
      return "Outputs of the matrix multiplications";
    case capsnet::OpKind::kActivation:
      return "Output of the activation functions (RELU or SQUASH)";
    case capsnet::OpKind::kSoftmax:
      return "Results of the softmax (k coefficients in dynamic routing)";
    case capsnet::OpKind::kLogitsUpdate:
      return "Update of the logits (b coefficients in dynamic routing)";
  }
  return "?";
}

std::vector<Site> extract_sites(capsnet::CapsModel& model, const Tensor& probe_x) {
  SiteCollector collector;
  (void)model.forward(probe_x, /*train=*/false, &collector);
  return collector.take();
}

std::vector<Site> sites_of_group(const std::vector<Site>& sites, capsnet::OpKind kind) {
  std::vector<Site> out;
  for (const Site& s : sites) {
    if (s.kind == kind) out.push_back(s);
  }
  return out;
}

std::vector<std::string> layers_of_group(const std::vector<Site>& sites,
                                         capsnet::OpKind kind) {
  std::vector<std::string> out;
  for (const Site& s : sites) {
    if (s.kind != kind) continue;
    if (std::find(out.begin(), out.end(), s.layer) == out.end()) out.push_back(s.layer);
  }
  return out;
}

}  // namespace redcane::core
