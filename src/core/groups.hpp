// Step 1 of ReD-CaNe: Group Extraction (paper Sec. IV, Table III).
//
// The operations of a CapsNet inference are partitioned into four groups
// by operation type: MAC outputs, activations, softmax results, and logits
// updates. Sites are discovered dynamically — a probe inference runs with
// a recording hook, so the extracted list is exactly the set of tensors
// the real inference produces (no hand-maintained tables).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "capsnet/model.hpp"

namespace redcane::core {

/// One injectable operation site: a (layer, operation-kind) pair.
struct Site {
  std::string layer;     ///< Layer name, e.g. "Conv1", "Caps2D7".
  capsnet::OpKind kind;  ///< Operation group of Table III.

  [[nodiscard]] std::string to_string() const {
    return layer + "/" + capsnet::op_kind_name(kind);
  }
  [[nodiscard]] bool operator==(const Site& o) const {
    return layer == o.layer && kind == o.kind;
  }
};

/// The four groups of Table III, in the paper's numbering order.
[[nodiscard]] std::array<capsnet::OpKind, 4> all_groups();

/// Paper Table III description of a group.
[[nodiscard]] const char* group_description(capsnet::OpKind kind);

/// Discovers all sites by probing the model with one forward pass of
/// `probe_x` (any small batch with the model's input shape). Sites are
/// returned in execution order, first occurrence only.
[[nodiscard]] std::vector<Site> extract_sites(capsnet::CapsModel& model, const Tensor& probe_x);

/// Sites belonging to one group.
[[nodiscard]] std::vector<Site> sites_of_group(const std::vector<Site>& sites,
                                               capsnet::OpKind kind);

/// Distinct layer names of a group's sites, in execution order.
[[nodiscard]] std::vector<std::string> layers_of_group(const std::vector<Site>& sites,
                                                       capsnet::OpKind kind);

}  // namespace redcane::core
