// Distributed sweep worker: connects to a coordinator, executes assigned
// shards on its own SweepEngine, streams results back, and heartbeats.
//
// Each worker process builds its own model + test set (bitwise identical
// by construction: same training seed, same synthetic data generator —
// the job hash verifies the recipe at handshake). The worker never makes
// scheduling decisions: it runs exactly what it is assigned, one shard at
// a time, and the coordinator owns retry, reassignment, and dedup.
//
// Threads: one serving loop (recv/execute/send) plus one heartbeat
// thread sharing the socket under a send mutex, so a multi-second shard
// evaluation cannot starve the coordinator's liveness deadline. The
// serving thread pins OpenMP to one thread — dist workers are the
// parallelism; letting each also fan out over all cores oversubscribes
// the machine.
//
// Fault sites (serve/fault, armed only in tests/chaos): kill-after-N-
// shards (exit without sending the pending result — the hard-crash
// case), heartbeat drop/delay, result-frame corruption, pre-send socket
// stall.
#pragma once

#include <cstdint>
#include <string>

#include "core/sweep_engine.hpp"

namespace redcane::dist {

struct WorkerConfig {
  std::string addr;             ///< Coordinator address (dist_listen grammar).
  std::string name = "worker";  ///< Diagnostic + kill_name fault selector.
  std::uint64_t job_hash = 0;   ///< Must match the coordinator's job.
  std::int64_t heartbeat_interval_ms = 100;
  std::int64_t connect_wait_ms = 5000;  ///< Total budget for connect retries.
};

struct WorkerStats {
  std::uint64_t shards_done = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeat_acks = 0;  ///< HeartbeatAck frames received.
  std::uint64_t last_rtt_us = 0;     ///< Latest measured heartbeat RTT.
  bool handshake_ok = false;
  bool killed_by_fault = false;  ///< Exited via the kill_after fault site.
  std::string error;             ///< Terminal diagnostic ("" = clean shutdown).
};

/// Runs one worker until the coordinator shuts it down, the connection
/// dies, or a fault kills it. Blocking; call from a dedicated thread or
/// a worker process's main.
[[nodiscard]] WorkerStats run_worker(core::SweepEngine& engine, const WorkerConfig& cfg);

}  // namespace redcane::dist
