#include "dist/job.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "core/groups.hpp"
#include "data/synthetic.hpp"
#include "util/crc32.hpp"

namespace redcane::dist {
namespace {

struct Profile {
  capsnet::CapsNetConfig model_cfg;
  data::SyntheticSpec data_spec;
  core::ResilienceConfig rc;
  std::uint64_t model_seed = 2020;
  std::vector<capsnet::OpKind> group_kinds;
  bool all_mac_layers = false;  ///< Step-4 curves for every MAC layer vs the first.
  std::vector<double> severities;
  std::vector<std::string> components;
  std::size_t chunk = 2;  ///< Max noise points per shard.
};

Profile quick_profile() {
  Profile p;
  // Mirrors the sweep-engine test model: every injection site present at a
  // scale where the whole job runs in seconds.
  p.model_cfg.input_hw = 14;
  p.model_cfg.conv1_kernel = 5;
  p.model_cfg.conv1_channels = 8;
  p.model_cfg.primary_kernel = 5;
  p.model_cfg.primary_stride = 2;
  p.model_cfg.primary_types = 2;
  p.model_cfg.primary_dim = 4;
  p.model_cfg.class_dim = 4;
  p.data_spec.hw = 14;
  p.data_spec.train_count = 4;  // Unused: jobs evaluate, never train.
  p.data_spec.test_count = 32;
  p.data_spec.seed = 99;
  p.rc.sweep.nms = {0.5, 0.1, 0.02, 0.0};
  p.rc.eval_batch = 16;
  p.group_kinds = {capsnet::OpKind::kMacOutput, capsnet::OpKind::kSoftmax};
  p.severities = {0.05, 0.1};
  p.components = {"axm_exact", "axm_drum4_dm1"};
  return p;
}

Profile full_profile() {
  Profile p;
  p.model_cfg = capsnet::CapsNetConfig::tiny();
  p.data_spec.hw = p.model_cfg.input_hw;
  p.data_spec.train_count = 4;
  p.data_spec.test_count = 192;
  p.data_spec.seed = 99;
  p.rc.sweep = core::NmSweep::paper();
  p.rc.eval_batch = 64;
  p.group_kinds = {capsnet::OpKind::kMacOutput, capsnet::OpKind::kActivation,
                   capsnet::OpKind::kSoftmax, capsnet::OpKind::kLogitsUpdate};
  p.all_mac_layers = true;
  p.severities = {0.05, 0.1, 0.2};
  p.components = {"axm_exact", "axm_drum4_dm1", "axm_res2_14vp"};
  return p;
}

void append_kv(std::string& s, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g;", key, v);
  s += buf;
}

void append_kv(std::string& s, const char* key, std::int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%" PRId64 ";", key, v);
  s += buf;
}

/// The job hash: CRC-32 of the complete recipe. Anything that could make
/// two participants disagree on a value — model shape or seed, dataset
/// generator inputs, grid geometry, chunking — must be in here.
std::uint64_t hash_recipe(const Profile& p, const std::string& profile,
                          const std::vector<std::string>& mac_layers) {
  std::string s = "redcane-dist-job-v1;profile=" + profile + ";model=capsnet;";
  append_kv(s, "hw", p.model_cfg.input_hw);
  append_kv(s, "c1k", p.model_cfg.conv1_kernel);
  append_kv(s, "c1c", p.model_cfg.conv1_channels);
  append_kv(s, "pk", p.model_cfg.primary_kernel);
  append_kv(s, "ps", p.model_cfg.primary_stride);
  append_kv(s, "pt", p.model_cfg.primary_types);
  append_kv(s, "pd", p.model_cfg.primary_dim);
  append_kv(s, "cd", p.model_cfg.class_dim);
  append_kv(s, "mseed", static_cast<std::int64_t>(p.model_seed));
  append_kv(s, "dhw", p.data_spec.hw);
  append_kv(s, "dtest", p.data_spec.test_count);
  append_kv(s, "dseed", static_cast<std::int64_t>(p.data_spec.seed));
  append_kv(s, "seed", static_cast<std::int64_t>(p.rc.seed));
  append_kv(s, "batch", p.rc.eval_batch);
  append_kv(s, "na", p.rc.sweep.na);
  for (double nm : p.rc.sweep.nms) append_kv(s, "nm", nm);
  for (capsnet::OpKind k : p.group_kinds)
    append_kv(s, "kind", static_cast<std::int64_t>(k));
  for (const std::string& layer : mac_layers) s += "layer=" + layer + ";";
  for (double sev : p.severities) append_kv(s, "sev", sev);
  for (const std::string& c : p.components) s += "comp=" + c + ";";
  append_kv(s, "bits", std::int64_t{8});
  append_kv(s, "chunk", static_cast<std::int64_t>(p.chunk));
  return util::crc32(s.data(), s.size());
}

}  // namespace

core::SweepEngineConfig job_engine_config(const StandardJob& job, int threads) {
  core::SweepEngineConfig ec;
  ec.seed = job.rc.seed;
  ec.eval_batch = job.rc.eval_batch;
  ec.threads = threads;
  ec.prefix_cache = job.rc.prefix_cache;
  return ec;
}

StandardJob make_standard_job(const std::string& profile) {
  Profile p;
  if (profile == "quick") {
    p = quick_profile();
  } else if (profile == "full") {
    p = full_profile();
  } else {
    std::fprintf(stderr, "dist: unknown job profile '%s'\n", profile.c_str());
    std::abort();
  }

  StandardJob job;
  job.profile = profile;
  job.rc = p.rc;

  // Deterministic weights: same Rng seed => bitwise-identical parameters
  // in every process. Jobs evaluate resilience geometry, so an untrained
  // (but fixed) model is sufficient — and keeps workers start-up cheap.
  Rng rng(p.model_seed);
  job.model = std::make_unique<capsnet::CapsNetModel>(p.model_cfg, rng);
  job.dataset = data::make_synthetic(p.data_spec);

  job.scenario.kind = attack::AttackKind::kFgsm;
  job.scenario.severities = p.severities;
  job.components = p.components;
  job.bits = 8;
  job.noise_group = capsnet::OpKind::kMacOutput;

  // Step-4 layers, discovered the same way the analyzer discovers them.
  const Tensor probe = capsnet::slice_rows(job.dataset.test_x, 0, 1);
  std::vector<std::string> mac_layers;
  for (const core::Site& site : core::extract_sites(*job.model, probe)) {
    if (site.kind != capsnet::OpKind::kMacOutput) continue;
    mac_layers.push_back(site.layer);
    if (!p.all_mac_layers) break;
  }

  job.job_hash = hash_recipe(p, profile, mac_layers);

  std::uint64_t next_id = 0;
  const auto add_chunks = [&](const attack::AttackSpec& spec,
                              const std::vector<core::SweepPointSpec>& points)
      -> std::vector<std::uint64_t> {
    std::vector<core::SweepShard> chunks =
        core::chunk_shards(next_id, spec, points, p.chunk);
    std::vector<std::uint64_t> ids;
    for (core::SweepShard& s : chunks) {
      ids.push_back(s.id);
      job.shards.push_back(std::move(s));
    }
    next_id += ids.size();
    return ids;
  };

  // Steps 2/4: group curves, then layer curves.
  const auto add_curve = [&](capsnet::OpKind kind,
                             const std::optional<std::string>& layer) {
    CurveRoute route;
    route.plan = core::plan_curve(job.rc.sweep, kind, layer);
    route.shard_ids = add_chunks(attack::AttackSpec::none(), route.plan.points);
    job.curves.push_back(std::move(route));
  };
  for (capsnet::OpKind kind : p.group_kinds) add_curve(kind, std::nullopt);
  for (const std::string& layer : mac_layers)
    add_curve(capsnet::OpKind::kMacOutput, layer);

  // Step 8, exact backend: one point-less shard per severity.
  {
    ExactGridRoute route;
    route.scenario = job.scenario.name();
    for (double sev : p.severities) {
      route.severities.push_back(sev);
      const std::vector<std::uint64_t> ids =
          add_chunks(job.scenario.at(sev), {});
      route.shard_ids.push_back(ids.front());
    }
    job.exact_grids.push_back(std::move(route));
  }

  // Step 8, noise backend: per-row chunks (salts restart per row, so rows
  // shard independently).
  {
    NoiseGridRoute route;
    route.plan = core::plan_attack_noise(job.rc.sweep, job.scenario, job.noise_group);
    for (const core::NoiseGridRowPlan& row : route.plan.rows)
      route.row_shard_ids.push_back(add_chunks(row.spec, row.points));
    job.noise_grids.push_back(std::move(route));
  }

  // Step 8, emulated backend: one single-value shard per (severity,
  // component) cell, row-major.
  {
    EmulatedGridRoute route;
    route.scenario = job.scenario.name();
    route.components = p.components;
    for (double sev : p.severities) {
      route.severities.push_back(sev);
      for (const std::string& component : p.components) {
        core::SweepShard shard;
        shard.id = next_id++;
        shard.spec = job.scenario.at(sev);
        shard.backend = core::ShardBackend::kEmulated;
        shard.component = component;
        shard.bits = job.bits;
        route.shard_ids.push_back(shard.id);
        job.shards.push_back(std::move(shard));
      }
    }
    job.emulated_grids.push_back(std::move(route));
  }

  return job;
}

JobGrids assemble_job(const StandardJob& job,
                      const std::vector<core::ShardOutcome>& outcomes) {
  // Outcomes are parallel to job.shards; shard ids are consecutive from 0,
  // but index defensively through a map anyway.
  std::vector<const core::ShardOutcome*> by_id(job.shards.size(), nullptr);
  for (std::size_t i = 0; i < job.shards.size() && i < outcomes.size(); ++i) {
    const std::uint64_t id = outcomes[i].id;
    if (id < by_id.size()) by_id[id] = &outcomes[i];
  }
  const auto outcome_of = [&](std::uint64_t id) -> const core::ShardOutcome& {
    return *by_id[id];
  };

  JobGrids out;
  for (const CurveRoute& route : job.curves) {
    std::vector<double> acc;
    for (std::uint64_t id : route.shard_ids) {
      const core::ShardOutcome& o = outcome_of(id);
      acc.insert(acc.end(), o.acc.begin(), o.acc.end());
    }
    const double base = outcome_of(route.shard_ids.front()).base;
    out.curves.push_back(core::assemble_curve(route.plan, base, acc));
  }

  for (const ExactGridRoute& route : job.exact_grids) {
    core::RobustnessGrid grid;
    grid.scenario = route.scenario;
    grid.backend = "exact";
    for (std::size_t i = 0; i < route.severities.size(); ++i) {
      grid.severities.push_back(route.severities[i]);
      grid.accuracy.push_back(outcome_of(route.shard_ids[i]).base);
    }
    out.grids.push_back(std::move(grid));
  }

  for (const NoiseGridRoute& route : job.noise_grids) {
    std::vector<core::RowResult> rows;
    for (const std::vector<std::uint64_t>& ids : route.row_shard_ids) {
      core::RowResult r;
      r.base = outcome_of(ids.front()).base;
      for (std::uint64_t id : ids) {
        const core::ShardOutcome& o = outcome_of(id);
        r.acc.insert(r.acc.end(), o.acc.begin(), o.acc.end());
      }
      rows.push_back(std::move(r));
    }
    out.grids.push_back(core::assemble_attack_noise(route.plan, rows));
  }

  for (const EmulatedGridRoute& route : job.emulated_grids) {
    core::RobustnessGrid grid;
    grid.scenario = route.scenario;
    grid.backend = "emulated";
    grid.components = route.components;
    grid.severities = route.severities;
    for (std::uint64_t id : route.shard_ids)
      grid.accuracy.push_back(outcome_of(id).acc.front());
    out.grids.push_back(std::move(grid));
  }
  return out;
}

JobGrids run_job_in_process(StandardJob& job) {
  core::ResilienceAnalyzer analyzer(*job.model, job.dataset.test_x,
                                    job.dataset.test_y, job.rc);
  JobGrids out;
  for (const CurveRoute& route : job.curves) {
    if (route.plan.layer.has_value()) {
      out.curves.push_back(analyzer.sweep_layer(route.plan.kind, *route.plan.layer));
    } else {
      out.curves.push_back(analyzer.sweep_group(route.plan.kind));
    }
  }
  for (std::size_t i = 0; i < job.exact_grids.size(); ++i)
    out.grids.push_back(analyzer.sweep_attack_exact(job.scenario));
  for (std::size_t i = 0; i < job.noise_grids.size(); ++i)
    out.grids.push_back(analyzer.sweep_attack_noise(job.scenario, job.noise_group));
  for (std::size_t i = 0; i < job.emulated_grids.size(); ++i)
    out.grids.push_back(
        analyzer.sweep_attack_emulated(job.scenario, job.components, job.bits));
  return out;
}

bool grids_identical(const JobGrids& a, const JobGrids& b) {
  if (a.curves.size() != b.curves.size() || a.grids.size() != b.grids.size())
    return false;
  for (std::size_t i = 0; i < a.curves.size(); ++i) {
    const core::ResilienceCurve& x = a.curves[i];
    const core::ResilienceCurve& y = b.curves[i];
    if (x.label != y.label || x.nms != y.nms) return false;
    if (x.drop_pct.size() != y.drop_pct.size()) return false;
    for (std::size_t j = 0; j < x.drop_pct.size(); ++j) {
      if (x.drop_pct[j] != y.drop_pct[j]) return false;  // Bitwise, no tolerance.
    }
  }
  for (std::size_t i = 0; i < a.grids.size(); ++i) {
    const core::RobustnessGrid& x = a.grids[i];
    const core::RobustnessGrid& y = b.grids[i];
    if (x.scenario != y.scenario || x.backend != y.backend ||
        x.severities != y.severities || x.nms != y.nms ||
        x.components != y.components)
      return false;
    if (x.accuracy.size() != y.accuracy.size()) return false;
    for (std::size_t j = 0; j < x.accuracy.size(); ++j) {
      if (x.accuracy[j] != y.accuracy[j]) return false;
    }
  }
  return true;
}

}  // namespace redcane::dist
