// The "standard job": a fully specified distributed sweep — model recipe,
// dataset recipe, grid geometry, sharding, and assembly routing — that
// every participant (coordinator, worker processes, the in-process
// bitwise reference) can rebuild independently from a profile name.
//
// Distribution never ships weights or data: a worker reconstructs the
// model from the same deterministic Rng seed and the dataset from the
// same synthetic-generator spec, so its copies are bitwise identical to
// the coordinator's by construction. The job hash — a CRC-32 of the full
// recipe string (profile, model config, dataset spec, seeds, grid
// geometry, chunking) — travels in the Hello handshake and the journal
// header, refusing any participant whose recipe drifted.
//
// Grid contents per profile (all three Step-8 backends + Steps 2/4):
//   Step 2  group curves (plan_curve) over selected OpKinds
//   Step 4  layer curves over discovered MAC layers
//   Step 8  exact rows, (severity x NM) noise grids, and
//           (severity x component) emulated grids for an FGSM scenario
// Shard ids are consecutive across the whole job; assembly routes each
// outcome back into its curve/grid by id.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "capsnet/model.hpp"
#include "core/resilience.hpp"
#include "core/sweep_plan.hpp"
#include "data/dataset.hpp"

namespace redcane::dist {

/// Assembly routing: which shard ids feed which curve/grid, in order.
struct CurveRoute {
  core::CurvePlan plan;
  std::vector<std::uint64_t> shard_ids;  ///< Concatenated accs = plan.points accs.
};

struct NoiseGridRoute {
  core::NoiseGridPlan plan;
  /// Per severity row, the ordered shard ids of that row's point chunks.
  std::vector<std::vector<std::uint64_t>> row_shard_ids;
};

struct ExactGridRoute {
  std::string scenario;
  std::vector<double> severities;
  std::vector<std::uint64_t> shard_ids;  ///< One point-less shard per severity.
};

struct EmulatedGridRoute {
  std::string scenario;
  std::vector<double> severities;
  std::vector<std::string> components;
  std::vector<std::uint64_t> shard_ids;  ///< Row-major [severity][component].
};

/// Everything the distributed curves assemble into — the unit of the
/// bitwise-identity acceptance check against the in-process analyzer.
struct JobGrids {
  std::vector<core::ResilienceCurve> curves;
  std::vector<core::RobustnessGrid> grids;
};

/// True when every value of both results is bitwise equal (exact double
/// comparison — the determinism contract, not a tolerance check).
[[nodiscard]] bool grids_identical(const JobGrids& a, const JobGrids& b);

struct StandardJob {
  std::string profile;  ///< "quick" | "full".
  std::unique_ptr<capsnet::CapsModel> model;
  data::Dataset dataset;
  core::ResilienceConfig rc;
  std::uint64_t job_hash = 0;
  std::vector<core::SweepShard> shards;

  std::vector<CurveRoute> curves;
  std::vector<NoiseGridRoute> noise_grids;
  std::vector<ExactGridRoute> exact_grids;
  std::vector<EmulatedGridRoute> emulated_grids;

  // Step-8 scenario shared by all three grid backends (the in-process
  // reference re-runs it through ResilienceAnalyzer).
  attack::Scenario scenario;
  capsnet::OpKind noise_group = capsnet::OpKind::kMacOutput;
  std::vector<std::string> components;
  int bits = 8;
};

/// Engine configuration matching the job's grid values. `threads` is the
/// worker-pool size of THAT engine (1 for dist workers — worker processes
/// are the parallelism); it cannot change any value.
[[nodiscard]] core::SweepEngineConfig job_engine_config(const StandardJob& job,
                                                        int threads);

/// Builds the job for a profile: "quick" (seconds; tests and CI smoke) or
/// "full" (the bench_dist workload). Aborts on an unknown profile name.
[[nodiscard]] StandardJob make_standard_job(const std::string& profile);

/// Routes completed shard outcomes (parallel to job.shards) back into
/// curves and grids.
[[nodiscard]] JobGrids assemble_job(const StandardJob& job,
                                    const std::vector<core::ShardOutcome>& outcomes);

/// The bitwise reference: runs the same grids through ResilienceAnalyzer
/// in this process (no sharding, no sockets).
[[nodiscard]] JobGrids run_job_in_process(StandardJob& job);

}  // namespace redcane::dist
