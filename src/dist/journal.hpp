// Crash-safe run journal of the distributed sweep coordinator.
//
// Append-only file of completed-shard records, fsync'd per append, so a
// coordinator killed mid-run resumes without re-running any shard whose
// result already reached disk. Layout:
//
//   header:  magic "RDJ1" | u32 version | u64 job_hash
//   records: repeated  u32 len | u32 crc32(payload) | payload
//
// where payload is the wire encoding of one core::ShardOutcome (the same
// encoder the socket frames use — one serialization, two transports).
// Doubles are stored as IEEE-754 bit patterns, so a resumed grid is
// *bitwise* identical to the uninterrupted run.
//
// A crash can tear only the last record (appends are sequential and
// fsync'd). load() therefore scans until the first short/corrupt/oversize
// record, truncates the file back to the last good byte, and reports the
// torn bytes — the interrupted shard simply re-runs. A journal whose
// job_hash does not match refuses to load: resuming a different grid
// geometry or different weights would splice unrelated accuracies into
// the curves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep_plan.hpp"

namespace redcane::dist {

struct JournalStats {
  bool existed = false;                   ///< File was present before open.
  std::int64_t records_loaded = 0;        ///< Valid records recovered.
  std::int64_t torn_bytes_truncated = 0;  ///< Bytes cut from a torn tail.
  std::int64_t records_appended = 0;      ///< Appends this session.
};

/// One coordinator's journal handle. Not thread-safe: the coordinator
/// serializes appends under its state mutex.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if absent) the journal at `path` for `job_hash`,
  /// recovering every intact record into `recovered`. False + `error` on
  /// I/O failure, bad header, or job-hash mismatch.
  [[nodiscard]] bool open(const std::string& path, std::uint64_t job_hash,
                          std::vector<core::ShardOutcome>* recovered,
                          std::string* error);

  /// Appends one record and fsyncs. False on I/O failure — the
  /// coordinator then degrades to journal-less operation (completing the
  /// run still works; only crash-resume is lost).
  [[nodiscard]] bool append(const core::ShardOutcome& outcome);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const JournalStats& stats() const { return stats_; }

  void close_now();

 private:
  int fd_ = -1;
  JournalStats stats_;
};

}  // namespace redcane::dist
