// Wire protocol of the distributed sweep layer.
//
// Framing: every message is [u32 payload length][u32 CRC-32 of payload]
// [payload], little-endian, over a stream socket ("unix:/path" or
// "tcp:host:port"). The CRC (util::crc32 — the same checksum the run
// journal and v2 checkpoints use) makes frame corruption — a chaos fault
// site and a real failure mode over TCP-less transports — detectable
// instead of silently poisoning a curve. A frame that fails the length
// bound, the CRC, or payload decoding is *connection-fatal*: the receiver
// cannot resynchronize a byte stream after a bad length prefix, so it
// drops the connection and the coordinator requeues whatever that worker
// held.
//
// Payload encoding is explicit little-endian scalar writes (no struct
// memcpy): u8/u32/u64, f64 as IEEE-754 bit pattern in a u64, strings as
// u32 length + bytes. Doubles travel as bit patterns, not text, because
// the determinism contract is *bitwise* grid equality between distributed
// and in-process runs.
//
// Message flow:
//   worker -> Hello{proto, job_hash, name}  -> coordinator
//   coordinator -> HelloAck{accepted, worker_id, reason}
//   coordinator -> Assign{trace_id, SweepShard} | HeartbeatAck | Shutdown
//   worker -> Result{trace_id, timings, ShardOutcome}
//          |  Heartbeat{shards_done, t_send_us, last_rtt_us}
//
// The job hash in Hello is the coordinator's defense against a worker
// built from different weights or grid geometry: mismatched workers are
// refused at handshake, before they can contribute values that would
// break bitwise identity.
//
// Protocol v2 (observability): Assign carries a u64 trace/correlation id
// that the worker echoes in its Result alongside per-shard phase timings
// and its last measured heartbeat RTT, so the coordinator can synthesize
// worker spans into one merged chrome://tracing timeline (obs/trace).
// Heartbeats carry the worker's steady-clock send stamp; the coordinator
// echoes it in a HeartbeatAck and the worker derives the RTT from the
// echo. v1 peers are refused at handshake by the existing proto check.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep_plan.hpp"

namespace redcane::dist {

inline constexpr std::uint32_t kProtoVersion = 2;
/// Frames above this are rejected before allocation (a corrupt length
/// prefix must not trigger a multi-GB read).
inline constexpr std::uint32_t kMaxFrame = 64u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,     ///< worker -> coord: proto version, job hash, name.
  kHelloAck = 2,  ///< coord -> worker: accepted / refusal reason.
  kAssign = 3,    ///< coord -> worker: trace id + one SweepShard.
  kResult = 4,    ///< worker -> coord: trace id + timings + ShardOutcome.
  kHeartbeat = 5, ///< worker -> coord: liveness + shards_done + RTT probe.
  kShutdown = 6,  ///< coord -> worker: no more work, exit cleanly.
  kHeartbeatAck = 7,  ///< coord -> worker: echo of Heartbeat.t_send_us.
};

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< IEEE-754 bit pattern via u64.
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload reader. Every getter returns false once any
/// prior read failed (sticky), so decode functions can chain reads and
/// check once.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] bool u8(std::uint8_t* v);
  [[nodiscard]] bool u32(std::uint32_t* v);
  [[nodiscard]] bool u64(std::uint64_t* v);
  [[nodiscard]] bool f64(double* v);
  [[nodiscard]] bool str(std::string* s);

  [[nodiscard]] bool ok() const { return ok_; }
  /// True when the payload was consumed exactly (trailing garbage is a
  /// decode failure — it means the two sides disagree on the schema).
  [[nodiscard]] bool done() const { return ok_ && pos_ == size_; }

 private:
  [[nodiscard]] bool take(void* out, std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- message payloads ------------------------------------------------

struct HelloMsg {
  std::uint32_t proto = kProtoVersion;
  std::uint64_t job_hash = 0;
  std::string name;
};

struct HelloAckMsg {
  bool accepted = false;
  std::uint32_t worker_id = 0;
  std::string reason;  ///< Refusal diagnostic.
};

struct HeartbeatMsg {
  std::uint64_t shards_done = 0;
  /// Worker steady-clock send stamp [us]; echoed back in HeartbeatAck so
  /// the worker can measure the round trip on its own clock.
  std::uint64_t t_send_us = 0;
  /// Worker's most recent measured RTT [us]; 0 until the first ack.
  std::uint64_t last_rtt_us = 0;
};

struct HeartbeatAckMsg {
  std::uint64_t t_echo_us = 0;  ///< Heartbeat.t_send_us, unmodified.
};

/// One shard assignment. `trace_id` correlates the coordinator's
/// scheduling spans with the worker's execution spans in a merged trace;
/// it never influences execution.
struct AssignMsg {
  std::uint64_t trace_id = 0;
  core::SweepShard shard;
};

/// One shard result with the worker-side profile: total run_shard wall
/// time split into the attacked-set/base phase and the point-eval phase,
/// plus the worker's latest heartbeat RTT. Timings are diagnostic only —
/// the outcome's values carry the determinism contract.
struct ResultMsg {
  std::uint64_t trace_id = 0;
  std::uint64_t exec_us = 0;    ///< Total run_shard wall time.
  std::uint64_t base_us = 0;    ///< ensure_attacked + base-accuracy phase.
  std::uint64_t points_us = 0;  ///< Point-evaluation phase.
  std::uint64_t rtt_us = 0;     ///< Worker's last measured heartbeat RTT.
  core::ShardOutcome outcome;
};

/// Attack-spec codec, public because the coordinator also hashes the
/// encoding as a shard's cache-affinity key (shards sharing a spec reuse
/// a worker's attacked eval set).
void encode_attack_spec(WireWriter& w, const attack::AttackSpec& s);
[[nodiscard]] bool decode_attack_spec(WireReader& r, attack::AttackSpec* s);

void encode_hello(WireWriter& w, const HelloMsg& m);
[[nodiscard]] bool decode_hello(WireReader& r, HelloMsg* m);
void encode_hello_ack(WireWriter& w, const HelloAckMsg& m);
[[nodiscard]] bool decode_hello_ack(WireReader& r, HelloAckMsg* m);
void encode_heartbeat(WireWriter& w, const HeartbeatMsg& m);
[[nodiscard]] bool decode_heartbeat(WireReader& r, HeartbeatMsg* m);
void encode_heartbeat_ack(WireWriter& w, const HeartbeatAckMsg& m);
[[nodiscard]] bool decode_heartbeat_ack(WireReader& r, HeartbeatAckMsg* m);
void encode_assign(WireWriter& w, const AssignMsg& m);
[[nodiscard]] bool decode_assign(WireReader& r, AssignMsg* m);
void encode_result(WireWriter& w, const ResultMsg& m);
[[nodiscard]] bool decode_result(WireReader& r, ResultMsg* m);
void encode_shard(WireWriter& w, const core::SweepShard& s);
[[nodiscard]] bool decode_shard(WireReader& r, core::SweepShard* s);
void encode_outcome(WireWriter& w, const core::ShardOutcome& o);
[[nodiscard]] bool decode_outcome(WireReader& r, core::ShardOutcome* o);

// ---- sockets ---------------------------------------------------------

/// Move-only RAII wrapper of a connected (or listening) socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close_now();

 private:
  int fd_ = -1;
};

/// Outcome of one frame receive.
enum class FrameStatus {
  kOk,
  kTimeout,   ///< No complete frame within the deadline; stream intact.
  kClosed,    ///< Orderly peer close at a frame boundary.
  kCorrupt,   ///< CRC mismatch — connection-fatal.
  kTooLarge,  ///< Length prefix beyond kMaxFrame — connection-fatal.
  kError,     ///< I/O error / close mid-frame — connection-fatal.
};

[[nodiscard]] const char* frame_status_name(FrameStatus s);

/// Binds + listens on "unix:/path" (unlinking a stale path first) or
/// "tcp:host:port" (SO_REUSEADDR; port 0 picks an ephemeral port). On
/// success, `bound_addr` (if non-null) receives the resolved address —
/// with the real port for tcp:...:0 — in the same grammar, suitable for
/// passing to dist_connect. Invalid socket + `error` on failure.
[[nodiscard]] Socket dist_listen(const std::string& addr, std::string* bound_addr,
                                 std::string* error);

/// Accepts one connection; invalid socket on timeout or error. A timeout
/// is not an error — the coordinator polls accept between ticks.
[[nodiscard]] Socket dist_accept(const Socket& listener, int timeout_ms);

/// Connects to an address in the dist_listen grammar. Invalid socket +
/// `error` on failure (no internal retry; callers own the retry loop).
[[nodiscard]] Socket dist_connect(const std::string& addr, std::string* error);

/// Sends one framed message (blocking until fully written). False on any
/// send error — the connection is then unusable.
[[nodiscard]] bool send_frame(const Socket& s, MsgType type,
                              const std::vector<std::uint8_t>& payload);

/// Fault-injection variant: frames `payload` with the CRC of the CLEAN
/// bytes, then flips one payload byte on the wire, guaranteeing the
/// receiver's checksum check fires. Chaos tests only.
[[nodiscard]] bool send_frame_corrupted(const Socket& s, MsgType type,
                                        const std::vector<std::uint8_t>& payload);

/// Receives one framed message, waiting up to `timeout_ms` for the first
/// byte. The rest of a started frame is read under a fixed generous
/// deadline instead — once a length prefix arrives the peer has committed
/// to the frame, and a mid-frame stall is a wedged connection (kError),
/// not a quiet one (kTimeout). On kOk, `type` and `payload` hold the
/// CRC-verified message.
[[nodiscard]] FrameStatus recv_frame(const Socket& s, int timeout_ms, MsgType* type,
                                     std::vector<std::uint8_t>* payload);

}  // namespace redcane::dist
