#include "dist/coordinator.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "dist/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/fault.hpp"
#include "util/crc32.hpp"

namespace redcane::dist {
namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class Abandon { kSteal, kLost, kCancel };

/// Mirrors a finished run's DistStats into the process-wide metrics
/// registry (dist runs once per process, so a flush at the end is
/// equivalent to live mirroring) and registers the conservation laws as
/// registry-level checks over the mirrored counters.
void flush_stats_to_registry(const DistStats& s) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("dist_shards_total").add(s.shards_total);
  reg.counter("dist_journal_resumed_total").add(s.journal_resumed);
  reg.counter("dist_assigned_total").add(s.assigned);
  reg.counter("dist_result_ok_total").add(s.result_ok);
  reg.counter("dist_result_dup_total").add(s.result_dup);
  reg.counter("dist_late_results_total").add(s.late_results);
  reg.counter("dist_results_accepted_total").add(s.results_accepted);
  reg.counter("dist_stolen_total").add(s.stolen);
  reg.counter("dist_lost_total").add(s.lost);
  reg.counter("dist_cancelled_total").add(s.cancelled);
  reg.counter("dist_requeues_total").add(s.requeues);
  reg.counter("dist_failed_permanent_total").add(s.failed_permanent);
  reg.counter("dist_dropped_completed_total").add(s.dropped_completed);
  reg.counter("dist_local_completed_total").add(s.local_completed);
  reg.counter("dist_workers_seen_total").add(s.workers_seen);
  reg.counter("dist_workers_refused_total").add(s.workers_refused);
  reg.counter("dist_corrupt_frames_total").add(s.corrupt_frames);
  reg.counter("dist_heartbeats_total").add(s.heartbeats);
  reg.counter("dist_rtt_samples_total").add(s.rtt_samples);
  reg.counter("dist_rtt_sum_us_total").add(s.rtt_sum_us);
  reg.add_check("dist_assignment_conservation", [](const obs::Snapshot& snap) {
    return snap.counter("dist_assigned_total") ==
           snap.counter("dist_result_ok_total") +
               snap.counter("dist_result_dup_total") +
               snap.counter("dist_stolen_total") +
               snap.counter("dist_lost_total") +
               snap.counter("dist_cancelled_total");
  });
  reg.add_check("dist_abandon_conservation", [](const obs::Snapshot& snap) {
    return snap.counter("dist_stolen_total") + snap.counter("dist_lost_total") ==
           snap.counter("dist_requeues_total") +
               snap.counter("dist_failed_permanent_total") +
               snap.counter("dist_dropped_completed_total");
  });
  reg.add_check("dist_results_conservation", [](const obs::Snapshot& snap) {
    return snap.counter("dist_results_accepted_total") ==
           snap.counter("dist_result_ok_total") +
               snap.counter("dist_late_results_total");
  });
}

}  // namespace

struct Coordinator::Impl {
  CoordinatorConfig cfg;
  std::vector<core::SweepShard> shards;
  LocalExec local;

  Socket listener;
  std::string bound_addr;
  bool listening = false;

  /// Scheduler view of one shard. All fields under `mu`.
  struct ShardState {
    bool completed = false;
    bool failed = false;  ///< Retry budget exhausted; local drain is the last resort.
    bool queued = true;   ///< Awaiting (re)assignment.
    int failures = 0;     ///< Abandonment count (backoff attempt index).
    std::int64_t eligible_at_us = 0;
    int assigned_worker = -1;  ///< Worker id of the active assignment.
    std::uint64_t trace_id = 0;  ///< Correlation id of the latest assignment.
    core::ShardOutcome outcome;
  };

  struct WorkerConn {
    int id = 0;
    std::string name;
    Socket sock;
    std::thread thread;
    // Under mu:
    bool alive = false;  ///< Handshaked and connection healthy.
    bool stale = false;  ///< Past the liveness deadline; no new work until it speaks.
    std::int64_t last_seen_us = 0;
    std::int64_t current = -1;  ///< Shard index of the active assignment (-1 idle).
    std::uint64_t last_affinity = 0;  ///< Affinity key of the last assignment.
    bool has_affinity = false;
  };

  std::mutex mu;
  std::vector<ShardState> state;  ///< Parallel to shards.
  /// Cache-affinity key per shard (hash of spec+backend+component+bits):
  /// shards sharing a key reuse the same attacked eval set / backend plan
  /// inside one worker's engine, so the scheduler prefers handing a worker
  /// shards matching its previous assignment.
  std::vector<std::uint64_t> affinity;
  std::unordered_map<std::uint64_t, std::size_t> index_of_id;
  std::int64_t completed_count = 0;
  std::int64_t failed_count = 0;
  std::vector<std::unique_ptr<WorkerConn>> conns;
  DistStats stats;
  Journal journal;
  bool journal_ok = false;
  bool crashed = false;  ///< Simulated coordinator crash (coord_crash fault).
  std::string error;

  std::atomic<bool> stop{false};

  // ---- shard bookkeeping (all callers hold mu) -----------------------

  /// Registry mirror of the RTT samples (stable reference; the registry
  /// leaks its instruments). Resolved once, off the heartbeat path.
  obs::Histogram& rtt_hist = obs::Registry::instance().histogram("dist_rtt_us");

  /// Folds one worker-measured heartbeat RTT into the run aggregates.
  /// 0 means "no measurement yet" (the worker has not seen an ack).
  void record_rtt(std::uint64_t rtt_us) {
    if (rtt_us == 0) return;
    rtt_hist.observe(static_cast<double>(rtt_us));
    const auto r = static_cast<std::int64_t>(rtt_us);
    ++stats.rtt_samples;
    stats.rtt_sum_us += r;
    if (stats.rtt_min_us == 0 || r < stats.rtt_min_us) stats.rtt_min_us = r;
    if (r > stats.rtt_max_us) stats.rtt_max_us = r;
  }

  /// Picks the next shard for `w`: among eligible queued shards, prefer
  /// one sharing `w`'s last affinity key (its engine already holds that
  /// spec's attacked eval set); otherwise the first eligible. Pure
  /// scheduling preference — placement cannot change any value.
  std::int64_t pick_eligible(std::int64_t now, const WorkerConn* w) {
    std::int64_t first = -1;
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (!(state[i].queued && !state[i].completed && !state[i].failed &&
            state[i].eligible_at_us <= now))
        continue;
      if (w != nullptr && w->has_affinity && affinity[i] == w->last_affinity)
        return static_cast<std::int64_t>(i);
      if (first < 0) first = static_cast<std::int64_t>(i);
    }
    return first;
  }

  /// Terminates `w`'s active assignment (if any) and routes the shard:
  /// already complete -> dropped; budget left -> requeue with backoff;
  /// budget exhausted -> failed permanently.
  void abandon_active(WorkerConn* w, Abandon why) {
    if (w->current < 0) return;
    ShardState& s = state[static_cast<std::size_t>(w->current)];
    const std::uint64_t shard_id = shards[static_cast<std::size_t>(w->current)].id;
    w->current = -1;
    s.assigned_worker = -1;
    switch (why) {
      case Abandon::kSteal: ++stats.stolen; break;
      case Abandon::kLost: ++stats.lost; break;
      case Abandon::kCancel: ++stats.cancelled; return;  // No requeue at shutdown.
    }
    if (s.completed) {
      ++stats.dropped_completed;
      return;
    }
    ++s.failures;
    if (cfg.backoff.exhausted(s.failures)) {
      s.failed = true;
      s.queued = false;
      ++failed_count;
      ++stats.failed_permanent;
    } else {
      s.queued = true;
      s.eligible_at_us = now_us() + cfg.backoff.delay_us(shard_id, s.failures);
      ++stats.requeues;
    }
  }

  /// Records one completion (from any source) and journals it. Returns
  /// false when the coord_crash fault fires after the append.
  bool record_completion(std::size_t idx, core::ShardOutcome outcome) {
    ShardState& s = state[idx];
    s.completed = true;
    s.queued = false;
    if (s.failed) {  // A late result can rescue a budget-exhausted shard.
      s.failed = false;
      --failed_count;
    }
    s.outcome = std::move(outcome);
    ++completed_count;
    if (journal_ok && !journal.append(s.outcome)) {
      journal_ok = false;
      std::fprintf(stderr,
                   "dist: journal append failed; continuing without crash "
                   "resume\n");
    }
    if (serve::fault::armed() &&
        serve::fault::plan()->coord_crash(journal.stats().records_appended)) {
      crashed = true;
      error = "fault: simulated coordinator crash after journal append";
      stop.store(true, std::memory_order_release);
      return false;
    }
    return true;
  }

  // ---- per-connection serving ----------------------------------------

  void serve_conn(WorkerConn* w) {
    // Handshake.
    {
      MsgType type{};
      std::vector<std::uint8_t> payload;
      const FrameStatus st =
          recv_frame(w->sock, static_cast<int>(cfg.handshake_timeout_ms), &type, &payload);
      HelloMsg hello;
      WireReader r(payload.data(), payload.size());
      if (st != FrameStatus::kOk || type != MsgType::kHello ||
          !decode_hello(r, &hello)) {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.workers_refused;
        return;
      }
      HelloAckMsg ack;
      ack.worker_id = static_cast<std::uint32_t>(w->id);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (hello.proto != kProtoVersion) {
          ack.reason = "protocol version mismatch";
        } else if (hello.job_hash != cfg.job_hash) {
          ack.reason = "job hash mismatch (different weights or grid)";
        } else if (stats.degraded || stop.load(std::memory_order_acquire)) {
          ack.reason = "coordinator is shutting down or degraded";
        } else {
          ack.accepted = true;
          w->name = hello.name;
          w->alive = true;
          w->last_seen_us = now_us();
          ++stats.workers_seen;
          // Remote spans synthesized from this worker's Result frames land
          // on pid = worker id + 1 (pid 0 is the coordinator process).
          obs::trace_set_process_name(static_cast<std::uint32_t>(w->id + 1),
                                      "worker:" + w->name);
        }
        if (!ack.accepted) ++stats.workers_refused;
      }
      WireWriter ww;
      encode_hello_ack(ww, ack);
      const bool sent = send_frame(w->sock, MsgType::kHelloAck, ww.bytes());
      if (!ack.accepted || !sent) {
        std::lock_guard<std::mutex> lock(mu);
        w->alive = false;
        return;
      }
    }

    while (!stop.load(std::memory_order_acquire)) {
      // Hand out work when idle (and not deadline-stale: a silent worker
      // gets no fresh shards until it proves liveness again).
      bool have_assign = false;
      AssignMsg to_send;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (w->alive && !w->stale && w->current < 0) {
          const std::int64_t idx = pick_eligible(now_us(), w);
          if (idx >= 0) {
            ShardState& s = state[static_cast<std::size_t>(idx)];
            s.queued = false;
            s.assigned_worker = w->id;
            s.trace_id = obs::next_correlation_id();
            w->current = idx;
            w->last_affinity = affinity[static_cast<std::size_t>(idx)];
            w->has_affinity = true;
            ++stats.assigned;
            to_send.trace_id = s.trace_id;
            to_send.shard = shards[static_cast<std::size_t>(idx)];
            have_assign = true;
          }
        }
      }
      if (have_assign) {
        WireWriter ww;
        encode_assign(ww, to_send);
        if (!send_frame(w->sock, MsgType::kAssign, ww.bytes())) {
          std::lock_guard<std::mutex> lock(mu);
          abandon_active(w, Abandon::kLost);
          w->alive = false;
          w->sock.close_now();
          return;
        }
      }

      MsgType type{};
      std::vector<std::uint8_t> payload;
      const FrameStatus st = recv_frame(w->sock, 20, &type, &payload);
      if (st == FrameStatus::kTimeout) continue;
      if (st != FrameStatus::kOk) {
        std::lock_guard<std::mutex> lock(mu);
        if (st == FrameStatus::kCorrupt || st == FrameStatus::kTooLarge)
          ++stats.corrupt_frames;
        abandon_active(w, Abandon::kLost);
        w->alive = false;
        // Dropping the connection must be visible to the worker, or a peer
        // that only SENT garbage keeps recv-waiting on a half-dead socket.
        w->sock.close_now();
        return;
      }

      {
        std::lock_guard<std::mutex> lock(mu);
        w->last_seen_us = now_us();
        w->stale = false;
      }

      if (type == MsgType::kHeartbeat) {
        HeartbeatMsg hb;
        WireReader r(payload.data(), payload.size());
        if (!decode_heartbeat(r, &hb)) {
          std::lock_guard<std::mutex> lock(mu);
          ++stats.corrupt_frames;
          abandon_active(w, Abandon::kLost);
          w->alive = false;
          w->sock.close_now();
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          ++stats.heartbeats;
          record_rtt(hb.last_rtt_us);
        }
        // Echo the worker's send stamp so it can measure the round trip on
        // its own clock. This thread is the only sender on this socket, so
        // no send ordering can interleave mid-frame. Best effort: a failed
        // send means the connection is dying and the next recv reports it.
        WireWriter ww;
        encode_heartbeat_ack(ww, HeartbeatAckMsg{hb.t_send_us});
        (void)send_frame(w->sock, MsgType::kHeartbeatAck, ww.bytes());
        continue;
      }
      if (type != MsgType::kResult) continue;

      ResultMsg msg;
      WireReader r(payload.data(), payload.size());
      bool valid = decode_result(r, &msg);
      core::ShardOutcome& outcome = msg.outcome;
      std::size_t idx = 0;
      if (valid) {
        const auto it = index_of_id.find(outcome.id);
        valid = it != index_of_id.end();
        if (valid) {
          idx = it->second;
          // A frame that passes the CRC but carries the wrong number of
          // values is a worker-side logic failure (e.g. unknown emulated
          // component) — treat exactly like corruption: drop the
          // connection, requeue the shard.
          valid = outcome.acc.size() == shards[idx].expected_values();
        }
      }
      if (!valid) {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.corrupt_frames;
        abandon_active(w, Abandon::kLost);
        w->alive = false;
        w->sock.close_now();
        return;
      }

      // Stitch the worker's execution into the coordinator's timeline:
      // anchor the shipped durations at the frame's arrival time (worker
      // clocks are not comparable, arrival - exec is the best common
      // anchor). pid = worker id + 1 separates processes in the viewer.
      if (obs::trace_armed() && msg.exec_us > 0) {
        const std::uint64_t arrival = obs::trace_now_us();
        const std::uint64_t start =
            arrival > msg.exec_us ? arrival - msg.exec_us : 0;
        const auto pid = static_cast<std::uint32_t>(w->id + 1);
        obs::trace_emit_remote(pid, 1, "dist/worker_shard", start, msg.exec_us,
                               msg.trace_id);
        if (msg.base_us > 0) {
          obs::trace_emit_remote(pid, 1, "shard/base", start, msg.base_us,
                                 msg.trace_id);
        }
        if (msg.points_us > 0) {
          obs::trace_emit_remote(pid, 1, "shard/points", start + msg.base_us,
                                 msg.points_us, msg.trace_id);
        }
      }
      obs::Registry::instance().histogram("dist_shard_exec_us")
          .observe(static_cast<double>(msg.exec_us));

      std::lock_guard<std::mutex> lock(mu);
      record_rtt(msg.rtt_us);
      const bool was_active = w->current >= 0 &&
                              static_cast<std::size_t>(w->current) == idx;
      if (state[idx].completed) {
        // Duplicate (another worker or the local drain got there first).
        if (was_active) {
          ++stats.result_dup;
          w->current = -1;
          state[idx].assigned_worker = -1;
        }
        continue;
      }
      // Accept — even from a stolen assignment: the value is bitwise what
      // any re-run would produce, and accepting stragglers removes the
      // steal-just-before-finish livelock.
      if (was_active) {
        ++stats.result_ok;
        w->current = -1;
        state[idx].assigned_worker = -1;
      } else {
        ++stats.late_results;
      }
      ++stats.results_accepted;
      if (!record_completion(idx, std::move(outcome))) {
        // Simulated coordinator crash: a dead process sends no Shutdown
        // but its fds do close — workers must see the connection drop.
        w->sock.close_now();
        return;
      }
    }

    // Clean shutdown: cancel whatever we still hold and tell the worker.
    bool tell_worker;
    bool simulate_crash;
    {
      std::lock_guard<std::mutex> lock(mu);
      abandon_active(w, Abandon::kCancel);
      tell_worker = w->alive && !crashed;
      simulate_crash = crashed;
      w->alive = false;
    }
    if (tell_worker) {
      // Best-effort; a dead peer just fails the send.
      (void)send_frame(w->sock, MsgType::kShutdown, {});
    } else if (simulate_crash) {
      w->sock.close_now();
    }
  }

  // ---- degradation ----------------------------------------------------

  /// Runs every incomplete shard through the local fallback. Returns
  /// false on coord_crash.
  bool drain_locally() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stats.degraded = true;
    }
    while (true) {
      core::SweepShard shard;
      std::size_t idx = 0;
      {
        std::lock_guard<std::mutex> lock(mu);
        bool found = false;
        for (std::size_t i = 0; i < state.size(); ++i) {
          if (!state[i].completed) {
            idx = i;
            shard = shards[i];
            found = true;
            break;
          }
        }
        if (!found) return true;
      }
      core::ShardOutcome outcome = local(shard);
      std::lock_guard<std::mutex> lock(mu);
      if (!state[idx].completed) {
        ++stats.local_completed;
        if (!record_completion(idx, std::move(outcome))) return false;
      }
    }
  }

  // ---- main loop ------------------------------------------------------

  bool do_listen(std::string* err) {
    if (listening) return true;
    listener = dist_listen(cfg.addr, &bound_addr, err);
    listening = listener.valid();
    return listening;
  }

  CoordinatorResult run() {
    OBS_SPAN("dist/run");
    CoordinatorResult result;
    {
      std::string err;
      if (!do_listen(&err)) {
        result.error = err;
        return result;
      }
    }

    // Journal open + resume.
    if (!cfg.journal_path.empty()) {
      std::vector<core::ShardOutcome> recovered;
      std::string err;
      if (!journal.open(cfg.journal_path, cfg.job_hash, &recovered, &err)) {
        result.error = err;
        return result;
      }
      journal_ok = true;
      std::lock_guard<std::mutex> lock(mu);
      for (core::ShardOutcome& o : recovered) {
        const auto it = index_of_id.find(o.id);
        if (it == index_of_id.end()) continue;
        const std::size_t idx = it->second;
        if (state[idx].completed ||
            o.acc.size() != shards[idx].expected_values())
          continue;
        ShardState& s = state[idx];
        s.completed = true;
        s.queued = false;
        s.outcome = std::move(o);
        ++completed_count;
        ++stats.journal_resumed;
      }
    }

    const std::int64_t start = now_us();
    while (!stop.load(std::memory_order_acquire)) {
      // Accept (the 10 ms accept timeout is also the tick period).
      if (static_cast<int>(conns.size()) < cfg.max_workers) {
        Socket c = dist_accept(listener, 10);
        if (c.valid()) {
          auto conn = std::make_unique<WorkerConn>();
          conn->id = static_cast<int>(conns.size());
          conn->sock = std::move(c);
          WorkerConn* raw = conn.get();
          conn->thread = std::thread([this, raw] { serve_conn(raw); });
          conns.push_back(std::move(conn));
        }
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }

      bool need_drain = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        const std::int64_t now = now_us();
        const std::int64_t total = static_cast<std::int64_t>(shards.size());
        if (completed_count == total) {
          stop.store(true, std::memory_order_release);
          break;
        }
        // Liveness deadlines: steal from the silent, but keep their
        // connection — a straggler's late result is still welcome.
        int live = 0;
        for (auto& w : conns) {
          if (!w->alive) continue;
          ++live;
          if (now - w->last_seen_us > cfg.heartbeat_deadline_ms * 1000) {
            w->stale = true;
            abandon_active(w.get(), Abandon::kSteal);
          }
        }
        const bool no_first_worker =
            stats.workers_seen == 0 && now - start > cfg.worker_wait_ms * 1000;
        const bool all_workers_lost = stats.workers_seen > 0 && live == 0;
        const bool only_failed_left =
            failed_count > 0 && completed_count + failed_count == total;
        need_drain = no_first_worker || all_workers_lost || only_failed_left;
      }
      if (need_drain) {
        if (!local) {
          std::lock_guard<std::mutex> lock(mu);
          error =
              "no workers available and no local fallback — cannot complete "
              "the sweep";
          stop.store(true, std::memory_order_release);
          break;
        }
        if (!drain_locally()) break;  // coord_crash fired mid-drain.
      }
    }

    stop.store(true, std::memory_order_release);
    for (auto& w : conns) {
      if (w->thread.joinable()) w->thread.join();
    }

    std::lock_guard<std::mutex> lock(mu);
    result.stats = stats;
    result.stats.shards_total = static_cast<std::int64_t>(shards.size());
    flush_stats_to_registry(result.stats);
    result.journal = journal.stats();
    result.error = error;
    result.complete =
        completed_count == static_cast<std::int64_t>(shards.size()) && !crashed;
    if (result.complete) {
      result.outcomes.reserve(state.size());
      for (ShardState& s : state) result.outcomes.push_back(std::move(s.outcome));
    } else if (result.error.empty()) {
      result.error = "sweep incomplete";
    }
    return result;
  }
};

Coordinator::Coordinator(CoordinatorConfig cfg, std::vector<core::SweepShard> shards,
                         LocalExec local)
    : impl_(new Impl) {
  impl_->cfg = std::move(cfg);
  impl_->shards = std::move(shards);
  impl_->local = std::move(local);
  impl_->state.resize(impl_->shards.size());
  impl_->affinity.reserve(impl_->shards.size());
  for (std::size_t i = 0; i < impl_->shards.size(); ++i) {
    const core::SweepShard& s = impl_->shards[i];
    impl_->index_of_id[s.id] = i;
    WireWriter w;
    encode_attack_spec(w, s.spec);
    w.u8(static_cast<std::uint8_t>(s.backend));
    w.u32(static_cast<std::uint32_t>(s.bits));
    w.str(s.component);
    impl_->affinity.push_back(util::crc32(w.bytes().data(), w.bytes().size()));
  }
}

Coordinator::~Coordinator() { delete impl_; }

bool Coordinator::listen(std::string* error) {
  const bool ok = impl_->do_listen(error);
  if (ok) bound_addr_ = impl_->bound_addr;
  return ok;
}

CoordinatorResult Coordinator::run() {
  CoordinatorResult r = impl_->run();
  bound_addr_ = impl_->bound_addr;
  return r;
}

}  // namespace redcane::dist
