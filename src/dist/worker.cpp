#include "dist/worker.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "dist/wire.hpp"
#include "obs/trace.hpp"
#include "serve/fault.hpp"

namespace redcane::dist {
namespace {

void sleep_us(std::int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Sends a result frame through the socket fault sites: pre-send stall,
/// then possibly a corrupted frame (CRC of the clean payload, one byte
/// flipped on the wire — the coordinator's checksum check must fire).
bool send_result(const Socket& sock, std::mutex& send_mu,
                 const ResultMsg& result) {
  WireWriter w;
  encode_result(w, result);
  bool corrupt = false;
  if (serve::fault::armed()) {
    serve::fault::FaultPlan* plan = serve::fault::plan();
    std::int64_t stall = 0;
    if (plan->stall_socket(stall)) sleep_us(stall);
    corrupt = plan->corrupt_result_frame();
  }
  std::lock_guard<std::mutex> lock(send_mu);
  return corrupt ? send_frame_corrupted(sock, MsgType::kResult, w.bytes())
                 : send_frame(sock, MsgType::kResult, w.bytes());
}

}  // namespace

WorkerStats run_worker(core::SweepEngine& engine, const WorkerConfig& cfg) {
  WorkerStats stats;

#ifdef _OPENMP
  // Workers ARE the parallelism; don't also fan each shard out over every
  // core (matches the serve worker-pool discipline).
  omp_set_num_threads(1);
#endif

  // Connect with retry: in the CI smoke the workers race the coordinator's
  // bind, and losing that race must not fail the run.
  Socket sock;
  {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(cfg.connect_wait_ms);
    std::string error;
    while (true) {
      sock = dist_connect(cfg.addr, &error);
      if (sock.valid()) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        stats.error = "connect failed: " + error;
        return stats;
      }
      sleep_us(20'000);
    }
  }

  // Handshake.
  {
    WireWriter w;
    HelloMsg hello;
    hello.proto = kProtoVersion;
    hello.job_hash = cfg.job_hash;
    hello.name = cfg.name;
    encode_hello(w, hello);
    if (!send_frame(sock, MsgType::kHello, w.bytes())) {
      stats.error = "hello send failed";
      return stats;
    }
    MsgType type{};
    std::vector<std::uint8_t> payload;
    const FrameStatus st = recv_frame(sock, 5000, &type, &payload);
    HelloAckMsg ack;
    WireReader r(payload.data(), payload.size());
    if (st != FrameStatus::kOk || type != MsgType::kHelloAck ||
        !decode_hello_ack(r, &ack)) {
      stats.error = std::string("handshake failed: ") + frame_status_name(st);
      return stats;
    }
    if (!ack.accepted) {
      stats.error = "coordinator refused: " + ack.reason;
      return stats;
    }
    stats.handshake_ok = true;
  }

  // Heartbeat thread: liveness must not wait for a long shard evaluation.
  std::mutex send_mu;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> shards_done{0};
  std::atomic<std::uint64_t> heartbeats_sent{0};
  std::atomic<std::uint64_t> last_rtt_us{0};
  std::thread heartbeat([&] {
    while (!stop.load(std::memory_order_acquire)) {
      sleep_us(cfg.heartbeat_interval_ms * 1000);
      if (stop.load(std::memory_order_acquire)) break;
      if (serve::fault::armed()) {
        serve::fault::FaultPlan* plan = serve::fault::plan();
        sleep_us(plan->heartbeat_delay_us());
        if (plan->drop_heartbeat()) continue;
      }
      WireWriter w;
      HeartbeatMsg hb;
      hb.shards_done = shards_done.load(std::memory_order_relaxed);
      // RTT probe: the coordinator echoes this stamp in a HeartbeatAck;
      // the serving loop derives the round trip on this same clock.
      hb.t_send_us = obs::trace_now_us();
      hb.last_rtt_us = last_rtt_us.load(std::memory_order_relaxed);
      encode_heartbeat(w, hb);
      std::lock_guard<std::mutex> lock(send_mu);
      if (!send_frame(sock, MsgType::kHeartbeat, w.bytes())) return;
      heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Serving loop: one shard at a time, exactly as assigned.
  while (true) {
    MsgType type{};
    std::vector<std::uint8_t> payload;
    const FrameStatus st = recv_frame(sock, 200, &type, &payload);
    if (st == FrameStatus::kTimeout) continue;
    if (st != FrameStatus::kOk) {
      if (st != FrameStatus::kClosed)
        stats.error = std::string("recv failed: ") + frame_status_name(st);
      break;
    }
    if (type == MsgType::kShutdown) break;
    if (type == MsgType::kHeartbeatAck) {
      HeartbeatAckMsg ack;
      WireReader r(payload.data(), payload.size());
      if (decode_heartbeat_ack(r, &ack)) {
        const std::uint64_t now = obs::trace_now_us();
        if (now >= ack.t_echo_us) {
          last_rtt_us.store(now - ack.t_echo_us, std::memory_order_relaxed);
        }
        ++stats.heartbeat_acks;
      }
      continue;
    }
    if (type != MsgType::kAssign) continue;  // Ignore unexpected-but-valid frames.

    AssignMsg assign;
    WireReader r(payload.data(), payload.size());
    if (!decode_assign(r, &assign)) {
      stats.error = "undecodable assignment";
      break;
    }
    const core::SweepShard& shard = assign.shard;

    ResultMsg result;
    result.trace_id = assign.trace_id;
    core::ShardTimings timings;
    const std::uint64_t t_exec = obs::trace_now_us();
    {
      OBS_SPAN_ID("dist/worker_shard", assign.trace_id);
      result.outcome = core::run_shard(engine, shard, &timings);
    }
    result.exec_us = obs::trace_now_us() - t_exec;
    result.base_us = timings.base_us;
    result.points_us = timings.points_us;
    result.rtt_us = last_rtt_us.load(std::memory_order_relaxed);
    const std::uint64_t done_before =
        shards_done.load(std::memory_order_relaxed);

    // Kill fault: exit WITHOUT sending — the coordinator must recover the
    // shard via heartbeat deadline + reassignment, the hard-crash path.
    if (serve::fault::armed() &&
        serve::fault::plan()->kill_worker(
            cfg.name, static_cast<std::int64_t>(done_before))) {
      stats.killed_by_fault = true;
      stop.store(true, std::memory_order_release);
      break;
    }

    if (!send_result(sock, send_mu, result)) {
      stats.error = "result send failed";
      break;
    }
    shards_done.store(done_before + 1, std::memory_order_relaxed);
  }

  stop.store(true, std::memory_order_release);
  heartbeat.join();
  stats.shards_done = shards_done.load(std::memory_order_relaxed);
  stats.heartbeats_sent = heartbeats_sent.load(std::memory_order_relaxed);
  stats.last_rtt_us = last_rtt_us.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace redcane::dist
