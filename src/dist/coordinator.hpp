// Fault-tolerant distributed sweep coordinator.
//
// Owns a set of SweepShards (see core/sweep_plan.hpp) and drives them to
// completion across remote worker processes, surviving worker death,
// hangs, and corrupted result frames without changing a single bit of the
// assembled curves — shard values are order- and placement-independent by
// the sweep-plan determinism contract, so the scheduler is free to
// reassign at will.
//
// Scheduling: work-stealing with liveness deadlines. Each connected
// worker serves one shard at a time; any frame from a worker refreshes
// its last-seen stamp. A worker silent past the heartbeat deadline has
// its in-flight shard *stolen* — requeued with exponential backoff
// (dist/backoff) — while the connection stays open: if the straggler
// later delivers, the result is accepted as long as the shard is still
// incomplete (a late result is bitwise the same value a re-run would
// produce), which removes the livelock where every assignment is stolen
// just before finishing. Results for already-completed shards are
// dropped as duplicates. A shard abandoned more times than the retry
// budget is failed permanently (then local fallback, below, is its last
// resort).
//
// Every accepted result is appended to the crash-safe run journal
// (dist/journal) before it counts as complete, so a killed coordinator
// resumes without re-running finished shards.
//
// Graceful degradation: when no worker ever arrives, when every worker
// is lost mid-run, or when only budget-exhausted shards remain, the
// coordinator drains the remaining shards through the caller-supplied
// LocalExec (the in-process engine) instead of failing the run —
// distributed execution is an accelerator, never a correctness
// dependency.
//
// Accounting: every assignment reaches exactly one terminal state and
// every shard completion has exactly one source; DistStats::reconciles()
// checks the conservation laws (see struct) and the chaos tests assert
// it after every fault mix.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep_plan.hpp"
#include "dist/backoff.hpp"
#include "dist/journal.hpp"

namespace redcane::dist {

struct CoordinatorConfig {
  std::string addr;            ///< dist_listen grammar ("unix:..." / "tcp:...").
  std::uint64_t job_hash = 0;  ///< Handshake guard (weights + grid recipe).
  std::int64_t heartbeat_deadline_ms = 1000;  ///< Silence before a steal.
  std::int64_t handshake_timeout_ms = 2000;
  std::int64_t worker_wait_ms = 3000;  ///< Wait for a first worker before degrading.
  int max_workers = 64;
  BackoffPolicy backoff;     ///< Requeue schedule + retry budget.
  std::string journal_path;  ///< "" = no journal (no crash resume).
};

/// In-process shard executor for graceful degradation — typically
/// core::run_shard on the coordinator's own engine. Called only from the
/// coordinator's run() thread.
using LocalExec = std::function<core::ShardOutcome(const core::SweepShard&)>;

/// Conservation-law counters of one coordinator run.
///
/// Assignment terminals (each assignment gets exactly one):
///   assigned == result_ok + result_dup + stolen + lost + cancelled
/// Abandonment routing (each steal/loss goes exactly one way):
///   stolen + lost == requeues + failed_permanent + dropped_completed
/// Accepted results by provenance:
///   results_accepted == result_ok + late_results
/// Shard completion sources, on a complete run:
///   journal_resumed + results_accepted + local_completed == shards_total
struct DistStats {
  std::int64_t shards_total = 0;
  std::int64_t journal_resumed = 0;   ///< Completed from the resumed journal.
  std::int64_t assigned = 0;          ///< Assign frames sent.
  std::int64_t result_ok = 0;         ///< Active assignments returning an accepted result.
  std::int64_t result_dup = 0;        ///< Active assignments returning a duplicate.
  std::int64_t late_results = 0;      ///< Accepted results from already-stolen assignments.
  std::int64_t results_accepted = 0;  ///< result_ok + late_results.
  std::int64_t stolen = 0;            ///< Assignments stolen at the liveness deadline.
  std::int64_t lost = 0;              ///< Assignments abandoned by connection death.
  std::int64_t cancelled = 0;         ///< Assignments outstanding at shutdown.
  std::int64_t requeues = 0;          ///< Abandonments sent back to the queue.
  std::int64_t failed_permanent = 0;  ///< Abandonments past the retry budget.
  std::int64_t dropped_completed = 0; ///< Abandonments whose shard had already completed.
  std::int64_t local_completed = 0;   ///< Shards drained by the local fallback.
  std::int64_t workers_seen = 0;      ///< Successful handshakes.
  std::int64_t workers_refused = 0;   ///< Handshakes rejected (proto/job mismatch, capacity).
  std::int64_t corrupt_frames = 0;    ///< Connection-fatal bad frames received.
  std::int64_t heartbeats = 0;        ///< Heartbeat frames received.
  bool degraded = false;              ///< Local fallback engaged.

  // Heartbeat round-trip aggregates, from worker-measured RTTs carried in
  // v2 Heartbeat/Result frames (0 samples while workers are still waiting
  // for their first ack). Diagnostic only; no conservation law.
  std::int64_t rtt_samples = 0;
  std::int64_t rtt_min_us = 0;  ///< 0 until the first sample.
  std::int64_t rtt_max_us = 0;
  std::int64_t rtt_sum_us = 0;  ///< Mean = rtt_sum_us / rtt_samples.

  /// True when every conservation law above holds.
  [[nodiscard]] bool reconciles() const {
    return assigned == result_ok + result_dup + stolen + lost + cancelled &&
           stolen + lost == requeues + failed_permanent + dropped_completed &&
           results_accepted == result_ok + late_results;
  }
};

struct CoordinatorResult {
  bool complete = false;  ///< Every shard has an outcome.
  /// Parallel to the constructor's shard list when complete.
  std::vector<core::ShardOutcome> outcomes;
  DistStats stats;
  JournalStats journal;
  std::string error;  ///< Diagnostic when !complete.
};

class Coordinator {
 public:
  /// `local` may be null; degradation then fails the run instead of
  /// draining in-process.
  Coordinator(CoordinatorConfig cfg, std::vector<core::SweepShard> shards,
              LocalExec local);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the listening socket (resolving tcp port 0) without serving.
  /// Call before starting workers that need bound_addr(); run() implies
  /// it. False + error on bind failure.
  [[nodiscard]] bool listen(std::string* error);
  [[nodiscard]] const std::string& bound_addr() const { return bound_addr_; }

  /// Runs the job to completion (or to unrecoverable failure / simulated
  /// coordinator crash). Blocking.
  [[nodiscard]] CoordinatorResult run();

 private:
  struct Impl;
  Impl* impl_;
  std::string bound_addr_;  ///< Mirrored from Impl after listen()/run().
};

}  // namespace redcane::dist
