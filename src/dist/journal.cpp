#include "dist/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "dist/wire.hpp"
#include "util/crc32.hpp"

namespace redcane::dist {
namespace {

constexpr char kMagic[4] = {'R', 'D', 'J', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kHeaderSize = 4 + 4 + 8;
/// Records beyond this are treated as torn (a corrupt length prefix must
/// not trigger a giant allocation). Generous: a full Step-8 grid outcome
/// is a few hundred bytes.
constexpr std::uint32_t kMaxRecord = 16u << 20;

bool read_exact(int fd, void* out, std::size_t n) {
  char* p = static_cast<char*>(out);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

Journal::~Journal() { close_now(); }

void Journal::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Journal::open(const std::string& path, std::uint64_t job_hash,
                   std::vector<core::ShardOutcome>* recovered, std::string* error) {
  close_now();
  stats_ = JournalStats{};
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    if (error) *error = "journal open " + path + ": " + std::strerror(errno);
    return false;
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    if (error) *error = "journal stat " + path + ": " + std::strerror(errno);
    close_now();
    return false;
  }

  if (st.st_size == 0) {
    // Fresh journal: write and sync the header before any record.
    std::uint8_t header[kHeaderSize];
    std::memcpy(header, kMagic, 4);
    put_u32(header + 4, kVersion);
    put_u64(header + 8, job_hash);
    if (!write_exact(fd_, header, sizeof(header)) || ::fsync(fd_) != 0) {
      if (error) *error = "journal header write " + path + ": " + std::strerror(errno);
      close_now();
      return false;
    }
    return true;
  }

  stats_.existed = true;
  std::uint8_t header[kHeaderSize];
  if (st.st_size < static_cast<off_t>(kHeaderSize) ||
      !read_exact(fd_, header, sizeof(header)) ||
      std::memcmp(header, kMagic, 4) != 0 || get_u32(header + 4) != kVersion) {
    if (error) *error = "journal " + path + ": not a v1 run journal";
    close_now();
    return false;
  }
  const std::uint64_t stored_hash = get_u64(header + 8);
  if (stored_hash != job_hash) {
    // Refuse, don't truncate: the file belongs to a different job and the
    // caller may still want it.
    if (error) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "journal job hash mismatch (journal %016llx, job %016llx) — "
                    "refusing to resume a different grid",
                    static_cast<unsigned long long>(stored_hash),
                    static_cast<unsigned long long>(job_hash));
      *error = std::string(path) + ": " + buf;
    }
    close_now();
    return false;
  }

  // Scan records until the torn tail (if any).
  off_t good_end = kHeaderSize;
  while (true) {
    std::uint8_t rec_header[8];
    if (!read_exact(fd_, rec_header, sizeof(rec_header))) break;
    const std::uint32_t len = get_u32(rec_header);
    const std::uint32_t crc = get_u32(rec_header + 4);
    if (len == 0 || len > kMaxRecord) break;
    std::vector<std::uint8_t> payload(len);
    if (!read_exact(fd_, payload.data(), payload.size())) break;
    if (util::crc32(payload.data(), payload.size()) != crc) break;
    core::ShardOutcome outcome;
    WireReader r(payload.data(), payload.size());
    if (!decode_outcome(r, &outcome)) break;
    if (recovered) recovered->push_back(std::move(outcome));
    ++stats_.records_loaded;
    good_end += static_cast<off_t>(sizeof(rec_header) + len);
  }

  if (good_end < st.st_size) {
    stats_.torn_bytes_truncated = st.st_size - good_end;
    if (::ftruncate(fd_, good_end) != 0) {
      if (error) *error = "journal truncate " + path + ": " + std::strerror(errno);
      close_now();
      return false;
    }
  }
  if (::lseek(fd_, good_end, SEEK_SET) < 0) {
    if (error) *error = "journal seek " + path + ": " + std::strerror(errno);
    close_now();
    return false;
  }
  return true;
}

bool Journal::append(const core::ShardOutcome& outcome) {
  if (fd_ < 0) return false;
  WireWriter w;
  encode_outcome(w, outcome);
  const std::vector<std::uint8_t>& payload = w.bytes();
  std::uint8_t rec_header[8];
  put_u32(rec_header, static_cast<std::uint32_t>(payload.size()));
  put_u32(rec_header + 4, util::crc32(payload.data(), payload.size()));
  if (!write_exact(fd_, rec_header, sizeof(rec_header)) ||
      !write_exact(fd_, payload.data(), payload.size()) || ::fsync(fd_) != 0) {
    // A half-written record is exactly the torn tail load() recovers from.
    close_now();
    return false;
  }
  ++stats_.records_appended;
  return true;
}

}  // namespace redcane::dist
