// Retry/backoff policy of the distributed sweep coordinator — a pure,
// header-only unit so the schedule is testable without sockets.
//
// A shard abandoned by a worker (death, hang, corrupt frame) is requeued
// with an exponentially growing delay: attempt k (1-based) waits
// min(cap, base * multiplier^(k-1)), scaled by a deterministic jitter
// factor in [1 - jitter, 1 + jitter). The jitter comes from a splitmix64
// hash of (seed, key, attempt) — no RNG state, so every coordinator
// replays the same schedule for the same (seed, shard) regardless of
// thread interleaving. The retry budget bounds attempts per shard; beyond
// it the shard is failed permanently.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/hash.hpp"

namespace redcane::dist {

struct BackoffPolicy {
  std::int64_t base_us = 10'000;    ///< First-retry delay.
  double multiplier = 2.0;          ///< Growth per attempt.
  std::int64_t cap_us = 2'000'000;  ///< Un-jittered delay ceiling.
  double jitter = 0.25;             ///< Spread fraction, in [0, 1).
  int budget = 4;                   ///< Max retries per shard (0 = fail on first loss).
  std::uint64_t seed = 1;           ///< Jitter stream seed.

  /// True when `failures` abandonments have exhausted this shard's budget.
  [[nodiscard]] bool exhausted(int failures) const { return failures > budget; }

  /// Un-jittered delay of attempt k (1-based): min(cap, base * mult^(k-1)).
  /// Non-decreasing in `attempt` and saturating at cap_us.
  [[nodiscard]] std::int64_t raw_delay_us(int attempt) const {
    if (attempt <= 0 || base_us <= 0) return 0;
    double d = static_cast<double>(base_us);
    const double cap = static_cast<double>(cap_us);
    for (int k = 1; k < attempt && d < cap; ++k) d *= multiplier;
    return static_cast<std::int64_t>(std::min(d, cap));
  }

  /// Jittered delay of attempt k for `key` (a shard id): raw * f with
  /// f = 1 + jitter*(2u-1), u = unit_hash(seed, key, attempt) in [0, 1).
  /// Deterministic: same (seed, key, attempt) => same delay, always >= 0.
  [[nodiscard]] std::int64_t delay_us(std::uint64_t key, int attempt) const {
    const std::int64_t raw = raw_delay_us(attempt);
    if (raw == 0 || jitter <= 0.0) return raw;
    const double u = util::unit_hash(seed, key, static_cast<std::uint64_t>(attempt));
    const double f = 1.0 + jitter * (2.0 * u - 1.0);
    return std::max<std::int64_t>(0, static_cast<std::int64_t>(static_cast<double>(raw) * f));
  }

  /// Cumulative wait before attempt `attempts + 1`: sum of the jittered
  /// delays of attempts 1..attempts. Strictly monotone in `attempts` while
  /// delays are positive.
  [[nodiscard]] std::int64_t total_wait_us(std::uint64_t key, int attempts) const {
    std::int64_t total = 0;
    for (int k = 1; k <= attempts; ++k) total += delay_us(key, k);
    return total;
  }
};

}  // namespace redcane::dist
