#include "dist/wire.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/crc32.hpp"

namespace redcane::dist {

// ---- payload primitives ----------------------------------------------

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool WireReader::take(void* out, std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::u8(std::uint8_t* v) { return take(v, 1); }

bool WireReader::u32(std::uint32_t* v) {
  std::uint8_t b[4];
  if (!take(b, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return true;
}

bool WireReader::u64(std::uint64_t* v) {
  std::uint8_t b[8];
  if (!take(b, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return true;
}

bool WireReader::f64(double* v) {
  std::uint64_t bits = 0;
  if (!u64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool WireReader::str(std::string* s) {
  std::uint32_t n = 0;
  if (!u32(&n)) return false;
  if (size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

// ---- domain encodings ------------------------------------------------

void encode_attack_spec(WireWriter& w, const attack::AttackSpec& s) {
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.f64(s.epsilon);
  w.u32(static_cast<std::uint32_t>(s.steps));
  w.f64(s.step_size);
  w.f64(s.severity);
  w.f64(s.clip_min);
  w.f64(s.clip_max);
  w.f64(s.margin.m_plus);
  w.f64(s.margin.m_minus);
  w.f64(s.margin.lambda);
}

bool decode_attack_spec(WireReader& r, attack::AttackSpec* s) {
  std::uint8_t kind = 0;
  std::uint32_t steps = 0;
  bool ok = r.u8(&kind) && r.f64(&s->epsilon) && r.u32(&steps) &&
            r.f64(&s->step_size) && r.f64(&s->severity) && r.f64(&s->clip_min) &&
            r.f64(&s->clip_max) && r.f64(&s->margin.m_plus) &&
            r.f64(&s->margin.m_minus) && r.f64(&s->margin.lambda);
  if (!ok) return false;
  if (kind > static_cast<std::uint8_t>(attack::AttackKind::kScale)) return false;
  s->kind = static_cast<attack::AttackKind>(kind);
  s->steps = static_cast<int>(steps);
  return true;
}

namespace {

void encode_rule(WireWriter& w, const noise::InjectionRule& rule) {
  w.u8(rule.kind.has_value() ? 1 : 0);
  w.u8(rule.kind.has_value() ? static_cast<std::uint8_t>(*rule.kind) : 0);
  w.u8(rule.layer.has_value() ? 1 : 0);
  w.str(rule.layer.has_value() ? *rule.layer : std::string());
  w.f64(rule.noise.nm);
  w.f64(rule.noise.na);
}

bool decode_rule(WireReader& r, noise::InjectionRule* rule) {
  std::uint8_t has_kind = 0, kind = 0, has_layer = 0;
  std::string layer;
  bool ok = r.u8(&has_kind) && r.u8(&kind) && r.u8(&has_layer) && r.str(&layer) &&
            r.f64(&rule->noise.nm) && r.f64(&rule->noise.na);
  if (!ok) return false;
  if (kind > static_cast<std::uint8_t>(capsnet::OpKind::kLogitsUpdate)) return false;
  rule->kind = has_kind != 0
                   ? std::optional<capsnet::OpKind>(static_cast<capsnet::OpKind>(kind))
                   : std::nullopt;
  rule->layer = has_layer != 0 ? std::optional<std::string>(std::move(layer))
                               : std::nullopt;
  return true;
}

void encode_point(WireWriter& w, const core::SweepPointSpec& p) {
  w.u32(static_cast<std::uint32_t>(p.rules.size()));
  for (const noise::InjectionRule& rule : p.rules) encode_rule(w, rule);
  w.u64(p.salt);
}

bool decode_point(WireReader& r, core::SweepPointSpec* p) {
  std::uint32_t n = 0;
  if (!r.u32(&n)) return false;
  p->rules.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!decode_rule(r, &p->rules[i])) return false;
  }
  return r.u64(&p->salt);
}

}  // namespace

void encode_hello(WireWriter& w, const HelloMsg& m) {
  w.u32(m.proto);
  w.u64(m.job_hash);
  w.str(m.name);
}

bool decode_hello(WireReader& r, HelloMsg* m) {
  return r.u32(&m->proto) && r.u64(&m->job_hash) && r.str(&m->name) && r.done();
}

void encode_hello_ack(WireWriter& w, const HelloAckMsg& m) {
  w.u8(m.accepted ? 1 : 0);
  w.u32(m.worker_id);
  w.str(m.reason);
}

bool decode_hello_ack(WireReader& r, HelloAckMsg* m) {
  std::uint8_t accepted = 0;
  if (!(r.u8(&accepted) && r.u32(&m->worker_id) && r.str(&m->reason) && r.done()))
    return false;
  m->accepted = accepted != 0;
  return true;
}

void encode_heartbeat(WireWriter& w, const HeartbeatMsg& m) {
  w.u64(m.shards_done);
  w.u64(m.t_send_us);
  w.u64(m.last_rtt_us);
}

bool decode_heartbeat(WireReader& r, HeartbeatMsg* m) {
  return r.u64(&m->shards_done) && r.u64(&m->t_send_us) &&
         r.u64(&m->last_rtt_us) && r.done();
}

void encode_heartbeat_ack(WireWriter& w, const HeartbeatAckMsg& m) {
  w.u64(m.t_echo_us);
}

bool decode_heartbeat_ack(WireReader& r, HeartbeatAckMsg* m) {
  return r.u64(&m->t_echo_us) && r.done();
}

void encode_assign(WireWriter& w, const AssignMsg& m) {
  w.u64(m.trace_id);
  encode_shard(w, m.shard);
}

bool decode_assign(WireReader& r, AssignMsg* m) {
  // decode_shard consumes the remainder and enforces done().
  return r.u64(&m->trace_id) && decode_shard(r, &m->shard);
}

void encode_result(WireWriter& w, const ResultMsg& m) {
  w.u64(m.trace_id);
  w.u64(m.exec_us);
  w.u64(m.base_us);
  w.u64(m.points_us);
  w.u64(m.rtt_us);
  encode_outcome(w, m.outcome);
}

bool decode_result(WireReader& r, ResultMsg* m) {
  // decode_outcome consumes the remainder and enforces done().
  return r.u64(&m->trace_id) && r.u64(&m->exec_us) && r.u64(&m->base_us) &&
         r.u64(&m->points_us) && r.u64(&m->rtt_us) &&
         decode_outcome(r, &m->outcome);
}

void encode_shard(WireWriter& w, const core::SweepShard& s) {
  w.u64(s.id);
  encode_attack_spec(w, s.spec);
  w.u8(static_cast<std::uint8_t>(s.backend));
  w.str(s.component);
  w.u32(static_cast<std::uint32_t>(s.bits));
  w.u32(static_cast<std::uint32_t>(s.points.size()));
  for (const core::SweepPointSpec& p : s.points) encode_point(w, p);
}

bool decode_shard(WireReader& r, core::SweepShard* s) {
  std::uint8_t backend = 0;
  std::uint32_t bits = 0, npoints = 0;
  if (!(r.u64(&s->id) && decode_attack_spec(r, &s->spec) && r.u8(&backend) &&
        r.str(&s->component) && r.u32(&bits) && r.u32(&npoints)))
    return false;
  if (backend > static_cast<std::uint8_t>(core::ShardBackend::kEmulated)) return false;
  s->backend = static_cast<core::ShardBackend>(backend);
  s->bits = static_cast<int>(bits);
  s->points.resize(npoints);
  for (std::uint32_t i = 0; i < npoints; ++i) {
    if (!decode_point(r, &s->points[i])) return false;
  }
  return r.done();
}

void encode_outcome(WireWriter& w, const core::ShardOutcome& o) {
  w.u64(o.id);
  w.f64(o.base);
  w.u32(static_cast<std::uint32_t>(o.acc.size()));
  for (double a : o.acc) w.f64(a);
}

bool decode_outcome(WireReader& r, core::ShardOutcome* o) {
  std::uint32_t n = 0;
  if (!(r.u64(&o->id) && r.f64(&o->base) && r.u32(&n))) return false;
  o->acc.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!r.f64(&o->acc[i])) return false;
  }
  return r.done();
}

// ---- sockets ---------------------------------------------------------

Socket::~Socket() { close_now(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_now();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

const char* frame_status_name(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kTimeout: return "timeout";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kCorrupt: return "corrupt";
    case FrameStatus::kTooLarge: return "too-large";
    case FrameStatus::kError: return "error";
  }
  return "unknown";
}

namespace {

struct ParsedAddr {
  bool is_unix = false;
  std::string path;  ///< unix.
  std::string host;  ///< tcp.
  std::uint16_t port = 0;
};

bool parse_addr(const std::string& addr, ParsedAddr* out, std::string* error) {
  if (addr.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->path = addr.substr(5);
    if (out->path.empty()) {
      if (error) *error = "empty unix socket path in '" + addr + "'";
      return false;
    }
    // sun_path is a fixed 108-byte field; longer paths silently truncate.
    if (out->path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error) *error = "unix socket path too long: '" + out->path + "'";
      return false;
    }
    return true;
  }
  if (addr.rfind("tcp:", 0) == 0) {
    const std::string rest = addr.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      if (error) *error = "expected tcp:host:port, got '" + addr + "'";
      return false;
    }
    out->is_unix = false;
    out->host = rest.substr(0, colon);
    char* end = nullptr;
    const long port = std::strtol(rest.c_str() + colon + 1, &end, 10);
    if (end == rest.c_str() + colon + 1 || *end != '\0' || port < 0 || port > 65535) {
      if (error) *error = "bad tcp port in '" + addr + "'";
      return false;
    }
    out->port = static_cast<std::uint16_t>(port);
    return true;
  }
  if (error) *error = "address must start with unix: or tcp:, got '" + addr + "'";
  return false;
}

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a dying peer must surface as EPIPE, not kill the
    // coordinator process with SIGPIPE.
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly n bytes. first_timeout_ms bounds the wait for the FIRST
/// byte only (negative = wait forever); subsequent bytes of a started
/// read use a generous fixed deadline so a mid-frame stall cannot wedge
/// the receiver forever.
FrameStatus recv_exact(int fd, void* data, std::size_t n, int first_timeout_ms) {
  char* p = static_cast<char*>(data);
  bool first = true;
  while (n > 0) {
    pollfd pfd{fd, POLLIN, 0};
    const int timeout = first ? first_timeout_ms : 10'000;
    const int pr = ::poll(&pfd, 1, timeout);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return FrameStatus::kError;
    }
    if (pr == 0) return first ? FrameStatus::kTimeout : FrameStatus::kError;
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return FrameStatus::kError;
    }
    if (r == 0) return first ? FrameStatus::kClosed : FrameStatus::kError;
    first = false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return FrameStatus::kOk;
}

}  // namespace

Socket dist_listen(const std::string& addr, std::string* bound_addr,
                   std::string* error) {
  ParsedAddr parsed;
  if (!parse_addr(addr, &parsed, error)) return Socket();
  if (parsed.is_unix) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return Socket();
    }
    ::unlink(parsed.path.c_str());  // Stale path from a crashed coordinator.
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, parsed.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(s.fd(), 64) != 0) {
      if (error) *error = std::string("bind/listen ") + addr + ": " + std::strerror(errno);
      return Socket();
    }
    if (bound_addr) *bound_addr = addr;
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(parsed.port);
  if (::inet_pton(AF_INET, parsed.host.c_str(), &sa.sin_addr) != 1) {
    if (error) *error = "bad tcp host '" + parsed.host + "' (numeric IPv4 only)";
    return Socket();
  }
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(s.fd(), 64) != 0) {
    if (error) *error = std::string("bind/listen ") + addr + ": " + std::strerror(errno);
    return Socket();
  }
  if (bound_addr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "tcp:%s:%u", parsed.host.c_str(),
                    static_cast<unsigned>(ntohs(actual.sin_port)));
      *bound_addr = buf;
    } else {
      *bound_addr = addr;
    }
  }
  return s;
}

Socket dist_accept(const Socket& listener, int timeout_ms) {
  pollfd pfd{listener.fd(), POLLIN, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr <= 0) return Socket();
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();
  return Socket(fd);
}

Socket dist_connect(const std::string& addr, std::string* error) {
  ParsedAddr parsed;
  if (!parse_addr(addr, &parsed, error)) return Socket();
  if (parsed.is_unix) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return Socket();
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, parsed.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      if (error) *error = std::string("connect ") + addr + ": " + std::strerror(errno);
      return Socket();
    }
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(parsed.port);
  if (::inet_pton(AF_INET, parsed.host.c_str(), &sa.sin_addr) != 1) {
    if (error) *error = "bad tcp host '" + parsed.host + "' (numeric IPv4 only)";
    return Socket();
  }
  if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (error) *error = std::string("connect ") + addr + ": " + std::strerror(errno);
    return Socket();
  }
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

namespace {

bool send_frame_impl(const Socket& s, MsgType type,
                     const std::vector<std::uint8_t>& payload, bool corrupt) {
  // Frame: u32 len | u32 crc | u8 type | payload. The type byte lives
  // inside the checksummed region so a flipped type is caught too.
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size() + 1);
  if (len > kMaxFrame) return false;
  std::uint32_t crc = util::crc32_init();
  const std::uint8_t type_byte = static_cast<std::uint8_t>(type);
  crc = util::crc32_update(crc, &type_byte, 1);
  crc = util::crc32_update(crc, payload.data(), payload.size());
  std::uint8_t header[9];
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  for (int i = 0; i < 4; ++i) header[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  header[8] = type_byte;
  if (!send_all(s.fd(), header, sizeof(header))) return false;
  if (payload.empty()) return true;
  if (!corrupt) return send_all(s.fd(), payload.data(), payload.size());
  std::vector<std::uint8_t> dirty = payload;
  // Past the leading u64 id field when possible, so the receiver sees a
  // plausibly-shaped frame whose CRC check must still fire.
  const std::size_t at = dirty.size() > 8 ? 8 : dirty.size() - 1;
  dirty[at] ^= 0x5A;
  return send_all(s.fd(), dirty.data(), dirty.size());
}

}  // namespace

bool send_frame(const Socket& s, MsgType type, const std::vector<std::uint8_t>& payload) {
  return send_frame_impl(s, type, payload, /*corrupt=*/false);
}

bool send_frame_corrupted(const Socket& s, MsgType type,
                          const std::vector<std::uint8_t>& payload) {
  return send_frame_impl(s, type, payload, /*corrupt=*/true);
}

FrameStatus recv_frame(const Socket& s, int timeout_ms, MsgType* type,
                       std::vector<std::uint8_t>* payload) {
  std::uint8_t header[8];
  FrameStatus st = recv_exact(s.fd(), header, sizeof(header), timeout_ms);
  if (st != FrameStatus::kOk) return st;
  std::uint32_t len = 0, crc = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
  if (len == 0 || len > kMaxFrame) return FrameStatus::kTooLarge;
  std::vector<std::uint8_t> body(len);
  // The sender already committed to this frame; a stall now is a wedged
  // peer, bounded by the same mid-read deadline recv_exact applies.
  st = recv_exact(s.fd(), body.data(), body.size(), 10'000);
  if (st == FrameStatus::kClosed || st == FrameStatus::kTimeout) return FrameStatus::kError;
  if (st != FrameStatus::kOk) return st;
  if (util::crc32(body.data(), body.size()) != crc) return FrameStatus::kCorrupt;
  const std::uint8_t type_byte = body[0];
  if (type_byte < static_cast<std::uint8_t>(MsgType::kHello) ||
      type_byte > static_cast<std::uint8_t>(MsgType::kHeartbeatAck))
    return FrameStatus::kCorrupt;
  *type = static_cast<MsgType>(type_byte);
  payload->assign(body.begin() + 1, body.end());
  return FrameStatus::kOk;
}

}  // namespace redcane::dist
