#include "approx/library.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace redcane::approx {
namespace {

// Exact 8-bit multiplier operating point from the paper's Table IV
// (mul8u_1JFF row): 391 uW, 710 um^2 at 45 nm.
constexpr double kExactPowerUw = 391.0;
constexpr double kExactAreaUm2 = 710.0;

/// Power/area estimate for non-analog components: an 8x8 array multiplier
/// has 64 partial-product cells; families remove cells and adder columns.
/// `active` is the surviving fraction of the PP array; static overhead of
/// the reduction tree keeps even tiny components above ~6% of exact.
MultiplierInfo estimated(std::string name, std::string family, int param, double active) {
  MultiplierInfo info;
  info.name = std::move(name);
  info.family = std::move(family);
  info.param = param;
  const double frac = 0.06 + 0.94 * active;
  info.power_uw = kExactPowerUw * frac;
  info.area_um2 = kExactAreaUm2 * (0.08 + 0.92 * active);
  return info;
}

MultiplierInfo analog(std::string name, std::string family, int param, std::string paper_analog,
                      double power_uw, double area_um2) {
  MultiplierInfo info;
  info.name = std::move(name);
  info.family = std::move(family);
  info.param = param;
  info.paper_analog = std::move(paper_analog);
  info.power_uw = power_uw;
  info.area_um2 = area_um2;
  return info;
}

/// Surviving PP-array fraction for column-removal families (bam/loa/res):
/// column c of an 8x8 array holds min(c+1, 15-c, 8) cells, 64 total.
double column_fraction_kept(int k_removed) {
  int kept = 0;
  for (int c = 0; c < 15; ++c) {
    const int cells = std::min({c + 1, 15 - c, 8});
    if (c >= k_removed) kept += cells;
  }
  return static_cast<double>(kept) / 64.0;
}

double op_trunc_fraction_kept(int k) {
  const int live = 8 - k;
  return static_cast<double>(live * live) / 64.0;
}

struct Registry {
  std::vector<std::unique_ptr<Multiplier>> owned;
  std::vector<const Multiplier*> view;

  void put(std::unique_ptr<Multiplier> m) {
    view.push_back(m.get());
    owned.push_back(std::move(m));
  }
};

Registry build_registry() {
  Registry r;

  // --- Paper analogs (Table IV rows, published power/area) ------------
  // The mapping pairs each EvoApprox8B circuit with the behavioral family
  // whose error profile (NM scale, bias sign, Gaussianity) best matches
  // the published NM/NA columns. See DESIGN.md §4.
  r.put(make_exact_multiplier(
      analog("axm_exact", "exact", 0, "mul8u_1JFF", 391.0, 710.0)));
  r.put(make_res_trunc_multiplier(
      analog("axm_res2_14vp", "res_trunc", 2, "mul8u_14VP", 364.0, 654.0)));
  r.put(make_bam_multiplier(
      analog("axm_bam5_gs2", "bam", 5, "mul8u_GS2", 356.0, 633.0)));
  r.put(make_res_trunc_multiplier(
      analog("axm_res4_ck5", "res_trunc", 4, "mul8u_CK5", 345.0, 604.0)));
  r.put(make_loa_multiplier(
      analog("axm_loa7_7c1", "loa", 7, "mul8u_7C1", 329.0, 607.0)));
  r.put(make_bam_multiplier(
      analog("axm_bam8_96d", "bam", 8, "mul8u_96D", 309.0, 605.0)));
  r.put(make_drum_multiplier(
      analog("axm_drum6_2hh", "drum", 6, "mul8u_2HH", 302.0, 542.0)));
  r.put(make_drum_multiplier(
      analog("axm_drum5_ngr", "drum", 5, "mul8u_NGR", 276.0, 512.0)));
  r.put(make_op_trunc_multiplier(
      analog("axm_op2_19db", "op_trunc", 2, "mul8u_19DB", 206.0, 396.0)));
  r.put(make_drum_multiplier(
      analog("axm_drum4_dm1", "drum", 4, "mul8u_DM1", 195.0, 402.0)));
  r.put(make_op_trunc_multiplier(
      analog("axm_op3_12n4", "op_trunc", 3, "mul8u_12N4", 142.0, 390.0)));
  r.put(make_loa_multiplier(
      analog("axm_loa10_1agv", "loa", 10, "mul8u_1AGV", 95.0, 228.0)));
  r.put(make_mitchell_multiplier(
      analog("axm_mitchell3_yx7", "mitchell", 3, "mul8u_YX7", 61.0, 221.0)));
  r.put(make_drum_multiplier(
      analog("axm_drum3_jv3", "drum", 3, "mul8u_JV3", 34.0, 111.0)));
  r.put(make_kulkarni_multiplier(
      analog("axm_kulkarni_qkx", "kulkarni", 0, "mul8u_QKX", 29.0, 112.0)));

  // --- Remaining library components (estimated power/area) ------------
  // res_trunc sweep.
  for (int k : {6, 8, 10}) {
    r.put(make_res_trunc_multiplier(
        estimated("axm_res" + std::to_string(k), "res_trunc", k, column_fraction_kept(k))));
  }
  // op_trunc sweep.
  for (int k : {1, 4}) {
    r.put(make_op_trunc_multiplier(
        estimated("axm_op" + std::to_string(k), "op_trunc", k, op_trunc_fraction_kept(k))));
  }
  // bam sweep.
  for (int k : {4, 6, 10}) {
    r.put(make_bam_multiplier(
        estimated("axm_bam" + std::to_string(k), "bam", k, column_fraction_kept(k))));
  }
  // loa sweep (OR compressors cost ~1/5 of an adder cell).
  for (int k : {4, 6, 8}) {
    const double kept = column_fraction_kept(k) + 0.2 * (1.0 - column_fraction_kept(k));
    r.put(make_loa_multiplier(estimated("axm_loa" + std::to_string(k), "loa", k, kept)));
  }
  // drum sweep (k leading bits -> roughly k^2/64 array + leading-one logic).
  for (int k : {7}) {
    r.put(make_drum_multiplier(estimated("axm_drum" + std::to_string(k), "drum", k,
                                         static_cast<double>(k * k) / 64.0 + 0.12)));
  }
  // Mitchell variants: full mantissa + truncated-mantissa versions.
  r.put(make_mitchell_multiplier(estimated("axm_mitchell", "mitchell", 0, 0.22)));
  for (int m : {4, 5}) {
    r.put(make_mitchell_multiplier(
        estimated("axm_mitchell" + std::to_string(m), "mitchell", m, 0.14 + 0.02 * m)));
  }
  // Kulkarni hybrid (exact high quadrant).
  r.put(make_kulkarni_multiplier(estimated("axm_kulkarni_hy", "kulkarni", 1, 0.42)));
  // Hybrid operand+result truncation combos: param = op_k * 16 + res_k.
  for (auto [op_k, res_k] : {std::pair{1, 4}, {2, 6}, {1, 8}, {3, 8}}) {
    const double kept = op_trunc_fraction_kept(op_k) * column_fraction_kept(res_k);
    r.put(make_hybrid_trunc_multiplier(estimated(
        "axm_hy_o" + std::to_string(op_k) + "r" + std::to_string(res_k), "hybrid_trunc",
        op_k * 16 + res_k, kept)));
  }

  return r;
}

Registry& registry() {
  static Registry r = build_registry();
  return r;
}

}  // namespace

const std::vector<const Multiplier*>& multiplier_library() { return registry().view; }

const Multiplier& multiplier_by_name(const std::string& name) {
  for (const Multiplier* m : registry().view) {
    if (m->info().name == name) return *m;
  }
  std::fprintf(stderr, "redcane::approx fatal: unknown multiplier '%s'\n", name.c_str());
  std::abort();
}

const Multiplier& multiplier_by_analog(const std::string& analog) {
  for (const Multiplier* m : registry().view) {
    if (m->info().paper_analog == analog) return *m;
  }
  std::fprintf(stderr, "redcane::approx fatal: unknown analog '%s'\n", analog.c_str());
  std::abort();
}

const Multiplier& exact_multiplier() { return *registry().view.front(); }

std::vector<const Multiplier*> paper_analog_multipliers() {
  std::vector<const Multiplier*> out;
  for (const Multiplier* m : registry().view) {
    if (!m->info().paper_analog.empty()) out.push_back(m);
  }
  return out;
}

}  // namespace redcane::approx
