// Multiply-and-accumulate chain simulator.
//
// The paper characterizes error accumulation over 1, 9 and 81 chained MAC
// operations — the dot-product lengths of 3x3 and 9x9 convolution kernels
// (Fig. 6). This module executes such chains with a chosen behavioral
// multiplier (and optionally an approximate accumulator adder) and reports
// the signed error versus the exact chain.
#pragma once

#include <cstdint>
#include <span>

#include "approx/adder.hpp"
#include "approx/multiplier.hpp"

namespace redcane::approx {

/// Result of one simulated MAC chain.
struct MacResult {
  std::uint64_t approx = 0;  ///< Accumulated approximate value.
  std::uint64_t exact = 0;   ///< Accumulated exact value.

  [[nodiscard]] std::int64_t error() const {
    return static_cast<std::int64_t>(approx) - static_cast<std::int64_t>(exact);
  }
};

/// Runs sum_i mul(a[i], b[i]) with the given multiplier and an exact
/// accumulator. a and b must have equal length.
[[nodiscard]] MacResult run_mac_chain(const Multiplier& mul, std::span<const std::uint8_t> a,
                                      std::span<const std::uint8_t> b);

/// Same, but accumulating through an approximate adder.
[[nodiscard]] MacResult run_mac_chain(const Multiplier& mul, const Adder& add,
                                      std::span<const std::uint8_t> a,
                                      std::span<const std::uint8_t> b);

}  // namespace redcane::approx
