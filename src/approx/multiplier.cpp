#include "approx/multiplier.hpp"

#include <bit>

namespace redcane::approx {
namespace {

std::uint32_t exact_mul(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint32_t>(a) * static_cast<std::uint32_t>(b);
}

/// Exact 8x8 array multiplier (golden reference).
class ExactMultiplier final : public Multiplier {
 public:
  using Multiplier::Multiplier;
  explicit ExactMultiplier(MultiplierInfo info) : Multiplier(std::move(info)) {}
  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    return exact_mul(a, b);
  }
};

/// Result truncation: the k low output bits are tied to zero. Models a
/// multiplier whose final adder stage omits the low columns entirely.
/// Error is a deterministic negative bias in [-(2^k - 1), 0].
class ResTruncMultiplier final : public Multiplier {
 public:
  explicit ResTruncMultiplier(MultiplierInfo info)
      : Multiplier(std::move(info)), mask_(~((1U << this->info().param) - 1U)) {}
  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    return exact_mul(a, b) & mask_;
  }

 private:
  std::uint32_t mask_;
};

/// Operand truncation: the k low bits of each operand are gated off before
/// an exact multiplication. Saves the corresponding partial-product rows
/// and columns of the array.
class OpTruncMultiplier final : public Multiplier {
 public:
  explicit OpTruncMultiplier(MultiplierInfo info)
      : Multiplier(std::move(info)),
        mask_(static_cast<std::uint8_t>(0xFFU << this->info().param)) {}
  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    return exact_mul(a & mask_, b & mask_);
  }

 private:
  std::uint8_t mask_;
};

/// Broken-array multiplier (Mahdiani et al.): all partial-product bits
/// p(i,j) with i + j < k are removed from the carry-save array.
class BamMultiplier final : public Multiplier {
 public:
  explicit BamMultiplier(MultiplierInfo info) : Multiplier(std::move(info)) {}
  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    const int k = info().param;
    std::uint32_t acc = 0;
    for (int i = 0; i < 8; ++i) {
      if (((a >> i) & 1U) == 0U) continue;
      for (int j = 0; j < 8; ++j) {
        if (i + j < k) continue;
        if (((b >> j) & 1U) != 0U) acc += 1U << (i + j);
      }
    }
    return acc;
  }
};

/// Lower-part-OR multiplier: output columns below k are produced by OR-ing
/// the partial products of that column (a single-gate compressor) instead
/// of adding them; carries out of the low part are dropped. The high part
/// is exact given the (lost) low carries.
class LoaMultiplier final : public Multiplier {
 public:
  explicit LoaMultiplier(MultiplierInfo info) : Multiplier(std::move(info)) {}
  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    const int k = info().param;
    std::uint32_t high = 0;  // Exact sum of PP bits in columns >= k.
    std::uint32_t low = 0;   // OR-compressed columns < k.
    for (int i = 0; i < 8; ++i) {
      if (((a >> i) & 1U) == 0U) continue;
      for (int j = 0; j < 8; ++j) {
        if (((b >> j) & 1U) == 0U) continue;
        const int col = i + j;
        if (col >= k) {
          high += 1U << col;
        } else {
          low |= 1U << col;
        }
      }
    }
    return high + low;
  }
};

/// DRUM-k (Hashemi et al.): each operand is reduced to its k leading bits
/// starting at the most-significant one, with the segment LSB forced to 1
/// for unbiasing; the segments are multiplied exactly and shifted back.
class DrumMultiplier final : public Multiplier {
 public:
  explicit DrumMultiplier(MultiplierInfo info) : Multiplier(std::move(info)) {}

  static std::uint32_t segment(std::uint8_t x, int k, int& shift) {
    shift = 0;
    if (x == 0) return 0;
    const int top = 31 - std::countl_zero(static_cast<std::uint32_t>(x));  // MSB index.
    if (top < k) return x;  // Small values pass through exactly.
    shift = top - k + 1;
    return ((static_cast<std::uint32_t>(x) >> shift) | 1U);
  }

  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    const int k = info().param;
    int sa = 0;
    int sb = 0;
    const std::uint32_t va = segment(a, k, sa);
    const std::uint32_t vb = segment(b, k, sb);
    return (va * vb) << (sa + sb);
  }
};

/// Mitchell logarithmic multiplier: log2 of each operand approximated as
/// characteristic + linear mantissa; the antilog of the sum gives the
/// product. param > 0 additionally truncates the mantissa sum to that many
/// fractional bits (cheaper adder). Always underestimates (negative bias).
class MitchellMultiplier final : public Multiplier {
 public:
  explicit MitchellMultiplier(MultiplierInfo info) : Multiplier(std::move(info)) {}

  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    if (a == 0 || b == 0) return 0;
    // Fixed-point log with 16 fractional bits.
    constexpr int kFrac = 16;
    const int ka = 31 - std::countl_zero(static_cast<std::uint32_t>(a));
    const int kb = 31 - std::countl_zero(static_cast<std::uint32_t>(b));
    const std::uint32_t ma =
        ((static_cast<std::uint32_t>(a) << kFrac) >> ka) - (1U << kFrac);  // mantissa in [0,1)
    const std::uint32_t mb = ((static_cast<std::uint32_t>(b) << kFrac) >> kb) - (1U << kFrac);
    std::uint32_t msum = ma + mb;
    if (info().param > 0) {
      const int drop = kFrac - info().param;
      msum = (msum >> drop) << drop;
    }
    const int kchar = ka + kb;
    if (msum >= (1U << kFrac)) {
      // Mantissa sum s >= 1: log = (kchar + 1) + (s - 1), so the antilog is
      // 2^(kchar + 1) * s in fixed point.
      return static_cast<std::uint32_t>((static_cast<std::uint64_t>(msum) << (kchar + 1)) >>
                                        kFrac);
    }
    // antilog = 2^kchar * (1 + msum).
    const std::uint64_t mant = (1ULL << kFrac) + msum;
    return static_cast<std::uint32_t>((mant << kchar) >> kFrac);
  }
};

/// Kulkarni 2x2 underdesigned multiplier: the 2x2 building block computes
/// 3 * 3 = 7 (0b111 instead of 0b1001), saving one output line; larger
/// multipliers are built by exact recursive decomposition over the
/// approximate blocks. param = 1 keeps the high-quadrant 4x4 exact.
class KulkarniMultiplier final : public Multiplier {
 public:
  explicit KulkarniMultiplier(MultiplierInfo info) : Multiplier(std::move(info)) {}

  static std::uint32_t mul2x2(std::uint32_t a, std::uint32_t b) {
    return (a == 3 && b == 3) ? 7U : a * b;
  }

  static std::uint32_t mul4x4(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t ah = a >> 2;
    const std::uint32_t al = a & 3U;
    const std::uint32_t bh = b >> 2;
    const std::uint32_t bl = b & 3U;
    return (mul2x2(ah, bh) << 4) + ((mul2x2(ah, bl) + mul2x2(al, bh)) << 2) + mul2x2(al, bl);
  }

  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    const std::uint32_t ah = a >> 4;
    const std::uint32_t al = a & 0xFU;
    const std::uint32_t bh = b >> 4;
    const std::uint32_t bl = b & 0xFU;
    const bool hybrid = info().param == 1;
    const std::uint32_t hh = hybrid ? ah * bh : mul4x4(ah, bh);
    return (hh << 8) + ((mul4x4(ah, bl) + mul4x4(al, bh)) << 4) + mul4x4(al, bl);
  }
};

/// Hybrid of operand and result truncation: param encodes op_k*16 + res_k.
class HybridTruncMultiplier final : public Multiplier {
 public:
  explicit HybridTruncMultiplier(MultiplierInfo info) : Multiplier(std::move(info)) {}
  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    const int op_k = info().param >> 4;
    const int res_k = info().param & 0xF;
    const auto mask = static_cast<std::uint8_t>(0xFFU << op_k);
    const std::uint32_t p = exact_mul(a & mask, b & mask);
    return p & ~((1U << res_k) - 1U);
  }
};

}  // namespace

std::unique_ptr<Multiplier> make_exact_multiplier(MultiplierInfo info) {
  return std::make_unique<ExactMultiplier>(std::move(info));
}
std::unique_ptr<Multiplier> make_res_trunc_multiplier(MultiplierInfo info) {
  return std::make_unique<ResTruncMultiplier>(std::move(info));
}
std::unique_ptr<Multiplier> make_op_trunc_multiplier(MultiplierInfo info) {
  return std::make_unique<OpTruncMultiplier>(std::move(info));
}
std::unique_ptr<Multiplier> make_bam_multiplier(MultiplierInfo info) {
  return std::make_unique<BamMultiplier>(std::move(info));
}
std::unique_ptr<Multiplier> make_loa_multiplier(MultiplierInfo info) {
  return std::make_unique<LoaMultiplier>(std::move(info));
}
std::unique_ptr<Multiplier> make_drum_multiplier(MultiplierInfo info) {
  return std::make_unique<DrumMultiplier>(std::move(info));
}
std::unique_ptr<Multiplier> make_mitchell_multiplier(MultiplierInfo info) {
  return std::make_unique<MitchellMultiplier>(std::move(info));
}
std::unique_ptr<Multiplier> make_kulkarni_multiplier(MultiplierInfo info) {
  return std::make_unique<KulkarniMultiplier>(std::move(info));
}
std::unique_ptr<Multiplier> make_hybrid_trunc_multiplier(MultiplierInfo info) {
  return std::make_unique<HybridTruncMultiplier>(std::move(info));
}

}  // namespace redcane::approx
