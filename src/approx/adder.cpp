#include "approx/adder.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane::approx {
namespace {

class ExactAdder final : public Adder {
 public:
  explicit ExactAdder(AdderInfo info) : Adder(std::move(info)) {}
  std::uint32_t add(std::uint32_t a, std::uint32_t b) const override { return a + b; }
};

class LoaAdder final : public Adder {
 public:
  explicit LoaAdder(AdderInfo info)
      : Adder(std::move(info)), low_mask_((1U << this->info().param) - 1U) {}
  std::uint32_t add(std::uint32_t a, std::uint32_t b) const override {
    const std::uint32_t high = (a & ~low_mask_) + (b & ~low_mask_);
    return high | ((a | b) & low_mask_);
  }

 private:
  std::uint32_t low_mask_;
};

class TruncAdder final : public Adder {
 public:
  explicit TruncAdder(AdderInfo info)
      : Adder(std::move(info)), low_mask_((1U << this->info().param) - 1U) {}
  std::uint32_t add(std::uint32_t a, std::uint32_t b) const override {
    return (a & ~low_mask_) + (b & ~low_mask_);
  }

 private:
  std::uint32_t low_mask_;
};

class SegmentedAdder final : public Adder {
 public:
  explicit SegmentedAdder(AdderInfo info) : Adder(std::move(info)) {}
  std::uint32_t add(std::uint32_t a, std::uint32_t b) const override {
    const int w = info().param;
    std::uint32_t out = 0;
    for (int base = 0; base < 32; base += w) {
      const std::uint32_t mask = (w >= 32) ? ~0U : (((1U << w) - 1U) << base);
      // Each segment adds independently; its carry-out is discarded.
      out |= ((a & mask) + (b & mask)) & mask;
    }
    return out;
  }
};

struct Registry {
  std::vector<std::unique_ptr<Adder>> owned;
  std::vector<const Adder*> view;

  void put(std::unique_ptr<Adder> a) {
    view.push_back(a.get());
    owned.push_back(std::move(a));
  }
};

Registry build_registry() {
  Registry r;
  // Power/area relative to an exact 20-bit ripple adder at the paper's
  // operating point. The paper's Table I gives 0.0202 pJ/add for the exact
  // unit; component-level power here only feeds the Fig. 5 study.
  r.put(make_exact_adder({.name = "axa_exact",
                          .family = "exact",
                          .param = 0,
                          .paper_analog = "add8u_accurate",
                          .power_uw = 24.0,
                          .area_um2 = 60.0}));
  r.put(make_loa_adder({.name = "axa_loa4",
                        .family = "loa",
                        .param = 4,
                        .paper_analog = "",
                        .power_uw = 19.2,
                        .area_um2 = 49.0}));
  r.put(make_loa_adder({.name = "axa_loa6",
                        .family = "loa",
                        .param = 6,
                        .paper_analog = "add8u_5LT",
                        .power_uw = 16.6,
                        .area_um2 = 43.0}));
  r.put(make_loa_adder({.name = "axa_loa8",
                        .family = "loa",
                        .param = 8,
                        .paper_analog = "",
                        .power_uw = 14.1,
                        .area_um2 = 37.0}));
  r.put(make_trunc_adder({.name = "axa_trunc4",
                          .family = "trunc",
                          .param = 4,
                          .paper_analog = "",
                          .power_uw = 18.5,
                          .area_um2 = 46.0}));
  r.put(make_trunc_adder({.name = "axa_trunc6",
                          .family = "trunc",
                          .param = 6,
                          .paper_analog = "",
                          .power_uw = 15.7,
                          .area_um2 = 40.0}));
  r.put(make_segmented_adder({.name = "axa_seg8",
                              .family = "seg",
                              .param = 8,
                              .paper_analog = "",
                              .power_uw = 17.8,
                              .area_um2 = 45.0}));
  r.put(make_segmented_adder({.name = "axa_seg10",
                              .family = "seg",
                              .param = 10,
                              .paper_analog = "",
                              .power_uw = 19.6,
                              .area_um2 = 50.0}));
  return r;
}

Registry& registry() {
  static Registry r = build_registry();
  return r;
}

}  // namespace

std::unique_ptr<Adder> make_exact_adder(AdderInfo info) {
  return std::make_unique<ExactAdder>(std::move(info));
}
std::unique_ptr<Adder> make_loa_adder(AdderInfo info) {
  return std::make_unique<LoaAdder>(std::move(info));
}
std::unique_ptr<Adder> make_trunc_adder(AdderInfo info) {
  return std::make_unique<TruncAdder>(std::move(info));
}
std::unique_ptr<Adder> make_segmented_adder(AdderInfo info) {
  return std::make_unique<SegmentedAdder>(std::move(info));
}

const std::vector<const Adder*>& adder_library() { return registry().view; }

const Adder& adder_by_name(const std::string& name) {
  for (const Adder* a : registry().view) {
    if (a->info().name == name) return *a;
  }
  std::fprintf(stderr, "redcane::approx fatal: unknown adder '%s'\n", name.c_str());
  std::abort();
}

}  // namespace redcane::approx
