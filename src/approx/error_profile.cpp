#include "approx/error_profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "approx/mac_chain.hpp"

namespace redcane::approx {

InputDistribution::InputDistribution(std::string label, std::vector<std::uint8_t> pool)
    : label_(std::move(label)), pool_(std::move(pool)) {}

InputDistribution InputDistribution::uniform() { return {"uniform", {}}; }

InputDistribution InputDistribution::empirical(std::vector<std::uint8_t> pool) {
  if (pool.empty()) {
    std::fprintf(stderr, "redcane::approx fatal: empirical distribution needs samples\n");
    std::abort();
  }
  return {"empirical", std::move(pool)};
}

std::uint8_t InputDistribution::sample(Rng& rng) const {
  if (pool_.empty()) return static_cast<std::uint8_t>(rng.uniform_index(256));
  return pool_[rng.uniform_index(pool_.size())];
}

ErrorProfile profile_multiplier(const Multiplier& mul, const InputDistribution& dist,
                                const ProfileConfig& cfg) {
  Rng rng(cfg.seed);
  ErrorProfile p;
  p.multiplier_name = mul.info().name;
  p.distribution_label = dist.label();
  p.chain_length = cfg.chain_length;
  p.error_samples.reserve(static_cast<std::size_t>(cfg.samples));

  std::vector<double> exact_outputs;
  exact_outputs.reserve(static_cast<std::size_t>(cfg.samples));
  std::vector<std::uint8_t> a(static_cast<std::size_t>(cfg.chain_length));
  std::vector<std::uint8_t> b(a.size());

  for (std::int64_t s = 0; s < cfg.samples; ++s) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = dist.sample(rng);
      b[i] = dist.sample(rng);
    }
    const MacResult r = run_mac_chain(mul, a, b);
    p.error_samples.push_back(static_cast<double>(r.error()));
    exact_outputs.push_back(static_cast<double>(r.exact));
  }

  p.error_moments = stats::moments(std::span<const double>(p.error_samples));
  p.exact_moments = stats::moments(std::span<const double>(exact_outputs));

  // NM/NA normalize by the full representable output range of the exact
  // datapath rather than the per-sample empirical range: a hardware design
  // sizes its fixed-point format to the datapath, not to one input batch.
  // For a chain of n 8x8 MACs that range is n * 255^2.
  const double range = static_cast<double>(cfg.chain_length) * 255.0 * 255.0;
  p.nm = p.error_moments.stddev / range;
  p.na = p.error_moments.mean / range;

  const stats::Histogram h = error_histogram(p, 64);
  p.gaussian_distance =
      stats::gaussian_fit_distance(h, p.error_moments.mean, p.error_moments.stddev);
  p.gaussian_like = p.gaussian_distance < kGaussianLikeThreshold;
  return p;
}

stats::Histogram error_histogram(const ErrorProfile& profile, std::size_t bins) {
  double bound = 1.0;
  for (double e : profile.error_samples) bound = std::max(bound, std::abs(e));
  stats::Histogram h(-bound * 1.02, bound * 1.02, bins);
  h.add(std::span<const double>(profile.error_samples));
  return h;
}

}  // namespace redcane::approx
