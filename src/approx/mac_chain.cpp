#include "approx/mac_chain.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane::approx {
namespace {

void check_lengths(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) {
    std::fprintf(stderr, "redcane::approx fatal: MAC chain operand length mismatch\n");
    std::abort();
  }
}

}  // namespace

MacResult run_mac_chain(const Multiplier& mul, std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b) {
  check_lengths(a, b);
  MacResult r;
  for (std::size_t i = 0; i < a.size(); ++i) {
    r.approx += mul.multiply(a[i], b[i]);
    r.exact += static_cast<std::uint64_t>(a[i]) * b[i];
  }
  return r;
}

MacResult run_mac_chain(const Multiplier& mul, const Adder& add,
                        std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  check_lengths(a, b);
  MacResult r;
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = add.add(acc, mul.multiply(a[i], b[i]));
    r.exact += static_cast<std::uint64_t>(a[i]) * b[i];
  }
  r.approx = acc;
  return r;
}

}  // namespace redcane::approx
