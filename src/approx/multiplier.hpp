// Behavioral models of 8x8 -> 16 bit unsigned approximate multipliers.
//
// The paper selects components from the EvoApprox8B library [19]. That
// library's circuits are not reimplemented gate-for-gate here; instead we
// provide 35 behavioral multipliers drawn from seven published approximate-
// multiplier design families that span the same spectrum of error
// magnitude, bias and power savings (see DESIGN.md §4). Each component is
// an exact bit-level behavioral model of its circuit family — not a noise
// generator — so error distributions emerge from real arithmetic.
//
// Families:
//   exact       — golden reference array multiplier
//   res_trunc   — result truncation: low k output bits forced to zero
//   op_trunc    — operand truncation: low k bits of each input zeroed
//   bam         — broken-array multiplier: partial-product columns < k removed
//   loa         — lower-part OR: columns < k approximated by OR compression
//   drum        — DRUM-k dynamic-range unbiased segment multiplier
//   mitchell    — Mitchell logarithmic multiplier (optionally truncated mantissa)
//   kulkarni    — recursive 2x2 underdesigned multiplier (3*3 = 7)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace redcane::approx {

/// Static metadata of a multiplier component.
struct MultiplierInfo {
  std::string name;          ///< Library identifier, e.g. "axm_drum4".
  std::string family;        ///< Design family, e.g. "drum".
  int param = 0;             ///< Family parameter (k); 0 when unused.
  std::string paper_analog;  ///< EvoApprox8B component it stands in for ("" if none).
  double power_uw = 0.0;     ///< Power at 45 nm-style operating point [uW].
  double area_um2 = 0.0;     ///< Cell area [um^2].

  /// Power saving relative to the exact multiplier, in [0, 1).
  [[nodiscard]] double power_saving(double exact_power_uw) const {
    return 1.0 - power_uw / exact_power_uw;
  }
};

/// Interface of an 8x8 unsigned behavioral multiplier.
class Multiplier {
 public:
  virtual ~Multiplier() = default;

  /// Approximate product of a * b; exact result fits in 16 bits but
  /// approximations may overshoot slightly, hence 32-bit return.
  [[nodiscard]] virtual std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const = 0;

  [[nodiscard]] const MultiplierInfo& info() const { return info_; }

  /// Signed arithmetic error vs the exact product (Eq. 2 of the paper).
  [[nodiscard]] std::int32_t error(std::uint8_t a, std::uint8_t b) const {
    return static_cast<std::int32_t>(multiply(a, b)) -
           static_cast<std::int32_t>(a) * static_cast<std::int32_t>(b);
  }

 protected:
  explicit Multiplier(MultiplierInfo info) : info_(std::move(info)) {}

 private:
  MultiplierInfo info_;
};

/// Factory helpers (power/area filled by the library; see library.cpp).
std::unique_ptr<Multiplier> make_exact_multiplier(MultiplierInfo info);
std::unique_ptr<Multiplier> make_res_trunc_multiplier(MultiplierInfo info);   // param = k
std::unique_ptr<Multiplier> make_op_trunc_multiplier(MultiplierInfo info);    // param = k
std::unique_ptr<Multiplier> make_bam_multiplier(MultiplierInfo info);         // param = k
std::unique_ptr<Multiplier> make_loa_multiplier(MultiplierInfo info);         // param = k
std::unique_ptr<Multiplier> make_drum_multiplier(MultiplierInfo info);        // param = k
std::unique_ptr<Multiplier> make_mitchell_multiplier(MultiplierInfo info);    // param = mantissa bits kept (0 = full)
std::unique_ptr<Multiplier> make_kulkarni_multiplier(MultiplierInfo info);    // param = 0 full, 1 hybrid (exact high quadrant)
std::unique_ptr<Multiplier> make_hybrid_trunc_multiplier(MultiplierInfo info);  // param = op_k*16 + res_k

}  // namespace redcane::approx
