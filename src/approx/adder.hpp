// Behavioral models of approximate adders.
//
// The paper's Fig. 5 study pairs an approximate multiplier (NGR) with an
// approximate adder (5LT) and shows that adder approximation contributes
// only ~1.9% energy saving because additions are ~3% of the energy budget.
// We model the accumulator datapath as 20-bit (8x8 products accumulated
// over up to 81-term MAC chains stay below 2^20 + slack).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace redcane::approx {

/// Static metadata of an adder component.
struct AdderInfo {
  std::string name;          ///< e.g. "axa_loa6".
  std::string family;        ///< "exact", "loa", "trunc", "seg".
  int param = 0;             ///< Family parameter (k); 0 when unused.
  std::string paper_analog;  ///< EvoApprox8B analog ("add8u_5LT" etc.), "" if none.
  double power_uw = 0.0;     ///< Power at 45 nm-style operating point [uW].
  double area_um2 = 0.0;     ///< Cell area [um^2].
};

/// Interface of a behavioral accumulator-width adder.
class Adder {
 public:
  virtual ~Adder() = default;

  /// Approximate sum of a + b over the 20-bit accumulator datapath.
  [[nodiscard]] virtual std::uint32_t add(std::uint32_t a, std::uint32_t b) const = 0;

  [[nodiscard]] const AdderInfo& info() const { return info_; }

  /// Signed arithmetic error vs the exact sum (Eq. 2 of the paper).
  [[nodiscard]] std::int32_t error(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::int32_t>(add(a, b)) - static_cast<std::int32_t>(a + b);
  }

 protected:
  explicit Adder(AdderInfo info) : info_(std::move(info)) {}

 private:
  AdderInfo info_;
};

std::unique_ptr<Adder> make_exact_adder(AdderInfo info);
/// Lower-part-OR adder: the k low result bits are the OR of the operands'
/// low bits; no carry propagates from the low part.
std::unique_ptr<Adder> make_loa_adder(AdderInfo info);  // param = k
/// Truncated adder: the k low bits of both operands are dropped before an
/// exact addition of the high parts.
std::unique_ptr<Adder> make_trunc_adder(AdderInfo info);  // param = k
/// Segmented (carry-cut) adder: carries do not cross segment boundaries of
/// width param.
std::unique_ptr<Adder> make_segmented_adder(AdderInfo info);  // param = segment width

/// All adder components, exact first. Returned references are owned by a
/// function-local static registry and live for the program duration.
const std::vector<const Adder*>& adder_library();

/// Lookup by name; aborts if absent (component names are compile-time data).
const Adder& adder_by_name(const std::string& name);

}  // namespace redcane::approx
