// Error profiling of approximate components (paper Sec. III-B, Fig. 6,
// Table IV).
//
// Computes the distribution of arithmetic errors ΔP' = P'(a,b) − P(a,b)
// over a representative input set I, for a single multiplication or for
// 9-/81-long MAC chains, then fits Gaussian moments and derives the
// range-relative noise parameters:
//
//     NM = std(Δ) / R(X)      NA = mean(Δ) / R(X)
//
// where R(X) is the dynamic range of the *exact* output population.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "approx/multiplier.hpp"
#include "tensor/random.hpp"
#include "tensor/stats.hpp"

namespace redcane::approx {

/// A source of 8-bit operand samples. Uniform sources model the paper's
/// "modeled" distribution; empirical sources replay quantized network
/// activations/weights ("real" distribution, Fig. 11 / Table IV).
class InputDistribution {
 public:
  /// Uniform over [0, 255].
  static InputDistribution uniform();

  /// Empirical: samples are drawn (with replacement) from `pool`.
  /// Aborts if pool is empty.
  static InputDistribution empirical(std::vector<std::uint8_t> pool);

  [[nodiscard]] std::uint8_t sample(Rng& rng) const;
  [[nodiscard]] const std::string& label() const { return label_; }

 private:
  InputDistribution(std::string label, std::vector<std::uint8_t> pool);

  std::string label_;
  std::vector<std::uint8_t> pool_;  ///< Empty => uniform.
};

/// Profiling configuration.
struct ProfileConfig {
  std::int64_t samples = 100000;  ///< |I| per scenario (paper uses 1e5).
  int chain_length = 1;           ///< 1 for single mult, 9 / 81 for MAC chains.
  std::uint64_t seed = 42;        ///< RNG seed of the operand stream.
};

/// Result of profiling one component under one input distribution.
struct ErrorProfile {
  std::string multiplier_name;     ///< Library name of the profiled component.
  std::string distribution_label;  ///< Input distribution ("uniform", "empirical").
  int chain_length = 1;            ///< MACs per sample (1 / 9 / 81).

  stats::Moments error_moments;   ///< Moments of Δ.
  stats::Moments exact_moments;   ///< Moments of the exact outputs (gives R(X)).
  double nm = 0.0;                ///< std(Δ) / R(exact outputs).
  double na = 0.0;                ///< mean(Δ) / R(exact outputs).
  double gaussian_distance = 0.0; ///< L1 distance of Δ histogram to Gaussian fit.
  bool gaussian_like = false;     ///< Paper: 31 of 35 components qualify.

  std::vector<double> error_samples;  ///< Raw Δ samples (for histograms).
};

/// Profiles `mul` under `dist`: runs `cfg.samples` independent chains of
/// `cfg.chain_length` MACs and aggregates errors.
[[nodiscard]] ErrorProfile profile_multiplier(const Multiplier& mul,
                                              const InputDistribution& dist,
                                              const ProfileConfig& cfg);

/// Threshold on gaussian_fit_distance below which a profile is declared
/// Gaussian-like. Chosen so that heavily biased / multi-modal components
/// (Mitchell-truncated, deep result truncation) fall outside, matching the
/// paper's 31-of-35 observation.
inline constexpr double kGaussianLikeThreshold = 0.35;

/// Builds a histogram of a profile's error samples with symmetric bounds.
[[nodiscard]] stats::Histogram error_histogram(const ErrorProfile& profile, std::size_t bins);

}  // namespace redcane::approx
