// The approximate-multiplier component library (EvoApprox8B stand-in).
//
// 35 behavioral components spanning power savings from 0% to ~93% and
// error magnitudes (NM) from 0 to a few percent of the output range,
// mirroring the spectrum of the paper's Table IV. Fifteen components are
// designated "paper analogs": their power/area columns carry the exact
// values the paper reports for the corresponding EvoApprox8B circuit, so
// energy benches reproduce the published savings figures.
#pragma once

#include <string>
#include <vector>

#include "approx/multiplier.hpp"

namespace redcane::approx {

/// All 35 multiplier components, exact reference first. References are
/// owned by a program-lifetime registry.
const std::vector<const Multiplier*>& multiplier_library();

/// Lookup by library name (e.g. "axm_drum5"). Aborts on unknown name.
const Multiplier& multiplier_by_name(const std::string& name);

/// Lookup by paper-analog name (e.g. "mul8u_NGR"). Aborts on unknown name.
const Multiplier& multiplier_by_analog(const std::string& analog);

/// The exact reference component ("axm_exact", analog mul8u_1JFF).
const Multiplier& exact_multiplier();

/// Components that carry a paper analog, in Table IV row order.
std::vector<const Multiplier*> paper_analog_multipliers();

}  // namespace redcane::approx
