#include "quant/lut_gemm.hpp"

#include "approx/library.hpp"
#include "quant/lut_cache.hpp"
#include "tensor/lut_kernel.hpp"
#include "tensor/workspace.hpp"

namespace redcane::quant {
namespace {

/// gemm::U32Accum adapter over a behavioral adder.
class AdderAccum final : public gemm::U32Accum {
 public:
  explicit AdderAccum(const approx::Adder& adder) : adder_(adder) {}
  [[nodiscard]] std::uint32_t add(std::uint32_t a, std::uint32_t b) const override {
    return adder_.add(a, b);
  }

 private:
  const approx::Adder& adder_;
};

}  // namespace

void build_product_lut(const approx::Multiplier* mul, std::uint32_t* lut) {
  const approx::Multiplier& m = mul == nullptr ? approx::exact_multiplier() : *mul;
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      lut[(a << 8) | b] =
          m.multiply(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
    }
  }
}

void lut_gemm_dequant(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::uint8_t* a_codes, const std::uint8_t* a_mask,
                      const QuantParams& pa, const std::uint8_t* b_codes,
                      const QuantParams& pb, const gemm::lk::LutTables& tables,
                      const approx::Adder* adder, const float* bias, float* out) {
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  std::uint64_t* acc_qw = wksp.alloc<std::uint64_t>(static_cast<std::size_t>(m * n));
  std::uint64_t* acc_qa = wksp.alloc<std::uint64_t>(static_cast<std::size_t>(m));
  std::int64_t* taps = wksp.alloc<std::int64_t>(static_cast<std::size_t>(m));

  // The exact path keeps 64-bit product sums (unbounded k); the adder path
  // runs the 32-bit accumulator datapath the chain models. Both feed the
  // identical dequantization, so an exact adder object reproduces the
  // exact-path floats bit-for-bit (8-bit code sums stay far below 2^32).
  std::uint64_t* qq64 = nullptr;
  std::uint32_t* qq32 = nullptr;
  if (adder == nullptr) {
    qq64 = wksp.alloc<std::uint64_t>(static_cast<std::size_t>(m * n));
    gemm::lk::lut_gemm_u8(m, n, k, a_codes, a_mask, b_codes, tables, qq64, acc_qw, acc_qa,
                          taps);
  } else {
    qq32 = wksp.alloc<std::uint32_t>(static_cast<std::size_t>(m * n));
    const AdderAccum accum(*adder);
    gemm::lk::lut_gemm_u8_chain(m, n, k, a_codes, a_mask, b_codes, tables, accum, qq32,
                                acc_qw, acc_qa, taps);
  }

  const double sa = pa.step();
  const double sb = pb.step();
#pragma omp parallel for schedule(static) if (m >= 64)
  for (std::int64_t r = 0; r < m; ++r) {
    const double row_base =
        pa.min * pb.min * static_cast<double>(taps[static_cast<std::size_t>(r)]) +
        pb.min * sa * static_cast<double>(acc_qa[static_cast<std::size_t>(r)]);
    for (std::int64_t j = 0; j < n; ++j) {
      const std::size_t idx = static_cast<std::size_t>(r * n + j);
      double v = row_base;
      v += pa.min * sb * static_cast<double>(acc_qw[idx]);
      v += sa * sb *
           (qq64 != nullptr ? static_cast<double>(qq64[idx]) : static_cast<double>(qq32[idx]));
      if (bias != nullptr) v += bias[j];
      out[idx] = static_cast<float>(v);
    }
  }
}

Tensor approx_matmul(const Tensor& a, const Tensor& b, const Tensor& bias,
                     const MacUnit& unit, int bits) {
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t k = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);
  const QuantParams pa = fit_params(a, bits);
  const QuantParams pb = fit_params(b, bits);

  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  std::uint8_t* qa = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(a.numel()));
  std::uint8_t* qb = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(b.numel()));
  quantize_u8(a, pa, qa);
  quantize_u8(b, pb, qb);
  const gemm::lk::LutTables& tables = lut_cache_get(unit.mul, bits);

  Tensor out(Shape{m, n});
  lut_gemm_dequant(m, n, k, qa, nullptr, pa, qb, pb, tables, unit.adder,
                   bias.empty() ? nullptr : bias.data().data(), out.data().data());
  return out;
}

}  // namespace redcane::quant
