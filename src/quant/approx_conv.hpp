// Quantized 2D convolution executed through a behavioral approximate
// multiplier — the "ground truth" path of the model-vs-real validation
// (DESIGN.md decision D1, paper Table IV).
//
// Inputs and weights are affine-quantized to 8 bits; every product of the
// convolution's dot products goes through the chosen Multiplier; the
// affine cross terms are accumulated exactly (they are additions in
// hardware). The result is dequantized back to float, so it can be
// compared elementwise against the float reference convolution.
#pragma once

#include "approx/multiplier.hpp"
#include "quant/lut_gemm.hpp"
#include "quant/quantizer.hpp"
#include "tensor/tensor.hpp"

namespace redcane::quant {

struct ApproxConvSpec {
  int stride = 1;
  int pad = 0;   ///< Symmetric zero padding.
  int bits = 8;  ///< Quantization wordlength for both operands.
};

/// x: [N, H, W, Cin] NHWC, w: [KH, KW, Cin, Cout], bias: [Cout] (may be
/// empty). Returns [N, Ho, Wo, Cout] in float. The whole batch runs as one
/// im2col + LUT-accumulate GEMM (quant/lut_gemm.hpp): one product-table
/// build per call, accumulation through `unit.adder` when set.
[[nodiscard]] Tensor approx_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                                   const ApproxConvSpec& spec, const MacUnit& unit);

/// Multiplier-only convenience (exact accumulation), the historical entry.
[[nodiscard]] Tensor approx_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                                   const ApproxConvSpec& spec,
                                   const approx::Multiplier& mul);

/// Float reference with identical loop structure (exact arithmetic, no
/// quantization), for error measurement.
[[nodiscard]] Tensor reference_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                                      const ApproxConvSpec& spec);

}  // namespace redcane::quant
