// Shared LUT-accumulate GEMM: the single behavioral-execution core behind
// every emulated MAC datapath in the codebase.
//
// A float GEMM (or a convolution lowered to one) is executed the way the
// approximate hardware would run it: both operands are affine-quantized to
// 8-bit codes, every code product goes through a behavioral Multiplier via
// a per-call 256x256 product table, the products accumulate either exactly
// or through a behavioral approximate Adder chain (gemm_u8_lut_chain), and
// the affine cross terms dequantize the integer sums back to float:
//
//   x = mx + qx*sx, w = mw + qw*sw
//   sum x*w = mx*mw*taps + mw*sx*sum(qx) + mx*sw*sum(qw) + sx*sw*sum(qx*qw)
//
// Only the code-by-code product term touches the approximate units; the
// cross terms are dequantization bookkeeping and stay exact. Callers:
// quant::approx_conv2d (single conv), the capsule vote layers (grouped
// GEMMs sharing one table per layer call), and nn::Dense — all staging
// (codes, table, accumulators) carved from the per-thread workspace arena.
#pragma once

#include "approx/adder.hpp"
#include "approx/multiplier.hpp"
#include "quant/quantizer.hpp"
#include "tensor/lut_kernel.hpp"
#include "tensor/tensor.hpp"

namespace redcane::quant {

/// One MAC datapath choice: the behavioral multiplier and (optionally) the
/// behavioral accumulator adder of an emulated GEMM. Null members mean
/// exact arithmetic for that unit.
struct MacUnit {
  const approx::Multiplier* mul = nullptr;  ///< Null = exact multiplier.
  const approx::Adder* adder = nullptr;     ///< Null = exact accumulation.
};

/// Materializes the 256x256 product table of `mul` (the exact multiplier
/// when null) into `lut`: one table build per layer call replaces one
/// virtual multiplier call per code pair. Hot paths should go through
/// quant::lut_cache_get (quant/lut_cache.hpp) instead, which memoizes the
/// build and prepares the SIMD dispatch metadata.
void build_product_lut(const approx::Multiplier* mul, std::uint32_t* lut);

/// The core: A codes [m, k] (optional validity mask, null = all taps
/// valid), B codes [k, n], a prepared product table (usually from the
/// process-wide cache), and the affine params both operands were quantized
/// with. Accumulates through `adder` when non-null (one chain in ascending
/// k per output element), exactly otherwise, then dequantizes into `out`
/// [m, n] (adding `bias` [n] when non-null). The integer core runs through
/// the dispatched LUT microkernels (tensor/lut_kernel.hpp); accumulator
/// scratch comes from the per-thread workspace arena; rows are processed
/// independently, so results are bit-identical across thread counts and
/// dispatch tiers.
void lut_gemm_dequant(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::uint8_t* a_codes, const std::uint8_t* a_mask,
                      const QuantParams& pa, const std::uint8_t* b_codes,
                      const QuantParams& pb, const gemm::lk::LutTables& tables,
                      const approx::Adder* adder, const float* bias, float* out);

/// Emulated matrix product: a [m, k] * b [k, n] (+ bias [n], may be empty)
/// through `unit` at `bits`-wide operand quantization. Quantization params
/// are fitted per call from each operand's empirical range.
[[nodiscard]] Tensor approx_matmul(const Tensor& a, const Tensor& b, const Tensor& bias,
                                   const MacUnit& unit, int bits = 8);

}  // namespace redcane::quant
