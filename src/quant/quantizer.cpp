#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/stats.hpp"

namespace redcane::quant {

QuantParams fit_params(const Tensor& t, int bits) {
  const stats::Moments m = stats::moments(t);
  QuantParams p;
  p.bits = bits;
  p.min = m.min;
  p.max = m.max;
  if (!(p.max > p.min)) p.max = p.min + 1.0;
  return p;
}

std::vector<std::uint32_t> quantize(const Tensor& t, const QuantParams& p) {
  std::vector<std::uint32_t> codes;
  codes.reserve(static_cast<std::size_t>(t.numel()));
  const double inv_step = 1.0 / p.step();
  for (float v : t.data()) {
    const double q = std::round((static_cast<double>(v) - p.min) * inv_step);
    const double clamped = std::clamp(q, 0.0, static_cast<double>(p.max_code()));
    codes.push_back(static_cast<std::uint32_t>(clamped));
  }
  return codes;
}

std::vector<std::uint8_t> quantize_u8(const Tensor& t, const QuantParams& p) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(t.numel()));
  quantize_u8(t, p, out.data());
  return out;
}

void quantize_u8(const Tensor& t, const QuantParams& p, std::uint8_t* out) {
  const double inv_step = 1.0 / p.step();
  const double top = static_cast<double>(std::min(p.max_code(), 255U));
  const auto td = t.data();
  for (std::size_t i = 0; i < td.size(); ++i) {
    const double q = std::round((static_cast<double>(td[i]) - p.min) * inv_step);
    out[i] = static_cast<std::uint8_t>(std::clamp(q, 0.0, top));
  }
}

Tensor dequantize(const std::vector<std::uint32_t>& codes, const Shape& shape,
                  const QuantParams& p) {
  Tensor t(shape);
  auto td = t.data();
  for (std::size_t i = 0; i < codes.size(); ++i) {
    td[i] = static_cast<float>(p.min + static_cast<double>(codes[i]) * p.step());
  }
  return t;
}

Tensor quantize_dequantize(const Tensor& t, int bits) {
  const QuantParams p = fit_params(t, bits);
  return dequantize(quantize(t, p), t.shape(), p);
}

}  // namespace redcane::quant
