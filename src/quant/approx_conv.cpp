#include "quant/approx_conv.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "nn/im2col.hpp"
#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"

namespace redcane::quant {
namespace {

nn::ConvDims dims_of(const Tensor& x, const Tensor& w, const ApproxConvSpec& spec) {
  return nn::make_conv_dims(x.shape(), w.shape(), spec.stride, spec.pad);
}

}  // namespace

Tensor approx_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                     const ApproxConvSpec& spec, const approx::Multiplier& mul) {
  const nn::ConvDims d = dims_of(x, w, spec);
  const QuantParams px = fit_params(x, spec.bits);
  const QuantParams pw = fit_params(w, spec.bits);

  // All staging — operand code pools, the 256x256 product table, the code
  // patch matrix and its validity mask, and the four affine accumulators —
  // comes from the per-thread arena; a layer sweep re-running this path
  // thousands of times stops exercising the allocator entirely.
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  std::uint8_t* qx = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(x.numel()));
  std::uint8_t* qw = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(w.numel()));
  quantize_u8(x, px, qx);
  quantize_u8(w, pw, qw);

  // One table build per layer call replaces one Multiplier virtual call
  // per code pair: 65536 products up front, then pure loads in the GEMM.
  std::uint32_t* lut = wksp.alloc<std::uint32_t>(256 * 256);
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      lut[(a << 8) | b] =
          mul.multiply(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
    }
  }

  const std::int64_t m = d.rows();
  const std::int64_t k = d.cols();
  std::uint8_t* cols = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(m * k));
  std::uint8_t* mask = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(m * k));
  nn::im2col_codes(qx, d, cols, mask);

  // Affine expansion: x = mx + qx*sx, w = mw + qw*sw.
  //   sum x*w = mx*mw*taps + mw*sx*Σqx + mx*sw*Σqw + sx*sw*Σ qx*qw
  // Only the code-by-code product term uses the approximate unit; padding
  // taps are masked out so they contribute true zero to all accumulators.
  std::uint64_t* acc_qq = wksp.alloc<std::uint64_t>(static_cast<std::size_t>(m * d.cout));
  std::uint64_t* acc_qw = wksp.alloc<std::uint64_t>(static_cast<std::size_t>(m * d.cout));
  std::uint64_t* acc_qx = wksp.alloc<std::uint64_t>(static_cast<std::size_t>(m));
  std::int64_t* taps = wksp.alloc<std::int64_t>(static_cast<std::size_t>(m));
  gemm::gemm_u8_lut(m, d.cout, k, cols, mask, qw, lut, acc_qq, acc_qw, acc_qx, taps);

  Tensor out(Shape{d.n, d.ho, d.wo, d.cout});
  auto od = out.data();
  const bool has_bias = !bias.empty();
  const double sx = px.step();
  const double sw = pw.step();
  for (std::int64_t r = 0; r < m; ++r) {
    const double row_base = px.min * pw.min * static_cast<double>(taps[static_cast<std::size_t>(r)]) +
                            pw.min * sx * static_cast<double>(acc_qx[static_cast<std::size_t>(r)]);
    for (std::int64_t co = 0; co < d.cout; ++co) {
      const std::size_t idx = static_cast<std::size_t>(r * d.cout + co);
      double v = row_base;
      v += px.min * sw * static_cast<double>(acc_qw[idx]);
      v += sx * sw * static_cast<double>(acc_qq[idx]);
      if (has_bias) v += bias.at(co);
      od[idx] = static_cast<float>(v);
    }
  }
  return out;
}

Tensor reference_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                        const ApproxConvSpec& spec) {
  const nn::ConvDims d = dims_of(x, w, spec);
  const std::int64_t m = d.rows();
  const std::int64_t k = d.cols();
  const Tensor cols = nn::im2col(x, d);
  Tensor out(Shape{d.n, d.ho, d.wo, d.cout});
  auto od = out.data();
  const auto cd = cols.data();
  const auto wd = w.data();
  const bool has_bias = !bias.empty();
  // Exact-arithmetic GEMM with double accumulators, kept separate from the
  // float core so quantization/approximation error is measured against a
  // higher-precision reference.
  std::vector<double> acc(static_cast<std::size_t>(d.cout));
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t co = 0; co < d.cout; ++co) {
      acc[static_cast<std::size_t>(co)] = has_bias ? static_cast<double>(bias.at(co)) : 0.0;
    }
    const float* crow = &cd[static_cast<std::size_t>(r * k)];
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double cv = crow[kk];
      const float* wrow = &wd[static_cast<std::size_t>(kk * d.cout)];
      for (std::int64_t co = 0; co < d.cout; ++co) {
        acc[static_cast<std::size_t>(co)] += cv * static_cast<double>(wrow[co]);
      }
    }
    float* orow = &od[static_cast<std::size_t>(r * d.cout)];
    for (std::int64_t co = 0; co < d.cout; ++co) {
      orow[co] = static_cast<float>(acc[static_cast<std::size_t>(co)]);
    }
  }
  return out;
}

}  // namespace redcane::quant
