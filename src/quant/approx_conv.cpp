#include "quant/approx_conv.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "nn/im2col.hpp"
#include "quant/lut_cache.hpp"
#include "tensor/workspace.hpp"

namespace redcane::quant {
namespace {

nn::ConvDims dims_of(const Tensor& x, const Tensor& w, const ApproxConvSpec& spec) {
  return nn::make_conv_dims(x.shape(), w.shape(), spec.stride, spec.pad);
}

}  // namespace

Tensor approx_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                     const ApproxConvSpec& spec, const MacUnit& unit) {
  const nn::ConvDims d = dims_of(x, w, spec);
  const QuantParams px = fit_params(x, spec.bits);
  const QuantParams pw = fit_params(w, spec.bits);

  // All staging — operand code pools and the code patch matrix with its
  // validity mask — comes from the per-thread arena; the product table is
  // served by the process-wide cache (one build per (multiplier, bits) for
  // the whole process). Padding taps are masked out so they contribute
  // true zero to every accumulator of the affine expansion the shared
  // LUT-GEMM core evaluates (quant/lut_gemm.hpp).
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  std::uint8_t* qx = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(x.numel()));
  std::uint8_t* qw = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(w.numel()));
  quantize_u8(x, px, qx);
  quantize_u8(w, pw, qw);
  const gemm::lk::LutTables& tables = lut_cache_get(unit.mul, spec.bits);

  const std::int64_t m = d.rows();
  const std::int64_t k = d.cols();
  std::uint8_t* cols = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(m * k));
  std::uint8_t* mask = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(m * k));
  nn::im2col_codes(qx, d, cols, mask);

  Tensor out(Shape{d.n, d.ho, d.wo, d.cout});
  lut_gemm_dequant(m, d.cout, k, cols, mask, px, qw, pw, tables, unit.adder,
                   bias.empty() ? nullptr : bias.data().data(), out.data().data());
  return out;
}

Tensor approx_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                     const ApproxConvSpec& spec, const approx::Multiplier& mul) {
  return approx_conv2d(x, w, bias, spec, MacUnit{&mul, nullptr});
}

Tensor reference_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                        const ApproxConvSpec& spec) {
  const nn::ConvDims d = dims_of(x, w, spec);
  const std::int64_t m = d.rows();
  const std::int64_t k = d.cols();
  const Tensor cols = nn::im2col(x, d);
  Tensor out(Shape{d.n, d.ho, d.wo, d.cout});
  auto od = out.data();
  const auto cd = cols.data();
  const auto wd = w.data();
  const bool has_bias = !bias.empty();
  // Exact-arithmetic GEMM with double accumulators, kept separate from the
  // float core so quantization/approximation error is measured against a
  // higher-precision reference.
  std::vector<double> acc(static_cast<std::size_t>(d.cout));
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t co = 0; co < d.cout; ++co) {
      acc[static_cast<std::size_t>(co)] = has_bias ? static_cast<double>(bias.at(co)) : 0.0;
    }
    const float* crow = &cd[static_cast<std::size_t>(r * k)];
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double cv = crow[kk];
      const float* wrow = &wd[static_cast<std::size_t>(kk * d.cout)];
      for (std::int64_t co = 0; co < d.cout; ++co) {
        acc[static_cast<std::size_t>(co)] += cv * static_cast<double>(wrow[co]);
      }
    }
    float* orow = &od[static_cast<std::size_t>(r * d.cout)];
    for (std::int64_t co = 0; co < d.cout; ++co) {
      orow[co] = static_cast<float>(acc[static_cast<std::size_t>(co)]);
    }
  }
  return out;
}

}  // namespace redcane::quant
