#include "quant/approx_conv.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane::quant {
namespace {

struct ConvDims {
  std::int64_t n, h, w, cin, kh, kw, cout, ho, wo;
};

ConvDims dims_of(const Tensor& x, const Tensor& w, const ApproxConvSpec& spec) {
  if (x.shape().rank() != 4 || w.shape().rank() != 4) {
    std::fprintf(stderr, "redcane::quant fatal: conv2d expects NHWC x and KKIO w\n");
    std::abort();
  }
  ConvDims d{};
  d.n = x.shape().dim(0);
  d.h = x.shape().dim(1);
  d.w = x.shape().dim(2);
  d.cin = x.shape().dim(3);
  d.kh = w.shape().dim(0);
  d.kw = w.shape().dim(1);
  d.cout = w.shape().dim(3);
  if (w.shape().dim(2) != d.cin) {
    std::fprintf(stderr, "redcane::quant fatal: conv2d channel mismatch\n");
    std::abort();
  }
  d.ho = (d.h + 2 * spec.pad - d.kh) / spec.stride + 1;
  d.wo = (d.w + 2 * spec.pad - d.kw) / spec.stride + 1;
  return d;
}

}  // namespace

Tensor approx_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                     const ApproxConvSpec& spec, const approx::Multiplier& mul) {
  const ConvDims d = dims_of(x, w, spec);
  const QuantParams px = fit_params(x, spec.bits);
  const QuantParams pw = fit_params(w, spec.bits);
  const std::vector<std::uint32_t> qx = quantize(x, px);
  const std::vector<std::uint32_t> qw = quantize(w, pw);

  Tensor out(Shape{d.n, d.ho, d.wo, d.cout});
  const bool has_bias = !bias.empty();

  for (std::int64_t n = 0; n < d.n; ++n) {
    for (std::int64_t oy = 0; oy < d.ho; ++oy) {
      for (std::int64_t ox = 0; ox < d.wo; ++ox) {
        for (std::int64_t co = 0; co < d.cout; ++co) {
          // Affine expansion: x = mx + qx*sx, w = mw + qw*sw.
          //   sum x*w = mx*mw*K + mw*sx*Σqx + mx*sw*Σqw + sx*sw*Σ qx*qw
          // Only the code-by-code product term uses the approximate unit.
          std::uint64_t acc_qq = 0;
          std::uint64_t acc_qx = 0;
          std::uint64_t acc_qw = 0;
          std::int64_t taps = 0;
          for (std::int64_t ky = 0; ky < d.kh; ++ky) {
            const std::int64_t iy = oy * spec.stride + ky - spec.pad;
            if (iy < 0 || iy >= d.h) continue;  // Zero-padded taps contribute x = 0,
            for (std::int64_t kx = 0; kx < d.kw; ++kx) {  // handled via the tap count.
              const std::int64_t ix = ox * spec.stride + kx - spec.pad;
              if (ix < 0 || ix >= d.w) continue;
              for (std::int64_t ci = 0; ci < d.cin; ++ci) {
                const auto xi = static_cast<std::size_t>(
                    ((n * d.h + iy) * d.w + ix) * d.cin + ci);
                const auto wi = static_cast<std::size_t>(
                    ((ky * d.kw + kx) * d.cin + ci) * d.cout + co);
                const auto a = static_cast<std::uint8_t>(qx[xi]);
                const auto b = static_cast<std::uint8_t>(qw[wi]);
                acc_qq += mul.multiply(a, b);
                acc_qx += a;
                acc_qw += b;
                ++taps;
              }
            }
          }
          // Padding taps carry x exactly 0, i.e. code qx0 = (0 - min)/step.
          // We instead model padded taps as contributing true zero to all
          // four accumulators, which is exact for the reference too.
          double v = px.min * pw.min * static_cast<double>(taps);
          v += pw.min * px.step() * static_cast<double>(acc_qx);
          v += px.min * pw.step() * static_cast<double>(acc_qw);
          v += px.step() * pw.step() * static_cast<double>(acc_qq);
          if (has_bias) v += bias.at(co);
          out(n, oy, ox, co) = static_cast<float>(v);
        }
      }
    }
  }
  return out;
}

Tensor reference_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                        const ApproxConvSpec& spec) {
  const ConvDims d = dims_of(x, w, spec);
  Tensor out(Shape{d.n, d.ho, d.wo, d.cout});
  const bool has_bias = !bias.empty();
  for (std::int64_t n = 0; n < d.n; ++n) {
    for (std::int64_t oy = 0; oy < d.ho; ++oy) {
      for (std::int64_t ox = 0; ox < d.wo; ++ox) {
        for (std::int64_t co = 0; co < d.cout; ++co) {
          double acc = has_bias ? bias.at(co) : 0.0;
          for (std::int64_t ky = 0; ky < d.kh; ++ky) {
            const std::int64_t iy = oy * spec.stride + ky - spec.pad;
            if (iy < 0 || iy >= d.h) continue;
            for (std::int64_t kx = 0; kx < d.kw; ++kx) {
              const std::int64_t ix = ox * spec.stride + kx - spec.pad;
              if (ix < 0 || ix >= d.w) continue;
              for (std::int64_t ci = 0; ci < d.cin; ++ci) {
                acc += static_cast<double>(x(n, iy, ix, ci)) * w(ky, kx, ci, co);
              }
            }
          }
          out(n, oy, ox, co) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

}  // namespace redcane::quant
