// Min-max linear quantization (paper Eq. 1).
//
// A floating-point value x in [min, max] maps to a b-bit code
//   Q(x) = round((x - min) / (max - min) * (2^b - 1))
// and back via the affine x ≈ min + q * step. The CapsNet itself runs in
// float; quantization is used (a) to derive representative 8-bit operand
// pools for error profiling under "real" input distributions and (b) to
// execute convolutions through behavioral approximate multipliers for the
// model-vs-real validation (DESIGN.md D1).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace redcane::quant {

/// Affine quantization parameters for one tensor.
struct QuantParams {
  double min = 0.0;
  double max = 1.0;
  int bits = 8;

  /// Largest code value (2^bits - 1).
  [[nodiscard]] std::uint32_t max_code() const { return (1U << bits) - 1U; }

  /// Real-valued width of one code step.
  [[nodiscard]] double step() const {
    return (max - min) / static_cast<double>(max_code());
  }
};

/// Derives params covering the tensor's empirical [min, max]. A degenerate
/// (constant) tensor gets a unit-width range so step() stays finite.
[[nodiscard]] QuantParams fit_params(const Tensor& t, int bits);

/// Quantizes every element to its code (clamped to [0, max_code]).
[[nodiscard]] std::vector<std::uint32_t> quantize(const Tensor& t, const QuantParams& p);

/// Convenience for 8-bit pools consumed by the error profiler.
[[nodiscard]] std::vector<std::uint8_t> quantize_u8(const Tensor& t, const QuantParams& p);

/// Allocation-free variant: writes t.numel() codes into `out` (hot paths
/// pass workspace-arena buffers; see quant/approx_conv.cpp).
void quantize_u8(const Tensor& t, const QuantParams& p, std::uint8_t* out);

/// Reconstructs a float tensor from codes.
[[nodiscard]] Tensor dequantize(const std::vector<std::uint32_t>& codes, const Shape& shape,
                                const QuantParams& p);

/// Round-trip helper: quantize then dequantize.
[[nodiscard]] Tensor quantize_dequantize(const Tensor& t, int bits);

}  // namespace redcane::quant
