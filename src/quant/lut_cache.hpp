// Process-wide cache of prepared LUT-GEMM product tables.
//
// Before this cache, every emulated layer call rebuilt its 256x256 product
// table — 65536 virtual Multiplier::multiply calls — even though a serving
// run or a sweep re-executes the same (multiplier, bits) site thousands of
// times. A prepared gemm::lk::LutTables additionally carries the per-row
// nibble decomposition proof, which makes the rebuild even less free. The
// cache memoizes LutTables::build by (multiplier identity, bits) behind a
// mutex; entries are heap-stable (unique_ptr), so the returned reference
// stays valid while readers use it concurrently.
//
// Identity & lifetime: the key couples the multiplier's address with its
// library name, so two distinct components can never alias. Library
// components live for the whole process and their entries are cached
// forever. A caller that emulates through a multiplier it owns (anything
// not in approx::multiplier_library()) must invalidate on destruction or
// the same address could be reused by a later allocation and hit a stale
// table — backend::EmulationPlan does this automatically for every
// non-library multiplier it referenced (plan-scoped invalidation).
#pragma once

#include <cstdint>

#include "approx/multiplier.hpp"
#include "tensor/lut_kernel.hpp"

namespace redcane::quant {

/// Cache counters since process start (or the last reset_stats).
struct LutCacheStats {
  std::uint64_t hits = 0;    ///< Lookups served from a cached table.
  std::uint64_t misses = 0;  ///< Lookups that built a new table.
  std::uint64_t entries = 0; ///< Tables currently resident.

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// The prepared product table of (`mul`, `bits`), building and caching it
/// on first use. Null `mul` means the exact multiplier (same normalization
/// as build_product_lut). Thread-safe; the reference is valid until the
/// entry is invalidated (library multipliers: never).
[[nodiscard]] const gemm::lk::LutTables& lut_cache_get(const approx::Multiplier* mul,
                                                       int bits = 8);

/// Drops every entry keyed by `mul` (all wordlengths). No-op when nothing
/// is cached for it. Callers owning short-lived multipliers must call this
/// before the multiplier dies.
void lut_cache_invalidate(const approx::Multiplier* mul);

/// Drops all entries (tests).
void lut_cache_clear();

[[nodiscard]] LutCacheStats lut_cache_stats();

/// Zeroes the hit/miss counters (entry count is live state, not a counter).
void lut_cache_reset_stats();

}  // namespace redcane::quant
