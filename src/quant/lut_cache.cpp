#include "quant/lut_cache.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "approx/library.hpp"
#include "obs/metrics.hpp"
#include "quant/lut_gemm.hpp"

namespace redcane::quant {
namespace {

// Address + library name + wordlength. The name disambiguates address
// reuse across invalidation epochs for caller-owned multipliers (a reused
// allocation with the same name and bits would still be wrong — that is
// what lut_cache_invalidate is for — but the common collision, a different
// component landing on a freed address, can never false-hit).
using Key = std::tuple<const approx::Multiplier*, std::string, int>;

struct Cache {
  std::mutex mu;
  std::map<Key, std::unique_ptr<gemm::lk::LutTables>> entries;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  // Process-wide mirrors (obs registry instruments are never reset, so the
  // local counters stay the test-facing, resettable view).
  obs::Counter& hits_mirror = obs::Registry::instance().counter("lut_cache_hits_total");
  obs::Counter& misses_mirror =
      obs::Registry::instance().counter("lut_cache_misses_total");
};

Cache& cache() {
  static Cache c;  // Leak-free program-lifetime singleton.
  return c;
}

}  // namespace

const gemm::lk::LutTables& lut_cache_get(const approx::Multiplier* mul, int bits) {
  const approx::Multiplier& m = mul == nullptr ? approx::exact_multiplier() : *mul;
  Key key{&m, m.info().name, bits};

  Cache& c = cache();
  {
    const std::lock_guard<std::mutex> lock(c.mu);
    const auto it = c.entries.find(key);
    if (it != c.entries.end()) {
      ++c.hits;
      c.hits_mirror.add();
      return *it->second;
    }
  }

  // Build outside the lock: table materialization (65536 virtual multiply
  // calls + the nibble proofs) is the expensive part, and concurrent
  // first-touch builders of the same key must not serialize behind it.
  // The loser of the insert race discards its build.
  std::vector<std::uint32_t> raw(256 * 256);
  build_product_lut(&m, raw.data());
  auto built = std::make_unique<gemm::lk::LutTables>(
      gemm::lk::LutTables::build(raw.data(), (1 << bits) - 1));

  const std::lock_guard<std::mutex> lock(c.mu);
  auto [it, inserted] = c.entries.try_emplace(std::move(key), std::move(built));
  if (inserted) {
    ++c.misses;
    c.misses_mirror.add();
  } else {
    ++c.hits;
    c.hits_mirror.add();
  }
  return *it->second;
}

void lut_cache_invalidate(const approx::Multiplier* mul) {
  if (mul == nullptr) return;
  Cache& c = cache();
  const std::lock_guard<std::mutex> lock(c.mu);
  for (auto it = c.entries.begin(); it != c.entries.end();) {
    if (std::get<0>(it->first) == mul) {
      it = c.entries.erase(it);
    } else {
      ++it;
    }
  }
}

void lut_cache_clear() {
  Cache& c = cache();
  const std::lock_guard<std::mutex> lock(c.mu);
  c.entries.clear();
}

LutCacheStats lut_cache_stats() {
  Cache& c = cache();
  const std::lock_guard<std::mutex> lock(c.mu);
  return LutCacheStats{c.hits, c.misses, static_cast<std::uint64_t>(c.entries.size())};
}

void lut_cache_reset_stats() {
  Cache& c = cache();
  const std::lock_guard<std::mutex> lock(c.mu);
  c.hits = 0;
  c.misses = 0;
}

}  // namespace redcane::quant
