#include "capsnet/capsnet_model.hpp"

namespace redcane::capsnet {

CapsNetConfig CapsNetConfig::paper() { return CapsNetConfig{}; }

CapsNetConfig CapsNetConfig::tiny() {
  CapsNetConfig c;
  c.conv1_channels = 8;
  c.primary_types = 4;
  c.primary_dim = 4;
  c.class_dim = 8;
  return c;
}

CapsNetModel::CapsNetModel(const CapsNetConfig& cfg, Rng& rng) : cfg_(cfg) {
  nn::Conv2DSpec c1;
  c1.in_channels = cfg.input_channels;
  c1.out_channels = cfg.conv1_channels;
  c1.kernel = cfg.conv1_kernel;
  c1.stride = 1;
  c1.pad = 0;
  conv1_ = std::make_unique<nn::Conv2D>("Conv1", c1, rng);
  relu1_ = std::make_unique<nn::ReLU>();

  PrimaryCapsSpec ps;
  ps.in_channels = cfg.conv1_channels;
  ps.types = cfg.primary_types;
  ps.dim = cfg.primary_dim;
  ps.kernel = cfg.primary_kernel;
  ps.stride = cfg.primary_stride;
  primary_ = std::make_unique<PrimaryCaps>("PrimaryCaps", ps, rng);

  const std::int64_t after_conv1 = cfg.input_hw - cfg.conv1_kernel + 1;
  const std::int64_t after_primary =
      (after_conv1 - cfg.primary_kernel) / cfg.primary_stride + 1;
  ClassCapsSpec cs;
  cs.in_caps = after_primary * after_primary * cfg.primary_types;
  cs.in_dim = cfg.primary_dim;
  cs.out_caps = cfg.num_classes;
  cs.out_dim = cfg.class_dim;
  cs.routing_iters = cfg.routing_iters;
  class_caps_ = std::make_unique<ClassCaps>("ClassCaps", cs, rng);
}

Tensor CapsNetModel::forward(const Tensor& x, bool train, PerturbationHook* hook) {
  // Identical op sequence to forward_range(0, num_stages()): the two paths
  // must stay bit-equal so checkpointed sweeps match full evaluations.
  Tensor t = conv1_->forward(x, train);
  emit(hook, "Conv1", OpKind::kMacOutput, t);
  t = relu1_->forward(t, train);
  emit(hook, "Conv1", OpKind::kActivation, t);
  t = primary_->forward_conv(t, train, hook);
  t = primary_->forward_squash(t, hook);
  t = class_caps_->forward_votes(t, train, hook);
  return class_caps_->forward_routing(t, train, hook);
}

Tensor CapsNetModel::forward_range(int first, int last, StageState& state,
                                   PerturbationHook* hook, bool record) {
  // Stages never mutate their input tensors, so the entry boundary (which
  // may be a shared prefix-cache checkpoint) is read in place, not copied.
  std::vector<Tensor> scratch;
  const std::vector<Tensor>* cur = &state.at[static_cast<std::size_t>(first)];
  for (int k = first; k < last; ++k) {
    std::vector<Tensor> next;
    switch (k) {
      case 0: {
        Tensor t = conv1_->forward((*cur)[0], /*train=*/false);
        emit(hook, "Conv1", OpKind::kMacOutput, t);
        next = {std::move(t)};
        break;
      }
      case 1: {
        Tensor t = relu1_->forward((*cur)[0], /*train=*/false);
        emit(hook, "Conv1", OpKind::kActivation, t);
        next = {std::move(t)};
        break;
      }
      case 2:
        next = {primary_->forward_conv((*cur)[0], /*train=*/false, hook)};
        break;
      case 3:
        next = {primary_->forward_squash((*cur)[0], hook)};
        break;
      case 4:
        next = {class_caps_->forward_votes((*cur)[0], /*train=*/false, hook)};
        break;
      default:
        next = {class_caps_->forward_routing((*cur)[0], /*train=*/false, hook)};
        break;
    }
    if (record) {
      state.at[static_cast<std::size_t>(k) + 1] = std::move(next);
      cur = &state.at[static_cast<std::size_t>(k) + 1];
    } else {
      scratch = std::move(next);
      cur = &scratch;
    }
  }
  return last == num_stages() ? (*cur)[0] : Tensor();
}

Tensor CapsNetModel::backward(const Tensor& grad_v) {
  Tensor g = class_caps_->backward(grad_v);
  g = primary_->backward(g);
  g = relu1_->backward(g);
  return conv1_->backward(g);
}

std::vector<nn::Param*> CapsNetModel::params() {
  std::vector<nn::Param*> out;
  for (nn::Param* p : conv1_->params()) out.push_back(p);
  for (nn::Param* p : primary_->params()) out.push_back(p);
  for (nn::Param* p : class_caps_->params()) out.push_back(p);
  return out;
}

std::vector<std::string> CapsNetModel::layer_names() const {
  return {"Conv1", "PrimaryCaps", "ClassCaps"};
}

}  // namespace redcane::capsnet
