// Mini-batch trainer and evaluator for CapsModels (the TensorFlow-GPU
// substitute of the paper's Fig. 8 experimental setup).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "capsnet/model.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace redcane::capsnet {

/// A labeled image batch: x is [N, H, W, C].
struct Batch {
  Tensor x;
  std::vector<std::int64_t> labels;
};

struct TrainConfig {
  int epochs = 5;
  std::int64_t batch_size = 32;
  double lr = 1e-3;
  nn::MarginLossSpec margin;
  std::uint64_t shuffle_seed = 7;
  /// Optional per-epoch callback (epoch, mean train loss, train accuracy).
  std::function<void(int, double, double)> on_epoch;
};

struct TrainStats {
  double final_loss = 0.0;
  double final_train_accuracy = 0.0;
  int epochs_run = 0;
};

/// Trains with Adam on margin loss over class-capsule lengths.
TrainStats train(CapsModel& model, const Tensor& images,
                 const std::vector<std::int64_t>& labels, const TrainConfig& cfg);

/// Test accuracy under optional perturbation; batches internally.
[[nodiscard]] double evaluate(CapsModel& model, const Tensor& images,
                              const std::vector<std::int64_t>& labels,
                              PerturbationHook* hook = nullptr,
                              std::int64_t batch_size = 64);

/// Correct predictions of class capsules `v` against `labels` — the one
/// scoring rule shared by evaluate() and the sweep engine.
[[nodiscard]] std::int64_t count_correct(const Tensor& v,
                                         std::span<const std::int64_t> labels);

/// Const-forward audit: runs two eval forwards of `probe` and verifies that
/// no parameter changed bitwise and both outputs are bit-identical — the
/// contract that makes shared-weight concurrent serving (CapsModel::infer)
/// and prefix-cache replay sound. Returns false on any violation.
[[nodiscard]] bool audit_const_forward(CapsModel& model, const Tensor& probe);

/// Slices rows [begin, end) of a [N, ...] tensor into a new tensor.
[[nodiscard]] Tensor slice_rows(const Tensor& t, std::int64_t begin, std::int64_t end);

/// Chains a loss gradient on class-capsule lengths back to the capsule
/// vectors: dL/dv = dL/d|v| * v/|v| per class capsule, with the length
/// clamped to 1e-9 to keep zero-length capsules finite. `lengths` must be
/// class_lengths(v) and `grad_lengths` the loss gradient on it ([N, classes]).
/// Shared by train() and the adversarial-attack generator so both run the
/// identical backward chain.
[[nodiscard]] Tensor lengths_grad_to_v(const Tensor& v, const Tensor& lengths,
                                       const Tensor& grad_lengths);

}  // namespace redcane::capsnet
