#include "capsnet/conv_caps3d.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane::capsnet {

ConvCaps3D::ConvCaps3D(std::string name, const ConvCaps3DSpec& spec, Rng& rng)
    : name_(std::move(name)),
      spec_(spec),
      w_(name_ + ".w", Tensor(Shape{spec.in_types, spec.kernel, spec.kernel, spec.in_dim,
                                    spec.out_types * spec.out_dim})) {
  nn::he_init(w_.value, spec.kernel * spec.kernel * spec.in_dim, rng);
}

Tensor ConvCaps3D::compute_votes(const Tensor& x, std::int64_t& ho, std::int64_t& wo) const {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t w = x.shape().dim(2);
  const std::int64_t ti = spec_.in_types;
  const std::int64_t di = spec_.in_dim;
  const std::int64_t to = spec_.out_types;
  const std::int64_t dd = spec_.out_dim;
  const std::int64_t k = spec_.kernel;
  ho = (h + 2 * spec_.pad - k) / spec_.stride + 1;
  wo = (w + 2 * spec_.pad - k) / spec_.stride + 1;

  Tensor votes(Shape{n * ho * wo, ti, to, dd});
  const auto xd = x.data();
  const auto wd = w_.value.data();
  auto vd = votes.data();
  const std::int64_t jd = to * dd;

#pragma omp parallel for collapse(2) if (n * ho > 2)
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        const std::size_t vpos =
            static_cast<std::size_t>(((ni * ho + oy) * wo + ox) * ti * jd);
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * spec_.stride + ky - spec_.pad;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * spec_.stride + kx - spec_.pad;
            if (ix < 0 || ix >= w) continue;
            const std::size_t xbase =
                static_cast<std::size_t>(((ni * h + iy) * w + ix) * ti * di);
            for (std::int64_t i = 0; i < ti; ++i) {
              const std::size_t wbase =
                  static_cast<std::size_t>((((i * k + ky) * k + kx) * di) * jd);
              const std::size_t vbase = vpos + static_cast<std::size_t>(i * jd);
              for (std::int64_t p = 0; p < di; ++p) {
                const float xv = xd[xbase + static_cast<std::size_t>(i * di + p)];
                if (xv == 0.0F) continue;
                const std::size_t wrow = wbase + static_cast<std::size_t>(p * jd);
                for (std::int64_t q = 0; q < jd; ++q) {
                  vd[vbase + static_cast<std::size_t>(q)] +=
                      xv * wd[wrow + static_cast<std::size_t>(q)];
                }
              }
            }
          }
        }
      }
    }
  }
  return votes;
}

Tensor ConvCaps3D::forward(const Tensor& x, bool train, PerturbationHook* hook) {
  if (x.shape().rank() != 5 || x.shape().dim(3) != spec_.in_types ||
      x.shape().dim(4) != spec_.in_dim) {
    std::fprintf(stderr, "redcane::capsnet fatal: ConvCaps3D input shape mismatch (%s)\n",
                 x.shape().to_string().c_str());
    std::abort();
  }
  std::int64_t ho = 0;
  std::int64_t wo = 0;
  Tensor votes = compute_votes(x, ho, wo);
  emit(hook, name_, OpKind::kMacOutput, votes);

  RoutingResult routed = dynamic_routing(votes, spec_.routing_iters, hook, name_);
  if (train) {
    cached_x_ = x;
    cached_votes_ = votes;
    cached_routing_ = routed;
    cached_ho_ = ho;
    cached_wo_ = wo;
  }
  const std::int64_t n = x.shape().dim(0);
  return routed.v.reshaped(Shape{n, ho, wo, spec_.out_types, spec_.out_dim});
}

Tensor ConvCaps3D::backward(const Tensor& grad_out) {
  const std::int64_t n = cached_x_.shape().dim(0);
  const std::int64_t h = cached_x_.shape().dim(1);
  const std::int64_t w = cached_x_.shape().dim(2);
  const std::int64_t ti = spec_.in_types;
  const std::int64_t di = spec_.in_dim;
  const std::int64_t to = spec_.out_types;
  const std::int64_t dd = spec_.out_dim;
  const std::int64_t k = spec_.kernel;
  const std::int64_t jd = to * dd;

  const Tensor grad_v =
      grad_out.reshaped(Shape{n * cached_ho_ * cached_wo_, to, dd});
  const Tensor grad_votes = routing_backward(cached_votes_, cached_routing_, grad_v);

  Tensor grad_x(cached_x_.shape());
  const auto xd = cached_x_.data();
  const auto gv = grad_votes.data();
  const auto wd = w_.value.data();
  auto gw = w_.grad.data();
  auto gx = grad_x.data();

  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < cached_ho_; ++oy) {
      for (std::int64_t ox = 0; ox < cached_wo_; ++ox) {
        const std::size_t vpos = static_cast<std::size_t>(
            ((ni * cached_ho_ + oy) * cached_wo_ + ox) * ti * jd);
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * spec_.stride + ky - spec_.pad;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * spec_.stride + kx - spec_.pad;
            if (ix < 0 || ix >= w) continue;
            const std::size_t xbase =
                static_cast<std::size_t>(((ni * h + iy) * w + ix) * ti * di);
            for (std::int64_t i = 0; i < ti; ++i) {
              const std::size_t wbase =
                  static_cast<std::size_t>((((i * k + ky) * k + kx) * di) * jd);
              const std::size_t vbase = vpos + static_cast<std::size_t>(i * jd);
              for (std::int64_t p = 0; p < di; ++p) {
                const std::size_t xi = xbase + static_cast<std::size_t>(i * di + p);
                const float xv = xd[xi];
                const std::size_t wrow = wbase + static_cast<std::size_t>(p * jd);
                float gxacc = 0.0F;
                for (std::int64_t q = 0; q < jd; ++q) {
                  const float g = gv[vbase + static_cast<std::size_t>(q)];
                  gw[wrow + static_cast<std::size_t>(q)] += xv * g;
                  gxacc += wd[wrow + static_cast<std::size_t>(q)] * g;
                }
                gx[xi] += gxacc;
              }
            }
          }
        }
      }
    }
  }
  return grad_x;
}

}  // namespace redcane::capsnet
