#include "capsnet/conv_caps3d.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "backend/emulation.hpp"
#include "nn/im2col.hpp"
#include "quant/lut_cache.hpp"
#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"

namespace redcane::capsnet {
namespace {

// The vote computation is a grouped convolution: each input capsule type i
// is convolved independently (cin = in_dim) with its own weight slice
// [K, K, in_dim, out_types*out_dim] to produce votes[:, i, :]. The helpers
// below gather/scatter the per-type planes so each group is a plain
// im2col + GEMM on the shared core.

/// Copies x[n, h, w, i, :] (rank-5, row-major) into a dense [n, h, w, di]
/// plane for type `i`.
void gather_type_plane(const float* x, std::int64_t spatial, std::int64_t ti, std::int64_t di,
                       std::int64_t i, float* plane) {
  const float* src = x + i * di;
  const std::int64_t xstride = ti * di;
  for (std::int64_t s = 0; s < spatial; ++s) {
    for (std::int64_t p = 0; p < di; ++p) plane[s * di + p] = src[s * xstride + p];
  }
}

/// gather_type_plane over u8 quantization codes (emulated path).
void gather_type_plane_codes(const std::uint8_t* x, std::int64_t spatial, std::int64_t ti,
                             std::int64_t di, std::int64_t i, std::uint8_t* plane) {
  const std::uint8_t* src = x + i * di;
  const std::int64_t xstride = ti * di;
  for (std::int64_t s = 0; s < spatial; ++s) {
    std::memcpy(&plane[s * di], &src[s * xstride], static_cast<std::size_t>(di));
  }
}

}  // namespace

ConvCaps3D::ConvCaps3D(std::string name, const ConvCaps3DSpec& spec, Rng& rng)
    : name_(std::move(name)),
      spec_(spec),
      w_(name_ + ".w", Tensor(Shape{spec.in_types, spec.kernel, spec.kernel, spec.in_dim,
                                    spec.out_types * spec.out_dim})) {
  nn::he_init(w_.value, spec.kernel * spec.kernel * spec.in_dim, rng);
}

Tensor ConvCaps3D::compute_votes(const Tensor& x, std::int64_t& ho, std::int64_t& wo) const {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t w = x.shape().dim(2);
  const std::int64_t ti = spec_.in_types;
  const std::int64_t di = spec_.in_dim;
  const std::int64_t jd = spec_.out_types * spec_.out_dim;

  const nn::ConvDims d = nn::make_conv_dims(Shape{n, h, w, di}, spec_.kernel, spec_.kernel,
                                            jd, spec_.stride, spec_.pad);
  ho = d.ho;
  wo = d.wo;
  const std::int64_t m = d.rows();
  const std::int64_t k = d.cols();

  Tensor votes(Shape{m, ti, spec_.out_types, spec_.out_dim});
  const auto xd = x.data();
  const auto wd = w_.value.data();
  auto vd = votes.data();

  // All per-type staging (gathered plane, patch matrix, vote slab) lives
  // in the per-thread arena and is reused across the ti group iterations.
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  float* plane = wksp.alloc<float>(static_cast<std::size_t>(n * h * w * di));
  float* cols = wksp.alloc<float>(static_cast<std::size_t>(m * k));
  float* votes_i = wksp.alloc<float>(static_cast<std::size_t>(m * jd));
  for (std::int64_t i = 0; i < ti; ++i) {
    gather_type_plane(xd.data(), n * h * w, ti, di, i, plane);
    nn::im2col(plane, d, cols);
    // votes_i [M, jd] = cols [M, K] * w_i [K, jd]; the weight slice for
    // type i is contiguous in [ti, K, K, di, jd] layout.
    gemm::gemm_f32(false, false, m, jd, k, cols, &wd[static_cast<std::size_t>(i * k * jd)],
                   0.0F, votes_i);
    for (std::int64_t r = 0; r < m; ++r) {
      float* dst = &vd[static_cast<std::size_t>((r * ti + i) * jd)];
      const float* src = &votes_i[static_cast<std::size_t>(r * jd)];
      for (std::int64_t q = 0; q < jd; ++q) dst[q] = src[q];
    }
  }
  return votes;
}

Tensor ConvCaps3D::compute_votes_emulated(const Tensor& x, std::int64_t& ho,
                                          std::int64_t& wo,
                                          const backend::SiteUnit& unit) const {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t w = x.shape().dim(2);
  const std::int64_t ti = spec_.in_types;
  const std::int64_t di = spec_.in_dim;
  const std::int64_t jd = spec_.out_types * spec_.out_dim;

  const nn::ConvDims d = nn::make_conv_dims(Shape{n, h, w, di}, spec_.kernel, spec_.kernel,
                                            jd, spec_.stride, spec_.pad);
  ho = d.ho;
  wo = d.wo;
  const std::int64_t m = d.rows();
  const std::int64_t k = d.cols();

  // R(X) is the whole input tensor's range (the paper's per-tensor
  // definition), so all ti groups quantize against one parameter pair and
  // share one product table per layer call.
  const quant::QuantParams px = quant::fit_params(x, unit.bits);
  const quant::QuantParams pw = quant::fit_params(w_.value, unit.bits);

  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  std::uint8_t* qx = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(x.numel()));
  std::uint8_t* qw = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(w_.value.numel()));
  quant::quantize_u8(x, px, qx);
  quant::quantize_u8(w_.value, pw, qw);
  const gemm::lk::LutTables& tables = quant::lut_cache_get(unit.unit.mul, unit.bits);

  std::uint8_t* plane = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(n * h * w * di));
  std::uint8_t* cols = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(m * k));
  std::uint8_t* mask = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(m * k));
  float* votes_i = wksp.alloc<float>(static_cast<std::size_t>(m * jd));
  Tensor votes(Shape{m, ti, spec_.out_types, spec_.out_dim});
  auto vd = votes.data();
  for (std::int64_t i = 0; i < ti; ++i) {
    gather_type_plane_codes(qx, n * h * w, ti, di, i, plane);
    nn::im2col_codes(plane, d, cols, mask);
    quant::lut_gemm_dequant(m, jd, k, cols, mask, px,
                            &qw[static_cast<std::size_t>(i * k * jd)], pw, tables,
                            unit.unit.adder, nullptr, votes_i);
    for (std::int64_t r = 0; r < m; ++r) {
      std::memcpy(&vd[static_cast<std::size_t>((r * ti + i) * jd)],
                  &votes_i[static_cast<std::size_t>(r * jd)],
                  static_cast<std::size_t>(jd) * sizeof(float));
    }
  }
  return votes;
}

Tensor ConvCaps3D::forward(const Tensor& x, bool train, PerturbationHook* hook) {
  if (x.shape().rank() != 5 || x.shape().dim(3) != spec_.in_types ||
      x.shape().dim(4) != spec_.in_dim) {
    std::fprintf(stderr, "redcane::capsnet fatal: ConvCaps3D input shape mismatch (%s)\n",
                 x.shape().to_string().c_str());
    std::abort();
  }
  std::int64_t ho = 0;
  std::int64_t wo = 0;
  const backend::SiteUnit* emu = train ? nullptr : backend::active_mac_unit(name_);
  Tensor votes = emu != nullptr ? compute_votes_emulated(x, ho, wo, *emu)
                                : compute_votes(x, ho, wo);
  emit(hook, name_, OpKind::kMacOutput, votes);

  RoutingResult routed = dynamic_routing(votes, spec_.routing_iters, hook, name_);
  if (train) {
    cached_x_ = x;
    cached_votes_ = votes;
    cached_routing_ = routed;
    cached_ho_ = ho;
    cached_wo_ = wo;
  }
  const std::int64_t n = x.shape().dim(0);
  return routed.v.reshaped(Shape{n, ho, wo, spec_.out_types, spec_.out_dim});
}

Tensor ConvCaps3D::backward(const Tensor& grad_out) {
  const std::int64_t n = cached_x_.shape().dim(0);
  const std::int64_t h = cached_x_.shape().dim(1);
  const std::int64_t w = cached_x_.shape().dim(2);
  const std::int64_t ti = spec_.in_types;
  const std::int64_t di = spec_.in_dim;
  const std::int64_t to = spec_.out_types;
  const std::int64_t dd = spec_.out_dim;
  const std::int64_t jd = to * dd;

  const Tensor grad_v =
      grad_out.reshaped(Shape{n * cached_ho_ * cached_wo_, to, dd});
  const Tensor grad_votes = routing_backward(cached_votes_, cached_routing_, grad_v);

  const nn::ConvDims d = nn::make_conv_dims(Shape{n, h, w, di}, spec_.kernel, spec_.kernel,
                                            jd, spec_.stride, spec_.pad);
  const std::int64_t m = d.rows();
  const std::int64_t k = d.cols();

  Tensor grad_x(cached_x_.shape());
  const auto xd = cached_x_.data();
  const auto gv = grad_votes.data();
  const auto wd = w_.value.data();
  auto gw = w_.grad.data();
  auto gx = grad_x.data();

  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  const std::size_t plane_elems = static_cast<std::size_t>(n * h * w * di);
  float* plane = wksp.alloc<float>(plane_elems);
  float* cols = wksp.alloc<float>(static_cast<std::size_t>(m * k));
  float* gv_i = wksp.alloc<float>(static_cast<std::size_t>(m * jd));
  float* grad_cols = wksp.alloc<float>(static_cast<std::size_t>(m * k));
  float* grad_plane = wksp.alloc<float>(plane_elems);
  for (std::int64_t i = 0; i < ti; ++i) {
    for (std::int64_t r = 0; r < m; ++r) {
      const float* src = &gv[static_cast<std::size_t>((r * ti + i) * jd)];
      float* dst = &gv_i[static_cast<std::size_t>(r * jd)];
      for (std::int64_t q = 0; q < jd; ++q) dst[q] = src[q];
    }
    // grad_w_i [K, jd] += cols_i^T [K, M] * grad_votes_i [M, jd].
    gather_type_plane(xd.data(), n * h * w, ti, di, i, plane);
    nn::im2col(plane, d, cols);
    gemm::gemm_f32(true, false, k, jd, m, cols, gv_i, 1.0F,
                   &gw[static_cast<std::size_t>(i * k * jd)]);
    // grad_cols_i [M, K] = grad_votes_i [M, jd] * w_i^T [jd, K].
    gemm::gemm_f32(false, true, m, k, jd, gv_i,
                   &wd[static_cast<std::size_t>(i * k * jd)], 0.0F, grad_cols);
    std::fill(grad_plane, grad_plane + plane_elems, 0.0F);
    nn::col2im(grad_cols, d, grad_plane);
    const std::int64_t xstride = ti * di;
    float* gdst = gx.data() + i * di;
    for (std::int64_t s = 0; s < n * h * w; ++s) {
      for (std::int64_t p = 0; p < di; ++p) gdst[s * xstride + p] = grad_plane[s * di + p];
    }
  }
  return grad_x;
}

}  // namespace redcane::capsnet
