// PrimaryCaps layer (Sabour et al. [25]): a convolution whose output
// channels are regrouped into `types` capsules of `dim` elements each,
// followed by squash. The conv output is a MacOutput injection site; the
// squashed capsules are an Activation site.
#pragma once

#include <memory>

#include "capsnet/inject.hpp"
#include "nn/conv2d.hpp"

namespace redcane::capsnet {

struct PrimaryCapsSpec {
  std::int64_t in_channels = 0;
  std::int64_t types = 8;   ///< Number of capsule types.
  std::int64_t dim = 8;     ///< Capsule dimensionality.
  std::int64_t kernel = 9;
  std::int64_t stride = 2;
  std::int64_t pad = 0;
};

/// Output: [N, Ho*Wo*types, dim] squashed capsules.
class PrimaryCaps final : public nn::Layer {
 public:
  PrimaryCaps(std::string name, const PrimaryCapsSpec& spec, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override { return forward(x, train, nullptr); }
  Tensor forward(const Tensor& x, bool train, PerturbationHook* hook);
  Tensor backward(const Tensor& grad_out) override;

  /// Stage split used by the checkpointed forward: conv + regroup (emits
  /// the MacOutput site) ...
  Tensor forward_conv(const Tensor& x, bool train, PerturbationHook* hook);
  /// ... then squash (emits the Activation site). forward() == the
  /// composition of the two.
  Tensor forward_squash(const Tensor& grouped, PerturbationHook* hook) const;
  std::vector<nn::Param*> params() override { return conv_->params(); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] nn::Conv2D& conv() { return *conv_; }

 private:
  std::string name_;
  PrimaryCapsSpec spec_;
  std::unique_ptr<nn::Conv2D> conv_;
  Tensor cached_pre_squash_;  ///< [N, caps, dim] pre-squash, for backward.
  Shape conv_out_shape_;      ///< NHWC shape of the conv output.
};

}  // namespace redcane::capsnet
