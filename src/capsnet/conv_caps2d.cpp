#include "capsnet/conv_caps2d.hpp"

#include <cstdio>
#include <cstdlib>

#include "capsnet/squash.hpp"

namespace redcane::capsnet {

ConvCaps2D::ConvCaps2D(std::string name, const ConvCaps2DSpec& spec, Rng& rng)
    : name_(std::move(name)), spec_(spec) {
  nn::Conv2DSpec cs;
  cs.in_channels = spec.in_types * spec.in_dim;
  cs.out_channels = spec.out_types * spec.out_dim;
  cs.kernel = spec.kernel;
  cs.stride = spec.stride;
  cs.pad = spec.pad;
  conv_ = std::make_unique<nn::Conv2D>(name_, cs, rng);
  if (spec.batch_norm) {
    bn_ = std::make_unique<nn::BatchNorm>(name_ + ".bn", cs.out_channels);
  }
}

Tensor ConvCaps2D::forward_pre_squash(const Tensor& x, bool train, PerturbationHook* hook) {
  if (x.shape().rank() != 5 || x.shape().dim(3) != spec_.in_types ||
      x.shape().dim(4) != spec_.in_dim) {
    std::fprintf(stderr, "redcane::capsnet fatal: ConvCaps2D input shape mismatch (%s)\n",
                 x.shape().to_string().c_str());
    std::abort();
  }
  if (train) in_shape_ = x.shape();
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t w = x.shape().dim(2);
  const Tensor flat = x.reshaped(Shape{n, h, w, spec_.in_types * spec_.in_dim});

  Tensor pre = conv_->forward(flat, train);
  if (bn_) pre = bn_->forward(pre, train);
  emit(hook, name_, OpKind::kMacOutput, pre);
  if (train) conv_out_shape_ = pre.shape();

  return pre.reshaped(Shape{n, pre.shape().dim(1), pre.shape().dim(2), spec_.out_types,
                            spec_.out_dim});
}

Tensor ConvCaps2D::forward(const Tensor& x, bool train, PerturbationHook* hook) {
  Tensor pre = forward_pre_squash(x, train, hook);
  if (train) cached_pre_squash_ = pre;
  Tensor v = squash(pre);
  emit(hook, name_, OpKind::kActivation, v);
  return v;
}

Tensor ConvCaps2D::backward_pre_squash(const Tensor& grad_pre) {
  Tensor g = grad_pre.reshaped(conv_out_shape_);
  if (bn_) g = bn_->backward(g);
  const Tensor grad_flat = conv_->backward(g);
  return grad_flat.reshaped(in_shape_);
}

std::vector<nn::Param*> ConvCaps2D::params() {
  std::vector<nn::Param*> out = conv_->params();
  if (bn_) {
    for (nn::Param* p : bn_->params()) out.push_back(p);
  }
  return out;
}

Tensor ConvCaps2D::backward(const Tensor& grad_out) {
  const Tensor grad_pre = squash_backward(cached_pre_squash_, grad_out);
  return backward_pre_squash(grad_pre);
}

}  // namespace redcane::capsnet
