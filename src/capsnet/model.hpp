// Common interface of the two reproduced architectures (CapsNet [25] and
// DeepCaps [24]). The ReD-CaNe methodology (src/core) drives models only
// through this interface, so it is architecture-agnostic exactly as the
// paper's flow is.
#pragma once

#include <string>
#include <vector>

#include "capsnet/inject.hpp"
#include "nn/layer.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace redcane::capsnet {

/// Stage-boundary activations of a stage-segmented forward pass.
/// `at[k]` holds the tensors entering stage k (`at[0]` = {input batch});
/// `at[num_stages()]` holds the final class capsules. A recording run over
/// a clean batch turns this into a reusable prefix cache: noise injected
/// at a site of stage k cannot change `at[0..k]`, so a sweep replays only
/// stages [k, num_stages()) per noisy point.
struct StageState {
  std::vector<std::vector<Tensor>> at;
};

class CapsModel {
 public:
  virtual ~CapsModel() = default;

  /// Runs inference (train=false) or a cached training forward pass.
  /// Returns class capsules [N, num_classes, dim]; their L2 lengths are
  /// the classification scores. `hook` may be null.
  virtual Tensor forward(const Tensor& x, bool train, PerturbationHook* hook) = 0;

  /// Shared-weight inference entry: forward(x, train=false, hook). Safe to
  /// call concurrently from several threads on one model instance — the
  /// sweep engine and the serving worker pool both rely on eval forwards
  /// writing no model state (pinned by capsnet::audit_const_forward) — as
  /// long as no thread trains or mutates params meanwhile.
  [[nodiscard]] Tensor infer(const Tensor& x, PerturbationHook* hook = nullptr) {
    return forward(x, /*train=*/false, hook);
  }

  /// Number of stages of the segmented inference forward. Stage boundaries
  /// sit immediately after hook-site emits, so a perturbation at a site
  /// affects only the site's own stage and later ones. The base default is
  /// a single stage (correct for any model, no prefix-cache benefit).
  [[nodiscard]] virtual int num_stages() const { return 1; }

  /// Runs stages [first, last) of an inference-only forward pass
  /// (train=false semantics; safe to call concurrently from several
  /// threads on one model). `state.at` must be sized num_stages() + 1 with
  /// `at[first]` populated (`at[0]` = {x}); when `record` is true every
  /// executed stage k also stores its boundary tensors into `at[k + 1]`.
  /// Returns the class capsules when last == num_stages(), otherwise an
  /// empty tensor. Running [0, num_stages()) is bit-identical to
  /// forward(x, false, hook).
  virtual Tensor forward_range(int first, int last, StageState& state,
                               PerturbationHook* hook, bool record);

  /// Backward from dL/d(class capsules); must follow forward(train=true).
  virtual Tensor backward(const Tensor& grad_v) = 0;

  virtual std::vector<nn::Param*> params() = 0;

  /// Injectable layer names, in network order (the paper's Fig. 10 axis).
  [[nodiscard]] virtual std::vector<std::string> layer_names() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Expected input shape [H, W, C] (without batch).
  [[nodiscard]] virtual Shape input_shape() const = 0;

  [[nodiscard]] virtual std::int64_t num_classes() const = 0;

  /// Classification scores: capsule lengths [N, num_classes].
  [[nodiscard]] static Tensor class_lengths(const Tensor& v) {
    return ops::l2_norm_last_axis(v);
  }
};

/// Base fallback: the whole forward is one stage.
inline Tensor CapsModel::forward_range(int first, int last, StageState& state,
                                       PerturbationHook* hook, bool record) {
  if (first != 0 || last != 1) return Tensor();
  Tensor v = forward(state.at[0][0], /*train=*/false, hook);
  if (record) state.at[1] = {v};
  return v;
}

}  // namespace redcane::capsnet
