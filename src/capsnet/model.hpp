// Common interface of the two reproduced architectures (CapsNet [25] and
// DeepCaps [24]). The ReD-CaNe methodology (src/core) drives models only
// through this interface, so it is architecture-agnostic exactly as the
// paper's flow is.
#pragma once

#include <string>
#include <vector>

#include "capsnet/inject.hpp"
#include "nn/layer.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace redcane::capsnet {

class CapsModel {
 public:
  virtual ~CapsModel() = default;

  /// Runs inference (train=false) or a cached training forward pass.
  /// Returns class capsules [N, num_classes, dim]; their L2 lengths are
  /// the classification scores. `hook` may be null.
  virtual Tensor forward(const Tensor& x, bool train, PerturbationHook* hook) = 0;

  /// Backward from dL/d(class capsules); must follow forward(train=true).
  virtual Tensor backward(const Tensor& grad_v) = 0;

  virtual std::vector<nn::Param*> params() = 0;

  /// Injectable layer names, in network order (the paper's Fig. 10 axis).
  [[nodiscard]] virtual std::vector<std::string> layer_names() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Expected input shape [H, W, C] (without batch).
  [[nodiscard]] virtual Shape input_shape() const = 0;

  [[nodiscard]] virtual std::int64_t num_classes() const = 0;

  /// Classification scores: capsule lengths [N, num_classes].
  [[nodiscard]] static Tensor class_lengths(const Tensor& v) {
    return ops::l2_norm_last_axis(v);
  }
};

}  // namespace redcane::capsnet
