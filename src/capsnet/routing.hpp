// Dynamic routing-by-agreement (Sabour et al. [25]), the core iterative
// algorithm of capsule networks and the focal point of the paper's
// resilience study (Fig. 3).
//
// Given votes u_hat[m, i, j, d] (m folds batch and, for convolutional
// routing, spatial position; i = input capsule, j = output capsule,
// d = output capsule dimension), the routing iterates:
//
//   b = 0
//   for it in 1..r:
//     c = softmax_j(b)                         -> Softmax site
//     s[m,j,:]  = sum_i c[m,i,j] * u_hat[m,i,j,:]   -> MacOutput site
//     v = squash(s)                            -> Activation site
//     if it < r: b[m,i,j] += <u_hat[m,i,j,:], v[m,j,:]>  -> LogitsUpdate site
//
// Each site reports through the PerturbationHook so noise can be injected
// exactly where the paper's Fig. 3 places its X/+/SQ/SM boxes.
#pragma once

#include <string>

#include "capsnet/inject.hpp"
#include "tensor/tensor.hpp"

namespace redcane::capsnet {

struct RoutingResult {
  Tensor v;  ///< [m, J, D] routed output capsules.
  Tensor s;  ///< [m, J, D] final pre-squash weighted sums.
  Tensor c;  ///< [m, I, J] final coupling coefficients.
};

/// Runs `iterations` rounds of routing on votes [m, I, J, D].
/// `layer` labels the hook callbacks (e.g. "ClassCaps").
[[nodiscard]] RoutingResult dynamic_routing(const Tensor& u_hat, int iterations,
                                            PerturbationHook* hook, const std::string& layer);

/// Backward through routing with the coupling coefficients treated as
/// constants (straight-through routing, the standard training-time
/// approximation): given final c and pre-squash s from the forward pass
/// and dL/dv, returns dL/du_hat.
[[nodiscard]] Tensor routing_backward(const Tensor& u_hat, const RoutingResult& fwd,
                                      const Tensor& grad_v);

}  // namespace redcane::capsnet
