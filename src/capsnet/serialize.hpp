// Flat binary (de)serialization of model parameters.
//
// Format: magic "RDCN", u64 param count, then per param a u64 element
// count followed by raw little-endian float32 data. Shapes/names are not
// stored — loading validates element counts against the constructed
// model, which is rebuilt from its config (the configs are code).
// Benchmarks use this to cache trained models across binaries.
#pragma once

#include <string>

#include "capsnet/model.hpp"

namespace redcane::capsnet {

/// Writes all parameters of `model`. Returns false on I/O failure.
bool save_params(CapsModel& model, const std::string& path);

/// Loads parameters into `model`. Returns false when the file is missing,
/// malformed, or its layout does not match the model.
bool load_params(CapsModel& model, const std::string& path);

}  // namespace redcane::capsnet
