// Flat binary (de)serialization of model parameters.
//
// Format v2: magic "RDC2", u64 param count, then per param a u64 element
// count followed by raw little-endian float32 data, then a trailing u32
// CRC-32 (util::crc32) over every byte after the magic. Shapes/names are
// not stored — loading validates element counts against the constructed
// model, which is rebuilt from its config (the configs are code) — and
// the checksum rejects bit-flipped files that size checks alone would
// load silently. v1 "RDCN" files (no checksum) are rejected by magic.
// Benchmarks use this to cache trained models across binaries.
#pragma once

#include <string>

#include "capsnet/model.hpp"

namespace redcane::capsnet {

/// Writes all parameters of `model`. Returns false on I/O failure.
bool save_params(CapsModel& model, const std::string& path);

/// Loads parameters into `model`. Returns false when the file is missing,
/// malformed, checksum-corrupt, or its layout does not match the model.
/// On false the model's parameters are unspecified (partial data may have
/// been read before the failure was detected) — discard the model, as
/// every caller (bench cache, serve registry) already does.
bool load_params(CapsModel& model, const std::string& path);

}  // namespace redcane::capsnet
