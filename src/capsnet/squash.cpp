#include "capsnet/squash.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace redcane::capsnet {
namespace {

void check_rank(const Tensor& t) {
  if (t.shape().rank() < 1) {
    std::fprintf(stderr, "redcane::capsnet fatal: squash requires rank >= 1\n");
    std::abort();
  }
}

}  // namespace

Tensor squash(const Tensor& s, double eps) {
  check_rank(s);
  const std::int64_t d = s.shape().dim(-1);
  const std::int64_t rows = s.numel() / d;
  Tensor v = s;
  auto vd = v.data();
  // Row-parallel outer loop, SIMD lanes across the capsule dimension. The
  // norm reduction order is fixed at compile time, so results stay
  // independent of the thread count.
#pragma omp parallel for schedule(static) if (rows >= 64)
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = &vd[static_cast<std::size_t>(r * d)];
    double norm2 = 0.0;
#pragma omp simd reduction(+ : norm2)
    for (std::int64_t k = 0; k < d; ++k) {
      const double x = row[k];
      norm2 += x * x;
    }
    const double norm = std::sqrt(norm2) + eps;
    // v = s * |s| / (1 + |s|^2), written as a single scale factor.
    const double scale = norm / (1.0 + norm2);
#pragma omp simd
    for (std::int64_t k = 0; k < d; ++k) {
      row[k] = static_cast<float>(row[k] * scale);
    }
  }
  return v;
}

Tensor squash_backward(const Tensor& s, const Tensor& grad_v, double eps) {
  check_rank(s);
  if (s.shape() != grad_v.shape()) {
    std::fprintf(stderr, "redcane::capsnet fatal: squash_backward shape mismatch\n");
    std::abort();
  }
  const std::int64_t d = s.shape().dim(-1);
  const std::int64_t rows = s.numel() / d;
  Tensor grad_s(s.shape());
  const auto sd = s.data();
  const auto gv = grad_v.data();
  auto gs = grad_s.data();
#pragma omp parallel for schedule(static) if (rows >= 64)
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r * d);
    const float* srow = &sd[base];
    const float* grow = &gv[base];
    double norm2 = 0.0;
    double dot = 0.0;  // s . grad_v
#pragma omp simd reduction(+ : norm2, dot)
    for (std::int64_t k = 0; k < d; ++k) {
      const double sv = srow[k];
      norm2 += sv * sv;
      dot += sv * grow[k];
    }
    const double rn = std::sqrt(norm2) + eps;
    const double denom = 1.0 + norm2;
    // v = c(r) s with c = r / (1 + r^2); dv/ds = c I + (c'/r) s s^T,
    // c' = (1 - r^2) / (1 + r^2)^2.
    const double c = rn / denom;
    const double cprime = (1.0 - norm2) / (denom * denom);
    const double radial = cprime / rn * dot;
    float* out = &gs[base];
#pragma omp simd
    for (std::int64_t k = 0; k < d; ++k) {
      out[k] = static_cast<float>(c * grow[k] + radial * srow[k]);
    }
  }
  return grad_s;
}

}  // namespace redcane::capsnet
