#include "capsnet/squash.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace redcane::capsnet {
namespace {

void check_rank(const Tensor& t) {
  if (t.shape().rank() < 1) {
    std::fprintf(stderr, "redcane::capsnet fatal: squash requires rank >= 1\n");
    std::abort();
  }
}

}  // namespace

Tensor squash(const Tensor& s, double eps) {
  check_rank(s);
  const std::int64_t d = s.shape().dim(-1);
  const std::int64_t rows = s.numel() / d;
  Tensor v = s;
  auto vd = v.data();
  // Row-independent: one thread owns each capsule row, so the result does
  // not depend on the thread count.
#pragma omp parallel for schedule(static) if (rows >= 64)
  for (std::int64_t r = 0; r < rows; ++r) {
    double norm2 = 0.0;
    for (std::int64_t k = 0; k < d; ++k) {
      const double x = vd[static_cast<std::size_t>(r * d + k)];
      norm2 += x * x;
    }
    const double norm = std::sqrt(norm2) + eps;
    // v = s * |s| / (1 + |s|^2), written as a single scale factor.
    const double scale = norm / (1.0 + norm2);
    for (std::int64_t k = 0; k < d; ++k) {
      vd[static_cast<std::size_t>(r * d + k)] = static_cast<float>(
          vd[static_cast<std::size_t>(r * d + k)] * scale);
    }
  }
  return v;
}

Tensor squash_backward(const Tensor& s, const Tensor& grad_v, double eps) {
  check_rank(s);
  if (s.shape() != grad_v.shape()) {
    std::fprintf(stderr, "redcane::capsnet fatal: squash_backward shape mismatch\n");
    std::abort();
  }
  const std::int64_t d = s.shape().dim(-1);
  const std::int64_t rows = s.numel() / d;
  Tensor grad_s(s.shape());
  const auto sd = s.data();
  const auto gv = grad_v.data();
  auto gs = grad_s.data();
#pragma omp parallel for schedule(static) if (rows >= 64)
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r * d);
    double norm2 = 0.0;
    double dot = 0.0;  // s . grad_v
    for (std::int64_t k = 0; k < d; ++k) {
      const double sv = sd[base + static_cast<std::size_t>(k)];
      norm2 += sv * sv;
      dot += sv * gv[base + static_cast<std::size_t>(k)];
    }
    const double rn = std::sqrt(norm2) + eps;
    const double denom = 1.0 + norm2;
    // v = c(r) s with c = r / (1 + r^2); dv/ds = c I + (c'/r) s s^T,
    // c' = (1 - r^2) / (1 + r^2)^2.
    const double c = rn / denom;
    const double cprime = (1.0 - norm2) / (denom * denom);
    const double radial = cprime / rn * dot;
    for (std::int64_t k = 0; k < d; ++k) {
      gs[base + static_cast<std::size_t>(k)] = static_cast<float>(
          c * gv[base + static_cast<std::size_t>(k)] +
          radial * sd[base + static_cast<std::size_t>(k)]);
    }
  }
  return grad_s;
}

}  // namespace redcane::capsnet
