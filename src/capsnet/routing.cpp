#include "capsnet/routing.hpp"

#include <cstdio>
#include <cstdlib>

#include "capsnet/squash.hpp"
#include "tensor/ops.hpp"

namespace redcane::capsnet {
namespace {

struct VoteDims {
  std::int64_t m, i, j, d;
};

VoteDims dims_of(const Tensor& u_hat) {
  if (u_hat.shape().rank() != 4) {
    std::fprintf(stderr, "redcane::capsnet fatal: routing expects votes [m, I, J, D]\n");
    std::abort();
  }
  return {u_hat.shape().dim(0), u_hat.shape().dim(1), u_hat.shape().dim(2),
          u_hat.shape().dim(3)};
}

}  // namespace

RoutingResult dynamic_routing(const Tensor& u_hat, int iterations, PerturbationHook* hook,
                              const std::string& layer) {
  const VoteDims dd = dims_of(u_hat);
  Tensor b(Shape{dd.m, dd.i, dd.j});
  RoutingResult out;
  const auto ud = u_hat.data();

  for (int it = 0; it < iterations; ++it) {
    Tensor c = ops::softmax(b, 2);
    emit(hook, layer, OpKind::kSoftmax, c);

    Tensor s(Shape{dd.m, dd.j, dd.d});
    {
      auto sd = s.data();
      const auto cd = c.data();
      for (std::int64_t m = 0; m < dd.m; ++m) {
        for (std::int64_t i = 0; i < dd.i; ++i) {
          const std::size_t crow = static_cast<std::size_t>((m * dd.i + i) * dd.j);
          const std::size_t urow = static_cast<std::size_t>(((m * dd.i + i) * dd.j) * dd.d);
          for (std::int64_t j = 0; j < dd.j; ++j) {
            const float cij = cd[crow + static_cast<std::size_t>(j)];
            if (cij == 0.0F) continue;
            const std::size_t ubase = urow + static_cast<std::size_t>(j * dd.d);
            const std::size_t sbase = static_cast<std::size_t>((m * dd.j + j) * dd.d);
            for (std::int64_t k = 0; k < dd.d; ++k) {
              sd[sbase + static_cast<std::size_t>(k)] +=
                  cij * ud[ubase + static_cast<std::size_t>(k)];
            }
          }
        }
      }
    }
    emit(hook, layer, OpKind::kMacOutput, s);

    Tensor v = squash(s);
    emit(hook, layer, OpKind::kActivation, v);

    if (it + 1 < iterations) {
      // b += <u_hat, v> agreement update.
      auto bd = b.data();
      const auto vd = v.data();
      for (std::int64_t m = 0; m < dd.m; ++m) {
        for (std::int64_t i = 0; i < dd.i; ++i) {
          for (std::int64_t j = 0; j < dd.j; ++j) {
            const std::size_t ubase =
                static_cast<std::size_t>(((m * dd.i + i) * dd.j + j) * dd.d);
            const std::size_t vbase = static_cast<std::size_t>((m * dd.j + j) * dd.d);
            double dot = 0.0;
            for (std::int64_t k = 0; k < dd.d; ++k) {
              dot += static_cast<double>(ud[ubase + static_cast<std::size_t>(k)]) *
                     vd[vbase + static_cast<std::size_t>(k)];
            }
            bd[static_cast<std::size_t>((m * dd.i + i) * dd.j + j)] +=
                static_cast<float>(dot);
          }
        }
      }
      emit(hook, layer, OpKind::kLogitsUpdate, b);
    }

    out.s = std::move(s);
    out.c = std::move(c);
    out.v = std::move(v);
  }
  return out;
}

Tensor routing_backward(const Tensor& u_hat, const RoutingResult& fwd, const Tensor& grad_v) {
  const VoteDims dd = dims_of(u_hat);
  // dL/ds through squash, then distribute to votes weighted by the final c.
  const Tensor grad_s = squash_backward(fwd.s, grad_v);
  Tensor grad_u(u_hat.shape());
  const auto gs = grad_s.data();
  const auto cd = fwd.c.data();
  auto gu = grad_u.data();
  for (std::int64_t m = 0; m < dd.m; ++m) {
    for (std::int64_t i = 0; i < dd.i; ++i) {
      for (std::int64_t j = 0; j < dd.j; ++j) {
        const float cij = cd[static_cast<std::size_t>((m * dd.i + i) * dd.j + j)];
        const std::size_t ubase = static_cast<std::size_t>(((m * dd.i + i) * dd.j + j) * dd.d);
        const std::size_t sbase = static_cast<std::size_t>((m * dd.j + j) * dd.d);
        for (std::int64_t k = 0; k < dd.d; ++k) {
          gu[ubase + static_cast<std::size_t>(k)] =
              cij * gs[sbase + static_cast<std::size_t>(k)];
        }
      }
    }
  }
  return grad_u;
}

}  // namespace redcane::capsnet
