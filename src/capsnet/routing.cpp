#include "capsnet/routing.hpp"

#include <cstdio>
#include <cstdlib>

#include "capsnet/squash.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"

namespace redcane::capsnet {
namespace {

struct VoteDims {
  std::int64_t m, i, j, d;
};

VoteDims dims_of(const Tensor& u_hat) {
  if (u_hat.shape().rank() != 4) {
    std::fprintf(stderr, "redcane::capsnet fatal: routing expects votes [m, I, J, D]\n");
    std::abort();
  }
  return {u_hat.shape().dim(0), u_hat.shape().dim(1), u_hat.shape().dim(2),
          u_hat.shape().dim(3)};
}

/// Transposes votes [m, I, J, D] -> [m, J, I, D] so both routing
/// contractions become contiguous (I x D) blocks per (m, j).
void transpose_votes(const float* ud, const VoteDims& dd, float* td) {
#pragma omp parallel for schedule(static) if (dd.m >= 2)
  for (std::int64_t m = 0; m < dd.m; ++m) {
    for (std::int64_t i = 0; i < dd.i; ++i) {
      for (std::int64_t j = 0; j < dd.j; ++j) {
        const float* src = &ud[((m * dd.i + i) * dd.j + j) * dd.d];
        float* dst = &td[((m * dd.j + j) * dd.i + i) * dd.d];
        for (std::int64_t k = 0; k < dd.d; ++k) dst[k] = src[k];
      }
    }
  }
}

/// Transposes coefficients [m, I, J] -> [m, J, I].
void transpose_coeffs(const float* cd, const VoteDims& dd, float* td) {
#pragma omp parallel for schedule(static) if (dd.m >= 2)
  for (std::int64_t m = 0; m < dd.m; ++m) {
    for (std::int64_t i = 0; i < dd.i; ++i) {
      const float* src = &cd[(m * dd.i + i) * dd.j];
      for (std::int64_t j = 0; j < dd.j; ++j) {
        td[(m * dd.j + j) * dd.i + i] = src[j];
      }
    }
  }
}

}  // namespace

RoutingResult dynamic_routing(const Tensor& u_hat, int iterations, PerturbationHook* hook,
                              const std::string& layer) {
  const VoteDims dd = dims_of(u_hat);
  // Logits b are a hook site (kLogitsUpdate may perturb them in place), so
  // they stay a Tensor; the transposed votes/coefficients are pure scratch
  // carved from the per-thread arena — no per-call vector churn.
  Tensor b(Shape{dd.m, dd.i, dd.j});
  RoutingResult out;

  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  const std::size_t votes_elems = static_cast<std::size_t>(dd.m * dd.j * dd.i * dd.d);
  const std::size_t coeff_elems = static_cast<std::size_t>(dd.m * dd.j * dd.i);
  float* u_t = wksp.alloc<float>(votes_elems);
  float* c_t = wksp.alloc<float>(coeff_elems);
  float* delta_t = wksp.alloc<float>(coeff_elems);

  // Votes are constant across iterations: transpose once, then every
  // weighted sum / agreement update is a batched GEMM over (m, j) blocks.
  // No per-element zero tests anywhere: a coupling coefficient that
  // underflows to 0 still multiplies its vote, so 0 * NaN / 0 * Inf
  // propagate per IEEE semantics (the old loop skipped cij == 0 operands).
  transpose_votes(u_hat.data().data(), dd, u_t);

  for (int it = 0; it < iterations; ++it) {
    Tensor c = ops::softmax(b, 2);
    emit(hook, layer, OpKind::kSoftmax, c);

    // s[(m,j), 1, D] = c_t[(m,j), 1, I] * u_t[(m,j), I, D].
    Tensor s(Shape{dd.m, dd.j, dd.d});
    transpose_coeffs(c.data().data(), dd, c_t);
    gemm::gemm_batched_f32(dd.m * dd.j, 1, dd.d, dd.i, c_t, dd.i, u_t, dd.i * dd.d, 0.0F,
                           s.data().data(), dd.d);
    emit(hook, layer, OpKind::kMacOutput, s);

    Tensor v = squash(s);
    emit(hook, layer, OpKind::kActivation, v);

    if (it + 1 < iterations) {
      // Agreement update b[m,i,j] += <u_hat[m,i,j,:], v[m,j,:]>, computed as
      // delta_t[(m,j), I, 1] = u_t[(m,j), I, D] * v[(m,j), D, 1].
      // The dot accumulates in float like every other GEMM in the core (the
      // pre-GEMM loop used a double accumulator); D is a capsule dimension
      // (<= 16), so the rounding drift is far below the noise magnitudes
      // swept.
      gemm::gemm_batched_f32(dd.m * dd.j, dd.i, 1, dd.d, u_t, dd.i * dd.d,
                             v.data().data(), dd.d, 0.0F, delta_t, dd.i);
      auto bd = b.data();
#pragma omp parallel for schedule(static) if (dd.m >= 2)
      for (std::int64_t m = 0; m < dd.m; ++m) {
        for (std::int64_t i = 0; i < dd.i; ++i) {
          for (std::int64_t j = 0; j < dd.j; ++j) {
            bd[static_cast<std::size_t>((m * dd.i + i) * dd.j + j)] +=
                delta_t[(m * dd.j + j) * dd.i + i];
          }
        }
      }
      emit(hook, layer, OpKind::kLogitsUpdate, b);
    }

    out.s = std::move(s);
    out.c = std::move(c);
    out.v = std::move(v);
  }
  return out;
}

Tensor routing_backward(const Tensor& u_hat, const RoutingResult& fwd, const Tensor& grad_v) {
  const VoteDims dd = dims_of(u_hat);
  // dL/ds through squash, then distribute to votes weighted by the final c:
  // grad_u_t[(m,j), I, D] = c_t[(m,j), I, 1] * grad_s[(m,j), 1, D].
  const Tensor grad_s = squash_backward(fwd.s, grad_v);
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  float* c_t = wksp.alloc<float>(static_cast<std::size_t>(dd.m * dd.j * dd.i));
  float* grad_u_t = wksp.alloc<float>(static_cast<std::size_t>(dd.m * dd.j * dd.i * dd.d));
  transpose_coeffs(fwd.c.data().data(), dd, c_t);
  gemm::gemm_batched_f32(dd.m * dd.j, dd.i, dd.d, 1, c_t, dd.i, grad_s.data().data(), dd.d,
                         0.0F, grad_u_t, dd.i * dd.d);

  Tensor grad_u(u_hat.shape());
  auto gu = grad_u.data();
#pragma omp parallel for schedule(static) if (dd.m >= 2)
  for (std::int64_t m = 0; m < dd.m; ++m) {
    for (std::int64_t j = 0; j < dd.j; ++j) {
      for (std::int64_t i = 0; i < dd.i; ++i) {
        const float* src = &grad_u_t[((m * dd.j + j) * dd.i + i) * dd.d];
        float* dst = &gu[static_cast<std::size_t>(((m * dd.i + i) * dd.j + j) * dd.d)];
        for (std::int64_t k = 0; k < dd.d; ++k) dst[k] = src[k];
      }
    }
  }
  return grad_u;
}

}  // namespace redcane::capsnet
