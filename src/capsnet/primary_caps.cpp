#include "capsnet/primary_caps.hpp"

#include "capsnet/squash.hpp"

namespace redcane::capsnet {

PrimaryCaps::PrimaryCaps(std::string name, const PrimaryCapsSpec& spec, Rng& rng)
    : name_(std::move(name)), spec_(spec) {
  nn::Conv2DSpec cs;
  cs.in_channels = spec.in_channels;
  cs.out_channels = spec.types * spec.dim;
  cs.kernel = spec.kernel;
  cs.stride = spec.stride;
  cs.pad = spec.pad;
  conv_ = std::make_unique<nn::Conv2D>(name_, cs, rng);
}

Tensor PrimaryCaps::forward_conv(const Tensor& x, bool train, PerturbationHook* hook) {
  Tensor pre = conv_->forward(x, train);
  emit(hook, name_, OpKind::kMacOutput, pre);
  if (train) conv_out_shape_ = pre.shape();

  const std::int64_t n = pre.shape().dim(0);
  const std::int64_t caps =
      pre.shape().dim(1) * pre.shape().dim(2) * spec_.types;
  Tensor grouped = pre.reshaped(Shape{n, caps, spec_.dim});
  if (train) cached_pre_squash_ = grouped;
  return grouped;
}

Tensor PrimaryCaps::forward_squash(const Tensor& grouped, PerturbationHook* hook) const {
  Tensor v = squash(grouped);
  emit(hook, name_, OpKind::kActivation, v);
  return v;
}

Tensor PrimaryCaps::forward(const Tensor& x, bool train, PerturbationHook* hook) {
  return forward_squash(forward_conv(x, train, hook), hook);
}

Tensor PrimaryCaps::backward(const Tensor& grad_out) {
  const Tensor grad_pre = squash_backward(cached_pre_squash_, grad_out);
  return conv_->backward(grad_pre.reshaped(conv_out_shape_));
}

}  // namespace redcane::capsnet
