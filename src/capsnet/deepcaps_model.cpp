#include "capsnet/deepcaps_model.hpp"

#include <cstdio>
#include <cstdlib>

#include "tensor/ops.hpp"

namespace redcane::capsnet {
namespace {

ConvCaps2DSpec caps_spec(std::int64_t in_types, std::int64_t in_dim, std::int64_t out_types,
                         std::int64_t out_dim, std::int64_t stride) {
  ConvCaps2DSpec s;
  s.in_types = in_types;
  s.in_dim = in_dim;
  s.out_types = out_types;
  s.out_dim = out_dim;
  s.kernel = 3;
  s.stride = stride;
  s.pad = 1;
  return s;
}

}  // namespace

DeepCapsConfig DeepCapsConfig::paper() { return DeepCapsConfig{}; }

DeepCapsConfig DeepCapsConfig::tiny() {
  DeepCapsConfig c;
  c.input_hw = 16;
  c.types = 4;
  c.dim_block1 = 4;
  c.dim_rest = 4;  // Paper: 8; halved so single-core sweeps stay affordable.
  c.class_dim = 8;
  return c;
}

DeepCapsModel::DeepCapsModel(const DeepCapsConfig& cfg, Rng& rng) : cfg_(cfg) {
  nn::Conv2DSpec c1;
  c1.in_channels = cfg.input_channels;
  c1.out_channels = cfg.types * cfg.dim_block1;
  c1.kernel = 3;
  c1.stride = 1;
  c1.pad = 1;
  conv1_ = std::make_unique<nn::Conv2D>("Conv2D", c1, rng);
  bn1_ = std::make_unique<nn::BatchNorm>("Conv2D.bn", c1.out_channels);
  relu1_ = std::make_unique<nn::ReLU>();

  const std::int64_t t = cfg.types;
  int caps_id = 1;
  auto make_caps = [&](std::int64_t in_dim, std::int64_t out_dim, std::int64_t stride) {
    return std::make_unique<ConvCaps2D>("Caps2D" + std::to_string(caps_id++),
                                        caps_spec(t, in_dim, t, out_dim, stride), rng);
  };

  // Block 1: 4D capsules throughout.
  blocks_[0].a = make_caps(cfg.dim_block1, cfg.dim_block1, 2);
  blocks_[0].b = make_caps(cfg.dim_block1, cfg.dim_block1, 1);
  blocks_[0].c = make_caps(cfg.dim_block1, cfg.dim_block1, 1);
  blocks_[0].d = make_caps(cfg.dim_block1, cfg.dim_block1, 1);
  // Block 2: transition to 8D.
  blocks_[1].a = make_caps(cfg.dim_block1, cfg.dim_rest, 2);
  blocks_[1].b = make_caps(cfg.dim_rest, cfg.dim_rest, 1);
  blocks_[1].c = make_caps(cfg.dim_rest, cfg.dim_rest, 1);
  blocks_[1].d = make_caps(cfg.dim_rest, cfg.dim_rest, 1);
  // Block 3.
  blocks_[2].a = make_caps(cfg.dim_rest, cfg.dim_rest, 2);
  blocks_[2].b = make_caps(cfg.dim_rest, cfg.dim_rest, 1);
  blocks_[2].c = make_caps(cfg.dim_rest, cfg.dim_rest, 1);
  blocks_[2].d = make_caps(cfg.dim_rest, cfg.dim_rest, 1);
  // Block 4: skip branch is the routed ConvCaps3D.
  blocks_[3].a = make_caps(cfg.dim_rest, cfg.dim_rest, 2);
  blocks_[3].b = make_caps(cfg.dim_rest, cfg.dim_rest, 1);
  blocks_[3].c = make_caps(cfg.dim_rest, cfg.dim_rest, 1);
  blocks_[3].d = nullptr;

  ConvCaps3DSpec s3;
  s3.in_types = t;
  s3.in_dim = cfg.dim_rest;
  s3.out_types = t;
  s3.out_dim = cfg.dim_rest;
  s3.kernel = 3;
  s3.stride = 1;
  s3.pad = 1;
  s3.routing_iters = cfg.routing_iters;
  caps3d_ = std::make_unique<ConvCaps3D>("Caps3D", s3, rng);

  // Spatial extent after the stem (stride 1, pad 1 keeps H) and four
  // stride-2 blocks: H_k = (H_{k-1} + 2*1 - 3)/2 + 1.
  std::int64_t hw = cfg.input_hw;
  for (int k = 0; k < 4; ++k) hw = (hw + 2 - 3) / 2 + 1;

  ClassCapsSpec cs;
  cs.in_caps = hw * hw * t;
  cs.in_dim = cfg.dim_rest;
  cs.out_caps = cfg.num_classes;
  cs.out_dim = cfg.class_dim;
  cs.routing_iters = cfg.routing_iters;
  class_caps_ = std::make_unique<ClassCaps>("ClassCaps", cs, rng);
}

Tensor DeepCapsModel::forward(const Tensor& x, bool train, PerturbationHook* hook) {
  // Identical op sequence to forward_range(0, num_stages()): the two paths
  // must stay bit-equal so checkpointed sweeps match full evaluations.
  Tensor t = conv1_->forward(x, train);
  t = bn1_->forward(t, train);
  emit(hook, "Conv2D", OpKind::kMacOutput, t);
  t = relu1_->forward(t, train);
  emit(hook, "Conv2D", OpKind::kActivation, t);
  if (train) conv_out_shape_ = t.shape();
  Tensor caps = t.reshaped(Shape{t.shape().dim(0), t.shape().dim(1), t.shape().dim(2),
                                 cfg_.types, cfg_.dim_block1});

  for (int k = 0; k < 4; ++k) {
    Block& blk = blocks_[k];
    const Tensor s = blk.a->forward(caps, train, hook);
    Tensor main = blk.b->forward(s, train, hook);
    main = blk.c->forward(main, train, hook);
    const Tensor skip = (k < 3) ? blk.d->forward(s, train, hook)
                                : caps3d_->forward(s, train, hook);
    caps = ops::add(main, skip);
  }

  if (train) pre_flatten_shape_ = caps.shape();
  const std::int64_t n = caps.shape().dim(0);
  const std::int64_t in_caps =
      caps.shape().dim(1) * caps.shape().dim(2) * caps.shape().dim(3);
  const Tensor flat = caps.reshaped(Shape{n, in_caps, caps.shape().dim(4)});
  return class_caps_->forward(flat, train, hook);
}

Tensor DeepCapsModel::forward_range(int first, int last, StageState& state,
                                    PerturbationHook* hook, bool record) {
  // Stages never mutate their input tensors, so the entry boundary (which
  // may be a shared prefix-cache checkpoint) is read in place, not copied.
  std::vector<Tensor> scratch;
  const std::vector<Tensor>* cur = &state.at[static_cast<std::size_t>(first)];
  for (int k = first; k < last; ++k) {
    std::vector<Tensor> next;
    if (k == 0) {
      Tensor t = conv1_->forward((*cur)[0], /*train=*/false);
      t = bn1_->forward(t, /*train=*/false);
      emit(hook, "Conv2D", OpKind::kMacOutput, t);
      next = {std::move(t)};
    } else if (k == 1) {
      Tensor t = relu1_->forward((*cur)[0], /*train=*/false);
      emit(hook, "Conv2D", OpKind::kActivation, t);
      next = {t.reshaped(Shape{t.shape().dim(0), t.shape().dim(1), t.shape().dim(2),
                               cfg_.types, cfg_.dim_block1})};
    } else if (k == 14) {
      const Tensor& caps = (*cur)[0];
      const std::int64_t n = caps.shape().dim(0);
      const std::int64_t in_caps =
          caps.shape().dim(1) * caps.shape().dim(2) * caps.shape().dim(3);
      const Tensor flat = caps.reshaped(Shape{n, in_caps, caps.shape().dim(4)});
      next = {class_caps_->forward(flat, /*train=*/false, hook)};
    } else {
      Block& blk = blocks_[(k - 2) / 3];
      const int phase = (k - 2) % 3;
      if (phase == 0) {
        // Strided entry layer; its output feeds both branches.
        next = {blk.a->forward((*cur)[0], /*train=*/false, hook)};
      } else if (phase == 1) {
        // Main pair; the entry tensor rides along for the skip branch.
        Tensor main = blk.b->forward((*cur)[0], /*train=*/false, hook);
        main = blk.c->forward(main, /*train=*/false, hook);
        next = {(*cur)[0], std::move(main)};
      } else {
        const bool routed = (k - 2) / 3 == 3;
        const Tensor skip = routed ? caps3d_->forward((*cur)[0], /*train=*/false, hook)
                                   : blk.d->forward((*cur)[0], /*train=*/false, hook);
        next = {ops::add((*cur)[1], skip)};
      }
    }
    if (record) {
      state.at[static_cast<std::size_t>(k) + 1] = std::move(next);
      cur = &state.at[static_cast<std::size_t>(k) + 1];
    } else {
      scratch = std::move(next);
      cur = &scratch;
    }
  }
  return last == num_stages() ? (*cur)[0] : Tensor();
}

Tensor DeepCapsModel::backward(const Tensor& grad_v) {
  Tensor g = class_caps_->backward(grad_v);
  g = g.reshaped(pre_flatten_shape_);

  for (int k = 3; k >= 0; --k) {
    Block& blk = blocks_[k];
    // Sum node: both branches receive the full upstream gradient.
    Tensor g_main = blk.c->backward(g);
    g_main = blk.b->backward(g_main);
    const Tensor g_skip = (k < 3) ? blk.d->backward(g) : caps3d_->backward(g);
    g = blk.a->backward(ops::add(g_main, g_skip));
  }

  g = g.reshaped(conv_out_shape_);
  g = relu1_->backward(g);
  g = bn1_->backward(g);
  return conv1_->backward(g);
}

std::vector<nn::Param*> DeepCapsModel::params() {
  std::vector<nn::Param*> out;
  auto append = [&out](std::vector<nn::Param*> ps) {
    for (nn::Param* p : ps) out.push_back(p);
  };
  append(conv1_->params());
  append(bn1_->params());
  for (Block& blk : blocks_) {
    append(blk.a->params());
    append(blk.b->params());
    append(blk.c->params());
    if (blk.d) append(blk.d->params());
  }
  append(caps3d_->params());
  append(class_caps_->params());
  return out;
}

std::vector<std::string> DeepCapsModel::layer_names() const {
  std::vector<std::string> names{"Conv2D"};
  for (int i = 1; i <= 15; ++i) names.push_back("Caps2D" + std::to_string(i));
  names.push_back("Caps3D");
  names.push_back("ClassCaps");
  return names;
}

}  // namespace redcane::capsnet
