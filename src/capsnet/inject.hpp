// Perturbation hook: the seam between CapsNet inference and the noise-
// injection machinery (paper Sec. V-B: "a specialized node for the noise
// injection ... added to the graph").
//
// Every operation of the inference that the paper's Table III classifies
// reports its output tensor through this interface before it is consumed
// downstream. Implementations may mutate the tensor in place (Gaussian
// injection, quantization) or just observe it (range recording).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace redcane::capsnet {

/// Operation classes of Table III.
enum class OpKind : std::uint8_t {
  kMacOutput,     ///< Group 1: outputs of matrix multiplications / convolutions.
  kActivation,    ///< Group 2: outputs of activation functions (ReLU or squash).
  kSoftmax,       ///< Group 3: softmax results (k coefficients in dynamic routing).
  kLogitsUpdate,  ///< Group 4: updates of the logits (b coefficients).
};

/// Human-readable group name as used in the paper's tables and plots.
[[nodiscard]] inline const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kMacOutput: return "MAC outputs";
    case OpKind::kActivation: return "activations";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kLogitsUpdate: return "logits update";
  }
  return "?";
}

/// Inference-time perturbation/observation interface.
class PerturbationHook {
 public:
  virtual ~PerturbationHook() = default;

  /// Called with the freshly produced tensor of (layer, kind). The hook may
  /// modify `x` in place; the modified values flow into the rest of the
  /// inference.
  virtual void process(const std::string& layer, OpKind kind, Tensor& x) = 0;
};

/// Convenience: dispatches to the hook when one is attached.
inline void emit(PerturbationHook* hook, const std::string& layer, OpKind kind, Tensor& x) {
  if (hook != nullptr) hook->process(layer, kind, x);
}

}  // namespace redcane::capsnet
