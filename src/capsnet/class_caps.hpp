// ClassCaps: the fully-connected capsule layer with dynamic routing
// (Sabour et al. [25]; "CLASSCAPS 10x16" in DeepCaps' Fig. 2).
//
// Each input capsule u_i casts a vote u_hat[i,j] = W[i,j] u_i for every
// output (class) capsule j; routing-by-agreement combines the votes. The
// vote computation is a MacOutput injection site; the routing loop exposes
// Softmax / MacOutput / Activation / LogitsUpdate sites internally.
#pragma once

#include "capsnet/inject.hpp"
#include "capsnet/routing.hpp"
#include "nn/layer.hpp"

namespace redcane::backend {
struct SiteUnit;
}

namespace redcane::capsnet {

struct ClassCapsSpec {
  std::int64_t in_caps = 0;    ///< Number of input capsules I.
  std::int64_t in_dim = 8;     ///< Input capsule dimension.
  std::int64_t out_caps = 10;  ///< Output (class) capsules J.
  std::int64_t out_dim = 16;   ///< Output capsule dimension.
  int routing_iters = 3;
};

/// Input: [N, I, in_dim]; output: [N, J, out_dim].
class ClassCaps final : public nn::Layer {
 public:
  ClassCaps(std::string name, const ClassCapsSpec& spec, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override { return forward(x, train, nullptr); }
  Tensor forward(const Tensor& x, bool train, PerturbationHook* hook);
  Tensor backward(const Tensor& grad_out) override;

  /// Stage split used by the checkpointed forward: vote computation (emits
  /// the MacOutput site) ...
  Tensor forward_votes(const Tensor& x, bool train, PerturbationHook* hook);
  /// ... then dynamic routing (emits the routing sites). forward() == the
  /// composition of the two.
  Tensor forward_routing(const Tensor& votes, bool train, PerturbationHook* hook);
  std::vector<nn::Param*> params() override { return {&w_}; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ClassCapsSpec& spec() const { return spec_; }

  /// Overrides the routing iteration count (ablation D2).
  void set_routing_iters(int iters) { spec_.routing_iters = iters; }

 private:
  [[nodiscard]] Tensor compute_votes(const Tensor& x) const;
  /// Emulated vote GEMMs (backend/emulation.hpp plans this layer): one
  /// grouped LUT-accumulate GEMM per input capsule, sharing one product
  /// table per layer call. Eval path only.
  [[nodiscard]] Tensor compute_votes_emulated(const Tensor& x,
                                              const backend::SiteUnit& unit) const;

  std::string name_;
  ClassCapsSpec spec_;
  nn::Param w_;  ///< [I, J, in_dim, out_dim]

  Tensor cached_x_;
  Tensor cached_votes_;
  RoutingResult cached_routing_;
};

}  // namespace redcane::capsnet
