// DeepCaps (Rajasegaran et al. [24]), the 18-layer capsule network of the
// paper's Fig. 2:
//
//   Conv2D (3x3, ReLU)
//   4 residual capsule blocks of 4 ConvCaps each (first layer strided,
//   fourth layer a skip branch summed with the main path); the skip layer
//   of the last block is the routed ConvCaps3D
//   ClassCaps (10 x 16, dynamic routing)
//
// Layer names follow the paper's Fig. 10 axis exactly:
//   Conv2D, Caps2D1..Caps2D15, Caps3D, ClassCaps.
#pragma once

#include <memory>

#include "capsnet/class_caps.hpp"
#include "capsnet/conv_caps2d.hpp"
#include "capsnet/conv_caps3d.hpp"
#include "capsnet/model.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"

namespace redcane::capsnet {

struct DeepCapsConfig {
  std::int64_t input_hw = 32;
  std::int64_t input_channels = 3;
  std::int64_t num_classes = 10;

  std::int64_t types = 32;     ///< Capsule types per block (32 in the paper).
  std::int64_t dim_block1 = 4; ///< Capsule dim of conv stem + block 1.
  std::int64_t dim_rest = 8;   ///< Capsule dim of blocks 2-4.
  std::int64_t class_dim = 16;
  int routing_iters = 3;

  /// Published architecture (CIFAR-10 scale).
  static DeepCapsConfig paper();
  /// Sweep-affordable profile with identical 18-layer topology.
  static DeepCapsConfig tiny();
};

class DeepCapsModel final : public CapsModel {
 public:
  DeepCapsModel(const DeepCapsConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& x, bool train, PerturbationHook* hook) override;
  /// 15 stages: conv stem (conv+BN | ReLU), then 3 per residual block
  /// (strided entry | main pair | skip + sum), then ClassCaps.
  [[nodiscard]] int num_stages() const override { return 15; }
  Tensor forward_range(int first, int last, StageState& state, PerturbationHook* hook,
                       bool record) override;
  Tensor backward(const Tensor& grad_v) override;
  std::vector<nn::Param*> params() override;
  [[nodiscard]] std::vector<std::string> layer_names() const override;
  [[nodiscard]] std::string name() const override { return "DeepCaps"; }
  [[nodiscard]] Shape input_shape() const override {
    return Shape{cfg_.input_hw, cfg_.input_hw, cfg_.input_channels};
  }
  [[nodiscard]] std::int64_t num_classes() const override { return cfg_.num_classes; }

  [[nodiscard]] const DeepCapsConfig& config() const { return cfg_; }
  [[nodiscard]] ConvCaps3D& caps3d() { return *caps3d_; }
  [[nodiscard]] ClassCaps& class_caps() { return *class_caps_; }

 private:
  /// Residual capsule block: main = Lc(Lb(La(x))), skip = Ld(La(x)),
  /// output = main + skip (squashed tensors summed, as in DeepCaps).
  struct Block {
    std::unique_ptr<ConvCaps2D> a;  ///< Strided entry layer.
    std::unique_ptr<ConvCaps2D> b;
    std::unique_ptr<ConvCaps2D> c;
    std::unique_ptr<ConvCaps2D> d;  ///< Skip branch (null for block 4).
  };

  DeepCapsConfig cfg_;
  std::unique_ptr<nn::Conv2D> conv1_;
  std::unique_ptr<nn::BatchNorm> bn1_;
  std::unique_ptr<nn::ReLU> relu1_;
  Block blocks_[4];
  std::unique_ptr<ConvCaps3D> caps3d_;  ///< Skip branch of block 4.
  std::unique_ptr<ClassCaps> class_caps_;
  Shape pre_flatten_shape_;  ///< Rank-5 shape entering ClassCaps.
  Shape conv_out_shape_;     ///< NHWC shape of the conv stem output.
};

}  // namespace redcane::capsnet
