// The original CapsNet architecture (Sabour et al. [25]):
//   Conv1 (9x9, ReLU) -> PrimaryCaps (9x9/2, squash) -> ClassCaps (routing)
//
// `paper()` matches the published hyper-parameters (256 conv channels,
// 32x8D primary capsules, 10x16D class capsules on 28x28x1 inputs);
// `tiny()` preserves the topology and every injection site at a scale the
// pure-CPU resilience sweeps can afford (DESIGN.md §4).
#pragma once

#include <memory>

#include "capsnet/class_caps.hpp"
#include "capsnet/model.hpp"
#include "capsnet/primary_caps.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"

namespace redcane::capsnet {

struct CapsNetConfig {
  std::int64_t input_hw = 28;
  std::int64_t input_channels = 1;
  std::int64_t num_classes = 10;

  std::int64_t conv1_channels = 256;
  std::int64_t conv1_kernel = 9;

  std::int64_t primary_types = 32;
  std::int64_t primary_dim = 8;
  std::int64_t primary_kernel = 9;
  std::int64_t primary_stride = 2;

  std::int64_t class_dim = 16;
  int routing_iters = 3;

  /// Published architecture.
  static CapsNetConfig paper();
  /// Sweep-affordable profile with identical topology.
  static CapsNetConfig tiny();
};

class CapsNetModel final : public CapsModel {
 public:
  CapsNetModel(const CapsNetConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& x, bool train, PerturbationHook* hook) override;
  /// Six stages, one per hook-site boundary: Conv1 conv | Conv1 ReLU |
  /// PrimaryCaps conv | PrimaryCaps squash | ClassCaps votes | routing.
  [[nodiscard]] int num_stages() const override { return 6; }
  Tensor forward_range(int first, int last, StageState& state, PerturbationHook* hook,
                       bool record) override;
  Tensor backward(const Tensor& grad_v) override;
  std::vector<nn::Param*> params() override;
  [[nodiscard]] std::vector<std::string> layer_names() const override;
  [[nodiscard]] std::string name() const override { return "CapsNet"; }
  [[nodiscard]] Shape input_shape() const override {
    return Shape{cfg_.input_hw, cfg_.input_hw, cfg_.input_channels};
  }
  [[nodiscard]] std::int64_t num_classes() const override { return cfg_.num_classes; }

  [[nodiscard]] const CapsNetConfig& config() const { return cfg_; }
  [[nodiscard]] ClassCaps& class_caps() { return *class_caps_; }

 private:
  CapsNetConfig cfg_;
  std::unique_ptr<nn::Conv2D> conv1_;
  std::unique_ptr<nn::ReLU> relu1_;
  std::unique_ptr<PrimaryCaps> primary_;
  std::unique_ptr<ClassCaps> class_caps_;
};

}  // namespace redcane::capsnet
