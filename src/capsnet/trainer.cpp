#include "capsnet/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "tensor/random.hpp"

namespace redcane::capsnet {

Tensor slice_rows(const Tensor& t, std::int64_t begin, std::int64_t end) {
  const std::int64_t n = t.shape().dim(0);
  if (begin < 0 || end > n || begin >= end) {
    std::fprintf(stderr, "redcane::capsnet fatal: bad row slice [%lld, %lld) of %lld\n",
                 static_cast<long long>(begin), static_cast<long long>(end),
                 static_cast<long long>(n));
    std::abort();
  }
  Shape out_shape = t.shape();
  const std::int64_t row = t.numel() / n;
  Shape s;
  s.push_back(end - begin);
  for (std::size_t a = 1; a < out_shape.rank(); ++a) {
    s.push_back(out_shape.dim(static_cast<std::int64_t>(a)));
  }
  Tensor out(s);
  std::memcpy(out.data().data(), t.data().data() + begin * row,
              static_cast<std::size_t>((end - begin) * row) * sizeof(float));
  return out;
}

Tensor lengths_grad_to_v(const Tensor& v, const Tensor& lengths,
                         const Tensor& grad_lengths) {
  // dL/dv = dL/d|v| * v/|v| per class capsule.
  Tensor grad_v(v.shape());
  const std::int64_t n = v.shape().dim(0);
  const std::int64_t classes = v.shape().dim(1);
  const std::int64_t d = v.shape().dim(2);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < classes; ++k) {
      const double len = std::max(1e-9, static_cast<double>(lengths(i, k)));
      const double gl = grad_lengths(i, k);
      for (std::int64_t q = 0; q < d; ++q) {
        grad_v(i, k, q) = static_cast<float>(gl * v(i, k, q) / len);
      }
    }
  }
  return grad_v;
}

namespace {

Batch gather(const Tensor& images, const std::vector<std::int64_t>& labels,
             std::span<const std::int64_t> idx) {
  const std::int64_t n = images.shape().dim(0);
  const std::int64_t row = images.numel() / n;
  Shape s;
  s.push_back(static_cast<std::int64_t>(idx.size()));
  for (std::size_t a = 1; a < images.shape().rank(); ++a) {
    s.push_back(images.shape().dim(static_cast<std::int64_t>(a)));
  }
  Batch b{Tensor(s), {}};
  b.labels.reserve(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    std::memcpy(b.x.data().data() + static_cast<std::int64_t>(i) * row,
                images.data().data() + idx[i] * row,
                static_cast<std::size_t>(row) * sizeof(float));
    b.labels.push_back(labels[static_cast<std::size_t>(idx[i])]);
  }
  return b;
}

}  // namespace

TrainStats train(CapsModel& model, const Tensor& images,
                 const std::vector<std::int64_t>& labels, const TrainConfig& cfg) {
  const std::int64_t n = images.shape().dim(0);
  nn::Adam opt(cfg.lr);
  const std::vector<nn::Param*> params = model.params();
  Rng rng(cfg.shuffle_seed);

  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic generator.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t at = 0; at + cfg.batch_size <= n; at += cfg.batch_size) {
      const Batch batch = gather(
          images, labels,
          std::span<const std::int64_t>(order.data() + at,
                                        static_cast<std::size_t>(cfg.batch_size)));
      const Tensor v = model.forward(batch.x, /*train=*/true, nullptr);
      const Tensor lengths = CapsModel::class_lengths(v);
      const nn::LossResult lr = nn::margin_loss(lengths, batch.labels, cfg.margin);
      loss_sum += lr.loss;
      acc_sum += nn::accuracy(lengths, batch.labels);
      ++batches;

      (void)model.backward(lengths_grad_to_v(v, lengths, lr.grad));
      opt.step(params);
    }
    stats.final_loss = loss_sum / std::max<std::int64_t>(1, batches);
    stats.final_train_accuracy = acc_sum / std::max<std::int64_t>(1, batches);
    stats.epochs_run = epoch + 1;
    if (cfg.on_epoch) cfg.on_epoch(epoch, stats.final_loss, stats.final_train_accuracy);
  }
  return stats;
}

std::int64_t count_correct(const Tensor& v, std::span<const std::int64_t> labels) {
  const Tensor lengths = CapsModel::class_lengths(v);
  const std::vector<std::int64_t> pred = ops::argmax_last_axis(lengths);
  std::int64_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  return hits;
}

double evaluate(CapsModel& model, const Tensor& images,
                const std::vector<std::int64_t>& labels, PerturbationHook* hook,
                std::int64_t batch_size) {
  const std::int64_t n = images.shape().dim(0);
  std::int64_t hits = 0;
  for (std::int64_t at = 0; at < n; at += batch_size) {
    const std::int64_t end = std::min(n, at + batch_size);
    const Tensor x = slice_rows(images, at, end);
    const Tensor v = model.forward(x, /*train=*/false, hook);
    hits += count_correct(
        v, std::span<const std::int64_t>(labels.data() + at,
                                         static_cast<std::size_t>(end - at)));
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

bool audit_const_forward(CapsModel& model, const Tensor& probe) {
  std::vector<std::vector<float>> before;
  for (nn::Param* p : model.params()) {
    before.emplace_back(p->value.data().begin(), p->value.data().end());
  }
  const Tensor first = model.infer(probe);
  const Tensor second = model.infer(probe);
  if (first.shape() != second.shape()) return false;
  if (std::memcmp(first.data().data(), second.data().data(),
                  static_cast<std::size_t>(first.numel()) * sizeof(float)) != 0) {
    return false;
  }
  const std::vector<nn::Param*> params = model.params();
  if (params.size() != before.size()) return false;
  for (std::size_t p = 0; p < params.size(); ++p) {
    const std::span<const float> now = params[p]->value.data();
    if (now.size() != before[p].size()) return false;
    if (std::memcmp(now.data(), before[p].data(), now.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace redcane::capsnet
