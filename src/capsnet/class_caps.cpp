#include "capsnet/class_caps.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "backend/emulation.hpp"
#include "quant/lut_cache.hpp"
#include "tensor/workspace.hpp"

namespace redcane::capsnet {

ClassCaps::ClassCaps(std::string name, const ClassCapsSpec& spec, Rng& rng)
    : name_(std::move(name)),
      spec_(spec),
      w_(name_ + ".w", Tensor(Shape{spec.in_caps, spec.out_caps, spec.in_dim, spec.out_dim})) {
  nn::he_init(w_.value, spec.in_dim, rng);
}

Tensor ClassCaps::compute_votes(const Tensor& x) const {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t ic = spec_.in_caps;
  const std::int64_t id = spec_.in_dim;
  const std::int64_t oc = spec_.out_caps;
  const std::int64_t od = spec_.out_dim;
  Tensor votes(Shape{n, ic, oc, od});
  const auto xd = x.data();
  const auto wd = w_.value.data();
  auto vd = votes.data();
#pragma omp parallel for if (n > 2)
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t i = 0; i < ic; ++i) {
      const std::size_t xbase = static_cast<std::size_t>((ni * ic + i) * id);
      for (std::int64_t j = 0; j < oc; ++j) {
        const std::size_t wbase = static_cast<std::size_t>(((i * oc + j) * id) * od);
        const std::size_t vbase = static_cast<std::size_t>(((ni * ic + i) * oc + j) * od);
        for (std::int64_t p = 0; p < id; ++p) {
          // No zero-skip: 0 * NaN / 0 * Inf must propagate (same IEEE
          // contract as the GEMM core and the routing rewrite).
          const float xv = xd[xbase + static_cast<std::size_t>(p)];
          const std::size_t wrow = wbase + static_cast<std::size_t>(p * od);
          for (std::int64_t q = 0; q < od; ++q) {
            vd[vbase + static_cast<std::size_t>(q)] +=
                xv * wd[wrow + static_cast<std::size_t>(q)];
          }
        }
      }
    }
  }
  return votes;
}

Tensor ClassCaps::compute_votes_emulated(const Tensor& x,
                                         const backend::SiteUnit& unit) const {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t ic = spec_.in_caps;
  const std::int64_t id = spec_.in_dim;
  const std::int64_t oc = spec_.out_caps;
  const std::int64_t od = spec_.out_dim;
  const std::int64_t jd = oc * od;
  const quant::QuantParams px = quant::fit_params(x, unit.bits);
  const quant::QuantParams pw = quant::fit_params(w_.value, unit.bits);

  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  std::uint8_t* qx = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(x.numel()));
  std::uint8_t* qw = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(w_.value.numel()));
  quant::quantize_u8(x, px, qx);
  quant::quantize_u8(w_.value, pw, qw);
  const gemm::lk::LutTables& tables = quant::lut_cache_get(unit.unit.mul, unit.bits);

  // One LUT-accumulate GEMM per input capsule i: votes[:, i, j, :] =
  // x[:, i, :] (codes, [n, id]) * W[i] (codes packed [id, oc*od]). The
  // product table is shared across all ic groups of the layer call.
  std::uint8_t* a_pack = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(n * id));
  std::uint8_t* b_pack = wksp.alloc<std::uint8_t>(static_cast<std::size_t>(id * jd));
  float* out_i = wksp.alloc<float>(static_cast<std::size_t>(n * jd));
  Tensor votes(Shape{n, ic, oc, od});
  auto vd = votes.data();
  for (std::int64_t i = 0; i < ic; ++i) {
    for (std::int64_t ni = 0; ni < n; ++ni) {
      std::memcpy(&a_pack[static_cast<std::size_t>(ni * id)],
                  &qx[static_cast<std::size_t>((ni * ic + i) * id)],
                  static_cast<std::size_t>(id));
    }
    // W is [I, J, in_dim, out_dim]: transpose the (J, in_dim) block of
    // capsule i into the row-major [in_dim, J*out_dim] GEMM operand.
    for (std::int64_t j = 0; j < oc; ++j) {
      for (std::int64_t p = 0; p < id; ++p) {
        std::memcpy(&b_pack[static_cast<std::size_t>(p * jd + j * od)],
                    &qw[static_cast<std::size_t>(((i * oc + j) * id + p) * od)],
                    static_cast<std::size_t>(od));
      }
    }
    quant::lut_gemm_dequant(n, jd, id, a_pack, nullptr, px, b_pack, pw, tables,
                            unit.unit.adder, nullptr, out_i);
    for (std::int64_t ni = 0; ni < n; ++ni) {
      std::memcpy(&vd[static_cast<std::size_t>((ni * ic + i) * jd)],
                  &out_i[static_cast<std::size_t>(ni * jd)],
                  static_cast<std::size_t>(jd) * sizeof(float));
    }
  }
  return votes;
}

Tensor ClassCaps::forward_votes(const Tensor& x, bool train, PerturbationHook* hook) {
  if (x.shape().rank() != 3 || x.shape().dim(1) != spec_.in_caps ||
      x.shape().dim(2) != spec_.in_dim) {
    std::fprintf(stderr, "redcane::capsnet fatal: ClassCaps input shape mismatch (%s)\n",
                 x.shape().to_string().c_str());
    std::abort();
  }
  const backend::SiteUnit* emu = train ? nullptr : backend::active_mac_unit(name_);
  Tensor votes = emu != nullptr ? compute_votes_emulated(x, *emu) : compute_votes(x);
  emit(hook, name_, OpKind::kMacOutput, votes);
  if (train) {
    cached_x_ = x;
    cached_votes_ = votes;
  }
  return votes;
}

Tensor ClassCaps::forward_routing(const Tensor& votes, bool train, PerturbationHook* hook) {
  RoutingResult routed = dynamic_routing(votes, spec_.routing_iters, hook, name_);
  if (train) cached_routing_ = routed;
  return routed.v;
}

Tensor ClassCaps::forward(const Tensor& x, bool train, PerturbationHook* hook) {
  return forward_routing(forward_votes(x, train, hook), train, hook);
}

Tensor ClassCaps::backward(const Tensor& grad_out) {
  const Tensor grad_votes = routing_backward(cached_votes_, cached_routing_, grad_out);
  const std::int64_t n = cached_x_.shape().dim(0);
  const std::int64_t ic = spec_.in_caps;
  const std::int64_t id = spec_.in_dim;
  const std::int64_t oc = spec_.out_caps;
  const std::int64_t od = spec_.out_dim;

  Tensor grad_x(cached_x_.shape());
  const auto xd = cached_x_.data();
  const auto gv = grad_votes.data();
  const auto wd = w_.value.data();
  auto gw = w_.grad.data();
  auto gx = grad_x.data();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t i = 0; i < ic; ++i) {
      const std::size_t xbase = static_cast<std::size_t>((ni * ic + i) * id);
      for (std::int64_t j = 0; j < oc; ++j) {
        const std::size_t wbase = static_cast<std::size_t>(((i * oc + j) * id) * od);
        const std::size_t vbase = static_cast<std::size_t>(((ni * ic + i) * oc + j) * od);
        for (std::int64_t p = 0; p < id; ++p) {
          const float xv = xd[xbase + static_cast<std::size_t>(p)];
          const std::size_t wrow = wbase + static_cast<std::size_t>(p * od);
          float gxacc = 0.0F;
          for (std::int64_t q = 0; q < od; ++q) {
            const float g = gv[vbase + static_cast<std::size_t>(q)];
            gw[wrow + static_cast<std::size_t>(q)] += xv * g;
            gxacc += wd[wrow + static_cast<std::size_t>(q)] * g;
          }
          gx[xbase + static_cast<std::size_t>(p)] += gxacc;
        }
      }
    }
  }
  return grad_x;
}

}  // namespace redcane::capsnet
