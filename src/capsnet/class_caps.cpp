#include "capsnet/class_caps.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane::capsnet {

ClassCaps::ClassCaps(std::string name, const ClassCapsSpec& spec, Rng& rng)
    : name_(std::move(name)),
      spec_(spec),
      w_(name_ + ".w", Tensor(Shape{spec.in_caps, spec.out_caps, spec.in_dim, spec.out_dim})) {
  nn::he_init(w_.value, spec.in_dim, rng);
}

Tensor ClassCaps::compute_votes(const Tensor& x) const {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t ic = spec_.in_caps;
  const std::int64_t id = spec_.in_dim;
  const std::int64_t oc = spec_.out_caps;
  const std::int64_t od = spec_.out_dim;
  Tensor votes(Shape{n, ic, oc, od});
  const auto xd = x.data();
  const auto wd = w_.value.data();
  auto vd = votes.data();
#pragma omp parallel for if (n > 2)
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t i = 0; i < ic; ++i) {
      const std::size_t xbase = static_cast<std::size_t>((ni * ic + i) * id);
      for (std::int64_t j = 0; j < oc; ++j) {
        const std::size_t wbase = static_cast<std::size_t>(((i * oc + j) * id) * od);
        const std::size_t vbase = static_cast<std::size_t>(((ni * ic + i) * oc + j) * od);
        for (std::int64_t p = 0; p < id; ++p) {
          // No zero-skip: 0 * NaN / 0 * Inf must propagate (same IEEE
          // contract as the GEMM core and the routing rewrite).
          const float xv = xd[xbase + static_cast<std::size_t>(p)];
          const std::size_t wrow = wbase + static_cast<std::size_t>(p * od);
          for (std::int64_t q = 0; q < od; ++q) {
            vd[vbase + static_cast<std::size_t>(q)] +=
                xv * wd[wrow + static_cast<std::size_t>(q)];
          }
        }
      }
    }
  }
  return votes;
}

Tensor ClassCaps::forward_votes(const Tensor& x, bool train, PerturbationHook* hook) {
  if (x.shape().rank() != 3 || x.shape().dim(1) != spec_.in_caps ||
      x.shape().dim(2) != spec_.in_dim) {
    std::fprintf(stderr, "redcane::capsnet fatal: ClassCaps input shape mismatch (%s)\n",
                 x.shape().to_string().c_str());
    std::abort();
  }
  Tensor votes = compute_votes(x);
  emit(hook, name_, OpKind::kMacOutput, votes);
  if (train) {
    cached_x_ = x;
    cached_votes_ = votes;
  }
  return votes;
}

Tensor ClassCaps::forward_routing(const Tensor& votes, bool train, PerturbationHook* hook) {
  RoutingResult routed = dynamic_routing(votes, spec_.routing_iters, hook, name_);
  if (train) cached_routing_ = routed;
  return routed.v;
}

Tensor ClassCaps::forward(const Tensor& x, bool train, PerturbationHook* hook) {
  return forward_routing(forward_votes(x, train, hook), train, hook);
}

Tensor ClassCaps::backward(const Tensor& grad_out) {
  const Tensor grad_votes = routing_backward(cached_votes_, cached_routing_, grad_out);
  const std::int64_t n = cached_x_.shape().dim(0);
  const std::int64_t ic = spec_.in_caps;
  const std::int64_t id = spec_.in_dim;
  const std::int64_t oc = spec_.out_caps;
  const std::int64_t od = spec_.out_dim;

  Tensor grad_x(cached_x_.shape());
  const auto xd = cached_x_.data();
  const auto gv = grad_votes.data();
  const auto wd = w_.value.data();
  auto gw = w_.grad.data();
  auto gx = grad_x.data();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t i = 0; i < ic; ++i) {
      const std::size_t xbase = static_cast<std::size_t>((ni * ic + i) * id);
      for (std::int64_t j = 0; j < oc; ++j) {
        const std::size_t wbase = static_cast<std::size_t>(((i * oc + j) * id) * od);
        const std::size_t vbase = static_cast<std::size_t>(((ni * ic + i) * oc + j) * od);
        for (std::int64_t p = 0; p < id; ++p) {
          const float xv = xd[xbase + static_cast<std::size_t>(p)];
          const std::size_t wrow = wbase + static_cast<std::size_t>(p * od);
          float gxacc = 0.0F;
          for (std::int64_t q = 0; q < od; ++q) {
            const float g = gv[vbase + static_cast<std::size_t>(q)];
            gw[wrow + static_cast<std::size_t>(q)] += xv * g;
            gxacc += wd[wrow + static_cast<std::size_t>(q)] * g;
          }
          gx[xbase + static_cast<std::size_t>(p)] += gxacc;
        }
      }
    }
  }
  return grad_x;
}

}  // namespace redcane::capsnet
