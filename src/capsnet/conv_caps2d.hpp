// ConvCaps2D (DeepCaps [24]): a convolutional capsule layer without
// routing. Input capsules [N, H, W, Ti, Di] are flattened to channels,
// convolved to To*Do output channels, regrouped into capsules and
// squashed. The conv output is a MacOutput site; the squashed capsules an
// Activation site — these are exactly the per-layer sites of the paper's
// Fig. 10 drill-down.
//
// The convolution itself is an nn::Conv2D, so forward and backward route
// through the shared im2col + blocked-GEMM core (tensor/gemm.hpp).
#pragma once

#include <memory>

#include "capsnet/inject.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"

namespace redcane::capsnet {

struct ConvCaps2DSpec {
  std::int64_t in_types = 0;
  std::int64_t in_dim = 0;
  std::int64_t out_types = 0;
  std::int64_t out_dim = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;
  /// Batch-normalize the conv output before squash (DeepCaps interleaves
  /// BN with its capsule convolutions; prevents capsule-length collapse).
  bool batch_norm = true;
};

/// Input/output: [N, H, W, T, D] rank-5 capsule maps.
class ConvCaps2D final : public nn::Layer {
 public:
  ConvCaps2D(std::string name, const ConvCaps2DSpec& spec, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override { return forward(x, train, nullptr); }
  Tensor forward(const Tensor& x, bool train, PerturbationHook* hook);

  /// Variant returning the pre-squash capsule map (used by the residual
  /// blocks that sum pre-activations before a shared squash).
  Tensor forward_pre_squash(const Tensor& x, bool train, PerturbationHook* hook);

  Tensor backward(const Tensor& grad_out) override;
  /// Backward for the forward_pre_squash path (no squash Jacobian).
  Tensor backward_pre_squash(const Tensor& grad_pre);

  std::vector<nn::Param*> params() override;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ConvCaps2DSpec& spec() const { return spec_; }

 private:
  std::string name_;
  ConvCaps2DSpec spec_;
  std::unique_ptr<nn::Conv2D> conv_;
  std::unique_ptr<nn::BatchNorm> bn_;  ///< Null when spec_.batch_norm is false.
  Tensor cached_pre_squash_;  ///< rank-5 pre-squash output.
  Shape conv_out_shape_;      ///< NHWC conv output shape.
  Shape in_shape_;            ///< rank-5 input shape.
};

}  // namespace redcane::capsnet
