#include "capsnet/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace redcane::capsnet {
namespace {

constexpr char kMagic[4] = {'R', 'D', 'C', 'N'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool save_params(CapsModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) return false;
  const std::vector<nn::Param*> params = model.params();
  const std::uint64_t count = params.size();
  if (std::fwrite(&count, sizeof(count), 1, f.get()) != 1) return false;
  for (nn::Param* p : params) {
    const std::uint64_t n = static_cast<std::uint64_t>(p->value.numel());
    if (std::fwrite(&n, sizeof(n), 1, f.get()) != 1) return false;
    if (std::fwrite(p->value.data().data(), sizeof(float), n, f.get()) != n) return false;
  }
  return true;
}

bool load_params(CapsModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4) return false;
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kMagic[i]) return false;
  }
  const std::vector<nn::Param*> params = model.params();
  std::uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f.get()) != 1) return false;
  if (count != params.size()) return false;
  for (nn::Param* p : params) {
    std::uint64_t n = 0;
    if (std::fread(&n, sizeof(n), 1, f.get()) != 1) return false;
    if (n != static_cast<std::uint64_t>(p->value.numel())) return false;
    if (std::fread(p->value.data().data(), sizeof(float), n, f.get()) != n) return false;
  }
  return true;
}

}  // namespace redcane::capsnet
