#include "capsnet/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "util/crc32.hpp"

namespace redcane::capsnet {
namespace {

// Format v2 ("RDC2"): magic, then the v1 payload (param count, then per
// param element count + float data), then a trailing CRC-32 of every
// payload byte. v1 ("RDCN") files carried only magic/size validation, so a
// bit-flipped weights file loaded silently; v2 readers reject them (and
// any corruption) instead of serving mangled weights. The CRC helper is
// util::crc32 — the same checksum the distributed wire frames and run
// journal use.
constexpr char kMagic[4] = {'R', 'D', 'C', '2'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool save_params(CapsModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) return false;
  std::uint32_t crc = util::crc32_init();
  const auto put = [&](const void* data, std::size_t bytes) {
    if (std::fwrite(data, 1, bytes, f.get()) != bytes) return false;
    crc = util::crc32_update(crc, data, bytes);
    return true;
  };
  const std::vector<nn::Param*> params = model.params();
  const std::uint64_t count = params.size();
  if (!put(&count, sizeof(count))) return false;
  for (nn::Param* p : params) {
    const std::uint64_t n = static_cast<std::uint64_t>(p->value.numel());
    if (!put(&n, sizeof(n))) return false;
    if (!put(p->value.data().data(), sizeof(float) * n)) return false;
  }
  return std::fwrite(&crc, sizeof(crc), 1, f.get()) == 1;
}

bool load_params(CapsModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4) return false;
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kMagic[i]) return false;
  }
  std::uint32_t crc = util::crc32_init();
  const auto get = [&](void* data, std::size_t bytes) {
    if (std::fread(data, 1, bytes, f.get()) != bytes) return false;
    crc = util::crc32_update(crc, data, bytes);
    return true;
  };
  const std::vector<nn::Param*> params = model.params();
  std::uint64_t count = 0;
  if (!get(&count, sizeof(count))) return false;
  if (count != params.size()) return false;
  for (nn::Param* p : params) {
    std::uint64_t n = 0;
    if (!get(&n, sizeof(n))) return false;
    if (n != static_cast<std::uint64_t>(p->value.numel())) return false;
    if (!get(p->value.data().data(), sizeof(float) * n)) return false;
  }
  std::uint32_t stored = 0;
  if (std::fread(&stored, sizeof(stored), 1, f.get()) != 1) return false;
  return stored == crc;
}

}  // namespace redcane::capsnet
