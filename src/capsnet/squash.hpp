// The squashing nonlinearity of capsule networks (Sabour et al. [25]):
//
//   squash(s) = |s|^2 / (1 + |s|^2) * s / |s|
//
// applied along the last axis (the capsule dimension). It bounds capsule
// lengths to [0, 1) so that length encodes existence probability.
#pragma once

#include "tensor/tensor.hpp"

namespace redcane::capsnet {

/// Squash along the last axis.
[[nodiscard]] Tensor squash(const Tensor& s, double eps = 1e-8);

/// Backward of squash: given s (pre-activation) and dL/dv, returns dL/ds.
/// Uses the analytic Jacobian
///   dv/ds = a/|s| * (I - ssᵀ/|s|^2) + 2/(1+|s|^2)^2 * ssᵀ/|s|^2 ... folded
/// into the standard two-term form (radial + tangential).
[[nodiscard]] Tensor squash_backward(const Tensor& s, const Tensor& grad_v, double eps = 1e-8);

}  // namespace redcane::capsnet
