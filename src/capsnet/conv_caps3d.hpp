// ConvCaps3D (DeepCaps [24]): convolutional capsule layer *with* dynamic
// routing — the "DYN ROUTING / CONVCAPS 3D" block of the paper's Fig. 2
// and, per the paper's findings, one of the most error-resilient layers.
//
// Every input capsule type i casts convolutional votes for every output
// type j; routing-by-agreement then runs independently at each output
// spatial position over the (i -> j) vote matrix.
#pragma once

#include "capsnet/inject.hpp"
#include "capsnet/routing.hpp"
#include "nn/layer.hpp"

namespace redcane::backend {
struct SiteUnit;
}

namespace redcane::capsnet {

struct ConvCaps3DSpec {
  std::int64_t in_types = 0;
  std::int64_t in_dim = 0;
  std::int64_t out_types = 0;
  std::int64_t out_dim = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;
  int routing_iters = 3;
};

/// Input/output: [N, H, W, T, D] rank-5 capsule maps.
class ConvCaps3D final : public nn::Layer {
 public:
  ConvCaps3D(std::string name, const ConvCaps3DSpec& spec, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override { return forward(x, train, nullptr); }
  Tensor forward(const Tensor& x, bool train, PerturbationHook* hook);
  Tensor backward(const Tensor& grad_out) override;
  std::vector<nn::Param*> params() override { return {&w_}; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ConvCaps3DSpec& spec() const { return spec_; }
  void set_routing_iters(int iters) { spec_.routing_iters = iters; }

 private:
  /// votes[n, ho, wo, i, j, d] flattened to [N*Ho*Wo, I, J, D].
  [[nodiscard]] Tensor compute_votes(const Tensor& x, std::int64_t& ho, std::int64_t& wo) const;
  /// Emulated grouped convolution (backend/emulation.hpp plans this
  /// layer): per input type, im2col codes + one LUT-accumulate GEMM, all
  /// groups sharing one product table per layer call. Eval path only.
  [[nodiscard]] Tensor compute_votes_emulated(const Tensor& x, std::int64_t& ho,
                                              std::int64_t& wo,
                                              const backend::SiteUnit& unit) const;

  std::string name_;
  ConvCaps3DSpec spec_;
  nn::Param w_;  ///< [in_types, K, K, in_dim, out_types*out_dim]

  Tensor cached_x_;
  Tensor cached_votes_;
  RoutingResult cached_routing_;
  std::int64_t cached_ho_ = 0;
  std::int64_t cached_wo_ = 0;
};

}  // namespace redcane::capsnet
