// Emulation context: the seam through which an EmulatedBackend
// (backend/backend.hpp) redirects every MAC-producing layer onto the
// behavioral quantized datapath (quant/lut_gemm.hpp).
//
// An EmulationPlan maps layer names (the same names the perturbation-hook
// sites carry: "Conv1", "PrimaryCaps", "Caps2D7", ...) to the MAC datapath
// that layer should execute — behavioral multiplier, optional behavioral
// accumulator adder, and operand wordlength. An EmulationScope arms a plan
// for the *calling thread*; while armed, the eval-time forwards of
// nn::Conv2D, nn::Dense, capsnet::ClassCaps (votes) and capsnet::ConvCaps3D
// (votes) look up their own name and, on a hit, run the quantized
// LUT-accumulate GEMM instead of the float core. Thread-locality mirrors
// the workspace-arena keying: every execution context in the codebase
// (sweep-engine point workers, serving batch workers) is a thread, so one
// armed scope can never leak into a sibling worker's forward.
//
// This header sits *below* nn/capsnet in the layering (it knows nothing
// about models or hooks); the ExecBackend classes that drive whole-model
// execution live in backend/backend.hpp above capsnet.
#pragma once

#include <string>
#include <vector>

#include "quant/lut_gemm.hpp"

namespace redcane::backend {

/// Per-layer MAC-site datapath choice.
struct SiteUnit {
  quant::MacUnit unit;  ///< Multiplier/adder (null members = exact unit).
  int bits = 8;         ///< Operand quantization wordlength.
};

/// Layer-name -> SiteUnit map of one emulated network execution.
///
/// Lifetime note: emulated layer calls memoize product tables in the
/// process-wide LUT cache (quant/lut_cache.hpp), keyed by multiplier
/// address. Library components live forever, but a plan may also reference
/// a caller-owned multiplier whose address can be reused after it dies —
/// so the destructor drops the cache entries of every planned multiplier
/// that is not in approx::multiplier_library() (plan-scoped invalidation).
class EmulationPlan {
 public:
  EmulationPlan() = default;
  ~EmulationPlan();
  EmulationPlan(const EmulationPlan&) = default;
  EmulationPlan& operator=(const EmulationPlan&) = default;
  EmulationPlan(EmulationPlan&&) = default;
  EmulationPlan& operator=(EmulationPlan&&) = default;

  /// Sets (or replaces) the datapath of `layer`'s MAC site.
  void set(const std::string& layer, const SiteUnit& unit);

  /// Name-resolving convenience: looks `multiplier` up in the component
  /// library ("" or "axm_exact" = exact) and `adder` in the adder library
  /// ("" = exact accumulation). Returns false — and sets nothing — when a
  /// non-empty name is unknown (e.g. a manifest written by a different
  /// library build).
  [[nodiscard]] bool set_by_name(const std::string& layer, const std::string& multiplier,
                                 const std::string& adder = "", int bits = 8);

  /// The plan entry for `layer`'s MAC site, or null when the layer is not
  /// planned (it then runs the float path).
  [[nodiscard]] const SiteUnit* find(const std::string& layer) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Planned layer names, insertion order.
  [[nodiscard]] std::vector<std::string> layers() const;

 private:
  std::vector<std::pair<std::string, SiteUnit>> entries_;
};

/// RAII: arms `plan` on the calling thread for the scope's lifetime.
/// Scopes nest (the previous plan is restored on destruction). The plan
/// must outlive the scope.
class EmulationScope {
 public:
  explicit EmulationScope(const EmulationPlan& plan);
  ~EmulationScope();
  EmulationScope(const EmulationScope&) = delete;
  EmulationScope& operator=(const EmulationScope&) = delete;

 private:
  const EmulationPlan* previous_;
};

/// The plan armed on the calling thread (null outside any scope).
[[nodiscard]] const EmulationPlan* active_plan();

/// Armed-plan entry for `layer`'s MAC site; null when no scope is armed or
/// the layer is not planned. This is the one call every MAC-producing
/// layer makes on its eval path.
[[nodiscard]] const SiteUnit* active_mac_unit(const std::string& layer);

}  // namespace redcane::backend
