#include "backend/emulation.hpp"

#include <algorithm>

#include "approx/library.hpp"
#include "quant/lut_cache.hpp"

namespace redcane::backend {
namespace {

thread_local const EmulationPlan* g_active_plan = nullptr;

/// Non-aborting library lookups (approx::*_by_name abort on unknown names,
/// which is wrong for data that arrives from a manifest file).
const approx::Multiplier* find_multiplier(const std::string& name) {
  for (const approx::Multiplier* m : approx::multiplier_library()) {
    if (m->info().name == name) return m;
  }
  return nullptr;
}

const approx::Adder* find_adder(const std::string& name) {
  for (const approx::Adder* a : approx::adder_library()) {
    if (a->info().name == name) return a;
  }
  return nullptr;
}

}  // namespace

EmulationPlan::~EmulationPlan() {
  // Plan-scoped invalidation: drop cached product tables of multipliers
  // this plan referenced that the component library does not own — their
  // storage may be reused once the caller tears them down, and a stale
  // cache hit on the recycled address would serve the wrong table.
  const std::vector<const approx::Multiplier*>& lib = approx::multiplier_library();
  for (const auto& entry : entries_) {
    const approx::Multiplier* mul = entry.second.unit.mul;
    if (mul == nullptr) continue;
    if (std::find(lib.begin(), lib.end(), mul) == lib.end()) {
      quant::lut_cache_invalidate(mul);
    }
  }
}

void EmulationPlan::set(const std::string& layer, const SiteUnit& unit) {
  for (auto& entry : entries_) {
    if (entry.first == layer) {
      entry.second = unit;
      return;
    }
  }
  entries_.emplace_back(layer, unit);
}

bool EmulationPlan::set_by_name(const std::string& layer, const std::string& multiplier,
                                const std::string& adder, int bits) {
  SiteUnit u;
  u.bits = bits;
  if (!multiplier.empty()) {
    u.unit.mul = find_multiplier(multiplier);
    if (u.unit.mul == nullptr) return false;
  }
  if (!adder.empty()) {
    u.unit.adder = find_adder(adder);
    if (u.unit.adder == nullptr) return false;
  }
  set(layer, u);
  return true;
}

const SiteUnit* EmulationPlan::find(const std::string& layer) const {
  for (const auto& entry : entries_) {
    if (entry.first == layer) return &entry.second;
  }
  return nullptr;
}

std::vector<std::string> EmulationPlan::layers() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.first);
  return out;
}

EmulationScope::EmulationScope(const EmulationPlan& plan) : previous_(g_active_plan) {
  g_active_plan = &plan;
}

EmulationScope::~EmulationScope() { g_active_plan = previous_; }

const EmulationPlan* active_plan() { return g_active_plan; }

const SiteUnit* active_mac_unit(const std::string& layer) {
  return g_active_plan == nullptr ? nullptr : g_active_plan->find(layer);
}

}  // namespace redcane::backend
