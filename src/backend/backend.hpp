// Execution backends: the pluggable "how do we run this network" seam.
//
// Every consumer that evaluates a CapsModel — the sweep engine, the
// serving worker pool, the cross-validation Step 7, benches — drives it
// through an ExecBackend instead of calling CapsModel::infer directly.
// Three implementations cover the repo's execution modes:
//
//   ExactBackend    — the plain float path (no perturbation hook).
//   NoiseBackend    — the paper's noise model: a GaussianInjector hook
//                     realizes per-site NM/NA rules; the per-batch stream
//                     seed derives from base_seed ^ (salt * kSaltMix), the
//                     exact seeding discipline of the sweep engine and the
//                     serving "designed" variant.
//   EmulatedBackend — ground-truth behavioral execution: every planned MAC
//                     layer runs quantized u8 codes through per-layer-call
//                     256x256 multiplier LUTs and (optionally) approximate-
//                     adder accumulation chains (backend/emulation.hpp +
//                     quant/lut_gemm.hpp). No RNG anywhere on this path:
//                     outputs are a pure function of the batch tensor, so
//                     the salt is ignored and served results are trivially
//                     bit-identical across worker/thread counts for a
//                     pinned batch composition.
//
// Determinism contract (all three): run() on the same model and batch
// tensor, with the same salt, returns bit-identical outputs regardless of
// which thread calls it, how many workers run concurrently, and which
// SIMD dispatch target the GEMM core selected.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "backend/emulation.hpp"
#include "capsnet/model.hpp"
#include "noise/injector.hpp"

namespace redcane::backend {

/// Salt mixing constant of every salted noise stream in the codebase:
/// stream seed = base seed ^ (salt * kSaltMix). Defined here (the lowest
/// layer that needs it) and aliased by core::kSaltMix so sweep points,
/// served batches and cross-validation entries all reproduce each other's
/// streams.
inline constexpr std::uint64_t kSaltMix = 0x9E3779B97F4A7C15ULL;

class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  /// Fresh perturbation hook for one batch (null when the backend needs
  /// none). Callers that replay partial forwards (the sweep engine's
  /// prefix cache) drive the hook themselves instead of calling run().
  [[nodiscard]] virtual std::unique_ptr<capsnet::PerturbationHook> make_hook(
      std::uint64_t salt) const;

  /// The injection rules realizing this backend, when it is expressible as
  /// site-rule noise injection (null otherwise). The sweep engine uses
  /// them to find the first network stage a run can perturb.
  [[nodiscard]] virtual const std::vector<noise::InjectionRule>* rules() const;

  /// Runs one inference batch x [N, H, W, C] and returns the class
  /// capsules. Thread-safe for concurrent eval on one model (the
  /// CapsModel::infer contract).
  [[nodiscard]] virtual Tensor run(capsnet::CapsModel& model, const Tensor& x,
                                   std::uint64_t salt) const;
};

/// The plain float path.
class ExactBackend final : public ExecBackend {};

/// The NM/NA noise model injected at rule-matched sites.
class NoiseBackend final : public ExecBackend {
 public:
  NoiseBackend(std::vector<noise::InjectionRule> rules, std::uint64_t base_seed);

  [[nodiscard]] std::unique_ptr<capsnet::PerturbationHook> make_hook(
      std::uint64_t salt) const override;
  [[nodiscard]] const std::vector<noise::InjectionRule>* rules() const override;

 private:
  std::vector<noise::InjectionRule> rules_;
  std::uint64_t base_seed_;
};

/// Behavioral emulation of the planned MAC datapaths.
class EmulatedBackend final : public ExecBackend {
 public:
  explicit EmulatedBackend(EmulationPlan plan);

  [[nodiscard]] Tensor run(capsnet::CapsModel& model, const Tensor& x,
                           std::uint64_t salt) const override;

  [[nodiscard]] const EmulationPlan& plan() const { return plan_; }

 private:
  EmulationPlan plan_;
};

}  // namespace redcane::backend
