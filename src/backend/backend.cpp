#include "backend/backend.hpp"

namespace redcane::backend {

std::unique_ptr<capsnet::PerturbationHook> ExecBackend::make_hook(std::uint64_t) const {
  return nullptr;
}

const std::vector<noise::InjectionRule>* ExecBackend::rules() const { return nullptr; }

Tensor ExecBackend::run(capsnet::CapsModel& model, const Tensor& x,
                        std::uint64_t salt) const {
  const std::unique_ptr<capsnet::PerturbationHook> hook = make_hook(salt);
  return model.infer(x, hook.get());
}

NoiseBackend::NoiseBackend(std::vector<noise::InjectionRule> rules, std::uint64_t base_seed)
    : rules_(std::move(rules)), base_seed_(base_seed) {}

std::unique_ptr<capsnet::PerturbationHook> NoiseBackend::make_hook(std::uint64_t salt) const {
  if (rules_.empty()) return nullptr;
  return std::make_unique<noise::GaussianInjector>(rules_, base_seed_ ^ (salt * kSaltMix));
}

const std::vector<noise::InjectionRule>* NoiseBackend::rules() const { return &rules_; }

EmulatedBackend::EmulatedBackend(EmulationPlan plan) : plan_(std::move(plan)) {}

Tensor EmulatedBackend::run(capsnet::CapsModel& model, const Tensor& x,
                            std::uint64_t /*salt*/) const {
  // Arm the plan for this thread only: the layer forwards below us consult
  // it by name, and concurrent workers running other backends on the same
  // model instance are unaffected.
  const EmulationScope scope(plan_);
  return model.infer(x, nullptr);
}

}  // namespace redcane::backend
