#include "noise/range_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace redcane::noise {

stats::Moments SiteRecord::moments() const {
  stats::Moments m;
  m.count = count;
  if (count == 0) return m;
  m.mean = sum / static_cast<double>(count);
  const double var = std::max(0.0, sum_sq / static_cast<double>(count) - m.mean * m.mean);
  m.stddev = std::sqrt(var);
  m.min = min;
  m.max = max;
  return m;
}

RangeRecorder::RangeRecorder(std::size_t reservoir_per_site, std::uint64_t seed)
    : cap_(reservoir_per_site), rng_(seed) {}

void RangeRecorder::process(const std::string& layer, capsnet::OpKind kind, Tensor& x) {
  SiteRecord& rec = records_[SiteKey{layer, kind}];
  for (float v : x.data()) {
    if (rec.count == 0) {
      rec.min = v;
      rec.max = v;
    } else {
      rec.min = std::min(rec.min, static_cast<double>(v));
      rec.max = std::max(rec.max, static_cast<double>(v));
    }
    rec.sum += v;
    rec.sum_sq += static_cast<double>(v) * v;
    ++rec.count;
    // Vitter's algorithm R reservoir sampling.
    if (rec.reservoir.size() < cap_) {
      rec.reservoir.push_back(v);
    } else {
      const std::uint64_t j = rng_.uniform_index(static_cast<std::uint64_t>(rec.count));
      if (j < cap_) rec.reservoir[static_cast<std::size_t>(j)] = v;
    }
  }
}

const SiteRecord& RangeRecorder::record(const std::string& layer,
                                        capsnet::OpKind kind) const {
  const auto it = records_.find(SiteKey{layer, kind});
  if (it == records_.end()) {
    std::fprintf(stderr, "redcane::noise fatal: no record for site %s/%s\n", layer.c_str(),
                 capsnet::op_kind_name(kind));
    std::abort();
  }
  return it->second;
}

std::vector<float> RangeRecorder::pooled_samples(capsnet::OpKind kind) const {
  std::vector<float> out;
  for (const auto& [key, rec] : records_) {
    if (key.kind != kind) continue;
    out.insert(out.end(), rec.reservoir.begin(), rec.reservoir.end());
  }
  return out;
}

}  // namespace redcane::noise
