// The paper's noise-injection model (Sec. III-C, Eq. 3-4):
//
//   ΔX = Gauss(shape, NM * R(X)) + NA * R(X)
//   X' = X + ΔX
//
// where R(X) = max(X) - min(X) is the dynamic range of the tensor being
// perturbed. NM (noise magnitude) and NA (noise average) are the range-
// relative std and mean of the approximate component's arithmetic error.
#pragma once

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace redcane::noise {

/// Range-relative Gaussian noise parameters.
struct NoiseSpec {
  double nm = 0.0;  ///< std(Δ) / R(X).
  double na = 0.0;  ///< mean(Δ) / R(X).

  [[nodiscard]] bool is_zero() const { return nm == 0.0 && na == 0.0; }
};

/// Applies Eq. 3-4 in place. The range R(X) is computed from the tensor
/// itself, exactly as the paper's TensorFlow graph node does. A constant
/// tensor (R = 0) receives no noise.
void inject_noise(Tensor& x, const NoiseSpec& spec, Rng& rng);

}  // namespace redcane::noise
