#include "noise/injector.hpp"

namespace redcane::noise {

GaussianInjector::GaussianInjector(std::vector<InjectionRule> rules, std::uint64_t seed)
    : rules_(std::move(rules)), rng_(seed) {}

void GaussianInjector::process(const std::string& layer, capsnet::OpKind kind, Tensor& x) {
  ++sites_visited_;
  for (const InjectionRule& rule : rules_) {
    if (!rule.matches(layer, kind)) continue;
    if (!rule.noise.is_zero()) {
      inject_noise(x, rule.noise, rng_);
      ++injections_;
    }
    return;  // First matching rule wins.
  }
}

InjectionRule group_rule(capsnet::OpKind kind, const NoiseSpec& noise) {
  InjectionRule r;
  r.kind = kind;
  r.noise = noise;
  return r;
}

InjectionRule layer_rule(capsnet::OpKind kind, std::string layer, const NoiseSpec& noise) {
  InjectionRule r;
  r.kind = kind;
  r.layer = std::move(layer);
  r.noise = noise;
  return r;
}

}  // namespace redcane::noise
