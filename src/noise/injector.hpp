// GaussianInjector: the PerturbationHook that realizes the paper's
// "specialized node for the noise injection" (Sec. V-B). Rules select
// which (layer, operation-kind) sites are perturbed; matching sites get
// Eq. 3-4 noise from a deterministic per-hook random stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capsnet/inject.hpp"
#include "noise/noise_model.hpp"

namespace redcane::noise {

/// A site-selection rule. Empty optionals match everything, so
/// {kind=kSoftmax} perturbs the whole softmax group (Step 2) and
/// {kind=kMacOutput, layer="Caps2D7"} perturbs one layer of one group
/// (Step 4).
struct InjectionRule {
  std::optional<capsnet::OpKind> kind;
  std::optional<std::string> layer;
  NoiseSpec noise;

  [[nodiscard]] bool matches(const std::string& site_layer, capsnet::OpKind site_kind) const {
    if (kind.has_value() && *kind != site_kind) return false;
    if (layer.has_value() && *layer != site_layer) return false;
    return true;
  }
};

class GaussianInjector final : public capsnet::PerturbationHook {
 public:
  GaussianInjector(std::vector<InjectionRule> rules, std::uint64_t seed);

  void process(const std::string& layer, capsnet::OpKind kind, Tensor& x) override;

  /// Number of tensors actually perturbed so far.
  [[nodiscard]] std::int64_t injections() const { return injections_; }

  /// Number of sites visited (perturbed or not) — the exploration-cost
  /// unit of the paper's Step-4 pruning argument (DESIGN.md D3).
  [[nodiscard]] std::int64_t sites_visited() const { return sites_visited_; }

 private:
  std::vector<InjectionRule> rules_;
  Rng rng_;
  std::int64_t injections_ = 0;
  std::int64_t sites_visited_ = 0;
};

/// Convenience rule builders.
[[nodiscard]] InjectionRule group_rule(capsnet::OpKind kind, const NoiseSpec& noise);
[[nodiscard]] InjectionRule layer_rule(capsnet::OpKind kind, std::string layer,
                                       const NoiseSpec& noise);

}  // namespace redcane::noise
