// QuantizeHook: a PerturbationHook that emulates a b-bit fixed-point
// datapath by round-tripping selected tensors through the min-max
// quantizer (paper Eq. 1).
//
// This powers the D4 ablation (DESIGN.md): the paper adopts an 8-bit
// wordlength citing [17]; sweeping b shows where accuracy actually starts
// to fall on our benchmarks.
#pragma once

#include <cstdint>
#include <optional>

#include "capsnet/inject.hpp"

namespace redcane::noise {

class QuantizeHook final : public capsnet::PerturbationHook {
 public:
  /// Quantizes every tensor of `kind` (all kinds when nullopt) to `bits`.
  explicit QuantizeHook(int bits, std::optional<capsnet::OpKind> kind = std::nullopt);

  void process(const std::string& layer, capsnet::OpKind kind, Tensor& x) override;

  [[nodiscard]] std::int64_t tensors_quantized() const { return count_; }

 private:
  int bits_;
  std::optional<capsnet::OpKind> kind_;
  std::int64_t count_ = 0;
};

}  // namespace redcane::noise
