// RangeRecorder: an observing PerturbationHook that captures per-site
// value statistics during clean inference. It powers
//   * Fig. 11 — the input-distribution study of the DeepCaps convolutions
//     (histograms of quantized activation values, per layer), and
//   * the "real" input pools of Table IV — empirical 8-bit operand
//     samples handed to the error profiler.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capsnet/inject.hpp"
#include "tensor/random.hpp"
#include "tensor/stats.hpp"

namespace redcane::noise {

/// Key identifying one observation site.
struct SiteKey {
  std::string layer;
  capsnet::OpKind kind;

  bool operator<(const SiteKey& o) const {
    if (layer != o.layer) return layer < o.layer;
    return static_cast<int>(kind) < static_cast<int>(o.kind);
  }
};

/// Streaming per-site statistics plus a reservoir of raw values.
struct SiteRecord {
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::int64_t count = 0;
  std::vector<float> reservoir;

  [[nodiscard]] stats::Moments moments() const;
};

class RangeRecorder final : public capsnet::PerturbationHook {
 public:
  /// `reservoir_per_site` caps the raw samples kept per site (uniform
  /// reservoir sampling keeps them unbiased).
  explicit RangeRecorder(std::size_t reservoir_per_site = 100000, std::uint64_t seed = 99);

  void process(const std::string& layer, capsnet::OpKind kind, Tensor& x) override;

  [[nodiscard]] const std::map<SiteKey, SiteRecord>& records() const { return records_; }

  /// Record for a site; aborts if the site was never observed.
  [[nodiscard]] const SiteRecord& record(const std::string& layer, capsnet::OpKind kind) const;

  /// Pooled reservoir samples of every site of the given kind (e.g. all
  /// activation tensors = all convolution inputs).
  [[nodiscard]] std::vector<float> pooled_samples(capsnet::OpKind kind) const;

 private:
  std::size_t cap_;
  Rng rng_;
  std::map<SiteKey, SiteRecord> records_;
};

}  // namespace redcane::noise
