#include "noise/quantize_hook.hpp"

#include "quant/quantizer.hpp"

namespace redcane::noise {

QuantizeHook::QuantizeHook(int bits, std::optional<capsnet::OpKind> kind)
    : bits_(bits), kind_(kind) {}

void QuantizeHook::process(const std::string& layer, capsnet::OpKind kind, Tensor& x) {
  (void)layer;
  if (kind_.has_value() && *kind_ != kind) return;
  x = quant::quantize_dequantize(x, bits_);
  ++count_;
}

}  // namespace redcane::noise
