#include "noise/noise_model.hpp"

#include <cstdint>

#include "tensor/stats.hpp"
#include "tensor/workspace.hpp"

namespace redcane::noise {

void inject_noise(Tensor& x, const NoiseSpec& spec, Rng& rng) {
  if (spec.is_zero() || x.empty()) return;
  const stats::Moments m = stats::moments(x);
  const double range = m.range();
  if (range <= 0.0) return;
  const double stddev = spec.nm * range;
  const double mean = spec.na * range;
  // The RNG stream is inherently sequential (and its draw order is the
  // reproducibility contract of every sweep), so draws are staged into an
  // arena buffer first and the application sweep vectorizes separately.
  // Same draws, same adds, same results as the fused loop.
  const std::size_t count = static_cast<std::size_t>(x.numel());
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  float* delta = wksp.alloc<float>(count);
  for (std::size_t i = 0; i < count; ++i) {
    delta[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  float* xd = x.data().data();
#pragma omp simd
  for (std::size_t i = 0; i < count; ++i) xd[i] += delta[i];
}

}  // namespace redcane::noise
