#include "noise/noise_model.hpp"

#include "tensor/stats.hpp"

namespace redcane::noise {

void inject_noise(Tensor& x, const NoiseSpec& spec, Rng& rng) {
  if (spec.is_zero() || x.empty()) return;
  const stats::Moments m = stats::moments(x);
  const double range = m.range();
  if (range <= 0.0) return;
  const double stddev = spec.nm * range;
  const double mean = spec.na * range;
  for (float& v : x.data()) v += static_cast<float>(rng.normal(mean, stddev));
}

}  // namespace redcane::noise
