#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tensor/gemm.hpp"

namespace redcane::ops {
namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "redcane::ops fatal: %s\n", what);
  std::abort();
}

void check_same_shape(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) fail("shape mismatch");
}

/// Normalizes one softmax lane in place (max-shifted exp over `extent`
/// elements spaced `stride` apart). kStride == 0 means runtime stride;
/// the kStride == 1 instantiation is the contiguous fast path (softmax
/// over the last axis — dynamic routing's coupling coefficients take it
/// every iteration), where the compile-time unit stride lets the simd
/// pragmas vectorize the scans.
template <std::int64_t kStride>
void softmax_lane(float* lane, std::int64_t extent, std::int64_t stride_arg) {
  const std::int64_t stride = kStride == 0 ? stride_arg : kStride;
  float mx = -std::numeric_limits<float>::infinity();
#pragma omp simd reduction(max : mx)
  for (std::int64_t e = 0; e < extent; ++e) mx = std::max(mx, lane[e * stride]);
  float denom = 0.0F;
  for (std::int64_t e = 0; e < extent; ++e) {
    float& v = lane[e * stride];
    v = std::exp(v - mx);
    denom += v;
  }
#pragma omp simd
  for (std::int64_t e = 0; e < extent; ++e) lane[e * stride] /= denom;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] += bd[i];
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] -= bd[i];
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] *= bd[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  for (float& v : c.data()) v *= s;
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) ad[i] += bd[i];
}

void scale_inplace(Tensor& a, float s) {
  for (float& v : a.data()) v *= s;
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor c = a;
  for (float& v : c.data()) v = f(v);
  return c;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  // Delegates to the blocked GEMM core. The previous hand loop skipped
  // a[i,k] == 0 contributions, silently dropping 0 * NaN / 0 * Inf; the
  // core has no such shortcut.
  return gemm::matmul(a, b);
}

Tensor softmax(const Tensor& a, std::int64_t axis) {
  const std::size_t ax = a.shape().normalize_axis(axis);
  const std::int64_t extent = a.shape().dim(static_cast<std::int64_t>(ax));
  const std::int64_t stride = a.shape().stride(static_cast<std::int64_t>(ax));
  const std::int64_t numel = a.numel();
  const std::int64_t block = extent * stride;
  Tensor c = a;
  auto cd = c.data();
  const std::int64_t blocks = block == 0 ? 0 : numel / block;
  // Lanes are independent; each is normalized by one thread, so the result
  // does not depend on the thread count.
  if (stride == 1) {
#pragma omp parallel for schedule(static) if (blocks >= 2 && numel >= 4096)
    for (std::int64_t blk = 0; blk < blocks; ++blk) {
      softmax_lane<1>(&cd[static_cast<std::size_t>(blk * extent)], extent, 1);
    }
    return c;
  }
#pragma omp parallel for schedule(static) if (blocks >= 2 && numel >= 4096)
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    const std::int64_t base = blk * block;
    for (std::int64_t off = 0; off < stride; ++off) {
      // One softmax lane: elements base+off, base+off+stride, ...
      softmax_lane<0>(&cd[static_cast<std::size_t>(base + off)], extent, stride);
    }
  }
  return c;
}

double sum(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += v;
  return s;
}

std::vector<std::int64_t> argmax_last_axis(const Tensor& a) {
  if (a.shape().rank() == 0) fail("argmax requires rank >= 1");
  const std::int64_t last = a.shape().dim(-1);
  const std::int64_t rows = a.numel() / last;
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  const auto ad = a.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t best = 0;
    float best_v = ad[static_cast<std::size_t>(r * last)];
    for (std::int64_t j = 1; j < last; ++j) {
      const float v = ad[static_cast<std::size_t>(r * last + j)];
      if (v > best_v) {
        best_v = v;
        best = j;
      }
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

Tensor l2_norm_last_axis(const Tensor& a) {
  if (a.shape().rank() == 0) fail("l2_norm requires rank >= 1");
  const std::int64_t last = a.shape().dim(-1);
  const std::int64_t rows = a.numel() / last;
  Tensor out(a.shape().without_axis(-1));
  const auto ad = a.data();
  auto od = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (std::int64_t j = 0; j < last; ++j) {
      const float v = ad[static_cast<std::size_t>(r * last + j)];
      s += static_cast<double>(v) * v;
    }
    od[static_cast<std::size_t>(r)] = static_cast<float>(std::sqrt(s));
  }
  return out;
}

Tensor gaussian(const Shape& shape, double mean, double stddev, Rng& rng) {
  Tensor t(shape);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor uniform(const Shape& shape, double lo, double hi, Rng& rng) {
  Tensor t(shape);
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

}  // namespace redcane::ops
