#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace redcane::stats {
namespace {

template <typename T>
Moments moments_impl(std::span<const T> xs) {
  Moments m;
  m.count = static_cast<std::int64_t>(xs.size());
  if (xs.empty()) return m;
  double sum = 0.0;
  double mn = xs[0];
  double mx = xs[0];
  for (T x : xs) {
    sum += static_cast<double>(x);
    mn = std::min(mn, static_cast<double>(x));
    mx = std::max(mx, static_cast<double>(x));
  }
  m.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (T x : xs) {
    const double d = static_cast<double>(x) - m.mean;
    var += d * d;
  }
  m.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  m.min = mn;
  m.max = mx;
  return m;
}

}  // namespace

Moments moments(std::span<const double> xs) { return moments_impl(xs); }
Moments moments(std::span<const float> xs) { return moments_impl(xs); }
Moments moments(const Tensor& t) { return moments_impl(t.data()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    std::fprintf(stderr, "redcane::stats fatal: invalid histogram bounds\n");
    std::abort();
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void Histogram::add(std::span<const float> xs) {
  for (float x : xs) add(static_cast<double>(x));
}

double Histogram::bin_center(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * w;
}

double Histogram::frequency(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::vector<double> gaussian_expected_counts(const Histogram& h, double mean, double stddev,
                                             std::int64_t total) {
  std::vector<double> out(h.bins(), 0.0);
  if (stddev <= 0.0) {
    // Degenerate distribution: all mass in the bucket containing the mean.
    Histogram probe(h.lo(), h.hi(), h.bins());
    probe.add(mean);
    for (std::size_t b = 0; b < h.bins(); ++b) {
      out[b] = static_cast<double>(probe.count(b)) * static_cast<double>(total);
    }
    return out;
  }
  const double w = (h.hi() - h.lo()) / static_cast<double>(h.bins());
  auto cdf = [&](double x) { return 0.5 * (1.0 + std::erf((x - mean) / (stddev * M_SQRT2))); };
  for (std::size_t b = 0; b < h.bins(); ++b) {
    const double left = h.lo() + static_cast<double>(b) * w;
    const double mass = cdf(left + w) - cdf(left);
    out[b] = mass * static_cast<double>(total);
  }
  return out;
}

double gaussian_fit_distance(const Histogram& h, double mean, double stddev) {
  if (h.total() == 0) return 2.0;
  const std::vector<double> expected = gaussian_expected_counts(h, mean, stddev, h.total());
  double l1 = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    const double ef = expected[b] / static_cast<double>(h.total());
    l1 += std::abs(h.frequency(b) - ef);
  }
  return l1;
}

}  // namespace redcane::stats
