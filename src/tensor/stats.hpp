// Descriptive statistics used across ReD-CaNe: tensor ranges for the
// noise-magnitude definition (NM = std/R, NA = mean/R), Gaussian moment
// fits for approximate-multiplier error profiles (Fig. 6), and histograms
// for the input-distribution study (Fig. 11).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace redcane::stats {

/// First and second moments plus extrema of a sample.
struct Moments {
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  double min = 0.0;
  double max = 0.0;
  std::int64_t count = 0;

  /// Dynamic range R = max - min, the normalizer in the paper's NM/NA.
  [[nodiscard]] double range() const { return max - min; }
};

/// Computes moments of a raw sample. Empty input yields all-zero Moments.
[[nodiscard]] Moments moments(std::span<const double> xs);
[[nodiscard]] Moments moments(std::span<const float> xs);
[[nodiscard]] Moments moments(const Tensor& t);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; out-of-range
/// samples are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(std::span<const double> xs);
  void add(std::span<const float> xs);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::int64_t count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] std::int64_t total() const { return total_; }

  /// Center of a bucket.
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Fraction of mass in a bucket (0 when empty).
  [[nodiscard]] double frequency(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Expected counts of a Gaussian(mean, stddev) over the histogram's
/// buckets, scaled to `total` samples — the "Gaussian interpolation"
/// overlay of the paper's Fig. 6.
[[nodiscard]] std::vector<double> gaussian_expected_counts(const Histogram& h, double mean,
                                                           double stddev, std::int64_t total);

/// Two-sample goodness measure: normalized L1 distance between histogram
/// frequencies and the Gaussian fit in [0, 2] (0 = identical). Used to
/// decide whether a multiplier's error profile is "Gaussian-like"
/// (31 of 35 components in the paper).
[[nodiscard]] double gaussian_fit_distance(const Histogram& h, double mean, double stddev);

}  // namespace redcane::stats
