#include "tensor/shape.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcane {
namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "redcane::Shape fatal: %s\n", what);
  std::abort();
}

}  // namespace

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  if (dims.size() > kMaxRank) fail("rank exceeds kMaxRank");
  for (std::int64_t d : dims) {
    if (d < 0) fail("negative dimension extent");
    dims_[rank_++] = d;
  }
}

std::size_t Shape::normalize_axis(std::int64_t axis) const {
  const auto r = static_cast<std::int64_t>(rank_);
  if (axis < 0) axis += r;
  if (axis < 0 || axis >= r) fail("axis out of range");
  return static_cast<std::size_t>(axis);
}

std::int64_t Shape::dim(std::int64_t axis) const {
  return dims_[normalize_axis(axis)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

std::int64_t Shape::stride(std::int64_t axis) const {
  const std::size_t a = normalize_axis(axis);
  std::int64_t s = 1;
  for (std::size_t i = a + 1; i < rank_; ++i) s *= dims_[i];
  return s;
}

void Shape::push_back(std::int64_t extent) {
  if (rank_ == kMaxRank) fail("rank exceeds kMaxRank");
  if (extent < 0) fail("negative dimension extent");
  dims_[rank_++] = extent;
}

Shape Shape::without_axis(std::int64_t axis) const {
  const std::size_t a = normalize_axis(axis);
  Shape out;
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i != a) out.push_back(dims_[i]);
  }
  return out;
}

Shape Shape::with_appended(std::int64_t extent) const {
  Shape out = *this;
  out.push_back(extent);
  return out;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (std::size_t i = 0; i < rank_; ++i) {
    if (dims_[i] != other.dims_[i]) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i != 0) s += ", ";
    s += std::to_string(dims_[i]);
  }
  s += "]";
  return s;
}

}  // namespace redcane
