// Runtime-dispatched SIMD microkernels: the register-blocked inner loops
// of the GEMM core (tensor/gemm.cpp).
//
// Three targets, selected once per process from cpuid:
//  * kAvx2   — AVX2 + FMA, 6x16 register tile (12 ymm accumulators).
//  * kSse    — 128-bit FMA (AVX-encoded), 6x16 tile walked in 4-column
//              groups; the mid tier for FMA-but-not-AVX2 hardware.
//  * kScalar — portable fallback built on std::fmaf (correctly-rounded
//              fused multiply-add everywhere, a single instruction on FMA
//              hardware, soft-float libm on pre-FMA machines).
//
// Bit-identity contract: every target computes every C element as ONE
// fused-multiply-add chain in ascending k —
//     c = fma(a[i,k-1], b[k-1,j], ... fma(a[i,1], b[1,j],
//             fma(a[i,0], b[0,j], c)))
// Vector width never reassociates the chain (lanes are distinct C
// elements), k-blocking continues it exactly (float load/store round
// trips are value-preserving), and zero-padded pack tails append
// fma(0, 0, acc) only to lanes that are never stored. The outcome: for a
// fixed blocking, gemm results are bit-identical across kScalar, kSse and
// kAvx2, which is what lets the sweep engine's prefix-cache replay and
// the serving runtime's worker-count identity guarantees survive dispatch
// (tests/test_microkernel.cpp asserts the agreement).
//
// Overriding dispatch: set REDCANE_GEMM_KERNEL=scalar|sse|avx2 before the
// first GEMM, or call force() (tests). Forcing an unsupported target
// fails rather than faulting on an illegal instruction.
#pragma once

#include <cstdint>

namespace redcane::gemm::mk {

/// Register-tile extents shared by every target (pack layouts depend on
/// them, and keeping them target-independent is what makes the blocking —
/// and therefore the results — identical across dispatch).
inline constexpr std::int64_t kMR = 6;
inline constexpr std::int64_t kNR = 16;

enum class Target : int { kScalar = 0, kSse = 1, kAvx2 = 2 };

/// One dispatch table entry.
struct KernelOps {
  Target target;
  const char* name;  ///< "scalar" | "sse" | "avx2".

  /// C[kMR, kNR] (leading dimension ldc) += Apack * Bpack, where
  /// Apack is [kc, kMR] (a[kk*kMR + r]) and Bpack is [kc, kNR]
  /// (b[kk*kNR + j]). Loads C, runs the fma chains, stores C. The caller
  /// stages partial tiles through a zero-padded kMR x kNR buffer.
  void (*tile)(std::int64_t kc, const float* apack, const float* bpack, float* c,
               std::int64_t ldc);

  /// C[m, n] += A[m, k] * B[k, n], all row-major and unblocked — the
  /// kernel behind gemm_batched_f32's small per-item products (routing
  /// blocks). Same per-element fma-chain contract; n == 1 runs a scalar
  /// fmaf dot chain on every target.
  void (*small)(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                const float* b, float* c);
};

/// The selected table (resolved on first use: REDCANE_GEMM_KERNEL env
/// override if set and supported, else the best cpuid-supported target).
const KernelOps& active();

/// True if this machine can run `t`.
bool supported(Target t);

/// Repoints dispatch at `t` for the rest of the process (tests and the
/// scalar-vs-SIMD bench). Returns false (and leaves dispatch unchanged)
/// if `t` is unsupported here. Not thread-safe against in-flight GEMMs.
bool force(Target t);

}  // namespace redcane::gemm::mk
