// Blocked GEMM kernels: the single compute core behind every matmul and
// (via nn/im2col) every convolution in the codebase.
//
// Two kernels live here:
//  * gemm_f32 — cache-blocked, OpenMP-parallel float GEMM with optional
//    operand transposes and accumulation (beta). The inner loops are the
//    runtime-dispatched SIMD microkernels of tensor/microkernel.hpp
//    (AVX2+FMA 6x16 register tile, with SSE-FMA and scalar-fmaf
//    fallbacks); operands are packed into tile-strip panels from the
//    per-thread workspace arena, so steady-state calls never allocate.
//    No zero-skip shortcuts: 0 * NaN and 0 * Inf propagate per IEEE
//    semantics, unlike the naive loops this core replaced.
//  * gemm_u8_lut — integer GEMM over 8-bit quantization codes whose inner
//    product is routed through a caller-built 256x256 product table (one
//    table build per layer call instead of one virtual multiplier call per
//    code pair). It also emits the per-row/per-column code sums and tap
//    counts the affine dequantization needs.
//
// Determinism: every float C element is one fused-multiply-add chain in
// ascending k, owned by one thread — results are bit-identical across
// thread counts AND across dispatch targets (microkernel.hpp has the full
// contract). Swapping in another backend preserves every consumer.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace redcane::gemm {

/// C[m, n] = op(A) * op(B) + beta * C, all row-major.
/// op(A) is A [m, k] when trans_a is false, else A is stored [k, m].
/// op(B) is B [k, n] when trans_b is false, else B is stored [n, k].
/// beta must be 0 (overwrite) or 1 (accumulate into C).
void gemm_f32(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
              const float* a, const float* b, float beta, float* c);

/// Rank-2 tensor convenience wrapper: returns op(A) * op(B).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
                            bool trans_b = false);

/// Batched strided GEMM: for every p in [0, batch)
///   C_p[m, n] = A_p[m, k] * B_p[k, n] + beta * C_p,  X_p = x + p * stride_x,
/// all row-major, no transposes, beta 0 (overwrite) or 1 (accumulate).
/// A stride of 0 broadcasts one operand across the batch. Batch items run
/// in parallel; within an item the contraction accumulates in ascending k,
/// so results are bit-identical across thread counts. This is the kernel
/// behind dynamic routing's weighted sum / agreement update, where the
/// batch dimension is (batch row x output capsule).
void gemm_batched_f32(std::int64_t batch, std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, std::int64_t stride_a, const float* b,
                      std::int64_t stride_b, float beta, float* c, std::int64_t stride_c);

/// Integer GEMM over u8 codes with a per-tap validity mask.
///
/// A is [m, k] codes with mask [m, k] (1 = real tap, 0 = padding; a null
/// mask means every tap is valid); B is [k, n] codes (always valid). For
/// every output (i, j) and every valid tap kk it accumulates:
///   acc_qq[i*n+j] += lut[A[i,kk] * 256 + B[kk,j]]   (approximate product)
///   acc_qw[i*n+j] += B[kk,j]                        (weight-code sum)
/// and per row:
///   acc_qa[i] += A[i,kk], taps[i] += 1.
/// These are exactly the four accumulators of the affine-quantized
/// convolution expansion (see quant/lut_gemm.hpp). All output buffers
/// are overwritten.
void gemm_u8_lut(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                 const std::uint8_t* a_mask, const std::uint8_t* b, const std::uint32_t* lut,
                 std::uint64_t* acc_qq, std::uint64_t* acc_qw, std::uint64_t* acc_qa,
                 std::int64_t* taps);

/// Abstract 32-bit accumulate operation: the seam through which the
/// LUT-accumulate kernel below runs its product sums on a behavioral
/// approximate adder without tensor/ depending on approx/ (the adapter
/// over approx::Adder lives in quant/lut_gemm.cpp).
class U32Accum {
 public:
  virtual ~U32Accum() = default;
  [[nodiscard]] virtual std::uint32_t add(std::uint32_t a, std::uint32_t b) const = 0;
};

/// gemm_u8_lut with the product accumulation routed through `accum` as one
/// left-to-right chain in ascending k per output element — the emulated
/// accumulator datapath of a MAC array (approx/mac_chain.hpp semantics at
/// GEMM scale). Cross-term code sums (acc_qw/acc_qa/taps) stay exact: they
/// belong to the affine dequantization bookkeeping, not to the hardware
/// accumulator being modeled. Each output element is owned by one thread
/// and its chain order is fixed, so results are bit-identical across
/// thread counts. With an exact `accum`, acc_qq equals the gemm_u8_lut
/// sums whenever they fit 32 bits (8-bit codes: k up to ~65k taps).
void gemm_u8_lut_chain(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                       const std::uint8_t* a_mask, const std::uint8_t* b,
                       const std::uint32_t* lut, const U32Accum& accum, std::uint32_t* acc_qq,
                       std::uint64_t* acc_qw, std::uint64_t* acc_qa, std::int64_t* taps);

}  // namespace redcane::gemm
