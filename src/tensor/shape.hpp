// Shape: dimension vector and index arithmetic for row-major tensors.
//
// Part of the tensor substrate of the ReD-CaNe reproduction. Shapes are
// small value types (at most kMaxRank dimensions) with O(rank) operations.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace redcane {

/// Maximum tensor rank supported by the library. CapsNet inference needs at
/// most rank 6 (e.g. [N, H, W, caps, dim, routing]); 8 leaves headroom.
inline constexpr std::size_t kMaxRank = 8;

/// A tensor shape: an ordered list of dimension extents.
///
/// Invariant: every dimension extent is >= 0; rank() <= kMaxRank.
/// A rank-0 shape denotes a scalar with numel() == 1.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);

  /// Number of dimensions.
  [[nodiscard]] std::size_t rank() const { return rank_; }

  /// Extent of dimension `axis`. Negative axes count from the back
  /// (-1 is the last axis), mirroring NumPy semantics.
  [[nodiscard]] std::int64_t dim(std::int64_t axis) const;

  /// Total number of elements (product of extents; 1 for rank 0).
  [[nodiscard]] std::int64_t numel() const;

  /// Row-major stride of dimension `axis` (in elements).
  [[nodiscard]] std::int64_t stride(std::int64_t axis) const;

  /// Appends one dimension at the end. Aborts if rank would exceed kMaxRank.
  void push_back(std::int64_t extent);

  /// Returns a shape equal to this one with `axis` removed.
  [[nodiscard]] Shape without_axis(std::int64_t axis) const;

  /// Returns a shape equal to this one with `extent` appended.
  [[nodiscard]] Shape with_appended(std::int64_t extent) const;

  /// Normalizes a possibly-negative axis into [0, rank). Aborts when out of
  /// range: axis errors are programming errors, not runtime conditions.
  [[nodiscard]] std::size_t normalize_axis(std::int64_t axis) const;

  [[nodiscard]] bool operator==(const Shape& other) const;
  [[nodiscard]] bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "[2, 3, 4]".
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace redcane
