#include "tensor/microkernel.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define REDCANE_MK_X86 1
#include <immintrin.h>
#else
#define REDCANE_MK_X86 0
#endif

namespace redcane::gemm::mk {
namespace {

// ------------------------------------------------------------- scalar body
// The semantic reference for every target: per C element, one fmaf chain
// in ascending k. The SIMD targets are this exact computation with lanes
// laid across j (tile/small) — never across k, which would reassociate.
// always_inline lets the avx2/sse wrappers below recompile this body under
// their target attributes, where GCC expands fmaf to hardware FMA and
// auto-vectorizes the j loops.

__attribute__((always_inline)) inline void tile_body(std::int64_t kc, const float* apack,
                                                     const float* bpack, float* c,
                                                     std::int64_t ldc) {
  float acc[kMR][kNR];
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t j = 0; j < kNR; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = apack + kk * kMR;
    const float* brow = bpack + kk * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float a = arow[r];
      for (std::int64_t j = 0; j < kNR; ++j) {
        acc[r][j] = std::fmaf(a, brow[j], acc[r][j]);
      }
    }
  }
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

__attribute__((always_inline)) inline void small_body(std::int64_t m, std::int64_t n,
                                                      std::int64_t k, const float* a,
                                                      const float* b, float* c) {
  if (n == 1) {
    // Dot products: a k-lane vector split would reassociate the chain, so
    // every target runs the same scalar chain (k is a capsule dimension
    // <= 16 on this path — routing's agreement update).
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float acc = c[i];
      for (std::int64_t kk = 0; kk < k; ++kk) acc = std::fmaf(arow[kk], b[kk], acc);
      c[i] = acc;
    }
    return;
  }
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] = std::fmaf(aik, brow[j], crow[j]);
    }
  }
}

void tile_scalar(std::int64_t kc, const float* apack, const float* bpack, float* c,
                 std::int64_t ldc) {
  tile_body(kc, apack, bpack, c, ldc);
}

void small_scalar(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                  const float* b, float* c) {
  small_body(m, n, k, a, b, c);
}

#if REDCANE_MK_X86

// ------------------------------------------------------------- AVX2 + FMA
// 6x16 register tile: 12 ymm accumulators + 2 B vectors + 1 A broadcast
// stays inside the 16-register file. One pass over kc does 192 flops per
// 2 B loads + 6 broadcasts.

__attribute__((target("avx2,fma"))) void tile_avx2(std::int64_t kc, const float* apack,
                                                   const float* bpack, float* c,
                                                   std::int64_t ldc) {
  __m256 acc00 = _mm256_loadu_ps(c + 0 * ldc), acc01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  __m256 acc10 = _mm256_loadu_ps(c + 1 * ldc), acc11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  __m256 acc20 = _mm256_loadu_ps(c + 2 * ldc), acc21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 acc30 = _mm256_loadu_ps(c + 3 * ldc), acc31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  __m256 acc40 = _mm256_loadu_ps(c + 4 * ldc), acc41 = _mm256_loadu_ps(c + 4 * ldc + 8);
  __m256 acc50 = _mm256_loadu_ps(c + 5 * ldc), acc51 = _mm256_loadu_ps(c + 5 * ldc + 8);
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bpack + kk * kNR);
    const __m256 b1 = _mm256_loadu_ps(bpack + kk * kNR + 8);
    const float* arow = apack + kk * kMR;
    __m256 a;
    a = _mm256_broadcast_ss(arow + 0);
    acc00 = _mm256_fmadd_ps(a, b0, acc00);
    acc01 = _mm256_fmadd_ps(a, b1, acc01);
    a = _mm256_broadcast_ss(arow + 1);
    acc10 = _mm256_fmadd_ps(a, b0, acc10);
    acc11 = _mm256_fmadd_ps(a, b1, acc11);
    a = _mm256_broadcast_ss(arow + 2);
    acc20 = _mm256_fmadd_ps(a, b0, acc20);
    acc21 = _mm256_fmadd_ps(a, b1, acc21);
    a = _mm256_broadcast_ss(arow + 3);
    acc30 = _mm256_fmadd_ps(a, b0, acc30);
    acc31 = _mm256_fmadd_ps(a, b1, acc31);
    a = _mm256_broadcast_ss(arow + 4);
    acc40 = _mm256_fmadd_ps(a, b0, acc40);
    acc41 = _mm256_fmadd_ps(a, b1, acc41);
    a = _mm256_broadcast_ss(arow + 5);
    acc50 = _mm256_fmadd_ps(a, b0, acc50);
    acc51 = _mm256_fmadd_ps(a, b1, acc51);
  }
  _mm256_storeu_ps(c + 0 * ldc, acc00);
  _mm256_storeu_ps(c + 0 * ldc + 8, acc01);
  _mm256_storeu_ps(c + 1 * ldc, acc10);
  _mm256_storeu_ps(c + 1 * ldc + 8, acc11);
  _mm256_storeu_ps(c + 2 * ldc, acc20);
  _mm256_storeu_ps(c + 2 * ldc + 8, acc21);
  _mm256_storeu_ps(c + 3 * ldc, acc30);
  _mm256_storeu_ps(c + 3 * ldc + 8, acc31);
  _mm256_storeu_ps(c + 4 * ldc, acc40);
  _mm256_storeu_ps(c + 4 * ldc + 8, acc41);
  _mm256_storeu_ps(c + 5 * ldc, acc50);
  _mm256_storeu_ps(c + 5 * ldc + 8, acc51);
}

__attribute__((target("avx2,fma"))) void small_avx2(std::int64_t m, std::int64_t n,
                                                    std::int64_t k, const float* a,
                                                    const float* b, float* c) {
  small_body(m, n, k, a, b, c);  // fmaf j-loops auto-vectorize to vfmaddps.
}

// --------------------------------------------------- 128-bit FMA (SSE tier)
// For FMA-capable hardware without AVX2: the same 6x16 tile walked in four
// 4-column groups, 6 xmm accumulators + B + A broadcast per group.

__attribute__((target("avx,fma"))) void tile_sse(std::int64_t kc, const float* apack,
                                                 const float* bpack, float* c,
                                                 std::int64_t ldc) {
  for (std::int64_t g = 0; g < kNR; g += 4) {
    __m128 acc0 = _mm_loadu_ps(c + 0 * ldc + g);
    __m128 acc1 = _mm_loadu_ps(c + 1 * ldc + g);
    __m128 acc2 = _mm_loadu_ps(c + 2 * ldc + g);
    __m128 acc3 = _mm_loadu_ps(c + 3 * ldc + g);
    __m128 acc4 = _mm_loadu_ps(c + 4 * ldc + g);
    __m128 acc5 = _mm_loadu_ps(c + 5 * ldc + g);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      const __m128 bv = _mm_loadu_ps(bpack + kk * kNR + g);
      const float* arow = apack + kk * kMR;
      acc0 = _mm_fmadd_ps(_mm_broadcast_ss(arow + 0), bv, acc0);
      acc1 = _mm_fmadd_ps(_mm_broadcast_ss(arow + 1), bv, acc1);
      acc2 = _mm_fmadd_ps(_mm_broadcast_ss(arow + 2), bv, acc2);
      acc3 = _mm_fmadd_ps(_mm_broadcast_ss(arow + 3), bv, acc3);
      acc4 = _mm_fmadd_ps(_mm_broadcast_ss(arow + 4), bv, acc4);
      acc5 = _mm_fmadd_ps(_mm_broadcast_ss(arow + 5), bv, acc5);
    }
    _mm_storeu_ps(c + 0 * ldc + g, acc0);
    _mm_storeu_ps(c + 1 * ldc + g, acc1);
    _mm_storeu_ps(c + 2 * ldc + g, acc2);
    _mm_storeu_ps(c + 3 * ldc + g, acc3);
    _mm_storeu_ps(c + 4 * ldc + g, acc4);
    _mm_storeu_ps(c + 5 * ldc + g, acc5);
  }
}

__attribute__((target("avx,fma"))) void small_sse(std::int64_t m, std::int64_t n,
                                                  std::int64_t k, const float* a,
                                                  const float* b, float* c) {
  small_body(m, n, k, a, b, c);
}

#endif  // REDCANE_MK_X86

constexpr KernelOps kScalarOps{Target::kScalar, "scalar", tile_scalar, small_scalar};
#if REDCANE_MK_X86
constexpr KernelOps kSseOps{Target::kSse, "sse", tile_sse, small_sse};
constexpr KernelOps kAvx2Ops{Target::kAvx2, "avx2", tile_avx2, small_avx2};
#endif

const KernelOps* table_for(Target t) {
  switch (t) {
    case Target::kScalar:
      return &kScalarOps;
#if REDCANE_MK_X86
    case Target::kSse:
      return &kSseOps;
    case Target::kAvx2:
      return &kAvx2Ops;
#else
    case Target::kSse:
    case Target::kAvx2:
      break;
#endif
  }
  return nullptr;
}

std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* resolve() {
  if (const char* env = std::getenv("REDCANE_GEMM_KERNEL")) {
    Target want = Target::kScalar;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      want = Target::kScalar;
    } else if (std::strcmp(env, "sse") == 0) {
      want = Target::kSse;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = Target::kAvx2;
    } else {
      known = false;
      std::fprintf(stderr, "redcane::gemm: unknown REDCANE_GEMM_KERNEL '%s', using cpuid\n",
                   env);
    }
    if (known) {
      if (supported(want)) return table_for(want);
      std::fprintf(stderr,
                   "redcane::gemm: REDCANE_GEMM_KERNEL '%s' unsupported on this cpu, "
                   "using cpuid\n",
                   env);
    }
  }
  if (supported(Target::kAvx2)) return table_for(Target::kAvx2);
  if (supported(Target::kSse)) return table_for(Target::kSse);
  return table_for(Target::kScalar);
}

}  // namespace

bool supported(Target t) {
  switch (t) {
    case Target::kScalar:
      return true;
#if REDCANE_MK_X86
    case Target::kSse:
      return __builtin_cpu_supports("avx") && __builtin_cpu_supports("fma");
    case Target::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    case Target::kSse:
    case Target::kAvx2:
      return false;
#endif
  }
  return false;
}

const KernelOps& active() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = resolve();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

bool force(Target t) {
  if (!supported(t)) return false;
  g_active.store(table_for(t), std::memory_order_release);
  return true;
}

}  // namespace redcane::gemm::mk
