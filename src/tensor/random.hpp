// Deterministic random number generation for the ReD-CaNe reproduction.
//
// Every stochastic component (weight init, synthetic datasets, noise
// injection, error profiling) draws from an explicitly seeded Rng so that
// experiments are bit-reproducible run to run. The generator is
// xoshiro256** (Blackman & Vigna), chosen for speed and quality; we do not
// use std::mt19937 because its state is large and its distributions are
// implementation-defined across standard libraries.
#pragma once

#include <cstdint>

namespace redcane {

/// xoshiro256** pseudo-random generator with explicit seeding and
/// portable, implementation-independent distributions.
class Rng {
 public:
  /// Seeds via splitmix64 expansion of `seed` (any value is acceptable).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Forks a statistically independent child stream; used to hand each
  /// injection site / worker its own generator.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace redcane
