#include "tensor/tensor.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

namespace redcane {
namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "redcane::Tensor fatal: %s\n", what);
  std::abort();
}

}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0F) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(shape), data_(std::move(values)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
    fail("value count does not match shape");
  }
}

std::int64_t Tensor::flat_index(std::span<const std::int64_t> idx) const {
  if (idx.size() != shape_.rank()) fail("index rank mismatch");
  std::int64_t flat = 0;
  for (std::size_t a = 0; a < idx.size(); ++a) {
    const std::int64_t extent = shape_.dim(static_cast<std::int64_t>(a));
    if (idx[a] < 0 || idx[a] >= extent) fail("index out of bounds");
    flat = flat * extent + idx[a];
  }
  return flat;
}

float& Tensor::operator()(std::int64_t i0) {
  const std::array<std::int64_t, 1> idx{i0};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::operator()(std::int64_t i0, std::int64_t i1) {
  const std::array<std::int64_t, 2> idx{i0, i1};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
  const std::array<std::int64_t, 3> idx{i0, i1, i2};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3) {
  const std::array<std::int64_t, 4> idx{i0, i1, i2, i3};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3,
                          std::int64_t i4) {
  const std::array<std::int64_t, 5> idx{i0, i1, i2, i3, i4};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::operator()(std::int64_t i0) const {
  return const_cast<Tensor*>(this)->operator()(i0);
}
float Tensor::operator()(std::int64_t i0, std::int64_t i1) const {
  return const_cast<Tensor*>(this)->operator()(i0, i1);
}
float Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) const {
  return const_cast<Tensor*>(this)->operator()(i0, i1, i2);
}
float Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                         std::int64_t i3) const {
  return const_cast<Tensor*>(this)->operator()(i0, i1, i2, i3);
}
float Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3,
                         std::int64_t i4) const {
  return const_cast<Tensor*>(this)->operator()(i0, i1, i2, i3, i4);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel()) fail("reshape changes element count");
  Tensor out = *this;
  out.shape_ = new_shape;
  return out;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

std::string Tensor::to_string() const {
  return "Tensor" + shape_.to_string() + " (" + std::to_string(numel()) + " elements)";
}

}  // namespace redcane
