// Elementwise and linear-algebra primitives on Tensor.
//
// These are the building blocks shared by the NN substrate, the CapsNet
// library and the noise-injection machinery. All functions are pure
// (inputs by const reference, result by value) unless named *_inplace.
#pragma once

#include <cstdint>
#include <functional>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace redcane::ops {

/// c = a + b (shapes must match).
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);

/// c = a - b (shapes must match).
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);

/// c = a * b elementwise (shapes must match).
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);

/// c = a * s.
[[nodiscard]] Tensor scale(const Tensor& a, float s);

/// a += b (shapes must match).
void add_inplace(Tensor& a, const Tensor& b);

/// a *= s.
void scale_inplace(Tensor& a, float s);

/// Applies `f` to every element, returning a new tensor.
[[nodiscard]] Tensor map(const Tensor& a, const std::function<float(float)>& f);

/// Matrix product of [m, k] x [k, n] -> [m, n].
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// Softmax along `axis` (numerically stabilized by max subtraction).
[[nodiscard]] Tensor softmax(const Tensor& a, std::int64_t axis);

/// Sum of all elements.
[[nodiscard]] double sum(const Tensor& a);

/// Index of the maximum element along the last axis, for each slice of the
/// leading axes. Result shape: input shape without the last axis.
[[nodiscard]] std::vector<std::int64_t> argmax_last_axis(const Tensor& a);

/// L2 norms along the last axis. Result shape: input without last axis.
[[nodiscard]] Tensor l2_norm_last_axis(const Tensor& a);

/// Tensor of iid Gaussian samples with the given shape.
[[nodiscard]] Tensor gaussian(const Shape& shape, double mean, double stddev, Rng& rng);

/// Tensor of iid uniform samples in [lo, hi) with the given shape.
[[nodiscard]] Tensor uniform(const Shape& shape, double lo, double hi, Rng& rng);

}  // namespace redcane::ops
