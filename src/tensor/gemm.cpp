#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tensor/microkernel.hpp"
#include "tensor/workspace.hpp"

namespace redcane::gemm {
namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "redcane::gemm fatal: %s\n", what);
  std::abort();
}

// Cache-block extents around the mk::kMR x mk::kNR register tile: an A
// panel (kBlockM x kBlockK = 72 KiB) stays L2-resident per thread while
// each packed B strip (kBlockK x kNR = 12 KiB) streams through L1. All
// three are multiples of the tile so interior blocks never hit the staged
// edge path, and they are dispatch-independent — the blocking (hence the
// result) is identical for every microkernel target.
constexpr std::int64_t kBlockM = 96;   // 16 kMR strips.
constexpr std::int64_t kBlockN = 256;  // 16 kNR strips.
constexpr std::int64_t kBlockK = 192;

/// Packs op(A)[i0:i0+mb, k0:k0+kc] into kMR-row strips: strip s holds
/// apack[(s*kc + kk)*kMR + r] = op(A)[i0 + s*kMR + r, k0 + kk], rows past
/// mb zero-filled so edge tiles run the same full-tile kernel.
void pack_a(float* apack, const float* a, bool trans_a, std::int64_t m, std::int64_t k,
            std::int64_t i0, std::int64_t mb, std::int64_t k0, std::int64_t kc) {
  const std::int64_t strips = (mb + mk::kMR - 1) / mk::kMR;
  for (std::int64_t s = 0; s < strips; ++s) {
    float* dst = apack + s * kc * mk::kMR;
    if (!trans_a) {
      // A is [m, k]: each tile row is a contiguous run of A.
      for (std::int64_t r = 0; r < mk::kMR; ++r) {
        const std::int64_t i = i0 + s * mk::kMR + r;
        if (i < i0 + mb) {
          const float* src = a + i * k + k0;
          for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * mk::kMR + r] = src[kk];
        } else {
          for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * mk::kMR + r] = 0.0F;
        }
      }
    } else {
      // A stored [k, m]: each kk is a contiguous run of kMR rows.
      const std::int64_t i = i0 + s * mk::kMR;
      const std::int64_t valid = std::min<std::int64_t>(mk::kMR, i0 + mb - i);
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* src = a + (k0 + kk) * m + i;
        float* row = dst + kk * mk::kMR;
        for (std::int64_t r = 0; r < valid; ++r) row[r] = src[r];
        for (std::int64_t r = valid; r < mk::kMR; ++r) row[r] = 0.0F;
      }
    }
  }
  (void)m;
}

/// Packs op(B)[k0:k0+kc, j0:j0+nb] into kNR-column strips: strip t holds
/// bpack[(t*kc + kk)*kNR + j] = op(B)[k0 + kk, j0 + t*kNR + j], columns
/// past nb zero-filled.
void pack_b(float* bpack, const float* b, bool trans_b, std::int64_t k, std::int64_t n,
            std::int64_t k0, std::int64_t kc, std::int64_t j0, std::int64_t nb) {
  const std::int64_t strips = (nb + mk::kNR - 1) / mk::kNR;
  for (std::int64_t t = 0; t < strips; ++t) {
    float* dst = bpack + t * kc * mk::kNR;
    const std::int64_t j = j0 + t * mk::kNR;
    const std::int64_t valid = std::min<std::int64_t>(mk::kNR, j0 + nb - j);
    if (!trans_b) {
      // B is [k, n]: each kk is a contiguous run of columns.
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* src = b + (k0 + kk) * n + j;
        float* row = dst + kk * mk::kNR;
        std::memcpy(row, src, static_cast<std::size_t>(valid) * sizeof(float));
        for (std::int64_t jj = valid; jj < mk::kNR; ++jj) row[jj] = 0.0F;
      }
    } else {
      // B stored [n, k]: each column is a contiguous run of B.
      for (std::int64_t jj = 0; jj < mk::kNR; ++jj) {
        if (jj < valid) {
          const float* src = b + (j + jj) * k + k0;
          for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * mk::kNR + jj] = src[kk];
        } else {
          for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * mk::kNR + jj] = 0.0F;
        }
      }
    }
  }
}

}  // namespace

void gemm_f32(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
              const float* a, const float* b, float beta, float* c) {
  if (m < 0 || n < 0 || k < 0) fail("negative gemm extent");
  if (beta != 0.0F && beta != 1.0F) fail("gemm beta must be 0 or 1");
  if (beta == 0.0F) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  if (m == 0 || n == 0 || k == 0) return;
  const mk::KernelOps& ops = mk::active();
  // Row blocks are independent: each C element is owned by one thread and
  // accumulated in a fixed ascending-k fma chain, so results do not depend
  // on the thread count (or, per the microkernel contract, the dispatch
  // target). Packing buffers come from the per-thread workspace arena —
  // steady-state GEMM calls never touch the allocator.
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    ws::Workspace& wksp = ws::Workspace::tls();
    const ws::Workspace::Scope scope(wksp);
    const std::int64_t mb = std::min(kBlockM, m - i0);
    const std::int64_t mstrips = (mb + mk::kMR - 1) / mk::kMR;
    float* apack = wksp.alloc<float>(static_cast<std::size_t>(mstrips * mk::kMR * kBlockK));
    float* bpack = wksp.alloc<float>(
        static_cast<std::size_t>((kBlockN / mk::kNR) * mk::kNR * kBlockK));
    alignas(64) float ctile[mk::kMR * mk::kNR];
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t kc = std::min(kBlockK, k - k0);
      pack_a(apack, a, trans_a, m, k, i0, mb, k0, kc);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t nb = std::min(kBlockN, n - j0);
        const std::int64_t nstrips = (nb + mk::kNR - 1) / mk::kNR;
        pack_b(bpack, b, trans_b, k, n, k0, kc, j0, nb);
        for (std::int64_t t = 0; t < nstrips; ++t) {
          const std::int64_t jt = j0 + t * mk::kNR;
          const std::int64_t jw = std::min(mk::kNR, n - jt);
          const float* bp = bpack + t * kc * mk::kNR;
          for (std::int64_t s = 0; s < mstrips; ++s) {
            const std::int64_t it = i0 + s * mk::kMR;
            const std::int64_t iw = std::min(mk::kMR, i0 + mb - it);
            const float* ap = apack + s * kc * mk::kMR;
            if (iw == mk::kMR && jw == mk::kNR) {
              ops.tile(kc, ap, bp, c + it * n + jt, n);
            } else {
              // Edge tile: stage through a zero-padded full tile so the
              // kernel never reads or writes out of bounds; padded lanes
              // accumulate fma(0, 0, 0) and are discarded.
              std::memset(ctile, 0, sizeof(ctile));
              for (std::int64_t r = 0; r < iw; ++r) {
                std::memcpy(ctile + r * mk::kNR, c + (it + r) * n + jt,
                            static_cast<std::size_t>(jw) * sizeof(float));
              }
              ops.tile(kc, ap, bp, ctile, mk::kNR);
              for (std::int64_t r = 0; r < iw; ++r) {
                std::memcpy(c + (it + r) * n + jt, ctile + r * mk::kNR,
                            static_cast<std::size_t>(jw) * sizeof(float));
              }
            }
          }
        }
      }
    }
  }
}

void gemm_batched_f32(std::int64_t batch, std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, std::int64_t stride_a, const float* b,
                      std::int64_t stride_b, float beta, float* c, std::int64_t stride_c) {
  if (batch < 0 || m < 0 || n < 0 || k < 0) fail("negative batched gemm extent");
  if (beta != 0.0F && beta != 1.0F) fail("batched gemm beta must be 0 or 1");
  if (stride_c == 0 && batch > 1) fail("batched gemm output stride must not broadcast");
  const mk::KernelOps& ops = mk::active();
#pragma omp parallel for schedule(static) if (batch >= 2)
  for (std::int64_t p = 0; p < batch; ++p) {
    const float* ap = a + p * stride_a;
    const float* bp = b + p * stride_b;
    float* cp = c + p * stride_c;
    if (beta == 0.0F) std::memset(cp, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    // Batch items are small (routing blocks): no cache blocking, just the
    // dispatched unblocked kernel. Each element's contraction is one fma
    // chain in ascending k, so results are bit-identical across thread
    // counts and dispatch targets.
    ops.small(m, n, k, ap, bp, cp);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) fail("matmul expects rank-2 tensors");
  const std::int64_t m = a.shape().dim(trans_a ? 1 : 0);
  const std::int64_t ka = a.shape().dim(trans_a ? 0 : 1);
  const std::int64_t kb = b.shape().dim(trans_b ? 1 : 0);
  const std::int64_t n = b.shape().dim(trans_b ? 0 : 1);
  if (ka != kb) fail("matmul inner dimension mismatch");
  Tensor c(Shape{m, n});
  gemm_f32(trans_a, trans_b, m, n, ka, a.data().data(), b.data().data(), 0.0F,
           c.data().data());
  return c;
}

void gemm_u8_lut(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                 const std::uint8_t* a_mask, const std::uint8_t* b, const std::uint32_t* lut,
                 std::uint64_t* acc_qq, std::uint64_t* acc_qw, std::uint64_t* acc_qa,
                 std::int64_t* taps) {
  std::memset(acc_qq, 0, static_cast<std::size_t>(m * n) * sizeof(std::uint64_t));
  std::memset(acc_qw, 0, static_cast<std::size_t>(m * n) * sizeof(std::uint64_t));
  std::memset(acc_qa, 0, static_cast<std::size_t>(m) * sizeof(std::uint64_t));
  std::memset(taps, 0, static_cast<std::size_t>(m) * sizeof(std::int64_t));
#pragma omp parallel for schedule(static) if (m >= 64)
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a + i * k;
    const std::uint8_t* mrow = a_mask == nullptr ? nullptr : a_mask + i * k;
    std::uint64_t* qq = acc_qq + i * n;
    std::uint64_t* qw = acc_qw + i * n;
    std::uint64_t qa = 0;
    std::int64_t t = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (mrow != nullptr && mrow[kk] == 0) continue;  // Padding tap: true zero.
      const std::uint32_t* lrow = lut + (static_cast<std::uint32_t>(arow[kk]) << 8);
      const std::uint8_t* brow = b + kk * n;
      qa += arow[kk];
      ++t;
      for (std::int64_t j = 0; j < n; ++j) {
        qq[j] += lrow[brow[j]];
        qw[j] += brow[j];
      }
    }
    acc_qa[i] = qa;
    taps[i] = t;
  }
}

void gemm_u8_lut_chain(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                       const std::uint8_t* a_mask, const std::uint8_t* b,
                       const std::uint32_t* lut, const U32Accum& accum, std::uint32_t* acc_qq,
                       std::uint64_t* acc_qw, std::uint64_t* acc_qa, std::int64_t* taps) {
  std::memset(acc_qq, 0, static_cast<std::size_t>(m * n) * sizeof(std::uint32_t));
  std::memset(acc_qw, 0, static_cast<std::size_t>(m * n) * sizeof(std::uint64_t));
  std::memset(acc_qa, 0, static_cast<std::size_t>(m) * sizeof(std::uint64_t));
  std::memset(taps, 0, static_cast<std::size_t>(m) * sizeof(std::int64_t));
#pragma omp parallel for schedule(static) if (m >= 64)
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a + i * k;
    const std::uint8_t* mrow = a_mask == nullptr ? nullptr : a_mask + i * k;
    std::uint32_t* qq = acc_qq + i * n;
    std::uint64_t* qw = acc_qw + i * n;
    std::uint64_t qa = 0;
    std::int64_t t = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (mrow != nullptr && mrow[kk] == 0) continue;  // Padding tap: true zero.
      const std::uint32_t* lrow = lut + (static_cast<std::uint32_t>(arow[kk]) << 8);
      const std::uint8_t* brow = b + kk * n;
      qa += arow[kk];
      ++t;
      // The chain runs in ascending k: acc <- accum(acc, product). With an
      // approximate accum, error accrues exactly as in the hardware
      // accumulator it models (carry cuts see the realized partial sums).
      for (std::int64_t j = 0; j < n; ++j) {
        qq[j] = accum.add(qq[j], lrow[brow[j]]);
        qw[j] += brow[j];
      }
    }
    acc_qa[i] = qa;
    taps[i] = t;
  }
}

}  // namespace redcane::gemm
