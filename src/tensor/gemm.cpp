#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace redcane::gemm {
namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "redcane::gemm fatal: %s\n", what);
  std::abort();
}

// Block extents sized for a common 32 KiB L1 / 256+ KiB L2: a KxN panel of
// B (kBlockK * kBlockN floats = 128 KiB) stays L2-resident while each row
// block of A streams through it.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 128;

/// Core kernel: C += A[m, k] * B[k, n], row-major, C pre-initialized.
void gemm_nn_accumulate(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                        const float* b, float* c) {
#pragma omp parallel for schedule(static) if (m >= 2 * kBlockM)
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t i1 = std::min(i0 + kBlockM, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k0 + kBlockK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t j1 = std::min(j0 + kBlockN, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float aik = arow[kk];
            const float* brow = b + kk * n;
            for (std::int64_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

/// Materializes the row-major transpose of src [rows, cols].
std::vector<float> transposed(const float* src, std::int64_t rows, std::int64_t cols) {
  std::vector<float> dst(static_cast<std::size_t>(rows * cols));
  constexpr std::int64_t kTile = 32;
  for (std::int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::int64_t r1 = std::min(r0 + kTile, rows);
    for (std::int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::int64_t c1 = std::min(c0 + kTile, cols);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          dst[static_cast<std::size_t>(c * rows + r)] = src[r * cols + c];
        }
      }
    }
  }
  return dst;
}

}  // namespace

void gemm_f32(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
              const float* a, const float* b, float beta, float* c) {
  if (m < 0 || n < 0 || k < 0) fail("negative gemm extent");
  if (beta != 0.0F && beta != 1.0F) fail("gemm beta must be 0 or 1");
  if (beta == 0.0F) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  // Transposed operands are materialized once so the hot kernel stays a
  // single unit-stride NN loop; the O(m*k + k*n) copy is noise next to the
  // O(m*n*k) multiply.
  std::vector<float> at;
  std::vector<float> bt;
  if (trans_a) {
    at = transposed(a, k, m);  // stored [k, m] -> [m, k]
    a = at.data();
  }
  if (trans_b) {
    bt = transposed(b, n, k);  // stored [n, k] -> [k, n]
    b = bt.data();
  }
  gemm_nn_accumulate(m, n, k, a, b, c);
}

void gemm_batched_f32(std::int64_t batch, std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, std::int64_t stride_a, const float* b,
                      std::int64_t stride_b, float beta, float* c, std::int64_t stride_c) {
  if (batch < 0 || m < 0 || n < 0 || k < 0) fail("negative batched gemm extent");
  if (beta != 0.0F && beta != 1.0F) fail("batched gemm beta must be 0 or 1");
  if (stride_c == 0 && batch > 1) fail("batched gemm output stride must not broadcast");
#pragma omp parallel for schedule(static) if (batch >= 2)
  for (std::int64_t p = 0; p < batch; ++p) {
    const float* ap = a + p * stride_a;
    const float* bp = b + p * stride_b;
    float* cp = c + p * stride_c;
    if (beta == 0.0F) std::memset(cp, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    // Plain i-k-j accumulation: batch items are small (routing blocks), so
    // cache blocking buys nothing and the fixed k order keeps the result
    // independent of the batch-level parallelism.
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = ap + i * k;
      float* crow = cp + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        const float* brow = bp + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) fail("matmul expects rank-2 tensors");
  const std::int64_t m = a.shape().dim(trans_a ? 1 : 0);
  const std::int64_t ka = a.shape().dim(trans_a ? 0 : 1);
  const std::int64_t kb = b.shape().dim(trans_b ? 1 : 0);
  const std::int64_t n = b.shape().dim(trans_b ? 0 : 1);
  if (ka != kb) fail("matmul inner dimension mismatch");
  Tensor c(Shape{m, n});
  gemm_f32(trans_a, trans_b, m, n, ka, a.data().data(), b.data().data(), 0.0F,
           c.data().data());
  return c;
}

void gemm_u8_lut(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                 const std::uint8_t* a_mask, const std::uint8_t* b, const std::uint32_t* lut,
                 std::uint64_t* acc_qq, std::uint64_t* acc_qw, std::uint64_t* acc_qa,
                 std::int64_t* taps) {
  std::memset(acc_qq, 0, static_cast<std::size_t>(m * n) * sizeof(std::uint64_t));
  std::memset(acc_qw, 0, static_cast<std::size_t>(m * n) * sizeof(std::uint64_t));
  std::memset(acc_qa, 0, static_cast<std::size_t>(m) * sizeof(std::uint64_t));
  std::memset(taps, 0, static_cast<std::size_t>(m) * sizeof(std::int64_t));
#pragma omp parallel for schedule(static) if (m >= 64)
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a + i * k;
    const std::uint8_t* mrow = a_mask + i * k;
    std::uint64_t* qq = acc_qq + i * n;
    std::uint64_t* qw = acc_qw + i * n;
    std::uint64_t qa = 0;
    std::int64_t t = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (mrow[kk] == 0) continue;  // Zero-padding tap: contributes true zero.
      const std::uint32_t* lrow = lut + (static_cast<std::uint32_t>(arow[kk]) << 8);
      const std::uint8_t* brow = b + kk * n;
      qa += arow[kk];
      ++t;
      for (std::int64_t j = 0; j < n; ++j) {
        qq[j] += lrow[brow[j]];
        qw[j] += brow[j];
      }
    }
    acc_qa[i] = qa;
    taps[i] = t;
  }
}

}  // namespace redcane::gemm
