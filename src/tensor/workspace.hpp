// Workspace: a per-thread, grown-once scratch arena for every hot path.
//
// Before this arena, each call to conv2d_forward, dynamic_routing, the
// ConvCaps3D vote kernels, and the approximate-LUT convolution paid the
// allocator for fresh std::vector scratch — on a sweep of thousands of
// grid points, millions of transient heap round-trips. A Workspace keeps
// a small list of capacity blocks that only ever grow; allocations are
// pointer bumps, deallocation is a cursor rewind, and after the first few
// calls of any workload the arena reaches steady state and the hot paths
// never touch the allocator again.
//
// Keying: one arena per thread via Workspace::tls(). Every execution
// context in the codebase — OpenMP team members inside the GEMM core,
// core::SweepEngine point workers, serve::InferenceServer batch workers —
// is a thread, so thread-locality is exactly "one workspace per worker"
// and no locking is ever needed.
//
// Discipline: allocations are scoped. A Workspace::Scope records the
// cursor at construction and rewinds it at destruction, so usage nests
// like a call stack (conv -> routing -> gemm packing all stack cleanly,
// including the OpenMP case where a parallel region's team threads open
// scopes on their own arenas). Pointers from an inner scope must not
// outlive it; blocks are stable, so pointers never move within a scope
// even when later allocations grow the arena.
//
// Determinism: the arena hands out memory, never values — buffers are
// returned uninitialized and every consumer fully writes (or memsets)
// what it reads, so reuse cannot leak state between sweep points or
// served batches. Nothing here affects the bit-identity guarantees of
// the sweep engine or the serving runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace redcane::ws {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena (created on first use).
  static Workspace& tls();

  /// RAII cursor mark: rewinds all allocations made after construction.
  class Scope {
   public:
    explicit Scope(Workspace& w) : w_(w), block_(w.cursor_block_), used_(w.cursor_used_) {}
    ~Scope() { w_.rewind(block_, used_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& w_;
    std::size_t block_;
    std::size_t used_;
  };

  /// Uninitialized, 64-byte-aligned buffer of `count` T, valid until the
  /// enclosing Scope ends. T must be trivially destructible.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(raw_alloc(count * sizeof(T)));
  }

  /// Pre-grows the arena so the first real allocation is warm (used by
  /// long-lived workers to keep cold-start latency off the first batch).
  void reserve(std::size_t bytes);

  /// Total capacity across blocks [bytes].
  [[nodiscard]] std::size_t reserved_bytes() const;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* raw_alloc(std::size_t bytes);
  void rewind(std::size_t block, std::size_t used);

  std::vector<Block> blocks_;
  std::size_t cursor_block_ = 0;  ///< Block the next allocation tries first.
  std::size_t cursor_used_ = 0;   ///< Bytes consumed in that block.
};

}  // namespace redcane::ws
