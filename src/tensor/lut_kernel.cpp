#include "tensor/lut_kernel.hpp"

#include <algorithm>
#include <cstring>

#include "tensor/workspace.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define REDCANE_LK_X86 1
#include <immintrin.h>
#else
#define REDCANE_LK_X86 0
#endif

namespace redcane::gemm::lk {
namespace {

// The exact-code side sums accumulate bytes (<= 255), so a u32 partial is
// safe for floor((2^32 - 1) / 255) taps; flush_every is clamped to this so
// one cadence covers every partial accumulator in a row.
constexpr std::int64_t kCodeFlushEvery = 16843009;

/// Scalar lookup through a 64-byte nibble row — the tail path of the SIMD
/// primitives and the scalar tier's nibble entry. Equals the raw table
/// value by the build-time proof.
inline std::uint32_t nib_lookup(const std::uint8_t* nibrow, std::uint8_t code) {
  const std::uint32_t lo = code & 0x0F;
  const std::uint32_t hi = code >> 4;
  const std::uint32_t l =
      static_cast<std::uint32_t>(nibrow[lo]) | (static_cast<std::uint32_t>(nibrow[16 + lo]) << 8);
  const std::uint32_t h = static_cast<std::uint32_t>(nibrow[32 + hi]) |
                          (static_cast<std::uint32_t>(nibrow[48 + hi]) << 8);
  return l + h;
}

// ------------------------------------------------------------ scalar tier
// Reference semantics for every primitive; the drivers never reach these
// under scalar dispatch (they delegate to the retained seed loops in
// tensor/gemm.cpp), but the table stays total for tests and future tiers.

void accum_gen_scalar(std::int64_t n, const std::uint32_t* lrow, const std::uint8_t* brow,
                      std::uint32_t* qq) {
  for (std::int64_t j = 0; j < n; ++j) qq[j] += lrow[brow[j]];
}

void accum_nib_scalar(std::int64_t n, const std::uint8_t* nibrow, const std::uint8_t* brow,
                      std::uint32_t* qq) {
  for (std::int64_t j = 0; j < n; ++j) qq[j] += nib_lookup(nibrow, brow[j]);
}

void stage_gen_scalar(std::int64_t n, const std::uint32_t* lrow, const std::uint8_t* brow,
                      std::uint32_t* prod) {
  for (std::int64_t j = 0; j < n; ++j) prod[j] = lrow[brow[j]];
}

void stage_nib_scalar(std::int64_t n, const std::uint8_t* nibrow, const std::uint8_t* brow,
                      std::uint32_t* prod) {
  for (std::int64_t j = 0; j < n; ++j) prod[j] = nib_lookup(nibrow, brow[j]);
}

void accum_codes_scalar(std::int64_t n, const std::uint8_t* brow, std::uint32_t* qw) {
  for (std::int64_t j = 0; j < n; ++j) qw[j] += brow[j];
}

#if REDCANE_LK_X86

// ------------------------------------------------------------- ssse3 tier
// 16-lane nibble lookup: two pshufb per 16-entry u16 table (low-byte and
// high-byte planes), byte interleave into u16 lanes, one u16 add — the
// nckernel binary8 region-multiply idiom with + in place of ^.

__attribute__((target("ssse3"))) inline void nib_sum16_ssse3(const std::uint8_t* nibrow,
                                                             __m128i codes, __m128i& s0,
                                                             __m128i& s1) {
  const __m128i low4 = _mm_set1_epi8(0x0F);
  const __m128i tll = _mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow));
  const __m128i tlh = _mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 16));
  const __m128i thl = _mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 32));
  const __m128i thh = _mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 48));
  const __m128i lo = _mm_and_si128(codes, low4);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(codes, 4), low4);
  const __m128i ll = _mm_shuffle_epi8(tll, lo);
  const __m128i lh = _mm_shuffle_epi8(tlh, lo);
  const __m128i hl = _mm_shuffle_epi8(thl, hi);
  const __m128i hh = _mm_shuffle_epi8(thh, hi);
  // Interleave byte planes into u16 lanes: s0 = codes j..j+7, s1 = j+8..15.
  s0 = _mm_add_epi16(_mm_unpacklo_epi8(ll, lh), _mm_unpacklo_epi8(hl, hh));
  s1 = _mm_add_epi16(_mm_unpackhi_epi8(ll, lh), _mm_unpackhi_epi8(hl, hh));
}

__attribute__((target("ssse3"))) void accum_nib_ssse3(std::int64_t n, const std::uint8_t* nibrow,
                                                      const std::uint8_t* brow,
                                                      std::uint32_t* qq) {
  const __m128i zero = _mm_setzero_si128();
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m128i codes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + j));
    __m128i s0;
    __m128i s1;
    nib_sum16_ssse3(nibrow, codes, s0, s1);
    __m128i* q = reinterpret_cast<__m128i*>(qq + j);
    _mm_storeu_si128(q + 0, _mm_add_epi32(_mm_loadu_si128(q + 0), _mm_unpacklo_epi16(s0, zero)));
    _mm_storeu_si128(q + 1, _mm_add_epi32(_mm_loadu_si128(q + 1), _mm_unpackhi_epi16(s0, zero)));
    _mm_storeu_si128(q + 2, _mm_add_epi32(_mm_loadu_si128(q + 2), _mm_unpacklo_epi16(s1, zero)));
    _mm_storeu_si128(q + 3, _mm_add_epi32(_mm_loadu_si128(q + 3), _mm_unpackhi_epi16(s1, zero)));
  }
  for (; j < n; ++j) qq[j] += nib_lookup(nibrow, brow[j]);
}

__attribute__((target("ssse3"))) void stage_nib_ssse3(std::int64_t n, const std::uint8_t* nibrow,
                                                      const std::uint8_t* brow,
                                                      std::uint32_t* prod) {
  const __m128i zero = _mm_setzero_si128();
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m128i codes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + j));
    __m128i s0;
    __m128i s1;
    nib_sum16_ssse3(nibrow, codes, s0, s1);
    __m128i* p = reinterpret_cast<__m128i*>(prod + j);
    _mm_storeu_si128(p + 0, _mm_unpacklo_epi16(s0, zero));
    _mm_storeu_si128(p + 1, _mm_unpackhi_epi16(s0, zero));
    _mm_storeu_si128(p + 2, _mm_unpacklo_epi16(s1, zero));
    _mm_storeu_si128(p + 3, _mm_unpackhi_epi16(s1, zero));
  }
  for (; j < n; ++j) prod[j] = nib_lookup(nibrow, brow[j]);
}

__attribute__((target("ssse3"))) void accum_codes_ssse3(std::int64_t n, const std::uint8_t* brow,
                                                        std::uint32_t* qw) {
  const __m128i zero = _mm_setzero_si128();
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m128i codes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + j));
    const __m128i w0 = _mm_unpacklo_epi8(codes, zero);
    const __m128i w1 = _mm_unpackhi_epi8(codes, zero);
    __m128i* q = reinterpret_cast<__m128i*>(qw + j);
    _mm_storeu_si128(q + 0, _mm_add_epi32(_mm_loadu_si128(q + 0), _mm_unpacklo_epi16(w0, zero)));
    _mm_storeu_si128(q + 1, _mm_add_epi32(_mm_loadu_si128(q + 1), _mm_unpackhi_epi16(w0, zero)));
    _mm_storeu_si128(q + 2, _mm_add_epi32(_mm_loadu_si128(q + 2), _mm_unpacklo_epi16(w1, zero)));
    _mm_storeu_si128(q + 3, _mm_add_epi32(_mm_loadu_si128(q + 3), _mm_unpackhi_epi16(w1, zero)));
  }
  for (; j < n; ++j) qw[j] += brow[j];
}

// -------------------------------------------------------------- avx2 tier
// Nibble rows: the ssse3 shuffle sequence on 32 lanes (tables broadcast to
// both 128-bit halves; pshufb and byte interleaves are lane-local, so the
// u16 halves extract back to contiguous j runs). General rows: 8-lane u32
// gathers, unrolled x2 so independent gathers overlap.

__attribute__((target("avx2"))) void accum_nib_avx2(std::int64_t n, const std::uint8_t* nibrow,
                                                    const std::uint8_t* brow, std::uint32_t* qq) {
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  const __m256i tll =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow)));
  const __m256i tlh =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 16)));
  const __m256i thl =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 32)));
  const __m256i thh =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 48)));
  std::int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    const __m256i codes = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + j));
    const __m256i lo = _mm256_and_si256(codes, low4);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(codes, 4), low4);
    const __m256i ll = _mm256_shuffle_epi8(tll, lo);
    const __m256i lh = _mm256_shuffle_epi8(tlh, lo);
    const __m256i hl = _mm256_shuffle_epi8(thl, hi);
    const __m256i hh = _mm256_shuffle_epi8(thh, hi);
    // Lane-local interleave: s0 holds u16 sums for codes {j..j+7, j+16..23},
    // s1 for {j+8..15, j+24..31}; extracting 128-bit halves restores order.
    const __m256i s0 =
        _mm256_add_epi16(_mm256_unpacklo_epi8(ll, lh), _mm256_unpacklo_epi8(hl, hh));
    const __m256i s1 =
        _mm256_add_epi16(_mm256_unpackhi_epi8(ll, lh), _mm256_unpackhi_epi8(hl, hh));
    __m256i* q = reinterpret_cast<__m256i*>(qq + j);
    _mm256_storeu_si256(
        q + 0, _mm256_add_epi32(_mm256_loadu_si256(q + 0),
                                _mm256_cvtepu16_epi32(_mm256_castsi256_si128(s0))));
    _mm256_storeu_si256(
        q + 1, _mm256_add_epi32(_mm256_loadu_si256(q + 1),
                                _mm256_cvtepu16_epi32(_mm256_castsi256_si128(s1))));
    _mm256_storeu_si256(
        q + 2, _mm256_add_epi32(_mm256_loadu_si256(q + 2),
                                _mm256_cvtepu16_epi32(_mm256_extracti128_si256(s0, 1))));
    _mm256_storeu_si256(
        q + 3, _mm256_add_epi32(_mm256_loadu_si256(q + 3),
                                _mm256_cvtepu16_epi32(_mm256_extracti128_si256(s1, 1))));
  }
  for (; j < n; ++j) qq[j] += nib_lookup(nibrow, brow[j]);
}

__attribute__((target("avx2"))) void stage_nib_avx2(std::int64_t n, const std::uint8_t* nibrow,
                                                    const std::uint8_t* brow,
                                                    std::uint32_t* prod) {
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  const __m256i tll =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow)));
  const __m256i tlh =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 16)));
  const __m256i thl =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 32)));
  const __m256i thh =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(nibrow + 48)));
  std::int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    const __m256i codes = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + j));
    const __m256i lo = _mm256_and_si256(codes, low4);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(codes, 4), low4);
    const __m256i ll = _mm256_shuffle_epi8(tll, lo);
    const __m256i lh = _mm256_shuffle_epi8(tlh, lo);
    const __m256i hl = _mm256_shuffle_epi8(thl, hi);
    const __m256i hh = _mm256_shuffle_epi8(thh, hi);
    const __m256i s0 =
        _mm256_add_epi16(_mm256_unpacklo_epi8(ll, lh), _mm256_unpacklo_epi8(hl, hh));
    const __m256i s1 =
        _mm256_add_epi16(_mm256_unpackhi_epi8(ll, lh), _mm256_unpackhi_epi8(hl, hh));
    __m256i* p = reinterpret_cast<__m256i*>(prod + j);
    _mm256_storeu_si256(p + 0, _mm256_cvtepu16_epi32(_mm256_castsi256_si128(s0)));
    _mm256_storeu_si256(p + 1, _mm256_cvtepu16_epi32(_mm256_castsi256_si128(s1)));
    _mm256_storeu_si256(p + 2, _mm256_cvtepu16_epi32(_mm256_extracti128_si256(s0, 1)));
    _mm256_storeu_si256(p + 3, _mm256_cvtepu16_epi32(_mm256_extracti128_si256(s1, 1)));
  }
  for (; j < n; ++j) prod[j] = nib_lookup(nibrow, brow[j]);
}

__attribute__((target("avx2"))) void accum_gen_avx2(std::int64_t n, const std::uint32_t* lrow,
                                                    const std::uint8_t* brow, std::uint32_t* qq) {
  const int* base = reinterpret_cast<const int*>(lrow);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256i i0 =
        _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(brow + j)));
    const __m256i i1 =
        _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(brow + j + 8)));
    const __m256i g0 = _mm256_i32gather_epi32(base, i0, 4);
    const __m256i g1 = _mm256_i32gather_epi32(base, i1, 4);
    __m256i* q = reinterpret_cast<__m256i*>(qq + j);
    _mm256_storeu_si256(q + 0, _mm256_add_epi32(_mm256_loadu_si256(q + 0), g0));
    _mm256_storeu_si256(q + 1, _mm256_add_epi32(_mm256_loadu_si256(q + 1), g1));
  }
  for (; j < n; ++j) qq[j] += lrow[brow[j]];
}

__attribute__((target("avx2"))) void stage_gen_avx2(std::int64_t n, const std::uint32_t* lrow,
                                                    const std::uint8_t* brow,
                                                    std::uint32_t* prod) {
  const int* base = reinterpret_cast<const int*>(lrow);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256i i0 =
        _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(brow + j)));
    const __m256i i1 =
        _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(brow + j + 8)));
    __m256i* p = reinterpret_cast<__m256i*>(prod + j);
    _mm256_storeu_si256(p + 0, _mm256_i32gather_epi32(base, i0, 4));
    _mm256_storeu_si256(p + 1, _mm256_i32gather_epi32(base, i1, 4));
  }
  for (; j < n; ++j) prod[j] = lrow[brow[j]];
}

__attribute__((target("avx2"))) void accum_codes_avx2(std::int64_t n, const std::uint8_t* brow,
                                                      std::uint32_t* qw) {
  std::int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    __m256i* q = reinterpret_cast<__m256i*>(qw + j);
    for (int g = 0; g < 4; ++g) {
      const __m256i w = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(brow + j + 8 * g)));
      _mm256_storeu_si256(q + g, _mm256_add_epi32(_mm256_loadu_si256(q + g), w));
    }
  }
  for (; j < n; ++j) qw[j] += brow[j];
}

#endif  // REDCANE_LK_X86

constexpr LutOps kScalarLutOps{mk::Target::kScalar, "scalar",        accum_gen_scalar,
                               accum_nib_scalar,    stage_gen_scalar, stage_nib_scalar,
                               accum_codes_scalar};
#if REDCANE_LK_X86
// General rows have no ssse3 lookup idiom (no gather pre-AVX2): the tier
// keeps the scalar stream for them and wins on nibble rows + side sums.
constexpr LutOps kSsse3LutOps{mk::Target::kSse, "ssse3",          accum_gen_scalar,
                              accum_nib_ssse3,  stage_gen_scalar, stage_nib_ssse3,
                              accum_codes_ssse3};
constexpr LutOps kAvx2LutOps{mk::Target::kAvx2, "avx2",         accum_gen_avx2,
                             accum_nib_avx2,    stage_gen_avx2, stage_nib_avx2,
                             accum_codes_avx2};
#endif

/// Column sums of the B code matrix — the weight-code side of the affine
/// expansion, shared by every fully-valid output row.
void col_code_sums(const LutOps& ops, const std::uint8_t* b, std::int64_t k, std::int64_t n,
                   std::uint64_t* out) {
  ws::Workspace& wksp = ws::Workspace::tls();
  const ws::Workspace::Scope scope(wksp);
  std::uint32_t* part = wksp.alloc<std::uint32_t>(static_cast<std::size_t>(n));
  std::memset(part, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
  std::memset(out, 0, static_cast<std::size_t>(n) * sizeof(std::uint64_t));
  std::int64_t since = 0;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    ops.accum_codes(n, b + kk * n, part);
    if (++since == kCodeFlushEvery) {
      for (std::int64_t j = 0; j < n; ++j) out[j] += part[j];
      std::memset(part, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
      since = 0;
    }
  }
  for (std::int64_t j = 0; j < n; ++j) out[j] += part[j];
}

/// Marks rows whose mask has no padding tap (they share the hoisted column
/// sums). Null mask = every row full.
void mark_full_rows(const std::uint8_t* a_mask, std::int64_t m, std::int64_t k,
                    std::uint8_t* row_full, bool& any_full, bool& any_partial) {
  any_full = false;
  any_partial = false;
  if (a_mask == nullptr) {
    std::memset(row_full, 1, static_cast<std::size_t>(m));
    any_full = m > 0;
    return;
  }
  for (std::int64_t i = 0; i < m; ++i) {
    const bool full =
        std::memchr(a_mask + i * k, 0, static_cast<std::size_t>(k)) == nullptr;
    row_full[i] = full ? 1 : 0;
    any_full = any_full || full;
    any_partial = any_partial || !full;
  }
}

}  // namespace

LutTables LutTables::build(const std::uint32_t* raw, int max_code) {
  LutTables t;
  t.lut.assign(raw, raw + 256 * 256);
  t.nib.assign(256 * 64, 0);
  t.nibble_ok.assign(256, 0);

  const int hi_max = max_code >> 4;
  const int lo_max = std::min(max_code, 15);
  for (int a = 0; a <= max_code; ++a) {
    const std::uint32_t* row = raw + (static_cast<std::size_t>(a) << 8);
    for (int bcode = 0; bcode <= max_code; ++bcode) {
      t.max_value = std::max(t.max_value, row[bcode]);
    }

    // Candidate decomposition: L from the h = 0 edge, H from the l = 0
    // edge relative to row[0] (forcing H[0] = 0). Valid iff every
    // reachable code reassembles exactly and all sums stay u16.
    std::uint32_t l_tab[16] = {0};
    std::uint32_t h_tab[16] = {0};
    bool ok = true;
    for (int l = 0; l <= lo_max && ok; ++l) {
      l_tab[l] = row[l];
      ok = l_tab[l] <= 0xFFFF;
    }
    for (int h = 0; h <= hi_max && ok; ++h) {
      const std::uint32_t edge = row[h << 4];
      ok = edge >= row[0] && (edge - row[0]) <= 0xFFFF;
      if (ok) h_tab[h] = edge - row[0];
    }
    for (int bcode = 0; bcode <= max_code && ok; ++bcode) {
      const std::uint32_t sum = h_tab[bcode >> 4] + l_tab[bcode & 15];
      ok = sum <= 0xFFFF && sum == row[bcode];
    }
    if (!ok) continue;
    t.nibble_ok[static_cast<std::size_t>(a)] = 1;
    t.any_nibble = true;
    std::uint8_t* nibrow = t.nib.data() + static_cast<std::size_t>(a) * 64;
    for (int e = 0; e < 16; ++e) {
      nibrow[e] = static_cast<std::uint8_t>(l_tab[e] & 0xFF);
      nibrow[16 + e] = static_cast<std::uint8_t>(l_tab[e] >> 8);
      nibrow[32 + e] = static_cast<std::uint8_t>(h_tab[e] & 0xFF);
      nibrow[48 + e] = static_cast<std::uint8_t>(h_tab[e] >> 8);
    }
  }

  const std::uint64_t by_value =
      t.max_value == 0 ? kCodeFlushEvery : 0xFFFFFFFFULL / t.max_value;
  t.flush_every = static_cast<std::int64_t>(
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(by_value, kCodeFlushEvery)));
  return t;
}

const LutOps& ops_for(mk::Target t) {
#if REDCANE_LK_X86
  switch (t) {
    case mk::Target::kSse:
      return kSsse3LutOps;
    case mk::Target::kAvx2:
      return kAvx2LutOps;
    case mk::Target::kScalar:
      break;
  }
#else
  (void)t;
#endif
  return kScalarLutOps;
}

const LutOps& active() { return ops_for(mk::active().target); }

void lut_gemm_u8(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                 const std::uint8_t* a_mask, const std::uint8_t* b, const LutTables& tables,
                 std::uint64_t* acc_qq, std::uint64_t* acc_qw, std::uint64_t* acc_qa,
                 std::int64_t* taps) {
  const LutOps& ops = active();
  if (ops.target == mk::Target::kScalar) {
    gemm::gemm_u8_lut(m, n, k, a, a_mask, b, tables.lut.data(), acc_qq, acc_qw, acc_qa, taps);
    return;
  }

  ws::Workspace& outer = ws::Workspace::tls();
  const ws::Workspace::Scope outer_scope(outer);
  std::uint8_t* row_full = outer.alloc<std::uint8_t>(static_cast<std::size_t>(m));
  bool any_full = false;
  bool any_partial = false;
  mark_full_rows(a_mask, m, k, row_full, any_full, any_partial);
  std::uint64_t* colsum = nullptr;
  if (any_full) {
    colsum = outer.alloc<std::uint64_t>(static_cast<std::size_t>(n));
    col_code_sums(ops, b, k, n, colsum);
  }

  const std::int64_t flush_every = tables.flush_every;
  const std::uint32_t* lut = tables.lut.data();
  const std::uint8_t* nib = tables.nib.data();
  const std::uint8_t* nibble_ok = tables.nibble_ok.data();
  const bool any_nibble = tables.any_nibble;

#pragma omp parallel for schedule(static) if (m >= 64)
  for (std::int64_t i = 0; i < m; ++i) {
    ws::Workspace& wksp = ws::Workspace::tls();
    const ws::Workspace::Scope scope(wksp);
    std::uint32_t* qq32 = wksp.alloc<std::uint32_t>(static_cast<std::size_t>(n));
    std::memset(qq32, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
    const bool full = row_full[i] != 0;
    std::uint32_t* qw32 = nullptr;
    std::uint64_t* qqrow = acc_qq + i * n;
    std::uint64_t* qwrow = acc_qw + i * n;
    std::memset(qqrow, 0, static_cast<std::size_t>(n) * sizeof(std::uint64_t));
    if (!full) {
      qw32 = wksp.alloc<std::uint32_t>(static_cast<std::size_t>(n));
      std::memset(qw32, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
      std::memset(qwrow, 0, static_cast<std::size_t>(n) * sizeof(std::uint64_t));
    }

    const std::uint8_t* arow = a + i * k;
    const std::uint8_t* mrow = a_mask == nullptr ? nullptr : a_mask + i * k;
    std::uint64_t qa = 0;
    std::int64_t t = 0;
    std::int64_t since = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (!full && mrow[kk] == 0) continue;  // Padding tap: true zero.
      const std::uint8_t code = arow[kk];
      const std::uint8_t* brow = b + kk * n;
      if (any_nibble && nibble_ok[code] != 0) {
        ops.accum_nib(n, nib + static_cast<std::size_t>(code) * 64, brow, qq32);
      } else {
        ops.accum_gen(n, lut + (static_cast<std::size_t>(code) << 8), brow, qq32);
      }
      if (!full) ops.accum_codes(n, brow, qw32);
      qa += code;
      ++t;
      if (++since == flush_every) {
        for (std::int64_t j = 0; j < n; ++j) qqrow[j] += qq32[j];
        std::memset(qq32, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
        if (!full) {
          for (std::int64_t j = 0; j < n; ++j) qwrow[j] += qw32[j];
          std::memset(qw32, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
        }
        since = 0;
      }
    }
    for (std::int64_t j = 0; j < n; ++j) qqrow[j] += qq32[j];
    if (full) {
      std::memcpy(qwrow, colsum, static_cast<std::size_t>(n) * sizeof(std::uint64_t));
    } else {
      for (std::int64_t j = 0; j < n; ++j) qwrow[j] += qw32[j];
    }
    acc_qa[i] = qa;
    taps[i] = t;
  }
}

void lut_gemm_u8_chain(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                       const std::uint8_t* a_mask, const std::uint8_t* b,
                       const LutTables& tables, const U32Accum& accum, std::uint32_t* acc_qq,
                       std::uint64_t* acc_qw, std::uint64_t* acc_qa, std::int64_t* taps) {
  const LutOps& ops = active();
  if (ops.target == mk::Target::kScalar) {
    gemm::gemm_u8_lut_chain(m, n, k, a, a_mask, b, tables.lut.data(), accum, acc_qq, acc_qw,
                            acc_qa, taps);
    return;
  }

  ws::Workspace& outer = ws::Workspace::tls();
  const ws::Workspace::Scope outer_scope(outer);
  std::uint8_t* row_full = outer.alloc<std::uint8_t>(static_cast<std::size_t>(m));
  bool any_full = false;
  bool any_partial = false;
  mark_full_rows(a_mask, m, k, row_full, any_full, any_partial);
  std::uint64_t* colsum = nullptr;
  if (any_full) {
    colsum = outer.alloc<std::uint64_t>(static_cast<std::size_t>(n));
    col_code_sums(ops, b, k, n, colsum);
  }

  const std::uint32_t* lut = tables.lut.data();
  const std::uint8_t* nib = tables.nib.data();
  const std::uint8_t* nibble_ok = tables.nibble_ok.data();
  const bool any_nibble = tables.any_nibble;

#pragma omp parallel for schedule(static) if (m >= 64)
  for (std::int64_t i = 0; i < m; ++i) {
    ws::Workspace& wksp = ws::Workspace::tls();
    const ws::Workspace::Scope scope(wksp);
    std::uint32_t* prod = wksp.alloc<std::uint32_t>(static_cast<std::size_t>(n));
    const bool full = row_full[i] != 0;
    std::uint32_t* qw32 = nullptr;
    std::uint32_t* qqrow = acc_qq + i * n;
    std::uint64_t* qwrow = acc_qw + i * n;
    std::memset(qqrow, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
    if (!full) {
      qw32 = wksp.alloc<std::uint32_t>(static_cast<std::size_t>(n));
      std::memset(qw32, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
      std::memset(qwrow, 0, static_cast<std::size_t>(n) * sizeof(std::uint64_t));
    }

    const std::uint8_t* arow = a + i * k;
    const std::uint8_t* mrow = a_mask == nullptr ? nullptr : a_mask + i * k;
    std::uint64_t qa = 0;
    std::int64_t t = 0;
    std::int64_t since = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (!full && mrow[kk] == 0) continue;  // Padding tap: true zero.
      const std::uint8_t code = arow[kk];
      const std::uint8_t* brow = b + kk * n;
      if (any_nibble && nibble_ok[code] != 0) {
        ops.stage_nib(n, nib + static_cast<std::size_t>(code) * 64, brow, prod);
      } else {
        ops.stage_gen(n, lut + (static_cast<std::size_t>(code) << 8), brow, prod);
      }
      // The behavioral chain stays scalar and in ascending k: with an
      // approximate accum, error accrues exactly as in the hardware
      // accumulator it models (carry cuts see the realized partial sums).
      for (std::int64_t j = 0; j < n; ++j) qqrow[j] = accum.add(qqrow[j], prod[j]);
      if (!full) {
        ops.accum_codes(n, brow, qw32);
        if (++since == kCodeFlushEvery) {
          for (std::int64_t j = 0; j < n; ++j) qwrow[j] += qw32[j];
          std::memset(qw32, 0, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
          since = 0;
        }
      }
      qa += code;
      ++t;
    }
    if (full) {
      std::memcpy(qwrow, colsum, static_cast<std::size_t>(n) * sizeof(std::uint64_t));
    } else {
      for (std::int64_t j = 0; j < n; ++j) qwrow[j] += qw32[j];
    }
    acc_qa[i] = qa;
    taps[i] = t;
  }
}

}  // namespace redcane::gemm::lk
