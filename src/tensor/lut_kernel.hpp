// Runtime-dispatched u8 LUT-GEMM microkernels: the SIMD inner loops of the
// behavioral-emulation datapath (quant/lut_gemm.hpp sits on top).
//
// The emulated MAC core is a table-lookup GEMM: every (a, b) code pair of
// an 8-bit-quantized matrix product is routed through a 256x256 product
// table materialized from a behavioral multiplier, and the dominant cost
// is the per-tap stream  qq[j] += lut_row[b_row[j]]  over the output row.
// This header gives that stream three tiers, selected by the SAME dispatch
// as the float microkernels (tensor/microkernel.hpp — REDCANE_GEMM_KERNEL
// env / mk::force cover both kernel families):
//
//  * avx2   — 32-lane `_mm256_shuffle_epi8` nibble lookup for rows whose
//             table decomposes as lut[(h<<4)|l] = H[h] + L[l] (every row of
//             the exact multiplier, and of any operand-truncating family
//             that stays affine in the low nibble), with an
//             `_mm256_i32gather_epi32` 8-lane gather for general rows.
//  * ssse3  — the same nibble decomposition on 16 `_mm_shuffle_epi8`
//             lanes; general rows fall back to scalar lookups. Mapped from
//             the float core's `sse` tier (FMA hardware implies SSSE3).
//  * scalar — delegates to the retained seed loops in tensor/gemm.cpp
//             (gemm_u8_lut / gemm_u8_lut_chain), the oracle every SIMD
//             tier is tested against bit-for-bit.
//
// Nibble decomposition (the nckernel binary8 idiom, carried from GF(256)
// to integer product tables): a 256-entry u32 row is split — when valid —
// into two 16-entry u16 tables indexed by the operand nibbles, stored as
// four 16-byte pshufb planes (L-lo, L-hi, H-lo, H-hi). One 32-lane lookup
// is then two shuffles per table + byte interleaves + one u16 add, instead
// of 32 serialized L1 loads. Validity (exact equality against the row and
// all sums fitting u16) is PROVEN per row at table-build time, so taking
// the nibble path never changes a single bit.
//
// Determinism contract: all accumulation is exact integer arithmetic.
// The exact tier keeps u64 row sums via u32 partials flushed before they
// can wrap (flush cadence comes from the table's max entry, not from the
// lane width, so every tier flushes identically); the approximate-adder
// tier stages SIMD lookups into a row panel and runs the behavioral
// U32Accum chain SCALAR in ascending k — one u32 add chain per output
// element, exactly the seed kernel's order. Results are therefore bitwise
// identical across scalar/ssse3/avx2 dispatch and across thread counts
// (tests/test_lut_kernel.cpp asserts both).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/microkernel.hpp"

namespace redcane::gemm::lk {

/// A 256x256 product table prepared for dispatched execution: the raw u32
/// table plus the per-row nibble decomposition (where provable) and the
/// overflow-safe u32 flush cadence. Built once per (multiplier, bits) by
/// the process-wide cache in quant/lut_cache.hpp; immutable afterwards and
/// safe to share across threads.
struct LutTables {
  /// Raw product table: lut[(a << 8) | b], row-major in the a code.
  std::vector<std::uint32_t> lut;

  /// Nibble planes, 64 bytes per row r: bytes [0,16) = low bytes of the
  /// 16-entry L table (indexed by b & 15), [16,32) = high bytes of L,
  /// [32,48) / [48,64) = the H table (indexed by b >> 4). Row r is only
  /// meaningful when nibble_ok[r] != 0, and then for every code b in the
  /// quantization range: L[b & 15] + H[b >> 4] == lut[(r << 8) | b], with
  /// the sum fitting u16.
  std::vector<std::uint8_t> nib;

  /// Per-row flag: the row admits the nibble decomposition above.
  std::vector<std::uint8_t> nibble_ok;

  /// Largest table entry over the [0, max_code]^2 range codes can reach.
  std::uint32_t max_value = 0;

  /// Taps a u32 partial accumulator can absorb before it must be flushed
  /// into the u64 row sum (floor(2^32-1 / max_value), clamped so the
  /// exact b-code side sums stay safe too). Identical for every tier.
  std::int64_t flush_every = 0;

  /// Any row decomposed (cheap skip of the nibble branch when none did).
  bool any_nibble = false;

  /// Prepares dispatch metadata from a raw 256x256 table. `max_code` is
  /// the largest operand code quantization can emit ((1 << bits) - 1);
  /// rows/columns beyond it are never looked up and do not constrain the
  /// decomposition or the flush cadence.
  [[nodiscard]] static LutTables build(const std::uint32_t* raw, int max_code = 255);
};

/// One dispatch tier. The function pointers are the row primitives the
/// drivers below compose; all lanes lie across the output column j, never
/// across k, and every primitive handles arbitrary n with a scalar tail.
struct LutOps {
  mk::Target target;  ///< The float-core tier this maps from.
  const char* name;   ///< "scalar" | "ssse3" | "avx2".

  /// qq[j] += lut_row[b_row[j]] for j in [0, n) — general row.
  void (*accum_gen)(std::int64_t n, const std::uint32_t* lrow, const std::uint8_t* brow,
                    std::uint32_t* qq);
  /// qq[j] += L[b & 15] + H[b >> 4] from a 64-byte nibble row.
  void (*accum_nib)(std::int64_t n, const std::uint8_t* nibrow, const std::uint8_t* brow,
                    std::uint32_t* qq);
  /// prod[j] = lut_row[b_row[j]] — lookup staging for the adder chain.
  void (*stage_gen)(std::int64_t n, const std::uint32_t* lrow, const std::uint8_t* brow,
                    std::uint32_t* prod);
  /// prod[j] = L[b & 15] + H[b >> 4] — nibble staging for the adder chain.
  void (*stage_nib)(std::int64_t n, const std::uint8_t* nibrow, const std::uint8_t* brow,
                    std::uint32_t* prod);
  /// qw[j] += b_row[j] — the weight-code side sum of the affine expansion.
  void (*accum_codes)(std::int64_t n, const std::uint8_t* brow, std::uint32_t* qw);
};

/// Tier table for a float-core target (kSse maps to the ssse3 tier).
const LutOps& ops_for(mk::Target t);

/// The tier matching the float core's current dispatch (mk::active()).
const LutOps& active();

/// Dispatched drop-in for gemm::gemm_u8_lut (exact accumulation): same
/// accumulator outputs, bitwise, for any tier. The scalar tier delegates
/// to the retained seed loop. When `a_mask` is null the weight-code sums
/// are hoisted to one set of column sums shared by every row; with a mask,
/// fully-valid rows still share them and only partial (padding) rows pay
/// the per-row side accumulation.
void lut_gemm_u8(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                 const std::uint8_t* a_mask, const std::uint8_t* b, const LutTables& tables,
                 std::uint64_t* acc_qq, std::uint64_t* acc_qw, std::uint64_t* acc_qa,
                 std::int64_t* taps);

/// Dispatched drop-in for gemm::gemm_u8_lut_chain: SIMD lookup staging
/// feeding the behavioral accumulator, which runs scalar — one u32 add
/// chain per output element in ascending k, bit-for-bit the seed order.
void lut_gemm_u8_chain(std::int64_t m, std::int64_t n, std::int64_t k, const std::uint8_t* a,
                       const std::uint8_t* a_mask, const std::uint8_t* b,
                       const LutTables& tables, const U32Accum& accum, std::uint32_t* acc_qq,
                       std::uint64_t* acc_qw, std::uint64_t* acc_qa, std::int64_t* taps);

}  // namespace redcane::gemm::lk
