// Tensor: dense row-major float32 N-d array, the common currency of the
// ReD-CaNe reproduction (network activations, weights, noise tensors).
//
// Design notes:
//  * Value semantics with std::vector<float> storage — no aliasing views.
//    CapsNet inference at the scales we sweep is compute-bound in conv
//    kernels, so copy overhead of whole tensors is irrelevant next to MACs.
//  * All indexing errors abort: they are programming errors.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.hpp"

namespace redcane {

/// Dense row-major float tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor wrapping a copy of `values`; size must match shape.numel().
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  /// Flat element access.
  [[nodiscard]] float& at(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] float at(std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Multi-index access (rank must match). Convenience overloads cover the
  /// ranks used throughout the codebase.
  [[nodiscard]] float& operator()(std::int64_t i0);
  [[nodiscard]] float& operator()(std::int64_t i0, std::int64_t i1);
  [[nodiscard]] float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2);
  [[nodiscard]] float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                                  std::int64_t i3);
  [[nodiscard]] float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                                  std::int64_t i3, std::int64_t i4);
  [[nodiscard]] float operator()(std::int64_t i0) const;
  [[nodiscard]] float operator()(std::int64_t i0, std::int64_t i1) const;
  [[nodiscard]] float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
  [[nodiscard]] float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                                 std::int64_t i3) const;
  [[nodiscard]] float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                                 std::int64_t i3, std::int64_t i4) const;

  /// Returns a tensor with identical data and a new shape of equal numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Fills every element with `value`.
  void fill(float value);

  /// Element count sanity string, e.g. "Tensor[2, 3] (6 elements)".
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::int64_t flat_index(std::span<const std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace redcane
