#include "tensor/workspace.hpp"

#include <algorithm>

namespace redcane::ws {
namespace {

constexpr std::size_t kAlign = 64;  // Cache line / widest vector load.
constexpr std::size_t kMinBlock = std::size_t{1} << 20;

}  // namespace

Workspace& Workspace::tls() {
  thread_local Workspace w;
  return w;
}

void* Workspace::raw_alloc(std::size_t bytes) {
  bytes = std::max<std::size_t>(bytes, 1);
  while (true) {
    if (cursor_block_ < blocks_.size()) {
      Block& blk = blocks_[cursor_block_];
      const auto base = reinterpret_cast<std::uintptr_t>(blk.data.get());
      const std::uintptr_t p = (base + cursor_used_ + kAlign - 1) & ~std::uintptr_t{kAlign - 1};
      const std::size_t end = static_cast<std::size_t>(p - base) + bytes;
      if (end <= blk.size) {
        cursor_used_ = end;
        return reinterpret_cast<void*>(p);
      }
      // Doesn't fit: try the next block (existing blocks keep their memory
      // across rewinds; abandoned tail space is bounded by geometric growth).
      if (cursor_block_ + 1 < blocks_.size()) {
        ++cursor_block_;
        cursor_used_ = 0;
        continue;
      }
    }
    // Grow: a fresh block at least double the current capacity, appended
    // past the cursor so existing Scope marks (always at or before the
    // cursor) keep their indices.
    std::size_t capacity = 0;
    for (const Block& b : blocks_) capacity += b.size;
    const std::size_t size = std::max({bytes + kAlign, 2 * capacity, kMinBlock});
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    cursor_block_ = blocks_.size() - 1;
    cursor_used_ = 0;
  }
}

void Workspace::rewind(std::size_t block, std::size_t used) {
  cursor_block_ = block;
  cursor_used_ = used;
}

void Workspace::reserve(std::size_t bytes) {
  std::size_t capacity = 0;
  for (const Block& b : blocks_) capacity += b.size;
  if (capacity >= bytes) return;
  const std::size_t size = std::max(bytes - capacity + kAlign, kMinBlock);
  blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
}

std::size_t Workspace::reserved_bytes() const {
  std::size_t capacity = 0;
  for (const Block& b : blocks_) capacity += b.size;
  return capacity;
}

}  // namespace redcane::ws
