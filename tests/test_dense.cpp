#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::nn {
namespace {

TEST(Dense, ForwardShape) {
  Rng rng(1);
  Dense layer("d", 4, 3, rng);
  const Tensor x = ops::uniform(Shape{2, 4}, -1.0, 1.0, rng);
  const Tensor y = layer.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
}

TEST(Dense, GradientCheck) {
  Rng rng(2);
  Dense layer("d", 3, 2, rng);
  Tensor x = ops::uniform(Shape{2, 3}, -1.0, 1.0, rng);
  const Tensor y0 = layer.forward(x, true);
  const Tensor grad_in = layer.backward(y0);  // dL/dy = y for L = sum y^2/2.

  auto loss_at = [&](Tensor& target, std::int64_t idx, float eps) {
    const float saved = target.at(idx);
    target.at(idx) = saved + eps;
    const Tensor y = layer.forward(x, false);
    target.at(idx) = saved;
    double l = 0.0;
    for (float v : y.data()) l += 0.5 * static_cast<double>(v) * v;
    return l;
  };
  for (std::int64_t idx = 0; idx < x.numel(); ++idx) {
    const double num = (loss_at(x, idx, 1e-3F) - loss_at(x, idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(grad_in.at(idx), num, 1e-2);
  }
  Param* w = layer.params()[0];
  for (std::int64_t idx = 0; idx < w->value.numel(); ++idx) {
    const double num = (loss_at(w->value, idx, 1e-3F) - loss_at(w->value, idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(w->grad.at(idx), num, 1e-2);
  }
}

TEST(Dense, BiasShiftsOutput) {
  Rng rng(3);
  Dense layer("d", 2, 2, rng);
  Param* b = layer.params()[1];
  b->value.fill(1.5F);
  const Tensor x(Shape{1, 2});  // Zero input.
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0), 1.5F);
  EXPECT_FLOAT_EQ(y(0, 1), 1.5F);
}

}  // namespace
}  // namespace redcane::nn
