#include "nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/stats.hpp"

namespace redcane::nn {
namespace {

TEST(BatchNormTest, NormalizesPerChannelInTraining) {
  Rng rng(1);
  BatchNorm bn("bn", 4);
  Tensor x = ops::uniform(Shape{64, 4}, 2.0, 8.0, rng);
  // Give channel 2 a very different scale.
  for (std::int64_t r = 0; r < 64; ++r) x(r, 2) = x(r, 2) * 20.0F - 50.0F;
  const Tensor y = bn.forward(x, /*train=*/true);
  for (std::int64_t k = 0; k < 4; ++k) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::int64_t r = 0; r < 64; ++r) {
      sum += y(r, k);
      sq += static_cast<double>(y(r, k)) * y(r, k);
    }
    const double mean = sum / 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4) << "channel " << k;
    EXPECT_NEAR(sq / 64.0 - mean * mean, 1.0, 1e-2) << "channel " << k;
  }
}

TEST(BatchNormTest, GammaBetaAffine) {
  Rng rng(2);
  BatchNorm bn("bn", 2);
  bn.params()[0]->value.fill(3.0F);  // gamma
  bn.params()[1]->value.fill(-1.0F);  // beta
  const Tensor x = ops::uniform(Shape{128, 2}, -1.0, 1.0, rng);
  const Tensor y = bn.forward(x, true);
  const stats::Moments m = stats::moments(y);
  EXPECT_NEAR(m.mean, -1.0, 0.05);
  EXPECT_NEAR(m.stddev, 3.0, 0.1);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(3);
  BatchNorm bn("bn", 3);
  // Warm up running stats on data with mean 5, std 2.
  for (int step = 0; step < 200; ++step) {
    Tensor x(Shape{32, 3});
    for (float& v : x.data()) v = static_cast<float>(rng.normal(5.0, 2.0));
    (void)bn.forward(x, true);
  }
  // Eval on a constant tensor: output should be ~(5 - 5)/2 = 0 per element
  // shifted by how far the input is from the running mean.
  Tensor probe(Shape{4, 3}, 5.0F);
  const Tensor y = bn.forward(probe, false);
  for (float v : y.data()) EXPECT_NEAR(v, 0.0, 0.2);
  Tensor probe2(Shape{4, 3}, 7.0F);  // One running std above the mean.
  const Tensor y2 = bn.forward(probe2, false);
  for (float v : y2.data()) EXPECT_NEAR(v, 1.0, 0.2);
}

TEST(BatchNormTest, EvalModeIsDeterministicAndStateless) {
  Rng rng(4);
  BatchNorm bn("bn", 2);
  const Tensor x = ops::uniform(Shape{16, 2}, -1.0, 1.0, rng);
  const Tensor a = bn.forward(x, false);
  const Tensor b = bn.forward(x, false);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(BatchNormTest, GradientCheck) {
  Rng rng(5);
  BatchNorm bn("bn", 3);
  bn.params()[0]->value = Tensor(Shape{3}, {1.5F, 0.7F, -2.0F});
  Tensor x = ops::uniform(Shape{8, 3}, -2.0, 2.0, rng);

  const Tensor y0 = bn.forward(x, true);
  const Tensor grad_in = bn.backward(y0);  // L = 0.5 sum y^2.

  auto loss_at = [&](Tensor& target, std::int64_t idx, float eps) {
    const float saved = target.at(idx);
    target.at(idx) = saved + eps;
    const Tensor y = bn.forward(x, true);
    target.at(idx) = saved;
    double l = 0.0;
    for (float v : y.data()) l += 0.5 * static_cast<double>(v) * v;
    return l;
  };
  for (std::int64_t idx = 0; idx < x.numel(); idx += 5) {
    const double num = (loss_at(x, idx, 1e-3F) - loss_at(x, idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(grad_in.at(idx), num, 2e-2) << "x idx " << idx;
  }
  // gamma gradient (param index 0). Re-run forward to restore caches.
  (void)bn.forward(x, true);
  Param* gamma = bn.params()[0];
  gamma->zero_grad();
  (void)bn.backward(y0);
  for (std::int64_t k = 0; k < 3; ++k) {
    const double num =
        (loss_at(gamma->value, k, 1e-3F) - loss_at(gamma->value, k, -1e-3F)) / 2e-3;
    EXPECT_NEAR(gamma->grad.at(k), num, 5e-2) << "gamma " << k;
  }
}

TEST(BatchNormTest, RunningStatsHaveZeroGradients) {
  Rng rng(6);
  BatchNorm bn("bn", 2);
  const Tensor x = ops::uniform(Shape{8, 2}, -1.0, 1.0, rng);
  const Tensor y = bn.forward(x, true);
  (void)bn.backward(y);
  // params(): gamma, beta, running_mean, running_var.
  ASSERT_EQ(bn.params().size(), 4U);
  for (float g : bn.params()[2]->grad.data()) EXPECT_EQ(g, 0.0F);
  for (float g : bn.params()[3]->grad.data()) EXPECT_EQ(g, 0.0F);
}

}  // namespace
}  // namespace redcane::nn
