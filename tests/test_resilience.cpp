#include "core/resilience.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "data/synthetic.hpp"

namespace redcane::core {
namespace {

using capsnet::OpKind;

/// Shared trained micro-model: trained once, reused across tests.
struct TrainedFixture {
  std::unique_ptr<capsnet::CapsNetModel> model;
  data::Dataset ds;

  TrainedFixture() {
    capsnet::CapsNetConfig cfg;
    cfg.input_hw = 14;
    cfg.conv1_kernel = 5;
    cfg.conv1_channels = 8;
    cfg.primary_kernel = 5;
    cfg.primary_stride = 2;
    cfg.primary_types = 2;
    cfg.primary_dim = 4;
    cfg.class_dim = 4;
    Rng rng(1);
    model = std::make_unique<capsnet::CapsNetModel>(cfg, rng);

    data::SyntheticSpec s;
    s.kind = data::DatasetKind::kMnist;
    s.hw = 14;
    s.train_count = 300;
    s.test_count = 100;
    s.seed = 33;
    ds = data::make_synthetic(s);

    capsnet::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 20;
    tc.lr = 3e-3;
    capsnet::train(*model, ds.train_x, ds.train_y, tc);
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

ResilienceConfig quick_config() {
  ResilienceConfig rc;
  rc.sweep.nms = {0.5, 0.05, 0.005, 0.0};
  rc.seed = 11;
  return rc;
}

TEST(Resilience, BaselineIsCachedAndHigh) {
  TrainedFixture& f = fixture();
  ResilienceAnalyzer analyzer(*f.model, f.ds.test_x, f.ds.test_y, quick_config());
  const double b1 = analyzer.baseline();
  const double b2 = analyzer.baseline();
  EXPECT_EQ(b1, b2);
  EXPECT_GT(b1, 0.6);
  EXPECT_EQ(analyzer.evaluations(), 0);  // Baseline is not a noisy evaluation.
}

TEST(Resilience, CleanPointHasZeroDrop) {
  TrainedFixture& f = fixture();
  ResilienceAnalyzer analyzer(*f.model, f.ds.test_x, f.ds.test_y, quick_config());
  const ResilienceCurve c = analyzer.sweep_group(OpKind::kMacOutput);
  ASSERT_EQ(c.nms.size(), 4U);
  EXPECT_EQ(c.nms.back(), 0.0);
  EXPECT_EQ(c.drop_pct.back(), 0.0);
}

TEST(Resilience, LargeMacNoiseDestroysAccuracy) {
  TrainedFixture& f = fixture();
  ResilienceAnalyzer analyzer(*f.model, f.ds.test_x, f.ds.test_y, quick_config());
  const ResilienceCurve c = analyzer.sweep_group(OpKind::kMacOutput);
  // NM = 0.5 in every MAC output -> accuracy near chance.
  EXPECT_LT(c.drop_pct.front(), -30.0);
}

TEST(Resilience, SoftmaxGroupIsMoreResilientThanMac) {
  // The paper's headline finding at group level.
  TrainedFixture& f = fixture();
  ResilienceAnalyzer analyzer(*f.model, f.ds.test_x, f.ds.test_y, quick_config());
  const ResilienceCurve mac = analyzer.sweep_group(OpKind::kMacOutput);
  const ResilienceCurve sm = analyzer.sweep_group(OpKind::kSoftmax);
  // At NM = 0.05 (index 1) softmax noise hurts far less than MAC noise.
  EXPECT_GT(sm.drop_pct[1], mac.drop_pct[1] + 5.0);
}

TEST(Resilience, LogitsUpdateGroupIsResilient) {
  TrainedFixture& f = fixture();
  ResilienceAnalyzer analyzer(*f.model, f.ds.test_x, f.ds.test_y, quick_config());
  const ResilienceCurve lu = analyzer.sweep_group(OpKind::kLogitsUpdate);
  // Moderate logits noise barely moves accuracy.
  EXPECT_GT(lu.drop_pct[1], -5.0);
}

TEST(Resilience, LayerSweepTargetsOneLayer) {
  TrainedFixture& f = fixture();
  ResilienceAnalyzer analyzer(*f.model, f.ds.test_x, f.ds.test_y, quick_config());
  const ResilienceCurve conv1 = analyzer.sweep_layer(OpKind::kMacOutput, "Conv1");
  ASSERT_TRUE(conv1.layer.has_value());
  EXPECT_EQ(*conv1.layer, "Conv1");
  EXPECT_LT(conv1.drop_pct.front(), -10.0);  // First conv is least resilient.
}

TEST(Resilience, EvaluationCountTracksSweeps) {
  TrainedFixture& f = fixture();
  ResilienceAnalyzer analyzer(*f.model, f.ds.test_x, f.ds.test_y, quick_config());
  (void)analyzer.sweep_group(OpKind::kActivation);
  // 4 grid points, NM=0 evaluated from the cached baseline.
  EXPECT_EQ(analyzer.evaluations(), 3);
}

TEST(ResilienceCurve, TolerableNmPicksLargestSafePoint) {
  ResilienceCurve c;
  c.nms = {0.5, 0.05, 0.005, 0.0};
  c.drop_pct = {-60.0, -0.4, -0.1, 0.0};
  EXPECT_DOUBLE_EQ(c.tolerable_nm(1.0), 0.05);
  EXPECT_DOUBLE_EQ(c.tolerable_nm(0.2), 0.005);
  c.drop_pct = {-60.0, -5.0, -3.0, 0.0};
  EXPECT_DOUBLE_EQ(c.tolerable_nm(1.0), 0.0);
}

TEST(ResilienceCurve, PositiveDropCountsAsSafe) {
  // Small noise can *improve* accuracy (regularization); that is safe.
  ResilienceCurve c;
  c.nms = {0.1, 0.01, 0.0};
  c.drop_pct = {0.5, 0.2, 0.0};
  EXPECT_DOUBLE_EQ(c.tolerable_nm(1.0), 0.1);
}

}  // namespace
}  // namespace redcane::core
