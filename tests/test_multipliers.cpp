#include "approx/multiplier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "approx/library.hpp"
#include "tensor/random.hpp"

namespace redcane::approx {
namespace {

TEST(MultiplierLibrary, Has35Components) {
  EXPECT_EQ(multiplier_library().size(), 35U);
}

TEST(MultiplierLibrary, ExactIsFirstAndExact) {
  const Multiplier& m = exact_multiplier();
  EXPECT_EQ(m.info().name, "axm_exact");
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      EXPECT_EQ(m.multiply(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                static_cast<std::uint32_t>(a * b));
    }
  }
}

TEST(MultiplierLibrary, NamesAreUnique) {
  const auto& lib = multiplier_library();
  for (std::size_t i = 0; i < lib.size(); ++i) {
    for (std::size_t j = i + 1; j < lib.size(); ++j) {
      EXPECT_NE(lib[i]->info().name, lib[j]->info().name);
    }
  }
}

TEST(MultiplierLibrary, LookupByNameAndAnalog) {
  EXPECT_EQ(multiplier_by_name("axm_drum5_ngr").info().paper_analog, "mul8u_NGR");
  EXPECT_EQ(multiplier_by_analog("mul8u_DM1").info().name, "axm_drum4_dm1");
}

TEST(MultiplierLibrary, PaperAnalogCountMatchesTableIV) {
  EXPECT_EQ(paper_analog_multipliers().size(), 15U);
}

TEST(MultiplierLibrary, PaperAnalogPowerMatchesTableIV) {
  EXPECT_DOUBLE_EQ(multiplier_by_analog("mul8u_1JFF").info().power_uw, 391.0);
  EXPECT_DOUBLE_EQ(multiplier_by_analog("mul8u_NGR").info().power_uw, 276.0);
  EXPECT_DOUBLE_EQ(multiplier_by_analog("mul8u_DM1").info().power_uw, 195.0);
  EXPECT_DOUBLE_EQ(multiplier_by_analog("mul8u_QKX").info().power_uw, 29.0);
  EXPECT_NEAR(multiplier_by_analog("mul8u_NGR").info().power_saving(391.0), 0.294, 0.01);
}

/// Properties every library component must satisfy.
class MultiplierProperty : public ::testing::TestWithParam<const Multiplier*> {};

TEST_P(MultiplierProperty, ZeroAnnihilates) {
  const Multiplier& m = *GetParam();
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(m.multiply(static_cast<std::uint8_t>(a), 0), 0U)
        << m.info().name << " a=" << a;
    EXPECT_EQ(m.multiply(0, static_cast<std::uint8_t>(a)), 0U)
        << m.info().name << " a=" << a;
  }
}

TEST_P(MultiplierProperty, OutputBounded) {
  // Approximate products must stay within 2x of the representable exact
  // range (no runaway bit patterns).
  const Multiplier& m = *GetParam();
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_index(256));
    EXPECT_LE(m.multiply(a, b), 2U * 255U * 255U) << m.info().name;
  }
}

TEST_P(MultiplierProperty, RelativeErrorBounded) {
  // Every design family here has worst-case relative error well below
  // 100% for large products; sanity-bound the mean absolute error.
  const Multiplier& m = *GetParam();
  Rng rng(2);
  double err_sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_index(256));
    err_sum += std::abs(static_cast<double>(m.error(a, b)));
  }
  EXPECT_LT(err_sum / n, 6000.0) << m.info().name;  // < ~9% of max product.
}

TEST_P(MultiplierProperty, PowerAndAreaPositiveAndAtMostExact) {
  const MultiplierInfo& info = GetParam()->info();
  const MultiplierInfo& exact = exact_multiplier().info();
  EXPECT_GT(info.power_uw, 0.0) << info.name;
  EXPECT_GT(info.area_um2, 0.0) << info.name;
  EXPECT_LE(info.power_uw, exact.power_uw + 1e-9) << info.name;
  EXPECT_LE(info.area_um2, exact.area_um2 + 1e-9) << info.name;
}

TEST_P(MultiplierProperty, Deterministic) {
  const Multiplier& m = *GetParam();
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_index(256));
    EXPECT_EQ(m.multiply(a, b), m.multiply(a, b)) << m.info().name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllComponents, MultiplierProperty,
                         ::testing::ValuesIn(multiplier_library()),
                         [](const ::testing::TestParamInfo<const Multiplier*>& info) {
                           return info.param->info().name;
                         });

TEST(MultiplierFamilies, ResTruncErrorIsNegativeBias) {
  const Multiplier& m = multiplier_by_name("axm_res4_ck5");
  for (int a = 1; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 7) {
      const std::int32_t e =
          m.error(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
      EXPECT_LE(e, 0);
      EXPECT_GE(e, -15);  // 2^4 - 1.
    }
  }
}

TEST(MultiplierFamilies, DrumPassesSmallValuesExactly) {
  const Multiplier& m = multiplier_by_name("axm_drum4_dm1");
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(m.multiply(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                static_cast<std::uint32_t>(a * b));
    }
  }
}

TEST(MultiplierFamilies, DrumIsNearlyUnbiased) {
  const Multiplier& m = multiplier_by_name("axm_drum5_ngr");
  Rng rng(4);
  double bias = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_index(256));
    bias += m.error(a, b);
  }
  EXPECT_LT(std::abs(bias / n), 250.0);  // < 0.4% of the output range.
}

TEST(MultiplierFamilies, MitchellAlwaysUnderestimates) {
  const Multiplier& m = multiplier_by_name("axm_mitchell");
  for (int a = 1; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 5) {
      EXPECT_LE(m.error(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)), 0)
          << a << "*" << b;
    }
  }
}

TEST(MultiplierFamilies, MitchellExactOnPowersOfTwo) {
  const Multiplier& m = multiplier_by_name("axm_mitchell");
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const auto a = static_cast<std::uint8_t>(1 << i);
      const auto b = static_cast<std::uint8_t>(1 << j);
      EXPECT_EQ(m.multiply(a, b), static_cast<std::uint32_t>(a * b));
    }
  }
}

TEST(MultiplierFamilies, KulkarniMatchesKnownBlockError) {
  // The 2x2 block computes 3*3 = 7; thus 3*3 on the full multiplier is 7.
  const Multiplier& m = multiplier_by_name("axm_kulkarni_qkx");
  EXPECT_EQ(m.multiply(3, 3), 7U);
  // Values without any 3x3 sub-block interaction stay exact.
  EXPECT_EQ(m.multiply(2, 2), 4U);
  EXPECT_EQ(m.multiply(16, 16), 256U);
}

TEST(MultiplierFamilies, BamDropsOnlyLowColumns) {
  const Multiplier& m = multiplier_by_name("axm_bam5_gs2");
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_index(256));
    const std::int32_t e = m.error(a, b);
    EXPECT_LE(e, 0);
    // Worst case: all PP bits in columns 0..4 set.
    EXPECT_GE(e, -((1 + 2 + 4 + 8 + 16) * 8));
  }
}

TEST(MultiplierFamilies, LoaNeverOvershootsExactByMuch) {
  // OR-compression can only lose carries, never invent value above the
  // column-wise OR bound.
  const Multiplier& m = multiplier_by_name("axm_loa7_7c1");
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_index(256));
    EXPECT_LE(m.error(a, b), 0);
  }
}

TEST(MultiplierFamilies, HybridTruncComposesBothTruncations) {
  const Multiplier& m = multiplier_by_name("axm_hy_o1r4");
  // Low operand bits and low result bits are zeroed.
  const std::uint32_t p = m.multiply(255, 255);
  EXPECT_EQ(p % 16, 0U);
  EXPECT_EQ(p, ((255U & 0xFE) * (255U & 0xFE)) & ~0xFU);
}

}  // namespace
}  // namespace redcane::approx
