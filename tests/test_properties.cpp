// Cross-module property suites (parameterized sweeps).
#include <gtest/gtest.h>

#include <cmath>

#include "approx/library.hpp"
#include "data/synthetic.hpp"
#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane {
namespace {

// ---------------------------------------------------------------------
// Quantizer properties over a wordlength sweep.
class QuantizerBits : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerBits, RoundTripWithinHalfStep) {
  const int bits = GetParam();
  Rng rng(bits);
  const Tensor t = ops::uniform(Shape{500}, -2.5, 7.5, rng);
  const quant::QuantParams p = quant::fit_params(t, bits);
  const Tensor r = quant::dequantize(quant::quantize(t, p), t.shape(), p);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::abs(t.at(i) - r.at(i)), p.step() * 0.5 + 1e-6) << "bits " << bits;
  }
}

TEST_P(QuantizerBits, QuantizationIsIdempotent) {
  const int bits = GetParam();
  Rng rng(100 + bits);
  const Tensor t = ops::uniform(Shape{300}, 0.0, 1.0, rng);
  const Tensor once = quant::quantize_dequantize(t, bits);
  const Tensor twice = quant::quantize_dequantize(once, bits);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(once.at(i), twice.at(i), 1e-6) << "bits " << bits;
  }
}

TEST_P(QuantizerBits, CodesStayInRange) {
  const int bits = GetParam();
  Rng rng(200 + bits);
  const Tensor t = ops::uniform(Shape{300}, -10.0, 10.0, rng);
  const quant::QuantParams p = quant::fit_params(t, bits);
  for (std::uint32_t c : quant::quantize(t, p)) EXPECT_LE(c, p.max_code());
}

INSTANTIATE_TEST_SUITE_P(Wordlengths, QuantizerBits, ::testing::Values(3, 4, 6, 8, 10, 12),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "b" + std::to_string(info.param);
                         });

// Step-8 attacks push activations outside the range the quantizer was
// fitted on (params are fitted per layer on CLEAN calibration activations;
// an adversarial input then drives values past both rails). Out-of-range
// values must saturate to the rail codes — never wrap to the opposite end,
// which would turn a mild overflow into a maximal-error activation.
class QuantizerSaturation : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerSaturation, OutOfRangeValuesSaturateNotWrap) {
  const int bits = GetParam();
  Rng rng(300 + bits);
  const Tensor calib = ops::uniform(Shape{400}, 0.0, 1.0, rng);
  const quant::QuantParams p = quant::fit_params(calib, bits);

  const double range = p.max - p.min;
  const Tensor pushed(Shape{8}, {static_cast<float>(p.min - 10.0 * range),
                                 static_cast<float>(p.min - range),
                                 static_cast<float>(p.min - 1e-3),
                                 static_cast<float>(p.min),
                                 static_cast<float>(p.max),
                                 static_cast<float>(p.max + 1e-3),
                                 static_cast<float>(p.max + range),
                                 static_cast<float>(p.max + 10.0 * range)});

  const std::vector<std::uint32_t> codes = quant::quantize(pushed, p);
  ASSERT_EQ(codes.size(), 8U);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(codes[i], 0U) << "bits " << bits << " el " << i;
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(codes[i], p.max_code()) << "bits " << bits << " el " << i;
  }

  // The emulated backend's u8 fast path must agree with the reference
  // path element for element, including at the rails.
  if (bits <= 8) {
    const std::vector<std::uint8_t> u8 = quant::quantize_u8(pushed, p);
    ASSERT_EQ(u8.size(), codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(static_cast<std::uint32_t>(u8[i]), codes[i])
          << "bits " << bits << " el " << i;
    }
  }

  // Saturation keeps quantization monotone across the rails: an
  // adversarially larger activation never gets a smaller code.
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_GE(codes[i], prev) << "bits " << bits << " wrapped at element " << i;
    prev = codes[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Wordlengths, QuantizerSaturation, ::testing::Values(4, 6, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "b" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Synthetic dataset properties over every dataset kind.
class DatasetKinds : public ::testing::TestWithParam<data::DatasetKind> {};

TEST_P(DatasetKinds, ValuesInUnitInterval) {
  data::SyntheticSpec s;
  s.kind = GetParam();
  s.hw = 12;
  s.channels =
      (s.kind == data::DatasetKind::kCifar10 || s.kind == data::DatasetKind::kSvhn) ? 3 : 1;
  s.train_count = 40;
  s.test_count = 20;
  const data::Dataset ds = data::make_synthetic(s);
  for (float v : ds.train_x.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST_P(DatasetKinds, ClassesSeparableByNearestPrototype) {
  data::SyntheticSpec s;
  s.kind = GetParam();
  s.hw = 16;
  s.channels =
      (s.kind == data::DatasetKind::kCifar10 || s.kind == data::DatasetKind::kSvhn) ? 3 : 1;
  s.train_count = 100;
  s.test_count = 50;
  s.seed = 77;
  const data::Dataset ds = data::make_synthetic(s);

  const std::int64_t dim = ds.train_x.numel() / ds.train_x.shape().dim(0);
  std::vector<std::vector<double>> means(10, std::vector<double>(static_cast<std::size_t>(dim)));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < ds.train_x.shape().dim(0); ++i) {
    const auto y = static_cast<std::size_t>(ds.train_y[static_cast<std::size_t>(i)]);
    ++counts[y];
    for (std::int64_t k = 0; k < dim; ++k) {
      means[y][static_cast<std::size_t>(k)] += ds.train_x.at(i * dim + k);
    }
  }
  for (std::size_t c = 0; c < 10; ++c) {
    for (double& v : means[c]) v /= std::max(1, counts[c]);
  }
  int hits = 0;
  for (std::int64_t i = 0; i < ds.test_x.shape().dim(0); ++i) {
    double best = 1e300;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < 10; ++c) {
      double d2 = 0.0;
      for (std::int64_t k = 0; k < dim; ++k) {
        const double d = ds.test_x.at(i * dim + k) - means[c][static_cast<std::size_t>(k)];
        d2 += d * d;
      }
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    if (static_cast<std::int64_t>(best_c) == ds.test_y[static_cast<std::size_t>(i)]) ++hits;
  }
  // Raw-pixel nearest-prototype is a weak classifier for the textured
  // kinds under shift augmentation; 40% is still 8x chance and proves the
  // class structure a CapsNet then learns to >95%.
  EXPECT_GT(hits, 20) << "kind " << data::dataset_kind_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DatasetKinds,
                         ::testing::Values(data::DatasetKind::kMnist,
                                           data::DatasetKind::kFashionMnist,
                                           data::DatasetKind::kCifar10,
                                           data::DatasetKind::kSvhn),
                         [](const ::testing::TestParamInfo<data::DatasetKind>& info) {
                           std::string n = data::dataset_kind_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------
// DRUM relative-error bound: |err| / exact <= 2^-(k-2) for nonzero inputs.
class DrumBound : public ::testing::TestWithParam<int> {};

TEST_P(DrumBound, RelativeErrorBounded) {
  const int k = GetParam();
  const approx::Multiplier& m =
      approx::multiplier_by_name(k == 4   ? "axm_drum4_dm1"
                                 : k == 5 ? "axm_drum5_ngr"
                                 : k == 6 ? "axm_drum6_2hh"
                                          : "axm_drum3_jv3");
  // Worst case per operand: a = 2^t segments to 2^t + 2^(t-k+1), a relative
  // overshoot of 2^(1-k); the product bound is (1 + 2^(1-k))^2 - 1, reached
  // exactly at power-of-two operand pairs.
  const double bound = std::pow(1.0 + std::pow(2.0, 1 - k), 2.0) - 1.0 + 1e-9;
  for (int a = 1; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 5) {
      const double exact = static_cast<double>(a) * b;
      const double err = std::abs(static_cast<double>(
          m.error(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b))));
      EXPECT_LE(err / exact, bound) << "k=" << k << " " << a << "*" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, DrumBound, ::testing::Values(3, 4, 5, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "k" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Result-truncation exact error identity: err = -(p mod 2^k).
class ResTruncIdentity : public ::testing::TestWithParam<const approx::Multiplier*> {};

TEST_P(ResTruncIdentity, ErrorIsNegativeRemainder) {
  const approx::Multiplier& m = *GetParam();
  const int k = m.info().param;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_index(256));
    const std::uint32_t p = static_cast<std::uint32_t>(a) * b;
    EXPECT_EQ(m.error(a, b), -static_cast<std::int32_t>(p % (1U << k)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllResTrunc, ResTruncIdentity,
    ::testing::Values(&approx::multiplier_by_name("axm_res2_14vp"),
                      &approx::multiplier_by_name("axm_res4_ck5"),
                      &approx::multiplier_by_name("axm_res6"),
                      &approx::multiplier_by_name("axm_res8"),
                      &approx::multiplier_by_name("axm_res10")),
    [](const ::testing::TestParamInfo<const approx::Multiplier*>& info) {
      return info.param->info().name;
    });

}  // namespace
}  // namespace redcane
