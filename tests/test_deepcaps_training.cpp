#include <gtest/gtest.h>

#include "capsnet/deepcaps_model.hpp"
#include "capsnet/trainer.hpp"
#include "data/synthetic.hpp"

namespace redcane::capsnet {
namespace {

TEST(DeepCapsTraining, LossDecreasesOnSyntheticCifar) {
  DeepCapsConfig cfg = DeepCapsConfig::tiny();
  Rng rng(1);
  DeepCapsModel model(cfg, rng);

  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kCifar10;
  s.hw = 16;
  s.channels = 3;
  s.train_count = 120;
  s.test_count = 40;
  s.seed = 5;
  const data::Dataset ds = data::make_synthetic(s);

  std::vector<double> losses;
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 24;
  tc.lr = 2e-3;
  tc.on_epoch = [&](int, double loss, double) { losses.push_back(loss); };
  const TrainStats stats = train(model, ds.train_x, ds.train_y, tc);

  ASSERT_EQ(losses.size(), 3U);
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_GT(stats.final_train_accuracy, 0.15);  // Better than 10% chance.
}

TEST(DeepCapsTraining, GrayscaleInputVariant) {
  DeepCapsConfig cfg = DeepCapsConfig::tiny();
  cfg.input_channels = 1;
  Rng rng(2);
  DeepCapsModel model(cfg, rng);

  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kMnist;
  s.hw = 16;
  s.channels = 1;
  s.train_count = 48;
  s.test_count = 24;
  s.seed = 6;
  const data::Dataset ds = data::make_synthetic(s);

  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 24;
  const TrainStats stats = train(model, ds.train_x, ds.train_y, tc);
  EXPECT_EQ(stats.epochs_run, 1);
  // A forward pass on the test split works and yields valid lengths.
  const double acc = evaluate(model, ds.test_x, ds.test_y);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace redcane::capsnet
