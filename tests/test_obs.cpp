// Observability-layer contracts (src/obs/):
//  * ring wraparound keeps the newest kRingCapacity events, drops the
//    oldest, and accounts for every drop in the drop counter;
//  * concurrent emission from >= 8 threads against a concurrent drainer
//    is data-race-free (run under TSan in CI) and loses at most one
//    in-flight slot per ring per drain pass;
//  * drained spans sort parents before children so the chrome JSON nests;
//  * trace_write_chrome emits parseable chrome://tracing JSON including
//    remote-process metadata;
//  * the registry hands out stable named instruments, snapshots them
//    consistently, and exposes Prometheus-style text with check trailers;
//  * histogram bucket boundaries are pinned (log-linear, 8 sub-buckets
//    per octave, <= 1/8 relative error) so latency summaries cannot
//    drift silently;
//  * arming tracing changes NOTHING observable: sweep curves and served
//    predictions are bit-identical armed vs disarmed.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "core/groups.hpp"
#include "core/manifest.hpp"
#include "core/resilience.hpp"
#include "data/synthetic.hpp"
#include "serve/server.hpp"

namespace redcane::obs {
namespace {

constexpr std::size_t kRingCapacity = 4096;  // Mirrors trace.cpp.

// ---------------------------------------------------------------------------
// Tracing: ring semantics.

TEST(Trace, DisarmedEmitsNothing) {
  trace_reset_for_test();
  trace_arm(false);
  {
    OBS_SPAN("test/disarmed");
  }
  // Note trace_emit itself is unconditional by contract: SpanScope and the
  // other call sites read trace_armed() first, so only the macro path is
  // asserted here.
  EXPECT_EQ(trace_buffered(), 0u);
  EXPECT_TRUE(trace_drain().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST(Trace, WraparoundKeepsNewestAndCountsDrops) {
  trace_reset_for_test();
  trace_arm(true);
  const std::uint64_t total = 5000;  // > kRingCapacity on one thread.
  for (std::uint64_t i = 0; i < total; ++i) {
    trace_emit("test/wrap", /*ts_us=*/i, /*dur_us=*/1, /*corr=*/i + 1);
  }
  trace_arm(false);

  EXPECT_EQ(trace_buffered(), kRingCapacity);
  const std::vector<TraceEvent> drained = trace_drain();
  ASSERT_EQ(drained.size(), kRingCapacity);
  EXPECT_EQ(trace_dropped(), total - kRingCapacity);
  EXPECT_EQ(drained.size() + trace_dropped(), total);

  // Newest survive, oldest dropped: corr ids are exactly the last
  // kRingCapacity emissions, in timestamp order.
  EXPECT_EQ(drained.front().corr, total - kRingCapacity + 1);
  EXPECT_EQ(drained.back().corr, total);
  for (std::size_t i = 1; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].corr, drained[i - 1].corr + 1);
  }
  EXPECT_EQ(trace_buffered(), 0u);
}

TEST(Trace, ConcurrentEmitWithConcurrentDrainer) {
  trace_reset_for_test();
  trace_arm(true);

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 3000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> collected{0};
  std::atomic<std::uint64_t> passes{0};

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<TraceEvent> batch = trace_drain();
      collected.fetch_add(batch.size(), std::memory_order_relaxed);
      passes.fetch_add(1, std::memory_order_relaxed);
      for (const TraceEvent& e : batch) {
        // Torn slots must be skipped, never surfaced half-written.
        ASSERT_STREQ(e.name, "test/conc");
        ASSERT_GE(e.corr, 1u);
        ASSERT_LE(e.corr, kPerThread);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        OBS_SPAN_ID("test/conc", i + 1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  drainer.join();

  // Final pass picks up whatever the concurrent drainer left behind.
  collected.fetch_add(trace_drain().size(), std::memory_order_relaxed);
  passes.fetch_add(1, std::memory_order_relaxed);
  trace_arm(false);

  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  const std::uint64_t seen = collected.load() + trace_dropped();
  // Every event is drained, dropped, or was the (at most one per ring)
  // in-flight slot a drain pass skipped as torn and stepped past.
  EXPECT_LE(seen, total);
  EXPECT_GE(seen + passes.load() * kThreads, total);
}

TEST(Trace, SpansNestAndSortParentFirst) {
  trace_reset_for_test();
  trace_arm(true);
  {
    SpanScope outer("test/outer");
    const std::uint64_t t0 = trace_now_us();
    {
      SpanScope inner("test/inner");
    }
    // Spin until the clock moves so the outer span strictly outlasts the
    // inner one — two zero-duration spans at the same microsecond have no
    // defined parent/child order.
    while (trace_now_us() - t0 < 2) {
    }
  }
  trace_arm(false);

  const std::vector<TraceEvent> drained = trace_drain();
  ASSERT_EQ(drained.size(), 2u);
  // Inner closes first but the drain sorts by (ts asc, dur desc), so the
  // enclosing span comes out first and time containment holds.
  const TraceEvent& outer = drained[0];
  const TraceEvent& inner = drained[1];
  EXPECT_STREQ(outer.name, "test/outer");
  EXPECT_STREQ(inner.name, "test/inner");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST(Trace, CorrelationIdsAreFreshAndNonzero) {
  const std::uint64_t a = next_correlation_id();
  const std::uint64_t b = next_correlation_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Tracing: chrome JSON output.

TEST(Trace, ChromeJsonIsWellFormed) {
  trace_reset_for_test();
  trace_arm(true);
  trace_emit("test/json \"quoted\"", 10, 5, 42);
  trace_set_process_name(2, "worker:w");
  trace_emit_remote(/*pid=*/2, /*tid=*/1, "test/remote", 12, 3, 42);
  trace_arm(false);

  const std::string path = ::testing::TempDir() + "test_obs_trace.json";
  ASSERT_TRUE(trace_write_chrome(path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);   // Complete spans.
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);   // Process metadata.
  EXPECT_NE(text.find("worker:w"), std::string::npos);
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);  // Escaped name.
  EXPECT_NE(text.find("\"corr\":42"), std::string::npos);

  // Balanced structure — the cheap stand-in for a full JSON parse (CI's
  // serve smoke runs the real parse in python).
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Trace, InternedNamesOutliveTheirSource) {
  trace_reset_for_test();
  trace_arm(true);
  {
    std::string dynamic = "test/interned_";
    dynamic += "suffix";
    const char* stable = trace_intern(dynamic);
    trace_emit(stable, 1, 1, 0);
  }  // `dynamic` destroyed; the interned copy must survive.
  trace_arm(false);
  const std::vector<TraceEvent> drained = trace_drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_STREQ(drained[0].name, "test/interned_suffix");
  // Interning the same text again returns the same pointer.
  EXPECT_EQ(trace_intern("test/interned_suffix"), drained[0].name);
}

// ---------------------------------------------------------------------------
// Metrics: registry and snapshot.

TEST(Registry, CountersGaugesAndSnapshot) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test_obs_requests_total");
  c.add();
  c.add(2);
  EXPECT_EQ(c.value(), 3);
  // Same name returns the same instance.
  EXPECT_EQ(&reg.counter("test_obs_requests_total"), &c);

  reg.gauge("test_obs_depth").set(7.5);

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test_obs_requests_total"), 3);
  EXPECT_EQ(snap.counter("test_obs_never_registered_total"), 0);  // Absent -> 0.
  ASSERT_EQ(snap.gauges.count("test_obs_depth"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test_obs_depth"), 7.5);
}

TEST(Registry, HistogramSummaryInSnapshot) {
  Registry& reg = Registry::instance();
  Histogram& h = reg.histogram("test_obs_latency_us");
  for (int i = 0; i < 100; ++i) h.observe(100.0);
  h.observe(1000.0);

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.count("test_obs_latency_us"), 1u);
  const Snapshot::HistogramSummary& s = snap.histograms.at("test_obs_latency_us");
  EXPECT_EQ(s.count, 101);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.sum, 100 * 100.0 + 1000.0, 1e-9);
  // p50 lands in 100.0's bucket (<= 1/8 above), p99.9 hits the clamp-to-max.
  EXPECT_GE(s.p50, 100.0);
  EXPECT_LE(s.p50, 100.0 * 1.125);
  EXPECT_DOUBLE_EQ(s.p999, 1000.0);
}

TEST(Registry, ExpositionContainsMetricsAndCheckTrailers) {
  Registry& reg = Registry::instance();
  reg.counter("test_obs_expo_total").add(5);
  reg.histogram("test_obs_expo_us").observe(3.0);

  reg.add_check("test_obs_law", [](const Snapshot&) { return false; });
  std::string text = reg.exposition();
  EXPECT_NE(text.find("test_obs_expo_total 5"), std::string::npos);
  EXPECT_NE(text.find("test_obs_expo_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("test_obs_expo_us{q=\"p50\"}"), std::string::npos);
  EXPECT_NE(text.find("# check test_obs_law FAIL"), std::string::npos);

  // Re-registering replaces the law (serving instances come and go).
  reg.add_check("test_obs_law", [](const Snapshot&) { return true; });
  text = reg.exposition();
  EXPECT_NE(text.find("# check test_obs_law ok"), std::string::npos);
  EXPECT_EQ(text.find("# check test_obs_law FAIL"), std::string::npos);
}

TEST(Registry, ChecksEvaluateAgainstOneSnapshot) {
  Registry& reg = Registry::instance();
  reg.counter("test_obs_in_total").add(4);
  reg.counter("test_obs_out_total").add(4);
  reg.add_check("test_obs_flow", [](const Snapshot& s) {
    return s.counter("test_obs_in_total") == s.counter("test_obs_out_total");
  });
  bool found = false;
  for (const CheckResult& r : reg.run_checks()) {
    if (r.name == "test_obs_flow") {
      found = true;
      EXPECT_TRUE(r.ok);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Metrics: histogram bucket arithmetic, pinned.

TEST(Histogram, BucketBoundariesArePinned) {
  // Sub-unit values share bucket 0, upper bound 1.0.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(0.999), 0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(0), 1.0);

  // Octave starts: 8 sub-buckets per octave, idx = 1 + oct*8 + sub.
  EXPECT_EQ(Histogram::bucket_index(1.0), 1);
  EXPECT_EQ(Histogram::bucket_index(2.0), 9);
  EXPECT_EQ(Histogram::bucket_index(4.0), 17);
  // 1.25 = 1 + 2/8: sub-bucket 2 of octave 0.
  EXPECT_EQ(Histogram::bucket_index(1.25), 3);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(1), 1.125);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(9), 2.25);
}

TEST(Histogram, UpperBoundsObservationWithBoundedError) {
  for (double v : {1.0, 1.1, 3.7, 100.0, 1000.0, 123456.0, 7e9}) {
    const int idx = Histogram::bucket_index(v);
    const double upper = Histogram::bucket_upper(idx);
    EXPECT_GE(upper, v) << "v=" << v;
    EXPECT_LE(upper, v * (1.0 + 1.0 / Histogram::kSubBuckets) + 1e-9) << "v=" << v;
  }
}

TEST(Histogram, PercentileNearestRankAndClampToMax) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);

  Histogram single;
  single.observe(5.0);
  // Any percentile of one observation is that observation: the bucket
  // upper bound is clamped to the true max.
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(single.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(single.percentile(100.0), 5.0);

  Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(10.0);
  h.observe(10000.0);
  // Rank 50 of 100 sits in 10.0's bucket; p100 is the exact max.
  EXPECT_GE(h.percentile(50.0), 10.0);
  EXPECT_LE(h.percentile(50.0), 10.0 * 1.125);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10000.0);
  EXPECT_DOUBLE_EQ(h.max(), 10000.0);
  EXPECT_EQ(h.count(), 100);
}

// ---------------------------------------------------------------------------
// Bit-identity: arming tracing perturbs nothing.

capsnet::CapsNetConfig tiny_config() {
  capsnet::CapsNetConfig cfg;
  cfg.input_hw = 14;
  cfg.conv1_kernel = 5;
  cfg.conv1_channels = 8;
  cfg.primary_kernel = 5;
  cfg.primary_stride = 2;
  cfg.primary_types = 2;
  cfg.primary_dim = 4;
  cfg.class_dim = 4;
  return cfg;
}

data::Dataset tiny_dataset(std::int64_t count) {
  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kMnist;
  s.hw = 14;
  s.channels = 1;
  s.train_count = 4;
  s.test_count = count;
  s.seed = 99;
  return data::make_synthetic(s);
}

TEST(BitIdentity, SweepCurvesIdenticalArmedVsDisarmed) {
  const data::Dataset ds = tiny_dataset(16);
  core::ResilienceConfig cfg;
  cfg.sweep.nms = {0.5, 0.05, 0.0};
  cfg.seed = 2020;
  cfg.eval_batch = 8;

  const auto run = [&] {
    Rng rng(7);
    capsnet::CapsNetModel model(tiny_config(), rng);
    core::ResilienceAnalyzer analyzer(model, ds.test_x, ds.test_y, cfg);
    return analyzer.sweep_group(capsnet::OpKind::kMacOutput);
  };

  trace_reset_for_test();
  trace_arm(false);
  const core::ResilienceCurve disarmed = run();
  trace_arm(true);
  const core::ResilienceCurve armed = run();
  trace_arm(false);
  (void)trace_drain();

  ASSERT_EQ(disarmed.drop_pct.size(), armed.drop_pct.size());
  for (std::size_t i = 0; i < disarmed.drop_pct.size(); ++i) {
    EXPECT_EQ(disarmed.drop_pct[i], armed.drop_pct[i]) << "point " << i;
  }
}

TEST(BitIdentity, ServedPredictionsIdenticalArmedVsDisarmed) {
  const capsnet::CapsNetConfig cfg = tiny_config();
  Rng rng(7);
  auto model = std::make_unique<capsnet::CapsNetModel>(cfg, rng);
  const data::Dataset ds = tiny_dataset(8);

  core::DeploymentManifest m;
  m.model = model->name();
  m.profile = "tiny";
  m.input_hw = cfg.input_hw;
  m.input_channels = 1;
  m.num_classes = cfg.num_classes;
  m.noise_seed = 2020;
  for (const core::Site& site : core::extract_sites(*model, capsnet::slice_rows(ds.test_x, 0, 1))) {
    core::ManifestSite ms;
    ms.site = site;
    ms.component = "synthetic";
    if (site.kind == capsnet::OpKind::kMacOutput) ms.nm = 0.005;
    m.sites.push_back(ms);
  }
  serve::ModelRegistry registry(std::move(model), std::move(m));

  serve::ServerConfig sc;
  sc.workers = 2;
  sc.max_batch = 4;
  sc.max_delay_us = 500;

  const auto drain = [&] {
    serve::InferenceServer server(registry, sc);
    std::vector<std::future<serve::ServeResult>> futs;
    for (std::int64_t i = 0; i < 32; ++i) {
      const std::int64_t r = i % ds.test_x.shape().dim(0);
      futs.push_back(
          server.submit(capsnet::slice_rows(ds.test_x, r, r + 1), serve::kVariantExact));
    }
    server.start();
    std::vector<std::int64_t> labels;
    for (auto& f : futs) labels.push_back(f.get().prediction.label);
    server.shutdown();
    return labels;
  };

  trace_reset_for_test();
  trace_arm(false);
  const std::vector<std::int64_t> disarmed = drain();
  trace_arm(true);
  const std::vector<std::int64_t> armed = drain();
  trace_arm(false);
  (void)trace_drain();

  EXPECT_EQ(disarmed, armed);
}

}  // namespace
}  // namespace redcane::obs
