#include <gtest/gtest.h>

#include <cmath>

#include "capsnet/class_caps.hpp"
#include "capsnet/conv_caps2d.hpp"
#include "capsnet/conv_caps3d.hpp"
#include "capsnet/primary_caps.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::capsnet {
namespace {

class KindCounter final : public PerturbationHook {
 public:
  void process(const std::string&, OpKind kind, Tensor&) override {
    switch (kind) {
      case OpKind::kMacOutput: ++mac; break;
      case OpKind::kActivation: ++act; break;
      case OpKind::kSoftmax: ++sm; break;
      case OpKind::kLogitsUpdate: ++lu; break;
    }
  }
  int mac = 0, act = 0, sm = 0, lu = 0;
};

TEST(PrimaryCapsLayer, OutputShapeAndSquashedLengths) {
  Rng rng(1);
  PrimaryCapsSpec spec;
  spec.in_channels = 4;
  spec.types = 3;
  spec.dim = 4;
  spec.kernel = 3;
  spec.stride = 2;
  PrimaryCaps layer("p", spec, rng);
  const Tensor x = ops::uniform(Shape{2, 9, 9, 4}, 0.0, 1.0, rng);
  const Tensor v = layer.forward(x, false, nullptr);
  // (9 - 3)/2 + 1 = 4 -> 4*4*3 = 48 capsules.
  EXPECT_EQ(v.shape(), (Shape{2, 48, 4}));
  const Tensor lens = ops::l2_norm_last_axis(v);
  for (float l : lens.data()) EXPECT_LT(l, 1.0F);
}

TEST(PrimaryCapsLayer, HookSeesMacAndActivation) {
  Rng rng(2);
  PrimaryCapsSpec spec;
  spec.in_channels = 2;
  spec.types = 2;
  spec.dim = 4;
  spec.kernel = 3;
  spec.stride = 1;
  PrimaryCaps layer("p", spec, rng);
  const Tensor x = ops::uniform(Shape{1, 5, 5, 2}, 0.0, 1.0, rng);
  KindCounter counter;
  (void)layer.forward(x, false, &counter);
  EXPECT_EQ(counter.mac, 1);
  EXPECT_EQ(counter.act, 1);
  EXPECT_EQ(counter.sm, 0);
}

TEST(ClassCapsLayer, OutputShapeAndHookKinds) {
  Rng rng(3);
  ClassCapsSpec spec;
  spec.in_caps = 12;
  spec.in_dim = 4;
  spec.out_caps = 5;
  spec.out_dim = 6;
  spec.routing_iters = 3;
  ClassCaps layer("c", spec, rng);
  const Tensor x = ops::uniform(Shape{2, 12, 4}, -1.0, 1.0, rng);
  KindCounter counter;
  const Tensor v = layer.forward(x, false, &counter);
  EXPECT_EQ(v.shape(), (Shape{2, 5, 6}));
  EXPECT_EQ(counter.mac, 1 + 3);  // Votes + one s per iteration.
  EXPECT_EQ(counter.act, 3);
  EXPECT_EQ(counter.sm, 3);
  EXPECT_EQ(counter.lu, 2);
}

TEST(ClassCapsLayer, TrainingReducesMarginLossOnToyTask) {
  Rng rng(4);
  ClassCapsSpec spec;
  spec.in_caps = 8;
  spec.in_dim = 4;
  spec.out_caps = 2;
  spec.out_dim = 4;
  ClassCaps layer("c", spec, rng);

  // Two fixed input patterns, two classes.
  Rng drng(5);
  const Tensor x0 = ops::uniform(Shape{4, 8, 4}, -1.0, 1.0, drng);
  const std::vector<std::int64_t> labels{0, 1, 0, 1};

  nn::Adam opt(0.01);
  double first = 0.0;
  double last = 0.0;
  for (int step = 0; step < 60; ++step) {
    const Tensor v = layer.forward(x0, true, nullptr);
    const Tensor lens = ops::l2_norm_last_axis(v);
    const nn::LossResult lr = nn::margin_loss(lens, labels);
    if (step == 0) first = lr.loss;
    last = lr.loss;
    Tensor grad_v(v.shape());
    for (std::int64_t i = 0; i < 4; ++i) {
      for (std::int64_t j = 0; j < 2; ++j) {
        const double len = std::max(1e-9, static_cast<double>(lens(i, j)));
        for (std::int64_t q = 0; q < 4; ++q) {
          grad_v(i, j, q) = static_cast<float>(lr.grad(i, j) * v(i, j, q) / len);
        }
      }
    }
    (void)layer.backward(grad_v);
    opt.step(layer.params());
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(ConvCaps2DLayer, ShapeStrideAndSquash) {
  Rng rng(6);
  ConvCaps2DSpec spec;
  spec.in_types = 2;
  spec.in_dim = 4;
  spec.out_types = 3;
  spec.out_dim = 4;
  spec.kernel = 3;
  spec.stride = 2;
  spec.pad = 1;
  ConvCaps2D layer("cc", spec, rng);
  const Tensor x = ops::uniform(Shape{2, 8, 8, 2, 4}, -1.0, 1.0, rng);
  const Tensor v = layer.forward(x, false, nullptr);
  EXPECT_EQ(v.shape(), (Shape{2, 4, 4, 3, 4}));
  const Tensor lens = ops::l2_norm_last_axis(v);
  for (float l : lens.data()) EXPECT_LT(l, 1.0F);
}

TEST(ConvCaps2DLayer, BackwardShapesMatch) {
  Rng rng(7);
  ConvCaps2DSpec spec;
  spec.in_types = 2;
  spec.in_dim = 4;
  spec.out_types = 2;
  spec.out_dim = 4;
  ConvCaps2D layer("cc", spec, rng);
  const Tensor x = ops::uniform(Shape{1, 6, 6, 2, 4}, -1.0, 1.0, rng);
  const Tensor v = layer.forward(x, true, nullptr);
  const Tensor g = layer.backward(v);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(ConvCaps3DLayer, ShapeAndRoutingHooks) {
  Rng rng(8);
  ConvCaps3DSpec spec;
  spec.in_types = 2;
  spec.in_dim = 4;
  spec.out_types = 3;
  spec.out_dim = 4;
  spec.routing_iters = 3;
  ConvCaps3D layer("c3", spec, rng);
  const Tensor x = ops::uniform(Shape{2, 4, 4, 2, 4}, -1.0, 1.0, rng);
  KindCounter counter;
  const Tensor v = layer.forward(x, false, &counter);
  EXPECT_EQ(v.shape(), (Shape{2, 4, 4, 3, 4}));
  EXPECT_EQ(counter.sm, 3);
  EXPECT_EQ(counter.lu, 2);
  EXPECT_EQ(counter.mac, 1 + 3);
}

TEST(ConvCaps3DLayer, BackwardShapesMatch) {
  Rng rng(9);
  ConvCaps3DSpec spec;
  spec.in_types = 2;
  spec.in_dim = 3;
  spec.out_types = 2;
  spec.out_dim = 3;
  ConvCaps3D layer("c3", spec, rng);
  const Tensor x = ops::uniform(Shape{1, 3, 3, 2, 3}, -1.0, 1.0, rng);
  const Tensor v = layer.forward(x, true, nullptr);
  const Tensor g = layer.backward(v);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(ConvCaps3DLayer, RoutingItersOverride) {
  Rng rng(10);
  ConvCaps3DSpec spec;
  spec.in_types = 2;
  spec.in_dim = 3;
  spec.out_types = 2;
  spec.out_dim = 3;
  spec.routing_iters = 3;
  ConvCaps3D layer("c3", spec, rng);
  layer.set_routing_iters(1);
  const Tensor x = ops::uniform(Shape{1, 3, 3, 2, 3}, -1.0, 1.0, rng);
  KindCounter counter;
  (void)layer.forward(x, false, &counter);
  EXPECT_EQ(counter.sm, 1);
  EXPECT_EQ(counter.lu, 0);
}

}  // namespace
}  // namespace redcane::capsnet
