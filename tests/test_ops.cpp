#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace redcane {
namespace {

TEST(Ops, AddSubMul) {
  const Tensor a(Shape{3}, {1.0F, 2.0F, 3.0F});
  const Tensor b(Shape{3}, {4.0F, 5.0F, 6.0F});
  const Tensor s = ops::add(a, b);
  EXPECT_EQ(s.at(0), 5.0F);
  EXPECT_EQ(s.at(2), 9.0F);
  const Tensor d = ops::sub(b, a);
  EXPECT_EQ(d.at(1), 3.0F);
  const Tensor m = ops::mul(a, b);
  EXPECT_EQ(m.at(2), 18.0F);
}

TEST(Ops, ScaleAndInplace) {
  Tensor a(Shape{2}, {1.0F, -2.0F});
  const Tensor s = ops::scale(a, 3.0F);
  EXPECT_EQ(s.at(1), -6.0F);
  ops::scale_inplace(a, 0.5F);
  EXPECT_EQ(a.at(0), 0.5F);
  Tensor b(Shape{2}, {1.0F, 1.0F});
  ops::add_inplace(b, a);
  EXPECT_EQ(b.at(0), 1.5F);
}

TEST(Ops, MapAppliesFunction) {
  const Tensor a(Shape{3}, {-1.0F, 0.0F, 2.0F});
  const Tensor m = ops::map(a, [](float v) { return v * v; });
  EXPECT_EQ(m.at(0), 1.0F);
  EXPECT_EQ(m.at(2), 4.0F);
}

TEST(Ops, MatmulMatchesHand) {
  const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0F);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0F);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0F);
}

TEST(Ops, MatmulIdentity) {
  const Tensor a(Shape{2, 2}, {3, 4, 5, 6});
  const Tensor eye(Shape{2, 2}, {1, 0, 0, 1});
  const Tensor c = ops::matmul(a, eye);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c.at(i), a.at(i));
}

TEST(Ops, SoftmaxSumsToOne) {
  const Tensor a(Shape{2, 4}, {1, 2, 3, 4, -1, 0, 1, 2});
  const Tensor s = ops::softmax(a, 1);
  for (std::int64_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 4; ++j) sum += s(r, j);
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  // Monotone in the logits.
  EXPECT_GT(s(0, 3), s(0, 0));
}

TEST(Ops, SoftmaxAlongMiddleAxis) {
  const Tensor a(Shape{2, 3, 2}, std::vector<float>(12, 0.0F));
  const Tensor s = ops::softmax(a, 1);
  // Uniform logits -> 1/3 everywhere along axis 1.
  for (float v : s.data()) EXPECT_NEAR(v, 1.0 / 3.0, 1e-6);
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  const Tensor a(Shape{1, 3}, {1.0F, 2.0F, 3.0F});
  const Tensor b(Shape{1, 3}, {101.0F, 102.0F, 103.0F});
  const Tensor sa = ops::softmax(a, 1);
  const Tensor sb = ops::softmax(b, 1);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(sa.at(i), sb.at(i), 1e-6);
}

TEST(Ops, SumAccumulates) {
  const Tensor a(Shape{4}, {0.5F, 0.5F, 1.0F, -1.0F});
  EXPECT_NEAR(ops::sum(a), 1.0, 1e-9);
}

TEST(Ops, ArgmaxLastAxis) {
  const Tensor a(Shape{2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = ops::argmax_last_axis(a);
  ASSERT_EQ(idx.size(), 2U);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, L2NormLastAxis) {
  const Tensor a(Shape{2, 2}, {3, 4, 0, 0});
  const Tensor n = ops::l2_norm_last_axis(a);
  EXPECT_EQ(n.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(n.at(0), 5.0F);
  EXPECT_FLOAT_EQ(n.at(1), 0.0F);
}

TEST(Ops, GaussianTensorMoments) {
  Rng rng(3);
  const Tensor g = ops::gaussian(Shape{100000}, 2.0, 3.0, rng);
  double sum = 0.0;
  double sq = 0.0;
  for (float v : g.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / g.numel();
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / g.numel() - mean * mean), 3.0, 0.05);
}

TEST(Ops, UniformTensorBounds) {
  Rng rng(5);
  const Tensor u = ops::uniform(Shape{1000}, -1.0, 1.0, rng);
  for (float v : u.data()) {
    EXPECT_GE(v, -1.0F);
    EXPECT_LT(v, 1.0F);
  }
}

}  // namespace
}  // namespace redcane
