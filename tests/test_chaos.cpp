// Chaos soak of the fault-tolerant serving stack (src/serve/fault.hpp).
//
// Under every injected fault mix — worker stalls, backend execution
// failures, forced queue pressure, bounded-queue overflow, per-request
// deadlines, corrupted checkpoint reloads — the serving contract must
// hold:
//   * every submitted future resolves, with a prediction or a typed
//     ServeError (never a dangling promise, never an abort);
//   * ServerStats reconcile: submitted == fulfilled + every rejection and
//     shed bucket, and the per-result tallies match the counters;
//   * shutdown completes (the test itself would hang/deadlock otherwise —
//     the CI TSan job runs this suite precisely to catch that);
//   * with all faults off, an armed-but-inert plan changes nothing: the
//     fixed-arrival-order stream serves bit-identically to the unarmed
//     run (test_serve's identity contract is untouched).
//
// The fault plan is seed-driven and deterministic: the k-th decision at a
// site is a pure hash of (seed, site, k), so chaos runs are reproducible.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/serialize.hpp"
#include "capsnet/trainer.hpp"
#include "core/groups.hpp"
#include "core/manifest.hpp"
#include "data/synthetic.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"

namespace redcane::serve {
namespace {

capsnet::CapsNetConfig small_config() {
  capsnet::CapsNetConfig cfg;
  cfg.input_hw = 14;
  cfg.conv1_kernel = 5;
  cfg.conv1_channels = 8;
  cfg.primary_kernel = 5;
  cfg.primary_stride = 2;
  cfg.primary_types = 2;
  cfg.primary_dim = 4;
  cfg.class_dim = 4;
  return cfg;
}

data::Dataset small_dataset(std::int64_t count) {
  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kMnist;
  s.hw = 14;
  s.channels = 1;
  s.train_count = 4;
  s.test_count = count;
  s.seed = 177;
  return data::make_synthetic(s);
}

core::DeploymentManifest noisy_manifest(capsnet::CapsModel& model, const Tensor& probe) {
  core::DeploymentManifest m;
  m.model = model.name();
  m.profile = "tiny";
  m.input_hw = model.input_shape().dim(0);
  m.input_channels = model.input_shape().dim(2);
  m.num_classes = model.num_classes();
  m.noise_seed = 909;
  m.baseline_accuracy = 0.5;
  for (const core::Site& site : core::extract_sites(model, probe)) {
    core::ManifestSite ms;
    ms.site = site;
    if (site.kind == capsnet::OpKind::kMacOutput) {
      ms.component = "axm_drum3_jv3";
      ms.nm = 0.05;
      ms.na = 0.001;
    }
    ms.tolerable_nm = 0.05;
    m.sites.push_back(ms);
  }
  return m;
}

std::unique_ptr<ModelRegistry> make_registry(const data::Dataset& ds) {
  Rng rng(121);
  auto model = std::make_unique<capsnet::CapsNetModel>(small_config(), rng);
  core::DeploymentManifest m =
      noisy_manifest(*model, capsnet::slice_rows(ds.test_x, 0, 1));
  return std::make_unique<ModelRegistry>(std::move(model), std::move(m));
}

/// Per-outcome tally of one soak run.
struct SoakTally {
  std::int64_t ok = 0;        ///< Served as requested.
  std::int64_t degraded = 0;  ///< Served by exact under pressure.
  std::int64_t queue_full = 0;
  std::int64_t deadline = 0;
  std::int64_t backend = 0;
  std::int64_t shutdown = 0;
  std::int64_t other = 0;

  [[nodiscard]] std::int64_t total() const {
    return ok + degraded + queue_full + deadline + backend + shutdown + other;
  }
};

/// Drives `requests` live submissions per submitter thread (mixed
/// variants) into a running server and waits for every future. Fails the
/// test if any future does not resolve within the generous bound.
void soak(InferenceServer& server, const data::Dataset& ds, int submitters,
          std::int64_t requests_per_submitter, SoakTally& tally) {
  const std::int64_t n = ds.test_x.shape().dim(0);
  const char* variants[] = {kVariantExact, kVariantDesigned, kVariantEmulated};
  std::vector<std::vector<std::future<ServeResult>>> futs(
      static_cast<std::size_t>(submitters));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(submitters));
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = futs[static_cast<std::size_t>(t)];
      mine.reserve(static_cast<std::size_t>(requests_per_submitter));
      for (std::int64_t i = 0; i < requests_per_submitter; ++i) {
        const std::int64_t row = (i + t) % n;
        mine.push_back(server.submit(capsnet::slice_rows(ds.test_x, row, row + 1),
                                     variants[(i + t) % 3]));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (auto& lane : futs) {
    for (auto& f : lane) {
      // The contract under every fault mix: the future resolves. A miss
      // here is exactly the dangling-promise bug this suite exists for.
      ASSERT_EQ(f.wait_for(std::chrono::seconds(120)), std::future_status::ready)
          << "a submitted future never resolved";
      const ServeResult res = f.get();
      switch (res.error.code) {
        case ServeErrorCode::kOk: ++tally.ok; break;
        case ServeErrorCode::kDegradedServed: ++tally.degraded; break;
        case ServeErrorCode::kQueueFull: ++tally.queue_full; break;
        case ServeErrorCode::kDeadlineExceeded: ++tally.deadline; break;
        case ServeErrorCode::kBackendFailure: ++tally.backend; break;
        case ServeErrorCode::kShutdown: ++tally.shutdown; break;
        default: ++tally.other; break;
      }
      if (res.ok()) {
        EXPECT_GE(res.prediction.label, 0);
        EXPECT_FALSE(res.prediction.scores.empty());
      } else {
        EXPECT_FALSE(res.error.detail.empty());
      }
    }
  }
}

/// One full chaos scenario: arm `fc`, serve live mixed traffic through a
/// bounded+deadlined+degrading server, assert resolution + reconciliation.
void run_scenario(const fault::FaultConfig& fc, const char* name) {
  SCOPED_TRACE(name);
  const data::Dataset ds = small_dataset(12);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);

  fault::ScopedFaultPlan chaos(fc);
  ServerConfig sc;
  sc.workers = 3;
  sc.max_batch = 4;
  sc.max_delay_us = 200;
  sc.max_queue = 16;
  sc.deadline_us = 2'000'000;  // Generous: only stalls/pressure shed it.
  sc.degrade_under_pressure = true;
  InferenceServer server(*registry, sc);
  server.start();
  SoakTally tally;
  soak(server, ds, /*submitters=*/3, /*requests_per_submitter=*/40, tally);
  server.shutdown();

  const ServerStats stats = server.stats();
  // Every submit resolved exactly once, into exactly one bucket.
  EXPECT_EQ(tally.total(), 120);
  EXPECT_EQ(stats.submitted, 120);
  EXPECT_EQ(tally.other, 0);
  EXPECT_TRUE(stats.reconciles())
      << "submitted " << stats.submitted << " != requests " << stats.requests
      << " + invalid " << stats.rejected_invalid << " + full "
      << stats.rejected_queue_full << " + shutdown " << stats.rejected_shutdown
      << " + shed " << stats.shed_deadline << " + backend " << stats.backend_failed;
  // The per-result tallies are the counters, seen from the caller side.
  EXPECT_EQ(stats.requests, tally.ok + tally.degraded);
  EXPECT_EQ(stats.degraded, tally.degraded);
  EXPECT_EQ(stats.rejected_queue_full, tally.queue_full);
  EXPECT_EQ(stats.shed_deadline, tally.deadline);
  EXPECT_EQ(stats.backend_failed, tally.backend);
  EXPECT_EQ(stats.rejected_shutdown, tally.shutdown);
}

TEST(Chaos, WorkerStallsNeverLoseRequests) {
  fault::FaultConfig fc;
  fc.seed = 7;
  fc.worker_stall_prob = 0.4;
  fc.worker_stall_us = 3000;
  run_scenario(fc, "stalls");
}

TEST(Chaos, BackendFailuresResolveTyped) {
  fault::FaultConfig fc;
  fc.seed = 8;
  fc.backend_fail_prob = 0.3;
  run_scenario(fc, "backend-failures");
}

TEST(Chaos, ForcedQueuePressureDegradesAndSheds) {
  fault::FaultConfig fc;
  fc.seed = 9;
  fc.force_pressure = true;
  run_scenario(fc, "forced-pressure");

  fault::FaultConfig full;
  full.seed = 10;
  full.force_queue_full = true;
  run_scenario(full, "forced-queue-full");
}

TEST(Chaos, CombinedFaultMixStaysCoherent) {
  fault::FaultConfig fc;
  fc.seed = 11;
  fc.worker_stall_prob = 0.25;
  fc.worker_stall_us = 2000;
  fc.backend_fail_prob = 0.2;
  fc.force_pressure = true;
  run_scenario(fc, "combined");
}

TEST(Chaos, CorruptCheckpointReloadRollsBackUnderTraffic) {
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kMnist;
  spec.hw = 20;
  spec.channels = 1;
  spec.train_count = 4;
  spec.test_count = 8;
  spec.seed = 181;
  const data::Dataset ds = data::make_synthetic(spec);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = 20;
  Rng rng(45);
  capsnet::CapsNetModel model(cfg, rng);
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(capsnet::save_params(model, dir + "/chaos.rdcn"));
  core::DeploymentManifest m =
      noisy_manifest(model, capsnet::slice_rows(ds.test_x, 0, 1));
  m.checkpoint = "chaos.rdcn";
  const std::string manifest_path = dir + "/chaos.manifest";
  ASSERT_TRUE(core::save_manifest(m, manifest_path));

  std::unique_ptr<ModelRegistry> registry = ModelRegistry::open(manifest_path);
  ASSERT_NE(registry, nullptr);

  // Every checkpoint read is corrupted from here on: reloads must all
  // fail, roll back, and never disturb in-flight traffic.
  fault::FaultConfig fc;
  fc.seed = 12;
  fc.checkpoint_corrupt_prob = 1.0;
  fault::ScopedFaultPlan chaos(fc);

  ServerConfig sc;
  sc.workers = 2;
  sc.max_batch = 4;
  sc.max_delay_us = 200;
  InferenceServer server(*registry, sc);
  server.start();

  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_FALSE(registry->reload(manifest_path));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const std::int64_t n = ds.test_x.shape().dim(0);
  std::vector<std::future<ServeResult>> futs;
  for (std::int64_t i = 0; i < 48; ++i) {
    const std::int64_t row = i % n;
    futs.push_back(server.submit(capsnet::slice_rows(ds.test_x, row, row + 1),
                                 i % 2 == 0 ? kVariantExact : kVariantEmulated));
  }
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(120)), std::future_status::ready);
    const ServeResult res = f.get();
    EXPECT_TRUE(res.ok()) << serve_error_name(res.error.code);
  }
  stop.store(true, std::memory_order_relaxed);
  reloader.join();
  server.shutdown();

  EXPECT_EQ(registry->reloads_ok(), 0);
  EXPECT_GT(registry->reloads_failed(), 0);
  EXPECT_GT(fault::plan()->counters().checkpoint_corruptions, 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 48);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Chaos, InertArmedPlanPreservesBitIdentity) {
  // An armed plan with every fault off must change nothing: the pinned-
  // arrival-order stream serves bit-identically to the unarmed run.
  const data::Dataset ds = small_dataset(10);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);

  const auto serve_pinned = [&]() {
    ServerConfig sc;
    sc.workers = 2;
    sc.max_batch = 4;
    sc.max_delay_us = 500;
    InferenceServer server(*registry, sc);
    std::vector<std::future<ServeResult>> futs;
    for (const char* variant : {kVariantExact, kVariantDesigned, kVariantEmulated}) {
      for (std::int64_t i = 0; i < 10; ++i) {
        futs.push_back(
            server.submit(capsnet::slice_rows(ds.test_x, i, i + 1), variant));
      }
    }
    server.start();
    std::vector<std::vector<float>> scores;
    for (auto& f : futs) {
      ServeResult res = f.get();
      EXPECT_TRUE(res.ok());
      scores.push_back(std::move(res.prediction.scores));
    }
    server.shutdown();
    return scores;
  };

  const std::vector<std::vector<float>> unarmed = serve_pinned();
  fault::FaultConfig inert;  // Defaults: every probability zero.
  ASSERT_FALSE(inert.any());
  fault::ScopedFaultPlan chaos(inert);
  const std::vector<std::vector<float>> armed = serve_pinned();
  ASSERT_EQ(unarmed.size(), armed.size());
  for (std::size_t i = 0; i < unarmed.size(); ++i) {
    ASSERT_EQ(unarmed[i], armed[i]) << "inert plan perturbed request " << i;
  }
}

TEST(Chaos, FaultPlanIsDeterministicPerSeed) {
  fault::FaultConfig fc;
  fc.seed = 99;
  fc.worker_stall_prob = 0.5;
  fc.backend_fail_prob = 0.25;
  const auto decisions = [](fault::FaultConfig cfg) {
    fault::FaultPlan plan(cfg);
    std::vector<bool> out;
    std::int64_t us = 0;
    for (int i = 0; i < 64; ++i) out.push_back(plan.stall_worker(us));
    for (int i = 0; i < 64; ++i) out.push_back(plan.fail_backend());
    return out;
  };
  const std::vector<bool> a = decisions(fc);
  EXPECT_EQ(a, decisions(fc));  // Same seed: same stream.
  fc.seed = 100;
  EXPECT_NE(a, decisions(fc));  // Different seed: different stream.

  // The stream actually mixes hits and misses at these probabilities.
  std::int64_t hits = 0;
  for (const bool b : a) hits += b ? 1 : 0;
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, static_cast<std::int64_t>(a.size()));
}

TEST(Chaos, FaultSpecParses) {
  fault::FaultConfig fc;
  ASSERT_TRUE(fault::parse_spec(
      "seed=7,stall=0.25,stall_us=1500,backend=0.1,ckpt=0.5,full=1,pressure=1", fc));
  EXPECT_EQ(fc.seed, 7U);
  EXPECT_DOUBLE_EQ(fc.worker_stall_prob, 0.25);
  EXPECT_EQ(fc.worker_stall_us, 1500);
  EXPECT_DOUBLE_EQ(fc.backend_fail_prob, 0.1);
  EXPECT_DOUBLE_EQ(fc.checkpoint_corrupt_prob, 0.5);
  EXPECT_TRUE(fc.force_queue_full);
  EXPECT_TRUE(fc.force_pressure);

  ASSERT_TRUE(fault::parse_spec("", fc));
  EXPECT_FALSE(fc.any());
  EXPECT_FALSE(fault::parse_spec("stall", fc));          // No value.
  EXPECT_FALSE(fault::parse_spec("warp=1", fc));         // Unknown key.
  EXPECT_FALSE(fault::parse_spec("stall=fast", fc));     // Non-numeric.
}

}  // namespace
}  // namespace redcane::serve
