// Unit coverage of the coordinator's retry/backoff schedule
// (dist/backoff.hpp) — a pure header, so every property here is exact.
#include <gtest/gtest.h>

#include <cstdint>

#include "dist/backoff.hpp"

namespace redcane::dist {
namespace {

TEST(Backoff, RawDelayGrowsExponentiallyThenSaturates) {
  BackoffPolicy p;
  p.base_us = 10'000;
  p.multiplier = 2.0;
  p.cap_us = 100'000;

  EXPECT_EQ(p.raw_delay_us(1), 10'000);
  EXPECT_EQ(p.raw_delay_us(2), 20'000);
  EXPECT_EQ(p.raw_delay_us(3), 40'000);
  EXPECT_EQ(p.raw_delay_us(4), 80'000);
  EXPECT_EQ(p.raw_delay_us(5), 100'000);  // Capped.
  EXPECT_EQ(p.raw_delay_us(50), 100'000);  // Stays capped, no overflow.
}

TEST(Backoff, RawDelayNonDecreasing) {
  BackoffPolicy p;
  std::int64_t prev = 0;
  for (int k = 1; k <= 32; ++k) {
    const std::int64_t d = p.raw_delay_us(k);
    EXPECT_GE(d, prev) << "attempt " << k;
    prev = d;
  }
}

TEST(Backoff, ZeroAndNegativeAttemptsCostNothing) {
  BackoffPolicy p;
  EXPECT_EQ(p.raw_delay_us(0), 0);
  EXPECT_EQ(p.raw_delay_us(-3), 0);
  EXPECT_EQ(p.delay_us(/*key=*/7, 0), 0);
  EXPECT_EQ(p.total_wait_us(/*key=*/7, 0), 0);
}

TEST(Backoff, JitteredDelayIsDeterministicPerKeyAndAttempt) {
  BackoffPolicy p;
  for (std::uint64_t key : {0ull, 1ull, 42ull, 0xFFFF'FFFF'FFFFull}) {
    for (int k = 1; k <= 8; ++k) {
      EXPECT_EQ(p.delay_us(key, k), p.delay_us(key, k)) << key << "/" << k;
    }
  }
  // Different seeds give a different (but equally deterministic) schedule.
  BackoffPolicy q = p;
  q.seed = 2;
  bool any_diff = false;
  for (int k = 1; k <= 8; ++k) any_diff |= p.delay_us(5, k) != q.delay_us(5, k);
  EXPECT_TRUE(any_diff);
}

TEST(Backoff, JitterStaysInsideTheConfiguredBand) {
  BackoffPolicy p;
  p.jitter = 0.25;
  for (std::uint64_t key = 0; key < 200; ++key) {
    for (int k = 1; k <= 6; ++k) {
      const double raw = static_cast<double>(p.raw_delay_us(k));
      const auto d = static_cast<double>(p.delay_us(key, k));
      EXPECT_GE(d, raw * (1.0 - p.jitter) - 1.0) << key << "/" << k;
      EXPECT_LE(d, raw * (1.0 + p.jitter) + 1.0) << key << "/" << k;
    }
  }
}

TEST(Backoff, ZeroJitterReturnsRawSchedule) {
  BackoffPolicy p;
  p.jitter = 0.0;
  for (int k = 1; k <= 8; ++k) EXPECT_EQ(p.delay_us(123, k), p.raw_delay_us(k));
}

TEST(Backoff, BudgetExhaustion) {
  BackoffPolicy p;
  p.budget = 4;
  EXPECT_FALSE(p.exhausted(0));
  EXPECT_FALSE(p.exhausted(4));  // Budget counts allowed retries.
  EXPECT_TRUE(p.exhausted(5));

  p.budget = 0;  // Fail on the first abandonment.
  EXPECT_FALSE(p.exhausted(0));
  EXPECT_TRUE(p.exhausted(1));
}

TEST(Backoff, TotalWaitStrictlyMonotoneInAttempts) {
  BackoffPolicy p;
  std::int64_t prev = -1;
  for (int attempts = 0; attempts <= 12; ++attempts) {
    const std::int64_t total = p.total_wait_us(/*key=*/9, attempts);
    EXPECT_GT(total, prev) << "attempts " << attempts;
    prev = total;
  }
  // And it is exactly the sum of the per-attempt delays.
  std::int64_t sum = 0;
  for (int k = 1; k <= 5; ++k) sum += p.delay_us(9, k);
  EXPECT_EQ(p.total_wait_us(9, 5), sum);
}

}  // namespace
}  // namespace redcane::dist
