// Attack-stack contracts (Step 8):
//  * the gradient FGSM/PGD ascend is the true loss gradient — checked
//    against central finite differences on a tiny model;
//  * PGD iterates stay inside the L-inf epsilon ball and the clip range;
//  * attack generation is deterministic: bitwise-identical perturbed
//    batches across repeated runs and across OpenMP thread counts;
//  * the affine warp is a bitwise no-op at identity and inverse-composes
//    within bilinear-resampling tolerance;
//  * the spec grammar parses canonically and rejects malformed input.
#include "attack/attack.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/loss.hpp"

namespace redcane::attack {
namespace {

capsnet::CapsNetConfig tiny_config() {
  capsnet::CapsNetConfig cfg;
  cfg.input_hw = 12;
  cfg.conv1_kernel = 5;
  cfg.conv1_channels = 6;
  cfg.primary_kernel = 3;
  cfg.primary_stride = 2;
  cfg.primary_types = 2;
  cfg.primary_dim = 4;
  cfg.class_dim = 4;
  return cfg;
}

data::Dataset tiny_dataset(std::int64_t count) {
  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kMnist;
  s.hw = 12;
  s.channels = 1;
  s.train_count = 4;
  s.test_count = count;
  s.seed = 31;
  return data::make_synthetic(s);
}

/// The scalar loss the gradient attacks ascend, recomputed independently.
double loss_at(capsnet::CapsModel& model, const Tensor& x,
               const std::vector<std::int64_t>& labels) {
  const Tensor v = model.forward(x, /*train=*/true, nullptr);
  const Tensor lengths = capsnet::CapsModel::class_lengths(v);
  return nn::margin_loss(lengths, labels, {}).loss;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)))
      << what;
}

TEST(Attack, LossInputGradMatchesFiniteDifferences) {
  Rng rng(21);
  capsnet::CapsNetModel model(tiny_config(), rng);
  const data::Dataset ds = tiny_dataset(2);
  const std::vector<std::int64_t> labels(ds.test_y.begin(), ds.test_y.end());

  const Tensor grad = loss_input_grad(model, ds.test_x, labels, {});
  ASSERT_EQ(grad.shape(), ds.test_x.shape());

  // routing_backward treats coupling coefficients as constants
  // (straight-through routing), so analytic magnitudes differ from full
  // finite differences by a smooth systematic factor. The attack contract
  // is the ascent DIRECTION: signs must agree and magnitudes must stay
  // within the same order wherever the FD signal is well above float noise.
  const double h = 1e-3;
  int checked = 0;
  int out_of_band = 0;
  // Every 3rd element keeps the oracle cheap while covering both images.
  for (std::int64_t i = 0; i < ds.test_x.numel(); i += 3) {
    Tensor xp = ds.test_x;
    Tensor xm = ds.test_x;
    xp.at(i) += static_cast<float>(h);
    xm.at(i) -= static_cast<float>(h);
    const double fd = (loss_at(model, xp, labels) - loss_at(model, xm, labels)) / (2.0 * h);
    if (std::abs(fd) < 1e-3) continue;  // Below float-forward noise.
    ++checked;
    const double g = grad.at(i);
    EXPECT_GT(fd * g, 0.0)
        << "gradient sign disagrees with finite differences at element " << i;
    // Same-order band; local cancellation under straight-through routing
    // may push a rare element out, so the band is enforced statistically.
    if (std::abs(g) < std::abs(fd) * 0.2 || std::abs(g) > std::abs(fd) * 5.0) {
      ++out_of_band;
    }
  }
  EXPECT_GT(checked, 10) << "finite-difference oracle checked too few elements";
  EXPECT_LE(out_of_band, checked / 20)
      << out_of_band << " of " << checked
      << " gradient magnitudes fell outside [0.2, 5]x finite differences";

  // The direction contract end to end: an FGSM-sized step along the
  // analytic gradient must increase the loss.
  Tensor ascended = ds.test_x;
  for (std::int64_t i = 0; i < ascended.numel(); ++i) {
    const float g = grad.at(i);
    ascended.at(i) += 0.01F * static_cast<float>((g > 0.0F) - (g < 0.0F));
  }
  EXPECT_GT(loss_at(model, ascended, labels), loss_at(model, ds.test_x, labels));
}

TEST(Attack, FgsmTakesOneSignedClampedStep) {
  Rng rng(22);
  capsnet::CapsNetModel model(tiny_config(), rng);
  const data::Dataset ds = tiny_dataset(4);
  const std::vector<std::int64_t> labels(ds.test_y.begin(), ds.test_y.end());

  const double eps = 0.05;
  const Tensor grad = loss_input_grad(model, ds.test_x, labels, {});
  const Tensor adv = apply_attack(model, ds.test_x, labels, AttackSpec::fgsm(eps));

  std::int64_t moved = 0;
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    const float g = grad.at(i);
    const float expected = std::clamp(
        ds.test_x.at(i) + static_cast<float>(eps) *
                              static_cast<float>((g > 0.0F) - (g < 0.0F)),
        0.0F, 1.0F);
    ASSERT_EQ(adv.at(i), expected) << "element " << i;
    if (adv.at(i) != ds.test_x.at(i)) ++moved;
  }
  EXPECT_GT(moved, adv.numel() / 2) << "FGSM moved almost nothing";
}

TEST(Attack, PgdStaysInsideEpsilonBallAndClipRange) {
  Rng rng(23);
  capsnet::CapsNetModel model(tiny_config(), rng);
  const data::Dataset ds = tiny_dataset(4);
  const std::vector<std::int64_t> labels(ds.test_y.begin(), ds.test_y.end());

  const float eps = 0.08F;
  const Tensor adv =
      apply_attack(model, ds.test_x, labels, AttackSpec::pgd(eps, /*steps=*/5));

  // x + eps rounds in float, so the recovered deviation can differ from
  // eps by one ulp of the pixel value.
  const float slack = eps * 1e-5F;
  float max_dev = 0.0F;
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    const float dev = std::abs(adv.at(i) - ds.test_x.at(i));
    ASSERT_LE(dev, eps + slack) << "left the L-inf ball at element " << i;
    ASSERT_GE(adv.at(i), 0.0F);
    ASSERT_LE(adv.at(i), 1.0F);
    max_dev = std::max(max_dev, dev);
  }
  // The projection must actually bind somewhere: 5 steps of 2.5*eps/5
  // overshoot the ball without it.
  EXPECT_NEAR(max_dev, eps, slack);
}

TEST(Attack, GenerationIsBitwiseDeterministicAcrossRunsAndThreadCounts) {
  Rng rng(24);
  capsnet::CapsNetModel model(tiny_config(), rng);
  const data::Dataset ds = tiny_dataset(6);
  const std::vector<std::int64_t> labels(ds.test_y.begin(), ds.test_y.end());

  for (const AttackSpec& spec :
       {AttackSpec::fgsm(0.05), AttackSpec::pgd(0.05, 3), AttackSpec::rotate(12.0)}) {
    const Tensor first = apply_attack(model, ds.test_x, labels, spec);
    const Tensor again = apply_attack(model, ds.test_x, labels, spec);
    expect_bitwise_equal(first, again, spec.key() + " repeat");

#ifdef _OPENMP
    const int saved = omp_get_max_threads();
    for (const int threads : {1, 2, 4}) {
      omp_set_num_threads(threads);
      const Tensor t = apply_attack(model, ds.test_x, labels, spec);
      expect_bitwise_equal(first, t, spec.key() + " omp=" + std::to_string(threads));
    }
    omp_set_num_threads(saved);
#endif
  }
}

TEST(Attack, AffineIdentityIsABitwiseNoOp) {
  const data::Dataset ds = tiny_dataset(3);

  expect_bitwise_equal(ds.test_x, affine_warp(ds.test_x, AffineParams{}), "identity warp");

  // Every scenario axis at its identity severity must also be a no-op
  // (scale severity is the zoom delta: 0 => factor 1).
  Rng rng(25);
  capsnet::CapsNetModel model(tiny_config(), rng);
  const std::vector<std::int64_t> labels(ds.test_y.begin(), ds.test_y.end());
  for (const AttackKind kind :
       {AttackKind::kRotate, AttackKind::kTranslate, AttackKind::kScale}) {
    Scenario scenario;
    scenario.kind = kind;
    const AttackSpec spec = scenario.at(0.0);
    EXPECT_TRUE(spec.is_identity()) << attack_kind_name(kind);
    expect_bitwise_equal(ds.test_x, apply_attack(model, ds.test_x, labels, spec),
                         std::string(attack_kind_name(kind)) + " severity 0");
  }
}

TEST(Attack, AffineInverseCompositionRoundTrips) {
  // Smooth analytic image: bilinear resampling error stays small, so
  // warp(warp(x, p), p.inverse()) must recover interior pixels closely.
  const std::int64_t hw = 24;
  Tensor x(Shape{1, hw, hw, 1});
  for (std::int64_t r = 0; r < hw; ++r) {
    for (std::int64_t c = 0; c < hw; ++c) {
      const double fr = static_cast<double>(r) / static_cast<double>(hw - 1);
      const double fc = static_cast<double>(c) / static_cast<double>(hw - 1);
      x(0, r, c, 0) = static_cast<float>(0.5 + 0.4 * std::sin(fr * 3.14159) *
                                                   std::cos(fc * 3.14159));
    }
  }

  AffineParams p;
  p.angle_deg = 20.0;
  p.scale = 1.1;
  p.dx = 1.5;
  p.dy = -1.0;
  const Tensor round_trip = affine_warp(affine_warp(x, p), p.inverse());

  const std::int64_t margin = 6;  // Border pixels may have sampled outside.
  for (std::int64_t r = margin; r < hw - margin; ++r) {
    for (std::int64_t c = margin; c < hw - margin; ++c) {
      EXPECT_NEAR(round_trip(0, r, c, 0), x(0, r, c, 0), 0.05)
          << "round trip diverges at (" << r << ", " << c << ")";
    }
  }
}

TEST(Attack, SpecParserAcceptsGrammarAndRejectsMalformedInput) {
  AttackSpec spec;
  std::string error;

  ASSERT_TRUE(parse_attack_spec("none", &spec, &error));
  EXPECT_TRUE(spec.is_identity());

  ASSERT_TRUE(parse_attack_spec("fgsm:eps=0.1", &spec, &error));
  EXPECT_EQ(spec.kind, AttackKind::kFgsm);
  EXPECT_DOUBLE_EQ(spec.epsilon, 0.1);

  ASSERT_TRUE(parse_attack_spec("pgd:eps=0.1,steps=5,step=0.02", &spec, &error));
  EXPECT_EQ(spec.kind, AttackKind::kPgd);
  EXPECT_EQ(spec.steps, 5);
  EXPECT_DOUBLE_EQ(spec.resolved_step(), 0.02);

  ASSERT_TRUE(parse_attack_spec("pgd:eps=0.1", &spec, &error));
  EXPECT_DOUBLE_EQ(spec.resolved_step(), 2.5 * 0.1 / 10.0);  // Default rule.

  ASSERT_TRUE(parse_attack_spec("rotate:deg=15", &spec, &error));
  EXPECT_DOUBLE_EQ(spec.severity, 15.0);
  ASSERT_TRUE(parse_attack_spec("translate:px=2", &spec, &error));
  ASSERT_TRUE(parse_attack_spec("scale:factor=1.2", &spec, &error));

  for (const char* bad :
       {"", "fgsm", "fgsm:", "fgsm:eps=abc", "fgsm:eps=0", "fgsm:eps=-1",
        "fgsm:eps=0.1,bogus=2", "warp:deg=5", "pgd:eps=0.1,steps=0",
        "pgd:eps=0.1,steps=1.5", "rotate:deg=1deg", "scale:factor=0", "none:x=1",
        "translate:=2", "rotate:deg"}) {
    error.clear();
    EXPECT_FALSE(parse_attack_spec(bad, &spec, &error)) << "accepted '" << bad << "'";
    EXPECT_FALSE(error.empty()) << "no error message for '" << bad << "'";
  }
}

TEST(Attack, CanonicalKeysDistinguishSpecs) {
  EXPECT_EQ(AttackSpec::none().key(), "none");
  EXPECT_EQ(AttackSpec::fgsm(0.1).key(), AttackSpec::fgsm(0.1).key());
  EXPECT_NE(AttackSpec::fgsm(0.1).key(), AttackSpec::fgsm(0.2).key());
  EXPECT_NE(AttackSpec::fgsm(0.1).key(), AttackSpec::pgd(0.1).key());
  EXPECT_NE(AttackSpec::pgd(0.1, 5).key(), AttackSpec::pgd(0.1, 7).key());
  EXPECT_NE(AttackSpec::rotate(5.0).key(), AttackSpec::scale(5.0).key());
}

}  // namespace
}  // namespace redcane::attack
